// Command solros-fsck verifies a solrosfs image's invariants: superblock
// sanity, extent bounds, double allocation, bitmap consistency, and
// directory-tree reachability. Exit status 0 = clean, 1 = problems found.
//
//	solros-fsck image.sfs
package main

import (
	"flag"
	"fmt"
	"os"

	"solros/internal/fs"
	"solros/internal/pcie"
)

func main() {
	verbose := flag.Bool("v", false, "list every problem")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: solros-fsck [-v] image.sfs")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "solros-fsck:", err)
		os.Exit(2)
	}
	img := pcie.NewMemory(int64(len(data)))
	copy(img.Slice(0, int64(len(data))), data)
	rep := fs.Check(img)
	fmt.Printf("%s: %d files, %d directories, %d blocks in use\n",
		flag.Arg(0), rep.Files, rep.Dirs, rep.UsedBlocks)
	if rep.OK() {
		fmt.Println("clean")
		return
	}
	fmt.Printf("%d problems\n", len(rep.Problems))
	if *verbose {
		for _, p := range rep.Problems {
			fmt.Println("  -", p)
		}
	}
	os.Exit(1)
}
