// Command solros-mkfs formats a solrosfs image file, optionally copying a
// directory tree into it, and prints the resulting geometry.
//
//	solros-mkfs -size 64M -inodes 1024 image.sfs
//	solros-mkfs -size 64M -from ./corpus image.sfs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"solros/internal/block"
	"solros/internal/fs"
	"solros/internal/pcie"
	"solros/internal/sim"
)

func main() {
	size := flag.String("size", "64M", "image size (K/M/G suffixes)")
	inodes := flag.Uint("inodes", 0, "inode count (0 = auto)")
	from := flag.String("from", "", "directory tree to copy into the image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: solros-mkfs [-size N] [-inodes N] [-from dir] image.sfs")
		os.Exit(2)
	}
	out := flag.Arg(0)
	bytes, err := parseSize(*size)
	if err != nil {
		log.Fatal(err)
	}

	img := pcie.NewMemory(bytes)
	if err := fs.Mkfs(img, uint32(*inodes)); err != nil {
		log.Fatal(err)
	}

	if *from != "" {
		if err := copyTree(img, *from); err != nil {
			log.Fatal(err)
		}
	}

	if err := os.WriteFile(out, img.Slice(0, img.Size()), 0o644); err != nil {
		log.Fatal(err)
	}
	rep := fs.Check(img)
	fmt.Printf("%s: %d bytes, %d files, %d dirs, %d blocks used, fsck %s\n",
		out, bytes, rep.Files, rep.Dirs, rep.UsedBlocks, okString(rep.OK()))
}

// copyTree walks src and writes every regular file into the image through
// a real mount over an instant in-memory disk view of the image.
func copyTree(img *pcie.Memory, src string) error {
	fab := pcie.New(64 << 20)
	disk := block.WrapImage(fab, img)
	var werr error
	e := sim.NewEngine()
	e.Spawn("copy", 0, func(p *sim.Proc) {
		fsys, err := fs.Mount(p, fab, disk)
		if err != nil {
			werr = err
			return
		}
		werr = filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(src, path)
			if err != nil || rel == "." {
				return err
			}
			dst := "/" + filepath.ToSlash(rel)
			if info.IsDir() {
				return fsys.Mkdir(p, dst)
			}
			if !info.Mode().IsRegular() {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			f, err := fsys.Create(p, dst)
			if err != nil {
				return err
			}
			_, err = f.Write(p, 0, data)
			return err
		})
		if werr == nil {
			werr = fsys.Sync(p)
		}
	})
	if err := e.Run(); err != nil {
		return err
	}
	return werr
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func okString(ok bool) string {
	if ok {
		return "clean"
	}
	return "DIRTY"
}
