package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"solros/internal/bench"
)

// The benchdiff subcommand's exit codes are CI contract: 2 for unusable
// inputs (unreadable file, cross-schema compare), 1 for a regression past
// budget, 0 otherwise. runBenchDiff calls os.Exit, so each case re-execs
// the test binary and runs it in a child process.

// TestMain lets the re-exec'd child jump straight into runBenchDiff.
func TestMain(m *testing.M) {
	if args := os.Getenv("BENCHDIFF_CHILD_ARGS"); args != "" {
		runBenchDiff(filepath.SplitList(args))
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runDiffChild(t *testing.T, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"BENCHDIFF_CHILD_ARGS="+strings.Join(args, string(os.PathListSeparator)))
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("child: %v", err)
	}
	return 0
}

func writeDoc(t *testing.T, dir, name string, cb bench.CoreBench) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := bench.WriteCoreBench(path, cb); err != nil {
		t.Fatal(err)
	}
	return path
}

func scaleDoc(margin float64) bench.CoreBench {
	return bench.CoreBench{
		Schema: bench.ScaleSchema,
		Points: []bench.CorePoint{
			{Name: "scale_fs_knee_margin", Value: margin, Unit: "x", HigherIsBetter: true},
		},
	}
}

func TestBenchDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	scale := writeDoc(t, dir, "scale.json", scaleDoc(8))
	core := writeDoc(t, dir, "core.json", bench.CoreBench{
		Schema: bench.CoreSchema,
		Points: []bench.CorePoint{{Name: "tput", Value: 2, Unit: "GB/s", HigherIsBetter: true}},
	})
	worse := writeDoc(t, dir, "worse.json", scaleDoc(2))

	if code := runDiffChild(t, scale, scale); code != 0 {
		t.Errorf("self-compare exit = %d, want 0", code)
	}
	// Cross-schema compare is a usage error, not a regression.
	if code := runDiffChild(t, scale, core); code != 2 {
		t.Errorf("cross-schema exit = %d, want 2", code)
	}
	// Unreadable input is a usage error too.
	if code := runDiffChild(t, scale, filepath.Join(dir, "missing.json")); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
	// The knee margin collapsing is a hard gate failure.
	if code := runDiffChild(t, scale, worse); code != 1 {
		t.Errorf("regressed knee exit = %d, want 1", code)
	}
}
