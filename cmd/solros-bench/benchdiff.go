package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"solros/internal/bench"
)

// runBenchServe runs the gated serving points and writes BENCH_serve.json.
func runBenchServe(args []string) {
	fs := flag.NewFlagSet("benchserve", flag.ExitOnError)
	out := fs.String("o", "BENCH_serve.json", "output path for the serving baseline document")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench benchserve [-o BENCH_serve.json]")
		fmt.Fprintln(os.Stderr, "\nRuns the KV serving baseline (throughput and p99 below and at")
		fmt.Fprintln(os.Stderr, "saturation, cache on and off) and writes the document benchdiff")
		fmt.Fprintln(os.Stderr, "compares against.")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	sb := bench.ServeBenchmarks()
	for _, p := range sb.Points {
		fmt.Printf("%-24s %10.3f %s\n", p.Name, p.Value, p.Unit)
	}
	if err := bench.WriteCoreBench(*out, sb); err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "solros-bench: wrote %s\n", *out)
}

// runBenchScale runs the gated control-plane scale-out points and writes
// BENCH_scale.json.
func runBenchScale(args []string) {
	fs := flag.NewFlagSet("benchscale", flag.ExitOnError)
	out := fs.String("o", "BENCH_scale.json", "output path for the scale-out baseline document")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench benchscale [-o BENCH_scale.json]")
		fmt.Fprintln(os.Stderr, "\nRuns the control-plane scale-out points (sharded throughput and")
		fmt.Fprintln(os.Stderr, "speedup at 16 co-processors, saturation-knee positions for the")
		fmt.Fprintln(os.Stderr, "sharded and single-shard series, KV connection churn) and writes")
		fmt.Fprintln(os.Stderr, "the document benchdiff compares against.")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	sb := bench.ScaleBenchmarks()
	for _, p := range sb.Points {
		fmt.Printf("%-26s %10.3f %s\n", p.Name, p.Value, p.Unit)
	}
	if err := bench.WriteCoreBench(*out, sb); err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "solros-bench: wrote %s\n", *out)
}

// runBenchCore runs the core benchmark baseline and writes BENCH_core.json.
func runBenchCore(args []string) {
	fs := flag.NewFlagSet("benchcore", flag.ExitOnError)
	out := fs.String("o", "BENCH_core.json", "output path for the baseline document")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench benchcore [-o BENCH_core.json]")
		fmt.Fprintln(os.Stderr, "\nRuns the four core benchmark points (sync read, pipelined read,")
		fmt.Fprintln(os.Stderr, "chaos under NVMe errors, tracing overhead) and writes the baseline")
		fmt.Fprintln(os.Stderr, "document benchdiff compares against.")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	cb := bench.CoreBenchmarks()
	for _, p := range cb.Points {
		fmt.Printf("%-24s %10.3f %s\n", p.Name, p.Value, p.Unit)
	}
	if err := bench.WriteCoreBench(*out, cb); err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "solros-bench: wrote %s\n", *out)
}

// runBenchHotpath runs the zero-alloc hot-path benchmark points and writes
// BENCH_hotpath.json. -parallel arms the wall-clock backend: that many
// machines run the pipelined-read workload concurrently on real goroutines
// and the aggregate wall throughput is recorded as its own series (the
// sim-clock points are untouched and stay deterministic).
func runBenchHotpath(args []string) {
	fs := flag.NewFlagSet("benchhotpath", flag.ExitOnError)
	out := fs.String("o", "BENCH_hotpath.json", "output path for the hot-path document")
	parallel := fs.Int("parallel", 0, "wall-clock backend: run N machines on real goroutines and record aggregate wall GB/s (0 = skip)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench benchhotpath [-o BENCH_hotpath.json] [-parallel N]")
		fmt.Fprintln(os.Stderr, "\nMeasures the pipelined delegated read's heap traffic with the")
		fmt.Fprintln(os.Stderr, "zero-alloc pools off and on (virtual-time throughput, allocs/op,")
		fmt.Fprintln(os.Stderr, "B/op, and the headline allocs/op reduction).")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	hb := bench.HotpathBenchmarks(*parallel)
	for _, p := range hb.Points {
		fmt.Printf("%-36s %14.3f %s\n", p.Name, p.Value, p.Unit)
	}
	if err := bench.WriteCoreBench(*out, hb); err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "solros-bench: wrote %s\n", *out)
}

// runBenchDiff compares two BENCH_core.json documents and flags points
// that regressed past the budget.
func runBenchDiff(args []string) {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	maxRegress := fs.String("max-regress", "5%", "largest tolerated regression per point (e.g. 5%)")
	warn := fs.Bool("warn", false, "report regressions but exit 0 (CI warn-only gate)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench benchdiff [-max-regress 5%] [-warn] old.json new.json")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	budget, err := parsePercent(*maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(2)
	}
	oldCB, err := bench.LoadBenchAny(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(2)
	}
	newCB, err := bench.LoadBenchAny(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(2)
	}
	if oldCB.Schema != newCB.Schema {
		fmt.Fprintf(os.Stderr, "solros-bench: schema mismatch: %s carries %q, %s carries %q\n",
			fs.Arg(0), oldCB.Schema, fs.Arg(1), newCB.Schema)
		os.Exit(2)
	}
	deltas := bench.CompareCore(oldCB, newCB, budget)
	regressed := 0
	fmt.Printf("%-24s %12s %12s %9s  %s\n", "POINT", "OLD", "NEW", "WORSE%", "VERDICT")
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.Missing && d.Regressed:
			verdict = "MISSING (regression)"
		case d.Missing:
			verdict = "new point"
		case d.Regressed:
			verdict = fmt.Sprintf("REGRESSED (> %g%%)", budget)
		}
		if d.Regressed {
			regressed++
		}
		fmt.Printf("%-24s %12.3f %12.3f %9.2f  %s\n", d.Name, d.Old, d.New, d.WorsePct, verdict)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "solros-bench: %d point(s) regressed past %g%%\n", regressed, budget)
		if !*warn {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "solros-bench: warn-only mode, exiting 0")
	}
}

// parsePercent parses "5%" or "5" into 5.0.
func parsePercent(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("-max-regress: %q: want a percentage like 5%%", s)
	}
	return v, nil
}
