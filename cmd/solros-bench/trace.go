package main

import (
	"flag"
	"fmt"
	"os"

	"solros/internal/core"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/workload"
)

// runTrace implements the `trace` subcommand: run one traced delegated
// read (a cold buffered read through the proxy, so every stage of the data
// path fires — ring transit, proxy serve, cache fill, NVMe, DMA push) and
// print the request's waterfall plus the critical-path stage breakdown,
// whose rows sum to the end-to-end latency by construction. With more than
// one traced request retained, the per-stage p50/p99 rollup follows.
//
//	solros-bench trace                    # 4 MB cold read, full report
//	solros-bench trace -quick             # 256 KB read (CI smoke)
//	solros-bench trace -chrome out.json   # also dump a Chrome trace with flow arrows
//
// Exit status: 0 with a non-empty critical path, 1 when no traced request
// was retained (tracing plumbing broken).
func runTrace(args []string) {
	fset := flag.NewFlagSet("trace", flag.ExitOnError)
	bytesN := fset.Int64("bytes", 4<<20, "delegated read size")
	quick := fset.Bool("quick", false, "shrink the read to 256 KB (CI smoke)")
	chrome := fset.String("chrome", "", "also write a Chrome trace_event JSON with causal flow arrows (\"-\" = stdout)")
	flightDir := fset.String("flightrec", "", "also arm the flight recorder, dumping into this directory")
	fset.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench trace [-bytes n] [-quick] [-chrome out.json] [-flightrec dir]")
		fset.PrintDefaults()
	}
	fset.Parse(args)

	n := *bytesN
	if *quick {
		n = 256 << 10
	}
	sink := telemetry.New(telemetry.Options{})
	m := core.NewMachine(core.Config{
		Telemetry:      sink,
		Tracing:        true,
		FlightRecorder: *flightDir,
		Pipeline:       true,
		PhiMemBytes:    n + (64 << 20),
	})
	data := workload.Corpus(3, int(n))
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		fsc := mm.Phis[0].FS
		fd, err := fsc.Open(p, "/trace-demo", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			panic(err)
		}
		buf := fsc.AllocBuffer(n)
		copy(buf.Data, data)
		if _, err := fsc.Write(p, fd, 0, buf, n); err != nil {
			panic(err)
		}
		if err := fsc.Sync(p); err != nil {
			panic(err)
		}
		if err := fsc.Close(p, fd); err != nil {
			panic(err)
		}
		// The read of interest: cold buffered read, delegated to the proxy.
		fd, err = fsc.Open(p, "/trace-demo", ninep.OBuffer)
		if err != nil {
			panic(err)
		}
		if _, err := fsc.Read(p, fd, 0, buf, n); err != nil {
			panic(err)
		}
		if err := fsc.Close(p, fd); err != nil {
			panic(err)
		}
	})

	// The delegated read is the trace rooted at the pipelined-read stub
	// span; fall back to the widest trace if the read was too small to
	// pipeline.
	var pick uint64
	var pickTotal sim.Time
	var pickIsRead bool
	for _, tr := range sink.Traces() {
		rp := sink.CriticalPath(tr)
		if rp == nil {
			continue
		}
		isRead := rp.Root.Name == "dataplane.fs.read_pipelined"
		if pick == 0 || (isRead && !pickIsRead) ||
			(isRead == pickIsRead && rp.Total > pickTotal) {
			pick, pickTotal, pickIsRead = tr, rp.Total, isRead
		}
	}
	if pick == 0 {
		fmt.Fprintln(os.Stderr, "solros-bench: no traced request retained")
		os.Exit(1)
	}
	if err := sink.WriteCriticalPath(os.Stdout, pick); err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := sink.WriteStageRollup(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(1)
	}
	if *chrome != "" {
		out := os.Stdout
		if *chrome != "-" {
			f, err := os.Create(*chrome)
			if err != nil {
				fmt.Fprintln(os.Stderr, "solros-bench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := sink.WriteChromeTrace(out); err != nil {
			fmt.Fprintln(os.Stderr, "solros-bench:", err)
			os.Exit(1)
		}
		if *chrome != "-" {
			fmt.Fprintf(os.Stderr, "solros-bench: wrote %s\n", *chrome)
		}
	}
}
