// Command solros-bench regenerates the paper's evaluation: one subcommand
// per table or figure (run with no arguments to list them, or "all" to run
// everything). Output is a plain table of (series, x, value) points per
// experiment — the same rows the paper plots.
//
// Usage:
//
//	solros-bench            # list experiments
//	solros-bench fig1a      # run one experiment
//	solros-bench all        # run every experiment in paper order
//
// Telemetry: -trace writes a Chrome trace_event JSON of every span the run
// produced (open at chrome://tracing or https://ui.perfetto.dev), and
// -metrics writes the text report of counters, gauges, and histograms.
// Either flag enables the telemetry sink for all machines built during the
// run; "-" writes to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"solros/internal/bench"
	"solros/internal/core"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

var (
	csvOut     = flag.String("csv", "", "also append results as CSV to this file")
	traceOut   = flag.String("trace", "", "write Chrome trace_event JSON here (\"-\" = stdout); enables telemetry")
	metricsOut = flag.String("metrics", "", "write the text metrics report here (\"-\" = stdout); enables telemetry")
	seed       = flag.Int64("seed", 42, "fault-plan seed for the chaos experiment")
	quick      = flag.Bool("quick", false, "shrink the chaos workload to a smoke test (CI)")
	traceReq   = flag.Bool("trace-requests", false, "arm end-to-end causal tracing on every machine (16-byte trailer per RPC frame; perturbs figures); enables telemetry")
	flightRec  = flag.String("flightrec", "", "arm the flight recorder on every machine; blackbox JSON dumps land in this directory; enables telemetry")
	windows    = flag.Duration("windows", 0, "arm windowed stage/queue rollups with this sim-clock window length (e.g. 1ms); enables telemetry")
	sloSpec    = flag.String("slo", "", "arm SLO objectives: semicolon-separated METRIC:pNN<DUR specs (e.g. 'dataplane.rpc.Tread:p99<500us'); enables telemetry and windows")
	metricAddr = flag.String("metrics-addr", "", "serve OpenMetrics over HTTP at this address (/metrics, /metrics/windows); enables telemetry")
	windowsOut = flag.String("windows-out", "", "dump one OpenMetrics file per completed window into this directory at exit")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	bench.Seed = *seed
	bench.Quick = *quick
	args := flag.Args()
	if len(args) < 1 {
		usage()
		return
	}
	objectives, err := parseSLOSpec(*sloSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(2)
	}
	if *traceOut != "" || *metricsOut != "" || *traceReq || *flightRec != "" ||
		*windows > 0 || len(objectives) > 0 || *metricAddr != "" || *windowsOut != "" {
		// Machines pick the sink up via telemetry.Default at construction.
		telemetry.Default = telemetry.New(telemetry.Options{})
	}
	// Machines pick these up in Config.fill, so every machine an
	// experiment builds is armed without per-figure plumbing.
	core.DefaultTracing = *traceReq
	core.DefaultFlightRecorder = *flightRec
	core.DefaultWindows = simDuration(*windows)
	core.DefaultSLO = objectives
	core.DefaultMetricsAddr = *metricAddr
	if *windowsOut != "" && core.DefaultWindows == 0 && len(objectives) == 0 {
		core.DefaultWindows = simDuration(time.Millisecond)
	}
	switch args[0] {
	case "all":
		for _, id := range bench.IDs() {
			runOne(id)
		}
	case "help":
		usage()
	case "explore":
		runExplore(args[1:])
	case "trace":
		runTrace(args[1:])
	case "analyze":
		runAnalyze(args[1:])
		return
	case "top":
		runTop(args[1:])
		return
	case "benchcore":
		runBenchCore(args[1:])
		return
	case "benchhotpath":
		runBenchHotpath(args[1:])
		return
	case "benchserve":
		runBenchServe(args[1:])
		return
	case "benchscale":
		runBenchScale(args[1:])
		return
	case "benchanalyze":
		runBenchAnalyze(args[1:])
		return
	case "benchdiff":
		runBenchDiff(args[1:])
		return
	default:
		for _, id := range args {
			if _, _, ok := bench.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "solros-bench: unknown experiment %q\n\n", id)
				usage()
				os.Exit(2)
			}
		}
		for _, id := range args {
			runOne(id)
		}
	}
	writeTelemetry()
}

func runOne(id string) {
	run, desc, _ := bench.Lookup(id)
	fmt.Printf("==== %s: %s ====\n", id, desc)
	start := time.Now()
	rows := run()
	fmt.Print(bench.Format(rows))
	fmt.Printf("---- %s done in %v (wall clock) ----\n\n", id, time.Since(start).Round(time.Millisecond))
	if *csvOut != "" {
		f, err := os.OpenFile(*csvOut, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solros-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		for _, r := range rows {
			fmt.Fprintf(f, "%s,%s,%s,%g,%s\n", r.Fig, r.Series, r.X, r.Value, r.Unit)
		}
	}
}

// writeTelemetry flushes the sink to the requested outputs after all
// experiments finish.
func writeTelemetry() {
	sink := telemetry.Default
	if sink == nil {
		return
	}
	emit := func(path string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		if path == "-" {
			if err := write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "solros-bench:", err)
				os.Exit(1)
			}
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solros-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintln(os.Stderr, "solros-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "solros-bench: wrote %s\n", path)
	}
	emit(*traceOut, sink.WriteChromeTrace)
	emit(*metricsOut, sink.WriteText)
	if *windowsOut != "" {
		n, err := sink.DumpWindowFiles(*windowsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solros-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "solros-bench: wrote %d window dump(s) to %s\n", n, *windowsOut)
	}
	for _, v := range sink.SLOViolations() {
		fmt.Fprintln(os.Stderr, "solros-bench:", v)
	}
}

// simDuration converts a wall-clock flag duration to sim virtual time
// (both are nanoseconds).
func simDuration(d time.Duration) sim.Time { return sim.Time(d) }

// parseSLOSpec parses the -slo flag: semicolon-separated objectives of
// the form METRIC:pNN<DUR, e.g. "dataplane.rpc.Tread:p99<500us". Burn
// thresholds and window counts take the watchdog defaults.
func parseSLOSpec(spec string) ([]telemetry.Objective, error) {
	if spec == "" {
		return nil, nil
	}
	var out []telemetry.Objective
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		colon := strings.LastIndex(part, ":")
		if colon <= 0 {
			return nil, fmt.Errorf("-slo: %q: want METRIC:pNN<DUR", part)
		}
		metric, cond := part[:colon], part[colon+1:]
		lt := strings.Index(cond, "<")
		if !strings.HasPrefix(cond, "p") || lt < 2 {
			return nil, fmt.Errorf("-slo: %q: want METRIC:pNN<DUR", part)
		}
		pct, err := strconv.ParseFloat(cond[1:lt], 64)
		if err != nil || pct <= 0 || pct > 100 {
			return nil, fmt.Errorf("-slo: %q: bad percentile", part)
		}
		target, err := time.ParseDuration(cond[lt+1:])
		if err != nil || target <= 0 {
			return nil, fmt.Errorf("-slo: %q: bad target duration", part)
		}
		out = append(out, telemetry.Objective{
			Metric:     metric,
			Percentile: pct,
			Target:     simDuration(target),
		})
	}
	return out, nil
}

func usage() {
	fmt.Println("solros-bench — regenerate the Solros paper's tables and figures")
	fmt.Println("\nusage: solros-bench [-csv out.csv] [-trace out.json] [-metrics out.txt] [-seed n] [-quick] <experiment>...")
	fmt.Println("\nexperiments:")
	for _, e := range bench.Experiments {
		fmt.Printf("  %-8s %s\n", e.ID, e.Desc)
	}
	fmt.Println("  all      run everything in paper order")
	fmt.Println("  explore  sweep scheduling seeds with invariant oracles armed (see explore -h)")
	fmt.Println("  trace    run one traced delegated read and print its critical-path breakdown (see trace -h)")
	fmt.Println("  analyze  replay the multi-tenant KV mix and print the tail-latency blame report (see analyze -h)")
	fmt.Println("  top      run a looping workload and render a live per-stage utilization/latency table (see top -h)")
	fmt.Println("  benchcore   run the core benchmark points and write BENCH_core.json (see benchcore -h)")
	fmt.Println("  benchhotpath  run the zero-alloc hot-path points (and optional -parallel wall-clock backend), write BENCH_hotpath.json")
	fmt.Println("  benchserve  run the KV serving baseline points and write BENCH_serve.json (see benchserve -h)")
	fmt.Println("  benchscale  run the control-plane scale-out points and write BENCH_scale.json (see benchscale -h)")
	fmt.Println("  benchanalyze  run the trace-analytics points and write BENCH_analyze.json (see benchanalyze -h)")
	fmt.Println("  benchdiff   compare two benchmark JSON files of the same schema and flag regressions (see benchdiff -h)")
}
