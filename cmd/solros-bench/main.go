// Command solros-bench regenerates the paper's evaluation: one subcommand
// per table or figure (run with no arguments to list them, or "all" to run
// everything). Output is a plain table of (series, x, value) points per
// experiment — the same rows the paper plots.
//
// Usage:
//
//	solros-bench            # list experiments
//	solros-bench fig1a      # run one experiment
//	solros-bench all        # run every experiment in paper order
//
// Telemetry: -trace writes a Chrome trace_event JSON of every span the run
// produced (open at chrome://tracing or https://ui.perfetto.dev), and
// -metrics writes the text report of counters, gauges, and histograms.
// Either flag enables the telemetry sink for all machines built during the
// run; "-" writes to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"solros/internal/bench"
	"solros/internal/core"
	"solros/internal/telemetry"
)

var (
	csvOut     = flag.String("csv", "", "also append results as CSV to this file")
	traceOut   = flag.String("trace", "", "write Chrome trace_event JSON here (\"-\" = stdout); enables telemetry")
	metricsOut = flag.String("metrics", "", "write the text metrics report here (\"-\" = stdout); enables telemetry")
	seed       = flag.Int64("seed", 42, "fault-plan seed for the chaos experiment")
	quick      = flag.Bool("quick", false, "shrink the chaos workload to a smoke test (CI)")
	traceReq   = flag.Bool("trace-requests", false, "arm end-to-end causal tracing on every machine (16-byte trailer per RPC frame; perturbs figures); enables telemetry")
	flightRec  = flag.String("flightrec", "", "arm the flight recorder on every machine; blackbox JSON dumps land in this directory; enables telemetry")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	bench.Seed = *seed
	bench.Quick = *quick
	args := flag.Args()
	if len(args) < 1 {
		usage()
		return
	}
	if *traceOut != "" || *metricsOut != "" || *traceReq || *flightRec != "" {
		// Machines pick the sink up via telemetry.Default at construction.
		telemetry.Default = telemetry.New(telemetry.Options{})
	}
	// Machines pick these up in Config.fill, so every machine an
	// experiment builds is armed without per-figure plumbing.
	core.DefaultTracing = *traceReq
	core.DefaultFlightRecorder = *flightRec
	switch args[0] {
	case "all":
		for _, id := range bench.IDs() {
			runOne(id)
		}
	case "help":
		usage()
	case "explore":
		runExplore(args[1:])
	case "trace":
		runTrace(args[1:])
	default:
		for _, id := range args {
			if _, _, ok := bench.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "solros-bench: unknown experiment %q\n\n", id)
				usage()
				os.Exit(2)
			}
		}
		for _, id := range args {
			runOne(id)
		}
	}
	writeTelemetry()
}

func runOne(id string) {
	run, desc, _ := bench.Lookup(id)
	fmt.Printf("==== %s: %s ====\n", id, desc)
	start := time.Now()
	rows := run()
	fmt.Print(bench.Format(rows))
	fmt.Printf("---- %s done in %v (wall clock) ----\n\n", id, time.Since(start).Round(time.Millisecond))
	if *csvOut != "" {
		f, err := os.OpenFile(*csvOut, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solros-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		for _, r := range rows {
			fmt.Fprintf(f, "%s,%s,%s,%g,%s\n", r.Fig, r.Series, r.X, r.Value, r.Unit)
		}
	}
}

// writeTelemetry flushes the sink to the requested outputs after all
// experiments finish.
func writeTelemetry() {
	sink := telemetry.Default
	if sink == nil {
		return
	}
	emit := func(path string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		if path == "-" {
			if err := write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "solros-bench:", err)
				os.Exit(1)
			}
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solros-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintln(os.Stderr, "solros-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "solros-bench: wrote %s\n", path)
	}
	emit(*traceOut, sink.WriteChromeTrace)
	emit(*metricsOut, sink.WriteText)
}

func usage() {
	fmt.Println("solros-bench — regenerate the Solros paper's tables and figures")
	fmt.Println("\nusage: solros-bench [-csv out.csv] [-trace out.json] [-metrics out.txt] [-seed n] [-quick] <experiment>...")
	fmt.Println("\nexperiments:")
	for _, e := range bench.Experiments {
		fmt.Printf("  %-8s %s\n", e.ID, e.Desc)
	}
	fmt.Println("  all      run everything in paper order")
	fmt.Println("  explore  sweep scheduling seeds with invariant oracles armed (see explore -h)")
	fmt.Println("  trace    run one traced delegated read and print its critical-path breakdown (see trace -h)")
}
