package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"solros/internal/core"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// runTop runs a looping delegated-read workload and renders a live
// per-stage utilization/latency table from the latest complete telemetry
// window while the sim crunches. The sim advances virtual time as fast as
// the host allows; the table refreshes on the wall clock, so long runs
// show their pipeline shape evolving (cache warming, readahead kicking
// in) instead of a single end-of-run aggregate.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	every := fs.Duration("every", time.Millisecond, "window length on the sim clock")
	duration := fs.Duration("duration", 200*time.Millisecond, "virtual run length")
	refresh := fs.Duration("refresh", 250*time.Millisecond, "wall-clock refresh interval")
	bs := fs.Int64("bs", 512<<10, "delegated read size in bytes")
	phis := fs.Int("phis", 2, "co-processor count")
	plain := fs.Bool("plain", false, "print refreshes sequentially instead of redrawing (logs, CI)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench top [-every 1ms] [-duration 200ms] [-refresh 250ms] [-bs n] [-phis n] [-plain]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	tel := telemetry.New(telemetry.Options{})
	m := core.NewMachine(core.Config{
		Phis:      *phis,
		Telemetry: tel,
		// Tracing feeds the span stream the stage windows aggregate —
		// without it only queue accounting would show.
		Tracing: true,
		Windows: sim.Time(*every),
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.MustRun(func(p *sim.Proc, mm *core.Machine) {
			const fileBytes = 8 << 20
			f, err := mm.FS.Open(p, "/top")
			if err != nil {
				f2, err2 := mm.Phis[0].FS.Open(p, "/top", ninep.OCreate|ninep.OBuffer)
				if err2 != nil {
					panic(err2)
				}
				_ = mm.Phis[0].FS.Close(p, f2)
				f, err = mm.FS.Open(p, "/top")
				if err != nil {
					panic(err)
				}
			}
			if err := f.Truncate(p, fileBytes); err != nil {
				panic(err)
			}
			end := p.Now() + sim.Time(*duration)
			core.Parallel(p, len(mm.Phis), "top-reader", func(i int, wp *sim.Proc) {
				phi := mm.Phis[i]
				fd, err := phi.FS.Open(wp, "/top", ninep.OBuffer)
				if err != nil {
					panic(err)
				}
				buf := phi.FS.AllocBuffer(*bs)
				for off := int64(0); wp.Now() < end; off += *bs {
					if off+*bs > fileBytes {
						off = 0
					}
					if _, err := phi.FS.Read(wp, fd, off, buf, *bs); err != nil {
						panic(err)
					}
				}
			})
		})
	}()

	ticker := time.NewTicker(*refresh)
	defer ticker.Stop()
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-ticker.C:
		}
		if !*plain {
			fmt.Print("\033[H\033[2J")
		}
		renderTop(tel, sim.Time(*every))
	}
	fmt.Printf("\nrun complete: %d windows, final vtime %v\n",
		len(tel.CompletedWindows()), m.Engine.Now())
}

// renderTop prints the latest complete window's stage and queue tables.
func renderTop(tel *telemetry.Sink, every sim.Time) {
	idx, ok := tel.LatestWindow()
	if !ok {
		fmt.Println("solros top — waiting for the first complete window...")
		return
	}
	r := tel.WindowRollup(idx)
	if r == nil {
		return
	}
	fmt.Printf("solros top — window %d [%v, %v) of %v\n\n", r.Index, r.Start, r.End, every)
	fmt.Printf("%-14s %7s %8s %12s %12s\n", "STAGE", "UTIL", "OPS", "P50", "P99")
	for _, st := range r.Stages {
		fmt.Printf("%-14s %6.1f%% %8d %12v %12v\n",
			st.Stage, st.Util*100, st.Ops, st.P50, st.P99)
	}
	if len(r.Queues) > 0 {
		fmt.Printf("\n%-34s %9s %12s %8s %6s %12s\n", "QUEUE", "ARRIVALS", "RATE", "L", "MAX", "W")
		for _, q := range r.Queues {
			fmt.Printf("%-34s %9d %9.0f/s %8.2f %6d %12v\n",
				q.Queue, q.Arrivals, q.RateHz, q.MeanOcc, q.MaxOcc, q.Wait)
		}
	}
}
