package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"solros/internal/explore"
)

// runExplore implements the `explore` subcommand: sweep scheduling seeds
// over the exploration workloads with every invariant oracle armed, shrink
// any failure to its shortest failing prefix, and write replay artifacts.
//
//	solros-bench explore -seeds 200                 # sweep the default set
//	solros-bench explore -workload chaos -seeds 500
//	solros-bench explore -workload transport -replay 17 -budget 3
//
// Exit status: 0 when every explored schedule upheld every invariant,
// 1 on any violation, 2 on usage errors.
func runExplore(args []string) {
	fset := flag.NewFlagSet("explore", flag.ExitOnError)
	seeds := fset.Int("seeds", 200, "seeds to sweep per workload (1..n)")
	workloads := fset.String("workload", "", "comma-separated workload names (default: the full sweep set)")
	replay := fset.Int64("replay", 0, "replay one seed instead of sweeping (from a failure artifact)")
	budget := fset.Int64("budget", 0, "sched-draw budget for -replay (0 = unlimited)")
	artifacts := fset.String("artifacts", "explore-artifacts", "directory for replay artifacts of failing seeds")
	fset.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench explore [-seeds n] [-workload w,...] [-replay seed [-budget n]] [-artifacts dir]")
		fmt.Fprintln(os.Stderr, "\nworkloads:")
		for _, w := range explore.Workloads() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", w.Name, w.Desc)
		}
		fset.PrintDefaults()
	}
	fset.Parse(args)

	var ws []explore.Workload
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			w, ok := explore.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "solros-bench: unknown workload %q\n\n", name)
				fset.Usage()
				os.Exit(2)
			}
			ws = append(ws, w)
		}
	}

	if *replay != 0 {
		if len(ws) != 1 {
			fmt.Fprintln(os.Stderr, "solros-bench: -replay needs exactly one -workload")
			os.Exit(2)
		}
		res := explore.RunSeed(ws[0], *replay, *budget)
		fmt.Println(res.String())
		if res.Failed() {
			os.Exit(1)
		}
		return
	}

	arts := explore.Explore(explore.Options{
		Seeds:       *seeds,
		Workloads:   ws,
		ArtifactDir: *artifacts,
		Log: func(format string, a ...any) {
			fmt.Printf(format+"\n", a...)
		},
	})
	if len(arts) > 0 {
		fmt.Printf("explore: %d violation(s); replay artifacts in %s\n", len(arts), *artifacts)
		os.Exit(1)
	}
	fmt.Println("explore: all explored schedules upheld all invariants")
}
