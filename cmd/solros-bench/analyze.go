package main

import (
	"flag"
	"fmt"
	"os"

	"solros/internal/bench"
)

// runAnalyze replays the fig-serve-style planted-anomaly workload with
// the trace analyzer armed and prints the blame report: which tenant
// and which shard own the p99 tail, which pipeline stage they lose the
// time in, and the per-tenant/per-shard rollup tables. The output is
// byte-deterministic for a given -seed, so two runs diff clean — CI
// pins that.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench [-seed n] [-quick] analyze")
		fmt.Fprintln(os.Stderr, "\nServes the multi-tenant KV mix with per-request tracing and the")
		fmt.Fprintln(os.Stderr, "passive trace analyzer armed, then prints the tail-latency blame")
		fmt.Fprintln(os.Stderr, "report: p99-outlier cohort vs p50 baseline, ranked by tenant and")
		fmt.Fprintln(os.Stderr, "shard skew, with the dominant stage and queue-delta per culprit,")
		fmt.Fprintln(os.Stderr, "followed by per-tenant and per-shard latency rollups and the")
		fmt.Fprintln(os.Stderr, "shard-imbalance hotspot verdict.")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	s := bench.AnalyzeReport()
	if s.Traces == 0 {
		fmt.Fprintln(os.Stderr, "solros-bench: trace index is empty — no workload.request roots were finalized")
		os.Exit(1)
	}
	fmt.Print(s.Text)
	switch {
	case s.HotShard != "" && s.HotTenant != "":
		fmt.Printf("\nhotspot: shard %s is hot (dominant tenant %s)\n", s.HotShard, s.HotTenant)
	case s.HotShard != "":
		fmt.Printf("\nhotspot: shard %s is hot\n", s.HotShard)
	default:
		fmt.Println("\nhotspot: none (no shard above the skew threshold)")
	}
	fmt.Fprintf(os.Stderr, "solros-bench: indexed %d traces; top-2 blame entries name %d/2 planted culprits\n",
		s.Traces, s.TopHits)
}

// runBenchAnalyze runs the gated analyze points and writes
// BENCH_analyze.json. The overhead point is committed at 0.0: the
// analyzer is passive by construction (it only observes completed
// spans), so any rise off zero is a regression benchdiff flags.
func runBenchAnalyze(args []string) {
	fs := flag.NewFlagSet("benchanalyze", flag.ExitOnError)
	out := fs.String("o", "BENCH_analyze.json", "output path for the analyze baseline document")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: solros-bench benchanalyze [-o BENCH_analyze.json]")
		fmt.Fprintln(os.Stderr, "\nRuns the trace-analytics points (analyzer overhead vs tracing-only,")
		fmt.Fprintln(os.Stderr, "throughput and p99 with the analyzer armed, trace-index depth, and")
		fmt.Fprintln(os.Stderr, "blame-report accuracy on the planted anomaly) and writes the")
		fmt.Fprintln(os.Stderr, "document benchdiff compares against.")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	ab := bench.AnalyzeBenchmarks()
	for _, p := range ab.Points {
		fmt.Printf("%-26s %10.3f %s\n", p.Name, p.Value, p.Unit)
	}
	if err := bench.WriteCoreBench(*out, ab); err != nil {
		fmt.Fprintln(os.Stderr, "solros-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "solros-bench: wrote %s\n", *out)
}
