// Benchmarks regenerating the paper's tables and figures, one per
// experiment; `go test -bench=. -benchmem` runs the full evaluation.
// Each benchmark reports a headline custom metric alongside Go's timing so
// the benchmark log itself captures the experiment's result.
package main_test

import (
	"runtime"
	"testing"

	"solros/internal/bench"
)

// runFig executes the experiment b.N times and reports metric(rows) from
// the final run under the given unit.
func runFig(b *testing.B, id string, metric func([]bench.Row) (float64, string)) {
	b.Helper()
	run, _, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		rows = run()
	}
	if len(rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	if metric != nil {
		v, unit := metric(rows)
		b.ReportMetric(v, unit)
	}
}

// maxOf reports the maximum value among rows whose series contains match.
func maxOf(match string) func([]bench.Row) (float64, string) {
	return func(rows []bench.Row) (float64, string) {
		best := 0.0
		unit := ""
		for _, r := range rows {
			if contains(r.Series, match) && r.Value > best {
				best = r.Value
				unit = r.Unit
			}
		}
		return best, unit
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func BenchmarkFig1aFileRandomRead(b *testing.B) {
	runFig(b, "fig1a", maxOf("phi-solros"))
}

func BenchmarkFig1bTCPLatency(b *testing.B) {
	runFig(b, "fig1b", maxOf("phi-linux"))
}

func BenchmarkFig4PCIe(b *testing.B) {
	runFig(b, "fig4", maxOf("dma-host-init"))
}

func BenchmarkTable1LinesOfCode(b *testing.B) {
	runFig(b, "table1", maxOf("TOTAL"))
}

func BenchmarkFig8RingBuffer(b *testing.B) {
	runFig(b, "fig8", maxOf("solros-combining"))
}

func BenchmarkFig9LazyUpdate(b *testing.B) {
	runFig(b, "fig9", maxOf("lazy"))
}

func BenchmarkFig10AdaptiveCopy(b *testing.B) {
	runFig(b, "fig10", maxOf("adaptive"))
}

func BenchmarkFig11RandRead(b *testing.B) {
	runFig(b, "fig11", maxOf("phi-solros"))
}

func BenchmarkFig12RandWrite(b *testing.B) {
	runFig(b, "fig12", maxOf("phi-solros"))
}

func BenchmarkFig13Breakdown(b *testing.B) {
	runFig(b, "fig13", maxOf("phi-virtio"))
}

func BenchmarkFig14TCPThroughput(b *testing.B) {
	runFig(b, "fig14", maxOf("phi-solros"))
}

func BenchmarkFig15TCPTail(b *testing.B) {
	runFig(b, "fig15", maxOf("phi-linux"))
}

func BenchmarkFig16LoadBalance(b *testing.B) {
	runFig(b, "fig16", maxOf("round-robin"))
}

func BenchmarkFig17TextIndex(b *testing.B) {
	runFig(b, "fig17", maxOf("phi-solros"))
}

func BenchmarkFig18ImageSearch(b *testing.B) {
	runFig(b, "fig18", maxOf("phi-solros"))
}

func BenchmarkFig19ControlPlaneScalability(b *testing.B) {
	runFig(b, "fig19", maxOf("cache-hit"))
}

func BenchmarkAblations(b *testing.B) {
	runFig(b, "ablate", maxOf("nvme-coalescing"))
}

func BenchmarkPipelinedRead(b *testing.B) {
	runFig(b, "pipeline", maxOf("pipelined"))
}

// BenchmarkPipelinedReadWall is the wall-clock parallel backend: GOMAXPROCS
// machines each run the pipelined-read workload on a real goroutine and the
// reported metric is aggregate wall-clock throughput. Virtual-time results
// are untouched (each sim stays deterministic); only the harness fans out.
func BenchmarkPipelinedReadWall(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	var wall float64
	for i := 0; i < b.N; i++ {
		wall = bench.WallPipelinedRead(true, workers)
	}
	b.ReportMetric(wall, "GB/s-wall")
	b.ReportMetric(float64(workers), "workers")
}
