// Shared listening socket demo (§4.4.3): four co-processors listen on the
// same port; the control plane shards incoming connections across them
// with a pluggable balancing policy. Run it twice to compare round-robin
// with least-loaded balancing under skewed request costs.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"solros/internal/controlplane"
	"solros/internal/core"
	"solros/internal/sim"
)

const (
	port  = 8080
	conns = 24
)

func main() {
	for _, policy := range []string{"round-robin", "least-loaded"} {
		served := run(policy)
		fmt.Printf("%-12s connections per co-processor: %v\n", policy, served)
	}
}

func run(policy string) []int {
	m := core.NewMachine(core.Config{Phis: 4})
	m.EnableNetwork()
	served := make([]int, 4)

	err := m.Run(func(p *sim.Proc, m *core.Machine) {
		switch policy {
		case "least-loaded":
			m.TCPProxy.Balance = controlplane.LeastLoaded{}
		default:
			m.TCPProxy.Balance = &controlplane.RoundRobin{}
		}

		done := sim.NewWaitGroup("lb")
		for i, phi := range m.Phis {
			if err := phi.Net.Listen(p, port); err != nil {
				log.Fatal(err)
			}
			i, phi := i, phi
			done.Add(1)
			p.Spawn(fmt.Sprintf("server-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				for {
					sock, err := phi.Net.Accept(sp, port)
					if err != nil {
						return // machine shutting down
					}
					served[i]++
					req, err := sock.RecvFull(sp, 16)
					if err != nil || len(req) != 16 {
						return
					}
					// Co-processors 0 and 1 are "slow" for this demo:
					// their requests pin connections longer, so the
					// least-loaded policy shifts work to 2 and 3.
					if i < 2 {
						sp.Advance(3 * sim.Millisecond)
					} else {
						sp.Advance(200 * sim.Microsecond)
					}
					sock.Send(sp, []byte("ok"))
					sock.Close(sp)
				}
			})
		}

		done.Add(1)
		p.Spawn("clients", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			for k := 0; k < conns; k++ {
				conn, err := m.ClientStack.Dial(cp, m.HostStack, port)
				if err != nil {
					log.Fatal(err)
				}
				side := conn.Side(m.ClientStack)
				side.Send(cp, make([]byte, 16))
				// Don't wait for completion: keep connections
				// overlapping so load imbalance is visible.
				cp.Advance(150 * sim.Microsecond)
				side.Close(cp)
			}
			// Close the shared listeners so the servers drain.
			cp.Advance(20 * sim.Millisecond)
			m.TCPProxy.Stop(cp)
		})
		p.WaitWG(done)
	})
	if err != nil {
		log.Fatal(err)
	}
	return served
}
