// Quickstart: assemble a Solros machine, run a co-processor application
// that does file I/O through the data-plane stub, and inspect which data
// path the control plane chose.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"solros/internal/core"
	"solros/internal/ninep"
	"solros/internal/sim"
)

func main() {
	// A machine with one Xeon Phi, an NVMe SSD with solrosfs, and the
	// control-plane proxies on the host.
	m := core.NewMachine(core.Config{Phis: 1})

	err := m.Run(func(p *sim.Proc, m *core.Machine) {
		phi := m.Phis[0]

		// The co-processor application: create a file, write a
		// greeting, read it back. Every call becomes an RPC to the
		// host's file-system proxy; the data moves by device DMA
		// between the SSD and this co-processor's memory.
		fd, err := phi.FS.Open(p, "/hello.txt", ninep.OCreate)
		if err != nil {
			log.Fatal(err)
		}
		buf := phi.FS.AllocBuffer(4096)
		msg := []byte("hello from the data plane!")
		copy(buf.Data, msg)
		if _, err := phi.FS.Write(p, fd, 0, buf, int64(len(msg))); err != nil {
			log.Fatal(err)
		}

		out := phi.FS.AllocBuffer(4096)
		n, err := phi.FS.Read(p, fd, 0, out, int64(len(msg)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %d bytes through the Solros stack: %q\n", n, out.Data[:n])

		size, mode, _ := phi.FS.Stat(p, "/hello.txt")
		fmt.Printf("stat: size=%d mode=%d\n", size, mode)

		fmt.Printf("virtual time elapsed: %v\n\n", p.Now())
		fmt.Print(m.Report())
	})
	if err != nil {
		log.Fatal(err)
	}
}
