// Text indexing on the co-processor (the paper's first application, §6.2):
// seed a corpus on solrosfs, then index it from the Xeon Phi with all 61
// cores pulling chunks through the Solros file-system service, and query
// the resulting inverted index.
//
//	go run ./examples/textindex
package main

import (
	"fmt"
	"log"

	"solros/internal/apps/textindex"
	"solros/internal/core"
	"solros/internal/dataplane"
	"solros/internal/sim"
	"solros/internal/workload"
)

const (
	files     = 8
	fileBytes = 1 << 20
	chunk     = 256 << 10
	workers   = 32
)

func main() {
	m := core.NewMachine(core.Config{Phis: 1, DiskBytes: 64 << 20, PhiMemBytes: 64 << 20})
	err := m.Run(func(p *sim.Proc, m *core.Machine) {
		// Seed the corpus through the host file system.
		if err := m.FS.Mkdir(p, "/corpus"); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < files; i++ {
			f, err := m.FS.Create(p, fmt.Sprintf("/corpus/doc%d", i))
			if err != nil {
				log.Fatal(err)
			}
			if _, err := f.Write(p, 0, workload.Corpus(int64(i), fileBytes)); err != nil {
				log.Fatal(err)
			}
		}

		// Index from the co-processor: a worker pool pulls (file,
		// offset) items from a shared queue.
		phi := m.Phis[0]
		type item struct {
			file int
			off  int64
		}
		var queue []item
		for f := 0; f < files; f++ {
			for off := int64(0); off < fileBytes; off += chunk {
				queue = append(queue, item{f, off})
			}
		}
		next := 0
		shards := make([]*textindex.Index, workers)
		start := p.Now()
		core.Parallel(p, workers, "indexer", func(w int, wp *sim.Proc) {
			shards[w] = textindex.NewIndex()
			buf := phi.FS.AllocBuffer(chunk)
			open := map[int]dataplane.Fd{}
			for {
				if next >= len(queue) {
					return
				}
				it := queue[next]
				next++
				fd, ok := open[it.file]
				if !ok {
					var err error
					fd, err = phi.FS.Open(wp, fmt.Sprintf("/corpus/doc%d", it.file), 0)
					if err != nil {
						log.Fatal(err)
					}
					open[it.file] = fd
				}
				n, err := phi.FS.Read(wp, fd, it.off, buf, chunk)
				if err != nil {
					log.Fatal(err)
				}
				shards[w].AddDocument(wp, phi.Pool.Core(w), int32(it.file), buf.Data[:n])
			}
		})
		index := textindex.NewIndex()
		for _, s := range shards {
			index.Merge(s)
		}
		elapsed := p.Now() - start

		total := int64(files * fileBytes)
		fmt.Printf("indexed %d MB in %v (virtual) — %.0f MB/s\n",
			total>>20, elapsed, float64(total)/elapsed.Seconds()/1e6)
		fmt.Printf("documents: %d, distinct terms: %d\n", index.Docs, index.Terms())
		for _, term := range []string{"solros", "coprocessor", "data"} {
			fmt.Printf("  postings for %q: %d\n", term, len(index.Lookup(term)))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
