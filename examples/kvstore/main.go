// A sharded key-value store on Solros — the scenario §4.4.3 motivates:
// two co-processors listen on one port; the control plane routes each
// connection by the key it carries (content-based balancing), so every
// key is owned by exactly one co-processor. Each shard persists its data
// in an append-only log on solrosfs through the file-system service and
// serves its connections with the event-dispatcher-backed Poller.
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"solros/internal/controlplane"
	"solros/internal/core"
	"solros/internal/dataplane"
	"solros/internal/ninep"
	"solros/internal/sim"
)

const (
	port    = 6379
	shards  = 2
	keys    = 24
	updates = 2
)

// Wire protocol: 'P' keyLen key valLen val -> "OK"
//                'G' keyLen key           -> valLen val (valLen=0: miss)

func main() {
	m := core.NewMachine(core.Config{Phis: shards})
	m.EnableNetwork()
	err := m.Run(func(p *sim.Proc, m *core.Machine) {
		// Route connections by the key in their first request.
		m.TCPProxy.Balance = &controlplane.ContentBalancer{
			Key: func(first []byte) uint32 {
				if len(first) < 2 {
					return 0
				}
				kl := int(first[1])
				if len(first) < 2+kl {
					return 0
				}
				return controlplane.FNV1a(first[2 : 2+kl])
			},
		}

		done := sim.NewWaitGroup("kv")
		for i, phi := range m.Phis {
			i, phi := i, phi
			if err := phi.Net.Listen(p, port); err != nil {
				log.Fatal(err)
			}
			done.Add(1)
			p.Spawn(fmt.Sprintf("shard-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				runShard(sp, i, phi)
			})
		}

		done.Add(1)
		p.Spawn("client", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			runClient(cp, m)
			m.TCPProxy.Stop(cp)
		})
		p.WaitWG(done)
	})
	if err != nil {
		log.Fatal(err)
	}
}

// shardStore is one co-processor's state: an in-memory table backed by an
// append-only log on the Solros file system.
type shardStore struct {
	table  map[string][]byte
	logFd  dataplane.Fd
	logOff int64
	buf    dataplane.Buffer
	fs     *dataplane.FSClient
}

func (s *shardStore) put(p *sim.Proc, key string, val []byte) {
	s.table[key] = append([]byte(nil), val...)
	// Append "klen key vlen val" to the shard log through the FS
	// service (zero-copy from co-processor memory to the SSD).
	rec := make([]byte, 0, 3+len(key)+len(val))
	rec = append(rec, byte(len(key)))
	rec = append(rec, key...)
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(val)))
	rec = append(rec, val...)
	copy(s.buf.Data, rec)
	if _, err := s.fs.Write(p, s.logFd, s.logOff, s.buf, int64(len(rec))); err != nil {
		log.Fatal(err)
	}
	s.logOff += int64(len(rec))
}

func runShard(sp *sim.Proc, i int, phi *core.Phi) {
	store := &shardStore{table: make(map[string][]byte), fs: phi.FS}
	fd, err := phi.FS.Open(sp, fmt.Sprintf("/kv-shard-%d.log", i), ninep.OCreate)
	if err != nil {
		log.Fatal(err)
	}
	store.logFd = fd
	store.buf = phi.FS.AllocBuffer(4096)

	poller := phi.Net.NewPoller()
	served := 0
	// One acceptor feeding the poller, one poll loop serving requests.
	acceptDone := false
	sp.Spawn(fmt.Sprintf("acceptor-%d", i), func(ap *sim.Proc) {
		for {
			sock, err := phi.Net.Accept(ap, port)
			if err != nil {
				acceptDone = true
				return
			}
			poller.Watch(sock)
		}
	})
	for {
		ready := poller.Wait(sp)
		if ready == nil {
			if acceptDone {
				fmt.Printf("shard %d: served %d requests, log %d bytes, %d keys\n",
					i, served, store.logOff, len(store.table))
				return
			}
			sp.Advance(10 * sim.Microsecond)
			continue
		}
		for _, sock := range ready {
			if handleOne(sp, sock, store) {
				served++
			} else {
				poller.Unwatch(sock)
			}
		}
	}
}

// handleOne serves a single request; false means the connection is done.
func handleOne(sp *sim.Proc, sock *dataplane.Socket, store *shardStore) bool {
	hdr, err := sock.RecvFull(sp, 2)
	if err != nil || len(hdr) < 2 {
		return false
	}
	op, kl := hdr[0], int(hdr[1])
	key, err := sock.RecvFull(sp, kl)
	if err != nil || len(key) != kl {
		return false
	}
	switch op {
	case 'P':
		vl, err := sock.RecvFull(sp, 2)
		if err != nil || len(vl) != 2 {
			return false
		}
		val, err := sock.RecvFull(sp, int(binary.LittleEndian.Uint16(vl)))
		if err != nil {
			return false
		}
		store.put(sp, string(key), val)
		sock.Send(sp, []byte("OK"))
	case 'G':
		val := store.table[string(key)]
		resp := binary.LittleEndian.AppendUint16(nil, uint16(len(val)))
		sock.Send(sp, append(resp, val...))
	default:
		return false
	}
	return true
}

func runClient(cp *sim.Proc, m *core.Machine) {
	get := func(s *clientConn, key string) []byte {
		s.side.Send(cp, append([]byte{'G', byte(len(key))}, key...))
		vl, _ := s.side.RecvFull(cp, 2)
		n := int(binary.LittleEndian.Uint16(vl))
		val, _ := s.side.RecvFull(cp, n)
		return val
	}
	put := func(s *clientConn, key string, val []byte) {
		req := append([]byte{'P', byte(len(key))}, key...)
		req = binary.LittleEndian.AppendUint16(req, uint16(len(val)))
		req = append(req, val...)
		s.side.Send(cp, req)
		s.side.RecvFull(cp, 2) // "OK"
	}

	ok := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("user:%04d", k)
		// Content routing binds a connection to its key's shard, so
		// each key uses its own connection (as a kv client would pool).
		conn := dialFor(cp, m, key)
		var want []byte
		for u := 0; u < updates; u++ {
			want = []byte(fmt.Sprintf("value-%d-of-%s", u, key))
			put(conn, key, want)
		}
		if got := get(conn, key); string(got) == string(want) {
			ok++
		} else {
			fmt.Printf("MISMATCH key %s: %q\n", key, got)
		}
		conn.side.Close(cp)
	}
	fmt.Printf("client: %d/%d keys verified after %d updates each\n", ok, keys, updates)
}

type clientConn struct {
	side interface {
		Send(*sim.Proc, []byte) (int, error)
		RecvFull(*sim.Proc, int) ([]byte, error)
		Close(*sim.Proc)
	}
}

func dialFor(cp *sim.Proc, m *core.Machine, key string) *clientConn {
	conn, err := m.ClientStack.Dial(cp, m.HostStack, port)
	if err != nil {
		log.Fatal(err)
	}
	return &clientConn{side: conn.Side(m.ClientStack)}
}
