// A sharded key-value store on Solros — the scenario §4.4.3 motivates:
// two co-processors listen on one port; the control plane routes each
// connection by the key it carries (content-based balancing), so every
// key is owned by exactly one co-processor. The store itself lives in
// internal/apps/kvstore: per-shard append-only logs on solrosfs with an
// in-memory index, served over the uint16-key/uint32-value wire protocol
// (the old demo protocol's single-byte key length silently truncated
// keys past 255 bytes — note the long key below round-tripping fine).
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"strings"

	"solros/internal/apps/kvstore"
	"solros/internal/core"
	"solros/internal/sim"
)

const (
	port    = 6379
	shards  = 2
	keys    = 24
	updates = 2
)

func main() {
	m := core.NewMachine(core.Config{Phis: shards})
	m.EnableNetwork()
	err := m.Run(func(p *sim.Proc, m *core.Machine) {
		// Route connections by the key in their first request.
		m.TCPProxy.Balance = kvstore.Balancer()

		done := sim.NewWaitGroup("kv")
		servers := make([]*kvstore.Server, shards)
		for i, phi := range m.Phis {
			if err := phi.Net.Listen(p, port); err != nil {
				log.Fatal(err)
			}
			shard := kvstore.NewShard(m, i, kvstore.Options{})
			if err := shard.Open(p); err != nil {
				log.Fatal(err)
			}
			servers[i] = kvstore.NewServer(shard, phi.Net, port)
			done.Add(1)
			sv, id := servers[i], i
			p.Spawn(fmt.Sprintf("shard-%d", id), func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				if err := sv.Run(sp); err != nil {
					log.Fatal(err)
				}
				st := sv.Shard.Stats()
				fmt.Printf("shard %d: served %d requests, log %d bytes, %d keys\n",
					id, sv.Served(), st.LogBytes, st.Keys)
			})
		}

		done.Add(1)
		p.Spawn("client", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			runClient(cp, m)
			m.TCPProxy.Stop(cp)
		})
		p.WaitWG(done)
	})
	if err != nil {
		log.Fatal(err)
	}
}

func runClient(cp *sim.Proc, m *core.Machine) {
	ok := 0
	names := make([]string, keys)
	for k := range names {
		names[k] = fmt.Sprintf("user:%04d", k)
	}
	// A key far past the old 255-byte limit exercises the uint16 prefix.
	names = append(names, "bucket/"+strings.Repeat("deeply-nested-object-path/", 12)+"blob")

	for _, key := range names {
		// Content routing binds a connection to its key's shard, so
		// each key uses its own connection (as a kv client would pool).
		conn, err := m.ClientStack.Dial(cp, m.HostStack, port)
		if err != nil {
			log.Fatal(err)
		}
		side := conn.Side(m.ClientStack)
		cl := kvstore.NewClient(side)
		var want string
		for u := 0; u < updates; u++ {
			want = fmt.Sprintf("value-%d-of-%.16s", u, key)
			if err := cl.Put(cp, key, []byte(want)); err != nil {
				log.Fatal(err)
			}
		}
		got, found, err := cl.Get(cp, key)
		if err != nil {
			log.Fatal(err)
		}
		if found && string(got) == want {
			ok++
		} else {
			fmt.Printf("MISMATCH key %.32s: %q\n", key, got)
		}
		side.Close(cp)
	}
	fmt.Printf("client: %d/%d keys verified after %d updates each\n", ok, len(names), updates)
}
