// Image search served from the co-processor (the paper's second
// application, §6.2): the descriptor database lives on solrosfs and is
// loaded through the Solros file-system service; queries arrive from an
// external client over the network service; each query fans across the
// Phi's cores.
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"

	"solros/internal/apps/imagesearch"
	"solros/internal/core"
	"solros/internal/sim"
	"solros/internal/workload"
)

const (
	vectors = 16 << 10 // 2 MB database
	queries = 20
	port    = 9000
)

func main() {
	m := core.NewMachine(core.Config{Phis: 1, DiskBytes: 64 << 20, PhiMemBytes: 64 << 20})
	m.EnableNetwork()

	dbBytes := workload.Features(7, vectors)

	err := m.Run(func(p *sim.Proc, m *core.Machine) {
		// Seed the database file.
		f, err := m.FS.Create(p, "/imgdb")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.Write(p, 0, dbBytes); err != nil {
			log.Fatal(err)
		}

		phi := m.Phis[0]
		if err := phi.Net.Listen(p, port); err != nil {
			log.Fatal(err)
		}

		done := sim.NewWaitGroup("imagesearch")
		done.Add(2)

		// The co-processor server.
		p.Spawn("server", func(sp *sim.Proc) {
			defer sp.DoneWG(done)
			fd, err := phi.FS.Open(sp, "/imgdb", 0)
			if err != nil {
				log.Fatal(err)
			}
			buf := phi.FS.AllocBuffer(int64(len(dbBytes)))
			if _, err := phi.FS.Read(sp, fd, 0, buf, int64(len(dbBytes))); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("server: loaded %d descriptors via the FS service at t=%v\n",
				vectors, sp.Now())
			db := &imagesearch.DB{Vectors: buf.Data}
			sock, err := phi.Net.Accept(sp, port)
			if err != nil {
				return
			}
			for q := 0; q < queries; q++ {
				query, err := sock.RecvFull(sp, workload.FeatureDim)
				if err != nil || len(query) != workload.FeatureDim {
					return
				}
				best, dist := db.SearchParallel(sp, phi.Pool, 32, query)
				_ = dist
				sock.Send(sp, workload.EncodeU32(uint32(best)))
			}
		})

		// The external client.
		p.Spawn("client", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			conn, err := m.ClientStack.Dial(cp, m.HostStack, port)
			if err != nil {
				log.Fatal(err)
			}
			side := conn.Side(m.ClientStack)
			start := cp.Now()
			correct := 0
			for q := 0; q < queries; q++ {
				want := (q * 53) % vectors
				side.Send(cp, workload.Query(dbBytes, q*53))
				reply, err := side.RecvFull(cp, 4)
				if err != nil || len(reply) != 4 {
					log.Fatal("short reply")
				}
				if int(workload.DecodeU32(reply)) == want {
					correct++
				}
			}
			elapsed := cp.Now() - start
			side.Close(cp)
			fmt.Printf("client: %d/%d correct nearest neighbours, %.0f queries/s (virtual)\n",
				correct, queries, float64(queries)/elapsed.Seconds())
		})
		p.WaitWG(done)
	})
	if err != nil {
		log.Fatal(err)
	}
}
