module solros

go 1.22
