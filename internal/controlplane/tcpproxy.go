package controlplane

import (
	"fmt"
	"slices"

	"solros/internal/model"
	"solros/internal/netstack"
	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/transport"
)

// Balancer decides which member co-processor a new connection on a shared
// listening socket goes to (§4.4.3). Solros provides connection-based
// round robin and least-loaded policies; users can plug their own.
type Balancer interface {
	// Pick returns an index into members. load[i] is the member's
	// current active connection count.
	Pick(port int, members []*pcie.Device, load []int) int
}

// RoundRobin cycles through members per new connection.
type RoundRobin struct{ next int }

// Pick implements Balancer.
func (rr *RoundRobin) Pick(port int, members []*pcie.Device, load []int) int {
	i := rr.next % len(members)
	rr.next++
	return i
}

// LeastLoaded picks the member with the fewest active connections.
type LeastLoaded struct{}

// Pick implements Balancer.
func (LeastLoaded) Pick(port int, members []*pcie.Device, load []int) int {
	best := 0
	for i := 1; i < len(load); i++ {
		if load[i] < load[best] {
			best = i
		}
	}
	return best
}

// ContentBalancer implements the paper's content-based forwarding rule
// ("e.g., for each request of key/value store", §4.4.3): the proxy peeks
// the connection's first bytes and routes by Key. A ContentBalancer also
// satisfies Balancer as a fallback (round robin) for protocols that send
// no early data.
type ContentBalancer struct {
	// Key maps the first payload bytes to a shard key; the connection
	// goes to members[key % len(members)].
	Key func(first []byte) uint32
	rr  RoundRobin
}

// Pick is the no-payload fallback.
func (cb *ContentBalancer) Pick(port int, members []*pcie.Device, load []int) int {
	return cb.rr.Pick(port, members, load)
}

// PickContent routes by the first payload bytes. Zero or negative member
// counts report index 0 — callers guard the empty-listener case, but a
// detach racing an in-flight peek must never turn into a division panic.
func (cb *ContentBalancer) PickContent(first []byte, members int) int {
	if members <= 0 {
		return 0
	}
	return int(cb.Key(first)) % members
}

// FNV1a is a convenient content key: hash of the first request bytes.
func FNV1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// TCPProxy is the control-plane network service: the full TCP stack runs
// on host cores; data-plane stubs reach it through per-co-processor RPC
// and event/data rings. It implements the shared listening socket with
// pluggable load balancing.
type TCPProxy struct {
	Stack   *netstack.Stack
	fabric  *pcie.Fabric
	nets    map[*pcie.Device]*netChannel
	order   []*pcie.Device
	shared  map[int]*sharedListener
	conns   map[uint64]*proxConn
	nextID  uint64
	Balance Balancer

	// Shards partitions connection admission and RPC service into that
	// many per-NUMA-domain shards (§6.3 scale-out): every accepted
	// connection queues on its member's shard — the per-shard listener
	// accept queue — and the serialized admission work charges the shard's
	// lock. Zero (the default) keeps the legacy layout: admission inline
	// in the accept pump, virtual-time charges unchanged.
	Shards  int
	shards  []*tcpShard
	shardBy map[*pcie.Device]*tcpShard

	tel          *telemetry.Sink
	telAccepts   *telemetry.Counter
	telInFrames  *telemetry.Counter
	telOutFrames *telemetry.Counter
	telDetaches  *telemetry.Counter

	detaches int64
}

type netChannel struct {
	phi      *pcie.Device
	idx      int // attach order; the span shard tag when unsharded
	rpcReq   *transport.Port
	rpcResp  *transport.Port
	outbound *transport.Port // phi -> host data (ring master at phi)
	inbound  *transport.Port // host -> phi events/data (ring master at host)
	active   int
}

type sharedListener struct {
	port     int
	listener *netstack.Listener
	members  []*pcie.Device
}

type proxConn struct {
	id   uint64
	side *netstack.Side
	ch   *netChannel
}

// NewTCPProxy builds the proxy around the host's stack.
func NewTCPProxy(fab *pcie.Fabric, stack *netstack.Stack) *TCPProxy {
	px := &TCPProxy{
		Stack:   stack,
		fabric:  fab,
		nets:    make(map[*pcie.Device]*netChannel),
		shared:  make(map[int]*sharedListener),
		conns:   make(map[uint64]*proxConn),
		Balance: &RoundRobin{},
	}
	if tel := fab.Telemetry(); tel != nil {
		px.tel = tel
		px.telAccepts = tel.Counter("controlplane.tcpproxy.accepts")
		px.telInFrames = tel.Counter("controlplane.tcpproxy.inbound_frames")
		px.telOutFrames = tel.Counter("controlplane.tcpproxy.outbound_frames")
		px.telDetaches = tel.Counter("controlplane.tcpproxy.detaches")
	}
	return px
}

// AttachNet registers a co-processor's network rings (proxy-side ports).
func (px *TCPProxy) AttachNet(phi *pcie.Device, rpcReq, rpcResp, outbound, inbound *transport.Port) {
	px.nets[phi] = &netChannel{phi: phi, idx: len(px.order), rpcReq: rpcReq, rpcResp: rpcResp, outbound: outbound, inbound: inbound}
	px.order = append(px.order, phi)
}

// Start spawns the proxy's service procs: one RPC server and one outbound
// pump per co-processor, plus — when sharded — one admitter per shard
// draining its accept queue.
func (px *TCPProxy) Start(p *sim.Proc) {
	if px.Shards > 0 {
		px.assignShards()
		for _, sh := range px.shards {
			sh := sh
			p.Spawn(fmt.Sprintf("tcpproxy-admit-%d", sh.idx), func(wp *sim.Proc) {
				px.admitter(wp, sh)
			})
		}
	}
	for _, phi := range px.order {
		ch := px.nets[phi]
		p.Spawn("tcpproxy-rpc-"+phi.Name, func(wp *sim.Proc) { px.serveRPC(wp, ch) })
		p.Spawn("tcpproxy-out-"+phi.Name, func(wp *sim.Proc) { px.outboundPump(wp, ch) })
	}
}

func (px *TCPProxy) serveRPC(p *sim.Proc, ch *netChannel) {
	ch.rpcReq.EnablePool()
	var m, out ninep.Msg
	var enc []byte
	for {
		raw, ok := ch.rpcReq.Recv(p)
		if !ok {
			return
		}
		if err := ninep.DecodeInto(&m, raw); err != nil {
			panic("tcpproxy: corrupt rpc: " + err.Error())
		}
		ch.rpcReq.Recycle(raw)
		sp := px.tel.Start(p, "controlplane.tcpproxy")
		sp.Tag("type", m.Type.String())
		if sh := px.shardBy[ch.phi]; sh != nil {
			sp.TagInt("shard", int64(sh.idx))
			// Sharded: the serialized slice queues on the shard's lock, the
			// remainder overlaps with sibling shards.
			p.Use(sh.lock, int64(model.ProxyShardLockHold))
			p.Advance(model.ProxyShardWorkCost)
		} else {
			sp.TagInt("shard", int64(ch.idx))
			p.Advance(model.FSProxyCost)
		}
		out.Reset()
		px.handleRPC(p, ch, &m, &out)
		out.Tag = m.Tag
		enc = out.AppendTo(enc[:0])
		ch.rpcResp.Send(p, enc)
		sp.End(p)
	}
}

func (px *TCPProxy) handleRPC(p *sim.Proc, ch *netChannel, m, out *ninep.Msg) {
	switch m.Type {
	case ninep.Tlisten:
		port := int(m.Off)
		sl, ok := px.shared[port]
		if !ok {
			l, err := px.Stack.Listen(port)
			if err != nil {
				rerrorInto(out, err)
				return
			}
			sl = &sharedListener{port: port, listener: l}
			px.shared[port] = sl
			p.Spawn(fmt.Sprintf("tcpproxy-accept-%d", port), func(ap *sim.Proc) {
				px.acceptPump(ap, sl)
			})
		}
		for _, mem := range sl.members {
			if mem == ch.phi {
				rerrorInto(out, fmt.Errorf("tcpproxy: %s already listens on %d", ch.phi.Name, port))
				return
			}
		}
		sl.members = append(sl.members, ch.phi)
		out.Type = ninep.Rlisten

	case ninep.Tconnect:
		dst := px.Stack.LookupPeer(m.Name)
		if dst == nil {
			rerrorInto(out, fmt.Errorf("tcpproxy: unknown host %q", m.Name))
			return
		}
		conn, err := px.Stack.Dial(p, dst, int(m.Off))
		if err != nil {
			rerrorInto(out, err)
			return
		}
		pc := px.register(p, conn.Side(px.Stack), ch)
		out.Type = ninep.Rconnect
		out.Addr = int64(pc.id)

	case ninep.Tsockclose:
		pc, ok := px.conns[uint64(m.Addr)]
		if !ok {
			rerrorInto(out, fmt.Errorf("tcpproxy: unknown conn %d", m.Addr))
			return
		}
		pc.side.Close(p)
		pc.ch.active--
		delete(px.conns, pc.id)
		out.Type = ninep.Rsockclose

	default:
		rerrorInto(out, fmt.Errorf("tcpproxy: unhandled rpc %v", m.Type))
	}
}

// acceptPump accepts inbound connections on a shared listener and shards
// each to a member co-processor chosen by the balancer. With a
// content-based balancer, the pump peeks the connection's first payload
// before deciding (each accepted connection gets its own peek proc so a
// slow client cannot head-of-line block the listener).
func (px *TCPProxy) acceptPump(p *sim.Proc, sl *sharedListener) {
	for {
		conn, ok := sl.listener.Accept(p)
		if !ok {
			return
		}
		if len(sl.members) == 0 {
			conn.Side(px.Stack).Close(p)
			continue
		}
		cb, contentBased := px.Balance.(*ContentBalancer)
		if !contentBased {
			load := make([]int, len(sl.members))
			for i, mem := range sl.members {
				load[i] = px.nets[mem].active
			}
			member := sl.members[px.Balance.Pick(sl.port, sl.members, load)]
			px.dispatchAdmit(p, sl, conn.Side(px.Stack), member, nil)
			continue
		}
		side := conn.Side(px.Stack)
		p.Spawn("tcpproxy-peek", func(pp *sim.Proc) {
			first, err := side.Recv(pp, 4096)
			if err != nil || len(first) == 0 {
				side.Close(pp)
				return
			}
			// The peek yielded, so the membership observed at accept time
			// is stale: every member may have detached while the client's
			// first payload was in flight.
			if len(sl.members) == 0 {
				side.Close(pp)
				return
			}
			member := sl.members[cb.PickContent(first, len(sl.members))]
			px.dispatchAdmit(pp, sl, side, member, first)
		})
	}
}

// admit binds an accepted connection to a member and delivers the accept
// event (plus any peeked data) to its inbound ring. The accept frame is
// enqueued strictly before the connection's pump starts so data frames
// can never overtake it.
func (px *TCPProxy) admit(p *sim.Proc, sl *sharedListener, side *netstack.Side, member *pcie.Device, peeked []byte) {
	ch := px.nets[member]
	pc := px.track(side, ch)
	px.telAccepts.Add(1)
	ch.inbound.Send(p, ninep.EncodeFrame(ninep.FrameAccept, pc.id, encodePort(sl.port)))
	if len(peeked) > 0 {
		ch.inbound.Send(p, ninep.EncodeFrame(ninep.FrameData, pc.id, peeked))
	}
	px.startPump(p, pc)
}

func encodePort(port int) []byte {
	return []byte{byte(port), byte(port >> 8)}
}

// DecodePort recovers the port from a FrameAccept payload.
func DecodePort(b []byte) int {
	if len(b) < 2 {
		return 0
	}
	return int(b[0]) | int(b[1])<<8
}

// register tracks a host-side connection for a channel and spawns its
// inbound pump, which relays stream data into the co-processor's inbound
// ring.
func (px *TCPProxy) register(p *sim.Proc, side *netstack.Side, ch *netChannel) *proxConn {
	pc := px.track(side, ch)
	px.startPump(p, pc)
	return pc
}

// track records a proxied connection without starting its pump.
func (px *TCPProxy) track(side *netstack.Side, ch *netChannel) *proxConn {
	px.nextID++
	pc := &proxConn{id: px.nextID, side: side, ch: ch}
	px.conns[pc.id] = pc
	ch.active++
	return pc
}

func (px *TCPProxy) startPump(p *sim.Proc, pc *proxConn) {
	p.Spawn(fmt.Sprintf("tcpproxy-in-%d", pc.id), func(ip *sim.Proc) {
		px.inboundPump(ip, pc)
	})
}

// inboundPump relays one connection's inbound stream into the ring,
// coalescing back-to-back segments into large frames so the co-processor
// pulls data with a few big DMAs instead of one small copy per packet —
// the point of the large inbound ring (§4.4.1).
func (px *TCPProxy) inboundPump(p *sim.Proc, pc *proxConn) {
	const frameCap = 60 << 10
	var hdr [ninep.FrameHdrLen]byte
	var frame []byte // grow-once coalescing scratch, reused across frames
	for {
		data, err := pc.side.Recv(p, frameCap)
		if err != nil {
			return // closed locally
		}
		if len(data) == 0 {
			ninep.PutFrameHeader(hdr[:], ninep.FrameEOF, pc.id)
			pc.ch.inbound.Send(p, hdr[:])
			return
		}
		if pc.side.Buffered() == 0 {
			// Common case: one segment, one frame. The ring copies during
			// Send, so header and payload go out as a two-slice vectored
			// write with no staging buffer in between.
			px.telInFrames.Add(1)
			ninep.PutFrameHeader(hdr[:], ninep.FrameData, pc.id)
			pc.ch.inbound.SendVec(p, hdr[:], data)
			continue
		}
		frame = ninep.AppendFrame(frame[:0], ninep.FrameData, pc.id, data)
		for len(frame)-ninep.FrameHdrLen < frameCap && pc.side.Buffered() > 0 {
			more, err := pc.side.Recv(p, frameCap-(len(frame)-ninep.FrameHdrLen))
			if err != nil || len(more) == 0 {
				break
			}
			frame = append(frame, more...)
		}
		px.telInFrames.Add(1)
		pc.ch.inbound.Send(p, frame)
	}
}

// outboundPump pulls frames from a co-processor's outbound ring and
// forwards them onto the host-side connections.
func (px *TCPProxy) outboundPump(p *sim.Proc, ch *netChannel) {
	ch.outbound.EnablePool()
	for {
		raw, ok := ch.outbound.Recv(p)
		if !ok {
			return
		}
		kind, id, payload, err := ninep.DecodeFrame(raw)
		if err != nil {
			panic("tcpproxy: " + err.Error())
		}
		px.telOutFrames.Add(1)
		if pc, ok := px.conns[id]; ok {
			switch kind {
			case ninep.FrameData:
				// netstack.Side.Send copies payload into its own segments
				// before returning, so recycling raw below is safe. A send
				// error means the peer is gone: drop and let EOF propagate.
				pc.side.Send(p, payload) //nolint:errcheck
			case ninep.FrameClose:
				pc.side.Close(p)
				pc.ch.active--
				delete(px.conns, id)
			}
		}
		ch.outbound.Recycle(raw)
	}
}

// DetachNet degrades gracefully around a crashed co-processor: the member
// is removed from every shared listener so new connections shard to its
// siblings, and its proxied host-side connections are closed so their
// pumps drain. Sibling channels are untouched. The inbound FrameListenClosed
// tells a still-live stub (link flap rather than true crash) that its
// listeners are gone.
func (px *TCPProxy) DetachNet(p *sim.Proc, phi *pcie.Device) {
	ch, ok := px.nets[phi]
	if !ok {
		return
	}
	for _, sl := range px.shared {
		for i, mem := range sl.members {
			if mem == phi {
				sl.members = append(sl.members[:i], sl.members[i+1:]...)
				break
			}
		}
	}
	// Close in id order: map iteration order is randomized, and the closes
	// have virtual-time side effects (FINs on the host stack), so a stable
	// order keeps detach scenarios replayable seed for seed. Admissions
	// already queued for this member re-resolve to a survivor (or close)
	// when their shard dequeues them.
	for _, id := range px.sortedConnIDs(func(pc *proxConn) bool { return pc.ch == ch }) {
		pc := px.conns[id]
		pc.side.Close(p)
		// The local close makes the inbound pump exit on error without
		// emitting its usual end-of-stream frame, so deliver the EOF here:
		// a still-live stub must see its accepted sockets drain, not hang.
		ch.inbound.Send(p, ninep.EncodeFrame(ninep.FrameEOF, id, nil))
		ch.active--
		delete(px.conns, id)
	}
	ch.inbound.Send(p, ninep.EncodeFrame(ninep.FrameListenClosed, 0, nil))
	px.detaches++
	px.telDetaches.Add(1)
}

// sortedConnIDs returns the ids of tracked conns matching keep, ascending.
func (px *TCPProxy) sortedConnIDs(keep func(*proxConn) bool) []uint64 {
	ids := make([]uint64, 0, len(px.conns))
	for id, pc := range px.conns {
		if keep == nil || keep(pc) {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	return ids
}

// Detaches reports how many co-processors have been detached, for
// recovery tests.
func (px *TCPProxy) Detaches() int64 { return px.detaches }

// Stop closes listeners and all proxied connections so pumps drain, and
// notifies every data plane that its shared listeners are gone.
func (px *TCPProxy) Stop(p *sim.Proc) {
	ports := make([]int, 0, len(px.shared))
	for port := range px.shared {
		ports = append(ports, port)
	}
	slices.Sort(ports)
	for _, port := range ports {
		px.shared[port].listener.Close(p)
	}
	for _, sh := range px.shards {
		sh.closed = true
		p.Broadcast(sh.cond)
	}
	for _, id := range px.sortedConnIDs(nil) {
		px.conns[id].side.Close(p)
		delete(px.conns, id)
	}
	for _, phi := range px.order {
		px.nets[phi].inbound.Send(p, ninep.EncodeFrame(ninep.FrameListenClosed, 0, nil))
	}
}

// ActiveConns reports per-co-processor active connection counts keyed by
// device name, for load-balancing tests.
func (px *TCPProxy) ActiveConns() map[string]int {
	out := make(map[string]int, len(px.nets))
	for phi, ch := range px.nets {
		out[phi.Name] = ch.active
	}
	return out
}
