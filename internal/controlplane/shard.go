package controlplane

// Control-plane sharding (§6.3 scale-out). With FSProxy.Shards /
// TCPProxy.Shards set, the proxies partition into per-NUMA-domain serve
// loops: each FS shard owns a request queue, an executor pool, a table
// lock, a pending-fill map, and — with ShardFids — a private fid table;
// each TCP shard owns a connection-admission queue and lock. Shards are
// dealt to NUMA domains purely from the topology, so ownership is
// reproducible across runs and survives channel Reattach. Zero shards is
// the legacy layout: per-channel serve loops over global tables, with
// every virtual-time charge unchanged.

import (
	"fmt"

	"solros/internal/model"
	"solros/internal/netstack"
	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// lockResource models a mutex as an FCFS sim.Resource: one "byte" of
// service is one nanosecond of hold, so callers charge variable critical
// sections against a single queue with p.Use(r, int64(hold)).
func lockResource(name string) *sim.Resource {
	return sim.NewResource(name, int64(sim.Second), 0)
}

// dealShards maps each device to one of n shards, NUMA-aware and purely
// topological: shards are dealt round-robin across the distinct sockets in
// device order, and a socket's devices spread round-robin over the shards
// dealt to that socket. With one shard per socket this is exactly one
// serve loop per NUMA domain; with one shard per device it degenerates to
// fully private control planes.
func dealShards(devs []*pcie.Device, n int) []int {
	var sockets []int
	seen := make(map[int]bool)
	for _, d := range devs {
		if !seen[d.Socket] {
			seen[d.Socket] = true
			sockets = append(sockets, d.Socket)
		}
	}
	shardsOf := make(map[int][]int)
	for i := 0; i < n; i++ {
		s := sockets[i%len(sockets)]
		shardsOf[s] = append(shardsOf[s], i)
	}
	out := make([]int, len(devs))
	nth := make(map[int]int)
	for i, d := range devs {
		if own := shardsOf[d.Socket]; len(own) > 0 {
			out[i] = own[nth[d.Socket]%len(own)]
		} else {
			// More sockets than shards: this socket has no shard of its
			// own, spill its devices across all shards.
			out[i] = i % n
		}
		nth[d.Socket]++
	}
	return out
}

// --- FS control plane ------------------------------------------------------

// fsShard is one partition of the FS control plane: a FIFO of decoded
// requests fed by the shard's channel readers, an executor pool draining
// it, the shard's table lock, and — with ShardFids — a private fid table.
// Pending-fill state is sharded separately by page hash: files are shared
// across channels, so fill coordination cannot follow channel ownership.
type fsShard struct {
	idx   int
	lock  *sim.Resource
	queue []*shardReq
	freed []*shardReq
	cond  *sim.Cond

	opens map[uint32]*openFile

	pendingFill map[pageKey]bool
	fillCond    *sim.Cond

	readers   int // live reader procs feeding the queue
	executors int // live executor procs draining it
}

// shardReq is one decoded request parked in a shard queue; records are
// pooled per shard so steady-state serving does not allocate.
type shardReq struct {
	ch *channel
	m  ninep.Msg
}

func (sh *fsShard) getReq() *shardReq {
	if n := len(sh.freed); n > 0 {
		r := sh.freed[n-1]
		sh.freed = sh.freed[:n-1]
		return r
	}
	return &shardReq{}
}

func (sh *fsShard) putReq(r *shardReq) {
	r.ch = nil
	sh.freed = append(sh.freed, r)
}

// assignShards builds the shard set and deals every attached channel to
// one. Called once from Start, after every Attach; Reattach keeps the
// replacement channel on its predecessor's shard, so the per-shard fid
// namespace survives the outage.
func (px *FSProxy) assignShards() {
	n := px.Shards
	if n > len(px.channels) {
		n = len(px.channels)
	}
	if n < 1 {
		n = 1
	}
	px.shards = make([]*fsShard, n)
	for i := range px.shards {
		px.shards[i] = &fsShard{
			idx:         i,
			lock:        lockResource(fmt.Sprintf("fsproxy-shard%d-lock", i)),
			cond:        sim.NewCond(fmt.Sprintf("fsproxy-shard%d", i)),
			opens:       make(map[uint32]*openFile),
			pendingFill: make(map[pageKey]bool),
			fillCond:    sim.NewCond(fmt.Sprintf("fsproxy-shard%d-fill", i)),
		}
	}
	px.fidLock = lockResource("fsproxy-fid-lock")
	devs := make([]*pcie.Device, len(px.channels))
	for i, ch := range px.channels {
		devs[i] = ch.phi
	}
	for i, si := range dealShards(devs, n) {
		px.channels[i].shard = px.shards[si]
	}
}

// startShardChannel spawns the reader proc feeding ch's shard and makes
// sure the shard's executors run. Called at boot and again on Reattach.
func (px *FSProxy) startShardChannel(p *sim.Proc, ch *channel) {
	sh := ch.shard
	sh.readers++
	p.Spawn(fmt.Sprintf("fsproxy-rd-%s", ch.phi.Name), func(rp *sim.Proc) {
		px.shardReader(rp, ch, sh)
	})
	if sh.executors > 0 {
		return // surviving executors (Reattach) keep draining the queue
	}
	for w := 0; w < px.workers; w++ {
		sh.executors++
		p.Spawn(fmt.Sprintf("fsproxy-shard%d-%d", sh.idx, w), func(wp *sim.Proc) {
			px.shardExec(wp, sh)
		})
	}
}

// shardReader drains one channel's request ring into its shard's queue.
// Decode happens here — the reader owns the ring's pooled buffers — while
// the virtual-time cost of service is charged by the executors.
func (px *FSProxy) shardReader(p *sim.Proc, ch *channel, sh *fsShard) {
	defer func() {
		sh.readers--
		// Idle executors must re-check the exit condition; Broadcast of a
		// cond without waiters is free.
		p.Broadcast(sh.cond)
	}()
	single := make([][]byte, 1)
	scratch := make([][]byte, 0, serveRecvBatch)
	for {
		var raws [][]byte
		if px.BatchRecv {
			batch, ok := ch.req.RecvBatchInto(p, serveRecvBatch, scratch[:0])
			if !ok {
				return
			}
			scratch = batch
			raws = batch
		} else {
			raw, ok := ch.req.Recv(p)
			if !ok {
				return
			}
			single[0] = raw
			raws = single
		}
		for _, raw := range raws {
			req := sh.getReq()
			if err := ninep.DecodeInto(&req.m, raw); err != nil {
				panic("fsproxy: corrupt request: " + err.Error())
			}
			ch.req.Recycle(raw)
			req.ch = ch
			sh.queue = append(sh.queue, req)
			px.telInflight.Arrive(p)
		}
		p.Broadcast(sh.cond)
	}
}

// shardExec is one executor of a shard's serve loop: pop a request, charge
// the serialized slice under the shard's table lock (plus the global fid
// lock when fid tables are not sharded), run the handler, reply. Executors
// survive channel crashes — they exit only once every ring feeding the
// shard has closed and the queue is drained.
func (px *FSProxy) shardExec(p *sim.Proc, sh *fsShard) {
	defer func() { sh.executors-- }()
	var out ninep.Msg
	var enc []byte
	for {
		for len(sh.queue) == 0 {
			if sh.readers == 0 {
				return
			}
			p.Wait(sh.cond)
		}
		req := sh.queue[0]
		sh.queue = sh.queue[1:]
		ch, m := req.ch, &req.m
		sp := px.tel.StartCtx(p, "controlplane.fsproxy",
			telemetry.TraceCtx{Trace: m.Trace, Span: m.Span})
		sp.Tag("type", m.Type.String())
		sp.TagInt("shard", int64(sh.idx))
		// The serialized slice of the proxy cost queues FCFS on the shard
		// lock — that queueing is the contention model — and the remainder
		// runs in parallel across executors.
		p.Use(sh.lock, int64(model.ProxyShardLockHold))
		if !px.ShardFids && usesFid(m.Type) {
			p.Use(px.fidLock, int64(model.ProxyFidLockHold))
		}
		p.Advance(model.ProxyShardWorkCost)
		out.Reset()
		px.handle(p, ch, m, &out)
		out.Tag = m.Tag
		out.Trace, out.Span = m.Trace, m.Span
		enc = out.AppendTo(enc[:0])
		ch.resp.Send(p, enc)
		px.telInflight.Depart(p)
		sp.End(p)
		sh.putReq(req)
	}
}

// usesFid reports whether a request type reads or writes the fid table.
func usesFid(t ninep.MsgType) bool {
	switch t {
	case ninep.Topen, ninep.Tcreate, ninep.Tclose, ninep.Tread, ninep.Twrite,
		ninep.Ttrunc, ninep.Treadahead:
		return true
	}
	return false
}

// fidTable returns the fid map serving ch: the shard's private table when
// fid sharding is on, the global table otherwise (and always in the legacy
// unsharded layout, where ch.shard is nil).
func (px *FSProxy) fidTable(ch *channel) map[uint32]*openFile {
	if px.ShardFids && ch.shard != nil {
		return ch.shard.opens
	}
	return px.opens
}

// fillShard maps a page to the shard owning its pending-fill state: pure
// FNV-1a over (ino, blk), independent of which channel triggered the fill.
func (px *FSProxy) fillShard(k pageKey) *fsShard {
	h := uint32(2166136261)
	for _, b := range [...]byte{
		byte(k.ino), byte(k.ino >> 8), byte(k.ino >> 16), byte(k.ino >> 24),
		byte(k.blk), byte(k.blk >> 8), byte(k.blk >> 16), byte(k.blk >> 24),
	} {
		h ^= uint32(b)
		h *= 16777619
	}
	return px.shards[h%uint32(len(px.shards))]
}

// fillMap returns the pending-fill map owning page k.
func (px *FSProxy) fillMap(k pageKey) map[pageKey]bool {
	if len(px.shards) == 0 {
		return px.pendingFill
	}
	return px.fillShard(k).pendingFill
}

// fillCondFor returns the cond fill waiters of page k sleep on.
func (px *FSProxy) fillCondFor(k pageKey) *sim.Cond {
	if len(px.shards) == 0 {
		return px.fillCond
	}
	return px.fillShard(k).fillCond
}

// fillPending reports whether page k has a claimed-but-unfilled frame.
func (px *FSProxy) fillPending(k pageKey) bool { return px.fillMap(k)[k] }

// broadcastFills wakes every fill waiter; error sweeps that cleared a
// whole key range use it instead of per-key signaling.
func (px *FSProxy) broadcastFills(p *sim.Proc) {
	if len(px.shards) == 0 {
		p.Broadcast(px.fillCond)
		return
	}
	for _, sh := range px.shards {
		p.Broadcast(sh.fillCond)
	}
}

// ShardCount reports how many shards the FS control plane runs (0 when the
// legacy unsharded serve loops are active).
func (px *FSProxy) ShardCount() int { return len(px.shards) }

// ShardOf reports which shard serves channel idx, or -1 when unsharded.
func (px *FSProxy) ShardOf(idx int) int {
	if len(px.shards) == 0 || idx < 0 || idx >= len(px.channels) {
		return -1
	}
	return px.channels[idx].shard.idx
}

// OpenFids reports the live fid count across the global and per-shard
// tables, for post-quiesce leak audits.
func (px *FSProxy) OpenFids() int {
	n := len(px.opens)
	for _, sh := range px.shards {
		n += len(sh.opens)
	}
	return n
}

// CheckShards audits shard ownership: every open fid must live in the
// table of exactly the shard serving its channel, never double-homed in
// the global table, and every pending fill must sit in the map its page
// hashes to. Nil when sharding is off. Cheap enough to run as a dispatch
// oracle: table sizes are bounded by live fids and in-flight fills.
func (px *FSProxy) CheckShards() error {
	if len(px.shards) == 0 {
		return nil
	}
	for _, sh := range px.shards {
		for key := range sh.opens {
			chIdx := int(key >> 24)
			if chIdx >= len(px.channels) || px.channels[chIdx].shard != sh {
				return fmt.Errorf("fsproxy: fid %#x in shard %d but channel %d is served by shard %d",
					key, sh.idx, chIdx, px.ShardOf(chIdx))
			}
			if _, dup := px.opens[key]; dup {
				return fmt.Errorf("fsproxy: fid %#x double-homed in shard %d and the global table", key, sh.idx)
			}
		}
		for k := range sh.pendingFill {
			if own := px.fillShard(k); own != sh {
				return fmt.Errorf("fsproxy: pending fill (ino %d, blk %d) parked on shard %d, owner is %d",
					k.ino, k.blk, sh.idx, own.idx)
			}
		}
	}
	if px.ShardFids && len(px.opens) > 0 {
		return fmt.Errorf("fsproxy: %d fids in the global table with fid sharding on", len(px.opens))
	}
	if len(px.pendingFill) > 0 {
		return fmt.Errorf("fsproxy: %d pending fills in the global map with sharding on", len(px.pendingFill))
	}
	return nil
}

// --- TCP control plane -----------------------------------------------------

// tcpShard is one partition of connection admission: a FIFO of pending
// admissions plus the shard's admission lock, drained by an admitter proc.
// RPC service for the shard's channels charges the same lock.
type tcpShard struct {
	idx    int
	lock   *sim.Resource
	admitq []*admission
	cond   *sim.Cond
	closed bool
}

// admission is one accepted connection parked in a shard's accept queue,
// carrying the balancer's (possibly stale) pick and any peeked payload.
type admission struct {
	sl     *sharedListener
	side   *netstack.Side
	member *pcie.Device
	peeked []byte
}

// assignShards builds the TCP shard set and deals every attached network
// channel to one, reusing the NUMA-aware deal of the FS side.
func (px *TCPProxy) assignShards() {
	n := px.Shards
	if n > len(px.order) {
		n = len(px.order)
	}
	if n < 1 {
		n = 1
	}
	px.shards = make([]*tcpShard, n)
	for i := range px.shards {
		px.shards[i] = &tcpShard{
			idx:  i,
			lock: lockResource(fmt.Sprintf("tcpproxy-shard%d-lock", i)),
			cond: sim.NewCond(fmt.Sprintf("tcpproxy-shard%d", i)),
		}
	}
	px.shardBy = make(map[*pcie.Device]*tcpShard, len(px.order))
	for i, si := range dealShards(px.order, n) {
		px.shardBy[px.order[i]] = px.shards[si]
	}
}

// dispatchAdmit routes a picked connection to admission: directly in the
// legacy layout, or through the member's shard accept queue when sharded.
func (px *TCPProxy) dispatchAdmit(p *sim.Proc, sl *sharedListener, side *netstack.Side, member *pcie.Device, peeked []byte) {
	if sh := px.shardBy[member]; sh != nil {
		sh.admitq = append(sh.admitq, &admission{sl: sl, side: side, member: member, peeked: peeked})
		p.Signal(sh.cond)
		return
	}
	px.admitChecked(p, sl, side, member, peeked)
}

// admitChecked revalidates the balancer's pick right before admission —
// the peek (or queueing) yielded, so the member may have detached since —
// then admits to the resolved survivor, or closes the connection when the
// listener has no members left.
func (px *TCPProxy) admitChecked(p *sim.Proc, sl *sharedListener, side *netstack.Side, member *pcie.Device, peeked []byte) {
	member, ok := px.resolveMember(sl, member, peeked)
	if !ok {
		side.Close(p)
		return
	}
	px.admit(p, sl, side, member, peeked)
}

// resolveMember revalidates a balancer pick at admission time. A stale
// pick — the member detached while the admission was in flight — is re-run
// against the surviving members with the same policy; no members means the
// connection cannot be served.
func (px *TCPProxy) resolveMember(sl *sharedListener, member *pcie.Device, peeked []byte) (*pcie.Device, bool) {
	if len(sl.members) == 0 {
		return nil, false
	}
	for _, mem := range sl.members {
		if mem == member {
			return member, true
		}
	}
	if cb, ok := px.Balance.(*ContentBalancer); ok && len(peeked) > 0 {
		return sl.members[cb.PickContent(peeked, len(sl.members))], true
	}
	load := make([]int, len(sl.members))
	for i, mem := range sl.members {
		load[i] = px.nets[mem].active
	}
	return sl.members[px.Balance.Pick(sl.port, sl.members, load)], true
}

// admitter is one shard's admission serve loop: it drains the shard's
// accept queue, charging the serialized admission work against the shard
// lock. The queued pick is revalidated after the lock wait — DetachNet may
// have removed the member while the admission queued — and a re-pick that
// lands on another shard's member is re-queued there, preserving
// single-shard ownership of each channel's admissions.
func (px *TCPProxy) admitter(p *sim.Proc, sh *tcpShard) {
	for {
		for len(sh.admitq) == 0 {
			if sh.closed {
				return
			}
			p.Wait(sh.cond)
		}
		ad := sh.admitq[0]
		sh.admitq = sh.admitq[1:]
		p.Use(sh.lock, int64(model.ProxyAcceptCost))
		member, ok := px.resolveMember(ad.sl, ad.member, ad.peeked)
		if !ok {
			ad.side.Close(p)
			continue
		}
		if tgt := px.shardBy[member]; tgt != sh {
			ad.member = member
			tgt.admitq = append(tgt.admitq, ad)
			p.Signal(tgt.cond)
			continue
		}
		px.admit(p, ad.sl, ad.side, member, ad.peeked)
	}
}

// ShardCount reports how many shards the TCP control plane runs (0 when
// the legacy layout is active).
func (px *TCPProxy) ShardCount() int { return len(px.shards) }

// ShardOfDev reports which shard admits connections for phi, or -1 when
// unsharded or unknown.
func (px *TCPProxy) ShardOfDev(phi *pcie.Device) int {
	if sh := px.shardBy[phi]; sh != nil {
		return sh.idx
	}
	return -1
}
