// Package controlplane implements the host side of Solros: the
// file-system proxy with its data-path policy (peer-to-peer vs. buffered,
// §4.3.2), the shared host-side buffer cache, and — in tcpproxy.go — the
// network proxy with the shared listening socket and pluggable load
// balancing (§4.4).
package controlplane

import (
	"errors"
	"fmt"
	"strings"

	"solros/internal/cache"
	"solros/internal/cpu"
	"solros/internal/fs"
	"solros/internal/model"
	"solros/internal/ninep"
	"solros/internal/nvme"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/transport"
)

// DataPath labels which mode served a transfer, for stats and tests.
type DataPath int

const (
	// PathP2P is a direct disk <-> co-processor DMA.
	PathP2P DataPath = iota
	// PathBuffered stages through the host buffer cache.
	PathBuffered
	// PathCacheHit served entirely from the cache.
	PathCacheHit
)

// FSProxy is the control-plane file-system service: it pulls RPCs from
// every co-processor's request ring, executes them against the host file
// system, and picks the data path using system-wide knowledge (PCIe
// topology, cache residency, open flags).
type FSProxy struct {
	FS    *fs.FS
	SSD   *nvme.Device
	Cache *cache.Cache

	fabric *pcie.Fabric
	// Coalesce enables the optimized IO-vector driver (§5); disabling it
	// is the ablation that shows why Solros can beat the host (Fig 1a).
	Coalesce bool
	// ForceP2P disables the topology check (ablation for the cross-NUMA
	// series in Fig 1a).
	ForceP2P bool
	// DisableCache bypasses the shared buffer cache (ablation).
	DisableCache bool

	// AutoPrefetch watches file popularity: once a file has been read
	// by more than one co-processor, the proxy pulls it into the shared
	// cache in the background so later readers hit host memory (§4.3:
	// the control plane "prefetches frequently accessed files from
	// multiple co-processors"). Enabled by default.
	AutoPrefetch bool

	// BatchRecv drains each request ring with RecvBatch, amortizing
	// combiner and PCIe costs when requests arrive back to back
	// (pipelined chunk windows). Default off.
	BatchRecv bool
	// CoalesceDoorbell batches the replies of one drained request batch
	// into a single SendBatch enqueue: k replies share one combiner
	// pass, one lazy control flush, and one receiver doorbell instead of
	// paying each per reply — the reply-side extension of the combining
	// discipline. Only effective together with BatchRecv. Default off
	// (behavior-visible: the first replies of a batch are held until the
	// whole batch is handled).
	CoalesceDoorbell bool
	// Overlap double-buffers buffered reads: missing pages are filled
	// from the flash by parallel worker procs while already-filled pages
	// stream to the co-processor, so the NVMe leg of chunk k+1 proceeds
	// under the PCIe leg of chunk k. Default off.
	Overlap bool

	// RetryIO arms degraded-mode recovery: transient nvme.ErrMedia
	// failures on disk legs are retried up to RetryIO times with
	// exponential backoff, and a failed peer-to-peer DMA falls back to
	// the buffered path instead of surfacing the error. Zero (the
	// default) propagates every error unchanged, the paper's behavior —
	// and what TestMediaErrorPropagatesToApplication pins down.
	RetryIO int
	// RetryBackoff is the first retry delay (default 50 us), doubling
	// per attempt.
	RetryBackoff sim.Time

	// Shards partitions the serve plane into that many per-NUMA-domain
	// shards (§6.3 scale-out): per-channel reader procs feed per-shard
	// executor pools, the serialized slice of each request queues on the
	// owning shard's lock, and pending-fill state shards by page hash.
	// Zero (the default) keeps the legacy per-channel serve loops with
	// global tables and unchanged virtual-time charges. Sharded serving
	// always replies per request (CoalesceDoorbell is a per-channel batch
	// discipline and is ignored).
	Shards int
	// ShardFids gives each shard a private fid table. With Shards set but
	// ShardFids off, fid-touching requests additionally serialize on one
	// global fid-table lock — the ablation showing that sharding the
	// tables matters, not just the serve loops.
	ShardFids bool

	channels []*channel
	workers  int
	shards   []*fsShard
	fidLock  *sim.Resource
	opens    map[uint32]*openFile
	readers  map[uint32]map[*pcie.Device]bool // ino -> co-processors that read it
	fetching map[uint32]bool

	// pendingFill marks cache pages that have a frame inserted but whose
	// disk fill has not yet landed (overlap fills, readahead).
	// pushFromCache waits on fillCond for them, and fullyCached treats
	// them as absent. Empty whenever Overlap and readahead are idle, so
	// the default paths never observe it.
	pendingFill map[pageKey]bool
	fillCond    *sim.Cond

	// stats
	p2pOps, bufferedOps, cacheHitOps, prefetches int64
	ioRetries, fallbacks, reattaches             int64

	tel         *telemetry.Sink
	telP2P      *telemetry.Counter
	telBuffered *telemetry.Counter
	telCacheHit *telemetry.Counter
	telPrefetch *telemetry.Counter
	telIORetry  *telemetry.Counter
	telFallback *telemetry.Counter
	telReattach *telemetry.Counter
	telInflight *telemetry.Queue
	telPending  *telemetry.Queue
}

type channel struct {
	idx   int // position in px.channels, fixed at Attach
	phi   *pcie.Device
	req   *transport.Port
	resp  *transport.Port
	shard *fsShard // owning shard; nil in the legacy unsharded layout
}

// pageKey names one cache page for fill coordination.
type pageKey struct {
	ino uint32
	blk int64
}

type openFile struct {
	f     *fs.File
	phi   *pcie.Device
	flags uint32
	path  string
}

// NewFSProxy builds a proxy over a mounted file system and SSD.
func NewFSProxy(fab *pcie.Fabric, fsys *fs.FS, ssd *nvme.Device, cacheBytes int64) *FSProxy {
	px := &FSProxy{
		FS:           fsys,
		SSD:          ssd,
		Cache:        cache.New(fab, cacheBytes),
		fabric:       fab,
		Coalesce:     true,
		AutoPrefetch: true,
		opens:        make(map[uint32]*openFile),
		readers:      make(map[uint32]map[*pcie.Device]bool),
		fetching:     make(map[uint32]bool),
		pendingFill:  make(map[pageKey]bool),
		fillCond:     sim.NewCond("fsproxy-fill"),
	}
	if tel := fab.Telemetry(); tel != nil {
		px.tel = tel
		px.telP2P = tel.Counter("controlplane.fsproxy.path.p2p")
		px.telBuffered = tel.Counter("controlplane.fsproxy.path.buffered")
		px.telCacheHit = tel.Counter("controlplane.fsproxy.path.cachehit")
		px.telPrefetch = tel.Counter("controlplane.fsproxy.prefetches")
		px.telIORetry = tel.Counter("controlplane.fsproxy.io_retries")
		px.telFallback = tel.Counter("controlplane.fsproxy.p2p_fallbacks")
		px.telReattach = tel.Counter("controlplane.fsproxy.reattaches")
		px.telInflight = tel.Queue("controlplane.fsproxy.inflight")
		px.telPending = tel.Queue("controlplane.fsproxy.pending_fill")
	}
	return px
}

// Attach registers a co-processor's RPC ring pair (proxy-side ports).
func (px *FSProxy) Attach(phi *pcie.Device, req, resp *transport.Port) {
	px.channels = append(px.channels, &channel{idx: len(px.channels), phi: phi, req: req, resp: resp})
}

// Start spawns workers proxy procs per attached co-processor channel.
// Each worker pulls requests and serves them; workers exit when the
// request ring closes. With Shards set the layout changes: channels get
// reader procs and shards get executor pools of the same worker count.
func (px *FSProxy) Start(p *sim.Proc, workers int) {
	if workers < 1 {
		workers = 1
	}
	px.workers = workers
	if px.Shards > 0 {
		px.assignShards()
	}
	for _, ch := range px.channels {
		px.startChannel(p, ch)
	}
}

// startChannel spawns the worker procs for one channel incarnation.
func (px *FSProxy) startChannel(p *sim.Proc, ch *channel) {
	// Pool the request ring's receive buffers: workers recycle each raw
	// request after decoding it, so steady-state serving stops allocating
	// per message. Heap-only — virtual time is unchanged.
	ch.req.EnablePool()
	if ch.shard != nil {
		px.startShardChannel(p, ch)
		return
	}
	for w := 0; w < px.workers; w++ {
		p.Spawn(fmt.Sprintf("fsproxy-%s-%d", ch.phi.Name, w), func(wp *sim.Proc) {
			px.serve(wp, ch)
		})
	}
}

// Reattach replaces channel idx's ring pair after a crash and reset: a
// fresh channel struct takes the slot (same index, so the fid namespace —
// and thus every open file — survives the outage) and new workers start on
// the new rings. Workers of the old incarnation drain their closed rings
// and exit without touching the replacement; sibling channels never notice.
func (px *FSProxy) Reattach(p *sim.Proc, idx int, req, resp *transport.Port) {
	old := px.channels[idx]
	// The replacement keeps its predecessor's shard, so the shard-private
	// fid table (like the fid namespace itself) survives the outage.
	ch := &channel{idx: idx, phi: old.phi, req: req, resp: resp, shard: old.shard}
	px.channels[idx] = ch
	px.reattaches++
	px.telReattach.Add(1)
	px.startChannel(p, ch)
}

// serveRecvBatch caps how many requests one worker drains per pass. Small
// on purpose: a full Options.Batch drain would serialize requests that
// idle sibling workers could otherwise serve concurrently, while a short
// batch still amortizes the combiner pass for back-to-back small ops.
const serveRecvBatch = 8

func (px *FSProxy) serve(p *sim.Proc, ch *channel) {
	// Per-worker reusable storage: the decoded request, the response
	// under construction, and the encode scratches all live for the
	// worker's lifetime, so a steady-state request allocates nothing in
	// the serve loop itself. Safe to share across yields because each
	// worker proc owns its own set.
	single := make([][]byte, 1)
	scratch := make([][]byte, 0, serveRecvBatch)
	var m, out ninep.Msg
	var enc []byte
	var encs, encBufs [][]byte
	for {
		var raws [][]byte
		if px.BatchRecv {
			batch, ok := ch.req.RecvBatchInto(p, serveRecvBatch, scratch[:0])
			if !ok {
				return
			}
			scratch = batch // keep the grown backing for the next drain
			raws = batch
		} else {
			raw, ok := ch.req.Recv(p)
			if !ok {
				return
			}
			single[0] = raw
			raws = single
		}
		coalesce := px.CoalesceDoorbell && len(raws) > 1
		encs = encs[:0]
		for i, raw := range raws {
			if err := ninep.DecodeInto(&m, raw); err != nil {
				panic("fsproxy: corrupt request: " + err.Error())
			}
			// The decode copied everything it keeps; the raw buffer can
			// go straight back to the request ring's pool.
			ch.req.Recycle(raw)
			// Join the request's causal tree via the wire context (zero
			// when the stub isn't tracing — StartCtx then degrades to a
			// plain Start), and echo the context into the response so
			// the stub-side completion joins the same tree.
			sp := px.tel.StartCtx(p, "controlplane.fsproxy",
				telemetry.TraceCtx{Trace: m.Trace, Span: m.Span})
			sp.Tag("type", m.Type.String())
			sp.TagInt("shard", int64(ch.idx))
			px.telInflight.Arrive(p)
			p.Advance(model.FSProxyCost)
			out.Reset()
			px.handle(p, ch, &m, &out)
			out.Tag = m.Tag
			out.Trace, out.Span = m.Trace, m.Span
			if coalesce {
				// Stash the encoded reply (reusing this slot's backing
				// from earlier batches) for one coalesced enqueue below.
				for len(encBufs) <= i {
					encBufs = append(encBufs, nil)
				}
				encBufs[i] = out.AppendTo(encBufs[i][:0])
				encs = append(encs, encBufs[i])
			} else {
				enc = out.AppendTo(enc[:0])
				ch.resp.Send(p, enc)
			}
			px.telInflight.Depart(p)
			sp.End(p)
		}
		if coalesce && len(encs) > 0 {
			// One combining pass, one lazy flush, one doorbell for the
			// whole batch of replies (§4.2's combining argument applied
			// to the reply side).
			ch.resp.SendBatch(p, encs)
		}
	}
}

// rerrorInto fills out as an Rerror reply.
func rerrorInto(out *ninep.Msg, err error) {
	out.Reset()
	out.Type = ninep.Rerror
	out.Err = err.Error()
}

// fidKey spreads fids across co-processors: each channel has its own fid
// space, namespaced by the channel's Attach-time index.
func (px *FSProxy) fidKey(ch *channel, fid uint32) uint32 {
	return uint32(ch.idx)<<24 | fid
}

// handle executes one request and fills out (already Reset by the caller)
// with the reply. Filling a caller-owned message instead of returning a
// fresh one keeps the per-request reply off the heap; out's payload
// backing (Rreaddir) is amortized across the worker's lifetime.
func (px *FSProxy) handle(p *sim.Proc, ch *channel, m, out *ninep.Msg) {
	switch m.Type {
	case ninep.Topen, ninep.Tcreate:
		// Metadata ops walk directory blocks on the same NVMe the data
		// legs use, so degraded mode retries their transient media errors
		// too (retryIO passes every other error through on first attempt).
		var f *fs.File
		err := px.retryIO(p, func() error {
			var e error
			if m.Type == ninep.Tcreate {
				f, e = px.FS.OpenOrCreate(p, m.Name)
			} else {
				f, e = px.FS.Open(p, m.Name)
			}
			return e
		})
		if err != nil {
			rerrorInto(out, err)
			return
		}
		px.fidTable(ch)[px.fidKey(ch, m.Fid)] = &openFile{f: f, phi: ch.phi, flags: m.Flags, path: m.Name}
		out.Type = ninep.Ropen
		out.Size = f.Size()

	case ninep.Tclose:
		delete(px.fidTable(ch), px.fidKey(ch, m.Fid))
		out.Type = ninep.Rclose

	case ninep.Tread:
		of, ok := px.fidTable(ch)[px.fidKey(ch, m.Fid)]
		if !ok {
			rerrorInto(out, fmt.Errorf("fsproxy: bad fid %d", m.Fid))
			return
		}
		n, err := px.read(p, of, m.Off, m.Count, m.Addr)
		if err != nil {
			rerrorInto(out, err)
			return
		}
		out.Type = ninep.Rread
		out.Count = n

	case ninep.Twrite:
		of, ok := px.fidTable(ch)[px.fidKey(ch, m.Fid)]
		if !ok {
			rerrorInto(out, fmt.Errorf("fsproxy: bad fid %d", m.Fid))
			return
		}
		n, err := px.write(p, of, m.Off, m.Count, m.Addr)
		if err != nil {
			rerrorInto(out, err)
			return
		}
		out.Type = ninep.Rwrite
		out.Count = n

	case ninep.Tstat:
		var st fs.FileInfo
		err := px.retryIO(p, func() error {
			var e error
			st, e = px.FS.Stat(p, m.Name)
			return e
		})
		if err != nil {
			rerrorInto(out, err)
			return
		}
		out.Type = ninep.Rstat
		out.Size = st.Size
		out.Mode = st.Mode

	case ninep.Tunlink:
		var ino uint32
		var freed bool
		err := px.retryIO(p, func() error {
			var e error
			ino, freed, e = px.FS.UnlinkIno(p, m.Name)
			return e
		})
		if err != nil {
			rerrorInto(out, err)
			return
		}
		if freed && !px.DisableCache {
			// The inode (and its blocks) can be reallocated to another
			// file; stale frames keyed by this ino must not survive that.
			px.Cache.Invalidate(ino)
		}
		out.Type = ninep.Runlink

	case ninep.Tmkdir:
		if err := px.retryIO(p, func() error { return px.FS.Mkdir(p, m.Name) }); err != nil {
			rerrorInto(out, err)
			return
		}
		out.Type = ninep.Rmkdir

	case ninep.Treaddir:
		var ents []fs.Dirent
		err := px.retryIO(p, func() error {
			var e error
			ents, e = px.FS.ReadDir(p, m.Name)
			return e
		})
		if err != nil {
			rerrorInto(out, err)
			return
		}
		data := out.Data // Reset kept the backing; reuse it
		for _, d := range ents {
			data = append(data, byte(len(d.Name)))
			data = append(data, d.Name...)
		}
		out.Type = ninep.Rreaddir
		out.Data = data

	case ninep.Ttrunc:
		of, ok := px.fidTable(ch)[px.fidKey(ch, m.Fid)]
		if !ok {
			rerrorInto(out, fmt.Errorf("fsproxy: bad fid %d", m.Fid))
			return
		}
		if err := px.retryIO(p, func() error { return of.f.Truncate(p, m.Size) }); err != nil {
			rerrorInto(out, err)
			return
		}
		px.Cache.Invalidate(of.f.Ino())
		out.Type = ninep.Rtrunc

	case ninep.Trename:
		// Name carries "old\x00new".
		parts := strings.SplitN(m.Name, "\x00", 2)
		if len(parts) != 2 {
			rerrorInto(out, fmt.Errorf("fsproxy: malformed rename %q", m.Name))
			return
		}
		if err := px.retryIO(p, func() error { return px.FS.Rename(p, parts[0], parts[1]) }); err != nil {
			rerrorInto(out, err)
			return
		}
		out.Type = ninep.Rrename

	case ninep.Tlink:
		parts := strings.SplitN(m.Name, "\x00", 2)
		if len(parts) != 2 {
			rerrorInto(out, fmt.Errorf("fsproxy: malformed link %q", m.Name))
			return
		}
		if err := px.retryIO(p, func() error { return px.FS.Link(p, parts[0], parts[1]) }); err != nil {
			rerrorInto(out, err)
			return
		}
		out.Type = ninep.Rlink

	case ninep.Tsync:
		// Metadata flush is a disk leg like any other: in degraded mode a
		// transient media error mid-sync is retried (syncLocked re-writes
		// whatever is still dirty; block writes are idempotent).
		if err := px.retryIO(p, func() error { return px.FS.Sync(p) }); err != nil {
			rerrorInto(out, err)
			return
		}
		out.Type = ninep.Rsync

	case ninep.Treadahead:
		of, ok := px.fidTable(ch)[px.fidKey(ch, m.Fid)]
		if !ok {
			rerrorInto(out, fmt.Errorf("fsproxy: bad fid %d", m.Fid))
			return
		}
		px.readahead(p, of, m.Off, m.Count)
		out.Type = ninep.Rreadahead

	default:
		rerrorInto(out, fmt.Errorf("fsproxy: unhandled message %v", m.Type))
	}
}

// choosePath is the §4.3.2 decision: buffered when the file demands it
// (O_BUFFER), when the topology would throttle P2P (crossing a NUMA
// boundary drops to ~300 MB/s), or when the cache already holds the data;
// peer-to-peer otherwise.
func (px *FSProxy) choosePath(of *openFile, off, n int64, forRead bool) DataPath {
	if !px.DisableCache && forRead && px.fullyCached(of.f.Ino(), off, n) {
		return PathCacheHit
	}
	if of.flags&ninep.OBuffer != 0 {
		return PathBuffered
	}
	if !px.ForceP2P && pcie.CrossNUMA(px.SSD.PCIeDev, of.phi) {
		return PathBuffered
	}
	return PathP2P
}

func (px *FSProxy) fullyCached(ino uint32, off, n int64) bool {
	if n == 0 {
		return false
	}
	for blk := off / cache.PageSize; blk <= (off+n-1)/cache.PageSize; blk++ {
		if _, ok := px.Cache.Lookup(ino, blk); !ok {
			return false
		}
		if px.fillPending(pageKey{ino: ino, blk: blk}) {
			// Frame claimed but the disk fill hasn't landed yet.
			return false
		}
	}
	return true
}

// waitFilled blocks until no fill is pending for page k; a pure map probe
// (never a yield) unless overlap or readahead fills are in flight.
func (px *FSProxy) waitFilled(p *sim.Proc, k pageKey) {
	for px.fillPending(k) {
		p.Wait(px.fillCondFor(k))
	}
}

// claimFill marks page k's frame as claimed-but-unfilled and accounts the
// claim in the pending_fill queue.
func (px *FSProxy) claimFill(p *sim.Proc, k pageKey) {
	px.fillMap(k)[k] = true
	px.telPending.Arrive(p)
}

// clearFill releases page k's fill claim. Idempotent, so error-path sweeps
// that clear a range cannot unbalance the queue accounting.
func (px *FSProxy) clearFill(p *sim.Proc, k pageKey) {
	m := px.fillMap(k)
	if m[k] {
		delete(m, k)
		px.telPending.Depart(p)
	}
}

// retryIO runs one disk leg, retrying transient media errors with
// exponential backoff while degraded mode (RetryIO > 0) is armed.
// Non-media errors, and every error when RetryIO is 0, propagate
// unchanged on the first attempt.
func (px *FSProxy) retryIO(p *sim.Proc, op func() error) error {
	err := op()
	if px.RetryIO == 0 {
		return err
	}
	backoff := px.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * sim.Microsecond
	}
	for att := 0; att < px.RetryIO && errors.Is(err, nvme.ErrMedia); att++ {
		px.ioRetries++
		px.telIORetry.Add(1)
		p.Advance(backoff)
		backoff <<= 1
		err = op()
	}
	return err
}

// read serves Tread: clamp to EOF, choose the path, move the data into
// co-processor memory at addr.
func (px *FSProxy) read(p *sim.Proc, of *openFile, off, n, addr int64) (int64, error) {
	if off >= of.f.Size() {
		return 0, nil
	}
	if off+n > of.f.Size() {
		n = of.f.Size() - off
	}
	if n == 0 {
		return 0, nil
	}
	px.notePopularity(p, of)
	dst := pcie.Loc{Dev: of.phi, Off: addr}
	switch px.choosePath(of, off, n, true) {
	case PathP2P:
		px.p2pOps++
		px.telP2P.Add(1)
		// Zero-copy: translate extents (fiemap) and let the SSD's DMA
		// engine write straight into co-processor memory. Block-align
		// the disk I/O while landing the requested window at addr.
		aOff := off &^ (fs.BlockSize - 1)
		head := off - aOff
		span := (head + n + fs.BlockSize - 1) &^ (fs.BlockSize - 1)
		if lim := px.alignedLimit(of.f); aOff+span > lim {
			span = lim - aOff
		}
		err := px.retryIO(p, func() error {
			return of.f.ReadTo(p, aOff, span, pcie.Loc{Dev: of.phi, Off: addr - head}, px.Coalesce)
		})
		if err == nil {
			return n, nil
		}
		if px.RetryIO == 0 {
			return 0, err
		}
		// Degrade: the direct DMA keeps failing, so serve this request
		// through the host buffer cache instead of surfacing the error.
		px.fallbacks++
		px.telFallback.Add(1)
		px.bufferedOps++
		px.telBuffered.Add(1)
		return n, px.bufferedRead(p, of, off, n, dst)
	case PathCacheHit:
		px.cacheHitOps++
		px.telCacheHit.Add(1)
		return n, px.pushFromCache(p, of, off, n, dst)
	default:
		px.bufferedOps++
		px.telBuffered.Add(1)
		return n, px.bufferedRead(p, of, off, n, dst)
	}
}

func (px *FSProxy) alignedLimit(f *fs.File) int64 {
	return (f.Size() + fs.BlockSize - 1) &^ (fs.BlockSize - 1)
}

// bufferedRead fills cache pages from disk as needed, then DMA-pushes them
// to the co-processor with host-initiated transfers. With Overlap set the
// two legs run concurrently (bufferedReadOverlap); otherwise fill strictly
// precedes push.
func (px *FSProxy) bufferedRead(p *sim.Proc, of *openFile, off, n int64, dst pcie.Loc) error {
	if px.Overlap && !px.DisableCache {
		return px.bufferedReadOverlap(p, of, off, n, dst)
	}
	ino := of.f.Ino()
	first := off / cache.PageSize
	last := (off + n - 1) / cache.PageSize
	limit := px.alignedLimit(of.f)

	// Fill missing pages: batch contiguous misses into one disk vector.
	// Each inserted frame is marked pendingFill until its disk read lands,
	// so a concurrent worker's fullyCached/pushFromCache cannot serve the
	// unfilled frame as a cache hit.
	var missLocs []pcie.Loc
	var missStart int64 = -1
	flush := func(endBlk int64) error {
		if missStart < 0 {
			return nil
		}
		// Pages are scattered frames; issue one op per frame but let
		// the driver coalesce doorbells/interrupts across the vector.
		for i, loc := range missLocs {
			sz := int64(cache.PageSize)
			pOff := (missStart + int64(i)) * cache.PageSize
			if pOff+sz > limit {
				sz = limit - pOff
			}
			var err error
			if sz > 0 {
				err = px.retryIO(p, func() error {
					return of.f.ReadTo(p, pOff, sz, loc, px.Coalesce)
				})
			}
			if err != nil || sz <= 0 {
				// The remaining frames hold garbage; drop them (and their
				// claims) so a retry of the whole request refills them
				// instead of serving junk, and no waiter wedges.
				for j := i; j < len(missLocs); j++ {
					blk := missStart + int64(j)
					px.Cache.InvalidateRange(ino, blk*cache.PageSize, cache.PageSize)
					px.clearFill(p, pageKey{ino: ino, blk: blk})
				}
				px.broadcastFills(p)
				missLocs = missLocs[:0]
				missStart = -1
				return err
			}
			filled := pageKey{ino: ino, blk: missStart + int64(i)}
			px.clearFill(p, filled)
			p.Broadcast(px.fillCondFor(filled))
		}
		missLocs = missLocs[:0]
		missStart = -1
		return nil
	}
	for blk := first; blk <= last; blk++ {
		if px.DisableCache {
			break
		}
		if _, ok := px.Cache.Lookup(ino, blk); ok {
			if err := flush(blk); err != nil {
				return err
			}
			continue
		}
		if missStart < 0 {
			missStart = blk
		} else if missStart+int64(len(missLocs)) != blk {
			if err := flush(blk); err != nil {
				return err
			}
			missStart = blk
		}
		px.claimFill(p, pageKey{ino: ino, blk: blk})
		missLocs = append(missLocs, px.Cache.InsertAt(p, ino, blk))
	}
	if err := flush(last + 1); err != nil {
		return err
	}
	if px.DisableCache {
		// Stage through scratch host memory instead of the cache.
		loc, _, put := px.FS.Staging(n)
		defer put()
		aOff := off &^ (cache.PageSize - 1)
		span := ((off + n + cache.PageSize - 1) &^ (cache.PageSize - 1)) - aOff
		if aOff+span > limit {
			span = limit - aOff
		}
		err := px.retryIO(p, func() error {
			return of.f.ReadTo(p, aOff, span, loc, px.Coalesce)
		})
		if err != nil {
			return err
		}
		return px.pushHostToPhi(p, pcie.Loc{Off: loc.Off + (off - aOff)}, dst, n)
	}
	return px.pushFromCache(p, of, off, n, dst)
}

// pushFromCache copies [off, off+n) from resident cache pages to the
// co-processor. The pages are scattered host frames, so the proxy builds
// DMA descriptor chains: one channel setup per model.DMAChainBytes of
// traffic, all pages in a chain streaming back to back. A page another
// proc is still filling (overlap, readahead) is waited for right before
// it joins a chain, so everything already filled streams immediately —
// that per-page handoff is what overlaps the NVMe and PCIe legs.
func (px *FSProxy) pushFromCache(p *sim.Proc, of *openFile, off, n int64, dst pcie.Loc) error {
	sp := px.tel.Start(p, "controlplane.fsproxy.push")
	sp.TagInt("bytes", n)
	defer sp.End(p)
	ino := of.f.Ino()
	dstMem := px.fabric.Mem(pcie.Loc{Dev: dst.Dev})
	var chainBytes int64
	var latest sim.Time
	startChain := func() {
		p.Advance(model.DMASetupHost)
		px.fabric.CountTxn(1)
		chainBytes = 0
		latest = 0
	}
	endChain := func() {
		if latest > 0 {
			p.AdvanceTo(latest)
		}
	}
	startChain()
	for done := int64(0); done < n; {
		pos := off + done
		blk := pos / cache.PageSize
		inPage := pos % cache.PageSize
		chunk := cache.PageSize - inPage
		if chunk > n-done {
			chunk = n - done
		}
		px.waitFilled(p, pageKey{ino: ino, blk: blk})
		loc, ok := px.Cache.Lookup(ino, blk)
		if !ok {
			return fmt.Errorf("fsproxy: page %d of inode %d evicted mid-read", blk, ino)
		}
		if chainBytes+chunk > model.DMAChainBytes {
			endChain()
			startChain()
		}
		copy(dstMem.Slice(dst.Off+done, chunk), px.fabric.HostRAM.Slice(loc.Off+inPage, chunk))
		if t := px.fabric.StreamAsync(p, nil, dst.Dev, chunk); t > latest {
			latest = t
		}
		chainBytes += chunk
		done += chunk
	}
	endChain()
	return nil
}

// overlapFillers caps the parallel NVMe fill procs per fill job. Four
// keeps enough commands in flight to hide the per-command doorbell,
// submission latency, and interrupt behind the flash's own service time;
// past that the flash array is the bottleneck.
const overlapFillers = 4

// fillJob tracks one batch of background page fills.
type fillJob struct {
	wg  *sim.WaitGroup
	err error // first fill error, if any
}

// startFill claims the missing cache pages of [off, off+n) of f and
// spawns up to procs parallel filler procs that read them from disk.
// Pages already resident or being filled by another proc are skipped.
// Each page is published (pendingFill cleared + broadcast) the moment its
// disk read lands, so a concurrent pushFromCache streams page k over PCIe
// while page k+1 is still on the flash. On a fill error the filler drops
// its remaining claims (and their garbage frames) so no waiter wedges.
func (px *FSProxy) startFill(p *sim.Proc, f *fs.File, off, n int64, procs int) *fillJob {
	job := &fillJob{wg: sim.NewWaitGroup("fsproxy-fill")}
	limit := px.alignedLimit(f)
	if off+n > limit {
		n = limit - off
	}
	if n <= 0 {
		return job
	}
	ino := f.Ino()
	type fill struct {
		blk   int64
		frame pcie.Loc
	}
	var fills []fill
	for blk := off / cache.PageSize; blk <= (off+n-1)/cache.PageSize; blk++ {
		k := pageKey{ino: ino, blk: blk}
		if px.fillPending(k) {
			continue // another proc is on it; pushFromCache will wait
		}
		if _, ok := px.Cache.Lookup(ino, blk); ok {
			continue
		}
		px.claimFill(p, k)
		fills = append(fills, fill{blk: blk, frame: px.Cache.InsertAt(p, ino, blk)})
	}
	if len(fills) == 0 {
		return job
	}
	if procs > len(fills) {
		procs = len(fills)
	}
	// Deal contiguous strides so each filler issues mostly-sequential
	// disk reads. Fillers run on fresh procs with empty span stacks, so
	// the spawner's trace context is captured here and attached
	// explicitly — the fills stay inside the request's causal tree.
	fillCtx := px.tel.Current(p)
	per := (len(fills) + procs - 1) / procs
	for w := 0; w < procs; w++ {
		lo := w * per
		hi := min(lo+per, len(fills))
		if lo >= hi {
			break
		}
		span := fills[lo:hi]
		job.wg.Add(1)
		p.Spawn(fmt.Sprintf("fsproxy-fill-%d", w), func(fp *sim.Proc) {
			defer fp.DoneWG(job.wg)
			sp := px.tel.StartCtx(fp, "controlplane.fsproxy.fill", fillCtx)
			sp.TagInt("pages", int64(len(span)))
			defer sp.End(fp)
			for i, fl := range span {
				pOff := fl.blk * cache.PageSize
				sz := min(int64(cache.PageSize), limit-pOff)
				err := px.retryIO(fp, func() error {
					return f.ReadTo(fp, pOff, sz, fl.frame, px.Coalesce)
				})
				if err != nil {
					if job.err == nil {
						job.err = err
					}
					for _, rest := range span[i:] {
						px.Cache.InvalidateRange(ino, rest.blk*cache.PageSize, cache.PageSize)
						px.clearFill(fp, pageKey{ino: ino, blk: rest.blk})
					}
					px.broadcastFills(fp)
					return
				}
				filled := pageKey{ino: ino, blk: fl.blk}
				px.clearFill(fp, filled)
				fp.Broadcast(px.fillCondFor(filled))
			}
		})
	}
	return job
}

// bufferedReadOverlap is bufferedRead with the storage and transport legs
// overlapped: parallel fillers pull the missing pages from the flash
// while pushFromCache streams pages to the co-processor as each becomes
// ready, double-buffering at model.DMAChainBytes granularity through the
// chain loop.
func (px *FSProxy) bufferedReadOverlap(p *sim.Proc, of *openFile, off, n int64, dst pcie.Loc) error {
	sp := px.tel.Start(p, "controlplane.fsproxy.read_overlap")
	sp.TagInt("bytes", n)
	defer sp.End(p)
	job := px.startFill(p, of.f, off, n, overlapFillers)
	err := px.pushFromCache(p, of, off, n, dst)
	p.WaitWG(job.wg)
	if job.err != nil {
		return job.err // root cause; the push error is its consequence
	}
	return err
}

// readahead serves a Treadahead hint: warm the cache for [off, off+n) in
// the background and return immediately. Purely advisory — a no-op when
// the cache is off, and fill errors are dropped.
func (px *FSProxy) readahead(p *sim.Proc, of *openFile, off, n int64) {
	if px.DisableCache || n <= 0 || off >= of.f.Size() {
		return
	}
	f := of.f
	raCtx := px.tel.Current(p)
	p.Spawn("fsproxy-readahead", func(rp *sim.Proc) {
		sp := px.tel.StartCtx(rp, "controlplane.fsproxy.readahead", raCtx)
		sp.TagInt("bytes", n)
		job := px.startFill(rp, f, off, n, overlapFillers)
		rp.WaitWG(job.wg)
		sp.End(rp)
	})
}

// pushHostToPhi moves n bytes of host memory to co-processor memory using
// the host's DMA engines with descriptor chaining: one setup per
// model.DMAChainBytes of traffic.
func (px *FSProxy) pushHostToPhi(p *sim.Proc, src, dst pcie.Loc, n int64) error {
	buf := px.fabric.HostRAM.Slice(src.Off, n)
	for chunk := int64(0); chunk < n; chunk += model.DMAChainBytes {
		sz := n - chunk
		if sz > model.DMAChainBytes {
			sz = model.DMAChainBytes
		}
		px.fabric.CopyIn(p, nil, cpu.Host, pcie.Loc{Dev: dst.Dev, Off: dst.Off + chunk}, buf[chunk:chunk+sz], pcie.Adaptive)
	}
	return nil
}

// pullPhiToHost moves n bytes from co-processor memory into host memory.
func (px *FSProxy) pullPhiToHost(p *sim.Proc, src, dst pcie.Loc, n int64) error {
	buf := px.fabric.HostRAM.Slice(dst.Off, n)
	for chunk := int64(0); chunk < n; chunk += model.DMAChainBytes {
		sz := n - chunk
		if sz > model.DMAChainBytes {
			sz = model.DMAChainBytes
		}
		px.fabric.CopyOut(p, nil, cpu.Host, pcie.Loc{Dev: src.Dev, Off: src.Off + chunk}, buf[chunk:chunk+sz], pcie.Adaptive)
	}
	return nil
}

// write serves Twrite.
func (px *FSProxy) write(p *sim.Proc, of *openFile, off, n, addr int64) (int64, error) {
	if n == 0 {
		return 0, nil
	}
	src := pcie.Loc{Dev: of.phi, Off: addr}
	// Written ranges supersede cached pages either way.
	if !px.DisableCache {
		px.Cache.InvalidateRange(of.f.Ino(), off, n)
	}
	switch px.choosePath(of, off, n, false) {
	case PathP2P:
		px.p2pOps++
		px.telP2P.Add(1)
		if off%fs.BlockSize == 0 && n%fs.BlockSize == 0 {
			// Aligned: the disk's DMA engine pulls straight from
			// co-processor memory.
			err := px.retryIO(p, func() error {
				return of.f.WriteFrom(p, off, n, src, px.Coalesce)
			})
			if err == nil {
				return n, nil
			}
			if px.RetryIO == 0 {
				return 0, err
			}
			// Degrade: the direct DMA keeps failing; restage the write
			// through host memory like an unaligned one.
			px.fallbacks++
			px.telFallback.Add(1)
		}
		// Unaligned tail: stage the edges through host memory via the
		// file system's read-modify-write path.
		fallthrough
	default:
		px.bufferedOps++
		px.telBuffered.Add(1)
		loc, buf, put := px.FS.Staging(n)
		defer put()
		if err := px.pullPhiToHost(p, src, loc, n); err != nil {
			return 0, err
		}
		err := px.retryIO(p, func() error {
			_, werr := writeViaStaging(p, of.f, off, buf[:n])
			return werr
		})
		return n, err
	}
}

// writeViaStaging funnels a buffered write through the file's standard
// write path (read-modify-write on unaligned edges).
func writeViaStaging(p *sim.Proc, f *fs.File, off int64, data []byte) (int, error) {
	return f.Write(p, off, data)
}

// notePopularity records which co-processors read a file; when a second
// distinct co-processor shows interest, a background proc prefetches the
// whole file into the shared cache.
func (px *FSProxy) notePopularity(p *sim.Proc, of *openFile) {
	if !px.AutoPrefetch || px.DisableCache {
		return
	}
	ino := of.f.Ino()
	set := px.readers[ino]
	if set == nil {
		set = make(map[*pcie.Device]bool)
		px.readers[ino] = set
	}
	set[of.phi] = true
	if len(set) < 2 || px.fetching[ino] {
		return
	}
	// The file cannot be larger than the cache, or prefetching would
	// just thrash it.
	if of.f.Size() > int64(px.Cache.Capacity())*cache.PageSize/2 {
		return
	}
	px.fetching[ino] = true
	path := of.path
	p.Spawn("fsproxy-prefetch", func(pp *sim.Proc) {
		if err := px.Prefetch(pp, path); err == nil {
			px.prefetches++
			px.telPrefetch.Add(1)
		}
	})
}

// Prefetch loads a whole file into the shared buffer cache (§4.3: the
// proxy "prefetches frequently accessed files from multiple co-processors
// to the host memory").
func (px *FSProxy) Prefetch(p *sim.Proc, path string) error {
	f, err := px.FS.Open(p, path)
	if err != nil {
		return err
	}
	limit := px.alignedLimit(f)
	for pos := int64(0); pos < limit; pos += cache.PageSize {
		blk := pos / cache.PageSize
		k := pageKey{ino: f.Ino(), blk: blk}
		if px.fillPending(k) {
			continue // another proc is filling it
		}
		if _, ok := px.Cache.Lookup(f.Ino(), blk); ok {
			continue
		}
		px.claimFill(p, k)
		loc := px.Cache.InsertAt(p, f.Ino(), blk)
		sz := int64(cache.PageSize)
		if pos+sz > limit {
			sz = limit - pos
		}
		err := px.retryIO(p, func() error {
			return f.ReadTo(p, pos, sz, loc, px.Coalesce)
		})
		px.clearFill(p, k)
		p.Broadcast(px.fillCondFor(k))
		if err != nil {
			px.Cache.InvalidateRange(f.Ino(), pos, cache.PageSize)
			return err
		}
	}
	return nil
}

// CheckCacheCoherence audits every resident cache frame against backing
// storage: a frame's bytes must equal the disk blocks its (ino, blk) maps
// to through the file system's in-memory extent tree. Frames with an
// in-flight claimed fill (pendingFill) are exempt — their bytes are still
// on the flash — as are frames of freed or sparse regions awaiting the
// owner's invalidation in the same handler. This is the cache half of the
// exploration oracle layer; it would have caught a fill publishing its
// frame before the disk read landed, or a write skipping invalidation.
func (px *FSProxy) CheckCacheCoherence() error {
	img := px.SSD.Image()
	var violation error
	px.Cache.ForEach(func(ino uint32, blk int64, loc pcie.Loc) bool {
		if px.fillPending(pageKey{ino: ino, blk: blk}) {
			return true
		}
		extents, _, ok := px.FS.InodeExtents(ino)
		if !ok {
			return true // freed inode; invalidation pending in its handler
		}
		var disk int64 = -1
		for _, e := range extents {
			if blk >= int64(e.Logical) && blk < int64(e.Logical)+int64(e.Count) {
				disk = (int64(e.Start) + blk - int64(e.Logical)) * fs.BlockSize
				break
			}
		}
		if disk < 0 || disk+cache.PageSize > img.Size() {
			return true // sparse or truncated region; not servable anyway
		}
		want := img.Slice(disk, cache.PageSize)
		got := px.fabric.HostRAM.Slice(loc.Off, cache.PageSize)
		for i := range want {
			if got[i] != want[i] {
				violation = fmt.Errorf(
					"fsproxy: cache frame (ino %d, blk %d) diverges from disk block %d at byte %d: %#x != %#x",
					ino, blk, disk/fs.BlockSize, i, got[i], want[i])
				return false
			}
		}
		return true
	})
	return violation
}

// PathStats reports how many operations each data path served.
func (px *FSProxy) PathStats() (p2p, buffered, cacheHit int64) {
	return px.p2pOps, px.bufferedOps, px.cacheHitOps
}

// Prefetches reports completed background prefetches.
func (px *FSProxy) Prefetches() int64 { return px.prefetches }

// RecoveryStats reports degraded-mode activity: transient-I/O retries,
// p2p->buffered fallbacks, and channel reattaches after crashes.
func (px *FSProxy) RecoveryStats() (retries, fallbacks, reattaches int64) {
	return px.ioRetries, px.fallbacks, px.reattaches
}
