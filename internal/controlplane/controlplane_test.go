package controlplane

import (
	"testing"

	"solros/internal/pcie"
)

func devs(n int) []*pcie.Device {
	f := pcie.New(1 << 20)
	out := make([]*pcie.Device, n)
	for i := range out {
		out[i] = f.AddPhi("phi", 0, 4096)
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{}
	members := devs(3)
	load := []int{0, 0, 0}
	got := []int{}
	for i := 0; i < 7; i++ {
		got = append(got, rr.Pick(80, members, load))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick sequence %v, want %v", got, want)
		}
	}
}

func TestLeastLoadedPicksMin(t *testing.T) {
	ll := LeastLoaded{}
	members := devs(4)
	if got := ll.Pick(80, members, []int{3, 1, 4, 1}); got != 1 {
		t.Fatalf("pick = %d, want 1 (first minimum)", got)
	}
	if got := ll.Pick(80, members, []int{0, 0, 0, 0}); got != 0 {
		t.Fatalf("pick = %d, want 0 on ties", got)
	}
}

func TestPortEncoding(t *testing.T) {
	for _, port := range []int{0, 80, 8080, 65535} {
		if got := DecodePort(encodePort(port)); got != port {
			t.Fatalf("port %d round-tripped to %d", port, got)
		}
	}
	if DecodePort(nil) != 0 || DecodePort([]byte{1}) != 0 {
		t.Fatal("short payload should decode to 0")
	}
}
