package controlplane_test

// Edge cases of content-based connection balancing (§4.4.3), driven
// through the full machine: degenerate first frames, pathological key
// skew where every connection hashes to one member, and rebalancing when
// DetachNet removes the owning member mid-run. Lives in the external
// test package so it can drive core machines (core imports controlplane).

import (
	"fmt"
	"testing"

	"solros/internal/controlplane"
	"solros/internal/core"
	"solros/internal/sim"
)

const balPort = 7100

func TestContentBalancerDegenerateFrames(t *testing.T) {
	cb := &controlplane.ContentBalancer{Key: controlplane.FNV1a}
	for _, frame := range [][]byte{{}, {0x41}, {0x41, 0x42}} {
		for _, members := range []int{1, 2, 3, 7} {
			got := cb.PickContent(frame, members)
			if got < 0 || got >= members {
				t.Fatalf("frame %v over %d members: pick %d out of range", frame, members, got)
			}
			if again := cb.PickContent(frame, members); again != got {
				t.Fatalf("frame %v not deterministic: %d then %d", frame, got, again)
			}
		}
	}
}

// echoMachine runs servers on every phi that answer one-byte requests
// with the phi's index, and hands the client body a dial helper. The
// returned counts are per-phi served totals.
func echoMachine(t *testing.T, phis int, body func(cp *sim.Proc, m *core.Machine, ask func(first byte) int)) []int {
	t.Helper()
	served := make([]int, phis)
	m := core.NewMachine(core.Config{Phis: phis})
	m.EnableNetwork()
	m.MustRun(func(p *sim.Proc, m *core.Machine) {
		m.TCPProxy.Balance = &controlplane.ContentBalancer{
			// Shard by the first payload byte, so tests dictate placement.
			Key: func(first []byte) uint32 {
				if len(first) == 0 {
					return 0
				}
				return uint32(first[0])
			},
		}
		done := sim.NewWaitGroup("bal")
		for i, phi := range m.Phis {
			if err := phi.Net.Listen(p, balPort); err != nil {
				t.Fatalf("listen: %v", err)
			}
			i, phi := i, phi
			done.Add(1)
			p.Spawn(fmt.Sprintf("srv-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				for {
					sock, err := phi.Net.Accept(sp, balPort)
					if err != nil {
						return
					}
					for {
						req, err := sock.RecvFull(sp, 1)
						if err != nil || len(req) != 1 {
							break
						}
						sock.Send(sp, []byte{byte(i)})
						served[i]++
					}
				}
			})
		}
		done.Add(1)
		p.Spawn("client", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			ask := func(first byte) int {
				conn, err := m.ClientStack.Dial(cp, m.HostStack, balPort)
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				side := conn.Side(m.ClientStack)
				side.Send(cp, []byte{first})
				resp, err := side.RecvFull(cp, 1)
				if err != nil || len(resp) != 1 {
					t.Fatalf("echo: %v", err)
				}
				side.Close(cp)
				return int(resp[0])
			}
			body(cp, m, ask)
			m.TCPProxy.Stop(cp)
		})
		p.WaitWG(done)
	})
	return served
}

// TestContentBalancerSkewAllOneShard sends every connection a first byte
// hashing to member 0 of 2: the balancer must honor the skew (content
// placement is ownership, not load spreading), leaving member 1 idle.
func TestContentBalancerSkewAllOneShard(t *testing.T) {
	served := echoMachine(t, 2, func(cp *sim.Proc, m *core.Machine, ask func(byte) int) {
		for i := 0; i < 8; i++ {
			if got := ask(4); got != 0 { // 4 % 2 == 0 → member 0
				t.Fatalf("conn %d landed on member %d, want 0", i, got)
			}
		}
	})
	if served[0] != 8 || served[1] != 0 {
		t.Fatalf("served = %v, want all 8 on member 0", served)
	}
}

// TestDetachNetRebalances removes the member that owns a key mid-run:
// the shared listener's member list shrinks, so new connections for that
// key land on the surviving member instead of hanging or crashing.
func TestDetachNetRebalances(t *testing.T) {
	served := echoMachine(t, 2, func(cp *sim.Proc, m *core.Machine, ask func(byte) int) {
		if got := ask(2); got != 0 { // 2 % 2 == 0 → member 0 owns key 2
			t.Fatalf("pre-detach: key 2 on member %d, want 0", got)
		}
		if got := ask(3); got != 1 {
			t.Fatalf("pre-detach: key 3 on member %d, want 1", got)
		}
		m.TCPProxy.DetachNet(cp, m.Phis[0].Dev)
		if n := m.TCPProxy.Detaches(); n != 1 {
			t.Fatalf("detaches = %d, want 1", n)
		}
		// Key 2's owner is gone; with one member left every key lands on
		// the survivor (index % 1 == 0 → member list holds only phi1).
		for i := 0; i < 4; i++ {
			if got := ask(2); got != 1 {
				t.Fatalf("post-detach: key 2 on member %d, want 1", got)
			}
		}
	})
	if served[0] != 1 || served[1] != 5 {
		t.Fatalf("served = %v, want [1 5]", served)
	}
}
