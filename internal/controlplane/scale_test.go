package controlplane_test

// Scale-out test battery for the sharded control plane (§6.3): shard
// assignment and fid-table audits, N-shard × M-client churn stress with a
// mid-run DetachNet, the shared-listener balancer property over a dozen
// scheduler seeds, and the DetachNet vs. in-flight-accept regression. All
// of it runs under -race in CI; the simulator is single-threaded, so the
// races these catch are structural (shared tables mutated across yields),
// not data races.

import (
	"fmt"
	"testing"

	"solros/internal/controlplane"
	"solros/internal/core"
	"solros/internal/ninep"
	"solros/internal/sim"
)

const scalePort = 7150

// TestShardAssignmentNUMA pins the topology→shard deal: with four phis
// striped over two sockets and two shards, each NUMA domain gets exactly
// one shard, and assignment is a pure function of the topology.
func TestShardAssignmentNUMA(t *testing.T) {
	m := core.NewMachine(core.Config{Phis: 4, ProxyShards: 2, ShardFids: true})
	m.MustRun(func(p *sim.Proc, m *core.Machine) {
		if got := m.FSProxy.ShardCount(); got != 2 {
			t.Fatalf("ShardCount = %d, want 2", got)
		}
		want := []int{0, 0, 1, 1} // phis 0,1 on socket 0; 2,3 on socket 1
		for i, w := range want {
			if got := m.FSProxy.ShardOf(i); got != w {
				t.Errorf("ShardOf(%d) = %d, want %d", i, got, w)
			}
		}
	})
}

// TestShardedFSEndToEnd drives create/write/read/close through every phi
// of a sharded proxy, including a file shared across shards, and audits
// the fid tables afterwards.
func TestShardedFSEndToEnd(t *testing.T) {
	for _, shardFids := range []bool{true, false} {
		t.Run(fmt.Sprintf("shardFids=%v", shardFids), func(t *testing.T) {
			m := core.NewMachine(core.Config{Phis: 4, ProxyShards: 4, ShardFids: shardFids})
			m.MustRun(func(p *sim.Proc, m *core.Machine) {
				done := sim.NewWaitGroup("sharded-fs")
				for i, phi := range m.Phis {
					i, phi := i, phi
					done.Add(1)
					p.Spawn(fmt.Sprintf("wl-%d", i), func(wp *sim.Proc) {
						defer wp.DoneWG(done)
						buf := phi.FS.AllocBuffer(8192)
						for r := 0; r < 3; r++ {
							path := fmt.Sprintf("/own-%d", i)
							fd, err := phi.FS.Open(wp, path, ninep.OCreate)
							if err != nil {
								t.Errorf("phi %d open: %v", i, err)
								return
							}
							copy(buf.Data, fmt.Sprintf("phi-%d-round-%d", i, r))
							if _, err := phi.FS.Write(wp, fd, 0, buf, 4096); err != nil {
								t.Errorf("phi %d write: %v", i, err)
							}
							if _, err := phi.FS.Read(wp, fd, 0, buf, 4096); err != nil {
								t.Errorf("phi %d read: %v", i, err)
							}
							if err := phi.FS.Close(wp, fd); err != nil {
								t.Errorf("phi %d close: %v", i, err)
							}
							// Shared file: every shard touches the same inode,
							// so pending-fill hashing gets cross-shard traffic.
							sfd, err := phi.FS.Open(wp, "/shared", ninep.OCreate)
							if err != nil {
								t.Errorf("phi %d shared open: %v", i, err)
								return
							}
							phi.FS.Write(wp, sfd, int64(i)*4096, buf, 4096)
							phi.FS.Read(wp, sfd, 0, buf, 4096)
							phi.FS.Close(wp, sfd)
						}
					})
				}
				p.WaitWG(done)
				if err := m.FSProxy.CheckShards(); err != nil {
					t.Errorf("CheckShards: %v", err)
				}
				if n := m.FSProxy.OpenFids(); n != 0 {
					t.Errorf("fid leak: %d open fids after quiesce", n)
				}
			})
		})
	}
}

// churnMachine runs an echo server fleet behind a content balancer and a
// set of churn clients doing connect/ask/disconnect loops, plus FS
// open/write/read/close loops, with a DetachNet fired mid-run. It is the
// N-shard × M-client stress scenario of the scale-out PR.
func churnMachine(t *testing.T, shards int, shardFids bool) {
	const phis = 4
	const clients = 6
	const rounds = 4
	m := core.NewMachine(core.Config{
		Phis:        phis,
		ProxyShards: shards,
		ShardFids:   shardFids,
	})
	m.EnableNetwork()
	m.MustRun(func(p *sim.Proc, m *core.Machine) {
		m.TCPProxy.Balance = &controlplane.ContentBalancer{
			Key: func(first []byte) uint32 {
				if len(first) == 0 {
					return 0
				}
				return uint32(first[0])
			},
		}
		srvDone := sim.NewWaitGroup("churn-srv")
		done := sim.NewWaitGroup("churn")
		for i, phi := range m.Phis {
			if err := phi.Net.Listen(p, scalePort); err != nil {
				t.Fatalf("listen: %v", err)
			}
			i, phi := i, phi
			srvDone.Add(1)
			p.Spawn(fmt.Sprintf("srv-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(srvDone)
				for {
					sock, err := phi.Net.Accept(sp, scalePort)
					if err != nil {
						return
					}
					for {
						req, err := sock.RecvFull(sp, 1)
						if err != nil || len(req) != 1 {
							break
						}
						sock.Send(sp, []byte{byte(i)})
					}
				}
			})
		}
		for c := 0; c < clients; c++ {
			c := c
			done.Add(1)
			p.Spawn(fmt.Sprintf("churn-%d", c), func(cp *sim.Proc) {
				defer cp.DoneWG(done)
				phi := m.Phis[c%phis]
				buf := phi.FS.AllocBuffer(4096)
				for r := 0; r < rounds; r++ {
					// FS leg: open/write/read/close churn on the client's phi.
					fd, err := phi.FS.Open(cp, fmt.Sprintf("/churn-%d", c), ninep.OCreate)
					if err != nil {
						t.Errorf("client %d open: %v", c, err)
						return
					}
					phi.FS.Write(cp, fd, 0, buf, 2048)
					phi.FS.Read(cp, fd, 0, buf, 2048)
					if err := phi.FS.Close(cp, fd); err != nil {
						t.Errorf("client %d close: %v", c, err)
					}
					// TCP leg: connect, one request, disconnect. The reply
					// may come from any live member — the detach below
					// shrinks the member set mid-run.
					conn, err := m.ClientStack.Dial(cp, m.HostStack, scalePort)
					if err != nil {
						t.Errorf("client %d dial: %v", c, err)
						return
					}
					side := conn.Side(m.ClientStack)
					side.Send(cp, []byte{byte(c*rounds + r)})
					if resp, err := side.RecvFull(cp, 1); err == nil {
						if got := int(resp[0]); got < 0 || got >= phis {
							t.Errorf("client %d: reply from member %d out of range", c, got)
						}
					}
					// A detach can close a connection before the reply; an
					// error here is a legal outcome of the race under test.
					side.Close(cp)
				}
			})
		}
		done.Add(1)
		p.Spawn("detacher", func(dp *sim.Proc) {
			defer dp.DoneWG(done)
			dp.Advance(80 * sim.Microsecond)
			m.TCPProxy.DetachNet(dp, m.Phis[1].Dev)
		})
		p.WaitWG(done)
		// Stopping the proxy closes the listeners, which fails the servers'
		// Accept and lets them drain.
		m.TCPProxy.Stop(p)
		p.WaitWG(srvDone)

		if err := m.FSProxy.CheckShards(); err != nil {
			t.Errorf("CheckShards after churn: %v", err)
		}
		if n := m.FSProxy.OpenFids(); n != 0 {
			t.Errorf("fid leak after churn: %d open fids", n)
		}
		if m.TCPProxy.ActiveConns()[m.Phis[1].Dev.Name] != 0 {
			t.Errorf("detached member still holds active conns: %v", m.TCPProxy.ActiveConns())
		}
		for i, phi := range m.Phis {
			if err := phi.Net.RPC().CheckTags(); err != nil {
				t.Errorf("phi %d net RPC tags after churn: %v", i, err)
			}
			if err := phi.Conn.CheckTags(); err != nil {
				t.Errorf("phi %d fs RPC tags after churn: %v", i, err)
			}
		}
	})
}

// TestShardedProxyChurnStress is the N-shard × M-client concurrency
// stress: connect/serve/disconnect and open/close loops with DetachNet
// mid-run, across shard counts (0 = legacy layout) and both fid-table
// layouts, audited for fid leaks and tag-window imbalance after quiesce.
func TestShardedProxyChurnStress(t *testing.T) {
	for _, tc := range []struct {
		shards    int
		shardFids bool
	}{
		{0, false},
		{1, false},
		{2, true},
		{4, true},
		{4, false},
	} {
		t.Run(fmt.Sprintf("shards=%d,fids=%v", tc.shards, tc.shardFids), func(t *testing.T) {
			churnMachine(t, tc.shards, tc.shardFids)
		})
	}
}

// TestBalancerSkewProperty is the shared-listener balancer property over
// 12 scheduler seeds: with round-robin balancing the accepted-connection
// counts per member stay within a bounded skew, and after a DetachNet the
// detached member's connections are fully drained with clean tag windows.
func TestBalancerSkewProperty(t *testing.T) {
	const phis = 3
	const conns = 24
	for _, shards := range []int{0, 3} {
		for seed := int64(1); seed <= 12; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("shards=%d,seed=%d", shards, seed), func(t *testing.T) {
				served := make([]int, phis)
				m := core.NewMachine(core.Config{Phis: phis, ProxyShards: shards, SchedSeed: seed})
				m.EnableNetwork()
				m.MustRun(func(p *sim.Proc, m *core.Machine) {
					// Default Balance is RoundRobin.
					done := sim.NewWaitGroup("skew")
					for i, phi := range m.Phis {
						if err := phi.Net.Listen(p, scalePort); err != nil {
							t.Fatalf("listen: %v", err)
						}
						i, phi := i, phi
						done.Add(1)
						p.Spawn(fmt.Sprintf("srv-%d", i), func(sp *sim.Proc) {
							defer sp.DoneWG(done)
							for {
								sock, err := phi.Net.Accept(sp, scalePort)
								if err != nil {
									return
								}
								for {
									req, err := sock.RecvFull(sp, 1)
									if err != nil || len(req) != 1 {
										break
									}
									sock.Send(sp, []byte{byte(i)})
								}
							}
						})
					}
					done.Add(1)
					p.Spawn("client", func(cp *sim.Proc) {
						defer cp.DoneWG(done)
						cp.Advance(50 * sim.Microsecond)
						ask := func() int {
							conn, err := m.ClientStack.Dial(cp, m.HostStack, scalePort)
							if err != nil {
								t.Fatalf("dial: %v", err)
							}
							side := conn.Side(m.ClientStack)
							side.Send(cp, []byte{1})
							resp, err := side.RecvFull(cp, 1)
							if err != nil || len(resp) != 1 {
								t.Fatalf("echo: %v", err)
							}
							side.Close(cp)
							return int(resp[0])
						}
						for k := 0; k < conns; k++ {
							served[ask()]++
						}
						lo, hi := served[0], served[0]
						for _, s := range served[1:] {
							lo, hi = min(lo, s), max(hi, s)
						}
						if hi-lo > 2 {
							t.Errorf("seed %d: accept skew %v exceeds bound 2", seed, served)
						}
						m.TCPProxy.DetachNet(cp, m.Phis[0].Dev)
						for k := 0; k < 6; k++ {
							if got := ask(); got == 0 {
								t.Errorf("seed %d: conn landed on detached member 0", seed)
							}
						}
						m.TCPProxy.Stop(cp)
					})
					p.WaitWG(done)
					if m.TCPProxy.ActiveConns()[m.Phis[0].Dev.Name] != 0 {
						t.Errorf("seed %d: detached member not drained: %v", seed, m.TCPProxy.ActiveConns())
					}
					for i, phi := range m.Phis {
						if err := phi.Net.RPC().CheckTags(); err != nil {
							t.Errorf("seed %d: phi %d orphaned tags: %v", seed, i, err)
						}
					}
				})
			})
		}
	}
}

// TestDetachNetWithQueuedAccepts is the regression for the DetachNet vs.
// in-flight accept race: connections whose first payload is still being
// peeked (or which sit in a shard's accept queue) when their picked member
// detaches must land on a surviving member — not panic on an empty member
// list or be admitted to the dead channel.
func TestDetachNetWithQueuedAccepts(t *testing.T) {
	const dialers = 6
	for _, shards := range []int{0, 2} {
		for seed := int64(0); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("shards=%d,seed=%d", shards, seed), func(t *testing.T) {
				var okConns, failConns int
				m := core.NewMachine(core.Config{Phis: 2, ProxyShards: shards, SchedSeed: seed})
				m.EnableNetwork()
				m.MustRun(func(p *sim.Proc, m *core.Machine) {
					m.TCPProxy.Balance = &controlplane.ContentBalancer{
						// Every connection keys to member 0 while it is alive.
						Key: func([]byte) uint32 { return 0 },
					}
					srvDone := sim.NewWaitGroup("detach-race-srv")
					done := sim.NewWaitGroup("detach-race")
					for i, phi := range m.Phis {
						if err := phi.Net.Listen(p, scalePort); err != nil {
							t.Fatalf("listen: %v", err)
						}
						i, phi := i, phi
						srvDone.Add(1)
						p.Spawn(fmt.Sprintf("srv-%d", i), func(sp *sim.Proc) {
							defer sp.DoneWG(srvDone)
							for {
								sock, err := phi.Net.Accept(sp, scalePort)
								if err != nil {
									return
								}
								for {
									req, err := sock.RecvFull(sp, 1)
									if err != nil || len(req) != 1 {
										break
									}
									sock.Send(sp, []byte{byte(i)})
								}
							}
						})
					}
					for d := 0; d < dialers; d++ {
						d := d
						done.Add(1)
						p.Spawn(fmt.Sprintf("dial-%d", d), func(cp *sim.Proc) {
							defer cp.DoneWG(done)
							// Stagger the dials so the detach lands while some
							// connections are accepted-but-unpeeked and some sit
							// in accept queues.
							cp.Advance(sim.Time(d) * 8 * sim.Microsecond)
							conn, err := m.ClientStack.Dial(cp, m.HostStack, scalePort)
							if err != nil {
								failConns++
								return
							}
							side := conn.Side(m.ClientStack)
							side.Send(cp, []byte{0})
							resp, err := side.RecvFull(cp, 1)
							if err != nil || len(resp) != 1 {
								// Closed under us — only legal while member 0 was
								// being detached, never after rebalancing.
								failConns++
								side.Close(cp)
								return
							}
							okConns++
							side.Close(cp)
						})
					}
					done.Add(1)
					p.Spawn("detacher", func(dp *sim.Proc) {
						defer dp.DoneWG(done)
						dp.Advance(25 * sim.Microsecond)
						m.TCPProxy.DetachNet(dp, m.Phis[0].Dev)
					})
					p.WaitWG(done)

					// After the detach settles, new conns must reach member 1.
					var tail int
					conn, err := m.ClientStack.Dial(p, m.HostStack, scalePort)
					if err != nil {
						t.Fatalf("post-detach dial: %v", err)
					}
					side := conn.Side(m.ClientStack)
					side.Send(p, []byte{0})
					resp, err := side.RecvFull(p, 1)
					if err != nil || len(resp) != 1 {
						t.Fatalf("post-detach echo: %v", err)
					}
					tail = int(resp[0])
					side.Close(p)
					if tail != 1 {
						t.Errorf("post-detach conn on member %d, want survivor 1", tail)
					}
					m.TCPProxy.Stop(p)
					p.WaitWG(srvDone)
				})
				if okConns+failConns != dialers {
					t.Errorf("lost connections: ok=%d fail=%d of %d", okConns, failConns, dialers)
				}
				if okConns == 0 {
					t.Errorf("no connection survived the detach window (ok=%d fail=%d)", okConns, failConns)
				}
			})
		}
	}
}

// TestDetachLastMemberClosesQueued pins the empty-member edge: detaching
// the only member while dials are in flight must close the queued
// connections (clients see an error), not divide by zero in PickContent.
func TestDetachLastMemberClosesQueued(t *testing.T) {
	for _, shards := range []int{0, 1} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := core.NewMachine(core.Config{Phis: 1, ProxyShards: shards})
			m.EnableNetwork()
			m.MustRun(func(p *sim.Proc, m *core.Machine) {
				m.TCPProxy.Balance = &controlplane.ContentBalancer{Key: controlplane.FNV1a}
				srvDone := sim.NewWaitGroup("last-member-srv")
				done := sim.NewWaitGroup("last-member")
				phi := m.Phis[0]
				if err := phi.Net.Listen(p, scalePort); err != nil {
					t.Fatalf("listen: %v", err)
				}
				srvDone.Add(1)
				p.Spawn("srv", func(sp *sim.Proc) {
					defer sp.DoneWG(srvDone)
					for {
						sock, err := phi.Net.Accept(sp, scalePort)
						if err != nil {
							return
						}
						for {
							req, err := sock.RecvFull(sp, 1)
							if err != nil || len(req) != 1 {
								break
							}
							sock.Send(sp, []byte{0xEE})
						}
					}
				})
				for d := 0; d < 4; d++ {
					d := d
					done.Add(1)
					p.Spawn(fmt.Sprintf("dial-%d", d), func(cp *sim.Proc) {
						defer cp.DoneWG(done)
						cp.Advance(sim.Time(d) * 6 * sim.Microsecond)
						conn, err := m.ClientStack.Dial(cp, m.HostStack, scalePort)
						if err != nil {
							return
						}
						side := conn.Side(m.ClientStack)
						side.Send(cp, []byte{byte(d)})
						// Served or closed are both legal; hanging or a panic
						// in PickContent is the bug under test.
						side.RecvFull(cp, 1)
						side.Close(cp)
					})
				}
				done.Add(1)
				p.Spawn("detacher", func(dp *sim.Proc) {
					defer dp.DoneWG(done)
					dp.Advance(20 * sim.Microsecond)
					m.TCPProxy.DetachNet(dp, phi.Dev)
				})
				p.WaitWG(done)
				m.TCPProxy.Stop(p)
				p.WaitWG(srvDone)
			})
		})
	}
}
