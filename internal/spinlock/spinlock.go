// Package spinlock provides the two spinlock algorithms the paper uses as
// baselines for the transport service (Figure 8): the ticket lock and the
// MCS queue lock. Both are real concurrent implementations on Go atomics.
//
// Spin loops call runtime.Gosched so oversubscribed benchmarks (more
// goroutines than GOMAXPROCS) make progress, at the cost of scheduler
// round-trips — the same pathology that afflicts spinlocks on preemptive
// kernels.
package spinlock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Locker is satisfied by all locks in this package as well as sync.Mutex.
type Locker = sync.Locker

// Ticket is a fair FIFO spinlock: acquirers take a ticket and spin until
// the serving counter reaches it. All waiters spin on one shared cache
// line, so it degrades under high core counts.
type Ticket struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock acquires the lock, spinning until the caller's ticket is served.
func (t *Ticket) Lock() {
	my := t.next.Add(1) - 1
	for spins := 0; t.serving.Load() != my; spins++ {
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the lock, serving the next ticket.
func (t *Ticket) Unlock() {
	t.serving.Add(1)
}

// TryLock acquires the lock only if no one holds or waits for it.
func (t *Ticket) TryLock() bool {
	s := t.serving.Load()
	return t.next.CompareAndSwap(s, s+1)
}

// mcsNode is one waiter's queue entry; each waiter spins on its own node,
// avoiding the ticket lock's shared-cache-line contention.
type mcsNode struct {
	next   atomic.Pointer[mcsNode]
	locked atomic.Bool
}

// MCS is the Mellor-Crummey/Scott queue spinlock. Each Lock/Unlock pair
// uses a per-acquisition queue node handed back via a free pool.
type MCS struct {
	tail atomic.Pointer[mcsNode]
	pool sync.Pool
}

func (m *MCS) getNode() *mcsNode {
	if v := m.pool.Get(); v != nil {
		n := v.(*mcsNode)
		n.next.Store(nil)
		n.locked.Store(false)
		return n
	}
	return &mcsNode{}
}

// Lock enqueues the caller and spins on its private node until its
// predecessor hands over the lock. It returns an opaque token that must be
// passed to UnlockToken.
func (m *MCS) LockToken() any {
	n := m.getNode()
	prev := m.tail.Swap(n)
	if prev != nil {
		n.locked.Store(true)
		prev.next.Store(n)
		for spins := 0; n.locked.Load(); spins++ {
			if spins%64 == 63 {
				runtime.Gosched()
			}
		}
	}
	return n
}

// UnlockToken releases the lock acquired with the given token.
func (m *MCS) UnlockToken(token any) {
	n := token.(*mcsNode)
	next := n.next.Load()
	if next == nil {
		if m.tail.CompareAndSwap(n, nil) {
			m.pool.Put(n)
			return
		}
		for spins := 0; ; spins++ {
			if next = n.next.Load(); next != nil {
				break
			}
			if spins%64 == 63 {
				runtime.Gosched()
			}
		}
	}
	next.locked.Store(false)
	m.pool.Put(n)
}

// mcsAsLocker adapts MCS to sync.Locker for callers that cannot thread the
// token through; it stores the token in a one-deep slot guarded by the
// lock itself (valid because the lock is held between Lock and Unlock).
type mcsAsLocker struct {
	m     MCS
	token any
}

// NewMCSLocker returns an MCS lock behind the sync.Locker interface.
func NewMCSLocker() Locker { return &mcsAsLocker{} }

func (l *mcsAsLocker) Lock()   { t := l.m.LockToken(); l.token = t }
func (l *mcsAsLocker) Unlock() { t := l.token; l.token = nil; l.m.UnlockToken(t) }
