package spinlock

import (
	"sync"
	"testing"
)

func benchLock(b *testing.B, lock, unlock func()) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lock()
			unlock()
		}
	})
}

func BenchmarkTicketUncontended(b *testing.B) {
	var l Ticket
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkTicketContended(b *testing.B) {
	var l Ticket
	benchLock(b, l.Lock, l.Unlock)
}

func BenchmarkMCSContended(b *testing.B) {
	var m MCS
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tok := m.LockToken()
			m.UnlockToken(tok)
		}
	})
}

func BenchmarkStdMutexContended(b *testing.B) {
	var mu sync.Mutex
	benchLock(b, mu.Lock, mu.Unlock)
}
