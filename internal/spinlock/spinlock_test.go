package spinlock

import (
	"sync"
	"testing"
)

func hammer(t *testing.T, lock func(), unlock func()) {
	t.Helper()
	const goroutines = 8
	const iters = 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock()
				counter++
				unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates => broken mutual exclusion)", counter, goroutines*iters)
	}
}

func TestTicketMutualExclusion(t *testing.T) {
	var l Ticket
	hammer(t, l.Lock, l.Unlock)
}

func TestMCSMutualExclusion(t *testing.T) {
	var m MCS
	const goroutines = 8
	const iters = 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := m.LockToken()
				counter++
				m.UnlockToken(tok)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestMCSLockerAdapter(t *testing.T) {
	l := NewMCSLocker()
	hammer(t, l.Lock, l.Unlock)
}

func TestTicketTryLock(t *testing.T) {
	var l Ticket
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock()
}

func TestTicketFIFO(t *testing.T) {
	// Single-threaded sanity: tickets are served in order.
	var l Ticket
	for i := 0; i < 100; i++ {
		l.Lock()
		l.Unlock()
	}
	if got := l.next.Load(); got != 100 {
		t.Fatalf("next ticket = %d, want 100", got)
	}
	if got := l.serving.Load(); got != 100 {
		t.Fatalf("serving = %d, want 100", got)
	}
}
