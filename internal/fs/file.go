package fs

import (
	"fmt"

	"solros/internal/block"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// This file implements file data paths: buffered reads/writes through host
// staging memory, zero-copy transfers to arbitrary fabric memory (the
// building block of the proxy's peer-to-peer mode), extent allocation, and
// the fiemap query that lets the control plane translate file offsets to
// disk blocks (§5, "we get an inverse mapping ... using fiemap ioctl").

// Ino reports the file's inode number.
func (f *File) Ino() uint32 { return f.in.ino }

// Size reports the file's current size in bytes.
func (f *File) Size() int64 { return f.in.size }

// IsDir reports whether the file is a directory.
func (f *File) IsDir() bool { return f.in.mode == ModeDir }

// allocatedBlocks reports how many file blocks have disk backing.
func allocatedBlocks(in *inode) uint32 {
	if len(in.extents) == 0 {
		return 0
	}
	last := in.extents[len(in.extents)-1]
	return last.Logical + last.Count
}

// run is a contiguous file range mapped to a contiguous disk range.
type run struct {
	diskOff int64 // bytes
	fileOff int64 // bytes
	bytes   int64
}

// runsFor maps the byte range [off, off+n) to disk runs. The range must be
// fully allocated.
func runsFor(in *inode, off, n int64) ([]run, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("solrosfs: negative range off=%d n=%d", off, n)
	}
	if n == 0 {
		return nil, nil
	}
	end := off + n
	if uint32((end+BlockSize-1)/BlockSize) > allocatedBlocks(in) {
		return nil, fmt.Errorf("solrosfs: range [%d,%d) beyond allocation of inode %d", off, end, in.ino)
	}
	var out []run
	for _, e := range in.extents {
		eStart := int64(e.Logical) * BlockSize
		eEnd := eStart + int64(e.Count)*BlockSize
		lo, hi := off, end
		if lo < eStart {
			lo = eStart
		}
		if hi > eEnd {
			hi = eEnd
		}
		if lo >= hi {
			continue
		}
		out = append(out, run{
			diskOff: int64(e.Start)*BlockSize + (lo - eStart),
			fileOff: lo,
			bytes:   hi - lo,
		})
	}
	var covered int64
	for _, r := range out {
		covered += r.bytes
	}
	if covered != n {
		return nil, fmt.Errorf("solrosfs: extent map hole in inode %d: covered %d of %d", in.ino, covered, n)
	}
	return out, nil
}

// Fiemap returns the extents covering [off, off+n), the equivalent of the
// fiemap ioctl the Solros proxy uses for peer-to-peer translation.
func (f *File) Fiemap(off, n int64) ([]Extent, error) {
	runs, err := runsFor(f.in, off, n)
	if err != nil {
		return nil, err
	}
	out := make([]Extent, 0, len(runs))
	for _, r := range runs {
		out = append(out, Extent{
			Logical: uint32(r.fileOff / BlockSize),
			Start:   uint32(r.diskOff / BlockSize),
			Count:   uint32((r.bytes + BlockSize - 1) / BlockSize),
		})
	}
	return out, nil
}

// DiskOps translates [off, off+n) into block-device operations targeting
// the given memory location — host RAM for buffered mode, co-processor
// memory for peer-to-peer. The returned vector is what the Solros driver
// coalesces into one doorbell/interrupt pair.
func (f *File) DiskOps(write bool, off, n int64, target pcie.Loc) ([]block.Op, error) {
	runs, err := runsFor(f.in, off, n)
	if err != nil {
		return nil, err
	}
	ops := make([]block.Op, 0, len(runs))
	for _, r := range runs {
		ops = append(ops, block.Op{
			Write: write,
			Off:   r.diskOff,
			Bytes: r.bytes,
			Target: pcie.Loc{
				Dev: target.Dev,
				Off: target.Off + (r.fileOff - off),
			},
		})
	}
	return ops, nil
}

// ReadTo transfers [off, off+n) of the file directly into target memory
// (zero-copy with respect to the host CPU): the device's DMA engine writes
// straight to the target, which may be a co-processor's PCIe window.
func (f *File) ReadTo(p *sim.Proc, off, n int64, target pcie.Loc, coalesce bool) error {
	// Device I/O is block-granular, so the bound is the allocation, not
	// the byte size; Read enforces byte-level EOF semantics.
	if lim := int64(allocatedBlocks(f.in)) * BlockSize; off+n > lim {
		return fmt.Errorf("solrosfs: read [%d,%d) past allocation %d", off, off+n, lim)
	}
	ops, err := f.DiskOps(false, off, n, target)
	if err != nil {
		return err
	}
	return f.fs.disk.Vector(p, ops, coalesce)
}

// WriteFrom transfers n bytes from source memory into the file at off,
// allocating blocks and extending the size as needed.
func (f *File) WriteFrom(p *sim.Proc, off, n int64, source pcie.Loc, coalesce bool) error {
	if err := f.AllocRange(p, off, n); err != nil {
		return err
	}
	ops, err := f.DiskOps(true, off, n, source)
	if err != nil {
		return err
	}
	return f.fs.disk.Vector(p, ops, coalesce)
}

// Read copies file data into dst through host staging memory, returning
// the number of bytes read (short at EOF).
func (f *File) Read(p *sim.Proc, off int64, dst []byte) (int, error) {
	n := int64(len(dst))
	if off >= f.in.size {
		return 0, nil
	}
	if off+n > f.in.size {
		n = f.in.size - off
	}
	if n == 0 {
		return 0, nil
	}
	// Widen to block granularity on disk, then copy out the middle.
	aOff := off &^ (BlockSize - 1)
	aEnd := (off + n + BlockSize - 1) &^ (BlockSize - 1)
	if lim := (int64(allocatedBlocks(f.in))) * BlockSize; aEnd > lim {
		aEnd = lim
	}
	span := aEnd - aOff
	buf, put := f.fs.staging.get(span)
	defer put()
	if err := f.ReadTo(p, aOff, span, buf, true); err != nil {
		return 0, err
	}
	copy(dst[:n], f.fs.staging.bytes(buf, span)[off-aOff:])
	return int(n), nil
}

// Write copies src into the file at off through host staging memory.
func (f *File) Write(p *sim.Proc, off int64, src []byte) (int, error) {
	n := int64(len(src))
	if n == 0 {
		return 0, nil
	}
	if err := f.AllocRange(p, off, n); err != nil {
		return 0, err
	}
	// Read-modify-write the partial edge blocks when overwriting
	// existing data; fresh blocks are ours wholesale.
	aOff := off &^ (BlockSize - 1)
	aEnd := (off + n + BlockSize - 1) &^ (BlockSize - 1)
	span := aEnd - aOff
	buf, put := f.fs.staging.get(span)
	defer put()
	stg := f.fs.staging.bytes(buf, span)
	if aOff < off || off+n < aEnd {
		ops, err := f.DiskOps(false, aOff, span, buf)
		if err != nil {
			return 0, err
		}
		if err := f.fs.disk.Vector(p, ops, true); err != nil {
			return 0, err
		}
	}
	copy(stg[off-aOff:], src)
	ops, err := f.DiskOps(true, aOff, span, buf)
	if err != nil {
		return 0, err
	}
	if err := f.fs.disk.Vector(p, ops, true); err != nil {
		return 0, err
	}
	return int(n), nil
}

// AllocRange ensures disk blocks back [off, off+n) and extends the file
// size to cover it. This is the metadata half of a write, which the proxy
// performs before issuing a peer-to-peer p2p_write (§4.3.2).
func (f *File) AllocRange(p *sim.Proc, off, n int64) error {
	fs := f.fs
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	return fs.allocRangeLocked(f.in, off, n)
}

func (fs *FS) allocRangeLocked(in *inode, off, n int64) error {
	needEnd := uint32((off + n + BlockSize - 1) / BlockSize)
	for allocatedBlocks(in) < needEnd {
		have := allocatedBlocks(in)
		start, got, err := fs.allocRun(needEnd - have)
		if err != nil {
			return err
		}
		// Merge with the previous extent when physically contiguous.
		if len(in.extents) > 0 {
			last := &in.extents[len(in.extents)-1]
			if last.Start+last.Count == start {
				last.Count += got
				fs.markInodeDirty(in)
				continue
			}
		}
		if len(in.extents) == InlineExtents && in.indirect == 0 {
			idb, cnt, err := fs.allocRun(1)
			if err != nil || cnt != 1 {
				fs.freeRun(start, got)
				if err == nil {
					err = ErrNoSpace
				}
				return err
			}
			in.indirect = idb
		}
		if len(in.extents) >= InlineExtents+IndirectExtents {
			fs.freeRun(start, got)
			return ErrFileTooBig
		}
		in.extents = append(in.extents, Extent{Logical: have, Start: start, Count: got})
		fs.markInodeDirty(in)
	}
	if off+n > in.size {
		in.size = off + n
		fs.markInodeDirty(in)
	}
	return nil
}

// Truncate shrinks or grows the file to size (growth allocates zeroed-by-
// convention blocks; solrosfs does not support holes).
func (f *File) Truncate(p *sim.Proc, size int64) error {
	fs := f.fs
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	if size > f.in.size {
		return fs.allocRangeLocked(f.in, 0, size)
	}
	return fs.truncInode(f.in, size)
}

// truncInode shrinks the inode to size, freeing blocks beyond it.
func (fs *FS) truncInode(in *inode, size int64) error {
	keep := uint32((size + BlockSize - 1) / BlockSize)
	for len(in.extents) > 0 {
		last := &in.extents[len(in.extents)-1]
		if last.Logical >= keep {
			fs.freeRun(last.Start, last.Count)
			in.extents = in.extents[:len(in.extents)-1]
			continue
		}
		if last.Logical+last.Count > keep {
			drop := last.Logical + last.Count - keep
			fs.freeRun(last.Start+last.Count-drop, drop)
			last.Count -= drop
		}
		break
	}
	if len(in.extents) <= InlineExtents && in.indirect != 0 {
		fs.freeRun(in.indirect, 1)
		in.indirect = 0
	}
	in.size = size
	fs.markInodeDirty(in)
	return nil
}

// readInodeRange and writeInodeRange are the lock-free inode-level data
// paths used internally for directory content (callers already hold fs.mu).
func (fs *FS) readInodeRange(p *sim.Proc, in *inode, off int64, dst []byte) (int, error) {
	f := File{fs: fs, in: in}
	return f.Read(p, off, dst)
}

func (fs *FS) writeInodeRange(p *sim.Proc, in *inode, off int64, src []byte) (int, error) {
	n := int64(len(src))
	if n == 0 {
		return 0, nil
	}
	if err := fs.allocRangeLocked(in, off, n); err != nil {
		return 0, err
	}
	f := File{fs: fs, in: in}
	aOff := off &^ (BlockSize - 1)
	aEnd := (off + n + BlockSize - 1) &^ (BlockSize - 1)
	span := aEnd - aOff
	buf, put := fs.staging.get(span)
	defer put()
	stg := fs.staging.bytes(buf, span)
	copy(stg[off-aOff:], src)
	ops, err := f.DiskOps(true, aOff, span, buf)
	if err != nil {
		return 0, err
	}
	if err := fs.disk.Vector(p, ops, true); err != nil {
		return 0, err
	}
	return int(n), nil
}

// Staging returns a scratch host-RAM location of at least n bytes and its
// release function; services use it to stage buffered transfers.
func (fs *FS) Staging(n int64) (pcie.Loc, []byte, func()) {
	loc, put := fs.staging.get(n)
	return loc, fs.staging.bytes(loc, n), put
}
