package fs

import (
	"fmt"
	"testing"

	"solros/internal/block"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// benchFS mounts a fresh FS and runs fn once per b.N inside one Proc.
func benchFS(b *testing.B, diskMB int64, fn func(p *sim.Proc, fsys *FS)) {
	b.Helper()
	fab := pcie.New(512 << 20)
	disk := block.NewMemDisk(fab, diskMB<<20)
	if err := Mkfs(disk.Image(), 0); err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine()
	e.Spawn("bench", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			b.Error(err)
			return
		}
		b.ResetTimer()
		fn(p, fsys)
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCreateUnlinkFile(b *testing.B) {
	// Create+unlink pairs so arbitrary b.N cannot exhaust the inode
	// table.
	benchFS(b, 256, func(p *sim.Proc, fsys *FS) {
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("/f%d", i%512)
			if _, err := fsys.Create(p, name); err != nil {
				b.Fatal(err)
			}
			if err := fsys.Unlink(p, name); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWrite4K(b *testing.B) {
	benchFS(b, 256, func(p *sim.Proc, fsys *FS) {
		f, _ := fsys.Create(p, "/bench")
		buf := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			off := int64(i%4096) * 4096
			if _, err := f.Write(p, off, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.SetBytes(4096)
}

func BenchmarkRead4K(b *testing.B) {
	benchFS(b, 256, func(p *sim.Proc, fsys *FS) {
		f, _ := fsys.Create(p, "/bench")
		f.Truncate(p, 16<<20)
		buf := make([]byte, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := int64(i%4096) * 4096
			if _, err := f.Read(p, off, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.SetBytes(4096)
}

func BenchmarkPathLookupDeep(b *testing.B) {
	benchFS(b, 64, func(p *sim.Proc, fsys *FS) {
		fsys.Mkdir(p, "/a")
		fsys.Mkdir(p, "/a/b")
		fsys.Mkdir(p, "/a/b/c")
		fsys.Create(p, "/a/b/c/leaf")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fsys.Open(p, "/a/b/c/leaf"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFiemap(b *testing.B) {
	benchFS(b, 256, func(p *sim.Proc, fsys *FS) {
		f, _ := fsys.Create(p, "/bench")
		f.Truncate(p, 64<<20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Fiemap(int64(i%1024)*4096, 1<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCheck(b *testing.B) {
	fab := pcie.New(256 << 20)
	disk := block.NewMemDisk(fab, 64<<20)
	Mkfs(disk.Image(), 0)
	e := sim.NewEngine()
	e.Spawn("seed", 0, func(p *sim.Proc) {
		fsys, _ := Mount(p, fab, disk)
		for i := 0; i < 50; i++ {
			f, _ := fsys.Create(p, fmt.Sprintf("/f%d", i))
			f.Truncate(p, 256<<10)
		}
		fsys.Sync(p)
	})
	e.MustRun()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := Check(disk.Image()); !rep.OK() {
			b.Fatal(rep.Problems)
		}
	}
}
