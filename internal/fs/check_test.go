package fs

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"solros/internal/block"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// buildCheckImage formats a disk, grows a small tree — two multi-extent
// files, a subdirectory, and a hard link — syncs all metadata, and hands
// the raw image to the caller for corruption.
func buildCheckImage(t *testing.T) *pcie.Memory {
	t.Helper()
	fab := pcie.New(256 << 20)
	disk := block.NewMemDisk(fab, 16<<20)
	if err := Mkfs(disk.Image(), 0); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	e.Spawn("build", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		a, err := fsys.Create(p, "/a")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := a.Write(p, 0, bytes.Repeat([]byte{0xAB}, 3*BlockSize+100)); err != nil {
			t.Error(err)
			return
		}
		if err := fsys.Mkdir(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		b, err := fsys.Create(p, "/d/b")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := b.Write(p, 0, bytes.Repeat([]byte{0xCD}, 2*BlockSize)); err != nil {
			t.Error(err)
			return
		}
		if err := fsys.Link(p, "/a", "/d/alink"); err != nil {
			t.Error(err)
			return
		}
		if err := fsys.Sync(p); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return disk.Image()
}

// sbu32 reads a little-endian u32 superblock field at byte offset off.
func sbu32(img *pcie.Memory, off int64) uint32 {
	return binary.LittleEndian.Uint32(img.Slice(off, 4))
}

// inodeSlot returns inode i's 256-byte table slot.
func inodeSlot(img *pcie.Memory, i uint32) []byte {
	itable := int64(sbu32(img, 36)) * BlockSize
	return img.Slice(itable+int64(i)*InodeSize, InodeSize)
}

// findInode scans the table for an allocated inode of the given mode and
// size, skipping the root.
func findInode(t *testing.T, img *pcie.Memory, mode uint16, size int64) uint32 {
	t.Helper()
	nInodes := sbu32(img, 24)
	for i := uint32(RootIno + 1); i < nInodes; i++ {
		slot := inodeSlot(img, i)
		if binary.LittleEndian.Uint16(slot[0:]) == mode &&
			int64(binary.LittleEndian.Uint64(slot[8:])) == size {
			return i
		}
	}
	t.Fatalf("no inode with mode %d size %d", mode, size)
	return 0
}

// wantProblem asserts that Check flags the image with a problem containing
// substr.
func wantProblem(t *testing.T, img *pcie.Memory, substr string) {
	t.Helper()
	rep := Check(img)
	if rep.OK() {
		t.Fatalf("corrupt image passed fsck (wanted problem containing %q)", substr)
	}
	for _, pr := range rep.Problems {
		if strings.Contains(pr, substr) {
			return
		}
	}
	t.Fatalf("no problem contains %q; got %q", substr, rep.Problems)
}

func TestCheckCleanImagePasses(t *testing.T) {
	img := buildCheckImage(t)
	if rep := Check(img); !rep.OK() {
		t.Fatalf("fresh image fails fsck: %q", rep.Problems)
	} else if rep.Files != 2 || rep.Dirs != 2 {
		t.Fatalf("Files=%d Dirs=%d, want 2 and 2", rep.Files, rep.Dirs)
	}
}

func TestCheckTruncatedImage(t *testing.T) {
	wantProblem(t, pcie.NewMemory(512), "image smaller than one block")
}

func TestCheckCorruptSuperblockMagic(t *testing.T) {
	img := buildCheckImage(t)
	img.Slice(0, 1)[0] = 'X'
	wantProblem(t, img, "superblock:")
}

func TestCheckBadSuperblockVersion(t *testing.T) {
	img := buildCheckImage(t)
	binary.LittleEndian.PutUint32(img.Slice(8, 4), 0xDEAD)
	wantProblem(t, img, "version")
}

func TestCheckBlockCountExceedsImage(t *testing.T) {
	img := buildCheckImage(t)
	binary.LittleEndian.PutUint64(img.Slice(16, 8), 1<<40)
	wantProblem(t, img, "exceeds image")
}

func TestCheckExtentOutsideDataArea(t *testing.T) {
	img := buildCheckImage(t)
	ino := findInode(t, img, ModeFile, 3*BlockSize+100)
	// First extent's Start field sits 4 bytes into the extent record.
	binary.LittleEndian.PutUint32(inodeSlot(img, ino)[24+4:], 0)
	wantProblem(t, img, "outside data area")
}

func TestCheckDoubleAllocatedBlock(t *testing.T) {
	img := buildCheckImage(t)
	a := findInode(t, img, ModeFile, 3*BlockSize+100)
	b := findInode(t, img, ModeFile, 2*BlockSize)
	// Point b's first extent at a's first block.
	aStart := binary.LittleEndian.Uint32(inodeSlot(img, a)[24+4:])
	binary.LittleEndian.PutUint32(inodeSlot(img, b)[24+4:], aStart)
	wantProblem(t, img, "claimed by inodes")
}

func TestCheckUsedBlockFreeInBitmap(t *testing.T) {
	img := buildCheckImage(t)
	ino := findInode(t, img, ModeFile, 2*BlockSize)
	start := binary.LittleEndian.Uint32(inodeSlot(img, ino)[24+4:])
	bitmap := img.Slice(int64(sbu32(img, 28))*BlockSize, int64(sbu32(img, 32))*BlockSize)
	bitmap[start/8] &^= 1 << (start % 8)
	wantProblem(t, img, "in use but free in bitmap")
}

func TestCheckLeakedBlock(t *testing.T) {
	img := buildCheckImage(t)
	// Mark the image's last data block used without any owner.
	nblocks := binary.LittleEndian.Uint64(img.Slice(16, 8))
	leak := uint32(nblocks - 1)
	bitmap := img.Slice(int64(sbu32(img, 28))*BlockSize, int64(sbu32(img, 32))*BlockSize)
	bitmap[leak/8] |= 1 << (leak % 8)
	wantProblem(t, img, "marked used but unowned (leak)")
}

func TestCheckCorruptDirectoryContent(t *testing.T) {
	img := buildCheckImage(t)
	// Scribble over the root directory's content: a dirent whose name
	// length runs past the buffer.
	root := inodeSlot(img, RootIno)
	start := binary.LittleEndian.Uint32(root[24+4:])
	size := binary.LittleEndian.Uint64(root[8:])
	data := img.Slice(int64(start)*BlockSize, int64(size))
	for i := range data {
		data[i] = 0xFF
	}
	wantProblem(t, img, "corrupt directory content")
}

func TestCheckNlinkMismatch(t *testing.T) {
	img := buildCheckImage(t)
	// /a has two links (/a and /d/alink); claim it has one.
	ino := findInode(t, img, ModeFile, 3*BlockSize+100)
	binary.LittleEndian.PutUint16(inodeSlot(img, ino)[2:], 1)
	wantProblem(t, img, "nlink=1")
}

func TestCheckUnreachableInode(t *testing.T) {
	img := buildCheckImage(t)
	// Fabricate an allocated zero-length file no directory references.
	nInodes := sbu32(img, 24)
	for i := uint32(RootIno + 1); i < nInodes; i++ {
		slot := inodeSlot(img, i)
		if binary.LittleEndian.Uint16(slot[0:]) == ModeFree {
			binary.LittleEndian.PutUint16(slot[0:], ModeFile)
			binary.LittleEndian.PutUint16(slot[2:], 1)
			wantProblem(t, img, "allocated but unreachable from root")
			return
		}
	}
	t.Fatal("no free inode slot to corrupt")
}
