package fs

import (
	"fmt"

	"solros/internal/pcie"
)

// CheckReport summarizes an offline consistency check of a solrosfs image.
type CheckReport struct {
	Files, Dirs int
	UsedBlocks  int64
	Problems    []string
}

// OK reports whether the image passed every invariant.
func (r *CheckReport) OK() bool { return len(r.Problems) == 0 }

func (r *CheckReport) addf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Check runs an offline fsck over a raw image: superblock sanity, extent
// bounds, double allocation, bitmap consistency with reachable inodes, and
// directory-tree reachability. It never modifies the image.
func Check(img *pcie.Memory) *CheckReport {
	r := &CheckReport{}
	var sb superblock
	if img.Size() < BlockSize {
		r.addf("image smaller than one block")
		return r
	}
	if err := sb.decode(img.Slice(0, BlockSize)); err != nil {
		r.addf("superblock: %v", err)
		return r
	}
	nblocks := sb.NBlocks
	if int64(nblocks)*BlockSize > img.Size() {
		r.addf("superblock block count %d exceeds image", nblocks)
		return r
	}
	bitmap := img.Slice(int64(sb.BitmapStart)*BlockSize, int64(sb.BitmapBlocks)*BlockSize)
	used := func(b uint32) bool { return bitmap[b/8]&(1<<(b%8)) != 0 }

	// Load all inodes.
	inodes := make([]inode, sb.NInodes)
	for i := range inodes {
		in := &inodes[i]
		in.ino = uint32(i)
		slot := img.Slice(int64(sb.ITableStart)*BlockSize+int64(i)*InodeSize, InodeSize)
		spilled := in.decodeFrom(slot)
		if spilled > 0 {
			if in.indirect == 0 || uint64(in.indirect) >= nblocks {
				r.addf("inode %d: %d spilled extents but bad indirect block %d", i, spilled, in.indirect)
				continue
			}
			in.decodeIndirect(img.Slice(int64(in.indirect)*BlockSize, BlockSize), spilled)
		}
	}

	// Walk extents: bounds, overlap, bitmap agreement.
	owner := make(map[uint32]uint32) // block -> ino
	claim := func(ino, b uint32) {
		if b < sb.DataStart || uint64(b) >= nblocks {
			r.addf("inode %d: block %d outside data area", ino, b)
			return
		}
		if prev, dup := owner[b]; dup {
			r.addf("block %d claimed by inodes %d and %d", b, prev, ino)
			return
		}
		owner[b] = ino
		if !used(b) {
			r.addf("inode %d: block %d in use but free in bitmap", ino, b)
		}
		r.UsedBlocks++
	}
	for i := range inodes {
		in := &inodes[i]
		switch in.mode {
		case ModeFree:
			continue
		case ModeFile:
			r.Files++
		case ModeDir:
			r.Dirs++
		default:
			r.addf("inode %d: unknown mode %d", i, in.mode)
			continue
		}
		var logical uint32
		for _, e := range in.extents {
			if e.Logical != logical {
				r.addf("inode %d: extent hole at logical %d (expected %d)", i, e.Logical, logical)
			}
			logical = e.Logical + e.Count
			for b := e.Start; b < e.Start+e.Count; b++ {
				claim(uint32(i), b)
			}
		}
		if in.indirect != 0 {
			claim(uint32(i), in.indirect)
		}
		if maxSize := int64(logical) * BlockSize; in.size > maxSize {
			r.addf("inode %d: size %d exceeds allocation %d", i, in.size, maxSize)
		}
	}

	// Bitmap leak check: every used data block must have an owner.
	for b := uint64(sb.DataStart); b < nblocks; b++ {
		if used(uint32(b)) {
			if _, ok := owner[uint32(b)]; !ok {
				r.addf("block %d marked used but unowned (leak)", b)
			}
		}
	}

	// Reachability from the root.
	if sb.NInodes <= RootIno || inodes[RootIno].mode != ModeDir {
		r.addf("root inode missing or not a directory")
		return r
	}
	seen := make(map[uint32]int)
	var walk func(ino uint32)
	walk = func(ino uint32) {
		seen[ino]++
		in := &inodes[ino]
		if in.mode == ModeDir && seen[ino] > 1 {
			r.addf("directory inode %d reached twice (cycle or duplicate link)", ino)
			return
		}
		if in.mode != ModeDir {
			// Regular files may be reached once per hard link.
			if seen[ino] > int(in.nlink) {
				r.addf("inode %d reached %d times but nlink=%d", ino, seen[ino], in.nlink)
			}
			return
		}
		content := readInodeImage(img, in)
		ents, err := parseDirents(content)
		if err != nil {
			r.addf("inode %d: corrupt directory content", ino)
			return
		}
		for _, d := range ents {
			if d.Ino == 0 || uint64(d.Ino) >= uint64(sb.NInodes) {
				r.addf("dir inode %d: entry %q has bad inode %d", ino, d.Name, d.Ino)
				continue
			}
			if inodes[d.Ino].mode == ModeFree {
				r.addf("dir inode %d: entry %q points to free inode %d", ino, d.Name, d.Ino)
				continue
			}
			walk(d.Ino)
		}
	}
	walk(RootIno)
	for i := range inodes {
		in := &inodes[i]
		if in.mode == ModeFree {
			continue
		}
		if seen[uint32(i)] == 0 {
			r.addf("inode %d allocated but unreachable from root", i)
			continue
		}
		if in.mode == ModeFile && seen[uint32(i)] != int(in.nlink) {
			r.addf("inode %d: nlink=%d but %d directory entries reference it", i, in.nlink, seen[uint32(i)])
		}
	}
	return r
}

// readInodeImage reads an inode's full content straight from the image
// (offline, no timing).
func readInodeImage(img *pcie.Memory, in *inode) []byte {
	out := make([]byte, in.size)
	for _, e := range in.extents {
		lo := int64(e.Logical) * BlockSize
		if lo >= in.size {
			break
		}
		n := int64(e.Count) * BlockSize
		if lo+n > in.size {
			n = in.size - lo
		}
		copy(out[lo:lo+n], img.Slice(int64(e.Start)*BlockSize, n))
	}
	return out
}
