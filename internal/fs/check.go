package fs

import (
	"fmt"

	"solros/internal/pcie"
)

// ProblemKind classifies fsck findings for the crash-point oracle.
//
// The write-back metadata design (dirty bitmap/itable flushed at Sync)
// means a disk snapshot taken between Syncs is legitimately inconsistent:
// bitmap bits, nlink counts, and reachability can disagree with the inode
// table until the next flush. Those findings are Repairable — classic
// fsck-fixable state. Structural damage, by contrast, never has a legal
// transient window: inode table slots are written block-atomically from
// always-well-formed in-memory inodes, so a snapshot at any scheduling
// point must still decode into bounded, hole-free extent lists with sane
// sizes. Such findings are Corrupt and the crash-point oracle flags them
// at any time, not just at quiesce.
type ProblemKind int

const (
	// Corrupt marks structural damage no crash point can legally produce:
	// bad superblock or geometry, out-of-range or overflowing extents,
	// extent holes, size beyond allocation, unknown inode modes, bad
	// indirect blocks.
	Corrupt ProblemKind = iota
	// Repairable marks inconsistencies with legitimate transient windows
	// between Syncs: bitmap disagreements, leaks, double claims,
	// unreachable inodes, nlink mismatches, corrupt or dangling directory
	// content.
	Repairable
)

func (k ProblemKind) String() string {
	if k == Corrupt {
		return "corrupt"
	}
	return "repairable"
}

// CheckReport summarizes an offline consistency check of a solrosfs image.
type CheckReport struct {
	Files, Dirs int
	UsedBlocks  int64
	Problems    []string
	// Kinds classifies Problems entry-wise: Kinds[i] is Problems[i]'s class.
	Kinds []ProblemKind
}

// OK reports whether the image passed every invariant.
func (r *CheckReport) OK() bool { return len(r.Problems) == 0 }

// StructurallySound reports whether the image is free of Corrupt-class
// problems; Repairable findings (legal between Syncs) are tolerated. This
// is the predicate the crash-point oracle applies to mid-write snapshots.
func (r *CheckReport) StructurallySound() bool {
	for _, k := range r.Kinds {
		if k == Corrupt {
			return false
		}
	}
	return true
}

func (r *CheckReport) addf(kind ProblemKind, format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	r.Kinds = append(r.Kinds, kind)
}

// Check runs an offline fsck over a raw image: superblock sanity, extent
// bounds, double allocation, bitmap consistency with reachable inodes, and
// directory-tree reachability. It never modifies the image.
func Check(img *pcie.Memory) *CheckReport {
	return CheckBytes(img.Slice(0, img.Size()))
}

// CheckBytes is Check over a plain byte slice (a device snapshot, a fuzz
// input). It must never panic, no matter how mangled the image: every
// on-disk count and offset is validated before use, and violations become
// report problems instead of slice faults.
func CheckBytes(img []byte) *CheckReport {
	r := &CheckReport{}
	var sb superblock
	if int64(len(img)) < BlockSize {
		r.addf(Corrupt, "image smaller than one block")
		return r
	}
	if err := sb.decode(img[:BlockSize]); err != nil {
		r.addf(Corrupt, "superblock: %v", err)
		return r
	}
	nblocks := sb.NBlocks
	if nblocks > uint64(len(img))/BlockSize {
		r.addf(Corrupt, "superblock block count %d exceeds image", nblocks)
		return r
	}
	// Geometry: every region must lie inside the image and in order, and
	// the bitmap must have a bit for every block. All math in uint64 on
	// values bounded by nblocks <= len(img)/BlockSize, so nothing can
	// overflow.
	if uint64(sb.BitmapStart)+uint64(sb.BitmapBlocks) > nblocks ||
		uint64(sb.ITableStart)+uint64(sb.ITableBlocks) > nblocks ||
		uint64(sb.DataStart) > nblocks {
		r.addf(Corrupt, "superblock geometry outside device: bitmap %d+%d itable %d+%d data %d nblocks %d",
			sb.BitmapStart, sb.BitmapBlocks, sb.ITableStart, sb.ITableBlocks, sb.DataStart, nblocks)
		return r
	}
	if uint64(sb.BitmapBlocks)*BlockSize*8 < nblocks {
		r.addf(Corrupt, "bitmap %d blocks too small for %d blocks", sb.BitmapBlocks, nblocks)
		return r
	}
	if uint64(sb.NInodes) > uint64(sb.ITableBlocks)*InodesPerBlock {
		r.addf(Corrupt, "inode table %d blocks too small for %d inodes", sb.ITableBlocks, sb.NInodes)
		return r
	}
	bitmap := img[int64(sb.BitmapStart)*BlockSize : (int64(sb.BitmapStart)+int64(sb.BitmapBlocks))*BlockSize]
	used := func(b uint32) bool { return bitmap[b/8]&(1<<(b%8)) != 0 }

	// Load all inodes. Extent counts and indirect pointers come off disk,
	// so both are range-checked before any slice arithmetic.
	maxExtents := InlineExtents + IndirectExtents
	inodes := make([]inode, sb.NInodes)
	broken := make([]bool, sb.NInodes) // structurally unusable; skip in later passes
	for i := range inodes {
		in := &inodes[i]
		in.ino = uint32(i)
		off := int64(sb.ITableStart)*BlockSize + int64(i)*InodeSize
		spilled := in.decodeFrom(img[off : off+InodeSize])
		if spilled > 0 {
			if len(in.extents)+spilled > maxExtents {
				r.addf(Corrupt, "inode %d: extent count %d exceeds maximum %d", i, len(in.extents)+spilled, maxExtents)
				broken[i] = true
				continue
			}
			if in.indirect == 0 || uint64(in.indirect) >= nblocks {
				r.addf(Corrupt, "inode %d: %d spilled extents but bad indirect block %d", i, spilled, in.indirect)
				broken[i] = true
				continue
			}
			in.decodeIndirect(img[int64(in.indirect)*BlockSize:(int64(in.indirect)+1)*BlockSize], spilled)
		}
	}

	// Walk extents: bounds, overlap, bitmap agreement.
	owner := make(map[uint32]uint32) // block -> ino
	claim := func(ino uint32, b uint64) {
		if b < uint64(sb.DataStart) || b >= nblocks {
			r.addf(Corrupt, "inode %d: block %d outside data area", ino, b)
			return
		}
		if prev, dup := owner[uint32(b)]; dup {
			r.addf(Repairable, "block %d claimed by inodes %d and %d", b, prev, ino)
			return
		}
		owner[uint32(b)] = ino
		if !used(uint32(b)) {
			r.addf(Repairable, "inode %d: block %d in use but free in bitmap", ino, b)
		}
		r.UsedBlocks++
	}
	for i := range inodes {
		in := &inodes[i]
		if broken[i] {
			continue
		}
		switch in.mode {
		case ModeFree:
			continue
		case ModeFile:
			r.Files++
		case ModeDir:
			r.Dirs++
		default:
			r.addf(Corrupt, "inode %d: unknown mode %d", i, in.mode)
			broken[i] = true
			continue
		}
		var logical uint64
		for _, e := range in.extents {
			if uint64(e.Logical) != logical {
				r.addf(Corrupt, "inode %d: extent hole at logical %d (expected %d)", i, e.Logical, logical)
				broken[i] = true
			}
			if e.Count == 0 || uint64(e.Count) > nblocks {
				r.addf(Corrupt, "inode %d: extent at logical %d has bad count %d", i, e.Logical, e.Count)
				broken[i] = true
				break
			}
			logical = uint64(e.Logical) + uint64(e.Count)
			for b := uint64(e.Start); b < uint64(e.Start)+uint64(e.Count); b++ {
				claim(uint32(i), b)
			}
		}
		if in.indirect != 0 {
			claim(uint32(i), uint64(in.indirect))
		}
		if in.size < 0 {
			r.addf(Corrupt, "inode %d: negative size %d", i, in.size)
			broken[i] = true
			continue
		}
		if maxSize := int64(logical) * BlockSize; in.size > maxSize {
			r.addf(Corrupt, "inode %d: size %d exceeds allocation %d", i, in.size, maxSize)
			broken[i] = true
		}
	}

	// Bitmap leak check: every used data block must have an owner.
	for b := uint64(sb.DataStart); b < nblocks; b++ {
		if used(uint32(b)) {
			if _, ok := owner[uint32(b)]; !ok {
				r.addf(Repairable, "block %d marked used but unowned (leak)", b)
			}
		}
	}

	// Reachability from the root.
	if sb.NInodes <= RootIno || broken[RootIno] || inodes[RootIno].mode != ModeDir {
		r.addf(Corrupt, "root inode missing or not a directory")
		return r
	}
	seen := make(map[uint32]int)
	var walk func(ino uint32)
	walk = func(ino uint32) {
		seen[ino]++
		in := &inodes[ino]
		if in.mode == ModeDir && seen[ino] > 1 {
			r.addf(Repairable, "directory inode %d reached twice (cycle or duplicate link)", ino)
			return
		}
		if in.mode != ModeDir {
			// Regular files may be reached once per hard link.
			if seen[ino] > int(in.nlink) {
				r.addf(Repairable, "inode %d reached %d times but nlink=%d", ino, seen[ino], in.nlink)
			}
			return
		}
		content, ok := readInodeBytes(img, in)
		if !ok {
			// Extent problems were already reported per-extent above.
			return
		}
		ents, err := parseDirents(content)
		if err != nil {
			r.addf(Repairable, "inode %d: corrupt directory content", ino)
			return
		}
		for _, d := range ents {
			if d.Ino == 0 || uint64(d.Ino) >= uint64(sb.NInodes) {
				r.addf(Repairable, "dir inode %d: entry %q has bad inode %d", ino, d.Name, d.Ino)
				continue
			}
			if broken[d.Ino] {
				continue
			}
			if inodes[d.Ino].mode == ModeFree {
				r.addf(Repairable, "dir inode %d: entry %q points to free inode %d", ino, d.Name, d.Ino)
				continue
			}
			walk(d.Ino)
		}
	}
	walk(RootIno)
	for i := range inodes {
		in := &inodes[i]
		if broken[i] || in.mode == ModeFree {
			continue
		}
		if seen[uint32(i)] == 0 {
			r.addf(Repairable, "inode %d allocated but unreachable from root", i)
			continue
		}
		if in.mode == ModeFile && seen[uint32(i)] != int(in.nlink) {
			r.addf(Repairable, "inode %d: nlink=%d but %d directory entries reference it", i, in.nlink, seen[uint32(i)])
		}
	}
	return r
}

// readInodeBytes reads an inode's full content straight from the image
// (offline, no timing). ok is false when any needed extent falls outside
// the image, so callers on untrusted images cannot fault.
func readInodeBytes(img []byte, in *inode) ([]byte, bool) {
	if in.size < 0 || in.size > int64(len(img)) {
		return nil, false
	}
	out := make([]byte, in.size)
	for _, e := range in.extents {
		lo := int64(e.Logical) * BlockSize
		if lo >= in.size {
			break
		}
		n := int64(e.Count) * BlockSize
		if lo+n > in.size {
			n = in.size - lo
		}
		src := int64(e.Start) * BlockSize
		if src < 0 || n < 0 || src+n > int64(len(img)) {
			return nil, false
		}
		copy(out[lo:lo+n], img[src:src+n])
	}
	return out, true
}
