package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"solros/internal/block"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// newFS mounts a fresh solrosfs on an instant in-memory disk and runs fn
// inside a sim Proc.
func withFS(t *testing.T, diskMB int64, fn func(p *sim.Proc, fsys *FS, disk block.Device)) {
	t.Helper()
	fab := pcie.New(256 << 20)
	disk := block.NewMemDisk(fab, diskMB<<20)
	if err := Mkfs(disk.Image(), 0); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	e.Spawn("test", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		fn(p, fsys, disk)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMkfsAndMount(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		ents, err := fsys.ReadDir(p, "/")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("fresh root has %d entries", len(ents))
		}
	})
}

func TestMkfsTooSmall(t *testing.T) {
	img := pcie.NewMemory(8 * BlockSize)
	if err := Mkfs(img, 0); err == nil {
		t.Fatal("Mkfs on 8-block device should fail")
	}
}

func TestMountUnformatted(t *testing.T) {
	fab := pcie.New(64 << 20)
	disk := block.NewMemDisk(fab, 16<<20)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		if _, err := Mount(p, fab, disk); err == nil {
			t.Error("mount of unformatted disk succeeded")
		}
	})
	e.MustRun()
}

func TestCreateWriteReadBack(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		f, err := fsys.Create(p, "/hello.txt")
		if err != nil {
			t.Fatal(err)
		}
		data := []byte("the quick brown fox")
		if _, err := f.Write(p, 0, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		n, err := f.Read(p, 0, got)
		if err != nil || n != len(data) {
			t.Fatalf("read n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("got %q", got)
		}
		if f.Size() != int64(len(data)) {
			t.Fatalf("size = %d", f.Size())
		}
	})
}

func TestUnalignedOverwrite(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		f, _ := fsys.Create(p, "/f")
		base := bytes.Repeat([]byte{'a'}, 3*BlockSize)
		f.Write(p, 0, base)
		// Overwrite a range spanning a block boundary at odd offsets.
		patch := bytes.Repeat([]byte{'B'}, 1000)
		if _, err := f.Write(p, BlockSize-500, patch); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 3*BlockSize)
		f.Read(p, 0, got)
		want := append([]byte{}, base...)
		copy(want[BlockSize-500:], patch)
		if !bytes.Equal(got, want) {
			t.Fatal("unaligned overwrite corrupted surrounding data")
		}
		if f.Size() != int64(3*BlockSize) {
			t.Fatalf("overwrite changed size to %d", f.Size())
		}
	})
}

func TestReadPastEOF(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		f, _ := fsys.Create(p, "/f")
		f.Write(p, 0, []byte("abc"))
		buf := make([]byte, 10)
		n, err := f.Read(p, 0, buf)
		if err != nil || n != 3 {
			t.Fatalf("short read n=%d err=%v", n, err)
		}
		n, err = f.Read(p, 100, buf)
		if err != nil || n != 0 {
			t.Fatalf("read past EOF n=%d err=%v", n, err)
		}
	})
}

func TestCreateExisting(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		fsys.Create(p, "/f")
		if _, err := fsys.Create(p, "/f"); err != ErrExist {
			t.Fatalf("err = %v, want ErrExist", err)
		}
	})
}

func TestOpenMissing(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		if _, err := fsys.Open(p, "/nope"); err != ErrNotExist {
			t.Fatalf("err = %v, want ErrNotExist", err)
		}
	})
}

func TestDirectoriesNested(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		if err := fsys.Mkdir(p, "/a"); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Mkdir(p, "/a/b"); err != nil {
			t.Fatal(err)
		}
		f, err := fsys.Create(p, "/a/b/c.txt")
		if err != nil {
			t.Fatal(err)
		}
		f.Write(p, 0, []byte("deep"))
		st, err := fsys.Stat(p, "/a/b/c.txt")
		if err != nil || st.Size != 4 || st.Mode != ModeFile {
			t.Fatalf("stat = %+v err=%v", st, err)
		}
		ents, _ := fsys.ReadDir(p, "/a")
		if len(ents) != 1 || ents[0].Name != "b" || ents[0].Type != ModeDir {
			t.Fatalf("readdir /a = %+v", ents)
		}
		if _, err := fsys.Create(p, "/a/b/c.txt/d"); err != ErrNotDir {
			t.Fatalf("create under file: err = %v, want ErrNotDir", err)
		}
	})
}

func TestUnlinkFreesSpace(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		f, _ := fsys.Create(p, "/big")
		f.Write(p, 0, make([]byte, 1<<20))
		usedBefore := countUsed(fsys)
		if err := fsys.Unlink(p, "/big"); err != nil {
			t.Fatal(err)
		}
		if _, err := fsys.Open(p, "/big"); err != ErrNotExist {
			t.Fatal("file still visible after unlink")
		}
		if got := countUsed(fsys); got >= usedBefore {
			t.Fatalf("blocks not freed: before=%d after=%d", usedBefore, got)
		}
	})
}

func TestUnlinkNonEmptyDir(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		fsys.Mkdir(p, "/d")
		fsys.Create(p, "/d/x")
		if err := fsys.Unlink(p, "/d"); err != ErrNotEmpty {
			t.Fatalf("err = %v, want ErrNotEmpty", err)
		}
		fsys.Unlink(p, "/d/x")
		if err := fsys.Unlink(p, "/d"); err != nil {
			t.Fatalf("unlink empty dir: %v", err)
		}
	})
}

func TestTruncateShrinkAndGrow(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		f, _ := fsys.Create(p, "/f")
		f.Write(p, 0, make([]byte, 10*BlockSize))
		used := countUsed(fsys)
		if err := f.Truncate(p, 2*BlockSize); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 2*BlockSize {
			t.Fatalf("size after shrink = %d", f.Size())
		}
		if got := countUsed(fsys); got >= used {
			t.Fatal("shrink did not free blocks")
		}
		if err := f.Truncate(p, 5*BlockSize); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 5*BlockSize {
			t.Fatalf("size after grow = %d", f.Size())
		}
	})
}

func TestPersistenceAcrossRemount(t *testing.T) {
	fab := pcie.New(256 << 20)
	disk := block.NewMemDisk(fab, 32<<20)
	if err := Mkfs(disk.Image(), 0); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("persist"), 4096)
	e := sim.NewEngine()
	e.Spawn("writer", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		fsys.Mkdir(p, "/dir")
		f, _ := fsys.Create(p, "/dir/file")
		f.Write(p, 0, data)
		if err := fsys.Sync(p); err != nil {
			t.Error(err)
		}
	})
	e.MustRun()
	// Fresh mount from the same image.
	e = sim.NewEngine()
	e.Spawn("reader", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		f, err := fsys.Open(p, "/dir/file")
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(data))
		n, err := f.Read(p, 0, got)
		if err != nil || n != len(data) || !bytes.Equal(got, data) {
			t.Errorf("remount read n=%d err=%v equal=%v", n, err, bytes.Equal(got, data))
		}
	})
	e.MustRun()
	if rep := Check(disk.Image()); !rep.OK() {
		t.Fatalf("fsck after remount: %v", rep.Problems)
	}
}

func TestLargeFileSpillsToIndirect(t *testing.T) {
	withFS(t, 64, func(p *sim.Proc, fsys *FS, disk block.Device) {
		// Force fragmentation: interleave two files so extents cannot
		// merge, pushing one past InlineExtents.
		a, _ := fsys.Create(p, "/a")
		b, _ := fsys.Create(p, "/b")
		chunk := make([]byte, BlockSize)
		for i := 0; i < InlineExtents+8; i++ {
			if _, err := a.Write(p, int64(i)*BlockSize, chunk); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Write(p, int64(i)*BlockSize, chunk); err != nil {
				t.Fatal(err)
			}
		}
		if len(a.in.extents) <= InlineExtents {
			t.Skipf("allocator kept file contiguous (%d extents); cannot exercise spill", len(a.in.extents))
		}
		if err := fsys.Sync(p); err != nil {
			t.Fatal(err)
		}
		if rep := Check(disk.Image()); !rep.OK() {
			t.Fatalf("fsck: %v", rep.Problems)
		}
	})
}

func TestFiemapMatchesData(t *testing.T) {
	withFS(t, 32, func(p *sim.Proc, fsys *FS, disk block.Device) {
		f, _ := fsys.Create(p, "/f")
		data := make([]byte, 6*BlockSize)
		rnd := rand.New(rand.NewSource(7))
		rnd.Read(data)
		f.Write(p, 0, data)
		exts, err := f.Fiemap(0, int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		// Reassemble the file straight from the image via the extents.
		got := make([]byte, len(data))
		for _, e := range exts {
			n := int64(e.Count) * BlockSize
			lo := int64(e.Logical) * BlockSize
			if lo+n > int64(len(data)) {
				n = int64(len(data)) - lo
			}
			copy(got[lo:lo+n], disk.Image().Slice(int64(e.Start)*BlockSize, n))
		}
		if !bytes.Equal(got, data) {
			t.Fatal("fiemap extents do not reproduce file content")
		}
	})
}

func TestZeroCopyReadToDeviceMemory(t *testing.T) {
	fab := pcie.New(256 << 20)
	phi := fab.AddPhi("phi0", 0, 64<<20)
	disk := block.NewMemDisk(fab, 32<<20)
	Mkfs(disk.Image(), 0)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		f, _ := fsys.Create(p, "/data")
		want := bytes.Repeat([]byte{0x5A}, 2*BlockSize)
		f.Write(p, 0, want)
		if err := f.ReadTo(p, 0, int64(len(want)), pcie.Loc{Dev: phi, Off: 8192}, true); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(phi.Mem.Slice(8192, int64(len(want))), want) {
			t.Error("zero-copy read did not land in device memory")
		}
	})
	e.MustRun()
}

func TestNoSpace(t *testing.T) {
	withFS(t, 1, func(p *sim.Proc, fsys *FS, _ block.Device) {
		f, _ := fsys.Create(p, "/f")
		_, err := f.Write(p, 0, make([]byte, 2<<20))
		if err != ErrNoSpace {
			t.Fatalf("err = %v, want ErrNoSpace", err)
		}
	})
}

func TestPathValidation(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		if _, err := fsys.Open(p, "relative"); err == nil {
			t.Error("relative path accepted")
		}
		if _, err := fsys.Open(p, "/a/../b"); err == nil {
			t.Error(".. accepted")
		}
		long := "/"
		for i := 0; i < 300; i++ {
			long += "x"
		}
		if _, err := fsys.Create(p, long); err != ErrNameTooLon {
			t.Errorf("long name err = %v", err)
		}
	})
}

func TestManyFilesFsckClean(t *testing.T) {
	fab := pcie.New(512 << 20)
	disk := block.NewMemDisk(fab, 64<<20)
	Mkfs(disk.Image(), 0)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		rnd := rand.New(rand.NewSource(42))
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("/file%02d", i)
			f, err := fsys.Create(p, name)
			if err != nil {
				t.Error(err)
				return
			}
			f.Write(p, 0, make([]byte, rnd.Intn(200*1024)))
		}
		// Delete every third file.
		for i := 0; i < 40; i += 3 {
			fsys.Unlink(p, fmt.Sprintf("/file%02d", i))
		}
		fsys.Sync(p)
	})
	e.MustRun()
	if rep := Check(disk.Image()); !rep.OK() {
		t.Fatalf("fsck problems: %v", rep.Problems)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	fab := pcie.New(256 << 20)
	disk := block.NewMemDisk(fab, 16<<20)
	Mkfs(disk.Image(), 0)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		fsys, _ := Mount(p, fab, disk)
		f, _ := fsys.Create(p, "/f")
		f.Write(p, 0, make([]byte, BlockSize))
		fsys.Sync(p)
	})
	e.MustRun()
	if rep := Check(disk.Image()); !rep.OK() {
		t.Fatalf("baseline not clean: %v", rep.Problems)
	}
	// Corrupt: clear a used bitmap bit.
	var sb superblock
	sb.decode(disk.Image().Slice(0, BlockSize))
	bm := disk.Image().Slice(int64(sb.BitmapStart)*BlockSize, BlockSize)
	bm[len(bm)-1] = 0 // clobber tail-guard bits
	corrupt := false
	for b := int(sb.DataStart); b < int(sb.DataStart)+64; b++ {
		if bm[b/8]&(1<<(b%8)) != 0 {
			bm[b/8] &^= 1 << (b % 8)
			corrupt = true
			break
		}
	}
	if !corrupt {
		t.Skip("no data block found to corrupt")
	}
	if rep := Check(disk.Image()); rep.OK() {
		t.Fatal("fsck missed bitmap corruption")
	}
}

// Property: random write/read sequences behave like an in-memory file.
func TestFileModelProperty(t *testing.T) {
	type opDesc struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []opDesc) bool {
		if len(ops) > 12 {
			ops = ops[:12]
		}
		ok := true
		withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
			file, err := fsys.Create(p, "/model")
			if err != nil {
				ok = false
				return
			}
			var model []byte
			for _, o := range ops {
				off := int(o.Off) % 20000
				if len(o.Data) == 0 {
					continue
				}
				if _, err := file.Write(p, int64(off), o.Data); err != nil {
					ok = false
					return
				}
				if need := off + len(o.Data); need > len(model) {
					model = append(model, make([]byte, need-len(model))...)
				}
				copy(model[off:], o.Data)
			}
			if file.Size() != int64(len(model)) {
				ok = false
				return
			}
			got := make([]byte, len(model))
			n, err := file.Read(p, 0, got)
			if err != nil || n != len(model) {
				ok = false
				return
			}
			// Compare only bytes we actually wrote; gap bytes between
			// writes are unspecified (no-hole FS), so rebuild a mask.
			written := make([]bool, len(model))
			for _, o := range ops {
				off := int(o.Off) % 20000
				for i := range o.Data {
					if off+i < len(written) {
						written[off+i] = true
					}
				}
			}
			for i := range model {
				if written[i] && got[i] != model[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// countUsed tallies allocated blocks from the in-memory bitmap.
func countUsed(fsys *FS) int {
	n := 0
	for b := uint64(0); b < fsys.sb.NBlocks; b++ {
		if fsys.blockUsed(uint32(b)) {
			n++
		}
	}
	return n
}

func TestRenameWithinDirectory(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, disk block.Device) {
		f, _ := fsys.Create(p, "/old")
		f.Write(p, 0, []byte("content"))
		if err := fsys.Rename(p, "/old", "/new"); err != nil {
			t.Fatal(err)
		}
		if _, err := fsys.Open(p, "/old"); err != ErrNotExist {
			t.Fatal("old name still resolves")
		}
		g, err := fsys.Open(p, "/new")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 7)
		g.Read(p, 0, buf)
		if string(buf) != "content" {
			t.Fatalf("content after rename = %q", buf)
		}
		fsys.Sync(p)
		if rep := Check(disk.Image()); !rep.OK() {
			t.Fatalf("fsck: %v", rep.Problems)
		}
	})
}

func TestRenameAcrossDirectories(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, disk block.Device) {
		fsys.Mkdir(p, "/a")
		fsys.Mkdir(p, "/b")
		f, _ := fsys.Create(p, "/a/file")
		f.Write(p, 0, []byte("xyz"))
		if err := fsys.Rename(p, "/a/file", "/b/moved"); err != nil {
			t.Fatal(err)
		}
		if ents, _ := fsys.ReadDir(p, "/a"); len(ents) != 0 {
			t.Fatal("/a still has entries")
		}
		st, err := fsys.Stat(p, "/b/moved")
		if err != nil || st.Size != 3 {
			t.Fatalf("stat moved: %+v err=%v", st, err)
		}
		fsys.Sync(p)
		if rep := Check(disk.Image()); !rep.OK() {
			t.Fatalf("fsck: %v", rep.Problems)
		}
	})
}

func TestRenameRefusesClobberAndCycles(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		fsys.Create(p, "/x")
		fsys.Create(p, "/y")
		if err := fsys.Rename(p, "/x", "/y"); err != ErrExist {
			t.Fatalf("clobber err = %v, want ErrExist", err)
		}
		fsys.Mkdir(p, "/d")
		if err := fsys.Rename(p, "/d", "/d/sub"); err == nil {
			t.Fatal("moved a directory into itself")
		}
		if err := fsys.Rename(p, "/missing", "/z"); err != ErrNotExist {
			t.Fatalf("missing source err = %v", err)
		}
	})
}

func TestRenameDirectoryKeepsChildren(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, disk block.Device) {
		fsys.Mkdir(p, "/dir")
		f, _ := fsys.Create(p, "/dir/kid")
		f.Write(p, 0, []byte("hi"))
		if err := fsys.Rename(p, "/dir", "/renamed"); err != nil {
			t.Fatal(err)
		}
		st, err := fsys.Stat(p, "/renamed/kid")
		if err != nil || st.Size != 2 {
			t.Fatalf("child lost after dir rename: %+v err=%v", st, err)
		}
		fsys.Sync(p)
		if rep := Check(disk.Image()); !rep.OK() {
			t.Fatalf("fsck: %v", rep.Problems)
		}
	})
}

func TestHardLinkSharesData(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, disk block.Device) {
		f, _ := fsys.Create(p, "/orig")
		f.Write(p, 0, []byte("shared bytes"))
		if err := fsys.Link(p, "/orig", "/alias"); err != nil {
			t.Fatal(err)
		}
		g, err := fsys.Open(p, "/alias")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 12)
		g.Read(p, 0, buf)
		if string(buf) != "shared bytes" {
			t.Fatalf("alias content = %q", buf)
		}
		// Writes through one name are visible through the other.
		g.Write(p, 0, []byte("SHARED"))
		f2, _ := fsys.Open(p, "/orig")
		f2.Read(p, 0, buf)
		if string(buf[:6]) != "SHARED" {
			t.Fatal("write through alias not visible through original")
		}
		fsys.Sync(p)
		if rep := Check(disk.Image()); !rep.OK() {
			t.Fatalf("fsck: %v", rep.Problems)
		}
	})
}

func TestHardLinkUnlinkSemantics(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, disk block.Device) {
		f, _ := fsys.Create(p, "/orig")
		f.Write(p, 0, make([]byte, BlockSize))
		fsys.Link(p, "/orig", "/alias")
		used := countUsed(fsys)
		// Removing one name keeps the data alive.
		if err := fsys.Unlink(p, "/orig"); err != nil {
			t.Fatal(err)
		}
		if got := countUsed(fsys); got != used {
			t.Fatalf("blocks freed while a link remains: %d -> %d", used, got)
		}
		if _, err := fsys.Open(p, "/alias"); err != nil {
			t.Fatal("surviving link broken")
		}
		fsys.Sync(p)
		if rep := Check(disk.Image()); !rep.OK() {
			t.Fatalf("fsck with live link: %v", rep.Problems)
		}
		// Removing the last name frees the blocks.
		if err := fsys.Unlink(p, "/alias"); err != nil {
			t.Fatal(err)
		}
		if got := countUsed(fsys); got >= used {
			t.Fatal("blocks not freed after last link removed")
		}
		fsys.Sync(p)
		if rep := Check(disk.Image()); !rep.OK() {
			t.Fatalf("fsck after last unlink: %v", rep.Problems)
		}
	})
}

func TestHardLinkRejectsDirectories(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		fsys.Mkdir(p, "/d")
		if err := fsys.Link(p, "/d", "/d2"); err != ErrIsDir {
			t.Fatalf("err = %v, want ErrIsDir", err)
		}
		fsys.Create(p, "/f")
		fsys.Create(p, "/g")
		if err := fsys.Link(p, "/f", "/g"); err != ErrExist {
			t.Fatalf("clobber err = %v, want ErrExist", err)
		}
	})
}

func TestConcurrentChaosThenFsck(t *testing.T) {
	// Many procs create, write, link, rename, truncate, and unlink
	// concurrently; afterwards the image must pass every fsck invariant
	// and surviving files must read back what was last written.
	fab := pcie.New(512 << 20)
	disk := block.NewMemDisk(fab, 64<<20)
	if err := Mkfs(disk.Image(), 0); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		wg := sim.NewWaitGroup("chaos")
		const workers = 8
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			w := w
			p.Spawn(fmt.Sprintf("chaos-%d", w), func(wp *sim.Proc) {
				defer wp.DoneWG(wg)
				rnd := rand.New(rand.NewSource(int64(w)))
				mine := fmt.Sprintf("/w%d", w)
				fsys.Mkdir(wp, mine)
				for i := 0; i < 30; i++ {
					name := fmt.Sprintf("%s/f%d", mine, rnd.Intn(6))
					switch rnd.Intn(6) {
					case 0, 1:
						if f, err := fsys.OpenOrCreate(wp, name); err == nil {
							f.Write(wp, int64(rnd.Intn(3))*BlockSize, make([]byte, rnd.Intn(2*BlockSize)+1))
						}
					case 2:
						fsys.Unlink(wp, name)
					case 3:
						fsys.Rename(wp, name, name+"x")
					case 4:
						if f, err := fsys.Open(wp, name); err == nil {
							f.Truncate(wp, int64(rnd.Intn(2))*BlockSize)
						}
					case 5:
						fsys.Link(wp, name, name+"ln")
					}
				}
			})
		}
		p.WaitWG(wg)
		if err := fsys.Sync(p); err != nil {
			t.Error(err)
		}
	})
	e.MustRun()
	if rep := Check(disk.Image()); !rep.OK() {
		t.Fatalf("fsck after chaos: %v", rep.Problems)
	}
}

func TestNameLengthBoundary(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		exact := "/" + strings.Repeat("n", MaxName)
		if _, err := fsys.Create(p, exact); err != nil {
			t.Fatalf("255-char name rejected: %v", err)
		}
		if _, err := fsys.Open(p, exact); err != nil {
			t.Fatalf("255-char name not found: %v", err)
		}
		over := "/" + strings.Repeat("n", MaxName+1)
		if _, err := fsys.Create(p, over); err != ErrNameTooLon {
			t.Fatalf("256-char name err = %v", err)
		}
	})
}

func TestOpenOrCreateIdempotent(t *testing.T) {
	withFS(t, 16, func(p *sim.Proc, fsys *FS, _ block.Device) {
		a, err := fsys.OpenOrCreate(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		a.Write(p, 0, []byte("keep"))
		b, err := fsys.OpenOrCreate(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if b.Ino() != a.Ino() {
			t.Fatal("OpenOrCreate created a second inode")
		}
		buf := make([]byte, 4)
		b.Read(p, 0, buf)
		if string(buf) != "keep" {
			t.Fatal("existing content lost")
		}
	})
}

func TestDirectorySpanningManyBlocks(t *testing.T) {
	// Enough entries that the directory's content exceeds one block.
	// (Needs an explicit inode budget: the auto geometry on a 32 MB
	// disk provisions only 128 inodes.)
	fab := pcie.New(256 << 20)
	disk := block.NewMemDisk(fab, 32<<20)
	if err := Mkfs(disk.Image(), 512); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	e.Spawn("test", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		fsys.Mkdir(p, "/big")
		const n = 300
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("/big/entry-with-a-longish-name-%03d", i)
			if _, err := fsys.Create(p, name); err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
		}
		ents, err := fsys.ReadDir(p, "/big")
		if err != nil || len(ents) != n {
			t.Fatalf("readdir: %d entries err=%v", len(ents), err)
		}
		// Spot check lookups and deletion in the middle.
		if _, err := fsys.Open(p, "/big/entry-with-a-longish-name-150"); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Unlink(p, "/big/entry-with-a-longish-name-150"); err != nil {
			t.Fatal(err)
		}
		ents, _ = fsys.ReadDir(p, "/big")
		if len(ents) != n-1 {
			t.Fatalf("after unlink: %d entries", len(ents))
		}
		fsys.Sync(p)
		if rep := Check(disk.Image()); !rep.OK() {
			t.Fatalf("fsck: %v", rep.Problems)
		}
	})
	e.MustRun()
}

func TestOutOfInodes(t *testing.T) {
	// A tiny FS with the minimum inode table must report ErrNoInodes,
	// not corrupt anything.
	fab := pcie.New(64 << 20)
	disk := block.NewMemDisk(fab, 16<<20)
	if err := Mkfs(disk.Image(), 64); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		fsys, err := Mount(p, fab, disk)
		if err != nil {
			t.Error(err)
			return
		}
		var lastErr error
		for i := 0; i < 200; i++ {
			if _, lastErr = fsys.Create(p, fmt.Sprintf("/f%d", i)); lastErr != nil {
				break
			}
		}
		if lastErr != ErrNoInodes {
			t.Errorf("err = %v, want ErrNoInodes", lastErr)
		}
		fsys.Sync(p)
	})
	e.MustRun()
	if rep := Check(disk.Image()); !rep.OK() {
		t.Fatalf("fsck after inode exhaustion: %v", rep.Problems)
	}
}
