package fs

import (
	"testing"

	"solros/internal/pcie"
)

// fuzzImage builds a small valid solrosfs image to seed the corpus: the
// interesting mutations are one bit flip away from a well-formed
// superblock, bitmap, and inode table, not random noise.
func fuzzImage(f *testing.F) []byte {
	f.Helper()
	img := pcie.NewMemory(256 << 10)
	if err := Mkfs(img, 32); err != nil {
		f.Fatal(err)
	}
	return append([]byte(nil), img.Slice(0, img.Size())...)
}

// FuzzCheckBytes feeds the offline fsck arbitrary images: whatever the
// bytes claim about geometry, extents, indirect blocks, or directory
// content, Check must classify problems and return — never panic, never
// index out of bounds. This is the guarantee the crash-point oracle in
// internal/explore relies on when it fscks mid-write snapshots.
func FuzzCheckBytes(f *testing.F) {
	base := fuzzImage(f)
	f.Add(base)
	// Seed a few structured corruptions so coverage starts inside the
	// deep passes instead of dying at the superblock magic.
	for _, off := range []int{0, 8, 16, 24, BlockSize + 1, 2*BlockSize + 5} {
		mut := append([]byte(nil), base...)
		if off < len(mut) {
			mut[off] ^= 0xff
		}
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(make([]byte, BlockSize))
	f.Add(base[:BlockSize+17])
	f.Fuzz(func(t *testing.T, img []byte) {
		rep := CheckBytes(img)
		if rep == nil {
			t.Fatal("CheckBytes returned nil report")
		}
		if len(rep.Kinds) != len(rep.Problems) {
			t.Fatalf("Kinds (%d) and Problems (%d) out of step", len(rep.Kinds), len(rep.Problems))
		}
		if rep.OK() && !rep.StructurallySound() {
			t.Fatal("report OK but not structurally sound")
		}
	})
}
