package fs

import (
	"fmt"
	"sort"
	"strings"

	"solros/internal/block"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// FS is a mounted solrosfs instance. Metadata (superblock, bitmap, inode
// table) is cached in memory at mount, updated write-back, and flushed by
// Sync — the usual page-cache discipline, so steady-state data I/O costs
// only data transfers. All mutating operations serialize on an internal
// virtual-time lock.
type FS struct {
	disk   block.Device
	fabric *pcie.Fabric

	sb     superblock
	bitmap []byte
	inodes []inode
	// dirty tracking at block granularity
	dirtyBitmap map[uint32]bool
	dirtyITable map[uint32]bool

	mu      *sim.Lock
	staging *stagingPool
	rotor   uint32 // allocator scan position
}

// Mkfs formats a disk image with ninodes inodes. It operates directly on
// the image (an offline tool, outside the timing model).
func Mkfs(img *pcie.Memory, ninodes uint32) error {
	nblocks := uint64(img.Size() / BlockSize)
	if nblocks < 16 {
		return fmt.Errorf("solrosfs: device too small (%d blocks)", nblocks)
	}
	if ninodes == 0 {
		ninodes = uint32(nblocks / 64)
		if ninodes < 64 {
			ninodes = 64
		}
	}
	bitmapBlocks := uint32((nblocks + BlockSize*8 - 1) / (BlockSize * 8))
	itableBlocks := (ninodes + InodesPerBlock - 1) / InodesPerBlock
	sb := superblock{
		BlockSize:    BlockSize,
		NBlocks:      nblocks,
		NInodes:      itableBlocks * InodesPerBlock,
		BitmapStart:  1,
		BitmapBlocks: bitmapBlocks,
		ITableStart:  1 + bitmapBlocks,
		ITableBlocks: itableBlocks,
		DataStart:    1 + bitmapBlocks + itableBlocks,
	}
	if uint64(sb.DataStart) >= nblocks {
		return fmt.Errorf("solrosfs: metadata does not fit on device")
	}
	// Zero all metadata blocks.
	for b := uint32(0); b < sb.DataStart; b++ {
		blk := img.Slice(int64(b)*BlockSize, BlockSize)
		for i := range blk {
			blk[i] = 0
		}
	}
	sb.encode(img.Slice(0, BlockSize))
	// Mark metadata blocks (and tail bits beyond NBlocks) allocated.
	bm := img.Slice(int64(sb.BitmapStart)*BlockSize, int64(bitmapBlocks)*BlockSize)
	for b := uint64(0); b < uint64(sb.DataStart); b++ {
		bm[b/8] |= 1 << (b % 8)
	}
	for b := nblocks; b < uint64(bitmapBlocks)*BlockSize*8; b++ {
		bm[b/8] |= 1 << (b % 8)
	}
	// Root directory: inode 1, empty.
	root := inode{ino: RootIno, mode: ModeDir, nlink: 2}
	slotOff := int64(sb.ITableStart)*BlockSize + RootIno*InodeSize
	root.encodeInto(img.Slice(slotOff, InodeSize), nil)
	return nil
}

// Mount loads a formatted disk's metadata through timed device reads and
// returns a usable FS with staging buffers in host RAM.
func Mount(p *sim.Proc, fab *pcie.Fabric, disk block.Device) (*FS, error) {
	return MountAt(p, fab, disk, fab.HostRAM)
}

// MountAt mounts with staging buffers carved from mem — co-processor
// memory when the file system itself runs on a co-processor (the stock
// Xeon Phi baseline).
func MountAt(p *sim.Proc, fab *pcie.Fabric, disk block.Device, mem *pcie.Memory) (*FS, error) {
	fsys := &FS{
		disk:        disk,
		fabric:      fab,
		dirtyBitmap: make(map[uint32]bool),
		dirtyITable: make(map[uint32]bool),
		mu:          sim.NewLock("solrosfs"),
		staging:     newStagingPool(mem),
	}
	buf, put := fsys.staging.get(BlockSize)
	defer put()
	if err := fsys.readBlocks(p, 0, 1, buf); err != nil {
		return nil, err
	}
	if err := fsys.sb.decode(fsys.staging.bytes(buf, BlockSize)); err != nil {
		return nil, err
	}
	sb := &fsys.sb
	// Bitmap.
	fsys.bitmap = make([]byte, int64(sb.BitmapBlocks)*BlockSize)
	bmBuf, putBM := fsys.staging.get(int64(len(fsys.bitmap)))
	if err := fsys.readBlocks(p, int64(sb.BitmapStart), int64(sb.BitmapBlocks), bmBuf); err != nil {
		putBM()
		return nil, err
	}
	copy(fsys.bitmap, fsys.staging.bytes(bmBuf, int64(len(fsys.bitmap))))
	putBM()
	// Inode table.
	fsys.inodes = make([]inode, sb.NInodes)
	itBytes := int64(sb.ITableBlocks) * BlockSize
	itBuf, putIT := fsys.staging.get(itBytes)
	if err := fsys.readBlocks(p, int64(sb.ITableStart), int64(sb.ITableBlocks), itBuf); err != nil {
		putIT()
		return nil, err
	}
	table := fsys.staging.bytes(itBuf, itBytes)
	type spill struct {
		ino     uint32
		spilled int
	}
	var spills []spill
	for i := range fsys.inodes {
		in := &fsys.inodes[i]
		in.ino = uint32(i)
		if s := in.decodeFrom(table[i*InodeSize : (i+1)*InodeSize]); s > 0 {
			spills = append(spills, spill{uint32(i), s})
		}
	}
	putIT()
	// Indirect extent blocks.
	for _, s := range spills {
		in := &fsys.inodes[s.ino]
		idb, putIDB := fsys.staging.get(BlockSize)
		if err := fsys.readBlocks(p, int64(in.indirect), 1, idb); err != nil {
			putIDB()
			return nil, err
		}
		in.decodeIndirect(fsys.staging.bytes(idb, BlockSize), s.spilled)
		putIDB()
	}
	if fsys.inodes[RootIno].mode != ModeDir {
		return nil, ErrBadFS
	}
	fsys.rotor = sb.DataStart
	return fsys, nil
}

// Fabric reports the fabric this FS charges I/O against.
func (fs *FS) Fabric() *pcie.Fabric { return fs.fabric }

// Disk reports the underlying block device.
func (fs *FS) Disk() block.Device { return fs.disk }

// readBlocks reads count blocks starting at block blk into a staging loc.
func (fs *FS) readBlocks(p *sim.Proc, blk, count int64, dst pcie.Loc) error {
	return fs.disk.Vector(p, []block.Op{{
		Off: blk * BlockSize, Bytes: count * BlockSize, Target: dst,
	}}, true)
}

func (fs *FS) writeBlocks(p *sim.Proc, blk, count int64, src pcie.Loc) error {
	return fs.disk.Vector(p, []block.Op{{
		Write: true, Off: blk * BlockSize, Bytes: count * BlockSize, Target: src,
	}}, true)
}

// --- bitmap allocator -----------------------------------------------------

func (fs *FS) blockUsed(b uint32) bool {
	return fs.bitmap[b/8]&(1<<(b%8)) != 0
}

func (fs *FS) setBlock(b uint32, used bool) {
	if used {
		fs.bitmap[b/8] |= 1 << (b % 8)
	} else {
		fs.bitmap[b/8] &^= 1 << (b % 8)
	}
	fs.dirtyBitmap[uint32(b/8/BlockSize)] = true
}

// allocRun allocates up to want contiguous blocks, returning the start and
// the length obtained (>=1), or ErrNoSpace.
func (fs *FS) allocRun(want uint32) (uint32, uint32, error) {
	n := uint32(fs.sb.NBlocks)
	// Two passes from the rotor.
	bestStart, bestLen := uint32(0), uint32(0)
	cur, curLen := uint32(0), uint32(0)
	scan := func(from, to uint32) bool {
		for b := from; b < to; b++ {
			if fs.blockUsed(b) {
				curLen = 0
				continue
			}
			if curLen == 0 {
				cur = b
			}
			curLen++
			if curLen > bestLen {
				bestStart, bestLen = cur, curLen
				if bestLen >= want {
					return true
				}
			}
		}
		curLen = 0
		return false
	}
	if !scan(fs.rotor, n) {
		scan(fs.sb.DataStart, fs.rotor)
	}
	if bestLen == 0 {
		return 0, 0, ErrNoSpace
	}
	if bestLen > want {
		bestLen = want
	}
	for b := bestStart; b < bestStart+bestLen; b++ {
		fs.setBlock(b, true)
	}
	fs.rotor = bestStart + bestLen
	if fs.rotor >= n {
		fs.rotor = fs.sb.DataStart
	}
	return bestStart, bestLen, nil
}

func (fs *FS) freeRun(start, count uint32) {
	for b := start; b < start+count; b++ {
		fs.setBlock(b, false)
	}
}

// --- inode management ------------------------------------------------------

func (fs *FS) allocInode(mode uint16) (*inode, error) {
	for i := RootIno + 1; i < len(fs.inodes); i++ {
		in := &fs.inodes[i]
		if in.mode == ModeFree {
			*in = inode{ino: uint32(i), mode: mode, nlink: 1, dirty: true}
			fs.markInodeDirty(in)
			return in, nil
		}
	}
	return nil, ErrNoInodes
}

func (fs *FS) markInodeDirty(in *inode) {
	in.dirty = true
	fs.dirtyITable[in.ino/InodesPerBlock] = true
}

// freeInode releases all blocks of in and clears it.
func (fs *FS) freeInode(in *inode) {
	for _, e := range in.extents {
		fs.freeRun(e.Start, e.Count)
	}
	if in.indirect != 0 {
		fs.freeRun(in.indirect, 1)
	}
	ino := in.ino
	*in = inode{ino: ino}
	fs.markInodeDirty(in)
}

// --- path resolution --------------------------------------------------------

// splitPath normalizes an absolute path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("solrosfs: path %q not absolute", path)
	}
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			return nil, fmt.Errorf("solrosfs: %q: .. not supported", path)
		default:
			if len(c) > MaxName {
				return nil, ErrNameTooLon
			}
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// lookup resolves path to an inode; with parent=true it resolves to the
// parent directory and returns the final name.
func (fs *FS) lookup(p *sim.Proc, path string, parent bool) (*inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	last := ""
	if parent {
		if len(parts) == 0 {
			return nil, "", fmt.Errorf("solrosfs: %q has no parent entry", path)
		}
		last = parts[len(parts)-1]
		parts = parts[:len(parts)-1]
	}
	cur := &fs.inodes[RootIno]
	for _, name := range parts {
		if cur.mode != ModeDir {
			return nil, "", ErrNotDir
		}
		ents, err := fs.readDirInode(p, cur)
		if err != nil {
			return nil, "", err
		}
		found := false
		for _, d := range ents {
			if d.Name == name {
				cur = &fs.inodes[d.Ino]
				found = true
				break
			}
		}
		if !found {
			return nil, "", ErrNotExist
		}
	}
	return cur, last, nil
}

// readDirInode reads and parses a directory's content.
func (fs *FS) readDirInode(p *sim.Proc, dir *inode) ([]Dirent, error) {
	if dir.size == 0 {
		return nil, nil
	}
	buf := make([]byte, dir.size)
	if _, err := fs.readInodeRange(p, dir, 0, buf); err != nil {
		return nil, err
	}
	return parseDirents(buf)
}

// writeDirInode replaces a directory's content wholesale via a shadow
// update: the new content is staged into freshly allocated blocks while
// the old ones stay live, and the inode switches over only once the write
// has landed. A failed write (a transient media error ridden out by
// degraded mode) therefore leaves the old directory readable instead of
// pointing the inode at never-written blocks — failure atomicity for
// namespace updates without a journal.
func (fs *FS) writeDirInode(p *sim.Proc, dir *inode, ents []Dirent) error {
	var buf []byte
	for _, d := range ents {
		buf = appendDirent(buf, d)
	}
	oldExt := append([]Extent(nil), dir.extents...)
	oldInd, oldSize := dir.indirect, dir.size
	dir.extents, dir.indirect, dir.size = nil, 0, 0
	if len(buf) > 0 {
		if _, err := fs.writeInodeRange(p, dir, 0, buf); err != nil {
			fs.truncInode(dir, 0) // free the shadow blocks
			dir.extents, dir.indirect, dir.size = oldExt, oldInd, oldSize
			fs.markInodeDirty(dir)
			return err
		}
	}
	for _, e := range oldExt {
		fs.freeRun(e.Start, e.Count)
	}
	if oldInd != 0 {
		fs.freeRun(oldInd, 1)
	}
	fs.markInodeDirty(dir)
	return nil
}

// --- public namespace operations -------------------------------------------

// File is an open solrosfs file (or directory).
type File struct {
	fs *FS
	in *inode
}

// Create makes a new empty regular file; it fails if path exists.
func (fs *FS) Create(p *sim.Proc, path string) (*File, error) {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	return fs.createLocked(p, path, ModeFile)
}

// Mkdir creates an empty directory.
func (fs *FS) Mkdir(p *sim.Proc, path string) error {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	_, err := fs.createLocked(p, path, ModeDir)
	return err
}

func (fs *FS) createLocked(p *sim.Proc, path string, mode uint16) (*File, error) {
	dir, name, err := fs.lookup(p, path, true)
	if err != nil {
		return nil, err
	}
	if dir.mode != ModeDir {
		return nil, ErrNotDir
	}
	ents, err := fs.readDirInode(p, dir)
	if err != nil {
		return nil, err
	}
	for _, d := range ents {
		if d.Name == name {
			return nil, ErrExist
		}
	}
	in, err := fs.allocInode(mode)
	if err != nil {
		return nil, err
	}
	ents = append(ents, Dirent{Ino: in.ino, Type: mode, Name: name})
	if err := fs.writeDirInode(p, dir, ents); err != nil {
		fs.freeInode(in)
		return nil, err
	}
	return &File{fs: fs, in: in}, nil
}

// Open opens an existing file or directory.
func (fs *FS) Open(p *sim.Proc, path string) (*File, error) {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	in, _, err := fs.lookup(p, path, false)
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, in: in}, nil
}

// OpenOrCreate opens path, creating it if absent.
func (fs *FS) OpenOrCreate(p *sim.Proc, path string) (*File, error) {
	f, err := fs.Open(p, path)
	if err == ErrNotExist {
		return fs.Create(p, path)
	}
	return f, err
}

// Unlink removes a file or an empty directory.
func (fs *FS) Unlink(p *sim.Proc, path string) error {
	_, _, err := fs.UnlinkIno(p, path)
	return err
}

// UnlinkIno is Unlink, additionally reporting which inode the name
// resolved to and whether that was its last link (the inode and its blocks
// were freed). Callers holding caches keyed by inode number use this to
// invalidate without a second, separately-timed path lookup.
func (fs *FS) UnlinkIno(p *sim.Proc, path string) (ino uint32, freed bool, err error) {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	dir, name, err := fs.lookup(p, path, true)
	if err != nil {
		return 0, false, err
	}
	ents, err := fs.readDirInode(p, dir)
	if err != nil {
		return 0, false, err
	}
	idx := -1
	for i, d := range ents {
		if d.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, false, ErrNotExist
	}
	victim := &fs.inodes[ents[idx].Ino]
	if victim.mode == ModeDir {
		sub, err := fs.readDirInode(p, victim)
		if err != nil {
			return 0, false, err
		}
		if len(sub) > 0 {
			return 0, false, ErrNotEmpty
		}
	}
	ents = append(ents[:idx], ents[idx+1:]...)
	if err := fs.writeDirInode(p, dir, ents); err != nil {
		return 0, false, err
	}
	ino = victim.ino
	// Hard links: only drop the inode when the last name goes away.
	if victim.nlink > 1 {
		victim.nlink--
		fs.markInodeDirty(victim)
		return ino, false, nil
	}
	fs.freeInode(victim)
	return ino, true, nil
}

// Link creates a second directory entry (hard link) for an existing
// regular file. Directories cannot be hard-linked (cycle risk).
func (fs *FS) Link(p *sim.Proc, oldPath, newPath string) error {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	target, _, err := fs.lookup(p, oldPath, false)
	if err != nil {
		return err
	}
	if target.mode == ModeDir {
		return ErrIsDir
	}
	dir, name, err := fs.lookup(p, newPath, true)
	if err != nil {
		return err
	}
	if dir.mode != ModeDir {
		return ErrNotDir
	}
	ents, err := fs.readDirInode(p, dir)
	if err != nil {
		return err
	}
	for _, d := range ents {
		if d.Name == name {
			return ErrExist
		}
	}
	ents = append(ents, Dirent{Ino: target.ino, Type: target.mode, Name: name})
	if err := fs.writeDirInode(p, dir, ents); err != nil {
		return err
	}
	target.nlink++
	fs.markInodeDirty(target)
	return nil
}

// Rename moves a file or directory to a new path (both absolute). It is
// atomic with respect to other FS operations (everything serializes on
// the FS lock) and refuses to clobber an existing target.
func (fs *FS) Rename(p *sim.Proc, oldPath, newPath string) error {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	oldDir, oldName, err := fs.lookup(p, oldPath, true)
	if err != nil {
		return err
	}
	newDir, newName, err := fs.lookup(p, newPath, true)
	if err != nil {
		return err
	}
	if newDir.mode != ModeDir {
		return ErrNotDir
	}
	oldEnts, err := fs.readDirInode(p, oldDir)
	if err != nil {
		return err
	}
	idx := -1
	for i, d := range oldEnts {
		if d.Name == oldName {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ErrNotExist
	}
	moved := oldEnts[idx]
	// Moving a directory into itself would orphan the subtree.
	if moved.Type == ModeDir && strings.HasPrefix(newPath+"/", oldPath+"/") {
		return fmt.Errorf("solrosfs: cannot move %q into itself", oldPath)
	}
	newEnts, err := fs.readDirInode(p, newDir)
	if err != nil {
		return err
	}
	for _, d := range newEnts {
		if d.Name == newName {
			return ErrExist
		}
	}
	if oldDir == newDir {
		// Single-directory rename: one rewrite.
		oldEnts[idx].Name = newName
		return fs.writeDirInode(p, oldDir, oldEnts)
	}
	oldEnts = append(oldEnts[:idx], oldEnts[idx+1:]...)
	if err := fs.writeDirInode(p, oldDir, oldEnts); err != nil {
		return err
	}
	moved.Name = newName
	newEnts = append(newEnts, moved)
	return fs.writeDirInode(p, newDir, newEnts)
}

// FileInfo is the stat result.
type FileInfo struct {
	Ino     uint32
	Mode    uint16
	Size    int64
	Extents int
}

// Stat reports metadata for path.
func (fs *FS) Stat(p *sim.Proc, path string) (FileInfo, error) {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	in, _, err := fs.lookup(p, path, false)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Ino: in.ino, Mode: in.mode, Size: in.size, Extents: len(in.extents)}, nil
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(p *sim.Proc, path string) ([]Dirent, error) {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	in, _, err := fs.lookup(p, path, false)
	if err != nil {
		return nil, err
	}
	if in.mode != ModeDir {
		return nil, ErrNotDir
	}
	return fs.readDirInode(p, in)
}

// Sync flushes dirty metadata (bitmap and inode-table blocks, indirect
// extent blocks) to disk.
func (fs *FS) Sync(p *sim.Proc) error {
	p.Acquire(fs.mu)
	defer p.Release(fs.mu)
	return fs.syncLocked(p)
}

func (fs *FS) syncLocked(p *sim.Proc) error {
	// Flush in sorted block order: Go map iteration order is random per
	// process, and under injected write faults the iteration order decides
	// WHICH block's write fails, so replayed explorations must not depend
	// on it.
	// Indirect blocks and inode table.
	for _, blk := range sortedKeys(fs.dirtyITable) {
		buf, put := fs.staging.get(BlockSize)
		table := fs.staging.bytes(buf, BlockSize)
		for i := 0; i < InodesPerBlock; i++ {
			ino := blk*InodesPerBlock + uint32(i)
			in := &fs.inodes[ino]
			var idb []byte
			if len(in.extents) > InlineExtents {
				if in.indirect == 0 {
					return fmt.Errorf("solrosfs: inode %d spilled without indirect block", ino)
				}
				idbBuf, putIDB := fs.staging.get(BlockSize)
				idb = fs.staging.bytes(idbBuf, BlockSize)
				in.encodeInto(table[i*InodeSize:(i+1)*InodeSize], idb)
				if err := fs.writeBlocks(p, int64(in.indirect), 1, idbBuf); err != nil {
					putIDB()
					put()
					return err
				}
				putIDB()
			} else {
				in.encodeInto(table[i*InodeSize:(i+1)*InodeSize], nil)
			}
			in.dirty = false
		}
		if err := fs.writeBlocks(p, int64(fs.sb.ITableStart+blk), 1, buf); err != nil {
			put()
			return err
		}
		put()
		delete(fs.dirtyITable, blk)
	}
	// Bitmap blocks.
	for _, blk := range sortedKeys(fs.dirtyBitmap) {
		buf, put := fs.staging.get(BlockSize)
		copy(fs.staging.bytes(buf, BlockSize), fs.bitmap[int64(blk)*BlockSize:int64(blk+1)*BlockSize])
		if err := fs.writeBlocks(p, int64(fs.sb.BitmapStart+blk), 1, buf); err != nil {
			put()
			return err
		}
		put()
		delete(fs.dirtyBitmap, blk)
	}
	return nil
}

func sortedKeys(m map[uint32]bool) []uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// MetaClean reports whether the file system is metadata-quiescent: no
// dirty bitmap or inode-table blocks awaiting Sync and no mutation in
// progress. Only in this state must a device snapshot pass a FULL fsck;
// between Syncs the write-back design makes Repairable-class findings
// legal (see ProblemKind).
func (fs *FS) MetaClean() bool {
	return !fs.mu.Held() && len(fs.dirtyBitmap) == 0 && len(fs.dirtyITable) == 0
}

// InodeExtents reports the in-memory (possibly not yet synced) extent list
// and size for inode ino, or ok=false if the inode is free or out of
// range. Oracles use it to map cached file pages back to disk blocks.
func (fs *FS) InodeExtents(ino uint32) (extents []Extent, size int64, ok bool) {
	if uint64(ino) >= uint64(len(fs.inodes)) {
		return nil, 0, false
	}
	in := &fs.inodes[ino]
	if in.mode == ModeFree {
		return nil, 0, false
	}
	return append([]Extent(nil), in.extents...), in.size, true
}

// stagingPool hands out scratch regions of one memory domain for staging
// metadata and buffered data between the FS and the device.
type stagingPool struct {
	mem  *pcie.Memory
	free map[int][]int64 // size class (log2) -> offsets
}

func newStagingPool(mem *pcie.Memory) *stagingPool {
	return &stagingPool{mem: mem, free: make(map[int][]int64)}
}

func classOf(n int64) int {
	c := 0
	for s := int64(1); s < n; s <<= 1 {
		c++
	}
	if c < 12 { // minimum 4 KB
		c = 12
	}
	return c
}

// get returns a staging Loc of at least n bytes and a release func.
func (sp *stagingPool) get(n int64) (pcie.Loc, func()) {
	c := classOf(n)
	var off int64
	if lst := sp.free[c]; len(lst) > 0 {
		off = lst[len(lst)-1]
		sp.free[c] = lst[:len(lst)-1]
	} else {
		off = sp.mem.Alloc(1 << c)
	}
	loc := pcie.Loc{Dev: sp.mem.Dev, Off: off}
	return loc, func() { sp.free[c] = append(sp.free[c], off) }
}

// bytes exposes the first n bytes of a staging Loc.
func (sp *stagingPool) bytes(l pcie.Loc, n int64) []byte {
	return sp.mem.Slice(l.Off, n)
}
