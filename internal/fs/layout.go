// Package fs implements solrosfs, the extent-based, in-place-update file
// system the Solros file-system service runs on (§4.3, §5). The paper needs
// an in-place-update file system ("ext4, XFS") so that a file offset
// translates to a stable disk-block address and the proxy can issue
// peer-to-peer NVMe commands against it; solrosfs provides exactly that
// plus a fiemap-equivalent extent query.
//
// On-disk layout (4 KB blocks):
//
//	block 0                superblock
//	bitmapStart..          data-block allocation bitmap
//	itableStart..          inode table (256 B inodes, 16 per block)
//	dataStart..            data blocks (directories are regular files)
//
// All structures are little-endian and written as real bytes to the
// simulated NVMe flash image, so images survive unmount/mount and can be
// checked by cmd/solros-fsck.
package fs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Geometry and format constants.
const (
	// BlockSize is the allocation and I/O unit.
	BlockSize = 4096
	// InodeSize is the on-disk inode footprint.
	InodeSize = 256
	// InodesPerBlock inodes fit in one block.
	InodesPerBlock = BlockSize / InodeSize
	// InlineExtents is the number of extents stored inside the inode;
	// larger files spill into one indirect extent block.
	InlineExtents = 16
	// IndirectExtents is the capacity of the indirect extent block.
	IndirectExtents = BlockSize / extentSize
	// MaxName bounds directory entry names.
	MaxName = 255

	magic      = "SOLROSFS"
	version    = 1
	extentSize = 12
	// RootIno is the root directory's inode number.
	RootIno = 1
)

// Mode values (a deliberately tiny subset of POSIX).
const (
	ModeFree uint16 = 0
	ModeFile uint16 = 1
	ModeDir  uint16 = 2
)

// Errors mirroring the syscall surface the RPC protocol carries.
var (
	ErrNotExist   = errors.New("solrosfs: file does not exist")
	ErrExist      = errors.New("solrosfs: file already exists")
	ErrIsDir      = errors.New("solrosfs: is a directory")
	ErrNotDir     = errors.New("solrosfs: not a directory")
	ErrNoSpace    = errors.New("solrosfs: no space left on device")
	ErrNoInodes   = errors.New("solrosfs: out of inodes")
	ErrNameTooLon = errors.New("solrosfs: name too long")
	ErrNotEmpty   = errors.New("solrosfs: directory not empty")
	ErrBadFS      = errors.New("solrosfs: corrupt or unformatted file system")
	ErrFileTooBig = errors.New("solrosfs: file exceeds maximum extent count")
)

// Extent maps a contiguous run of file blocks to disk blocks.
type Extent struct {
	// Logical is the first file block this extent covers.
	Logical uint32
	// Start is the first disk block.
	Start uint32
	// Count is the run length in blocks.
	Count uint32
}

func putExtent(b []byte, e Extent) {
	binary.LittleEndian.PutUint32(b[0:], e.Logical)
	binary.LittleEndian.PutUint32(b[4:], e.Start)
	binary.LittleEndian.PutUint32(b[8:], e.Count)
}

func getExtent(b []byte) Extent {
	return Extent{
		Logical: binary.LittleEndian.Uint32(b[0:]),
		Start:   binary.LittleEndian.Uint32(b[4:]),
		Count:   binary.LittleEndian.Uint32(b[8:]),
	}
}

// superblock is block 0.
type superblock struct {
	BlockSize    uint32
	NBlocks      uint64
	NInodes      uint32
	BitmapStart  uint32
	BitmapBlocks uint32
	ITableStart  uint32
	ITableBlocks uint32
	DataStart    uint32
}

func (sb *superblock) encode(b []byte) {
	copy(b[0:8], magic)
	binary.LittleEndian.PutUint32(b[8:], version)
	binary.LittleEndian.PutUint32(b[12:], sb.BlockSize)
	binary.LittleEndian.PutUint64(b[16:], sb.NBlocks)
	binary.LittleEndian.PutUint32(b[24:], sb.NInodes)
	binary.LittleEndian.PutUint32(b[28:], sb.BitmapStart)
	binary.LittleEndian.PutUint32(b[32:], sb.BitmapBlocks)
	binary.LittleEndian.PutUint32(b[36:], sb.ITableStart)
	binary.LittleEndian.PutUint32(b[40:], sb.ITableBlocks)
	binary.LittleEndian.PutUint32(b[44:], sb.DataStart)
}

func (sb *superblock) decode(b []byte) error {
	if string(b[0:8]) != magic {
		return ErrBadFS
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != version {
		return fmt.Errorf("solrosfs: version %d unsupported: %w", v, ErrBadFS)
	}
	sb.BlockSize = binary.LittleEndian.Uint32(b[12:])
	sb.NBlocks = binary.LittleEndian.Uint64(b[16:])
	sb.NInodes = binary.LittleEndian.Uint32(b[24:])
	sb.BitmapStart = binary.LittleEndian.Uint32(b[28:])
	sb.BitmapBlocks = binary.LittleEndian.Uint32(b[32:])
	sb.ITableStart = binary.LittleEndian.Uint32(b[36:])
	sb.ITableBlocks = binary.LittleEndian.Uint32(b[40:])
	sb.DataStart = binary.LittleEndian.Uint32(b[44:])
	if sb.BlockSize != BlockSize || sb.NBlocks == 0 {
		return ErrBadFS
	}
	return nil
}

// inode is the in-memory form of an on-disk inode, with the full extent
// list loaded (inline plus indirect).
type inode struct {
	ino      uint32
	mode     uint16
	nlink    uint16
	size     int64
	indirect uint32 // disk block holding spilled extents, 0 if none
	extents  []Extent
	dirty    bool
}

// encodeInto writes the inode's fixed part into its 256-byte table slot;
// extents beyond InlineExtents go to the (already allocated) indirect
// block image idb, which may be nil when there is no spill.
func (in *inode) encodeInto(slot, idb []byte) {
	for i := range slot {
		slot[i] = 0
	}
	binary.LittleEndian.PutUint16(slot[0:], in.mode)
	binary.LittleEndian.PutUint16(slot[2:], in.nlink)
	binary.LittleEndian.PutUint64(slot[8:], uint64(in.size))
	binary.LittleEndian.PutUint32(slot[16:], uint32(len(in.extents)))
	binary.LittleEndian.PutUint32(slot[20:], in.indirect)
	for i, e := range in.extents {
		if i < InlineExtents {
			putExtent(slot[24+i*extentSize:], e)
			continue
		}
		putExtent(idb[(i-InlineExtents)*extentSize:], e)
	}
}

// decodeFrom loads the fixed part from a table slot; the caller must load
// spilled extents from the indirect block afterwards via decodeIndirect.
func (in *inode) decodeFrom(slot []byte) (spilled int) {
	in.mode = binary.LittleEndian.Uint16(slot[0:])
	in.nlink = binary.LittleEndian.Uint16(slot[2:])
	in.size = int64(binary.LittleEndian.Uint64(slot[8:]))
	n := int(binary.LittleEndian.Uint32(slot[16:]))
	in.indirect = binary.LittleEndian.Uint32(slot[20:])
	in.extents = in.extents[:0]
	inline := n
	if inline > InlineExtents {
		inline = InlineExtents
	}
	for i := 0; i < inline; i++ {
		in.extents = append(in.extents, getExtent(slot[24+i*extentSize:]))
	}
	return n - inline
}

func (in *inode) decodeIndirect(idb []byte, spilled int) {
	for i := 0; i < spilled; i++ {
		in.extents = append(in.extents, getExtent(idb[i*extentSize:]))
	}
}

// Dirent is one directory entry. Directory file content is a packed
// sequence of entries: ino u32, type u8, nameLen u8, name bytes.
type Dirent struct {
	Ino  uint32
	Type uint16 // ModeFile or ModeDir
	Name string
}

func appendDirent(buf []byte, d Dirent) []byte {
	var hdr [6]byte
	binary.LittleEndian.PutUint32(hdr[0:], d.Ino)
	hdr[4] = byte(d.Type)
	hdr[5] = byte(len(d.Name))
	buf = append(buf, hdr[:]...)
	return append(buf, d.Name...)
}

// parseDirents decodes a directory's full content.
func parseDirents(buf []byte) ([]Dirent, error) {
	var out []Dirent
	for len(buf) > 0 {
		if len(buf) < 6 {
			return nil, ErrBadFS
		}
		nameLen := int(buf[5])
		if len(buf) < 6+nameLen {
			return nil, ErrBadFS
		}
		out = append(out, Dirent{
			Ino:  binary.LittleEndian.Uint32(buf[0:]),
			Type: uint16(buf[4]),
			Name: string(buf[6 : 6+nameLen]),
		})
		buf = buf[6+nameLen:]
	}
	return out, nil
}
