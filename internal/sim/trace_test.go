package sim

import (
	"fmt"
	"testing"
)

// The ring window must evict oldest-first and report survivors in arrival
// order even after wrapping several times.
func TestRecorderWindowEviction(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 8; i++ {
		rec.Trace(Event{Kind: EvDispatch, Time: Time(i), Proc: fmt.Sprintf("p%d", i)})
	}
	got := rec.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, ev := range got {
		want := Time(5 + i)
		if ev.Time != want {
			t.Errorf("events[%d].Time = %d, want %d (oldest-first order)", i, ev.Time, want)
		}
	}
}

// Below capacity the window must report exactly what arrived, in order.
func TestRecorderWindowPartialFill(t *testing.T) {
	rec := NewRecorder(10)
	for i := 0; i < 4; i++ {
		rec.Trace(Event{Kind: EvBlock, Time: Time(i), What: "w"})
	}
	got := rec.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, ev := range got {
		if ev.Time != Time(i) {
			t.Errorf("events[%d].Time = %d, want %d", i, ev.Time, i)
		}
	}
}

// Ties on block count must break toward the lexicographically smallest
// name so the diagnostic is deterministic.
func TestHottestBlockerTie(t *testing.T) {
	rec := NewRecorder(10)
	for _, what := range []string{"zebra", "apple", "zebra", "apple"} {
		rec.Trace(Event{Kind: EvBlock, What: what})
	}
	if hot, n := rec.HottestBlocker(); hot != "apple" || n != 2 {
		t.Errorf("hottest blocker = %q x%d, want apple x2", hot, n)
	}
}

// An empty recorder must report no blocker, not an empty-string winner.
func TestHottestBlockerEmpty(t *testing.T) {
	rec := NewRecorder(10)
	if hot, n := rec.HottestBlocker(); hot != "" || n != 0 {
		t.Errorf("hottest blocker = %q x%d, want none", hot, n)
	}
}
