package sim

// This file provides blocking coordination primitives in virtual time:
// condition variables, mutexes, wait groups, and channels. They mirror the
// semantics of their sync/chan counterparts but block in simulated rather
// than wall-clock time.

// Cond is a virtual-time condition variable. Unlike sync.Cond it has no
// associated lock: because only one Proc runs at a time, state guarded by a
// Cond cannot race, only interleave at yield points.
type Cond struct {
	Name    string
	waiters []*Proc
}

// NewCond returns a condition variable named for diagnostics.
func NewCond(name string) *Cond { return &Cond{Name: name} }

// Wait parks the calling Proc until another Proc calls Signal or Broadcast.
// As with sync.Cond, callers must re-check their predicate on wakeup.
func (p *Proc) Wait(c *Cond) {
	c.waiters = append(c.waiters, p)
	p.park(c.Name)
}

// WaitTimeout parks the calling Proc on c for at most d of virtual time and
// reports whether the wait ended by timeout rather than Signal/Broadcast.
// As with Wait, callers must re-check their predicate on a false return; a
// true return means nobody signalled within d and the Proc's clock now sits
// at the deadline. d <= 0 degrades to a plain Wait.
//
// The deadline is a one-shot timer Proc ordered by the engine's (time, id)
// heap like any other Proc, so runs with timeouts remain deterministic. A
// timer whose wait already ended — even if the Proc immediately re-parked
// on the same Cond — is disarmed by the park generation counter.
func (p *Proc) WaitTimeout(c *Cond, d Time) (timedOut bool) {
	if d <= 0 {
		p.Wait(c)
		return false
	}
	seq := p.waitSeq + 1 // the generation the upcoming park will have
	fired := false
	p.eng.Spawn("timeout:"+c.Name, p.time+d, func(tp *Proc) {
		if p.state != stateWaiting || p.waitSeq != seq {
			return // the wait already ended; stale timer
		}
		for i, w := range c.waiters {
			if w == p {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				fired = true
				p.wakeAt(tp.time)
				return
			}
		}
	})
	p.Wait(c)
	return fired
}

// Signal wakes the longest-waiting Proc, if any, at the caller's current
// time. It reports whether a Proc was woken.
func (p *Proc) Signal(c *Cond) bool {
	if len(c.waiters) == 0 {
		return false
	}
	w := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	w.wakeAt(p.time)
	return true
}

// Broadcast wakes every waiting Proc at the caller's current time.
func (p *Proc) Broadcast(c *Cond) {
	for _, w := range c.waiters {
		w.wakeAt(p.time)
	}
	c.waiters = c.waiters[:0]
}

// Waiters reports how many Procs are parked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Lock is a virtual-time mutex with FCFS handoff.
type Lock struct {
	held   bool
	queue  Cond
	name   string
	holder *Proc
}

// NewLock returns a named virtual-time mutex.
func NewLock(name string) *Lock {
	return &Lock{name: name, queue: Cond{Name: "lock:" + name}}
}

// Held reports whether some Proc currently holds the lock.
func (l *Lock) Held() bool { return l.held }

// Acquire blocks the Proc until the lock is free, then takes it.
func (p *Proc) Acquire(l *Lock) {
	for l.held {
		p.Wait(&l.queue)
	}
	l.held = true
	l.holder = p
}

// Release frees the lock and wakes one waiter. It panics if the caller does
// not hold the lock.
func (p *Proc) Release(l *Lock) {
	if !l.held || l.holder != p {
		panic("sim: release of lock " + l.name + " not held by " + p.name)
	}
	l.held = false
	l.holder = nil
	p.Signal(&l.queue)
}

// WaitGroup counts outstanding work in virtual time.
type WaitGroup struct {
	n    int
	cond Cond
}

// NewWaitGroup returns a wait group named for diagnostics.
func NewWaitGroup(name string) *WaitGroup {
	return &WaitGroup{cond: Cond{Name: "wg:" + name}}
}

// Add adjusts the counter. It may be called from any Proc.
func (wg *WaitGroup) Add(delta int) { wg.n += delta }

// DoneWG decrements the group and wakes waiters when it reaches zero.
func (p *Proc) DoneWG(wg *WaitGroup) {
	wg.n--
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		p.Broadcast(&wg.cond)
	}
}

// WaitWG blocks until the group's counter reaches zero.
func (p *Proc) WaitWG(wg *WaitGroup) {
	for wg.n > 0 {
		p.Wait(&wg.cond)
	}
}

// Chan is a virtual-time channel of arbitrary values with a fixed capacity.
// Capacity zero is not supported (every hardware queue we model has depth);
// use capacity one for rendezvous-like behaviour.
type Chan struct {
	name     string
	buf      []any
	capacity int
	sendq    Cond
	recvq    Cond
	closed   bool
}

// NewChan returns a channel with the given capacity (must be >= 1).
func NewChan(name string, capacity int) *Chan {
	if capacity < 1 {
		panic("sim: NewChan capacity must be >= 1")
	}
	return &Chan{
		name:     name,
		capacity: capacity,
		sendq:    Cond{Name: "send:" + name},
		recvq:    Cond{Name: "recv:" + name},
	}
}

// Len reports the number of buffered values.
func (c *Chan) Len() int { return len(c.buf) }

// Cap reports the channel capacity.
func (c *Chan) Cap() int { return c.capacity }

// Send enqueues v, blocking while the channel is full. Sending on a closed
// channel panics, as with native channels.
func (p *Proc) Send(c *Chan, v any) {
	for len(c.buf) >= c.capacity {
		if c.closed {
			panic("sim: send on closed chan " + c.name)
		}
		p.Wait(&c.sendq)
	}
	if c.closed {
		panic("sim: send on closed chan " + c.name)
	}
	c.buf = append(c.buf, v)
	p.Signal(&c.recvq)
}

// TrySend enqueues v without blocking; it reports false if the channel is
// full or closed.
func (p *Proc) TrySend(c *Chan, v any) bool {
	if c.closed || len(c.buf) >= c.capacity {
		return false
	}
	c.buf = append(c.buf, v)
	p.Signal(&c.recvq)
	return true
}

// Recv dequeues a value, blocking while the channel is empty. The second
// result is false if the channel is closed and drained.
func (p *Proc) Recv(c *Chan) (any, bool) {
	for len(c.buf) == 0 {
		if c.closed {
			return nil, false
		}
		p.Wait(&c.recvq)
	}
	v := c.buf[0]
	copy(c.buf, c.buf[1:])
	c.buf[len(c.buf)-1] = nil
	c.buf = c.buf[:len(c.buf)-1]
	p.Signal(&c.sendq)
	return v, true
}

// TryRecv dequeues without blocking; ok is false if the channel is empty.
func (p *Proc) TryRecv(c *Chan) (v any, ok bool) {
	if len(c.buf) == 0 {
		return nil, false
	}
	v = c.buf[0]
	copy(c.buf, c.buf[1:])
	c.buf[len(c.buf)-1] = nil
	c.buf = c.buf[:len(c.buf)-1]
	p.Signal(&c.sendq)
	return v, true
}

// Close marks the channel closed and wakes all blocked receivers.
func (p *Proc) Close(c *Chan) {
	if c.closed {
		panic("sim: close of closed chan " + c.name)
	}
	c.closed = true
	p.Broadcast(&c.recvq)
	p.Broadcast(&c.sendq)
}

// Closed reports whether the channel has been closed.
func (c *Chan) Closed() bool { return c.closed }
