// Package sim implements a deterministic virtual-time (discrete-event)
// execution kernel. It is the substrate on which Solros models hardware
// timing: PCIe links, DMA engines, NVMe service times, and CPU cost are all
// expressed as virtual-time charges, while the algorithms that run on top
// (ring buffers, file system, network stack) execute for real and move real
// bytes.
//
// The kernel runs each simulated activity (a Proc) on its own goroutine but
// serializes execution so that exactly one Proc runs at a time, always the
// one with the smallest virtual clock. This makes every simulation
// deterministic for a fixed set of Procs and a fixed tie-breaking order,
// regardless of the host machine's parallelism.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is a virtual-time instant or duration in nanoseconds.
type Time int64

// Handy duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateWaiting
	stateDone
)

// Proc is a simulated thread of execution. All methods must be called only
// from the Proc's own goroutine (the function passed to Engine.Spawn).
type Proc struct {
	eng    *Engine
	name   string
	id     int
	time   Time
	state  procState
	resume chan struct{}
	// heap bookkeeping
	heapIndex int
	// pri is the seeded tie-break priority, drawn fresh at every push
	// onto the run queue; 0 (insertion order) unless the engine is seeded.
	pri uint64
	// what the proc is blocked on, for deadlock diagnostics
	waitingOn string
	// waitSeq counts parks; WaitTimeout timers capture it so a timer
	// whose wait already ended (and the proc re-parked) cannot fire.
	waitSeq uint64
}

// Engine owns a set of Procs and executes them in virtual-time order.
// The zero value is not usable; use NewEngine.
type Engine struct {
	procs   []*Proc
	ready   procHeap
	yielded chan struct{}
	nextID  int
	live    int
	now     Time
	started bool
	tracer  Tracer

	// Seeded tie-break state (see seed.go). Zero values = off.
	seeded      bool
	rngState    uint64
	schedBudget int64
	schedDraws  int64
	// Trace digest of every dispatch decision; 0 means "nothing folded
	// in yet" and reads as the FNV offset basis.
	digest    uint64
	ndispatch int64
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{yielded: make(chan struct{})}
}

// Now reports the engine's current virtual time: the clock of the most
// recently dispatched Proc. It is safe to call between Run invocations.
func (e *Engine) Now() Time { return e.now }

// Spawn creates a Proc named name running fn, starting at virtual time at.
// Spawn may be called before Run or from inside a running Proc; in the
// latter case the child starts no earlier than the parent's current time.
func (e *Engine) Spawn(name string, at Time, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		id:     e.nextID,
		time:   at,
		state:  stateRunnable,
		resume: make(chan struct{}),
	}
	e.nextID++
	e.live++
	e.procs = append(e.procs, p)
	e.push(p)
	e.emit(EvSpawn, at, name, "")
	go func() {
		// The handoff back to the engine runs in a defer so that a Proc
		// that exits abnormally (runtime.Goexit from t.Fatal, or a
		// panic that is re-raised after the handoff) cannot wedge the
		// engine.
		defer func() {
			p.state = stateDone
			p.eng.live--
			p.eng.yielded <- struct{}{}
		}()
		<-p.resume
		fn(p)
	}()
	return p
}

// ErrDeadlock is returned by Run when no Proc is runnable but some are
// still blocked; Procs lists the stuck Procs and what they wait on.
type ErrDeadlock struct {
	Procs []string
}

func (e *ErrDeadlock) Error() string {
	return "sim: deadlock; blocked procs: " + strings.Join(e.Procs, ", ")
}

// Run executes all Procs until every one has finished. It returns an
// *ErrDeadlock if Procs remain blocked with nothing runnable.
func (e *Engine) Run() error {
	for {
		if e.ready.Len() == 0 {
			if e.live == 0 {
				return nil
			}
			var stuck []string
			for _, p := range e.procs {
				if p.state == stateWaiting {
					stuck = append(stuck, p.name+" ("+p.waitingOn+")")
				}
			}
			sort.Strings(stuck)
			return &ErrDeadlock{Procs: stuck}
		}
		p := heap.Pop(&e.ready).(*Proc)
		p.state = stateRunning
		if p.time > e.now {
			e.now = p.time
		}
		e.ndispatch++
		e.note(p.name, p.time)
		e.emit(EvDispatch, p.time, p.name, "")
		p.resume <- struct{}{}
		<-e.yielded
		if p.state == stateDone {
			e.emit(EvDone, p.time, p.name, "")
		}
	}
}

// MustRun is Run but panics on deadlock; for tests and examples.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}

// Name reports the Proc's name, for diagnostics.
func (p *Proc) Name() string { return p.name }

// Now reports the Proc's virtual clock.
func (p *Proc) Now() Time { return p.time }

// yield hands control back to the engine. The Proc must already have been
// re-queued (runnable) or parked (waiting).
func (p *Proc) yield() {
	p.eng.yielded <- struct{}{}
	<-p.resume
	p.state = stateRunning
}

// Advance moves the Proc's clock forward by d (clamped at zero) and yields
// so that other Procs with earlier clocks can run.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		d = 0
	}
	p.time += d
	p.requeue()
	p.yield()
}

// AdvanceTo moves the Proc's clock to at least t and yields. It never moves
// the clock backwards.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.time {
		p.time = t
	}
	p.requeue()
	p.yield()
}

// Spawn starts a child Proc at the parent's current time.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.eng.Spawn(name, p.time, fn)
}

func (p *Proc) requeue() {
	p.state = stateRunnable
	p.eng.push(p)
}

// push draws the Proc's tie-break priority and enqueues it runnable.
func (e *Engine) push(p *Proc) {
	p.pri = e.drawPri()
	heap.Push(&e.ready, p)
}

// park blocks the Proc outside the run queue until some other Proc wakes it.
func (p *Proc) park(what string) {
	p.state = stateWaiting
	p.waitSeq++
	p.waitingOn = what
	p.eng.emit(EvBlock, p.time, p.name, what)
	p.yield()
	p.waitingOn = ""
}

// wakeAt makes a parked Proc runnable at time at (never moving its clock
// backwards). Must be called by the currently running Proc.
func (p *Proc) wakeAt(at Time) {
	if p.state != stateWaiting {
		panic("sim: wake of non-waiting proc " + p.name)
	}
	if at > p.time {
		p.time = at
	}
	p.eng.emit(EvWake, p.time, p.name, p.waitingOn)
	p.requeue()
}

// procHeap orders Procs by (time, pri, id) so scheduling is deterministic:
// pri is 0 for every Proc unless the seeded tie-break policy is armed.
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].id < h[j].id
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *procHeap) Push(x any) {
	p := x.(*Proc)
	p.heapIndex = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
