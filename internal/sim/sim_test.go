package sim

import (
	"testing"
	"testing/quick"
)

func TestAdvanceOrdersProcs(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("slow", 0, func(p *Proc) {
		p.Advance(100)
		order = append(order, "slow")
	})
	e.Spawn("fast", 0, func(p *Proc) {
		p.Advance(10)
		order = append(order, "fast")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("order = %v, want [fast slow]", order)
	}
}

func TestAdvanceNegativeClamped(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 5, func(p *Proc) {
		p.Advance(-10)
		if p.Now() != 5 {
			t.Errorf("Now = %v, want 5", p.Now())
		}
	})
	e.MustRun()
}

func TestAdvanceToNeverBackwards(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(p *Proc) {
		p.Advance(50)
		p.AdvanceTo(10)
		if p.Now() != 50 {
			t.Errorf("Now = %v, want 50", p.Now())
		}
		p.AdvanceTo(80)
		if p.Now() != 80 {
			t.Errorf("Now = %v, want 80", p.Now())
		}
	})
	e.MustRun()
}

func TestEngineNowTracksDispatch(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(p *Proc) { p.Advance(123) })
	e.MustRun()
	if e.Now() != 123 {
		t.Fatalf("engine Now = %v, want 123", e.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource("link", 1000, 0) // 1000 B/s -> 1 B per ms
	var done [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("u", 0, func(p *Proc) {
			p.Use(r, 1000) // 1 second of service
			done[i] = p.Now()
		})
	}
	e.MustRun()
	// One finishes at 1s, the other queues behind it and finishes at 2s.
	lo, hi := done[0], done[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != Second || hi != 2*Second {
		t.Fatalf("completion times = %v, %v; want 1s, 2s", lo, hi)
	}
}

func TestResourceLatencyOnly(t *testing.T) {
	e := NewEngine()
	r := NewResource("door", 0, 5*Microsecond)
	e.Spawn("p", 0, func(p *Proc) {
		p.Use(r, 1<<20)
		if p.Now() != 5*Microsecond {
			t.Errorf("Now = %v, want 5us (rate 0 means no per-byte cost)", p.Now())
		}
	})
	e.MustRun()
}

func TestResourceStatsAndReset(t *testing.T) {
	e := NewEngine()
	r := NewResource("r", 1<<20, Microsecond)
	e.Spawn("p", 0, func(p *Proc) {
		p.Use(r, 100)
		p.Use(r, 200)
	})
	e.MustRun()
	b, n, busy := r.Stats()
	if b != 300 || n != 2 || busy <= 0 {
		t.Fatalf("stats = %d bytes, %d reqs, %v busy", b, n, busy)
	}
	r.Reset()
	b, n, busy = r.Stats()
	if b != 0 || n != 0 || busy != 0 {
		t.Fatalf("after reset: %d bytes, %d reqs, %v busy", b, n, busy)
	}
}

func TestUseAsyncDoesNotBlockCaller(t *testing.T) {
	e := NewEngine()
	r := NewResource("ssd", 1000, 0)
	e.Spawn("p", 0, func(p *Proc) {
		done := p.UseAsync(r, 1000)
		if p.Now() != 0 {
			t.Errorf("caller advanced to %v, want 0", p.Now())
		}
		if done != Second {
			t.Errorf("async completion = %v, want 1s", done)
		}
	})
	e.MustRun()
}

func TestCondSignalWakesInFIFOOrder(t *testing.T) {
	e := NewEngine()
	c := NewCond("c")
	var woke []string
	for _, name := range []string{"a", "b"} {
		name := name
		e.Spawn(name, 0, func(p *Proc) {
			p.Wait(c)
			woke = append(woke, name)
		})
	}
	e.Spawn("waker", 10, func(p *Proc) {
		p.Signal(c)
		p.Advance(1)
		p.Signal(c)
	})
	e.MustRun()
	if len(woke) != 2 || woke[0] != "a" || woke[1] != "b" {
		t.Fatalf("wake order = %v, want [a b]", woke)
	}
}

func TestWaiterClockAdvancesToWaker(t *testing.T) {
	e := NewEngine()
	c := NewCond("c")
	e.Spawn("waiter", 0, func(p *Proc) {
		p.Wait(c)
		if p.Now() != 42 {
			t.Errorf("waiter woke at %v, want 42", p.Now())
		}
	})
	e.Spawn("waker", 42, func(p *Proc) { p.Signal(c) })
	e.MustRun()
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	c := NewCond("never")
	e.Spawn("stuck", 0, func(p *Proc) { p.Wait(c) })
	err := e.Run()
	dl, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want *ErrDeadlock", err)
	}
	if len(dl.Procs) != 1 {
		t.Fatalf("stuck procs = %v, want 1 entry", dl.Procs)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	e := NewEngine()
	l := NewLock("l")
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Spawn("p", 0, func(p *Proc) {
			p.Acquire(l)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Advance(10)
			inside--
			p.Release(l)
		})
	}
	e.MustRun()
	if maxInside != 1 {
		t.Fatalf("max procs inside critical section = %d, want 1", maxInside)
	}
}

func TestReleaseByNonHolderPanics(t *testing.T) {
	e := NewEngine()
	l := NewLock("l")
	e.Spawn("p", 0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("release of unheld lock did not panic")
			}
		}()
		p.Release(l)
	})
	e.MustRun()
}

func TestChanFIFOAndBlocking(t *testing.T) {
	e := NewEngine()
	c := NewChan("c", 2)
	var got []int
	e.Spawn("producer", 0, func(p *Proc) {
		for i := 1; i <= 5; i++ {
			p.Send(c, i)
			p.Advance(1)
		}
		p.Close(c)
	})
	e.Spawn("consumer", 0, func(p *Proc) {
		for {
			v, ok := p.Recv(c)
			if !ok {
				return
			}
			got = append(got, v.(int))
			p.Advance(3)
		}
	})
	e.MustRun()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i+1)
		}
	}
	if len(got) != 5 {
		t.Fatalf("received %d values, want 5", len(got))
	}
}

func TestChanTryOps(t *testing.T) {
	e := NewEngine()
	c := NewChan("c", 1)
	e.Spawn("p", 0, func(p *Proc) {
		if _, ok := p.TryRecv(c); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		if !p.TrySend(c, 7) {
			t.Error("TrySend on empty chan failed")
		}
		if p.TrySend(c, 8) {
			t.Error("TrySend on full chan succeeded")
		}
		v, ok := p.TryRecv(c)
		if !ok || v.(int) != 7 {
			t.Errorf("TryRecv = %v, %v; want 7, true", v, ok)
		}
	})
	e.MustRun()
}

func TestChanRecvAfterClose(t *testing.T) {
	e := NewEngine()
	c := NewChan("c", 4)
	e.Spawn("p", 0, func(p *Proc) {
		p.Send(c, "x")
		p.Close(c)
		v, ok := p.Recv(c)
		if !ok || v.(string) != "x" {
			t.Errorf("Recv after close = %v, %v; want x, true", v, ok)
		}
		if _, ok := p.Recv(c); ok {
			t.Error("Recv on drained closed chan reported ok")
		}
	})
	e.MustRun()
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup("wg")
	wg.Add(3)
	finish := Time(0)
	for i := 1; i <= 3; i++ {
		d := Time(i * 100)
		e.Spawn("worker", 0, func(p *Proc) {
			p.Advance(d)
			p.DoneWG(wg)
		})
	}
	e.Spawn("waiter", 0, func(p *Proc) {
		p.WaitWG(wg)
		finish = p.Now()
	})
	e.MustRun()
	if finish != 300 {
		t.Fatalf("waiter finished at %v, want 300 (slowest worker)", finish)
	}
}

func TestSpawnFromProcInheritsTime(t *testing.T) {
	e := NewEngine()
	childStart := Time(-1)
	e.Spawn("parent", 0, func(p *Proc) {
		p.Advance(77)
		p.Spawn("child", func(c *Proc) { childStart = c.Now() })
	})
	e.MustRun()
	if childStart != 77 {
		t.Fatalf("child started at %v, want 77", childStart)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		r := NewResource("r", 1<<20, 3*Microsecond)
		l := NewLock("l")
		var ends []Time
		for i := 0; i < 8; i++ {
			n := int64(64 << uint(i%4))
			e.Spawn("w", 0, func(p *Proc) {
				p.Acquire(l)
				p.Use(r, n)
				p.Release(l)
				ends = append(ends, p.Now())
			})
		}
		e.MustRun()
		return ends
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:               "5ns",
		3 * Microsecond: "3.000us",
		2 * Millisecond: "2.000ms",
		Second:          "1.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

// Property: for any request sizes, a resource's completion times are
// strictly ordered and total busy time equals the sum of service times.
func TestResourceConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		e := NewEngine()
		r := NewResource("r", 4096, Microsecond)
		var want Time
		for _, s := range sizes {
			want += r.ServiceTime(int64(s))
		}
		var last Time
		monotone := true
		e.Spawn("p", 0, func(p *Proc) {
			for _, s := range sizes {
				p.Use(r, int64(s))
				if p.Now() <= last {
					monotone = false
				}
				last = p.Now()
			}
		})
		e.MustRun()
		_, _, busy := r.Stats()
		return monotone && busy == want && last == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSeesLifecycle(t *testing.T) {
	e := NewEngine()
	rec := NewRecorder(100)
	e.SetTracer(rec.Trace)
	c := NewCond("gate")
	e.Spawn("waiter", 0, func(p *Proc) { p.Wait(c) })
	e.Spawn("waker", 5, func(p *Proc) {
		p.Advance(1)
		p.Signal(c)
	})
	e.MustRun()
	kinds := map[EventKind]bool{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind] = true
	}
	for _, want := range []EventKind{EvSpawn, EvDispatch, EvBlock, EvWake, EvDone} {
		if !kinds[want] {
			t.Errorf("no %v event recorded", want)
		}
	}
	if rec.Dispatches("waker") == 0 {
		t.Error("waker dispatch count zero")
	}
	if hot, n := rec.HottestBlocker(); hot != "gate" || n != 1 {
		t.Errorf("hottest blocker = %q x%d, want gate x1", hot, n)
	}
}

func TestRecorderBounded(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Trace(Event{Kind: EvDispatch, Proc: "p"})
	}
	if len(rec.Events()) != 4 {
		t.Fatalf("retained %d events, want 4", len(rec.Events()))
	}
	if rec.Dispatches("p") != 10 {
		t.Fatalf("dispatch count = %d, want 10 (aggregates unbounded)", rec.Dispatches("p"))
	}
}
