package sim

import (
	"strings"
	"testing"
)

// runTieBreakRace runs three procs that all become runnable at the same
// timestamps and records the dispatch order.
func runTieBreakRace(seed int64, budget int64) (order []string, digest uint64) {
	e := NewEngine()
	if seed != 0 {
		e.SetSchedSeed(seed)
		e.SetSchedBudget(budget)
	}
	for _, name := range []string{"a", "b", "c"} {
		e.Spawn(name, 0, func(p *Proc) {
			for i := 0; i < 10; i++ {
				order = append(order, p.Name())
				p.Advance(Microsecond) // everyone lands on the same tick
			}
		})
	}
	e.MustRun()
	return order, e.TraceDigest()
}

func TestUnseededMatchesInsertionOrder(t *testing.T) {
	order, _ := runTieBreakRace(0, 0)
	for i := 0; i < len(order); i += 3 {
		if order[i] != "a" || order[i+1] != "b" || order[i+2] != "c" {
			t.Fatalf("unseeded tie-break not insertion order at round %d: %v", i/3, order[i:i+3])
		}
	}
}

func TestSeededTieBreakIsDeterministicAndVaries(t *testing.T) {
	o1, d1 := runTieBreakRace(7, 0)
	o2, d2 := runTieBreakRace(7, 0)
	if strings.Join(o1, "") != strings.Join(o2, "") {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", o1, o2)
	}
	if d1 != d2 {
		t.Fatalf("same seed produced different digests: %x vs %x", d1, d2)
	}
	// Some seed in a small range must deviate from insertion order, or the
	// policy is inert.
	base, baseDigest := runTieBreakRace(0, 0)
	varied := false
	for seed := int64(1); seed <= 20; seed++ {
		o, d := runTieBreakRace(seed, 0)
		if strings.Join(o, "") != strings.Join(base, "") || d != baseDigest {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("20 seeds all reproduced the insertion-order schedule")
	}
}

func TestSchedBudgetBoundsDraws(t *testing.T) {
	e := NewEngine()
	e.SetSchedSeed(3)
	e.SetSchedBudget(5)
	for _, name := range []string{"x", "y"} {
		e.Spawn(name, 0, func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Advance(Microsecond)
			}
		})
	}
	e.MustRun()
	if e.SchedDraws() != 5 {
		t.Fatalf("budget 5 but %d draws", e.SchedDraws())
	}
	// Identical (seed, budget) pairs replay identically.
	_, d1 := runTieBreakRace(11, 3)
	_, d2 := runTieBreakRace(11, 3)
	if d1 != d2 {
		t.Fatalf("same (seed, budget) produced different digests")
	}
}

func TestTraceDigestDistinguishesSchedules(t *testing.T) {
	// The digest must reflect scheduling decisions, not just proc names:
	// two different seeds that order the same procs differently must
	// (almost surely) differ.
	_, d0 := runTieBreakRace(0, 0)
	distinct := map[uint64]bool{d0: true}
	for seed := int64(1); seed <= 8; seed++ {
		_, d := runTieBreakRace(seed, 0)
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Fatal("9 schedules produced a single digest")
	}
}

// TestDeadlockNamesEveryParkedProc pins down the diagnostic contract under
// the seeded policy: the ErrDeadlock message names every parked proc and
// what it waits on, regardless of the tie-break order that got them there.
func TestDeadlockNamesEveryParkedProc(t *testing.T) {
	for _, seed := range []int64{0, 1, 2, 3} {
		e := NewEngine()
		if seed != 0 {
			e.SetSchedSeed(seed)
		}
		never := NewCond("never")
		also := NewCond("also-never")
		e.Spawn("alpha", 0, func(p *Proc) { p.Wait(never) })
		e.Spawn("beta", 0, func(p *Proc) { p.Wait(also) })
		e.Spawn("gamma", 0, func(p *Proc) { p.Wait(never) })
		err := e.Run()
		de, ok := err.(*ErrDeadlock)
		if !ok {
			t.Fatalf("seed %d: expected deadlock, got %v", seed, err)
		}
		if len(de.Procs) != 3 {
			t.Fatalf("seed %d: deadlock names %d procs, want 3: %v", seed, len(de.Procs), de.Procs)
		}
		for _, want := range []string{"alpha (never)", "beta (also-never)", "gamma (never)"} {
			found := false
			for _, got := range de.Procs {
				if got == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d: deadlock report %v missing %q", seed, de.Procs, want)
			}
		}
		if !strings.Contains(de.Error(), "alpha (never)") {
			t.Fatalf("seed %d: Error() lost proc detail: %s", seed, de.Error())
		}
	}
}

// TestWaitTimeoutGenerationGuardUnderSeeds re-runs the stale-timer
// scenario across many seeds: a proc whose wait is signalled and which
// immediately re-parks on the same cond must never be woken by the earlier
// wait's expired timer, no matter how ties break.
func TestWaitTimeoutGenerationGuardUnderSeeds(t *testing.T) {
	for seed := int64(0); seed <= 50; seed++ {
		e := NewEngine()
		if seed != 0 {
			e.SetSchedSeed(seed)
		}
		c := NewCond("c")
		var firstTimedOut, secondTimedOut bool
		var secondWoken Time
		e.Spawn("waiter", 0, func(p *Proc) {
			firstTimedOut = p.WaitTimeout(c, 100*Microsecond)
			// Re-park immediately on the same cond; the first wait's timer
			// (due at t=100us) is still pending in the engine.
			secondTimedOut = p.WaitTimeout(c, 500*Microsecond)
			secondWoken = p.Now()
		})
		e.Spawn("signaller", 0, func(p *Proc) {
			p.Advance(10 * Microsecond)
			p.Signal(c) // ends the first wait early
			// Nobody signals the second wait; only its own timer may.
		})
		e.MustRun()
		if firstTimedOut {
			t.Fatalf("seed %d: first wait timed out despite early signal", seed)
		}
		if !secondTimedOut {
			t.Fatalf("seed %d: second wait ended without timeout — stale timer fired", seed)
		}
		if secondWoken != 510*Microsecond {
			t.Fatalf("seed %d: second wait ended at %v, want 510us", seed, secondWoken)
		}
	}
}
