package sim

import (
	"fmt"
	"strings"
)

// EventKind classifies trace events.
type EventKind int

// Trace event kinds.
const (
	EvSpawn EventKind = iota
	EvDispatch
	EvBlock
	EvWake
	EvDone
)

func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvDispatch:
		return "dispatch"
	case EvBlock:
		return "block"
	case EvWake:
		return "wake"
	case EvDone:
		return "done"
	}
	return "?"
}

// Event is one scheduler occurrence.
type Event struct {
	Kind EventKind
	Time Time
	Proc string
	// What names the blocking object for EvBlock/EvWake.
	What string
}

// Tracer receives scheduler events when installed via SetTracer. Keep it
// cheap: it runs on every dispatch.
type Tracer func(Event)

// SetTracer installs (or with nil removes) the engine's tracer.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

func (e *Engine) emit(kind EventKind, at Time, proc, what string) {
	if e.tracer != nil {
		e.tracer(Event{Kind: kind, Time: at, Proc: proc, What: what})
	}
}

// Recorder is a bounded in-memory tracer for tests and debugging: it keeps
// the last Cap events and aggregate per-proc dispatch counts. The window is
// a ring: once full, each new event overwrites the oldest in O(1) rather
// than shifting the whole slice, so tracing long runs stays cheap.
type Recorder struct {
	Cap       int
	events    []Event // ring storage; logical order starts at `next` once full
	next      int     // write index when the ring is full
	dispatch  map[string]int
	blockedOn map[string]int
}

// NewRecorder returns a Recorder keeping at most capEvents events.
func NewRecorder(capEvents int) *Recorder {
	return &Recorder{
		Cap:       capEvents,
		dispatch:  make(map[string]int),
		blockedOn: make(map[string]int),
	}
}

// Trace is the Tracer to install.
func (r *Recorder) Trace(ev Event) {
	if r.Cap > 0 && len(r.events) >= r.Cap {
		r.events[r.next] = ev
		r.next++
		if r.next == len(r.events) {
			r.next = 0
		}
	} else {
		r.events = append(r.events, ev)
	}
	switch ev.Kind {
	case EvDispatch:
		r.dispatch[ev.Proc]++
	case EvBlock:
		r.blockedOn[ev.What]++
	}
}

// Events returns the retained window in arrival order (oldest first).
func (r *Recorder) Events() []Event {
	if r.next == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	return append(out, r.events[:r.next]...)
}

// Dispatches reports how often the named proc ran.
func (r *Recorder) Dispatches(proc string) int { return r.dispatch[proc] }

// HottestBlocker reports the most contended wait object and its count —
// the first thing to look at when a simulation is slower than expected.
// Ties break toward the lexicographically smallest name so the answer is
// deterministic across runs.
func (r *Recorder) HottestBlocker() (string, int) {
	best, n := "", 0
	for k, c := range r.blockedOn {
		if c > n || (c == n && c > 0 && k < best) {
			best, n = k, c
		}
	}
	return best, n
}

// Summary renders a short digest of scheduler activity.
func (r *Recorder) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events retained: %d\n", len(r.events))
	hot, n := r.HottestBlocker()
	if n > 0 {
		fmt.Fprintf(&b, "hottest blocker: %s (%d blocks)\n", hot, n)
	}
	return b.String()
}
