package sim

// This file implements the schedule-exploration hooks of the kernel: a
// seeded tie-break policy that randomizes the order of Procs runnable at
// the same virtual timestamp, and an FNV-1a digest of every dispatch
// decision so that a (seed, budget) pair replays byte-identically.
//
// Default off: without SetSchedSeed the tie-break is insertion order
// (time, then spawn id), exactly the historical behavior, so every
// reproduced figure is untouched. With a seed armed, each push onto the
// run queue draws a fresh priority from a splitmix64 stream; the heap
// orders by (time, priority, id). Because the engine serializes all Procs,
// the k-th draw is a pure function of the seed and the workload, never of
// host scheduling — the same determinism argument internal/faults makes
// for its injection streams.

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// splitmix64 advances *s and returns the next value of the stream. It is
// the same generator used for per-site fault streams: tiny, fast, and
// fully specified, so seeds replay across Go versions.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SetSchedSeed arms the seeded tie-break policy: Procs runnable at the
// same virtual time are ordered by a per-push random priority drawn from a
// splitmix64 stream seeded here, instead of by spawn order. Call it before
// Run; arming mid-run only affects pushes from that point on.
func (e *Engine) SetSchedSeed(seed int64) {
	e.seeded = true
	e.rngState = uint64(seed)
	// Warm the stream so small adjacent seeds do not share a prefix.
	splitmix64(&e.rngState)
}

// SetSchedBudget bounds how many random tie-break draws the seeded policy
// makes before reverting to deterministic insertion order (0 = unlimited).
// The explorer's shrinker uses this to find the shortest randomized prefix
// that still reproduces a failure.
func (e *Engine) SetSchedBudget(n int64) { e.schedBudget = n }

// SchedDraws reports how many random tie-break draws the engine has made.
func (e *Engine) SchedDraws() int64 { return e.schedDraws }

// drawPri returns the priority for a Proc being pushed onto the run queue:
// zero (insertion order) when unseeded or past the budget, random otherwise.
func (e *Engine) drawPri() uint64 {
	if !e.seeded {
		return 0
	}
	if e.schedBudget > 0 && e.schedDraws >= e.schedBudget {
		return 0
	}
	e.schedDraws++
	return splitmix64(&e.rngState)
}

// TraceDigest reports the FNV-1a digest of every dispatch decision so far:
// each dispatched Proc's name and virtual clock, in dispatch order. Two
// runs of the same workload agree on the digest iff the scheduler made the
// same decisions, which is what "-replay reproduces the trace" means.
func (e *Engine) TraceDigest() uint64 {
	if e.digest == 0 {
		return fnvOffset
	}
	return e.digest
}

// Dispatches reports how many Procs have been dispatched.
func (e *Engine) Dispatches() int64 { return e.ndispatch }

// note folds one dispatch decision into the trace digest.
func (e *Engine) note(name string, t Time) {
	d := e.digest
	if d == 0 {
		d = fnvOffset
	}
	for i := 0; i < len(name); i++ {
		d = (d ^ uint64(name[i])) * fnvPrime
	}
	u := uint64(t)
	for i := 0; i < 8; i++ {
		d = (d ^ (u & 0xff)) * fnvPrime
		u >>= 8
	}
	e.digest = d
}
