package sim

import "testing"

func TestWaitTimeoutFires(t *testing.T) {
	e := NewEngine()
	c := NewCond("never")
	e.Spawn("waiter", 0, func(p *Proc) {
		if !p.WaitTimeout(c, 100*Microsecond) {
			t.Error("wait on a never-signaled cond did not time out")
		}
		if p.Now() != 100*Microsecond {
			t.Errorf("woke at %v, want 100us", p.Now())
		}
	})
	e.MustRun()
}

func TestWaitTimeoutSignaledEarly(t *testing.T) {
	e := NewEngine()
	c := NewCond("early")
	e.Spawn("signaler", 50*Microsecond, func(p *Proc) { p.Signal(c) })
	e.Spawn("waiter", 0, func(p *Proc) {
		if p.WaitTimeout(c, 100*Microsecond) {
			t.Error("signaled wait reported a timeout")
		}
		if p.Now() != 50*Microsecond {
			t.Errorf("woke at %v, want 50us", p.Now())
		}
	})
	e.MustRun()
}

func TestWaitTimeoutStaleTimerDoesNotFire(t *testing.T) {
	// A waiter signaled before its deadline immediately re-parks on the
	// same cond; the disarmed first timer (due at 100us) must not wake
	// the second wait, which should sleep until its own 300us deadline.
	e := NewEngine()
	c := NewCond("reused")
	e.Spawn("signaler", 40*Microsecond, func(p *Proc) { p.Signal(c) })
	e.Spawn("waiter", 0, func(p *Proc) {
		if p.WaitTimeout(c, 100*Microsecond) {
			t.Error("first wait timed out despite the 40us signal")
		}
		if p.WaitTimeout(c, 260*Microsecond) {
			if p.Now() != 300*Microsecond {
				t.Errorf("second wait ended at %v, want its own 300us deadline", p.Now())
			}
		} else {
			t.Error("second wait was woken with no signaler left")
		}
	})
	e.MustRun()
}

func TestWaitTimeoutZeroIsPlainWait(t *testing.T) {
	e := NewEngine()
	c := NewCond("plain")
	e.Spawn("signaler", 70*Microsecond, func(p *Proc) { p.Signal(c) })
	e.Spawn("waiter", 0, func(p *Proc) {
		if p.WaitTimeout(c, 0) {
			t.Error("zero deadline reported a timeout")
		}
		if p.Now() != 70*Microsecond {
			t.Errorf("woke at %v, want 70us", p.Now())
		}
	})
	e.MustRun()
}
