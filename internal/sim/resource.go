package sim

import "fmt"

// Resource models a serially shared piece of hardware with a fixed service
// rate: a PCIe link, a DMA engine, an SSD's flash backend, a NIC port.
// Requests queue FCFS; a request for n bytes issued at time t completes at
//
//	max(t, busyUntil) + Latency + n/Rate
//
// Because the engine always runs the Proc with the smallest clock, updating
// busyUntil eagerly at request time yields the same schedule as a full
// event-driven server model.
type Resource struct {
	// Name identifies the resource in traces and accounting.
	Name string
	// Rate is the service rate in bytes per second. Zero means the
	// resource has no per-byte cost (pure latency).
	Rate int64
	// Latency is the fixed per-request overhead.
	Latency Time

	busyUntil Time
	// accounting
	bytes    int64
	requests int64
	busyTime Time
}

// NewResource returns a resource with the given service rate (bytes/sec)
// and per-request latency.
func NewResource(name string, rate int64, latency Time) *Resource {
	return &Resource{Name: name, Rate: rate, Latency: latency}
}

// ServiceTime reports how long the resource takes to serve n bytes,
// excluding queueing.
func (r *Resource) ServiceTime(n int64) Time {
	d := r.Latency
	if r.Rate > 0 {
		d += Time(n * int64(Second) / r.Rate)
	}
	return d
}

// Use charges the calling Proc a request for n bytes: the Proc's clock
// advances past queueing and service, and the Proc yields.
func (p *Proc) Use(r *Resource, n int64) {
	done := r.admit(p.time, n)
	p.time = done
	p.requeue()
	p.yield()
}

// UseAsync reserves service for n bytes without blocking the Proc: the
// request occupies the resource, and the returned time is when it
// completes. This models a hardware engine working in the background (e.g.
// an SSD prefetching into a cache while the CPU moves on).
func (p *Proc) UseAsync(r *Resource, n int64) Time {
	return r.admit(p.time, n)
}

// UsePipelined charges service for n bytes where the resource's fixed
// Latency is pipelined rather than occupying the server: the request's
// completion includes the latency, but back-to-back requests overlap it
// (e.g. NAND access latency behind a deep NVMe queue).
func (p *Proc) UsePipelined(r *Resource, n int64) {
	start := p.time
	if r.busyUntil > start {
		start = r.busyUntil
	}
	var d Time
	if r.Rate > 0 {
		d = Time(n * int64(Second) / r.Rate)
	}
	r.busyUntil = start + d
	r.bytes += n
	r.requests++
	r.busyTime += d
	p.time = start + d + r.Latency
	p.requeue()
	p.yield()
}

// UseAsyncPipelined reserves service like UseAsync but treats the fixed
// Latency as pipelined: it occupies the server only for the per-byte
// transfer, while the returned completion time still includes the latency.
func (p *Proc) UseAsyncPipelined(r *Resource, n int64) Time {
	start := p.time
	if r.busyUntil > start {
		start = r.busyUntil
	}
	var d Time
	if r.Rate > 0 {
		d = Time(n * int64(Second) / r.Rate)
	}
	r.busyUntil = start + d
	r.bytes += n
	r.requests++
	r.busyTime += d
	return start + d + r.Latency
}

func (r *Resource) admit(now Time, n int64) Time {
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	d := r.ServiceTime(n)
	done := start + d
	r.busyUntil = done
	r.bytes += n
	r.requests++
	r.busyTime += d
	return done
}

// Stats reports cumulative bytes served, request count, and busy time.
func (r *Resource) Stats() (bytes, requests int64, busy Time) {
	return r.bytes, r.requests, r.busyTime
}

// Reset clears accounting and the queue; for reusing a topology across
// benchmark iterations.
func (r *Resource) Reset() {
	r.busyUntil = 0
	r.bytes = 0
	r.requests = 0
	r.busyTime = 0
}

func (r *Resource) String() string {
	return fmt.Sprintf("%s(rate=%d B/s, lat=%v)", r.Name, r.Rate, r.Latency)
}
