package sim

import "testing"

func BenchmarkAdvance(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	e.MustRun()
}

func BenchmarkContextSwitchTwoProcs(b *testing.B) {
	e := NewEngine()
	for k := 0; k < 2; k++ {
		e.Spawn("p", 0, func(p *Proc) {
			for i := 0; i < b.N/2; i++ {
				p.Advance(1)
			}
		})
	}
	e.MustRun()
}

func BenchmarkResourceUse(b *testing.B) {
	e := NewEngine()
	r := NewResource("r", 1<<30, 0)
	e.Spawn("p", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Use(r, 64)
		}
	})
	e.MustRun()
}

func BenchmarkChanSendRecv(b *testing.B) {
	e := NewEngine()
	c := NewChan("c", 64)
	e.Spawn("producer", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Send(c, i)
		}
		p.Close(c)
	})
	e.Spawn("consumer", 0, func(p *Proc) {
		for {
			if _, ok := p.Recv(c); !ok {
				return
			}
		}
	})
	e.MustRun()
}
