// Package cpu models the two processor classes of the Solros testbed: fat,
// fast host cores (Xeon E5-2670 v3) and lean, slow, massively parallel
// co-processor cores (Xeon Phi). The model's single job is to charge a
// piece of code its relative cost on the core type it runs on — the paper's
// central claim is that branchy I/O-stack code belongs on fast cores while
// data-parallel compute belongs on the many lean cores.
package cpu

import (
	"solros/internal/model"
	"solros/internal/sim"
)

// Kind identifies a processor class.
type Kind int

const (
	// Host is a fat out-of-order server core.
	Host Kind = iota
	// Phi is a lean in-order co-processor core.
	Phi
)

func (k Kind) String() string {
	if k == Host {
		return "host"
	}
	return "phi"
}

// SystemsSlowdown reports the multiplier for control-flow divergent
// systems code (file systems, network protocol stacks) on this core kind.
func (k Kind) SystemsSlowdown() int64 {
	if k == Phi {
		return model.PhiSystemsSlowdown
	}
	return 1
}

// ComputeSlowdown reports the multiplier for data-parallel application
// compute on this core kind.
func (k Kind) ComputeSlowdown() int64 {
	if k == Phi {
		return model.PhiComputeSlowdown
	}
	return 1
}

// Core is one hardware thread of a given kind. Experiments bind each
// simulated software thread to its own Core, matching the paper's setup
// (it never oversubscribes hardware threads).
type Core struct {
	Kind Kind
	// ID is the hardware thread index within its processor.
	ID int
}

// Systems charges the Proc d of systems-code work scaled by the core's
// systems slowdown.
func (c *Core) Systems(p *sim.Proc, d sim.Time) {
	p.Advance(d * sim.Time(c.Kind.SystemsSlowdown()))
}

// Compute charges the Proc d of data-parallel compute scaled by the core's
// compute slowdown.
func (c *Core) Compute(p *sim.Proc, d sim.Time) {
	p.Advance(d * sim.Time(c.Kind.ComputeSlowdown()))
}

// TouchBytes charges per-byte processing (copies, checksums, parsing) at
// psPerByte picoseconds per byte on a host core, scaled by the systems
// slowdown.
func (c *Core) TouchBytes(p *sim.Proc, n int64, psPerByte int64) {
	ns := n * psPerByte / 1000
	p.Advance(sim.Time(ns) * sim.Time(c.Kind.SystemsSlowdown()))
}

// Pool is a set of cores of one kind.
type Pool struct {
	Kind  Kind
	cores []*Core
}

// NewPool creates n cores of the given kind.
func NewPool(kind Kind, n int) *Pool {
	p := &Pool{Kind: kind}
	for i := 0; i < n; i++ {
		p.cores = append(p.cores, &Core{Kind: kind, ID: i})
	}
	return p
}

// Size reports the number of cores in the pool.
func (p *Pool) Size() int { return len(p.cores) }

// Core returns hardware thread i (modulo pool size, so callers may spawn
// more workers than cores when modelling SMT oversubscription).
func (p *Pool) Core(i int) *Core { return p.cores[i%len(p.cores)] }

// HostPool returns the paper's host: 2 sockets x 24 cores.
func HostPool() *Pool {
	return NewPool(Host, model.HostSockets*model.HostCoresPerSocket)
}

// PhiPool returns one Xeon Phi: 61 cores (244 hardware threads reachable
// via modulo indexing).
func PhiPool() *Pool { return NewPool(Phi, model.PhiCores) }
