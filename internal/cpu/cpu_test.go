package cpu

import (
	"testing"

	"solros/internal/model"
	"solros/internal/sim"
)

func TestKindStrings(t *testing.T) {
	if Host.String() != "host" || Phi.String() != "phi" {
		t.Fatal("kind names wrong")
	}
}

func TestSlowdowns(t *testing.T) {
	if Host.SystemsSlowdown() != 1 || Host.ComputeSlowdown() != 1 {
		t.Fatal("host cores must have unit slowdown")
	}
	if Phi.SystemsSlowdown() != model.PhiSystemsSlowdown {
		t.Fatal("phi systems slowdown wrong")
	}
	if Phi.ComputeSlowdown() != model.PhiComputeSlowdown {
		t.Fatal("phi compute slowdown wrong")
	}
	if Phi.SystemsSlowdown() <= Phi.ComputeSlowdown() {
		t.Fatal("branchy systems code must suffer more than data-parallel compute on a Phi")
	}
}

func TestChargesScale(t *testing.T) {
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		h := &Core{Kind: Host}
		ph := &Core{Kind: Phi}
		start := p.Now()
		h.Systems(p, 100)
		hostCost := p.Now() - start
		start = p.Now()
		ph.Systems(p, 100)
		phiCost := p.Now() - start
		if phiCost != hostCost*sim.Time(model.PhiSystemsSlowdown) {
			t.Errorf("systems charge: host=%v phi=%v", hostCost, phiCost)
		}
		start = p.Now()
		ph.TouchBytes(p, 1000, 2000) // 2ns/byte at host speed
		if got := p.Now() - start; got != sim.Time(2000*int64(model.PhiSystemsSlowdown)) {
			t.Errorf("TouchBytes = %v", got)
		}
	})
	e.MustRun()
}

func TestPools(t *testing.T) {
	h := HostPool()
	if h.Size() != model.HostSockets*model.HostCoresPerSocket {
		t.Fatalf("host pool size = %d", h.Size())
	}
	p := PhiPool()
	if p.Size() != model.PhiCores {
		t.Fatalf("phi pool size = %d", p.Size())
	}
	// Modulo indexing covers SMT oversubscription.
	if p.Core(0) != p.Core(model.PhiCores) {
		t.Fatal("modulo core indexing broken")
	}
	if p.Core(0) == p.Core(1) {
		t.Fatal("distinct indices must map to distinct cores")
	}
}
