package stats

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"solros/internal/sim"
)

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(sim.Time(i))
	}
	cases := map[float64]sim.Time{0: 1, 50: 50, 90: 90, 99: 99, 100: 100}
	for pct, want := range cases {
		if got := s.Percentile(pct); got != want {
			t.Errorf("p%.0f = %v, want %v", pct, got, want)
		}
	}
	if s.Mean() != 50 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.N() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1)
	if s.Min() != 1 {
		t.Fatal("sample not re-sorted after Add")
	}
}

func TestSummaryAndCDF(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i+1) * sim.Microsecond)
	}
	if !strings.Contains(s.Summary(), "n=10") {
		t.Fatalf("summary: %s", s.Summary())
	}
	cdf := s.CDF([]float64{50, 99})
	if len(cdf) != 2 || cdf[0][0] <= 0 {
		t.Fatalf("cdf: %v", cdf)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Add(sim.Time(1 << uint(i%8)))
	}
	if h.N() != 100 {
		t.Fatalf("n = %d", h.N())
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatal("histogram renders no bars")
	}
	if NewHistogram().String() != "(empty)" {
		t.Fatal("empty histogram rendering")
	}
}

// Property: percentiles are monotone in pct and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(sim.Time(v))
		}
		prev := s.Percentile(0)
		for pct := 5.0; pct <= 100; pct += 5 {
			cur := s.Percentile(pct)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max() || s.N() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Non-positive observations land in the dedicated zero bucket rather than
// being conflated with [1, 2).
func TestHistogramZeroBucket(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(-5)
	h.Add(1)
	if got := h.Count(0); got != 2 {
		t.Errorf("zero-bucket count = %d, want 2", got)
	}
	if got := h.Count(1); got != 1 {
		t.Errorf("[1, 2) count = %d, want 1", got)
	}
	if !strings.Contains(h.String(), "\n") || h.N() != 3 {
		t.Fatalf("n = %d, rendering: %q", h.N(), h.String())
	}
}

// Bucket labels are the half-open range [2^k, 2^(k+1)); the zero bucket is
// labelled "0".
func TestHistogramBucketLabels(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(5) // bucket 2: [4, 8)
	out := h.Render(func(v int64) string { return sim.Time(v).String() })
	if !strings.Contains(out, "[4ns, 8ns)") {
		t.Errorf("missing [4ns, 8ns) label in:\n%s", out)
	}
	// The "0" label occupies its own row.
	if !strings.Contains(out, "  0 |") && !strings.Contains(out, " 0 |") {
		t.Errorf("missing zero-bucket label in:\n%s", out)
	}
	// A unitless formatter renders raw numbers.
	raw := h.Render(func(v int64) string { return fmt.Sprintf("%d", v) })
	if !strings.Contains(raw, "[4, 8)") {
		t.Errorf("missing [4, 8) label in:\n%s", raw)
	}
}

// Clones are independent of their source.
func TestHistogramAndSampleClone(t *testing.T) {
	h := NewHistogram()
	h.Add(3)
	hc := h.Clone()
	h.Add(3)
	if hc.N() != 1 || h.N() != 2 {
		t.Errorf("clone n = %d (want 1), source n = %d (want 2)", hc.N(), h.N())
	}
	var s Sample
	s.Add(7)
	sc := s.Clone()
	s.Add(9)
	if sc.N() != 1 || s.N() != 2 {
		t.Errorf("clone n = %d (want 1), source n = %d (want 2)", sc.N(), s.N())
	}
	if sc.Max() != 7 {
		t.Errorf("clone max = %v, want 7", sc.Max())
	}
}

// Merge folds bucket counts exactly; merging an empty or nil histogram is
// a no-op.
func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for _, v := range []sim.Time{0, 3, 5, 100} {
		a.Add(v)
	}
	for _, v := range []sim.Time{3, 200} {
		b.Add(v)
	}
	a.Merge(b)
	if a.N() != 6 {
		t.Fatalf("merged n = %d, want 6", a.N())
	}
	if got := a.Count(3); got != 2 {
		t.Errorf("bucket of 3 = %d, want 2", got)
	}
	if got := a.Count(200); got != 1 {
		t.Errorf("bucket of 200 = %d, want 1", got)
	}
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.N() != 6 {
		t.Errorf("no-op merges changed n to %d", a.N())
	}
}

// Sub recovers the delta between two snapshots of one histogram.
func TestHistogramSub(t *testing.T) {
	h := NewHistogram()
	h.Add(3)
	h.Add(100)
	old := h.Clone()
	h.Add(3)
	h.Add(0)
	delta := h.Sub(old)
	if delta.N() != 2 || delta.Count(3) != 1 || delta.Count(0) != 1 || delta.Count(100) != 0 {
		t.Errorf("delta wrong: n=%d count(3)=%d count(0)=%d count(100)=%d",
			delta.N(), delta.Count(3), delta.Count(0), delta.Count(100))
	}
	if d2 := h.Sub(nil); d2.N() != h.N() {
		t.Errorf("Sub(nil) = %v, want full clone", d2)
	}
}

// A bucket whose count went backwards between snapshots — a window racing
// a reset, or snapshots of different histograms — clamps to zero instead
// of underflowing into a huge fabricated delta.
func TestHistogramSubClampsNegative(t *testing.T) {
	h := NewHistogram()
	h.Add(3)
	h.Add(3)
	h.Add(100)
	// "old" claims more observations than h in bucket [1<<20, 1<<21) and in
	// 100's bucket — counts that cannot be explained as an earlier snapshot
	// of h.
	other := NewHistogram()
	other.Add(1 << 20)
	other.Add(100)
	other.Add(100)
	delta := h.Sub(other)
	if got := delta.Count(1 << 20); got != 0 {
		t.Errorf("count(1<<20) = %d, want 0 (clamped)", got)
	}
	if got := delta.Count(100); got != 0 {
		t.Errorf("count(100) = %d, want 0 (clamped, old=2 > new=1)", got)
	}
	if got := delta.Count(3); got != 2 {
		t.Errorf("count(3) = %d, want 2", got)
	}
	// n is the sum of the clamped buckets, never negative.
	if delta.N() != 2 {
		t.Errorf("n = %d, want 2 (sum of clamped buckets)", delta.N())
	}
	// Simulated reset race: the histogram restarts from empty, the stale
	// snapshot still holds the pre-reset counts. The delta is empty, not
	// negative.
	fresh := NewHistogram()
	fresh.Add(7)
	stale := h.Clone()
	d := fresh.Sub(stale)
	if d.N() != 1 || d.Count(7) != 1 {
		t.Errorf("reset-race delta: n=%d count(7)=%d, want the post-reset observation only", d.N(), d.Count(7))
	}
}

// CountOver conservatively counts observations in buckets entirely above
// the target.
func TestHistogramCountOver(t *testing.T) {
	h := NewHistogram()
	for _, v := range []sim.Time{0, 2, 100, 5000, 5000} {
		h.Add(v)
	}
	if got := h.CountOver(1000); got != 2 {
		t.Errorf("CountOver(1000) = %d, want 2", got)
	}
	// 100 lands in [64,128); with target 64 that bucket's lower bound is
	// not > 64, so only strictly-higher buckets count.
	if got := h.CountOver(64); got != 2 {
		t.Errorf("CountOver(64) = %d, want 2 (conservative)", got)
	}
	if got := h.CountOver(0); got != 4 {
		t.Errorf("CountOver(0) = %d, want 4 (zero bucket excluded)", got)
	}
}

// Buckets lists occupied buckets in sorted order with correct bounds.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(5)
	bks := h.Buckets()
	if len(bks) != 2 {
		t.Fatalf("got %d buckets, want 2", len(bks))
	}
	if bks[0].Lo != 0 || bks[0].Hi != 0 || bks[0].Count != 1 {
		t.Errorf("zero bucket = %+v", bks[0])
	}
	if bks[1].Lo != 4 || bks[1].Hi != 8 || bks[1].Count != 1 {
		t.Errorf("bucket of 5 = %+v", bks[1])
	}
}
