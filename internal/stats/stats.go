// Package stats provides the small statistics toolkit the benchmark
// harness uses: exact percentile summaries over virtual-time samples and
// log-scaled histograms for latency distributions (the CDFs of Figure 1b).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"solros/internal/sim"
)

// Sample accumulates virtual-time observations.
type Sample struct {
	xs     []sim.Time
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(t sim.Time) {
	s.xs = append(s.xs, t)
	s.sorted = false
}

// N reports the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Clone returns an independent copy of the sample.
func (s *Sample) Clone() *Sample {
	return &Sample{xs: append([]sim.Time(nil), s.xs...), sorted: s.sorted}
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Slice(s.xs, func(i, j int) bool { return s.xs[i] < s.xs[j] })
		s.sorted = true
	}
}

// Percentile returns the pct-th percentile (nearest-rank on the sorted
// sample); zero if empty.
func (s *Sample) Percentile(pct float64) sim.Time {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if pct <= 0 {
		return s.xs[0]
	}
	if pct >= 100 {
		return s.xs[len(s.xs)-1]
	}
	idx := int(math.Ceil(pct/100*float64(len(s.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.xs[idx]
}

// Mean returns the arithmetic mean; zero if empty.
func (s *Sample) Mean() sim.Time {
	if len(s.xs) == 0 {
		return 0
	}
	var total sim.Time
	for _, x := range s.xs {
		total += x
	}
	return total / sim.Time(len(s.xs))
}

// Min and Max report the extremes; zero if empty.
func (s *Sample) Min() sim.Time { return s.Percentile(0) }

// Max reports the largest observation.
func (s *Sample) Max() sim.Time { return s.Percentile(100) }

// Summary renders a one-line digest.
func (s *Sample) Summary() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v mean=%v",
		s.N(), s.Min(), s.Percentile(50), s.Percentile(90),
		s.Percentile(99), s.Max(), s.Mean())
}

// CDF returns (value, cumulative fraction) pairs at the given percentiles.
func (s *Sample) CDF(percentiles []float64) [][2]float64 {
	out := make([][2]float64, 0, len(percentiles))
	for _, p := range percentiles {
		out = append(out, [2]float64{s.Percentile(p).Seconds() * 1e6, p})
	}
	return out
}

// Histogram is a log2-bucketed latency histogram: bucket k counts
// observations in [2^k, 2^(k+1)), and non-positive observations land in a
// dedicated zero bucket (key -1) so zero-latency samples are not mislabelled
// as 1 ns.
type Histogram struct {
	buckets map[int]int
	n       int
}

// zeroBucket keys observations <= 0.
const zeroBucket = -1

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int)}
}

// Add records one observation.
func (h *Histogram) Add(t sim.Time) {
	h.buckets[bucketOf(t)]++
	h.n++
}

// bucketOf maps an observation to its bucket key: -1 for t <= 0, else
// floor(log2(t)) so bucket k covers [2^k, 2^(k+1)).
func bucketOf(t sim.Time) int {
	if t <= 0 {
		return zeroBucket
	}
	b := 0
	for v := int64(t); v > 1; v >>= 1 {
		b++
	}
	return b
}

// BucketKey reports the log2 bucket key t falls in — -1 for t <= 0, else
// floor(log2(t)), the same keying Buckets and Count use internally.
// Exported so callers (telemetry exemplar storage) can attach per-bucket
// metadata that stays aligned with the histogram's own buckets.
func BucketKey(t sim.Time) int { return bucketOf(t) }

// N reports the observation count.
func (h *Histogram) N() int { return h.n }

// Count reports the occupancy of the bucket covering t.
func (h *Histogram) Count(t sim.Time) int { return h.buckets[bucketOf(t)] }

// Merge folds other into h bucket by bucket. Both histograms use the same
// log2 bucket scheme by construction, so merging is exact; it is the
// operation windowed rollups use to combine per-window histograms into
// burn-rate ranges, and benchdiff uses to pool shards.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for k, c := range other.buckets {
		h.buckets[k] += c
	}
	h.n += other.n
}

// Sub returns h minus old — the window delta between two cumulative
// snapshots taken of the same histogram. A bucket whose delta would go
// negative clamps to zero instead of underflowing: when a window race
// lands an observation between a reset and the next snapshot (or the
// snapshots arrive out of order), the delta degrades to "no observations
// in that bucket" rather than fabricating a huge count from wraparound.
// The total n is recomputed from the clamped buckets so it always equals
// their sum.
func (h *Histogram) Sub(old *Histogram) *Histogram {
	out := NewHistogram()
	if old == nil {
		return h.Clone()
	}
	for k, c := range h.buckets {
		if d := c - old.buckets[k]; d > 0 {
			out.buckets[k] = d
			out.n += d
		}
	}
	return out
}

// CountOver reports how many observations landed in buckets entirely
// above t (bucket lower bound > t). Being log2-bucketed it undercounts by
// at most the occupancy of t's own bucket; the SLO watchdog uses it as a
// conservative "observations over target" estimate.
func (h *Histogram) CountOver(t sim.Time) int {
	over := 0
	for k, c := range h.buckets {
		if k == zeroBucket {
			continue
		}
		if int64(1)<<uint(k) > int64(t) {
			over += c
		}
	}
	return over
}

// Bucket is one histogram bucket in export order: observations fell in
// [Lo, Hi); the zero bucket (observations <= 0) reports Lo == Hi == 0.
type Bucket struct {
	Lo, Hi sim.Time
	Count  int
}

// Buckets returns the occupied buckets sorted by lower bound (zero bucket
// first) — the iteration exporters need to render le-style bounds.
func (h *Histogram) Buckets() []Bucket {
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		b := Bucket{Count: h.buckets[k]}
		if k != zeroBucket {
			b.Lo = sim.Time(int64(1) << uint(k))
			b.Hi = sim.Time(int64(1) << uint(k+1))
		}
		out = append(out, b)
	}
	return out
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	out := NewHistogram()
	out.n = h.n
	for k, c := range h.buckets {
		out.buckets[k] = c
	}
	return out
}

// Percentile returns the upper bound of the bucket holding the pct-th
// observation (nearest-rank over the cumulative bucket counts); being
// log2-bucketed, the answer is within 2x of the exact value. Zero if
// empty, and zero-bucket observations report as 0.
func (h *Histogram) Percentile(pct float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	rank := int(math.Ceil(pct / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	seen := 0
	for _, k := range keys {
		seen += h.buckets[k]
		if seen >= rank {
			if k == zeroBucket {
				return 0
			}
			return sim.Time(int64(1) << uint(k+1))
		}
	}
	return 0
}

// String renders the histogram with proportional bars, labelling each
// bucket with its half-open range as a virtual-time value.
func (h *Histogram) String() string {
	return h.Render(func(v int64) string { return sim.Time(v).String() })
}

// Render renders the histogram with a caller-supplied bound formatter, so
// unitless histograms (batch sizes, counts) print raw numbers instead of
// durations.
func (h *Histogram) Render(format func(int64) string) string {
	if h.n == 0 {
		return "(empty)"
	}
	keys := make([]int, 0, len(h.buckets))
	max := 0
	for k, c := range h.buckets {
		keys = append(keys, k)
		if c > max {
			max = c
		}
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		c := h.buckets[k]
		label := "0"
		if k != zeroBucket {
			label = fmt.Sprintf("[%s, %s)", format(int64(1)<<uint(k)), format(int64(1)<<uint(k+1)))
		}
		bar := strings.Repeat("#", c*40/max)
		fmt.Fprintf(&b, "%24s | %-40s %d\n", label, bar, c)
	}
	return b.String()
}
