package telemetry

import (
	"solros/internal/sim"
)

// Tag is one key/value annotation on a span. Integer values are kept raw
// and formatted only at export time, so tagging a span on a hot path does
// not pay for fmt.
type Tag struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Span is one timed region of work on one Proc. Spans started while
// another span is open on the same Proc become its children; the Chrome
// exporter renders the nesting per thread row, and the text exporter
// aggregates durations by name.
type Span struct {
	Name   string
	Proc   string
	Begin  sim.Time
	Finish sim.Time
	Depth  int
	Tags   []Tag

	sink *Sink
	proc *sim.Proc
}

// Start opens a span named name on Proc p at the current virtual time. A
// nil sink returns a nil span whose methods are no-ops, so call sites
// need no guards.
func (s *Sink) Start(p *sim.Proc, name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := &Span{
		Name:  name,
		Proc:  p.Name(),
		Begin: p.Now(),
		sink:  s,
		proc:  p,
	}
	stack := s.open[p]
	sp.Depth = len(stack)
	s.open[p] = append(stack, sp)
	if _, ok := s.tids[sp.Proc]; !ok {
		s.tids[sp.Proc] = len(s.tidOrder) + 1
		s.tidOrder = append(s.tidOrder, sp.Proc)
	}
	return sp
}

// Tag attaches a string annotation.
func (sp *Span) Tag(key, value string) {
	if sp == nil {
		return
	}
	sp.Tags = append(sp.Tags, Tag{Key: key, Str: value})
}

// TagInt attaches an integer annotation without formatting it.
func (sp *Span) TagInt(key string, value int64) {
	if sp == nil {
		return
	}
	sp.Tags = append(sp.Tags, Tag{Key: key, Int: value, IsInt: true})
}

// End closes the span at p's current virtual time and retains it (up to
// the sink's MaxSpans). Unbalanced Ends — closing a span while children
// are still open — close the children too, so a forgotten End cannot
// corrupt the stack.
func (sp *Span) End(p *sim.Proc) {
	if sp == nil {
		return
	}
	s := sp.sink
	s.mu.Lock()
	defer s.mu.Unlock()
	sp.Finish = p.Now()
	stack := s.open[sp.proc]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != sp {
			continue
		}
		// Close any children left open above sp at the same instant.
		for j := len(stack) - 1; j > i; j-- {
			stack[j].Finish = sp.Finish
			s.retain(stack[j])
		}
		s.open[sp.proc] = stack[:i]
		break
	}
	s.retain(sp)
}

// retain appends a completed span, honouring MaxSpans. Caller holds s.mu.
func (s *Sink) retain(sp *Span) {
	if len(s.spans) >= s.maxSpans {
		s.dropped++
		return
	}
	s.spans = append(s.spans, *sp)
}

// Spans returns a copy of the retained completed spans, in completion
// order (children before parents).
func (s *Sink) Spans() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, len(s.spans))
	copy(out, s.spans)
	return out
}

// Duration reports the span's virtual-time length.
func (sp *Span) Duration() sim.Time { return sp.Finish - sp.Begin }
