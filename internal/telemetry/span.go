package telemetry

import (
	"solros/internal/sim"
)

// Tag is one key/value annotation on a span. Integer values are kept raw
// and formatted only at export time, so tagging a span on a hot path does
// not pay for fmt.
type Tag struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Span is one timed region of work on one Proc. Spans started while
// another span is open on the same Proc become its children; the Chrome
// exporter renders the nesting per thread row, and the text exporter
// aggregates durations by name.
//
// Trace, ID, and Parent are the causal-tracing fields: ID is a
// sink-unique span identifier, Trace groups every span of one logical
// request (zero = untraced), and Parent is the ID of the causal parent —
// which may live on a different Proc when the trace context crossed an
// RPC boundary. Untraced spans still nest lexically via Depth.
type Span struct {
	Name   string
	Proc   string
	Begin  sim.Time
	Finish sim.Time
	Depth  int
	Tags   []Tag

	Trace  uint64
	ID     uint64
	Parent uint64

	sink *Sink
	proc *sim.Proc
}

// TraceCtx is a portable trace context: the pair that crosses process and
// wire boundaries. The zero value means "not traced".
type TraceCtx struct {
	Trace uint64 // request (causal-tree) identifier; 0 = untraced
	Span  uint64 // span ID of the causal parent within that trace
}

// Traced reports whether the context carries a live trace.
func (c TraceCtx) Traced() bool { return c.Trace != 0 }

// RootCtx mints a fresh root trace context from a (salt, sequence) pair:
// Trace is a well-mixed nonzero 64-bit ID and Span is zero, so a span
// started with it becomes the root of a new causal tree. Deterministic —
// the same pair always yields the same ID — so replayed runs produce
// identical trace IDs, which the analyze determinism tests rely on.
func RootCtx(salt, seq uint64) TraceCtx {
	tr := mix64(salt ^ mix64(seq+1))
	if tr == 0 {
		tr = 1
	}
	return TraceCtx{Trace: tr}
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer that spreads
// consecutive sequence numbers across the full 64-bit space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Start opens a span named name on Proc p at the current virtual time. A
// nil sink returns a nil span whose methods are no-ops, so call sites
// need no guards.
func (s *Sink) Start(p *sim.Proc, name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startLocked(p, name, TraceCtx{})
}

// StartCtx opens a span whose causal parent is the given trace context —
// typically one decoded off the wire on the far side of an RPC, so the
// span joins a tree rooted on another Proc. A zero ctx behaves like
// Start.
func (s *Sink) StartCtx(p *sim.Proc, name string, ctx TraceCtx) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startLocked(p, name, ctx)
}

// startLocked is the shared body of Start/StartCtx. Caller holds s.mu.
// An explicit ctx wins; otherwise the span inherits the trace of the
// innermost open span on p, so nested instrumentation joins the request
// tree without plumbing contexts through every call.
func (s *Sink) startLocked(p *sim.Proc, name string, ctx TraceCtx) *Span {
	s.nextSpanID++
	sp := &Span{
		Name:   name,
		Proc:   p.Name(),
		Begin:  p.Now(),
		ID:     s.nextSpanID,
		Trace:  ctx.Trace,
		Parent: ctx.Span,
		sink:   s,
		proc:   p,
	}
	stack := s.open[p]
	sp.Depth = len(stack)
	if sp.Trace == 0 && len(stack) > 0 {
		top := stack[len(stack)-1]
		sp.Trace = top.Trace
		if sp.Trace != 0 {
			sp.Parent = top.ID
		}
	}
	s.open[p] = append(stack, sp)
	if _, ok := s.tids[sp.Proc]; !ok {
		s.tids[sp.Proc] = len(s.tidOrder) + 1
		s.tidOrder = append(s.tidOrder, sp.Proc)
	}
	return sp
}

// Current returns the trace context of the innermost open traced span on
// p — the context to embed in an outbound RPC or to hand to a spawned
// Proc. Zero when p has no traced span open (or the sink is nil).
func (s *Sink) Current(p *sim.Proc) TraceCtx {
	if s == nil {
		return TraceCtx{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	stack := s.open[p]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].Trace != 0 {
			return TraceCtx{Trace: stack[i].Trace, Span: stack[i].ID}
		}
	}
	return TraceCtx{}
}

// Ctx returns the span's own trace context — what a child started
// elsewhere (another Proc, a spawned filler) should use as its parent.
// Zero for an untraced or nil span.
func (sp *Span) Ctx() TraceCtx {
	if sp == nil || sp.Trace == 0 {
		return TraceCtx{}
	}
	return TraceCtx{Trace: sp.Trace, Span: sp.ID}
}

// Tag attaches a string annotation.
func (sp *Span) Tag(key, value string) {
	if sp == nil {
		return
	}
	sp.Tags = append(sp.Tags, Tag{Key: key, Str: value})
}

// TagInt attaches an integer annotation without formatting it.
func (sp *Span) TagInt(key string, value int64) {
	if sp == nil {
		return
	}
	sp.Tags = append(sp.Tags, Tag{Key: key, Int: value, IsInt: true})
}

// End closes the span at p's current virtual time and retains it (up to
// the sink's MaxSpans). Unbalanced Ends — closing a span while children
// are still open — close the children too, so a forgotten End cannot
// corrupt the stack.
func (sp *Span) End(p *sim.Proc) {
	if sp == nil {
		return
	}
	s := sp.sink
	s.mu.Lock()
	defer s.mu.Unlock()
	sp.Finish = p.Now()
	stack := s.open[sp.proc]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != sp {
			continue
		}
		// Close any children left open above sp at the same instant,
		// tagged so postmortem waterfalls can tell a cascade close from
		// a real End.
		for j := len(stack) - 1; j > i; j-- {
			stack[j].Finish = sp.Finish
			stack[j].Tags = append(stack[j].Tags, Tag{Key: "truncated", Int: 1, IsInt: true})
			s.retain(stack[j])
		}
		s.open[sp.proc] = stack[:i]
		break
	}
	s.retain(sp)
}

// retain appends a completed span, honouring MaxSpans. Caller holds s.mu.
// The flight recorder's bounded ring, the windowed stage rollups, and the
// span observer (the analyze package's trace index) are fed here too, so
// all three keep seeing activity even after the main trace buffer fills
// up.
func (s *Sink) retain(sp *Span) {
	if s.flight != nil {
		s.flight.record(*sp)
	}
	if s.win != nil {
		s.win.addSpan(sp.Name, sp.Begin, sp.Finish)
	}
	if s.observer != nil {
		s.observer(*sp)
	}
	if len(s.spans) >= s.maxSpans {
		s.dropped++
		return
	}
	s.spans = append(s.spans, *sp)
}

// Spans returns a copy of the retained completed spans, in completion
// order (children before parents).
func (s *Sink) Spans() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, len(s.spans))
	copy(out, s.spans)
	return out
}

// Duration reports the span's virtual-time length.
func (sp *Span) Duration() sim.Time { return sp.Finish - sp.Begin }
