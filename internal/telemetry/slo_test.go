package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"solros/internal/sim"
)

func TestObjectiveDefaults(t *testing.T) {
	o := Objective{Metric: "dataplane.rpc.Tread", Target: 500}.withDefaults()
	if o.Percentile != 99 {
		t.Errorf("Percentile = %v, want 99", o.Percentile)
	}
	if o.Budget != 0.01 {
		t.Errorf("Budget = %v, want 0.01", o.Budget)
	}
	if o.Burn != 1 || o.ShortWindows != 1 || o.LongWindows != 4 {
		t.Errorf("burn config = (%v, %d, %d), want (1, 1, 4)", o.Burn, o.ShortWindows, o.LongWindows)
	}
	if o.Name != "dataplane.rpc.Tread.p99" {
		t.Errorf("Name = %q", o.Name)
	}
}

func TestSetObjectivesValidation(t *testing.T) {
	s := New(Options{})
	s.EnableWindows(100)
	s.SetObjectives([]Objective{
		{Metric: "", Target: 10},       // dropped: no metric
		{Metric: "x.lat", Target: 0},   // dropped: no target
		{Metric: "x.lat", Target: 100}, // kept
	})
	if got := s.Objectives(); len(got) != 1 || got[0].Metric != "x.lat" {
		t.Fatalf("Objectives() = %+v, want one x.lat objective", got)
	}
}

// A latency histogram breaching its objective in enough short and long
// windows records a violation, bumps the breach counter, and dumps the
// flight recorder with the objective's name in the filename.
func TestSLOBreachTriggersFlightDump(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{})
	s.EnableWindows(100)
	s.ArmFlightRecorder(dir, 64, 8)
	s.SetObjectives([]Objective{{
		Metric:     "x.lat",
		Percentile: 99,
		Target:     50,
		Budget:     0.10, // 10% of ops may exceed 50ns
		Burn:       1,
	}})

	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		h := s.Histogram("x.lat")
		// Five windows of uniformly slow requests: every op exceeds the
		// 50ns target, so burn = (1.0 / 0.10) = 10 >> 1 in both ranges.
		for w := 0; w < 5; w++ {
			for n := 0; n < 10; n++ {
				p.Advance(10)
				h.ObserveAt(p, 200)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	vs := s.SLOViolations()
	if len(vs) == 0 {
		t.Fatal("no SLO violations recorded")
	}
	v := vs[0]
	if v.Objective != "x.lat.p99" || v.Metric != "x.lat" {
		t.Errorf("violation = %+v", v)
	}
	if v.BurnShort < 1 || v.BurnLong < 1 {
		t.Errorf("burn rates = (%v, %v), want both >= 1", v.BurnShort, v.BurnLong)
	}
	if !strings.Contains(v.String(), "x.lat.p99") {
		t.Errorf("violation string %q lacks objective name", v.String())
	}

	dump := s.LastFlightDump()
	if dump == "" {
		t.Fatal("breach did not dump the flight recorder")
	}
	if !strings.Contains(filepath.Base(dump), "slo-x-lat-p99") {
		t.Errorf("dump %q does not name the objective", dump)
	}
	if _, err := os.Stat(dump); err != nil {
		t.Errorf("dump file missing: %v", err)
	}
	if got := s.Counter("slo.breaches").Value(); got < 1 {
		t.Errorf("slo.breaches = %d, want >= 1", got)
	}
}

// Breaches are edge-triggered: a sustained breach across many windows is
// one violation, and recovery re-arms the latch.
func TestSLOBreachEdgeTriggered(t *testing.T) {
	s := New(Options{})
	s.EnableWindows(100)
	s.SetObjectives([]Objective{{
		Metric: "x.lat", Target: 50, Percentile: 99, Budget: 0.10, Burn: 1,
	}})
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		h := s.Histogram("x.lat")
		observe := func(windows int, lat sim.Time) {
			for w := 0; w < windows; w++ {
				for n := 0; n < 10; n++ {
					p.Advance(10)
					h.ObserveAt(p, lat)
				}
			}
		}
		observe(6, 200) // slow: breach once
		observe(8, 1)   // healthy: burn decays, latch re-arms
		observe(6, 200) // slow again: second breach
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	vs := s.SLOViolations()
	if len(vs) != 2 {
		for _, v := range vs {
			t.Logf("violation: %v", v)
		}
		t.Fatalf("got %d violations, want 2 (edge-triggered)", len(vs))
	}
	if vs[1].Window <= vs[0].Window {
		t.Errorf("violations not ordered: windows %d, %d", vs[0].Window, vs[1].Window)
	}
}

// A healthy workload whose tail stays under target records nothing.
func TestSLOHealthyNoViolations(t *testing.T) {
	s := New(Options{})
	s.EnableWindows(100)
	s.SetObjectives([]Objective{{Metric: "x.lat", Target: 1000, Percentile: 99}})
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		h := s.Histogram("x.lat")
		for n := 0; n < 100; n++ {
			p.Advance(10)
			h.ObserveAt(p, 20)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s.SealWindows(1000)
	if vs := s.SLOViolations(); len(vs) != 0 {
		t.Errorf("healthy run recorded violations: %+v", vs)
	}
}

// SealWindows evaluates the trailing partial window so short runs still
// get a verdict on their final requests.
func TestSLOSealEvaluatesTrailingWindow(t *testing.T) {
	s := New(Options{})
	s.EnableWindows(1000)
	s.SetObjectives([]Objective{{
		Metric: "x.lat", Target: 50, Percentile: 99, Budget: 0.10, Burn: 1,
	}})
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		h := s.Histogram("x.lat")
		// All ops land in window 0, which never completes on its own.
		for n := 0; n < 10; n++ {
			p.Advance(10)
			h.ObserveAt(p, 500)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if vs := s.SLOViolations(); len(vs) != 0 {
		t.Fatalf("violations before seal: %+v", vs)
	}
	s.SealWindows(100)
	if vs := s.SLOViolations(); len(vs) != 1 {
		t.Errorf("got %d violations after seal, want 1", len(vs))
	}
}
