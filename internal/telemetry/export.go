package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"solros/internal/sim"
)

// WriteText renders the metrics report: counters, gauges, distributions,
// histograms, and per-name span aggregates, each section sorted by name so
// output is deterministic and diffable.
func (s *Sink) WriteText(w io.Writer) error {
	if s == nil {
		_, err := fmt.Fprintln(w, "telemetry: no sink installed")
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	var b strings.Builder
	b.WriteString("== telemetry report ==\n")

	if len(s.counters) > 0 {
		b.WriteString("\n-- counters --\n")
		for _, name := range sortedKeys(s.counters) {
			fmt.Fprintf(&b, "%-46s %12d\n", name, s.counters[name].Value())
		}
	}
	if len(s.gauges) > 0 {
		b.WriteString("\n-- gauges --\n")
		for _, name := range sortedKeys(s.gauges) {
			g := s.gauges[name]
			fmt.Fprintf(&b, "%-46s %12d (max %d)\n", name, g.Value(), g.Max())
		}
	}
	if len(s.dists) > 0 {
		b.WriteString("\n-- distributions --\n")
		for _, name := range sortedKeys(s.dists) {
			d := s.dists[name]
			d.mu.Lock()
			fmt.Fprintf(&b, "%-46s %s\n", name, d.s.Summary())
			d.mu.Unlock()
		}
	}
	if len(s.hists) > 0 {
		b.WriteString("\n-- histograms --\n")
		for _, name := range sortedKeys(s.hists) {
			h := s.hists[name]
			h.mu.Lock()
			n := h.h.N()
			rendered := h.h.String()
			p50, p95, p99 := h.h.Percentile(50), h.h.Percentile(95), h.h.Percentile(99)
			quantiles := fmt.Sprintf("p50<=%v p95<=%v p99<=%v", p50, p95, p99)
			if !h.timed {
				rendered = h.h.Render(func(v int64) string { return fmt.Sprintf("%d", v) })
				quantiles = fmt.Sprintf("p50<=%d p95<=%d p99<=%d", int64(p50), int64(p95), int64(p99))
			}
			h.mu.Unlock()
			fmt.Fprintf(&b, "%s (n=%d, %s)\n%s", name, n, quantiles, indent(rendered))
		}
	}
	if len(s.spans) > 0 {
		b.WriteString("\n-- spans --\n")
		type agg struct {
			count int64
			total sim.Time
			max   sim.Time
		}
		byName := map[string]*agg{}
		for i := range s.spans {
			sp := &s.spans[i]
			a := byName[sp.Name]
			if a == nil {
				a = &agg{}
				byName[sp.Name] = a
			}
			a.count++
			d := sp.Duration()
			a.total += d
			if d > a.max {
				a.max = d
			}
		}
		for _, name := range sortedKeys(byName) {
			a := byName[name]
			fmt.Fprintf(&b, "%-46s n=%-8d total=%-12v mean=%-12v max=%v\n",
				name, a.count, a.total, a.total/sim.Time(a.count), a.max)
		}
	}
	// Dropped spans print even when every retained span was dropped —
	// silently swallowing the overflow hides exactly the runs where the
	// trace buffer mattered.
	if s.dropped > 0 {
		fmt.Fprintf(&b, "\n(%d spans dropped after MaxSpans=%d)\n", s.dropped, s.maxSpans)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// traceEvent is one Chrome trace_event JSON object. Spans are "X"
// (complete) events with microsecond timestamps on the virtual clock;
// procs map to tids with thread_name metadata so chrome://tracing and
// Perfetto label the rows.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"` // flow-event binding id
	BP   string         `json:"bp,omitempty"` // "e": bind flow end to enclosing slice
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the retained spans as Chrome trace_event JSON.
// Open the file at chrome://tracing or https://ui.perfetto.dev.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	events := make([]traceEvent, 0, len(s.spans)+len(s.tidOrder))
	for _, proc := range s.tidOrder {
		events = append(events, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  s.tids[proc],
			Args: map[string]any{"name": proc},
		})
	}
	byID := make(map[uint64]*Span)
	for i := range s.spans {
		if id := s.spans[i].ID; id != 0 {
			byID[id] = &s.spans[i]
		}
	}
	for i := range s.spans {
		sp := &s.spans[i]
		ev := traceEvent{
			Name: sp.Name,
			Cat:  spanCategory(sp.Name),
			Ph:   "X",
			Ts:   float64(sp.Begin) / 1e3,
			Dur:  float64(sp.Duration()) / 1e3,
			Pid:  0,
			Tid:  s.tids[sp.Proc],
		}
		if len(sp.Tags) > 0 || sp.Trace != 0 {
			args := make(map[string]any, len(sp.Tags)+1)
			if sp.Trace != 0 {
				args["trace"] = fmt.Sprintf("%#x", sp.Trace)
			}
			for _, t := range sp.Tags {
				if t.IsInt {
					args[t.Key] = t.Int
				} else {
					args[t.Key] = t.Str
				}
			}
			ev.Args = args
		}
		events = append(events, ev)
		// Causal flow arrow from a cross-proc parent: the trace context
		// hopped the RPC wire (or a Spawn), which slice nesting cannot
		// show. Same-proc parentage is already visible as nesting.
		if sp.Trace != 0 && sp.Parent != 0 {
			if parent, ok := byID[sp.Parent]; ok && parent.Proc != sp.Proc {
				flowID := fmt.Sprintf("%#x", sp.ID)
				events = append(events,
					traceEvent{
						Name: "causal",
						Cat:  "trace",
						Ph:   "s",
						Ts:   float64(parent.Begin) / 1e3,
						Pid:  0,
						Tid:  s.tids[parent.Proc],
						ID:   flowID,
					},
					traceEvent{
						Name: "causal",
						Cat:  "trace",
						Ph:   "f",
						BP:   "e",
						Ts:   float64(sp.Begin) / 1e3,
						Pid:  0,
						Tid:  s.tids[sp.Proc],
						ID:   flowID,
					})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// spanCategory derives the trace category from the span name's subsystem
// prefix ("transport.send" -> "transport").
func spanCategory(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}
