package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"solros/internal/sim"
)

// stubHotspot is the analyzer stand-in: a fixed attribution so the tests
// pin the plumbing (breach -> hotspot fetch -> stamped violation ->
// scoped dump) without the full trace index.
func stubHotspot() *Hotspot {
	return &Hotspot{Shard: "1", Tenant: "etl", Skew: 3.5, Exemplars: []uint64{0x111, 0x222}}
}

// breachShards drives four per-shard latency metrics through six windows
// on one engine: shards 0 and 1 breach their objectives, 2 and 3 stay
// healthy. Each shard proc also retires one traced span so the hotspot's
// exemplar traces have spans in the flight ring to scope to.
func breachShards(t *testing.T, dir string) *Sink {
	t.Helper()
	s := New(Options{})
	s.EnableWindows(100)
	s.ArmFlightRecorder(dir, 256, 16)
	s.SetObjectives([]Objective{
		{Metric: "shard0.lat", Target: 50, Percentile: 99, Budget: 0.10, Burn: 1},
		{Metric: "shard1.lat", Target: 50, Percentile: 99, Budget: 0.10, Burn: 1},
	})
	s.SetHotspotSource(stubHotspot)

	e := sim.NewEngine()
	mk := func(name, metric string, lat sim.Time, trace uint64) {
		e.Spawn(name, 0, func(p *sim.Proc) {
			h := s.Histogram(metric)
			sp := s.StartCtx(p, "transport.ring_op", TraceCtx{Trace: trace})
			p.Advance(5)
			sp.End(p)
			for w := 0; w < 6; w++ {
				for n := 0; n < 10; n++ {
					p.Advance(10)
					h.ObserveAt(p, lat)
				}
			}
		})
	}
	mk("shard0", "shard0.lat", 200, 0x111)
	mk("shard1", "shard1.lat", 200, 0x222)
	mk("shard2", "shard2.lat", 1, 0x333)
	mk("shard3", "shard3.lat", 1, 0x444)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// readDumps returns the dump artifacts in dir, sorted by name.
func readDumps(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(ents))
	for _, ent := range ents {
		blob, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[ent.Name()] = blob
	}
	return out
}

// Two shards breaching their SLOs in the same run: every breach files a
// violation stamped with the analyzer's hotspot and dumps a blackbox
// scoped to the blamed traces.
func TestSLOBreachDumpsScopedToHotspot(t *testing.T) {
	dir := t.TempDir()
	s := breachShards(t, dir)

	vs := s.SLOViolations()
	if len(vs) < 2 {
		t.Fatalf("got %d violations, want >= 2 (both hot shards breach)", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		seen[v.Objective] = true
		if v.HotShard != "1" || v.HotTenant != "etl" || v.ShardSkew != 3.5 {
			t.Errorf("violation %s not stamped with the hotspot: %+v", v.Objective, v)
		}
		if !strings.Contains(v.String(), "hot shard 1") {
			t.Errorf("violation string %q lacks hotspot rendering", v.String())
		}
	}
	if !seen["shard0.lat.p99"] || !seen["shard1.lat.p99"] {
		t.Fatalf("breached objectives = %v, want both shard0 and shard1", seen)
	}

	dumps := readDumps(t, dir)
	if len(dumps) < 2 {
		t.Fatalf("got %d flight dumps, want >= 2 (one per breach)", len(dumps))
	}
	for name, blob := range dumps {
		var d struct {
			Reason      string           `json:"reason"`
			HotShard    string           `json:"hot_shard"`
			HotTenant   string           `json:"hot_tenant"`
			ScopeTraces []string         `json:"scope_traces"`
			ScopedSpans []map[string]any `json:"scoped_spans"`
		}
		if err := json.Unmarshal(blob, &d); err != nil {
			t.Fatalf("dump %s is not valid JSON: %v", name, err)
		}
		if !strings.HasPrefix(d.Reason, "slo-") {
			t.Errorf("dump %s reason = %q, want slo-*", name, d.Reason)
		}
		if d.HotShard != "1" || d.HotTenant != "etl" {
			t.Errorf("dump %s not scoped: hot_shard=%q hot_tenant=%q", name, d.HotShard, d.HotTenant)
		}
		if len(d.ScopeTraces) != 2 || d.ScopeTraces[0] != "0x111" || d.ScopeTraces[1] != "0x222" {
			t.Errorf("dump %s scope_traces = %v, want [0x111 0x222]", name, d.ScopeTraces)
		}
		if len(d.ScopedSpans) == 0 {
			t.Errorf("dump %s has no scoped spans despite exemplar traces in the ring", name)
		}
		for _, sp := range d.ScopedSpans {
			tr, _ := sp["trace"].(string)
			if tr != "0x111" && tr != "0x222" {
				t.Errorf("dump %s scoped span carries foreign trace %q", name, tr)
			}
		}
	}
}

// The same seed must produce the same blackboxes: identical dump file
// names and identical bytes across two runs of the same schedule.
func TestSLOBreachDumpsDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	breachShards(t, dirA)
	breachShards(t, dirB)
	a, b := readDumps(t, dirA), readDumps(t, dirB)
	names := func(m map[string][]byte) []string {
		var out []string
		for n := range m {
			out = append(out, n)
		}
		sort.Strings(out)
		return out
	}
	na, nb := names(a), names(b)
	if strings.Join(na, ",") != strings.Join(nb, ",") {
		t.Fatalf("dump file lists differ: %v vs %v", na, nb)
	}
	for _, n := range na {
		if string(a[n]) != string(b[n]) {
			t.Errorf("dump %s differs between identical runs", n)
		}
	}
}

// Four engines on real goroutines share one sink, each breaching its own
// objective — under -race this pins the lock discipline of the breach
// path (sloCheck's hotspot fetch, violation append, scoped dump) against
// concurrent span retirement and window sealing.
func TestConcurrentSLOBreachesAcrossShards(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{})
	s.EnableWindows(100)
	s.ArmFlightRecorder(dir, 256, 64)
	s.SetObjectives([]Objective{
		{Metric: "shard0.lat", Target: 50, Percentile: 99, Budget: 0.10, Burn: 1},
		{Metric: "shard1.lat", Target: 50, Percentile: 99, Budget: 0.10, Burn: 1},
		{Metric: "shard2.lat", Target: 50, Percentile: 99, Budget: 0.10, Burn: 1},
		{Metric: "shard3.lat", Target: 50, Percentile: 99, Budget: 0.10, Burn: 1},
	})
	s.SetHotspotSource(stubHotspot)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			metric := "shard" + string(rune('0'+i)) + ".lat"
			e := sim.NewEngine()
			e.Spawn("p", 0, func(p *sim.Proc) {
				h := s.Histogram(metric)
				for w := 0; w < 6; w++ {
					for n := 0; n < 10; n++ {
						p.Advance(10)
						sp := s.StartCtx(p, "transport.ring_op", TraceCtx{Trace: uint64(0x111 + i)})
						h.ObserveAt(p, 200)
						sp.End(p)
					}
				}
			})
			if err := e.Run(); err != nil {
				panic(err)
			}
		}(i)
	}
	wg.Wait()

	vs := s.SLOViolations()
	if len(vs) < 4 {
		t.Fatalf("got %d violations, want >= 4 (every shard breaches)", len(vs))
	}
	byObj := map[string]int{}
	for _, v := range vs {
		byObj[v.Objective]++
		if v.HotShard != "1" {
			t.Errorf("violation %s lost its hotspot under concurrency: %+v", v.Objective, v)
		}
	}
	for i := 0; i < 4; i++ {
		obj := "shard" + string(rune('0'+i)) + ".lat.p99"
		if byObj[obj] == 0 {
			t.Errorf("objective %s never breached", obj)
		}
	}
	for name, blob := range readDumps(t, dir) {
		if !json.Valid(blob) {
			t.Errorf("dump %s is not valid JSON", name)
		}
	}
}
