package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"solros/internal/sim"
	"solros/internal/stats"
)

// This file turns retained spans into request-centric reports: given a
// trace ID, CriticalPath attributes every instant of the request's
// end-to-end latency to exactly one pipeline stage, and StageRollup
// aggregates those attributions into p50/p99 per stage across all traces.
//
// Attribution is a priority sweep: the root span's interval is cut at
// every span boundary in the trace, and each elementary slice is charged
// to the highest-priority span active during it. Stage priorities follow
// the data path depth — actual device work (NVMe, DMA) outranks the
// proxy serve loop, which outranks the stub-side wait — so "who was
// really working" wins over "who was merely waiting". Because the root
// span covers the whole interval and always matches some stage, the
// per-stage durations sum to the end-to-end latency by construction.

// Canonical stage names, in data-path order. "ring_wait" is the portion
// of an RPC wait before the proxy picked the request up (queueing +
// ring transit), "reply_wait" the portion after the proxy finished
// (reply transit + dispatch); both are carved out of dataplane.rpc.wait
// by matching the proxy serve spans that share its causal parent.
var StageOrder = []string{
	"ring_wait",
	"combiner",
	"ring_op",
	"stub_issue",
	"proxy_serve",
	"cache_fill",
	"copy_dma",
	"nvme",
	"reply_wait",
	"other",
}

// stageOf classifies a span name into (stage, priority). The "wait"
// pseudo-stage is split into ring_wait/reply_wait during the sweep.
func stageOf(name string) (string, int) {
	switch {
	case name == "nvme.submit":
		return "nvme", 90
	case strings.HasPrefix(name, "pcie."), name == "controlplane.fsproxy.push":
		return "copy_dma", 80
	case name == "controlplane.fsproxy.fill",
		name == "controlplane.fsproxy.readahead",
		name == "controlplane.fsproxy.read_overlap":
		return "cache_fill", 70
	case name == "transport.combine":
		return "combiner", 65
	case strings.HasPrefix(name, "transport."):
		return "ring_op", 60
	case strings.HasPrefix(name, "controlplane."):
		return "proxy_serve", 40
	case name == "dataplane.rpc.issue":
		return "stub_issue", 30
	case name == "dataplane.rpc.wait":
		return "wait", 10
	default:
		return "other", 1
	}
}

// StageDur is one stage's share of a request's end-to-end latency.
type StageDur struct {
	Stage string
	Dur   sim.Time
}

// PathReport is the critical-path breakdown of one trace.
type PathReport struct {
	Trace  uint64
	Root   Span
	Total  sim.Time   // root end-to-end latency
	Stages []StageDur // in StageOrder; sums to Total
	Spans  []Span     // every span of the trace, by (Begin, ID)
}

// Traces lists the distinct trace IDs among retained spans, in order of
// first retention.
func (s *Sink) Traces() []uint64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[uint64]bool)
	var out []uint64
	for i := range s.spans {
		if tr := s.spans[i].Trace; tr != 0 && !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	return out
}

// TraceSpans returns the retained spans of one trace, sorted by
// (Begin, ID).
func (s *Sink) TraceSpans(trace uint64) []Span {
	if s == nil || trace == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Span
	for i := range s.spans {
		if s.spans[i].Trace == trace {
			out = append(out, s.spans[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Begin != out[j].Begin {
			return out[i].Begin < out[j].Begin
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CriticalPath computes the per-stage latency attribution for one trace.
// Nil when the trace has no retained spans.
func (s *Sink) CriticalPath(trace uint64) *PathReport {
	return ComputePath(trace, s.TraceSpans(trace))
}

// SortSpans orders spans by (Begin, ID) — the canonical order PathReport
// and the trace index use.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Begin != spans[j].Begin {
			return spans[i].Begin < spans[j].Begin
		}
		return spans[i].ID < spans[j].ID
	})
}

// ComputePath runs the critical-path sweep over one trace's spans — the
// shared engine behind Sink.CriticalPath and the analyze package's trace
// index, which feeds it completed trees without re-scanning the sink's
// span buffer. spans need not be pre-sorted; they are reordered to
// (Begin, ID) in place. Nil when spans is empty.
func ComputePath(trace uint64, spans []Span) *PathReport {
	if len(spans) == 0 {
		return nil
	}
	SortSpans(spans)
	// Root: the span whose parent is outside the trace (or zero),
	// breaking ties toward the widest interval.
	ids := make(map[uint64]bool, len(spans))
	for i := range spans {
		ids[spans[i].ID] = true
	}
	root := -1
	for i := range spans {
		if spans[i].Parent != 0 && ids[spans[i].Parent] {
			continue
		}
		if root < 0 ||
			spans[i].Begin < spans[root].Begin ||
			(spans[i].Begin == spans[root].Begin && spans[i].Finish > spans[root].Finish) {
			root = i
		}
	}
	if root < 0 {
		root = 0
	}
	rp := &PathReport{Trace: trace, Root: spans[root], Spans: spans}
	rp.Total = spans[root].Duration()

	// Per-wait serve windows: the proxy serve spans answering a wait
	// share its causal parent (the issue span), so [first serve Begin,
	// last serve Finish] splits the wait into ring_wait / reply_wait.
	type window struct {
		lo, hi sim.Time
		ok     bool
	}
	serveByParent := make(map[uint64]window)
	for i := range spans {
		sp := &spans[i]
		if !strings.HasPrefix(sp.Name, "controlplane.") || sp.Parent == 0 {
			continue
		}
		w := serveByParent[sp.Parent]
		if !w.ok || sp.Begin < w.lo {
			w.lo = sp.Begin
		}
		if !w.ok || sp.Finish > w.hi {
			w.hi = sp.Finish
		}
		w.ok = true
		serveByParent[sp.Parent] = w
	}

	// Elementary intervals: every span boundary inside the root window.
	lo, hi := spans[root].Begin, spans[root].Finish
	cuts := []sim.Time{lo, hi}
	for i := range spans {
		for _, t := range []sim.Time{spans[i].Begin, spans[i].Finish} {
			if t > lo && t < hi {
				cuts = append(cuts, t)
			}
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	byStage := make(map[string]sim.Time)
	for c := 0; c+1 < len(cuts); c++ {
		t0, t1 := cuts[c], cuts[c+1]
		if t1 <= t0 {
			continue
		}
		// Highest-priority span active over [t0, t1); ties go to the
		// later-started (deeper) span, then the higher ID.
		best, bestPrio := -1, -1
		var bestStage string
		for i := range spans {
			sp := &spans[i]
			if sp.Begin > t0 || sp.Finish < t1 || sp.Duration() == 0 {
				continue
			}
			stage, prio := stageOf(sp.Name)
			if prio > bestPrio ||
				(prio == bestPrio && (sp.Begin > spans[best].Begin ||
					(sp.Begin == spans[best].Begin && sp.ID > spans[best].ID))) {
				best, bestPrio, bestStage = i, prio, stage
			}
		}
		if best < 0 {
			bestStage = "other"
		} else if bestStage == "wait" {
			bestStage = "ring_wait"
			if w := serveByParent[spans[best].Parent]; w.ok && t0 >= w.hi {
				bestStage = "reply_wait"
			}
		}
		byStage[bestStage] += t1 - t0
	}
	for _, st := range StageOrder {
		if d, ok := byStage[st]; ok {
			rp.Stages = append(rp.Stages, StageDur{Stage: st, Dur: d})
			delete(byStage, st)
		}
	}
	// Any stage name outside the canonical order (future spans) still
	// shows up rather than silently vanishing from the sum.
	for _, st := range sortedKeys(byStage) {
		rp.Stages = append(rp.Stages, StageDur{Stage: st, Dur: byStage[st]})
	}
	return rp
}

// StageRollup aggregates critical-path attributions across every
// retained trace: one stats.Sample per stage, sampling each trace's
// per-stage duration.
func (s *Sink) StageRollup() map[string]*stats.Sample {
	out := make(map[string]*stats.Sample)
	for _, tr := range s.Traces() {
		rp := s.CriticalPath(tr)
		if rp == nil {
			continue
		}
		for _, sd := range rp.Stages {
			sm := out[sd.Stage]
			if sm == nil {
				sm = &stats.Sample{}
				out[sd.Stage] = sm
			}
			sm.Add(sd.Dur)
		}
	}
	return out
}

// WriteCriticalPath renders one trace as a waterfall plus the stage
// breakdown whose rows sum to the end-to-end latency.
func (s *Sink) WriteCriticalPath(w io.Writer, trace uint64) error {
	rp := s.CriticalPath(trace)
	if rp == nil {
		_, err := fmt.Fprintf(w, "trace %#x: no spans retained\n", trace)
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== trace %#x: %s on %s, end-to-end %v ==\n",
		rp.Trace, rp.Root.Name, rp.Root.Proc, rp.Total)

	b.WriteString("\n-- waterfall --\n")
	const width = 48
	span := rp.Root.Duration()
	if span <= 0 {
		span = 1
	}
	for i := range rp.Spans {
		sp := &rp.Spans[i]
		off := int(int64(sp.Begin-rp.Root.Begin) * width / int64(span))
		length := int(int64(sp.Duration()) * width / int64(span))
		if off < 0 {
			off = 0
		}
		if off > width {
			off = width
		}
		if length < 1 {
			length = 1
		}
		if off+length > width+1 {
			length = width + 1 - off
		}
		bar := strings.Repeat(" ", off) + strings.Repeat("=", length)
		tags := ""
		for _, t := range sp.Tags {
			if t.IsInt {
				tags += fmt.Sprintf(" %s=%d", t.Key, t.Int)
			} else {
				tags += fmt.Sprintf(" %s=%s", t.Key, t.Str)
			}
		}
		fmt.Fprintf(&b, "%-36s %-16s |%-*s| %v @ %v%s\n",
			sp.Name, sp.Proc, width+1, bar, sp.Duration(), sp.Begin-rp.Root.Begin, tags)
	}

	b.WriteString("\n-- critical path --\n")
	var sum sim.Time
	for _, sd := range rp.Stages {
		pct := float64(sd.Dur) * 100 / float64(rp.Total)
		fmt.Fprintf(&b, "%-14s %14v  %5.1f%%\n", sd.Stage, sd.Dur, pct)
		sum += sd.Dur
	}
	fmt.Fprintf(&b, "%-14s %14v  (end-to-end %v)\n", "total", sum, rp.Total)
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteStageRollup renders per-stage p50/p99 across all retained traces.
func (s *Sink) WriteStageRollup(w io.Writer) error {
	roll := s.StageRollup()
	if len(roll) == 0 {
		_, err := fmt.Fprintln(w, "no traces retained")
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== stage rollup over %d trace(s) ==\n", len(s.Traces()))
	fmt.Fprintf(&b, "%-14s %8s %14s %14s %14s\n", "stage", "n", "p50", "p99", "mean")
	emit := func(st string) {
		sm, ok := roll[st]
		if !ok {
			return
		}
		fmt.Fprintf(&b, "%-14s %8d %14v %14v %14v\n",
			st, sm.N(), sm.Percentile(50), sm.Percentile(99), sm.Mean())
		delete(roll, st)
	}
	for _, st := range StageOrder {
		emit(st)
	}
	for _, st := range sortedKeys(roll) {
		emit(st)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
