package telemetry

import (
	"sort"
	"strings"
	"sync"

	"solros/internal/sim"
	"solros/internal/stats"
)

// This file is the continuous-observability half of the sink: instead of
// one end-of-run aggregate, the run is cut into fixed-length windows of
// the *virtual* clock and every stage and queue is accounted per window.
//
// Determinism rules:
//
//   - Window k covers virtual time [k*every, (k+1)*every). Boundaries are
//     pure functions of sim time, never wall clock, so two runs of the
//     same schedule produce byte-identical rollups.
//   - Nothing here advances virtual time or parks a Proc: stage windows
//     are fed from span completion (retain), queue windows from the
//     instrumented subsystems' own events. There is no sampler proc, so
//     arming windows cannot perturb the schedule.
//   - An event's window is decided by the event's own timestamp. The sim
//     engine dispatches Procs in virtual-time order, so events arrive with
//     non-decreasing timestamps; the occupancy integrals below rely on it
//     (and clamp defensively).
//
// Three per-window surfaces come out:
//
//   - StageWindow: busy time (utilization), op count (throughput), and a
//     latency histogram per pipeline stage, fed from completed spans with
//     busy time split exactly across the windows a span overlaps.
//   - QueueWindow: arrivals, departures, max occupancy, and the occupancy
//     integral per instrumented queue (RPC rings, proxy in-flight,
//     pendingFill claims, NVMe queue depth). Little's law then gives mean
//     occupancy L = area/W, arrival rate lambda = arrivals/W, and derived
//     wait = area/arrivals — the cross-check that the latency the spans
//     measure is the latency the queue lengths imply.
//   - Per-window histogram deltas for SLO-referenced metrics (slo.go).

// WindowSet is the windowed-rollup state hung off a Sink. Stage fields are
// guarded by the sink mutex (they are fed from retain, which already holds
// it); queues carry their own locks.
type WindowSet struct {
	every    sim.Time
	stages   map[int64]map[string]*StageWindow
	frontier sim.Time // latest event time seen by the stage feed

	qmu    sync.Mutex
	queues map[string]*Queue
}

// StageWindow accumulates one pipeline stage's activity inside one window.
type StageWindow struct {
	// Busy is the summed span time the stage was active inside the
	// window; Busy/every is the stage's utilization (it can exceed 1 when
	// several Procs run the stage concurrently).
	Busy sim.Time
	// Ops counts spans that finished inside the window.
	Ops int64
	// Lat is the latency histogram of spans that finished in the window.
	Lat *stats.Histogram
}

// QueueWindow accumulates one queue's occupancy inside one window.
type QueueWindow struct {
	// Area is the occupancy integral over the window (occupancy x time);
	// Area/every is the mean occupancy L of Little's law.
	Area sim.Time
	// Arrivals and Departures count the window's queue transitions.
	Arrivals, Departures int64
	// MaxOcc is the occupancy high-water mark observed in the window.
	MaxOcc int64
}

func newWindowSet(every sim.Time) *WindowSet {
	return &WindowSet{
		every:  every,
		stages: make(map[int64]map[string]*StageWindow),
		queues: make(map[string]*Queue),
	}
}

func (w *WindowSet) index(t sim.Time) int64 {
	if t < 0 {
		return 0
	}
	return int64(t / w.every)
}

// windowStageOf maps a span name to its windowed-rollup stage. It reuses
// the critical-path classifier, with two adjustments: application-visible
// request roots become the "request" stage (per-window end-to-end
// throughput and latency), and the wait pseudo-stage reports as ring_wait
// — the windowed view cannot do the causal ring/reply split the per-trace
// sweep does, so the whole RPC wait is accounted as queueing.
func windowStageOf(name string) string {
	if name == "dataplane.call" ||
		strings.HasPrefix(name, "dataplane.fs.") ||
		strings.HasPrefix(name, "dataplane.net.") {
		return "request"
	}
	stage, _ := stageOf(name)
	if stage == "wait" {
		return "ring_wait"
	}
	return stage
}

// stage returns window wi's accumulator for stage, creating it on first
// touch. Caller holds the sink mutex.
func (w *WindowSet) stage(wi int64, stage string) *StageWindow {
	ws := w.stages[wi]
	if ws == nil {
		ws = make(map[string]*StageWindow)
		w.stages[wi] = ws
	}
	sw := ws[stage]
	if sw == nil {
		sw = &StageWindow{Lat: stats.NewHistogram()}
		ws[stage] = sw
	}
	return sw
}

// addSpan feeds one completed span into the stage windows: busy time split
// exactly across every window the span overlaps, op count and latency in
// the window the span finished in. Caller holds the sink mutex.
func (w *WindowSet) addSpan(name string, begin, finish sim.Time) {
	if finish < begin {
		finish = begin
	}
	if finish > w.frontier {
		w.frontier = finish
	}
	stage := windowStageOf(name)
	for t := begin; t < finish; {
		wi := w.index(t)
		end := sim.Time(wi+1) * w.every
		if end > finish {
			end = finish
		}
		w.stage(wi, stage).Busy += end - t
		t = end
	}
	sw := w.stage(w.index(finish), stage)
	sw.Ops++
	sw.Lat.Add(finish - begin)
}

// EnableWindows arms windowed rollups with the given window length on the
// sim clock. Call before the run; re-arming with a different length
// resets accumulated windows. every <= 0 disarms. Nil-safe.
func (s *Sink) EnableWindows(every sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if every <= 0 {
		s.win = nil
		return
	}
	if s.win != nil && s.win.every == every {
		return
	}
	s.win = newWindowSet(every)
}

// WindowsEnabled reports whether windowed rollups are armed.
func (s *Sink) WindowsEnabled() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win != nil
}

// WindowEvery reports the armed window length (0 when windows are off).
func (s *Sink) WindowEvery() sim.Time {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.win == nil {
		return 0
	}
	return s.win.every
}

// SealWindows advances the window frontier to at — typically the engine's
// final virtual time at shutdown — so the trailing window reports as
// complete and the SLO watchdog evaluates it. Deterministic: at comes from
// the sim clock. Nil-safe.
func (s *Sink) SealWindows(at sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.win == nil {
		s.mu.Unlock()
		return
	}
	if at > s.win.frontier {
		s.win.frontier = at
	}
	s.mu.Unlock()
	s.sloSeal(at)
}

// Queue is the occupancy-accounting instrument: a counted station
// (requests in a ring, proxy ops in flight, claimed cache fills, NVMe
// commands queued) whose arrivals, departures, and time-integrated
// occupancy feed Little's-law accounting per window. All event methods
// take the observing Proc so the event carries its virtual timestamp;
// they never advance time. A nil queue (telemetry off) no-ops.
type Queue struct {
	name string
	mu   sync.Mutex

	every sim.Time // 0 = windows off: cheap cumulative totals only

	occ        int64
	last       sim.Time
	arrivals   int64
	departures int64
	hwm        int64
	area       sim.Time // cumulative occupancy integral

	win map[int64]*QueueWindow
}

// Queue returns the named queue instrument, creating it on first use.
func (s *Sink) Queue(name string) *Queue {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[name]; ok {
		return q
	}
	s.register(name, "queue")
	q := &Queue{name: name}
	if s.win != nil {
		q.every = s.win.every
		q.win = make(map[int64]*QueueWindow)
		s.win.qmu.Lock()
		s.win.queues[name] = q
		s.win.qmu.Unlock()
	}
	s.queues[name] = q
	return q
}

// advance integrates the current occupancy from the last event time to
// now, splitting the area across window boundaries. Caller holds q.mu.
func (q *Queue) advance(now sim.Time) {
	if now < q.last {
		now = q.last // events arrive in nondecreasing time order; clamp defensively
	}
	if q.occ > 0 && now > q.last {
		q.area += sim.Time(q.occ) * (now - q.last) // occupancy x duration
		if q.every > 0 {
			for t := q.last; t < now; {
				wi := int64(t / q.every)
				end := sim.Time(wi+1) * q.every
				if end > now {
					end = now
				}
				q.window(wi).Area += sim.Time(q.occ) * (end - t)
				t = end
			}
		}
	}
	q.last = now
}

// window returns window wi's accumulator. Caller holds q.mu.
func (q *Queue) window(wi int64) *QueueWindow {
	qw := q.win[wi]
	if qw == nil {
		qw = &QueueWindow{}
		q.win[wi] = qw
	}
	return qw
}

// add applies a signed occupancy change at time now. Caller holds q.mu.
func (q *Queue) add(now sim.Time, delta int64) {
	q.advance(now)
	if delta > 0 {
		q.arrivals += delta
	} else {
		q.departures -= delta
	}
	q.occ += delta
	if q.occ < 0 {
		q.occ = 0 // unbalanced instrumentation must not corrupt the integral
	}
	if q.occ > q.hwm {
		q.hwm = q.occ
	}
	if q.every > 0 {
		qw := q.window(int64(q.last / q.every))
		if delta > 0 {
			qw.Arrivals += delta
		} else {
			qw.Departures -= delta
		}
		if q.occ > qw.MaxOcc {
			qw.MaxOcc = q.occ
		}
	}
}

// Arrive records one arrival at p's current virtual time.
func (q *Queue) Arrive(p *sim.Proc) { q.ArriveN(p, 1) }

// Depart records one departure at p's current virtual time.
func (q *Queue) Depart(p *sim.Proc) { q.DepartN(p, 1) }

// ArriveN records n arrivals at p's current virtual time.
func (q *Queue) ArriveN(p *sim.Proc, n int64) {
	if q == nil || n <= 0 {
		return
	}
	q.mu.Lock()
	q.add(p.Now(), n)
	q.mu.Unlock()
}

// DepartN records n departures at p's current virtual time.
func (q *Queue) DepartN(p *sim.Proc, n int64) {
	if q == nil || n <= 0 {
		return
	}
	q.mu.Lock()
	q.add(p.Now(), -n)
	q.mu.Unlock()
}

// Occupancy reports the current queue length.
func (q *Queue) Occupancy() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.occ
}

// Totals reports cumulative arrivals, departures, and high-water mark.
func (q *Queue) Totals() (arrivals, departures, hwm int64) {
	if q == nil {
		return 0, 0, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.arrivals, q.departures, q.hwm
}

// MeanWait reports the cumulative Little's-law derived wait: the occupancy
// integral divided by arrivals (zero with no arrivals). By Little's law
// this is the mean time an item spent in the station.
func (q *Queue) MeanWait() sim.Time {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.arrivals == 0 {
		return 0
	}
	return q.area / sim.Time(q.arrivals)
}

// StageRow is one stage's rollup inside one window, for rendering.
type StageRow struct {
	Stage string
	Busy  sim.Time
	// Util is Busy as a fraction of the window length (can exceed 1 with
	// concurrent Procs in the same stage).
	Util float64
	Ops  int64
	P50  sim.Time
	P99  sim.Time
}

// QueueRow is one queue's Little's-law accounting inside one window.
type QueueRow struct {
	Queue      string
	Arrivals   int64
	Departures int64
	MaxOcc     int64
	// MeanOcc is Area/every — mean occupancy L.
	MeanOcc float64
	// RateHz is Arrivals over the window length — arrival rate lambda.
	RateHz float64
	// Wait is Area/Arrivals — Little's-law derived residence time W.
	Wait sim.Time
}

// WindowRollup is one complete window's view: per-stage activity and
// per-queue occupancy accounting.
type WindowRollup struct {
	Index      int64
	Start, End sim.Time
	Stages     []StageRow // canonical stage order, then lexicographic
	Queues     []QueueRow // lexicographic
}

// CompletedWindows lists the indexes of windows strictly behind the event
// frontier — windows no future event can touch — in ascending order.
func (s *Sink) CompletedWindows() []int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.win == nil {
		return nil
	}
	frontierWin := s.win.index(s.win.frontier)
	seen := make(map[int64]bool)
	for wi := range s.win.stages {
		if wi < frontierWin {
			seen[wi] = true
		}
	}
	s.win.qmu.Lock()
	queues := make([]*Queue, 0, len(s.win.queues))
	for _, q := range s.win.queues {
		queues = append(queues, q)
	}
	s.win.qmu.Unlock()
	for _, q := range queues {
		q.mu.Lock()
		for wi := range q.win {
			if wi < frontierWin {
				seen[wi] = true
			}
		}
		q.mu.Unlock()
	}
	out := make([]int64, 0, len(seen))
	for wi := range seen {
		out = append(out, wi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LatestWindow reports the most recent completed window index; false when
// none is complete yet.
func (s *Sink) LatestWindow() (int64, bool) {
	ws := s.CompletedWindows()
	if len(ws) == 0 {
		return 0, false
	}
	return ws[len(ws)-1], true
}

// WindowRollup assembles one window's rollup; nil when windows are off.
// Empty stages/queues are omitted.
func (s *Sink) WindowRollup(idx int64) *WindowRollup {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.win == nil {
		s.mu.Unlock()
		return nil
	}
	every := s.win.every
	r := &WindowRollup{
		Index: idx,
		Start: sim.Time(idx) * every,
		End:   sim.Time(idx+1) * every,
	}
	stageNames := make([]string, 0)
	stageData := make(map[string]StageRow)
	if ws := s.win.stages[idx]; ws != nil {
		for name, sw := range ws {
			stageNames = append(stageNames, name)
			stageData[name] = StageRow{
				Stage: name,
				Busy:  sw.Busy,
				Util:  float64(sw.Busy) / float64(every),
				Ops:   sw.Ops,
				P50:   sw.Lat.Percentile(50),
				P99:   sw.Lat.Percentile(99),
			}
		}
	}
	s.win.qmu.Lock()
	queueNames := sortedKeys(s.win.queues)
	queues := make([]*Queue, 0, len(queueNames))
	for _, name := range queueNames {
		queues = append(queues, s.win.queues[name])
	}
	s.win.qmu.Unlock()
	s.mu.Unlock()

	// Canonical stage order first ("request" leads), then anything new.
	order := append([]string{"request"}, StageOrder...)
	rank := make(map[string]int, len(order))
	for i, st := range order {
		rank[st] = i + 1
	}
	sort.Slice(stageNames, func(i, j int) bool {
		ri, rj := rank[stageNames[i]], rank[stageNames[j]]
		if ri == 0 {
			ri = len(order) + 2
		}
		if rj == 0 {
			rj = len(order) + 2
		}
		if ri != rj {
			return ri < rj
		}
		return stageNames[i] < stageNames[j]
	})
	for _, name := range stageNames {
		r.Stages = append(r.Stages, stageData[name])
	}

	for i, q := range queues {
		q.mu.Lock()
		qw := q.win[idx]
		if qw != nil && (qw.Arrivals > 0 || qw.Departures > 0 || qw.Area > 0) {
			row := QueueRow{
				Queue:      queueNames[i],
				Arrivals:   qw.Arrivals,
				Departures: qw.Departures,
				MaxOcc:     qw.MaxOcc,
				MeanOcc:    float64(qw.Area) / float64(every),
				RateHz:     float64(qw.Arrivals) / every.Seconds(),
			}
			if qw.Arrivals > 0 {
				row.Wait = qw.Area / sim.Time(qw.Arrivals)
			}
			r.Queues = append(r.Queues, row)
		}
		q.mu.Unlock()
	}
	return r
}
