package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"solros/internal/sim"
)

// The flight recorder is the sink's always-on blackbox: a bounded ring
// of the most recently completed spans, fed from retain() so it keeps
// recording after the main span buffer fills, plus counter snapshots.
// TriggerFlight dumps the ring as a JSON artifact when something goes
// wrong — a fault fires, an explore oracle records a Violation, or the
// sim deadlocks — naming the trace that was in flight on the triggering
// Proc so a postmortem starts from the faulted request, not from a pile
// of unordered metrics.

// flightRecorder is the armed state; nil on an unarmed sink.
type flightRecorder struct {
	ring     []flightSpan
	next     int
	full     bool
	dir      string
	maxDumps int
	dumps    int
	lastCtrs map[string]int64
	scratch  map[string]int64 // recycled snapshot storage, see TriggerFlight
	lastPath string
}

// Flight-recorder defaults: ring capacity and dump cap. The cap bounds
// artifact spam when a chaos run fires hundreds of faults.
const (
	defaultFlightSpans = 512
	defaultFlightDumps = 8
)

// flightSpan is the JSON shape of one recorded span.
type flightSpan struct {
	Name   string         `json:"name"`
	Proc   string         `json:"proc"`
	Begin  sim.Time       `json:"begin"`
	Finish sim.Time       `json:"finish"`
	Trace  string         `json:"trace,omitempty"`
	ID     uint64         `json:"id,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Open   bool           `json:"open,omitempty"`
	Tags   map[string]any `json:"tags,omitempty"`
}

// flightDump is the JSON blackbox artifact. The Hot*/Scope* fields are
// present only on scoped dumps (SLO breaches with a hotspot attribution):
// they name the shard/tenant the analyzer blamed and pull that hotspot's
// exemplar traces' spans out of the ring so the postmortem starts from
// the blamed requests.
type flightDump struct {
	Reason        string           `json:"reason"`
	Time          sim.Time         `json:"vtime"`
	Proc          string           `json:"proc,omitempty"`
	FaultedTrace  string           `json:"faulted_trace,omitempty"`
	HotShard      string           `json:"hot_shard,omitempty"`
	HotTenant     string           `json:"hot_tenant,omitempty"`
	ShardSkew     float64          `json:"shard_skew,omitempty"`
	ScopeTraces   []string         `json:"scope_traces,omitempty"`
	ScopedSpans   []flightSpan     `json:"scoped_spans,omitempty"`
	Spans         []flightSpan     `json:"spans"`
	OpenSpans     []flightSpan     `json:"open_spans,omitempty"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
}

func toFlightSpan(sp *Span, open bool) flightSpan {
	fs := flightSpan{
		Name:   sp.Name,
		Proc:   sp.Proc,
		Begin:  sp.Begin,
		Finish: sp.Finish,
		ID:     sp.ID,
		Parent: sp.Parent,
		Open:   open,
	}
	if sp.Trace != 0 {
		fs.Trace = fmt.Sprintf("%#x", sp.Trace)
	}
	if len(sp.Tags) > 0 {
		fs.Tags = make(map[string]any, len(sp.Tags))
		for _, t := range sp.Tags {
			if t.IsInt {
				fs.Tags[t.Key] = t.Int
			} else {
				fs.Tags[t.Key] = t.Str
			}
		}
	}
	return fs
}

// ArmFlightRecorder starts blackbox recording, writing dump artifacts
// into dir (created on first dump). maxSpans/maxDumps <= 0 pick the
// defaults. Arming an already-armed sink re-points the dump directory
// and clears the ring. Nil-safe.
func (s *Sink) ArmFlightRecorder(dir string, maxSpans, maxDumps int) {
	if s == nil {
		return
	}
	if maxSpans <= 0 {
		maxSpans = defaultFlightSpans
	}
	if maxDumps <= 0 {
		maxDumps = defaultFlightDumps
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flight = &flightRecorder{
		ring:     make([]flightSpan, maxSpans),
		dir:      dir,
		maxDumps: maxDumps,
		lastCtrs: s.counterSnapshot(),
	}
}

// FlightRecorderArmed reports whether the blackbox is recording.
func (s *Sink) FlightRecorderArmed() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flight != nil
}

// LastFlightDump returns the path of the most recent blackbox artifact,
// empty if none was written.
func (s *Sink) LastFlightDump() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flight == nil {
		return ""
	}
	return s.flight.lastPath
}

// record appends one completed span to the ring. Caller holds s.mu.
func (f *flightRecorder) record(sp Span) {
	f.ring[f.next] = toFlightSpan(&sp, false)
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
}

// snapshot returns the ring contents, oldest first. Caller holds s.mu.
func (f *flightRecorder) snapshot() []flightSpan {
	if !f.full {
		return append([]flightSpan(nil), f.ring[:f.next]...)
	}
	out := make([]flightSpan, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// counterSnapshot copies every counter's current value. Caller holds s.mu.
func (s *Sink) counterSnapshot() map[string]int64 {
	return s.counterSnapshotInto(nil)
}

// counterSnapshotInto fills dst (allocated when nil) with every counter's
// current value, reusing dst's storage so repeated snapshots — one per
// flight-recorder trigger — do not re-allocate the full counter map each
// time. Caller holds s.mu.
func (s *Sink) counterSnapshotInto(dst map[string]int64) map[string]int64 {
	if dst == nil {
		dst = make(map[string]int64, len(s.counters))
	} else {
		clear(dst)
	}
	for name, c := range s.counters {
		dst[name] = c.Value()
	}
	return dst
}

// TriggerFlight dumps the blackbox: the span ring, currently open spans,
// counters and their deltas since the previous dump, and the trace that
// was in flight on p (or, with p nil — oracle violations, deadlocks —
// the most recently recorded traced span). Returns the artifact path,
// empty when unarmed, over the dump cap, or on a write error. Nil-safe.
func (s *Sink) TriggerFlight(p *sim.Proc, reason string) string {
	return s.TriggerFlightScoped(p, reason, nil)
}

// TriggerFlightScoped is TriggerFlight with an optional hotspot scope:
// when hs is non-nil the dump names the blamed shard/tenant and extracts
// the hotspot's exemplar traces' spans from the ring into a dedicated
// section, so a breach-triggered blackbox is pre-filtered to the requests
// the analyzer holds responsible.
func (s *Sink) TriggerFlightScoped(p *sim.Proc, reason string, hs *Hotspot) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.flight
	if f == nil || f.dumps >= f.maxDumps {
		return ""
	}

	d := flightDump{
		Reason:   reason,
		Spans:    f.snapshot(),
		Counters: s.counterSnapshotInto(f.scratch),
	}
	if hs != nil {
		d.HotShard = hs.Shard
		d.HotTenant = hs.Tenant
		d.ShardSkew = hs.Skew
		scope := make(map[string]bool, len(hs.Exemplars))
		for _, tr := range hs.Exemplars {
			key := fmt.Sprintf("%#x", tr)
			d.ScopeTraces = append(d.ScopeTraces, key)
			scope[key] = true
		}
		for i := range d.Spans {
			if d.Spans[i].Trace != "" && scope[d.Spans[i].Trace] {
				d.ScopedSpans = append(d.ScopedSpans, d.Spans[i])
			}
		}
	}
	if p != nil {
		d.Time = p.Now()
		d.Proc = p.Name()
	}
	d.CounterDeltas = make(map[string]int64, len(d.Counters))
	for name, v := range d.Counters {
		if delta := v - f.lastCtrs[name]; delta != 0 {
			d.CounterDeltas[name] = delta
		}
	}
	// The dump is serialized before this function returns, so the previous
	// snapshot's storage can be recycled for the next trigger.
	f.scratch = f.lastCtrs
	f.lastCtrs = d.Counters

	// The faulted trace: innermost open traced span on the triggering
	// Proc, falling back to the newest traced span in the ring.
	if p != nil {
		stack := s.open[p]
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].Trace != 0 {
				d.FaultedTrace = fmt.Sprintf("%#x", stack[i].Trace)
				break
			}
		}
	}
	if d.FaultedTrace == "" {
		for i := len(d.Spans) - 1; i >= 0; i-- {
			if d.Spans[i].Trace != "" {
				d.FaultedTrace = d.Spans[i].Trace
				break
			}
		}
	}
	for _, stack := range s.open {
		for _, sp := range stack {
			d.OpenSpans = append(d.OpenSpans, toFlightSpan(sp, true))
		}
	}
	// Deterministic open-span order for diffable artifacts.
	sortFlightSpans(d.OpenSpans)

	f.dumps++
	path := filepath.Join(f.dir, fmt.Sprintf("flight-%03d-%s.json", f.dumps, sanitizeReason(reason)))
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return ""
	}
	blob, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		return ""
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return ""
	}
	f.lastPath = path
	return path
}

func sortFlightSpans(fs []flightSpan) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && flightSpanLess(&fs[j], &fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func flightSpanLess(a, b *flightSpan) bool {
	if a.Begin != b.Begin {
		return a.Begin < b.Begin
	}
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	return a.ID < b.ID
}

// sanitizeReason maps a free-form trigger reason to a filename fragment.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(reason) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteByte('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	if out == "" {
		out = "trigger"
	}
	if len(out) > 48 {
		out = out[:48]
	}
	return out
}
