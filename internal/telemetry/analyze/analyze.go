// Package analyze is the trace-analytics engine: a bounded index of
// completed critical-path trees with per-tenant/per-shard tail
// decomposition and differential anomaly attribution.
//
// The analyzer subscribes to the telemetry sink's completed-span hook
// (Sink.SetSpanObserver) and groups spans by trace ID as they retire.
// When a trace's root span completes — children always retire before
// their root, since End() unwinds the open stack — the tree is finalized:
// its critical path is computed once (telemetry.ComputePath), its
// tenant/shard dimensions are pulled from the root's tags, and the result
// is folded into a bounded ring of Records. Everything downstream —
// per-dimension rollups, the differential blame report, the hot-shard
// detector feeding the SLO watchdog — reads from that ring.
//
// The analyzer is strictly passive: it never starts spans, never calls
// back into the sink, and never advances virtual time, so arming it
// cannot perturb the simulated schedule. That is the mechanism behind the
// benchmark's "analyze overhead" point being zero by construction — the
// virtual-time digest of a run with analysis on is byte-identical to the
// same run with tracing alone.
package analyze

import (
	"sort"
	"strconv"
	"sync"

	"solros/internal/sim"
	"solros/internal/stats"
	"solros/internal/telemetry"
)

// Defaults for Options zero fields.
const (
	defaultCapacity   = 4096
	defaultMaxPending = 1024
)

// hotSkewThreshold is the outlier-share over-representation at which a
// dimension value is declared hot (2 = outliers hit it at twice its fair
// share of traffic).
const hotSkewThreshold = 2.0

// hotspotMinTraces is the minimum indexed-trace population before the
// hotspot detector will name a culprit; below it shares are too noisy.
const hotspotMinTraces = 16

// maxExemplars bounds the exemplar trace IDs attached to a Hotspot.
const maxExemplars = 4

// Options configures an Analyzer.
type Options struct {
	// Capacity bounds the ring of finalized trace Records (default 4096);
	// the oldest record is evicted when full.
	Capacity int
	// MaxPending bounds the number of traces being assembled at once
	// (default 1024); the oldest pending trace is dropped when exceeded,
	// guarding against roots that never complete.
	MaxPending int
	// Roots filters which root span names produce Records (empty = all).
	// The bench driver sets {"workload.request"} so infrastructure
	// traffic — preload Puts, connection binding — minted as ad-hoc
	// traces by the dataplane stubs does not dilute the index.
	Roots []string
}

// Record is one finalized trace in the index: the critical-path
// decomposition of a completed request plus its attribution dimensions.
type Record struct {
	Trace  uint64
	Tenant string // "" when the root carried no tenant tag
	Shard  string // "" when no shard tag; else decimal shard index
	// Total is the request's end-to-end latency including client-side
	// queueing (the qwait_ns root tag), so it matches what the workload
	// driver reports as request latency.
	Total sim.Time
	// Queue is the do-nothing portion: client queueing plus ring_wait
	// plus reply_wait from the critical path.
	Queue sim.Time
	// Stages is the critical-path decomposition, client_queue first when
	// present, then telemetry.StageOrder; durations sum to Total.
	Stages []telemetry.StageDur
	// End is the root span's finish time — the index's eviction clock.
	End sim.Time
}

// Analyzer is the trace index. Safe for concurrent use; OnSpan is
// designed to be called under the sink mutex and therefore never calls
// back into the sink.
type Analyzer struct {
	mu    sync.Mutex
	opts  Options
	roots map[string]bool

	pending     map[uint64][]telemetry.Span
	pendingFIFO []uint64

	ring []Record
	next int
	full bool

	seen     int // roots finalized (pre-filter)
	kept     int // records admitted to the ring
	dropped  int // pending traces evicted before their root completed
	filtered int // roots rejected by the Roots filter
}

// New returns an Analyzer with opts' zero fields defaulted.
func New(opts Options) *Analyzer {
	if opts.Capacity <= 0 {
		opts.Capacity = defaultCapacity
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = defaultMaxPending
	}
	a := &Analyzer{
		opts:    opts,
		pending: make(map[uint64][]telemetry.Span),
		ring:    make([]Record, opts.Capacity),
	}
	if len(opts.Roots) > 0 {
		a.roots = make(map[string]bool, len(opts.Roots))
		for _, r := range opts.Roots {
			a.roots[r] = true
		}
	}
	return a
}

// OnSpan ingests one completed span. Intended as the sink's span
// observer: it runs under the sink mutex, so it must not (and does not)
// call any Sink method. Untraced spans are ignored; a span whose Parent
// is zero is the root of its tree and triggers finalization — by the
// sink's End() semantics every descendant has already retired.
func (a *Analyzer) OnSpan(sp telemetry.Span) {
	if sp.Trace == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.pending[sp.Trace]; !ok {
		if len(a.pending) >= a.opts.MaxPending {
			// Evict the oldest pending trace still unfinalized.
			for len(a.pendingFIFO) > 0 {
				old := a.pendingFIFO[0]
				a.pendingFIFO = a.pendingFIFO[1:]
				if _, live := a.pending[old]; live {
					delete(a.pending, old)
					a.dropped++
					break
				}
			}
		}
		a.pendingFIFO = append(a.pendingFIFO, sp.Trace)
	}
	a.pending[sp.Trace] = append(a.pending[sp.Trace], sp)
	if sp.Parent == 0 {
		a.finalizeLocked(sp.Trace)
	}
}

// finalizeLocked turns a completed tree into a Record. Caller holds a.mu.
func (a *Analyzer) finalizeLocked(trace uint64) {
	spans := a.pending[trace]
	delete(a.pending, trace)
	a.seen++
	rp := telemetry.ComputePath(trace, spans)
	if rp == nil {
		return
	}
	if a.roots != nil && !a.roots[rp.Root.Name] {
		a.filtered++
		return
	}
	rec := Record{
		Trace: trace,
		Total: rp.Total,
		End:   rp.Root.Finish,
	}
	rec.Tenant = tagStr(rp, "tenant")
	rec.Shard = tagInt(rp, "shard")
	var qwait sim.Time
	for _, t := range rp.Root.Tags {
		if t.Key == "qwait_ns" && t.IsInt {
			qwait = sim.Time(t.Int)
		}
	}
	if qwait > 0 {
		rec.Total += qwait
		rec.Stages = append(rec.Stages, telemetry.StageDur{Stage: "client_queue", Dur: qwait})
	}
	rec.Stages = append(rec.Stages, rp.Stages...)
	rec.Queue = qwait
	for _, sd := range rp.Stages {
		if sd.Stage == "ring_wait" || sd.Stage == "reply_wait" {
			rec.Queue += sd.Dur
		}
	}
	a.kept++
	a.ring[a.next] = rec
	a.next++
	if a.next == len(a.ring) {
		a.next = 0
		a.full = true
	}
}

// tagStr finds the first string tag named key, preferring the root span.
func tagStr(rp *telemetry.PathReport, key string) string {
	for _, t := range rp.Root.Tags {
		if t.Key == key && !t.IsInt {
			return t.Str
		}
	}
	for i := range rp.Spans {
		for _, t := range rp.Spans[i].Tags {
			if t.Key == key && !t.IsInt {
				return t.Str
			}
		}
	}
	return ""
}

// tagInt finds the first integer tag named key (root first), rendered as
// its decimal string — the dimension-value form the rollups use.
func tagInt(rp *telemetry.PathReport, key string) string {
	for _, t := range rp.Root.Tags {
		if t.Key == key && t.IsInt {
			return strconv.FormatInt(t.Int, 10)
		}
	}
	for i := range rp.Spans {
		for _, t := range rp.Spans[i].Tags {
			if t.Key == key && t.IsInt {
				return strconv.FormatInt(t.Int, 10)
			}
		}
	}
	return ""
}

// Records returns the indexed records, oldest first.
func (a *Analyzer) Records() []Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.recordsLocked()
}

func (a *Analyzer) recordsLocked() []Record {
	if !a.full {
		return append([]Record(nil), a.ring[:a.next]...)
	}
	out := make([]Record, 0, len(a.ring))
	out = append(out, a.ring[a.next:]...)
	out = append(out, a.ring[:a.next]...)
	return out
}

// Stats reports the index's ingest counters: roots finalized, records
// kept, pending traces evicted, and roots rejected by the filter.
func (a *Analyzer) Stats() (seen, kept, dropped, filtered int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seen, a.kept, a.dropped, a.filtered
}

// stageNames is the canonical stage order for reports: client queueing
// first, then the critical-path stages.
func stageNames() []string {
	return append([]string{"client_queue"}, telemetry.StageOrder...)
}

// stageDur extracts one stage's duration from a record (zero if absent).
func stageDur(r *Record, stage string) sim.Time {
	for _, sd := range r.Stages {
		if sd.Stage == stage {
			return sd.Dur
		}
	}
	return 0
}

// dimOf extracts the record's value for a dimension kind.
func dimOf(r *Record, kind string) string {
	if kind == "tenant" {
		return r.Tenant
	}
	return r.Shard
}

// RollupRow is one (dimension value, stage) cell of the per-dimension
// latency rollup. Stage "total" carries end-to-end latency.
type RollupRow struct {
	Value string
	Stage string
	N     int
	P50   sim.Time
	P99   sim.Time
}

// Rollup aggregates the index by one dimension kind ("tenant" or
// "shard"): per value, end-to-end p50/p99 plus per-stage p50/p99. Rows
// are ordered by value, then "total" first and stages in canonical order.
func (a *Analyzer) Rollup(kind string) []RollupRow {
	recs := a.Records()
	type acc struct {
		total  []sim.Time
		stages map[string][]sim.Time
	}
	byVal := make(map[string]*acc)
	for i := range recs {
		v := dimOf(&recs[i], kind)
		if v == "" {
			continue
		}
		c := byVal[v]
		if c == nil {
			c = &acc{stages: make(map[string][]sim.Time)}
			byVal[v] = c
		}
		c.total = append(c.total, recs[i].Total)
		for _, sd := range recs[i].Stages {
			c.stages[sd.Stage] = append(c.stages[sd.Stage], sd.Dur)
		}
	}
	vals := make([]string, 0, len(byVal))
	for v := range byVal {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	var out []RollupRow
	pct := func(xs []sim.Time, p float64) sim.Time {
		var s stats.Sample
		for _, x := range xs {
			s.Add(x)
		}
		return s.Percentile(p)
	}
	for _, v := range vals {
		c := byVal[v]
		out = append(out, RollupRow{Value: v, Stage: "total", N: len(c.total),
			P50: pct(c.total, 50), P99: pct(c.total, 99)})
		for _, st := range stageNames() {
			xs := c.stages[st]
			if len(xs) == 0 {
				continue
			}
			out = append(out, RollupRow{Value: v, Stage: st, N: len(xs),
				P50: pct(xs, 50), P99: pct(xs, 99)})
		}
	}
	return out
}

// Hotspot runs the blame analysis and reports the hot shard (and tenant)
// when one dimension value is over-represented among tail outliers by at
// least hotSkewThreshold. Nil when the index is too small or no value
// clears the bar — the SLO watchdog then files an unattributed breach.
func (a *Analyzer) Hotspot() *telemetry.Hotspot {
	recs := a.Records()
	if len(recs) < hotspotMinTraces {
		return nil
	}
	rep := Blame(recs)
	var hot *BlameEntry
	for i := range rep.Entries {
		e := &rep.Entries[i]
		if e.Kind == "shard" && e.Skew >= hotSkewThreshold {
			hot = e
			break
		}
	}
	if hot == nil {
		return nil
	}
	hs := &telemetry.Hotspot{Shard: hot.Name, Skew: hot.Skew}
	for i := range rep.Entries {
		e := &rep.Entries[i]
		if e.Kind == "tenant" && e.Skew >= hotSkewThreshold {
			hs.Tenant = e.Name
			break
		}
	}
	// Exemplars: newest outlier traces on the hot shard.
	for i := len(recs) - 1; i >= 0 && len(hs.Exemplars) < maxExemplars; i-- {
		if recs[i].Shard == hot.Name && recs[i].Total >= rep.P99 {
			hs.Exemplars = append(hs.Exemplars, recs[i].Trace)
		}
	}
	return hs
}
