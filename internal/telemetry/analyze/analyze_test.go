package analyze

import (
	"strings"
	"testing"

	"solros/internal/sim"
	"solros/internal/telemetry"
)

// span builds a completed span for OnSpan; parent 0 marks the tree root.
func span(trace, id, parent uint64, name string, begin, finish sim.Time, tags ...telemetry.Tag) telemetry.Span {
	return telemetry.Span{
		Name: name, Proc: "t0", Begin: begin, Finish: finish,
		Trace: trace, ID: id, Parent: parent, Tags: tags,
	}
}

func TestOnSpanFinalizesOnRoot(t *testing.T) {
	a := New(Options{})
	// Child retires first (End unwinds the open stack), then the root.
	a.OnSpan(span(7, 2, 1, "nvme.submit", 10, 40))
	if got := a.Records(); len(got) != 0 {
		t.Fatalf("finalized %d records before the root completed", len(got))
	}
	a.OnSpan(span(7, 1, 0, "workload.request", 0, 100,
		telemetry.Tag{Key: "tenant", Str: "acme"},
		telemetry.Tag{Key: "shard", Int: 3, IsInt: true},
		telemetry.Tag{Key: "qwait_ns", Int: 25, IsInt: true}))
	recs := a.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Trace != 7 || r.Tenant != "acme" || r.Shard != "3" {
		t.Fatalf("record dims = (%#x, %q, %q), want (0x7, acme, 3)", r.Trace, r.Tenant, r.Shard)
	}
	// Total = root duration (100) + client queueing from the qwait_ns tag.
	if r.Total != 125 {
		t.Fatalf("Total = %d, want 125 (root 100 + qwait 25)", r.Total)
	}
	if got := stageDur(&r, "client_queue"); got != 25 {
		t.Fatalf("client_queue = %d, want 25", got)
	}
	if got := stageDur(&r, "nvme"); got != 30 {
		t.Fatalf("nvme = %d, want 30", got)
	}
	// The stage durations must sum to Total — the sweep's core invariant.
	var sum sim.Time
	for _, sd := range r.Stages {
		sum += sd.Dur
	}
	if sum != r.Total {
		t.Fatalf("stages sum to %d, Total is %d", sum, r.Total)
	}
}

func TestUntracedSpansIgnored(t *testing.T) {
	a := New(Options{})
	a.OnSpan(span(0, 1, 0, "workload.request", 0, 100))
	if seen, kept, _, _ := a.Stats(); seen != 0 || kept != 0 {
		t.Fatalf("untraced span reached the index: seen=%d kept=%d", seen, kept)
	}
}

func TestRootsFilter(t *testing.T) {
	a := New(Options{Roots: []string{"workload.request"}})
	a.OnSpan(span(1, 1, 0, "dataplane.rpc.issue", 0, 10))
	a.OnSpan(span(2, 2, 0, "workload.request", 0, 10))
	if _, kept, _, filtered := a.Stats(); kept != 1 || filtered != 1 {
		t.Fatalf("kept=%d filtered=%d, want 1 and 1", kept, filtered)
	}
	if recs := a.Records(); len(recs) != 1 || recs[0].Trace != 2 {
		t.Fatalf("index holds %v, want just trace 2", recs)
	}
}

func TestRingEviction(t *testing.T) {
	a := New(Options{Capacity: 4})
	for tr := uint64(1); tr <= 6; tr++ {
		a.OnSpan(span(tr, 1, 0, "workload.request", sim.Time(tr), sim.Time(tr)+10))
	}
	recs := a.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want capacity 4", len(recs))
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if recs[i].Trace != want {
			t.Fatalf("records[%d].Trace = %d, want %d (oldest first)", i, recs[i].Trace, want)
		}
	}
}

func TestPendingEviction(t *testing.T) {
	a := New(Options{MaxPending: 2})
	// Three trees start assembling; the third arrival evicts the oldest.
	a.OnSpan(span(1, 11, 99, "nvme.submit", 0, 10))
	a.OnSpan(span(2, 21, 99, "nvme.submit", 0, 10))
	a.OnSpan(span(3, 31, 99, "nvme.submit", 0, 10))
	if _, _, dropped, _ := a.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (trace 1 evicted)", dropped)
	}
	// Trace 2 survived and finalizes with both spans.
	a.OnSpan(span(2, 20, 0, "workload.request", 0, 100))
	recs := a.Records()
	if len(recs) != 1 || recs[0].Trace != 2 {
		t.Fatalf("index holds %v, want just trace 2", recs)
	}
	if got := stageDur(&recs[0], "nvme"); got != 10 {
		t.Fatalf("evicting trace 1 lost trace 2's child: nvme = %d, want 10", got)
	}
}

// synthetic builds an index population with a planted culprit: many fast
// "web" requests spread on shard 0, a few slow "etl" requests pinned to
// shard 1.
func synthetic() []Record {
	var recs []Record
	for i := 0; i < 90; i++ {
		recs = append(recs, Record{
			Trace: uint64(i + 1), Tenant: "web", Shard: "0",
			Total:  100_000,
			Stages: []telemetry.StageDur{{Stage: "other", Dur: 100_000}},
			End:    sim.Time(i),
		})
	}
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{
			Trace: uint64(1000 + i), Tenant: "etl", Shard: "1",
			Total:  5_000_000,
			Queue:  4_000_000,
			Stages: []telemetry.StageDur{{Stage: "nvme", Dur: 5_000_000}},
			End:    sim.Time(1000 + i),
		})
	}
	return recs
}

func TestBlameNamesPlantedCulprit(t *testing.T) {
	rep := Blame(synthetic())
	if len(rep.Entries) < 2 {
		t.Fatalf("blame produced %d entries, want >= 2", len(rep.Entries))
	}
	top := rep.Entries[:2]
	var shardHit, tenantHit bool
	for _, e := range top {
		if e.Kind == "shard" && e.Name == "1" {
			shardHit = true
		}
		if e.Kind == "tenant" && e.Name == "etl" {
			tenantHit = true
		}
	}
	if !shardHit || !tenantHit {
		t.Fatalf("top-2 entries are %+v, want shard=1 and tenant=etl", top)
	}
	// The culprit's dominant stage must be the one the plant inflates.
	if top[0].Stage != "nvme" && top[1].Stage != "nvme" {
		t.Fatalf("no top entry blames the nvme stage: %+v", top)
	}
	// A tenant whose tail share tracks its traffic share scores ~0: "web"
	// holds no outliers at all here and must not appear above the plant.
	for _, e := range rep.Entries {
		if e.Name == "web" && e.Score > 0 {
			t.Fatalf("collateral tenant web scored %g, want 0", e.Score)
		}
	}
}

func TestBlameRenderDeterministic(t *testing.T) {
	recs := synthetic()
	render := func() string {
		var b strings.Builder
		if err := Blame(recs).Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("renders differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestBlameEmptyIndex(t *testing.T) {
	rep := Blame(nil)
	if rep.N != 0 || len(rep.Entries) != 0 {
		t.Fatalf("empty index produced %+v", rep)
	}
	var b strings.Builder
	if err := rep.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0 traces") {
		t.Fatalf("empty render missing trace count: %q", b.String())
	}
}

func TestHotspotThresholds(t *testing.T) {
	// Below the minimum population the detector stays silent.
	small := New(Options{})
	for tr := uint64(1); tr < hotspotMinTraces; tr++ {
		small.OnSpan(span(tr, 1, 0, "workload.request", 0, 10,
			telemetry.Tag{Key: "shard", Int: 1, IsInt: true}))
	}
	if hs := small.Hotspot(); hs != nil {
		t.Fatalf("hotspot fired on %d traces, want nil below %d", hotspotMinTraces-1, hotspotMinTraces)
	}

	a := New(Options{})
	for _, r := range synthetic() {
		rec := r
		a.mu.Lock()
		a.ring[a.next] = rec
		a.next++
		a.kept++
		a.mu.Unlock()
	}
	hs := a.Hotspot()
	if hs == nil {
		t.Fatal("hotspot did not fire on the planted skew")
	}
	if hs.Shard != "1" || hs.Tenant != "etl" {
		t.Fatalf("hotspot names (shard %q, tenant %q), want (1, etl)", hs.Shard, hs.Tenant)
	}
	if hs.Skew < hotSkewThreshold {
		t.Fatalf("hotspot skew %g below threshold %g", hs.Skew, hotSkewThreshold)
	}
	if len(hs.Exemplars) == 0 || len(hs.Exemplars) > maxExemplars {
		t.Fatalf("hotspot carries %d exemplars, want 1..%d", len(hs.Exemplars), maxExemplars)
	}
	for _, tr := range hs.Exemplars {
		if tr < 1000 {
			t.Fatalf("exemplar %#x is not an outlier trace on the hot shard", tr)
		}
	}
}

func TestRollupOrdering(t *testing.T) {
	a := New(Options{})
	for _, r := range synthetic() {
		rec := r
		a.mu.Lock()
		a.ring[a.next] = rec
		a.next++
		a.mu.Unlock()
	}
	rows := a.Rollup("tenant")
	if len(rows) == 0 {
		t.Fatal("rollup is empty")
	}
	// Values sorted, "total" row first per value.
	if rows[0].Value != "etl" || rows[0].Stage != "total" {
		t.Fatalf("first row = %+v, want etl/total", rows[0])
	}
	if rows[0].P50 != 5_000_000 {
		t.Fatalf("etl total p50 = %v, want 5ms", rows[0].P50)
	}
}
