package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"solros/internal/sim"
	"solros/internal/stats"
)

// Differential attribution: explain WHY the p99 is what it is by diffing
// the tail cohort against the median cohort. The outlier cohort is every
// indexed trace whose end-to-end latency reaches the exact p99; the base
// cohort is everything at or under the p50. For each dimension value
// (each tenant, each shard) the report measures over-representation —
// what share of the outliers hit that value versus its share of all
// traffic — and for each value it names the stage whose mean self-time
// among that value's outliers rose the most above the population mean.
// Excess tail mass ranks the entries: a value's score is the share of
// the outlier cohort it holds BEYOND its fair (overall) share, weighted
// by its skew. Ranking on excess rather than raw outlier share keeps a
// high-traffic tenant from topping the list on volume alone when it is
// merely collateral damage — queued behind the real culprit on a shared
// shard, its tail share tracks its traffic share and the excess is near
// zero, while the planted anomaly's tail share far exceeds its traffic.

// BlameEntry is one ranked suspect: a dimension value over-represented
// in the tail.
type BlameEntry struct {
	Kind string // "tenant" or "shard"
	Name string // the dimension value

	// OutlierShare and OverallShare are the value's share of the outlier
	// cohort and of all indexed traces; Skew is their ratio (1 = fair).
	OutlierShare float64
	OverallShare float64
	Skew         float64
	// Score ranks entries: max(0, OutlierShare-OverallShare) x Skew —
	// excess tail mass weighted by relative enrichment.
	Score float64
	// NOutlier and NTotal count the value's traces in each population.
	NOutlier int
	NTotal   int

	// Stage is the critical-path stage whose mean duration among this
	// value's outliers exceeds the all-traces mean by the most
	// (StageDelta); QueueDelta is the same diff for the do-nothing time
	// (client queue + ring/reply wait).
	Stage      string
	StageDelta sim.Time
	QueueDelta sim.Time
}

// StageDiff is one row of the cohort stage-decomposition table: mean
// stage duration in the base (p50) cohort versus the outlier (p99)
// cohort.
type StageDiff struct {
	Stage string
	Base  sim.Time
	Tail  sim.Time
	Delta sim.Time
}

// BlameReport is the full differential attribution.
type BlameReport struct {
	N        int      // indexed traces analyzed
	P50, P99 sim.Time // exact percentiles of end-to-end latency
	NOutlier int      // traces in the p99 cohort
	NBase    int      // traces in the p50 cohort
	Entries  []BlameEntry
	Stages   []StageDiff
}

// Blame computes the differential attribution over a set of records.
func Blame(recs []Record) *BlameReport {
	rep := &BlameReport{N: len(recs)}
	if len(recs) == 0 {
		return rep
	}
	var totals stats.Sample
	for i := range recs {
		totals.Add(recs[i].Total)
	}
	rep.P50 = totals.Percentile(50)
	rep.P99 = totals.Percentile(99)

	var outliers, base []*Record
	for i := range recs {
		r := &recs[i]
		if r.Total >= rep.P99 {
			outliers = append(outliers, r)
		}
		if r.Total <= rep.P50 {
			base = append(base, r)
		}
	}
	rep.NOutlier = len(outliers)
	rep.NBase = len(base)

	// Population-wide mean per stage and mean queue time — the baseline
	// the per-value outlier means are diffed against.
	allStageMean := make(map[string]sim.Time)
	var allQueueMean sim.Time
	for i := range recs {
		for _, sd := range recs[i].Stages {
			allStageMean[sd.Stage] += sd.Dur
		}
		allQueueMean += recs[i].Queue
	}
	n := sim.Time(len(recs))
	for st := range allStageMean {
		allStageMean[st] /= n
	}
	allQueueMean /= n

	for _, kind := range []string{"tenant", "shard"} {
		countAll := make(map[string]int)
		countOut := make(map[string]int)
		stageSum := make(map[string]map[string]sim.Time)
		queueSum := make(map[string]sim.Time)
		for i := range recs {
			if v := dimOf(&recs[i], kind); v != "" {
				countAll[v]++
			}
		}
		for _, r := range outliers {
			v := dimOf(r, kind)
			if v == "" {
				continue
			}
			countOut[v]++
			ss := stageSum[v]
			if ss == nil {
				ss = make(map[string]sim.Time)
				stageSum[v] = ss
			}
			for _, sd := range r.Stages {
				ss[sd.Stage] += sd.Dur
			}
			queueSum[v] += r.Queue
		}
		vals := make([]string, 0, len(countOut))
		for v := range countOut {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			outShare := float64(countOut[v]) / float64(len(outliers))
			allShare := float64(countAll[v]) / float64(len(recs))
			if allShare == 0 {
				continue
			}
			e := BlameEntry{
				Kind:         kind,
				Name:         v,
				OutlierShare: outShare,
				OverallShare: allShare,
				Skew:         outShare / allShare,
				NOutlier:     countOut[v],
				NTotal:       countAll[v],
			}
			if excess := e.OutlierShare - e.OverallShare; excess > 0 {
				e.Score = excess * e.Skew
			}
			no := sim.Time(countOut[v])
			var bestDelta sim.Time
			for _, st := range stageNames() {
				d := stageSum[v][st]/no - allStageMean[st]
				if e.Stage == "" || d > bestDelta {
					e.Stage, bestDelta = st, d
				}
			}
			e.StageDelta = bestDelta
			e.QueueDelta = queueSum[v]/no - allQueueMean
			rep.Entries = append(rep.Entries, e)
		}
	}
	sort.SliceStable(rep.Entries, func(i, j int) bool {
		a, b := &rep.Entries[i], &rep.Entries[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})

	// Cohort stage decomposition: base-cohort mean vs outlier-cohort mean
	// per stage, in canonical order.
	meanOf := func(cohort []*Record, st string) sim.Time {
		if len(cohort) == 0 {
			return 0
		}
		var sum sim.Time
		for _, r := range cohort {
			sum += stageDur(r, st)
		}
		return sum / sim.Time(len(cohort))
	}
	for _, st := range stageNames() {
		b := meanOf(base, st)
		t := meanOf(outliers, st)
		if b == 0 && t == 0 {
			continue
		}
		rep.Stages = append(rep.Stages, StageDiff{Stage: st, Base: b, Tail: t, Delta: t - b})
	}
	return rep
}

// Blame computes the differential attribution over the analyzer's
// current index.
func (a *Analyzer) Blame() *BlameReport {
	return Blame(a.Records())
}

// WriteBlame renders the report deterministically: same records, same
// bytes. Ranked suspects first, then the cohort stage decomposition.
func (rep *BlameReport) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== blame report: %d traces, p50 %v, p99 %v ==\n", rep.N, rep.P50, rep.P99)
	fmt.Fprintf(&b, "cohorts: %d outliers (>= p99), %d base (<= p50)\n", rep.NOutlier, rep.NBase)
	if len(rep.Entries) == 0 {
		b.WriteString("no attributable dimensions (no tenant/shard tags in index)\n")
	} else {
		fmt.Fprintf(&b, "\n%-4s %-7s %-12s %7s %6s %7s %7s  %-13s %12s %12s\n",
			"rank", "kind", "name", "score", "skew", "o-shr", "a-shr", "stage", "stage_d", "queue_d")
		for i := range rep.Entries {
			e := &rep.Entries[i]
			fmt.Fprintf(&b, "%-4d %-7s %-12s %7.3f %6.2f %6.1f%% %6.1f%%  %-13s %12v %12v\n",
				i+1, e.Kind, e.Name, e.Score, e.Skew,
				e.OutlierShare*100, e.OverallShare*100,
				e.Stage, e.StageDelta, e.QueueDelta)
		}
	}
	if len(rep.Stages) > 0 {
		fmt.Fprintf(&b, "\n-- stage decomposition: base (p50) cohort vs tail (p99) cohort --\n")
		fmt.Fprintf(&b, "%-13s %14s %14s %14s\n", "stage", "base_mean", "tail_mean", "delta")
		for _, sd := range rep.Stages {
			fmt.Fprintf(&b, "%-13s %14v %14v %14v\n", sd.Stage, sd.Base, sd.Tail, sd.Delta)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteRollups renders the per-tenant and per-shard stage rollups.
func (a *Analyzer) WriteRollups(w io.Writer) error {
	var b strings.Builder
	for _, kind := range []string{"tenant", "shard"} {
		rows := a.Rollup(kind)
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(&b, "== rollup by %s ==\n", kind)
		fmt.Fprintf(&b, "%-12s %-13s %7s %14s %14s\n", kind, "stage", "n", "p50", "p99")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-12s %-13s %7d %14v %14v\n", r.Value, r.Stage, r.N, r.P50, r.P99)
		}
	}
	if b.Len() == 0 {
		b.WriteString("trace index empty\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
