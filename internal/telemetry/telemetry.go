// Package telemetry is the cross-layer observability sink for the Solros
// reproduction: hierarchical spans recorded against the sim virtual clock,
// typed counters/gauges/histograms registered per subsystem, and two
// exporters — a text metrics report and Chrome trace_event JSON
// (chrome://tracing / Perfetto).
//
// The package is sim-clock-native: nothing here advances virtual time, so
// an instrumented run produces exactly the same schedule as an
// uninstrumented one. Every handle (*Sink, *Span, *Counter, *Gauge,
// *Hist, *Dist) is nil-safe: with no sink installed, instrumentation
// collapses to a nil check per call site and no allocation, so hot paths
// cost nothing when telemetry is disabled.
//
// A Sink is safe for use from multiple goroutines (the sim engine hands
// off between Proc goroutines, and one sink may be shared by several
// engines): registration and span bookkeeping take a mutex, counter
// updates are atomic.
package telemetry

import (
	"sync"
	"sync/atomic"

	"solros/internal/sim"
	"solros/internal/stats"
)

// Default is the process-wide sink used by core.NewMachine when the
// Config does not carry one. It is nil — telemetry off — unless a harness
// (e.g. solros-bench -trace) installs a sink before building machines.
var Default *Sink

// Options configures a Sink.
type Options struct {
	// MaxSpans bounds retained completed spans (the trace, not the
	// metrics, which are O(1)). Excess spans are counted as dropped.
	// Default 1<<20.
	MaxSpans int
}

// Sink is the telemetry registry and span collector.
type Sink struct {
	mu sync.Mutex

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	dists    map[string]*Dist
	kinds    map[string]string // name -> instrument kind, collision guard

	spans    []Span
	open     map[*sim.Proc][]*Span
	maxSpans int
	dropped  int64
	tids     map[string]int // proc name -> trace tid, in first-seen order
	tidOrder []string

	// nextSpanID allocates sink-unique span IDs. The sim engine
	// serializes Proc execution, so allocation order — and therefore
	// every ID — is deterministic for a given schedule.
	nextSpanID uint64

	// flight is the bounded blackbox ring; nil unless armed. See
	// flightrec.go.
	flight *flightRecorder

	// queues registers the occupancy-accounting instruments; win holds
	// windowed-rollup state (nil until EnableWindows). See window.go.
	queues map[string]*Queue
	win    *WindowSet

	// slo is the SLO watchdog; nil until SetObjectives. See slo.go.
	slo *sloState

	// observer is the completed-span hook (nil = none): called from
	// retain() for every completed span, including spans past the MaxSpans
	// cap, so a trace index keeps seeing activity after the main buffer
	// fills. It runs with s.mu held and must not call back into the sink.
	observer func(Span)

	// exemplars arms per-bucket exemplar capture on ObserveAt (see
	// Exemplar); atomic so the hot path checks it without taking s.mu.
	exemplars atomic.Bool

	// hotspotFn supplies the current hot-shard/hot-tenant attribution to
	// the SLO watchdog and the flight recorder (nil = none). Guarded by
	// s.mu for installation; called with no sink locks held.
	hotspotFn func() *Hotspot
}

// SetSpanObserver installs fn as the completed-span hook. fn is invoked
// from retain() under the sink mutex — it must be fast, must not block,
// and must not call any Sink method (that would self-deadlock). The
// analyze package's trace index is the intended consumer. Nil-safe;
// passing nil removes the hook.
func (s *Sink) SetSpanObserver(fn func(Span)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

// Hotspot names the dimension values currently dominating tail latency —
// the shard-imbalance detector's verdict, consumed by the SLO watchdog
// (breach reports name the hot shard) and the flight recorder (dumps are
// scoped to the hot shard's exemplar traces).
type Hotspot struct {
	// Shard and Tenant are the hottest dimension values ("" = unknown).
	Shard  string
	Tenant string
	// Skew is the hot shard's over-representation among p99-outlier
	// traces relative to its overall traffic share (1 = perfectly fair).
	Skew float64
	// Exemplars are trace IDs of representative outlier traces on the hot
	// shard, newest first.
	Exemplars []uint64
}

// SetHotspotSource installs fn as the hotspot supplier. fn is called with
// no sink locks held, on SLO breaches only; it may take its own locks but
// must not advance virtual time. Nil-safe; passing nil removes it.
func (s *Sink) SetHotspotSource(fn func() *Hotspot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.hotspotFn = fn
	s.mu.Unlock()
}

// hotspot fetches the current hotspot, nil when no source is installed or
// the source has nothing to report. Called with no sink locks held.
func (s *Sink) hotspot() *Hotspot {
	s.mu.Lock()
	fn := s.hotspotFn
	s.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// EnableExemplars arms exemplar capture: every ObserveAt that lands while
// a traced span is open on the observing Proc records (trace ID, value,
// timestamp) against the observation's histogram bucket, and the
// OpenMetrics exporter emits it on the bucket line — so a latency spike in
// a dashboard links to the concrete causal tree behind it. The sampling
// rule is "latest traced observation per bucket wins", which is
// deterministic under the sim's serialized execution. Nil-safe.
func (s *Sink) EnableExemplars() {
	if s == nil {
		return
	}
	s.exemplars.Store(true)
}

// New returns an empty sink.
func New(opt Options) *Sink {
	if opt.MaxSpans == 0 {
		opt.MaxSpans = 1 << 20
	}
	return &Sink{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
		dists:    make(map[string]*Dist),
		kinds:    make(map[string]string),
		open:     make(map[*sim.Proc][]*Span),
		maxSpans: opt.MaxSpans,
		tids:     make(map[string]int),
		queues:   make(map[string]*Queue),
	}
}

// register guards one namespace across all instrument kinds: re-registering
// the same name with the same kind is idempotent, with a different kind it
// panics (two subsystems fighting over a name is a bug worth failing fast
// on).
func (s *Sink) register(name, kind string) {
	if prev, ok := s.kinds[name]; ok && prev != kind {
		panic("telemetry: " + name + " already registered as " + prev + ", not " + kind)
	}
	s.kinds[name] = kind
}

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    atomic.Int64
}

// Counter returns the named counter, creating it on first use. A nil sink
// returns a nil counter whose methods are no-ops.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c
	}
	s.register(name, "counter")
	c := &Counter{name: name}
	s.counters[name] = c
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reports the current count; zero on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a sampled level (ring occupancy, queue depth). It keeps the
// last set value and the high-water mark.
type Gauge struct {
	name string
	v    atomic.Int64
	max  atomic.Int64
}

// Gauge returns the named gauge, creating it on first use.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.gauges[name]; ok {
		return g
	}
	s.register(name, "gauge")
	g := &Gauge{name: name}
	s.gauges[name] = g
	return g
}

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value reports the last set level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max reports the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Hist is a log2-bucketed histogram backed by stats.Histogram. Timed is
// set for virtual-time observations and controls how the text exporter
// renders bucket bounds.
type Hist struct {
	name  string
	timed bool
	sink  *Sink
	mu    sync.Mutex
	h     *stats.Histogram

	// Windowed view, armed only for SLO-referenced metrics (slo.go): each
	// window of the sim clock gets its own delta histogram so burn rates
	// evaluate over bounded ranges. every==0 means not windowed.
	every   sim.Time
	keep    int64
	win     map[int64]*stats.Histogram
	lastWin int64
	winSeen bool

	// ex holds one exemplar per occupied bucket (keyed by
	// stats.BucketKey); nil until the sink's exemplar capture is armed and
	// a traced observation lands.
	ex map[int]Exemplar
}

// Exemplar links one histogram bucket to a representative traced
// observation: the trace to pull up when the bucket's count spikes.
type Exemplar struct {
	Trace uint64   // causal-tree ID of the sampled observation
	Value sim.Time // the observation itself
	At    sim.Time // virtual time it was recorded
}

// Histogram returns the named time-valued histogram, creating it on first
// use.
func (s *Sink) Histogram(name string) *Hist { return s.histogram(name, true) }

// HistogramN returns the named unitless histogram (batch sizes, counts).
func (s *Sink) HistogramN(name string) *Hist { return s.histogram(name, false) }

func (s *Sink) histogram(name string, timed bool) *Hist {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.hists[name]; ok {
		return h
	}
	s.register(name, "histogram")
	h := &Hist{name: name, timed: timed, sink: s, h: stats.NewHistogram()}
	s.hists[name] = h
	return h
}

// Observe records one observation.
func (h *Hist) Observe(t sim.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(t)
	h.mu.Unlock()
}

// ObserveAt records one observation stamped with p's current virtual
// time. For SLO-referenced metrics the timestamp routes the observation
// into its sim-clock window; crossing into a new window hands the
// completed ones to the SLO watchdog. For everything else it degrades to
// Observe. Lock discipline: the watchdog runs after h.mu is released —
// it takes the sink mutex (and the flight recorder takes it again), and
// export paths hold the sink mutex while taking h.mu, so holding h.mu
// across the check would invert that order.
func (h *Hist) ObserveAt(p *sim.Proc, t sim.Time) {
	if h == nil {
		return
	}
	if p == nil || h.sink == nil {
		h.Observe(t)
		return
	}
	now := p.Now()
	// Exemplar capture resolves the trace context before h.mu is taken:
	// Current takes the sink mutex, and export paths hold it while taking
	// h.mu, so fetching it under h.mu would invert that order.
	var exCtx TraceCtx
	if h.sink.exemplars.Load() {
		exCtx = h.sink.Current(p)
	}
	h.mu.Lock()
	h.h.Add(t)
	if exCtx.Traced() {
		if h.ex == nil {
			h.ex = make(map[int]Exemplar)
		}
		h.ex[stats.BucketKey(t)] = Exemplar{Trace: exCtx.Trace, Value: t, At: now}
	}
	var completed int64
	check := false
	if h.every > 0 {
		wi := int64(now / h.every)
		hw := h.win[wi]
		if hw == nil {
			hw = stats.NewHistogram()
			h.win[wi] = hw
			for k := range h.win {
				if k < wi-h.keep {
					delete(h.win, k)
				}
			}
		}
		hw.Add(t)
		if !h.winSeen || wi > h.lastWin {
			if h.winSeen && wi > h.lastWin {
				completed, check = wi-1, true
			}
			h.lastWin, h.winSeen = wi, true
		}
	}
	h.mu.Unlock()
	if check {
		h.sink.sloCheck(p, h, completed)
	}
}

// windowClones returns copies of the window-delta histograms for windows
// in [from, to], oldest first; missing windows yield empty histograms.
func (h *Hist) windowClones(from, to int64) []*stats.Histogram {
	if h == nil || from > to {
		return nil
	}
	out := make([]*stats.Histogram, 0, to-from+1)
	h.mu.Lock()
	for wi := from; wi <= to; wi++ {
		if hw := h.win[wi]; hw != nil {
			out = append(out, hw.Clone())
		} else {
			out = append(out, stats.NewHistogram())
		}
	}
	h.mu.Unlock()
	return out
}

// N reports the observation count.
func (h *Hist) N() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.N()
}

// Exemplars returns a copy of the per-bucket exemplars, keyed by
// stats.BucketKey. Empty unless the sink's exemplar capture is armed.
func (h *Hist) Exemplars() map[int]Exemplar {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.ex) == 0 {
		return nil
	}
	out := make(map[int]Exemplar, len(h.ex))
	for k, e := range h.ex {
		out[k] = e
	}
	return out
}

// Snapshot returns an independent copy of the underlying histogram.
func (h *Hist) Snapshot() *stats.Histogram {
	if h == nil {
		return stats.NewHistogram()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Clone()
}

// Dist is an exact-percentile distribution backed by stats.Sample; use it
// where the figure code needs percentiles rather than bucket shapes.
type Dist struct {
	name string
	mu   sync.Mutex
	s    stats.Sample
}

// Dist returns the named distribution, creating it on first use.
func (s *Sink) Dist(name string) *Dist {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.dists[name]; ok {
		return d
	}
	s.register(name, "dist")
	d := &Dist{name: name}
	s.dists[name] = d
	return d
}

// Observe records one observation.
func (d *Dist) Observe(t sim.Time) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.s.Add(t)
	d.mu.Unlock()
}

// Sample returns an independent copy of the accumulated sample.
func (d *Dist) Sample() *stats.Sample {
	if d == nil {
		return &stats.Sample{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.s.Clone()
}

// N reports the observation count.
func (d *Dist) N() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.s.N()
}

// DroppedSpans reports spans discarded after MaxSpans was reached.
func (s *Sink) DroppedSpans() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SchedTracer adapts the sink into a sim.Tracer so the scheduler's
// spawn/dispatch/block/wake stream feeds the same registry as the
// subsystem instrumentation. Install with Engine.SetTracer.
func (s *Sink) SchedTracer() sim.Tracer {
	if s == nil {
		return nil
	}
	spawns := s.Counter("sim.spawns")
	dispatches := s.Counter("sim.dispatches")
	blocks := s.Counter("sim.blocks")
	wakes := s.Counter("sim.wakes")
	return func(ev sim.Event) {
		switch ev.Kind {
		case sim.EvSpawn:
			spawns.Add(1)
		case sim.EvDispatch:
			dispatches.Add(1)
		case sim.EvBlock:
			blocks.Add(1)
			s.Counter("sim.block." + ev.What).Add(1)
		case sim.EvWake:
			wakes.Add(1)
		}
	}
}
