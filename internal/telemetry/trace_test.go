package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"solros/internal/sim"
)

// TestTraceContextPropagation pins the inheritance rules: an explicit
// StartCtx roots a trace, plain Start children inherit trace and parent
// from the innermost open span, Current reports the innermost traced
// context, and spans on an untraced stack stay untraced.
func TestTraceContextPropagation(t *testing.T) {
	s := New(Options{})
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		root := s.StartCtx(p, "root", TraceCtx{Trace: 0xabc})
		p.Advance(2)
		child := s.Start(p, "child")
		p.Advance(2)
		if got := s.Current(p); got.Trace != 0xabc || got.Span != child.ID {
			t.Errorf("Current = %+v, want trace 0xabc span %d", got, child.ID)
		}
		grand := s.Start(p, "grandchild")
		grand.End(p)
		child.End(p)
		root.End(p)

		plain := s.Start(p, "untraced")
		if s.Current(p).Traced() {
			t.Error("untraced stack reported a traced context")
		}
		plain.End(p)
	})
	e.MustRun()

	spans := map[string]Span{}
	for _, sp := range s.Spans() {
		spans[sp.Name] = sp
	}
	root, child, grand := spans["root"], spans["child"], spans["grandchild"]
	if root.Trace != 0xabc || root.Parent != 0 {
		t.Errorf("root: trace %#x parent %d", root.Trace, root.Parent)
	}
	if child.Trace != 0xabc || child.Parent != root.ID {
		t.Errorf("child: trace %#x parent %d, want trace 0xabc parent %d", child.Trace, child.Parent, root.ID)
	}
	if grand.Trace != 0xabc || grand.Parent != child.ID {
		t.Errorf("grandchild: trace %#x parent %d, want parent %d", grand.Trace, grand.Parent, child.ID)
	}
	if u := spans["untraced"]; u.Trace != 0 || u.Parent != 0 {
		t.Errorf("untraced span carries trace %#x parent %d", u.Trace, u.Parent)
	}
	if ids := s.Traces(); len(ids) != 1 || ids[0] != 0xabc {
		t.Errorf("Traces() = %v, want [0xabc]", ids)
	}
}

// TestCriticalPathSumsToEndToEnd builds a synthetic delegated-read shape —
// root call, issue, wait, proxy serve with an NVMe leg and a DMA push —
// and checks that the stage attribution (a) sums exactly to the root's
// end-to-end latency and (b) charges the device legs to their stages, with
// the wait split around the serve window into ring_wait and reply_wait.
func TestCriticalPathSumsToEndToEnd(t *testing.T) {
	s := New(Options{})
	e := sim.NewEngine()
	e.Spawn("stub", 0, func(p *sim.Proc) {
		root := s.StartCtx(p, "dataplane.call", TraceCtx{Trace: 7})
		p.Advance(5) // stub-side marshal: "other"
		issue := s.Start(p, "dataplane.rpc.issue")
		p.Advance(10)
		issue.End(p)
		wait := s.StartCtx(p, "dataplane.rpc.wait", TraceCtx{Trace: 7, Span: issue.ID})
		p.Spawn("proxy", func(pp *sim.Proc) {
			pp.AdvanceTo(35) // ring transit: 20 of ring_wait
			serve := s.StartCtx(pp, "controlplane.fsproxy", TraceCtx{Trace: 7, Span: issue.ID})
			pp.Advance(5)
			nv := s.Start(pp, "nvme.submit")
			pp.Advance(40)
			nv.End(pp)
			push := s.Start(pp, "controlplane.fsproxy.push")
			pp.Advance(25)
			push.End(pp)
			serve.End(pp)
		})
		p.AdvanceTo(120) // proxy finished at 105; 15 of reply_wait
		wait.End(p)
		root.End(p)
	})
	e.MustRun()

	rp := s.CriticalPath(7)
	if rp == nil {
		t.Fatal("no critical path for trace 7")
	}
	if rp.Root.Name != "dataplane.call" {
		t.Fatalf("root = %s, want dataplane.call", rp.Root.Name)
	}
	var sum sim.Time
	byStage := map[string]sim.Time{}
	for _, sd := range rp.Stages {
		sum += sd.Dur
		byStage[sd.Stage] = sd.Dur
	}
	if sum != rp.Total {
		t.Fatalf("stages sum to %v, end-to-end is %v", sum, rp.Total)
	}
	if byStage["nvme"] != 40 {
		t.Errorf("nvme = %v, want 40", byStage["nvme"])
	}
	if byStage["copy_dma"] != 25 {
		t.Errorf("copy_dma = %v, want 25", byStage["copy_dma"])
	}
	if byStage["ring_wait"] != 20 {
		t.Errorf("ring_wait = %v, want 20", byStage["ring_wait"])
	}
	if byStage["reply_wait"] != 15 {
		t.Errorf("reply_wait = %v, want 15", byStage["reply_wait"])
	}

	roll := s.StageRollup()
	if roll["nvme"] == nil || roll["nvme"].N() != 1 || roll["nvme"].Percentile(50) != 40 {
		t.Errorf("rollup nvme = %+v, want one 40-tick sample", roll["nvme"])
	}
}

// TestUnbalancedEndTagsTruncated pins satellite 2: a parent ended with
// children still open force-closes them with a truncated=1 tag, so the
// report distinguishes them from cleanly-ended spans.
func TestUnbalancedEndTagsTruncated(t *testing.T) {
	s := New(Options{})
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		parent := s.Start(p, "parent")
		s.Start(p, "orphan")
		p.Advance(3)
		parent.End(p)
	})
	e.MustRun()
	for _, sp := range s.Spans() {
		truncated := false
		for _, tag := range sp.Tags {
			if tag.Key == "truncated" && tag.IsInt && tag.Int == 1 {
				truncated = true
			}
		}
		if sp.Name == "orphan" && !truncated {
			t.Error("force-closed child missing truncated=1 tag")
		}
		if sp.Name == "parent" && truncated {
			t.Error("cleanly-ended parent tagged truncated")
		}
	}
}

// TestFlightRecorderDump pins the blackbox contract: an armed recorder
// snapshots the last spans, and TriggerFlight writes a JSON dump naming
// the trace of the innermost open traced span at the trigger point.
func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{})
	s.ArmFlightRecorder(dir, 4, 2)
	if !s.FlightRecorderArmed() {
		t.Fatal("recorder not armed")
	}
	s.Counter("faults.test").Add(3)
	var path string
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		for i := 0; i < 6; i++ { // overflow the 4-span ring
			sp := s.StartCtx(p, "warmup", TraceCtx{Trace: uint64(100 + i)})
			p.Advance(1)
			sp.End(p)
		}
		sp := s.StartCtx(p, "faulted.op", TraceCtx{Trace: 0xdead})
		p.Advance(1)
		path = s.TriggerFlight(p, "nvme media error!")
		sp.End(p)
	})
	e.MustRun()

	if path == "" {
		t.Fatal("TriggerFlight returned no path")
	}
	if path != s.LastFlightDump() {
		t.Errorf("LastFlightDump = %q, want %q", s.LastFlightDump(), path)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("dump landed in %s, want %s", filepath.Dir(path), dir)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Reason       string           `json:"reason"`
		FaultedTrace string           `json:"faulted_trace"`
		Spans        []map[string]any `json:"spans"`
		OpenSpans    []map[string]any `json:"open_spans"`
		Counters     map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if dump.Reason != "nvme media error!" {
		t.Errorf("reason = %q", dump.Reason)
	}
	if dump.FaultedTrace != "0xdead" {
		t.Errorf("faulted_trace = %q, want 0xdead (the open span's trace)", dump.FaultedTrace)
	}
	if len(dump.Spans) == 0 || len(dump.Spans) > 4 {
		t.Errorf("ringed spans = %d, want 1..4", len(dump.Spans))
	}
	if len(dump.OpenSpans) == 0 {
		t.Error("open faulted span missing from dump")
	}
	if dump.Counters["faults.test"] != 3 {
		t.Errorf("counters = %v, want faults.test=3", dump.Counters)
	}

	// A second trigger must produce a distinct dump; the MaxDumps=2 cap
	// then silences the third.
	if p2 := s.TriggerFlight(nil, "again"); p2 == "" || p2 == path {
		t.Errorf("second dump = %q", p2)
	}
	if p3 := s.TriggerFlight(nil, "over cap"); p3 != "" {
		t.Errorf("third dump %q exceeded MaxDumps", p3)
	}

	// Nil-safety: a nil sink and an unarmed sink both no-op.
	var nilSink *Sink
	if nilSink.TriggerFlight(nil, "x") != "" || New(Options{}).TriggerFlight(nil, "x") != "" {
		t.Error("unarmed TriggerFlight wrote a dump")
	}
}
