package telemetry

import (
	"strings"
	"sync"
	"testing"

	"solros/internal/sim"
)

// Queue accounting: arrivals, departures, occupancy integral, and the
// per-window split of all three.
func TestQueueLittleAccounting(t *testing.T) {
	s := New(Options{})
	s.EnableWindows(100)
	q := s.Queue("q")

	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		q.Arrive(p) // occ 1 at t=0
		p.Advance(50)
		q.Arrive(p) // occ 2 at t=50
		p.Advance(100)
		q.Depart(p) // occ 1 at t=150
		p.Advance(50)
		q.Depart(p) // occ 0 at t=200
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	arr, dep, hwm := q.Totals()
	if arr != 2 || dep != 2 || hwm != 2 {
		t.Errorf("totals = (%d, %d, %d), want (2, 2, 2)", arr, dep, hwm)
	}
	// Occupancy integral: 1*50 + 2*100 + 1*50 = 300; mean wait = 300/2.
	if w := q.MeanWait(); w != 150 {
		t.Errorf("MeanWait = %v, want 150", w)
	}
	if occ := q.Occupancy(); occ != 0 {
		t.Errorf("final occupancy = %d, want 0", occ)
	}

	s.SealWindows(200)
	r0 := s.WindowRollup(0)
	if len(r0.Queues) != 1 {
		t.Fatalf("window 0 has %d queues, want 1", len(r0.Queues))
	}
	// Window 0 covers [0,100): occ 1 on [0,50) + occ 2 on [50,100) = 150.
	qw := r0.Queues[0]
	if qw.Arrivals != 2 || qw.MeanOcc != 1.5 || qw.MaxOcc != 2 {
		t.Errorf("window 0 queue = %+v, want arrivals 2, L 1.5, max 2", qw)
	}
	// W = area/arrivals = 150/2.
	if qw.Wait != 75 {
		t.Errorf("window 0 wait = %v, want 75", qw.Wait)
	}
	// The depart at t=150 is window 1's; the one at t=200 falls on window
	// 2's opening edge and window 2 never completes here.
	r1 := s.WindowRollup(1)
	if len(r1.Queues) != 1 || r1.Queues[0].Departures != 1 {
		t.Fatalf("window 1 queues = %+v, want 1 departure", r1.Queues)
	}
	// Window 1 covers [100,200): occ 2 on [100,150) + occ 1 on [150,200).
	if r1.Queues[0].MeanOcc != 1.5 {
		t.Errorf("window 1 L = %v, want 1.5", r1.Queues[0].MeanOcc)
	}
}

// Stage windows split span busy time exactly across window boundaries and
// land ops in the finish window.
func TestStageWindowSplit(t *testing.T) {
	s := New(Options{})
	s.EnableWindows(100)
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		p.Advance(50)
		sp := s.Start(p, "nvme.submit") // begins at 50
		p.Advance(100)
		sp.End(p) // finishes at 150: 50ns in window 0, 50ns in window 1
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s.SealWindows(200)
	r0, r1 := s.WindowRollup(0), s.WindowRollup(1)
	find := func(r *WindowRollup, stage string) *StageRow {
		for i := range r.Stages {
			if r.Stages[i].Stage == stage {
				return &r.Stages[i]
			}
		}
		return nil
	}
	s0, s1 := find(r0, "nvme"), find(r1, "nvme")
	if s0 == nil || s1 == nil {
		t.Fatalf("nvme stage missing: w0=%+v w1=%+v", r0.Stages, r1.Stages)
	}
	if s0.Busy != 50 || s1.Busy != 50 {
		t.Errorf("busy split = (%v, %v), want (50, 50)", s0.Busy, s1.Busy)
	}
	if s0.Ops != 0 || s1.Ops != 1 {
		t.Errorf("ops = (%d, %d), want (0, 1) — op lands in finish window", s0.Ops, s1.Ops)
	}
}

// windowStageOf folds request roots into "request" and the RPC wait into
// ring_wait; everything else follows the critical-path classifier.
func TestWindowStageOf(t *testing.T) {
	cases := map[string]string{
		"dataplane.call":              "request",
		"dataplane.fs.read_pipelined": "request",
		"dataplane.rpc.wait":          "ring_wait",
		"nvme.submit":                 "nvme",
		"transport.send":              "ring_op",
		"controlplane.fsproxy":        "proxy_serve",
		"pcie.dma":                    "copy_dma",
		"mystery":                     "other",
	}
	for name, want := range cases {
		if got := windowStageOf(name); got != want {
			t.Errorf("windowStageOf(%q) = %q, want %q", name, got, want)
		}
	}
}

// Windows off: rollup surface reports empty, queue still keeps cheap
// cumulative totals, nil sink is safe throughout.
func TestWindowsDisabledAndNil(t *testing.T) {
	s := New(Options{})
	q := s.Queue("q")
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		q.Arrive(p)
		p.Advance(10)
		q.Depart(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if s.WindowsEnabled() || s.WindowRollup(0) != nil || len(s.CompletedWindows()) != 0 {
		t.Error("windows-off sink reported windowed state")
	}
	if w := q.MeanWait(); w != 10 {
		t.Errorf("cumulative MeanWait = %v, want 10", w)
	}

	var nilSink *Sink
	nilSink.EnableWindows(100)
	nilSink.SealWindows(0)
	nq := nilSink.Queue("x")
	nq.Arrive(nil)
	nq.DepartN(nil, 3)
	if nq.Occupancy() != 0 || nilSink.WindowsEnabled() {
		t.Error("nil sink queue not inert")
	}
}

// The per-window OpenMetrics stream is deterministic: identical event
// sequences yield byte-identical dumps.
func TestWindowOpenMetricsDeterministic(t *testing.T) {
	run := func() string {
		s := New(Options{})
		s.EnableWindows(100)
		q := s.Queue("transport.ring")
		e := sim.NewEngine()
		e.Spawn("p", 0, func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				sp := s.Start(p, "nvme.submit")
				q.Arrive(p)
				p.Advance(70)
				q.Depart(p)
				sp.End(p)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		s.SealWindows(350)
		var b strings.Builder
		if err := s.WriteWindows(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("windowed dumps differ:\n%s\n----\n%s", a, b)
	}
	if !strings.Contains(a, `solros_window_stage_busy_seconds{window="0",stage="nvme"}`) {
		t.Errorf("missing stage sample in:\n%s", a)
	}
	if !strings.Contains(a, `solros_window_queue_mean_occupancy{window="0",queue="transport.ring"}`) {
		t.Errorf("missing queue sample in:\n%s", a)
	}
	if !strings.HasSuffix(a, "# EOF\n") {
		t.Error("dump not terminated with # EOF")
	}
}

// The cumulative OpenMetrics exporter renders every instrument kind and
// terminates correctly.
func TestWriteOpenMetrics(t *testing.T) {
	s := New(Options{})
	s.Counter("x.events").Add(3)
	s.Gauge("x.depth").Set(2)
	s.Histogram("x.lat").Observe(1000)
	s.HistogramN("x.batch").Observe(4)
	s.Dist("x.rtt").Observe(500)
	var b strings.Builder
	if err := s.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"solros_x_events_total 3",
		"solros_x_depth 2",
		"# TYPE solros_x_lat_seconds histogram",
		`solros_x_lat_seconds_bucket{le="+Inf"} 1`,
		"# TYPE solros_x_batch histogram",
		`solros_x_rtt_seconds{quantile="0.5"}`,
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	var nilSink *Sink
	b.Reset()
	if err := nilSink.WriteOpenMetrics(&b); err != nil || b.String() != "# EOF\n" {
		t.Errorf("nil sink OpenMetrics = (%q, %v)", b.String(), err)
	}
}

// counterSnapshotInto reuses the destination map: after the first fill,
// repeated snapshots of a stable counter set do not allocate.
func TestCounterSnapshotReuse(t *testing.T) {
	s := New(Options{})
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		s.Counter("ctr." + name).Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	scratch := s.counterSnapshotInto(nil)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = s.counterSnapshotInto(scratch)
	})
	if allocs > 0 {
		t.Errorf("counterSnapshotInto allocated %.1f times per run, want 0", allocs)
	}
	if len(scratch) != 8 {
		t.Errorf("snapshot has %d entries, want 8", len(scratch))
	}
}

// Flight-recorder dumps racing span emission and windowed observation:
// run under -race, this pins the lock discipline between retain(), the
// window feed, ObserveAt's deferred SLO check, and TriggerFlight.
func TestConcurrentFlightDumpVsSpans(t *testing.T) {
	s := New(Options{})
	s.EnableWindows(100)
	s.ArmFlightRecorder(t.TempDir(), 64, 1000)
	s.SetObjectives([]Objective{{Metric: "x.lat", Target: 10, Percentile: 99}})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	dumperDone := make(chan struct{})
	go func() {
		defer close(dumperDone)
		for {
			select {
			case <-stop:
				return
			default:
				s.TriggerFlight(nil, "race-probe")
				_ = s.SLOViolations()
				var b strings.Builder
				_ = s.WriteWindows(&b)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := sim.NewEngine()
			e.Spawn("p", 0, func(p *sim.Proc) {
				h := s.Histogram("x.lat")
				q := s.Queue("q")
				for n := 0; n < 200; n++ {
					sp := s.Start(p, "nvme.submit")
					q.Arrive(p)
					p.Advance(25)
					h.ObserveAt(p, 25)
					q.Depart(p)
					sp.End(p)
				}
			})
			if err := e.Run(); err != nil {
				panic(err)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-dumperDone
}
