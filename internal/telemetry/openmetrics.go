package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"solros/internal/sim"
	"solros/internal/stats"
)

// OpenMetrics / Prometheus text-format exporter. Two surfaces:
//
//   - WriteOpenMetrics: the cumulative registry — counters, gauges,
//     histograms (log2 buckets rendered as le bounds in seconds),
//     distributions as summary quantiles.
//   - WriteWindowOpenMetrics / WriteWindows / DumpWindowFiles: the
//     windowed rollups — per-stage busy time, utilization, throughput,
//     and latency quantiles plus per-queue Little's-law accounting, one
//     labelled sample set per completed window.
//
// All output is sorted and formatted deterministically (strconv, never
// %v on floats), so the same schedule yields byte-identical dumps — the
// property the window-determinism test pins.

// omName maps a telemetry name to an OpenMetrics metric name: prefixed
// with solros_, dots and dashes to underscores, anything else
// non-alphanumeric dropped.
func omName(name string) string {
	var b strings.Builder
	b.WriteString("solros_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '.', r == '-', r == '/':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// omFloat renders a float deterministically.
func omFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// omEscape escapes a label value per the OpenMetrics text format:
// backslash, double quote, and newline get backslash escapes; everything
// else passes through verbatim. Go's %q is close but not conformant — it
// escapes tabs, non-ASCII, and other control characters that OpenMetrics
// requires to be emitted raw.
func omEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// omLabel renders one key="value" pair with a conformantly escaped value.
func omLabel(key, value string) string {
	return key + `="` + omEscape(value) + `"`
}

// omSeconds renders a virtual-time value in seconds.
func omSeconds(t sim.Time) string {
	return omFloat(t.Seconds())
}

// WriteOpenMetrics renders the cumulative registry in OpenMetrics text
// format, terminated by # EOF. Nil-safe.
func (s *Sink) WriteOpenMetrics(w io.Writer) error {
	var b strings.Builder
	if s == nil {
		b.WriteString("# EOF\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	s.mu.Lock()
	for _, name := range sortedKeys(s.counters) {
		mn := omName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", mn)
		fmt.Fprintf(&b, "%s_total %d\n", mn, s.counters[name].Value())
	}
	for _, name := range sortedKeys(s.gauges) {
		g := s.gauges[name]
		mn := omName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", mn)
		fmt.Fprintf(&b, "%s %d\n", mn, g.Value())
		fmt.Fprintf(&b, "# TYPE %s_max gauge\n", mn)
		fmt.Fprintf(&b, "%s_max %d\n", mn, g.Max())
	}
	for _, name := range sortedKeys(s.queues) {
		q := s.queues[name]
		mn := omName(name)
		arr, dep, hwm := q.Totals()
		fmt.Fprintf(&b, "# TYPE %s_arrivals counter\n", mn)
		fmt.Fprintf(&b, "%s_arrivals_total %d\n", mn, arr)
		fmt.Fprintf(&b, "# TYPE %s_departures counter\n", mn)
		fmt.Fprintf(&b, "%s_departures_total %d\n", mn, dep)
		fmt.Fprintf(&b, "# TYPE %s_occupancy gauge\n", mn)
		fmt.Fprintf(&b, "%s_occupancy %d\n", mn, q.Occupancy())
		fmt.Fprintf(&b, "# TYPE %s_occupancy_max gauge\n", mn)
		fmt.Fprintf(&b, "%s_occupancy_max %d\n", mn, hwm)
		fmt.Fprintf(&b, "# TYPE %s_wait_seconds gauge\n", mn)
		fmt.Fprintf(&b, "%s_wait_seconds %s\n", mn, omSeconds(q.MeanWait()))
	}
	for _, name := range sortedKeys(s.hists) {
		h := s.hists[name]
		h.mu.Lock()
		buckets := h.h.Buckets()
		n := h.h.N()
		timed := h.timed
		var ex map[int]Exemplar
		if len(h.ex) > 0 {
			ex = make(map[int]Exemplar, len(h.ex))
			for k, e := range h.ex {
				ex[k] = e
			}
		}
		h.mu.Unlock()
		mn := omName(name)
		if timed {
			mn += "_seconds"
		}
		fmt.Fprintf(&b, "# TYPE %s histogram\n", mn)
		cum := 0
		var sum float64
		for _, bk := range buckets {
			cum += bk.Count
			le := omSeconds(bk.Hi)
			mid := (bk.Lo.Seconds() + bk.Hi.Seconds()) / 2
			if !timed {
				le = omFloat(float64(bk.Hi))
				mid = (float64(bk.Lo) + float64(bk.Hi)) / 2
			}
			sum += mid * float64(bk.Count)
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d", mn, le, cum)
			// OpenMetrics exemplar: the trace ID of a representative
			// observation in this bucket, so a scrape can jump from a
			// latency bucket straight to a concrete request.
			if e, ok := ex[stats.BucketKey(bk.Lo)]; ok && e.Trace != 0 {
				fmt.Fprintf(&b, " # {%s} %s %s",
					omLabel("trace_id", fmt.Sprintf("%#x", e.Trace)),
					omSeconds(e.Value), omSeconds(e.At))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", mn, n)
		// Sum is reconstructed from bucket midpoints (the log2 histogram
		// keeps counts, not totals) — good to within a factor of the
		// bucket width.
		fmt.Fprintf(&b, "%s_sum %s\n", mn, omFloat(sum))
		fmt.Fprintf(&b, "%s_count %d\n", mn, n)
	}
	for _, name := range sortedKeys(s.dists) {
		d := s.dists[name]
		d.mu.Lock()
		sample := d.s.Clone()
		d.mu.Unlock()
		mn := omName(name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s summary\n", mn)
		for _, q := range []float64{50, 90, 99} {
			fmt.Fprintf(&b, "%s{quantile=\"%s\"} %s\n", mn, omFloat(q/100), omSeconds(sample.Percentile(q)))
		}
		fmt.Fprintf(&b, "%s_count %d\n", mn, sample.N())
	}
	s.mu.Unlock()

	st := func() *sloState { s.mu.Lock(); defer s.mu.Unlock(); return s.slo }()
	if st != nil {
		st.mu.Lock()
		nviol := len(st.violations)
		st.mu.Unlock()
		fmt.Fprintf(&b, "# TYPE solros_slo_violations counter\n")
		fmt.Fprintf(&b, "solros_slo_violations_total %d\n", nviol)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeWindowBody renders one window's rollup without the trailing # EOF,
// so the per-window files and the concatenated stream share one body.
func (s *Sink) writeWindowBody(b *strings.Builder, r *WindowRollup) {
	win := strconv.FormatInt(r.Index, 10)
	fmt.Fprintf(b, "# window %s [%s, %s)\n", win, r.Start, r.End)
	fmt.Fprintf(b, "solros_window_start_seconds{%s} %s\n", omLabel("window", win), omSeconds(r.Start))
	fmt.Fprintf(b, "solros_window_end_seconds{%s} %s\n", omLabel("window", win), omSeconds(r.End))
	for _, st := range r.Stages {
		wl := omLabel("window", win)
		sl := omLabel("stage", st.Stage)
		l := "{" + wl + "," + sl + "}"
		fmt.Fprintf(b, "solros_window_stage_busy_seconds%s %s\n", l, omSeconds(st.Busy))
		fmt.Fprintf(b, "solros_window_stage_utilization%s %s\n", l, omFloat(st.Util))
		fmt.Fprintf(b, "solros_window_stage_ops%s %d\n", l, st.Ops)
		fmt.Fprintf(b, "solros_window_stage_latency_seconds{%s,%s,quantile=\"0.5\"} %s\n", wl, sl, omSeconds(st.P50))
		fmt.Fprintf(b, "solros_window_stage_latency_seconds{%s,%s,quantile=\"0.99\"} %s\n", wl, sl, omSeconds(st.P99))
	}
	for _, q := range r.Queues {
		l := "{" + omLabel("window", win) + "," + omLabel("queue", q.Queue) + "}"
		fmt.Fprintf(b, "solros_window_queue_arrivals%s %d\n", l, q.Arrivals)
		fmt.Fprintf(b, "solros_window_queue_departures%s %d\n", l, q.Departures)
		fmt.Fprintf(b, "solros_window_queue_arrival_rate_hz%s %s\n", l, omFloat(q.RateHz))
		fmt.Fprintf(b, "solros_window_queue_mean_occupancy%s %s\n", l, omFloat(q.MeanOcc))
		fmt.Fprintf(b, "solros_window_queue_max_occupancy%s %d\n", l, q.MaxOcc)
		fmt.Fprintf(b, "solros_window_queue_wait_seconds%s %s\n", l, omSeconds(q.Wait))
	}
}

// WriteWindowOpenMetrics renders one completed window's rollup in
// OpenMetrics text format. Nil-safe.
func (s *Sink) WriteWindowOpenMetrics(w io.Writer, idx int64) error {
	var b strings.Builder
	if r := s.WindowRollup(idx); r != nil {
		s.writeWindowBody(&b, r)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteWindows renders every completed window, concatenated in window
// order — the whole run's windowed history as one deterministic stream.
func (s *Sink) WriteWindows(w io.Writer) error {
	var b strings.Builder
	for _, idx := range s.CompletedWindows() {
		if r := s.WindowRollup(idx); r != nil {
			s.writeWindowBody(&b, r)
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// DumpWindowFiles writes one OpenMetrics file per completed window into
// dir (created if needed) as window-NNNNNN.om, returning the number of
// files written.
func (s *Sink) DumpWindowFiles(dir string) (int, error) {
	idxs := s.CompletedWindows()
	if len(idxs) == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	written := 0
	for _, idx := range idxs {
		var b strings.Builder
		if r := s.WindowRollup(idx); r != nil {
			s.writeWindowBody(&b, r)
		}
		b.WriteString("# EOF\n")
		path := filepath.Join(dir, fmt.Sprintf("window-%06d.om", idx))
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

// metricsServers dedupes ServeMetrics by requested address, so several
// machines configured with the same -metrics-addr share one listener.
var metricsServers struct {
	mu     sync.Mutex
	actual map[string]string
}

// ServeMetrics exposes the sink over HTTP for wall-clock runs:
// GET /metrics returns the cumulative registry, GET /metrics/windows the
// concatenated windowed rollups. Returns the bound address (useful with
// ":0"). Serving the same addr twice reuses the first listener. The
// server runs until process exit — the sim is virtual-time, so there is
// nothing to gracefully drain.
func ServeMetrics(addr string, s *Sink) (string, error) {
	metricsServers.mu.Lock()
	defer metricsServers.mu.Unlock()
	if actual, ok := metricsServers.actual[addr]; ok {
		return actual, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = s.WriteOpenMetrics(w)
	})
	mux.HandleFunc("/metrics/windows", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = s.WriteWindows(w)
	})
	go func() { _ = http.Serve(ln, mux) }()
	if metricsServers.actual == nil {
		metricsServers.actual = make(map[string]string)
	}
	actual := ln.Addr().String()
	metricsServers.actual[addr] = actual
	return actual, nil
}
