package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"solros/internal/sim"
)

func TestCountersGaugesAndDists(t *testing.T) {
	s := New(Options{})
	c := s.Counter("x.events")
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if s.Counter("x.events") != c {
		t.Error("re-registration returned a different counter")
	}

	g := s.Gauge("x.depth")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 7 {
		t.Errorf("gauge = %d max %d, want 3 max 7", g.Value(), g.Max())
	}

	h := s.Histogram("x.lat")
	h.Observe(5)
	h.Observe(0)
	if h.N() != 2 || h.Snapshot().Count(5) != 1 {
		t.Errorf("hist n = %d, count[4,8) = %d", h.N(), h.Snapshot().Count(5))
	}

	d := s.Dist("x.rtt")
	d.Observe(10)
	d.Observe(30)
	if d.N() != 2 || d.Sample().Percentile(100) != 30 {
		t.Errorf("dist n = %d max %v", d.N(), d.Sample().Percentile(100))
	}
}

func TestCrossKindRegistrationPanics(t *testing.T) {
	s := New(Options{})
	s.Counter("clash")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's name did not panic")
		}
	}()
	s.Gauge("clash")
}

// Everything must be callable through nil handles: this is how disabled
// telemetry stays free on hot paths.
func TestNilSafety(t *testing.T) {
	var s *Sink
	s.Counter("a").Add(1)
	s.Gauge("b").Set(2)
	s.Histogram("c").Observe(3)
	s.HistogramN("d").Observe(4)
	s.Dist("e").Observe(5)
	if s.Counter("a").Value() != 0 || s.DroppedSpans() != 0 {
		t.Error("nil sink reported non-zero state")
	}
	if s.SchedTracer() != nil {
		t.Error("nil sink returned a non-nil tracer")
	}
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		sp := s.Start(p, "noop")
		sp.Tag("k", "v")
		sp.TagInt("n", 1)
		sp.End(p)
	})
	e.MustRun()
	if s.Spans() != nil {
		t.Error("nil sink retained spans")
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil-sink trace is not valid JSON: %v", err)
	}
}

// Spans started while another is open on the same proc become children:
// depth increments, and an unbalanced End force-closes the orphans.
func TestSpanNesting(t *testing.T) {
	s := New(Options{})
	e := sim.NewEngine()
	e.Spawn("worker", 0, func(p *sim.Proc) {
		outer := s.Start(p, "outer")
		p.Advance(10)
		inner := s.Start(p, "inner")
		p.Advance(5)
		inner.End(p)
		p.Advance(1)
		outer.End(p)

		orphanParent := s.Start(p, "parent")
		s.Start(p, "orphan") // never explicitly ended
		p.Advance(3)
		orphanParent.End(p)
	})
	e.MustRun()

	byName := map[string]Span{}
	for _, sp := range s.Spans() {
		byName[sp.Name] = sp
	}
	if len(byName) != 4 {
		t.Fatalf("retained %d distinct spans, want 4", len(byName))
	}
	if byName["outer"].Depth != 0 || byName["inner"].Depth != 1 {
		t.Errorf("depths: outer=%d inner=%d, want 0 and 1",
			byName["outer"].Depth, byName["inner"].Depth)
	}
	in, out := byName["inner"], byName["outer"]
	if in.Begin < out.Begin || in.Finish > out.Finish {
		t.Errorf("inner [%d,%d] not contained in outer [%d,%d]",
			in.Begin, in.Finish, out.Begin, out.Finish)
	}
	if in.Duration() != 5 || out.Duration() != 16 {
		t.Errorf("durations: inner=%d outer=%d, want 5 and 16", in.Duration(), out.Duration())
	}
	// The orphan was force-closed when its parent ended.
	if byName["orphan"].Finish != byName["parent"].Finish {
		t.Errorf("orphan finish %d != parent finish %d",
			byName["orphan"].Finish, byName["parent"].Finish)
	}
}

func TestMaxSpansDropsExcess(t *testing.T) {
	s := New(Options{MaxSpans: 2})
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			sp := s.Start(p, "s")
			p.Advance(1)
			sp.End(p)
		}
	})
	e.MustRun()
	if len(s.Spans()) != 2 || s.DroppedSpans() != 3 {
		t.Errorf("retained %d dropped %d, want 2 and 3", len(s.Spans()), s.DroppedSpans())
	}
}

func TestSchedTracerFeedsCounters(t *testing.T) {
	s := New(Options{})
	e := sim.NewEngine()
	e.SetTracer(s.SchedTracer())
	c := sim.NewCond("gate")
	e.Spawn("waiter", 0, func(p *sim.Proc) { p.Wait(c) })
	e.Spawn("waker", 5, func(p *sim.Proc) {
		p.Advance(1)
		p.Signal(c)
	})
	e.MustRun()
	if s.Counter("sim.spawns").Value() != 2 {
		t.Errorf("spawns = %d, want 2", s.Counter("sim.spawns").Value())
	}
	if s.Counter("sim.blocks").Value() != 1 || s.Counter("sim.block.gate").Value() != 1 {
		t.Errorf("blocks = %d, per-blocker = %d, want 1 and 1",
			s.Counter("sim.blocks").Value(), s.Counter("sim.block.gate").Value())
	}
	if s.Counter("sim.dispatches").Value() == 0 || s.Counter("sim.wakes").Value() != 1 {
		t.Errorf("dispatches = %d wakes = %d",
			s.Counter("sim.dispatches").Value(), s.Counter("sim.wakes").Value())
	}
}

// buildSink runs a tiny deterministic scenario used by both exporter tests.
func buildSink(t *testing.T) *Sink {
	t.Helper()
	s := New(Options{})
	s.Counter("pcie.txns").Add(42)
	s.Gauge("ring.occupancy").Set(3)
	s.Histogram("rpc.lat").Observe(100)
	s.HistogramN("batch").Observe(4)
	s.Dist("rtt").Observe(250)
	e := sim.NewEngine()
	e.Spawn("app", 0, func(p *sim.Proc) {
		call := s.Start(p, "dataplane.call")
		call.Tag("type", "Tread")
		p.Advance(20)
		send := s.Start(p, "transport.send")
		send.TagInt("bytes", 64)
		p.Advance(10)
		send.End(p)
		call.End(p)
	})
	e.MustRun()
	return s
}

func TestWriteTextReport(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSink(t).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"-- counters --",
		"pcie.txns",
		"42",
		"-- gauges --",
		"ring.occupancy",
		"-- distributions --",
		"rtt",
		"-- histograms --",
		"rpc.lat",
		"[64ns, 128ns)", // 100ns lands in bucket 6
		"[4, 8)",        // unitless batch histogram renders raw bounds
		"-- spans --",
		"dataplane.call",
		"transport.send",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSink(t).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var meta, complete int
	byName := map[string]int{}
	for i, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			byName[ev.Name] = i
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 1 || complete != 2 {
		t.Fatalf("meta = %d complete = %d, want 1 and 2", meta, complete)
	}
	call := out.TraceEvents[byName["dataplane.call"]]
	send := out.TraceEvents[byName["transport.send"]]
	if call.Cat != "dataplane" || send.Cat != "transport" {
		t.Errorf("categories: %q, %q", call.Cat, send.Cat)
	}
	// Timestamps are microseconds: the call spans [0, 30ns] = 0.03 us.
	if call.Ts != 0 || call.Dur != 0.03 {
		t.Errorf("call ts=%v dur=%v, want 0 and 0.03", call.Ts, call.Dur)
	}
	// Containment on the same tid is what chrome://tracing nests by.
	if send.Tid != call.Tid || send.Ts < call.Ts || send.Ts+send.Dur > call.Ts+call.Dur {
		t.Errorf("send [%v,%v] tid %d not nested in call [%v,%v] tid %d",
			send.Ts, send.Ts+send.Dur, send.Tid, call.Ts, call.Ts+call.Dur, call.Tid)
	}
	if send.Args["bytes"] != float64(64) || call.Args["type"] != "Tread" {
		t.Errorf("args: send=%v call=%v", send.Args, call.Args)
	}
}
