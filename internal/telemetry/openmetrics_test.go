package telemetry

import (
	"strings"
	"testing"

	"solros/internal/sim"
)

// omEscape must escape exactly the three characters the OpenMetrics text
// format names — backslash, double quote, newline — and pass everything
// else through raw. Go's %q would over-escape tabs and non-ASCII, which
// a conformant parser then reads back wrong.
func TestOMEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"tab\tkept", "tab\tkept"},
		{"utf8 é≤", "utf8 é≤"},
		{"\\\"\n", `\\\"\n`},
	}
	for _, c := range cases {
		if got := omEscape(c.in); got != c.want {
			t.Errorf("omEscape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Adversarial label values — quotes, backslashes, newlines in a queue
// name — must come out escaped so every exposition line stays a single
// well-formed line, with one # EOF terminator at the very end.
func TestOpenMetricsConformanceAdversarialLabels(t *testing.T) {
	s := New(Options{})
	s.EnableWindows(100)
	evil := "ring \"prod\"\\v1\nnext"
	q := s.Queue(evil)
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		sp := s.Start(p, "nvme.submit")
		q.Arrive(p)
		p.Advance(70)
		q.Depart(p)
		sp.End(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s.SealWindows(100)

	var b strings.Builder
	if err := s.WriteWindows(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	want := `queue="ring \"prod\"\\v1\nnext"`
	if !strings.Contains(out, want) {
		t.Errorf("escaped label %s missing in:\n%s", want, out)
	}
	// Every line must be a comment or a sample starting with the metric
	// prefix — a raw newline inside a label value would break this.
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "solros_") {
			continue
		}
		t.Errorf("line %d is not a valid exposition line: %q", i+1, line)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("output not terminated with # EOF")
	}
	if n := strings.Count(out, "# EOF"); n != 1 {
		t.Errorf("found %d # EOF markers, want exactly 1", n)
	}
}

// With exemplar capture armed, a histogram observation made under a live
// trace attaches that trace's ID to its bucket line in OpenMetrics
// exemplar syntax.
func TestOpenMetricsExemplars(t *testing.T) {
	s := New(Options{})
	s.EnableExemplars()
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		sp := s.StartCtx(p, "workload.request", TraceCtx{Trace: 0xabc})
		p.Advance(10)
		s.Histogram("x.lat").ObserveAt(p, 123)
		sp.End(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	ex := s.Histogram("x.lat").Exemplars()
	if len(ex) != 1 {
		t.Fatalf("captured %d exemplars, want 1", len(ex))
	}
	for _, x := range ex {
		if x.Trace != 0xabc || x.Value != 123 || x.At != 10 {
			t.Fatalf("exemplar = %+v, want trace 0xabc value 123 at 10", x)
		}
	}

	var b strings.Builder
	if err := s.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	hit := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "_bucket{le=") && strings.Contains(line, `# {trace_id="0xabc"}`) {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no bucket line carries the exemplar in:\n%s", out)
	}
}

// Without EnableExemplars, traced observations leave no exemplar syntax
// behind — the default exporter output is byte-for-byte what it was
// before exemplars existed.
func TestOpenMetricsNoExemplarsByDefault(t *testing.T) {
	s := New(Options{})
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		sp := s.StartCtx(p, "workload.request", TraceCtx{Trace: 0xabc})
		p.Advance(10)
		s.Histogram("x.lat").ObserveAt(p, 123)
		sp.End(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "# {") {
		t.Errorf("exemplar syntax leaked without EnableExemplars:\n%s", b.String())
	}
}
