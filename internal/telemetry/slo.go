package telemetry

import (
	"fmt"
	"sync"

	"solros/internal/sim"
	"solros/internal/stats"
)

// The SLO watchdog: per-metric tail-latency objectives evaluated with
// multi-window burn rates over the sim clock. Each objective names a
// latency histogram (typically a per-channel RPC latency like
// "dataplane.rpc.Tread"), a percentile target, and an error budget; the
// watchdog folds the metric's per-window delta histograms into a short
// range (fast signal) and a long range (sustained signal) and fires only
// when BOTH burn faster than the threshold — the standard multi-window
// guard against paging on a single-window blip. A breach records an
// SLOViolation, bumps the "slo.breaches" counter, and arms the flight
// recorder, so a latency regression leaves a replayable blackbox naming
// the breached objective rather than just a number.
//
// Evaluation is event-driven and deterministic: the check runs when an
// observation lands in a later window than any seen before on that metric
// (ObserveAt), and once more at SealWindows for the trailing window. No
// wall clock, no ticker — same schedule, same breaches.

// Objective is one tail-latency SLO.
type Objective struct {
	// Name labels the objective in violations and blackbox filenames.
	// Default: "<metric>.p<percentile>".
	Name string
	// Metric is the latency histogram the objective watches (the
	// telemetry name, e.g. "dataplane.rpc.Tread").
	Metric string
	// Percentile is the objective's percentile (default 99): "p99 of
	// Metric stays under Target".
	Percentile float64
	// Target is the latency bound at that percentile.
	Target sim.Time
	// Budget is the allowed fraction of observations over Target.
	// Default (100-Percentile)/100 — i.e. exactly the percentile's
	// complement, so burn rate 1 means "spending budget exactly on plan".
	Budget float64
	// Burn is the burn-rate threshold at which the objective breaches
	// (default 1): fraction-over-target / Budget must reach Burn on both
	// evaluation ranges.
	Burn float64
	// ShortWindows and LongWindows size the two evaluation ranges in
	// whole windows (defaults 1 and 4).
	ShortWindows int
	LongWindows  int
}

// withDefaults returns o with zero fields replaced by their defaults.
func (o Objective) withDefaults() Objective {
	if o.Percentile <= 0 {
		o.Percentile = 99
	}
	if o.Budget <= 0 {
		o.Budget = (100 - o.Percentile) / 100
	}
	if o.Budget <= 0 {
		o.Budget = 0.001 // p100 objectives: any overrun is a full burn
	}
	if o.Burn <= 0 {
		o.Burn = 1
	}
	if o.ShortWindows <= 0 {
		o.ShortWindows = 1
	}
	if o.LongWindows < o.ShortWindows {
		o.LongWindows = 4 * o.ShortWindows
	}
	if o.Name == "" {
		o.Name = fmt.Sprintf("%s.p%g", o.Metric, o.Percentile)
	}
	return o
}

// SLOViolation is one recorded breach.
type SLOViolation struct {
	Objective string
	Metric    string
	// Window is the latest complete window of the evaluation ranges.
	Window int64
	// At is the virtual time of the observation that tripped the check.
	At sim.Time
	// BurnShort and BurnLong are the burn rates over the two ranges.
	BurnShort float64
	BurnLong  float64
	// N and Over describe the long range: observations seen and
	// observations over target.
	N    int
	Over int
	// HotShard, HotTenant, and ShardSkew carry the trace-analytics
	// attribution captured at breach time (empty/zero when no hotspot
	// source is wired or it found no skew): the shard and tenant the
	// analyzer blames for the tail, and the shard's outlier-share skew.
	HotShard  string
	HotTenant string
	ShardSkew float64
}

func (v SLOViolation) String() string {
	base := fmt.Sprintf("slo %s breached at %v (window %d): burn short=%.2f long=%.2f, %d/%d over target",
		v.Objective, v.At, v.Window, v.BurnShort, v.BurnLong, v.Over, v.N)
	if v.HotShard != "" {
		base += fmt.Sprintf(" [hot shard %s", v.HotShard)
		if v.HotTenant != "" {
			base += fmt.Sprintf(", tenant %s", v.HotTenant)
		}
		base += fmt.Sprintf(", skew %.2fx]", v.ShardSkew)
	}
	return base
}

// sloState is the armed watchdog. objectives and byMetric are immutable
// after SetObjectives; the mutable breach state has its own lock so the
// evaluation path never holds the sink mutex (which TriggerFlight takes).
type sloState struct {
	objectives []Objective
	byMetric   map[string][]int

	mu         sync.Mutex
	breached   []bool // edge-trigger latches, one per objective
	lastEval   []int64
	evalSeen   []bool
	violations []SLOViolation
}

// SetObjectives arms the SLO watchdog. Call after EnableWindows — burn
// rates are per-window, so without windows the watchdog stays dormant.
// Each referenced metric's histogram is switched into windowed mode with
// enough retained windows to cover its longest evaluation range.
// Replaces any previously armed objectives. Nil-safe.
func (s *Sink) SetObjectives(objs []Objective) {
	if s == nil {
		return
	}
	norm := make([]Objective, 0, len(objs))
	keep := make(map[string]int64)
	for _, o := range objs {
		if o.Metric == "" || o.Target <= 0 {
			continue
		}
		o = o.withDefaults()
		norm = append(norm, o)
		if k := int64(o.LongWindows) + 2; k > keep[o.Metric] {
			keep[o.Metric] = k
		}
	}
	st := &sloState{
		objectives: norm,
		byMetric:   make(map[string][]int),
		breached:   make([]bool, len(norm)),
		lastEval:   make([]int64, len(norm)),
		evalSeen:   make([]bool, len(norm)),
	}
	for i, o := range norm {
		st.byMetric[o.Metric] = append(st.byMetric[o.Metric], i)
	}
	s.mu.Lock()
	every := sim.Time(0)
	if s.win != nil {
		every = s.win.every
	}
	if len(norm) == 0 {
		s.slo = nil
	} else {
		s.slo = st
	}
	s.mu.Unlock()
	for metric, k := range keep {
		h := s.Histogram(metric)
		h.mu.Lock()
		h.every = every
		h.keep = k
		h.win = make(map[int64]*stats.Histogram)
		h.winSeen = false
		h.mu.Unlock()
	}
}

// Objectives returns the armed objectives (with defaults applied).
func (s *Sink) Objectives() []Objective {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	st := s.slo
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	return append([]Objective(nil), st.objectives...)
}

// SLOViolations returns the recorded breaches in evaluation order.
func (s *Sink) SLOViolations() []SLOViolation {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	st := s.slo
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]SLOViolation(nil), st.violations...)
}

// burnOver computes the burn rate over the merged last n windows ending
// at window `last`: (fraction of observations over target) / budget.
// Also reports the range's observation and over-target counts.
func burnOver(h *Hist, last int64, n int, target sim.Time, budget float64) (burn float64, total, over int) {
	from := last - int64(n) + 1
	if from < 0 {
		from = 0
	}
	merged := stats.NewHistogram()
	for _, c := range h.windowClones(from, last) {
		merged.Merge(c)
	}
	total = merged.N()
	if total == 0 {
		return 0, 0, 0
	}
	over = merged.CountOver(target)
	return (float64(over) / float64(total)) / budget, total, over
}

// sloCheck evaluates every objective watching h's metric, with `completed`
// the latest fully-complete window. Runs with no sink-level locks held;
// it takes st.mu for breach bookkeeping and lets TriggerFlight take the
// sink mutex itself. p attributes the breach (and the blackbox's faulted
// trace) to the Proc whose observation crossed the window boundary; nil
// at end-of-run sealing.
func (s *Sink) sloCheck(p *sim.Proc, h *Hist, completed int64) {
	s.mu.Lock()
	st := s.slo
	s.mu.Unlock()
	if st == nil || completed < 0 {
		return
	}
	var at sim.Time
	if p != nil {
		at = p.Now()
	}
	var fire []SLOViolation
	st.mu.Lock()
	for _, i := range st.byMetric[h.name] {
		if st.evalSeen[i] && st.lastEval[i] >= completed {
			continue
		}
		st.lastEval[i], st.evalSeen[i] = completed, true
		o := &st.objectives[i]
		burnShort, _, _ := burnOver(h, completed, o.ShortWindows, o.Target, o.Budget)
		burnLong, n, over := burnOver(h, completed, o.LongWindows, o.Target, o.Budget)
		breach := n > 0 && burnShort >= o.Burn && burnLong >= o.Burn
		if breach && !st.breached[i] {
			fire = append(fire, SLOViolation{
				Objective: o.Name,
				Metric:    o.Metric,
				Window:    completed,
				At:        at,
				BurnShort: burnShort,
				BurnLong:  burnLong,
				N:         n,
				Over:      over,
			})
		}
		st.breached[i] = breach
	}
	st.mu.Unlock()
	if len(fire) == 0 {
		return
	}
	// Attribution runs with no locks held: the hotspot source is the
	// analyze package, which may take the sink mutex of its own sink-side
	// bookkeeping. One fetch covers every objective firing on this window.
	hs := s.hotspot()
	if hs != nil {
		for i := range fire {
			fire[i].HotShard = hs.Shard
			fire[i].HotTenant = hs.Tenant
			fire[i].ShardSkew = hs.Skew
		}
	}
	st.mu.Lock()
	st.violations = append(st.violations, fire...)
	st.mu.Unlock()
	for _, v := range fire {
		s.Counter("slo.breaches").Add(1)
		s.TriggerFlightScoped(p, "slo-"+v.Objective, hs)
	}
}

// sloSeal runs one final evaluation per objective at end of run, so a
// breach inside the trailing (otherwise never-crossed) window still
// records. Runs with no locks held.
func (s *Sink) sloSeal(at sim.Time) {
	s.mu.Lock()
	st := s.slo
	every := sim.Time(0)
	if s.win != nil {
		every = s.win.every
	}
	var hists []*Hist
	if st != nil && every > 0 {
		for metric := range st.byMetric {
			if h := s.hists[metric]; h != nil {
				hists = append(hists, h)
			}
		}
	}
	s.mu.Unlock()
	if st == nil || every == 0 {
		return
	}
	completed := int64(at/every) - 1
	// The trailing partial window holds real observations too; fold it in
	// as the final "complete" window.
	if at%every != 0 {
		completed++
	}
	for _, h := range hists {
		s.sloCheck(nil, h, completed)
	}
}
