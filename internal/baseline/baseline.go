// Package baseline implements the systems Solros is compared against in
// the paper's evaluation:
//
//   - Host: an application on the host using the file system directly —
//     the "maximum-possible performance" reference (Figures 1a, 11, 12).
//   - Phi-Linux (virtio): the co-processor-centric architecture — a
//     full solrosfs runs on the Xeon Phi over a virtblk device whose host
//     side stages every request through host memory and a CPU copy
//     across the PCIe window (Figures 1a, 11c, 12c, 13a).
//   - Phi-Linux (NFS): the co-processor mounts the host's file system
//     over NFS on TCP over the MPSS virtual ethernet (Figures 11d, 12d).
//   - Host-centric: the host app mediates all I/O and pushes data to the
//     co-processor afterwards (Figure 2a), used by application
//     comparisons.
package baseline

import (
	"solros/internal/block"
	"solros/internal/cpu"
	"solros/internal/fs"
	"solros/internal/model"
	"solros/internal/nvme"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// VirtioDisk is the stock mic virtblk path: the co-processor's block
// requests are shipped to a host SCIF module, which drives the NVMe with
// per-request doorbells/interrupts into a host bounce buffer, then copies
// the data across the system-mapped PCIe window with CPU load/stores. The
// host module is single-threaded, so concurrent co-processor threads
// serialize behind it.
type VirtioDisk struct {
	fab *pcie.Fabric
	phi *pcie.Device
	ssd *nvme.Device
	// host-side bounce buffer
	bounce pcie.Loc
	mu     *sim.Lock
}

// NewVirtioDisk builds the virtblk path for one co-processor.
func NewVirtioDisk(fab *pcie.Fabric, phi *pcie.Device, ssd *nvme.Device) *VirtioDisk {
	return &VirtioDisk{
		fab:    fab,
		phi:    phi,
		ssd:    ssd,
		bounce: pcie.Loc{Off: fab.HostRAM.Alloc(model.VirtioRequestCap)},
		mu:     sim.NewLock("virtio-host"),
	}
}

// Capacity reports the backing device size.
func (v *VirtioDisk) Capacity() int64 { return v.ssd.Capacity() }

// Image exposes the backing flash image.
func (v *VirtioDisk) Image() *pcie.Memory { return v.ssd.Image() }

// Vector serves block operations request-by-request; the coalesce hint is
// ignored — the stock driver has no IO-vector interface, which is exactly
// the point of the comparison.
func (v *VirtioDisk) Vector(p *sim.Proc, ops []block.Op, _ bool) error {
	for _, op := range ops {
		for chunk := int64(0); chunk < op.Bytes; chunk += model.VirtioRequestCap {
			n := op.Bytes - chunk
			if n > model.VirtioRequestCap {
				n = model.VirtioRequestCap
			}
			if err := v.request(p, op.Write, op.Off+chunk, n,
				pcie.Loc{Dev: op.Target.Dev, Off: op.Target.Off + chunk}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (v *VirtioDisk) request(p *sim.Proc, write bool, off, n int64, target pcie.Loc) error {
	// Guest side: build the vring descriptor, kick the host (one PCIe
	// transaction from the Phi).
	v.fab.Txn(p, cpu.Phi)
	// Host SCIF module is a single service thread.
	p.Acquire(v.mu)
	p.Advance(model.VirtioKickCost)
	var err error
	if write {
		// CPU copy guest -> bounce across the PCIe window, then disk.
		v.fab.Memcpy(p, cpu.Host, target, v.bounce, n)
		err = v.ssd.WriteAt(p, off, n, v.bounce, false)
	} else {
		err = v.ssd.ReadAt(p, off, n, v.bounce, false)
		if err == nil {
			// CPU copy bounce -> guest: the "CPU-based copy in
			// virtio" that the paper's zero-copy DMA replaces.
			v.fab.Memcpy(p, cpu.Host, v.bounce, target, n)
		}
	}
	p.Release(v.mu)
	if err != nil {
		return err
	}
	// Completion interrupt on the co-processor.
	p.Advance(model.PhiInterruptCost)
	return nil
}

// PhiLinuxFS is the co-processor-centric file system: a full solrosfs
// running on the Xeon Phi itself (over any block device — virtio in the
// stock configuration), with every call charged the full-stack cost on a
// lean core (Figure 13a's 5x-the-stub component).
type PhiLinuxFS struct {
	FS  *fs.FS
	phi *pcie.Device
}

// MountPhiLinux formats nothing; it mounts an existing image through the
// given disk with staging buffers in co-processor memory.
func MountPhiLinux(p *sim.Proc, fab *pcie.Fabric, disk block.Device, phi *pcie.Device) (*PhiLinuxFS, error) {
	fsys, err := fs.MountAt(p, fab, disk, phi.Mem)
	if err != nil {
		return nil, err
	}
	return &PhiLinuxFS{FS: fsys, phi: phi}, nil
}

func (pl *PhiLinuxFS) syscall(p *sim.Proc) {
	p.Advance(model.FSFullCostPhi)
}

// Open opens a file, charging the full FS stack cost.
func (pl *PhiLinuxFS) Open(p *sim.Proc, path string) (*fs.File, error) {
	pl.syscall(p)
	return pl.FS.Open(p, path)
}

// Create creates a file.
func (pl *PhiLinuxFS) Create(p *sim.Proc, path string) (*fs.File, error) {
	pl.syscall(p)
	return pl.FS.Create(p, path)
}

// Read reads into a buffer in co-processor memory.
func (pl *PhiLinuxFS) Read(p *sim.Proc, f *fs.File, off, n int64, target pcie.Loc) error {
	pl.syscall(p)
	if off >= f.Size() {
		return nil
	}
	if off+n > f.Size() {
		n = f.Size() - off
	}
	return f.ReadTo(p, off, n, target, false)
}

// Write writes from a buffer in co-processor memory.
func (pl *PhiLinuxFS) Write(p *sim.Proc, f *fs.File, off, n int64, source pcie.Loc) error {
	pl.syscall(p)
	return f.WriteFrom(p, off, n, source, false)
}

// NFSFS is the co-processor's NFS mount of the host file system: every
// call crosses the MPSS virtual ethernet (TCP over SCIF), pays NFS/RPC
// processing on the slow cores, and moves data in rsize/wsize chunks
// through the veth's single memcpy channel.
type NFSFS struct {
	Host *fs.FS
	fab  *pcie.Fabric
	phi  *pcie.Device
	veth *sim.Resource
}

// NewNFS builds the NFS-over-PCIe path against the host-mounted fs.
func NewNFS(fab *pcie.Fabric, host *fs.FS, phi *pcie.Device) *NFSFS {
	return &NFSFS{
		Host: host,
		fab:  fab,
		phi:  phi,
		veth: sim.NewResource("mic-veth", model.VethBandwidth, model.VethLatency),
	}
}

// rpc charges one NFS round trip: client processing on the Phi, a veth
// message each way, server processing on the host.
func (n *NFSFS) rpc(p *sim.Proc, payload int64) {
	p.Advance(model.NFSPerCallCost * sim.Time(cpu.Phi.SystemsSlowdown()))
	p.Use(n.veth, payload)
	p.Advance(model.NFSPerCallCost) // nfsd on the host
}

// Open resolves a path over NFS.
func (n *NFSFS) Open(p *sim.Proc, path string) (*fs.File, error) {
	n.rpc(p, 128)
	return n.Host.Open(p, path)
}

// Create creates a file over NFS.
func (n *NFSFS) Create(p *sim.Proc, path string) (*fs.File, error) {
	n.rpc(p, 128)
	return n.Host.Create(p, path)
}

// Read fetches [off, off+count) in rsize chunks into co-processor memory.
func (n *NFSFS) Read(p *sim.Proc, f *fs.File, off, count int64, target pcie.Loc) error {
	if off >= f.Size() {
		return nil
	}
	if off+count > f.Size() {
		count = f.Size() - off
	}
	loc, _, put := n.Host.Staging(model.NFSTransferCap)
	defer put()
	for chunk := int64(0); chunk < count; chunk += model.NFSTransferCap {
		sz := count - chunk
		if sz > model.NFSTransferCap {
			sz = model.NFSTransferCap
		}
		// Server reads from disk into its page cache / staging.
		aOff := (off + chunk) &^ (fs.BlockSize - 1)
		span := ((off + chunk + sz + fs.BlockSize - 1) &^ (fs.BlockSize - 1)) - aOff
		if lim := (f.Size() + fs.BlockSize - 1) &^ (fs.BlockSize - 1); aOff+span > lim {
			span = lim - aOff
		}
		if err := f.ReadTo(p, aOff, span, loc, false); err != nil {
			return err
		}
		// READ reply crosses the veth; client copies into the target
		// buffer and pays TCP+NFS processing per chunk.
		n.rpc(p, sz)
		n.fab.Memcpy(p, cpu.Phi, loc, pcie.Loc{Dev: target.Dev, Off: target.Off + chunk}, sz)
	}
	return nil
}

// Write pushes data in wsize chunks from co-processor memory.
func (n *NFSFS) Write(p *sim.Proc, f *fs.File, off, count int64, source pcie.Loc) error {
	loc, buf, put := n.Host.Staging(model.NFSTransferCap)
	defer put()
	for chunk := int64(0); chunk < count; chunk += model.NFSTransferCap {
		sz := count - chunk
		if sz > model.NFSTransferCap {
			sz = model.NFSTransferCap
		}
		n.fab.Memcpy(p, cpu.Phi, pcie.Loc{Dev: source.Dev, Off: source.Off + chunk}, loc, sz)
		n.rpc(p, sz)
		if _, err := f.Write(p, off+chunk, buf[:sz]); err != nil {
			return err
		}
	}
	return nil
}

// HostDirect is the host reference point: an application on the host
// reading/writing the file system with plain syscalls.
type HostDirect struct {
	FS *fs.FS
}

// Open opens with a syscall cost.
func (h *HostDirect) Open(p *sim.Proc, path string) (*fs.File, error) {
	p.Advance(model.SyscallBaseCost)
	return h.FS.Open(p, path)
}

// Create creates with a syscall cost.
func (h *HostDirect) Create(p *sim.Proc, path string) (*fs.File, error) {
	p.Advance(model.SyscallBaseCost)
	return h.FS.Create(p, path)
}

// Read performs a direct read into host memory. Unlike the Solros driver
// the stock host path takes one interrupt per NVMe command (no
// coalescing), which is why Solros can edge past the host at large
// request sizes (Figure 1a).
func (h *HostDirect) Read(p *sim.Proc, f *fs.File, off, n int64, target pcie.Loc) error {
	p.Advance(model.SyscallBaseCost)
	if off >= f.Size() {
		return nil
	}
	if off+n > f.Size() {
		n = f.Size() - off
	}
	return f.ReadTo(p, off, n, target, false)
}

// Write performs a direct write from host memory.
func (h *HostDirect) Write(p *sim.Proc, f *fs.File, off, n int64, source pcie.Loc) error {
	p.Advance(model.SyscallBaseCost)
	return f.WriteFrom(p, off, n, source, false)
}

// HostCentric is the Figure 2(a) architecture: a host application reads
// data into host memory and then pushes it to the co-processor with a
// second DMA, doubling PCIe traffic.
type HostCentric struct {
	Host HostDirect
	fab  *pcie.Fabric
}

// NewHostCentric wraps a host file system for host-mediated co-processor
// I/O.
func NewHostCentric(fab *pcie.Fabric, fsys *fs.FS) *HostCentric {
	return &HostCentric{Host: HostDirect{FS: fsys}, fab: fab}
}

// ReadToPhi stages the file range in host memory and copies it onward to
// the co-processor.
func (hc *HostCentric) ReadToPhi(p *sim.Proc, f *fs.File, off, n int64, target pcie.Loc) error {
	loc, buf, put := hc.Host.FS.Staging(n)
	defer put()
	if err := hc.Host.Read(p, f, off, n, loc); err != nil {
		return err
	}
	hc.fab.CopyIn(p, nil, cpu.Host, target, buf[:n], pcie.Adaptive)
	return nil
}
