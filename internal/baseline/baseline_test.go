package baseline

import (
	"bytes"
	"testing"

	"solros/internal/block"
	"solros/internal/fs"
	"solros/internal/nvme"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// rig builds a fabric with one SSD, one same-socket phi, and a formatted
// file system image.
func rig() (*pcie.Fabric, *nvme.Device, *pcie.Device) {
	fab := pcie.New(128 << 20)
	ssd := nvme.New(fab, "nvme0", 0, 64<<20)
	phi := fab.AddPhi("phi0", 0, 64<<20)
	if err := fs.Mkfs(ssd.Image(), 0); err != nil {
		panic(err)
	}
	return fab, ssd, phi
}

func TestVirtioDiskMovesDataCorrectly(t *testing.T) {
	fab, ssd, phi := rig()
	vd := NewVirtioDisk(fab, phi, ssd)
	want := bytes.Repeat([]byte{0xC3}, 200<<10) // spans multiple 64K requests
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		src := phi.Mem.Alloc(int64(len(want)))
		copy(phi.Mem.Slice(src, int64(len(want))), want)
		if err := vd.Vector(p, []block.Op{{Write: true, Off: 1 << 20, Bytes: int64(len(want)), Target: pcie.Loc{Dev: phi, Off: src}}}, false); err != nil {
			t.Error(err)
			return
		}
		dst := phi.Mem.Alloc(int64(len(want)))
		if err := vd.Vector(p, []block.Op{{Off: 1 << 20, Bytes: int64(len(want)), Target: pcie.Loc{Dev: phi, Off: dst}}}, false); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(phi.Mem.Slice(dst, int64(len(want))), want) {
			t.Error("virtio round trip corrupted data")
		}
	})
	e.MustRun()
}

func TestPhiLinuxMountAndIO(t *testing.T) {
	fab, ssd, phi := rig()
	vd := NewVirtioDisk(fab, phi, ssd)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		pl, err := MountPhiLinux(p, fab, vd, phi)
		if err != nil {
			t.Error(err)
			return
		}
		f, err := pl.Create(p, "/data")
		if err != nil {
			t.Error(err)
			return
		}
		buf := phi.Mem.Alloc(64 << 10)
		payload := bytes.Repeat([]byte{7}, 64<<10)
		copy(phi.Mem.Slice(buf, 64<<10), payload)
		if err := pl.Write(p, f, 0, 64<<10, pcie.Loc{Dev: phi, Off: buf}); err != nil {
			t.Error(err)
			return
		}
		out := phi.Mem.Alloc(64 << 10)
		if err := pl.Read(p, f, 0, 64<<10, pcie.Loc{Dev: phi, Off: out}); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(phi.Mem.Slice(out, 64<<10), payload) {
			t.Error("phi-linux read corrupted")
		}
	})
	e.MustRun()
}

// seededHostFS mounts a host FS with one file of the given size.
func seededHostFS(p *sim.Proc, fab *pcie.Fabric, ssd *nvme.Device, size int64) (*fs.FS, *fs.File) {
	fsys, err := fs.Mount(p, fab, block.NVMe{Dev: ssd})
	if err != nil {
		panic(err)
	}
	f, err := fsys.Create(p, "/bench")
	if err != nil {
		panic(err)
	}
	if err := f.Truncate(p, size); err != nil {
		panic(err)
	}
	return fsys, f
}

func TestRelativeThroughputShape(t *testing.T) {
	// The Figure 11 ordering at 512 KB random reads, single thread:
	// Host ~ P2P >> virtio >= NFS-ish territory. We measure per-path
	// time for the same 8 MB of reads.
	const bs = 512 << 10
	const total = 8 << 20
	timeOf := func(read func(p *sim.Proc, f *fs.File, off int64) error) sim.Time {
		fab, ssd, phi := rig()
		_ = phi
		var dt sim.Time
		e := sim.NewEngine()
		e.Spawn("t", 0, func(p *sim.Proc) {
			_, f := seededHostFS(p, fab, ssd, total)
			start := p.Now()
			for off := int64(0); off < total; off += bs {
				if err := read(p, f, off); err != nil {
					t.Error(err)
					return
				}
			}
			dt = p.Now() - start
		})
		e.MustRun()
		return dt
	}

	hostT := timeOf(func(p *sim.Proc, f *fs.File, off int64) error {
		return f.ReadTo(p, off, bs, pcie.Loc{Off: 0}, false)
	})

	// Virtio full stack.
	virtioT := func() sim.Time {
		fab, ssd, phi := rig()
		vd := NewVirtioDisk(fab, phi, ssd)
		var dt sim.Time
		e := sim.NewEngine()
		e.Spawn("t", 0, func(p *sim.Proc) {
			pl, err := MountPhiLinux(p, fab, vd, phi)
			if err != nil {
				t.Error(err)
				return
			}
			f, _ := pl.Create(p, "/bench")
			if err := f.Truncate(p, total); err != nil {
				t.Error(err)
				return
			}
			buf := phi.Mem.Alloc(bs)
			start := p.Now()
			for off := int64(0); off < total; off += bs {
				if err := pl.Read(p, f, off, bs, pcie.Loc{Dev: phi, Off: buf}); err != nil {
					t.Error(err)
					return
				}
			}
			dt = p.Now() - start
		})
		e.MustRun()
		return dt
	}()

	// NFS.
	nfsT := func() sim.Time {
		fab, ssd, phi := rig()
		var dt sim.Time
		e := sim.NewEngine()
		e.Spawn("t", 0, func(p *sim.Proc) {
			fsys, f := seededHostFS(p, fab, ssd, total)
			nfs := NewNFS(fab, fsys, phi)
			buf := phi.Mem.Alloc(bs)
			start := p.Now()
			for off := int64(0); off < total; off += bs {
				if err := nfs.Read(p, f, off, bs, pcie.Loc{Dev: phi, Off: buf}); err != nil {
					t.Error(err)
					return
				}
			}
			dt = p.Now() - start
		})
		e.MustRun()
		return dt
	}()

	if !(hostT < virtioT && hostT < nfsT) {
		t.Fatalf("host (%v) should beat virtio (%v) and NFS (%v)", hostT, virtioT, nfsT)
	}
	if virtioRatio := float64(virtioT) / float64(hostT); virtioRatio < 3 {
		t.Fatalf("virtio/host time ratio = %.1f, want >> 1 (paper: ~10-19x)", virtioRatio)
	}
	if nfsRatio := float64(nfsT) / float64(hostT); nfsRatio < 3 {
		t.Fatalf("nfs/host time ratio = %.1f, want >> 1", nfsRatio)
	}
	t.Logf("512KB reads of 8MB: host=%v virtio=%v nfs=%v", hostT, virtioT, nfsT)
}

func TestHostCentricDoublesPCIeTraffic(t *testing.T) {
	fab, ssd, phi := rig()
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		fsys, f := seededHostFS(p, fab, ssd, 1<<20)
		hc := NewHostCentric(fab, fsys)
		before := fab.Transactions()
		buf := phi.Mem.Alloc(1 << 20)
		if err := hc.ReadToPhi(p, f, 0, 1<<20, pcie.Loc{Dev: phi, Off: buf}); err != nil {
			t.Error(err)
			return
		}
		if fab.Transactions() <= before {
			t.Error("host-centric path recorded no PCIe traffic")
		}
	})
	e.MustRun()
}
