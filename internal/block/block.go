// Package block is the thin layer between file systems and storage
// devices: a vectored I/O interface that preserves the batching the Solros
// NVMe driver exploits (§5), an adapter for the NVMe model, and an
// instant in-memory disk for unit tests.
package block

import (
	"fmt"

	"solros/internal/nvme"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// Op is one disk transfer: Bytes at byte offset Off on the device, from/to
// Target memory.
type Op struct {
	Write  bool
	Off    int64
	Bytes  int64
	Target pcie.Loc
}

// Device is a byte-addressed (sector-aligned) disk accepting IO vectors.
// coalesce=true asks the driver to batch the vector into one doorbell and
// one interrupt (the Solros-optimized path).
type Device interface {
	Capacity() int64
	Vector(p *sim.Proc, ops []Op, coalesce bool) error
	// Image exposes raw contents for offline tools (mkfs, fsck).
	Image() *pcie.Memory
}

// NVMe adapts the nvme device model to the block interface.
type NVMe struct {
	Dev *nvme.Device
}

// Capacity reports the underlying device size.
func (n NVMe) Capacity() int64 { return n.Dev.Capacity() }

// Image exposes the flash image.
func (n NVMe) Image() *pcie.Memory { return n.Dev.Image() }

// Vector converts ops to NVMe commands and submits them as one IO vector.
func (n NVMe) Vector(p *sim.Proc, ops []Op, coalesce bool) error {
	cmds := make([]nvme.Command, 0, len(ops))
	for _, o := range ops {
		if o.Off%nvme.SectorSize != 0 {
			return fmt.Errorf("block: unaligned offset %d", o.Off)
		}
		op := nvme.OpRead
		if o.Write {
			op = nvme.OpWrite
		}
		cmds = append(cmds, nvme.Command{Op: op, LBA: o.Off / nvme.SectorSize, Bytes: o.Bytes, Target: o.Target})
	}
	return n.Dev.Submit(p, cmds, coalesce)
}

// MemDisk is an instant in-memory disk: correct data movement with zero
// virtual-time cost. For file-system unit tests where timing is noise.
type MemDisk struct {
	img    *pcie.Memory
	fabric *pcie.Fabric
}

// NewMemDisk creates a standalone disk image of the given size. Targets in
// Vector ops are resolved against fabric f.
func NewMemDisk(f *pcie.Fabric, capacity int64) *MemDisk {
	return &MemDisk{img: pcie.NewMemory(capacity), fabric: f}
}

// WrapImage exposes an existing image as an instant disk (offline tools).
func WrapImage(f *pcie.Fabric, img *pcie.Memory) *MemDisk {
	return &MemDisk{img: img, fabric: f}
}

// Capacity reports the disk size.
func (m *MemDisk) Capacity() int64 { return m.img.Size() }

// Image exposes the raw image.
func (m *MemDisk) Image() *pcie.Memory { return m.img }

// Vector performs the transfers instantly.
func (m *MemDisk) Vector(p *sim.Proc, ops []Op, coalesce bool) error {
	for _, o := range ops {
		if o.Off < 0 || o.Off+o.Bytes > m.Capacity() {
			return fmt.Errorf("block: out of range: off=%d bytes=%d", o.Off, o.Bytes)
		}
		img := m.img.Slice(o.Off, o.Bytes)
		t := m.fabric.Mem(o.Target).Slice(o.Target.Off, o.Bytes)
		if o.Write {
			copy(img, t)
		} else {
			copy(t, img)
		}
	}
	return nil
}
