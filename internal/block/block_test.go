package block

import (
	"bytes"
	"testing"

	"solros/internal/nvme"
	"solros/internal/pcie"
	"solros/internal/sim"
)

func TestMemDiskRoundTrip(t *testing.T) {
	fab := pcie.New(1 << 20)
	d := NewMemDisk(fab, 1<<20)
	want := bytes.Repeat([]byte{0xAB}, 8192)
	copy(fab.HostRAM.Slice(0, 8192), want)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		if err := d.Vector(p, []Op{{Write: true, Off: 4096, Bytes: 8192, Target: pcie.Loc{}}}, true); err != nil {
			t.Error(err)
			return
		}
		if err := d.Vector(p, []Op{{Off: 4096, Bytes: 8192, Target: pcie.Loc{Off: 65536}}}, true); err != nil {
			t.Error(err)
			return
		}
	})
	e.MustRun()
	if !bytes.Equal(fab.HostRAM.Slice(65536, 8192), want) {
		t.Fatal("round trip corrupted")
	}
}

func TestMemDiskBounds(t *testing.T) {
	fab := pcie.New(1 << 20)
	d := NewMemDisk(fab, 4096)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		if err := d.Vector(p, []Op{{Off: 0, Bytes: 8192, Target: pcie.Loc{}}}, true); err == nil {
			t.Error("out-of-range read accepted")
		}
		if err := d.Vector(p, []Op{{Off: -512, Bytes: 512, Target: pcie.Loc{}}}, true); err == nil {
			t.Error("negative offset accepted")
		}
	})
	e.MustRun()
}

func TestNVMeAdapterAlignment(t *testing.T) {
	fab := pcie.New(4 << 20)
	ssd := nvme.New(fab, "n", 0, 1<<20)
	ad := NVMe{Dev: ssd}
	if ad.Capacity() != 1<<20 {
		t.Fatal("capacity mismatch")
	}
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		if err := ad.Vector(p, []Op{{Off: 100, Bytes: 512, Target: pcie.Loc{}}}, true); err == nil {
			t.Error("unaligned offset accepted")
		}
		if err := ad.Vector(p, []Op{{Off: 512, Bytes: 512, Target: pcie.Loc{}}}, true); err != nil {
			t.Error(err)
		}
	})
	e.MustRun()
}

func TestWrapImageSharesBacking(t *testing.T) {
	fab := pcie.New(1 << 20)
	img := pcie.NewMemory(8192)
	d := WrapImage(fab, img)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		copy(fab.HostRAM.Slice(0, 4), []byte("data"))
		d.Vector(p, []Op{{Write: true, Off: 0, Bytes: 4, Target: pcie.Loc{}}}, true)
	})
	e.MustRun()
	if !bytes.Equal(img.Slice(0, 4), []byte("data")) {
		t.Fatal("WrapImage does not share the image backing")
	}
}
