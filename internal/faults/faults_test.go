package faults

import (
	"testing"

	"solros/internal/sim"
)

// nvmeSeq records n read-fault decisions, optionally interleaving draws
// at unrelated sites between them.
func nvmeSeq(plan Plan, n int, interleave func(in *Injector, i int)) []bool {
	in := NewInjector(&plan, nil)
	out := make([]bool, n)
	for i := range out {
		fail, _ := in.NVMeFault(nil, false)
		out[i] = fail
		if interleave != nil {
			interleave(in, i)
		}
	}
	return out
}

func TestSameSeedSameDecisions(t *testing.T) {
	plan := Plan{Seed: 7, NVMeReadErrRate: 0.3}
	a := nvmeSeq(plan, 200, nil)
	b := nvmeSeq(plan, 200, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under the same seed", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := nvmeSeq(Plan{Seed: 1, NVMeReadErrRate: 0.3}, 200, nil)
	b := nvmeSeq(Plan{Seed: 2, NVMeReadErrRate: 0.3}, 200, nil)
	for i := range a {
		if a[i] != b[i] {
			return
		}
	}
	t.Fatal("200 decisions identical across different seeds")
}

func TestSitesAreIndependentStreams(t *testing.T) {
	// Drawing at other sites between NVMe decisions must not perturb the
	// NVMe stream: each site owns its own PRNG.
	plan := Plan{Seed: 9, NVMeReadErrRate: 0.3, LinkSlowRate: 0.5, RingDropRate: 0.5}
	plain := nvmeSeq(plan, 100, nil)
	noisy := nvmeSeq(plan, 100, func(in *Injector, i int) {
		in.LinkFault(nil, "phi0-up")
		in.RingSendDrop(nil)
	})
	for i := range plain {
		if plain[i] != noisy[i] {
			t.Fatalf("decision %d perturbed by draws at unrelated sites", i)
		}
	}
}

func TestZeroRateConsumesNoDraws(t *testing.T) {
	// A disabled class must not consume from any stream, so enabling one
	// class cannot change another's decisions — and a zero-rate class
	// never fires.
	plan := Plan{Seed: 11, NVMeReadErrRate: 0.3}
	plain := nvmeSeq(plan, 100, nil)
	withWrites := nvmeSeq(plan, 100, func(in *Injector, i int) {
		if fail, delay := in.NVMeFault(nil, true); fail || delay != 0 {
			t.Fatal("zero-rate write class fired")
		}
	})
	for i := range plain {
		if plain[i] != withWrites[i] {
			t.Fatalf("decision %d perturbed by zero-rate draws", i)
		}
	}
}

func TestPlanDefaultsFilled(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1}, nil)
	pl := in.Plan()
	if pl.NVMeSlowBy != 150*sim.Microsecond {
		t.Errorf("NVMeSlowBy default = %v", pl.NVMeSlowBy)
	}
	if pl.LinkSlowdown != 4 {
		t.Errorf("LinkSlowdown default = %d", pl.LinkSlowdown)
	}
	if pl.LinkFlapStall != 50*sim.Microsecond {
		t.Errorf("LinkFlapStall default = %v", pl.LinkFlapStall)
	}
	if pl.RingStall != 20*sim.Microsecond {
		t.Errorf("RingStall default = %v", pl.RingStall)
	}
	if pl.CrashDowntime != 2*sim.Millisecond {
		t.Errorf("CrashDowntime default = %v", pl.CrashDowntime)
	}
}
