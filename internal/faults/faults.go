// Package faults is the deterministic fault-injection subsystem: a
// seed-driven Plan describing which hardware misbehaves and how often, and
// an Injector that the storage, interconnect, and transport layers consult
// at their injection points. Production split-OS designs treat partial
// failure at the isolation boundary as the common case; this package lets
// every data path in the repository be exercised under NVMe media errors,
// PCIe link degradation, ring stalls and drops, and whole-channel crashes —
// all on the sim virtual clock, so a faulty run is exactly as reproducible
// as a healthy one.
//
// Determinism invariant: same seed + same plan + same workload => same
// trace. Each injection site owns an independent PRNG stream derived from
// (Seed, site name), and the sim kernel serializes all Procs, so the k-th
// decision at a site is a pure function of the plan — never of host
// scheduling. Adding a site, or reordering unrelated work, does not
// perturb the streams of other sites.
//
// Everything is default-off: a nil *Plan (or nil *Injector) means no hook
// fires and no time is charged, so the reproduced figures are untouched.
package faults

import (
	"hash/fnv"
	"math/rand"

	"solros/internal/sim"
	"solros/internal/telemetry"
)

// Plan declares a machine's fault schedule. Rates are per-event
// probabilities in [0, 1] drawn from the site's seeded stream; zero
// disables that fault class. Magnitude fields fall back to the defaults
// noted when left zero.
type Plan struct {
	// Seed derives every injection site's PRNG stream.
	Seed int64

	// NVMeReadErrRate fails read submissions with nvme.ErrMedia before
	// any byte moves (transient media error; a retry re-reads cleanly).
	NVMeReadErrRate float64
	// NVMeWriteErrRate fails write submissions the same way.
	NVMeWriteErrRate float64
	// NVMeSlowRate delays a submission by NVMeSlowBy before service
	// (internal retry/remap latency spike).
	NVMeSlowRate float64
	// NVMeSlowBy is the spike magnitude (default 150 us).
	NVMeSlowBy sim.Time

	// LinkSlowRate degrades one leg of a PCIe stream to rate/LinkSlowdown
	// (link retraining to a lower width/speed).
	LinkSlowRate float64
	// LinkSlowdown is the degradation divisor (default 4).
	LinkSlowdown int64
	// LinkFlapRate stalls one leg of a stream by LinkFlapStall (link
	// down/up flap; traffic holds until retrain completes).
	LinkFlapRate float64
	// LinkFlapStall is the flap outage length (default 50 us).
	LinkFlapStall sim.Time

	// RingDropRate silently discards a transport send on rings marked
	// lossy — the sender believes it succeeded, so only RPC-level
	// deadlines and resends recover the message.
	RingDropRate float64
	// RingStallRate delays a ring dequeue attempt by RingStall (combiner
	// preemption / PCIe congestion on the control variables).
	RingStallRate float64
	// RingStall is the dequeue stall length (default 20 us).
	RingStall sim.Time

	// CrashTimes lists absolute sim times at which co-processor
	// CrashPhi's RPC channel is severed; after CrashDowntime it is reset
	// and reattached. Empty means no crashes.
	CrashTimes []sim.Time
	// CrashPhi selects the victim co-processor (default 0).
	CrashPhi int
	// CrashDowntime is how long the channel stays severed (default 2 ms).
	CrashDowntime sim.Time
}

// withDefaults returns a copy with magnitude defaults filled in.
func (pl Plan) withDefaults() Plan {
	if pl.NVMeSlowBy == 0 {
		pl.NVMeSlowBy = 150 * sim.Microsecond
	}
	if pl.LinkSlowdown <= 1 {
		pl.LinkSlowdown = 4
	}
	if pl.LinkFlapStall == 0 {
		pl.LinkFlapStall = 50 * sim.Microsecond
	}
	if pl.RingStall == 0 {
		pl.RingStall = 20 * sim.Microsecond
	}
	if pl.CrashDowntime == 0 {
		pl.CrashDowntime = 2 * sim.Millisecond
	}
	return pl
}

// Injector evaluates a Plan at each injection site. It implements the
// consumer-side FaultInjector interfaces of internal/nvme, internal/pcie,
// and internal/transport, so those packages never import this one. All
// methods are called from sim Procs (serialized), so no locking is needed.
type Injector struct {
	plan  Plan
	sites map[string]*rand.Rand

	tel          *telemetry.Sink
	telNVMeErr   *telemetry.Counter
	telNVMeSlow  *telemetry.Counter
	telLinkSlow  *telemetry.Counter
	telLinkFlap  *telemetry.Counter
	telRingDrop  *telemetry.Counter
	telRingStall *telemetry.Counter
}

// NewInjector compiles a plan. The telemetry sink may be nil (counters and
// spans collapse to no-ops).
func NewInjector(plan *Plan, tel *telemetry.Sink) *Injector {
	in := &Injector{
		plan:  plan.withDefaults(),
		sites: make(map[string]*rand.Rand),
		tel:   tel,
	}
	if tel != nil {
		in.telNVMeErr = tel.Counter("faults.nvme.media_errors")
		in.telNVMeSlow = tel.Counter("faults.nvme.latency_spikes")
		in.telLinkSlow = tel.Counter("faults.link.degrades")
		in.telLinkFlap = tel.Counter("faults.link.flaps")
		in.telRingDrop = tel.Counter("faults.ring.drops")
		in.telRingStall = tel.Counter("faults.ring.stalls")
	}
	return in
}

// Plan reports the compiled plan, magnitude defaults filled in.
func (in *Injector) Plan() Plan { return in.plan }

// site returns the PRNG stream for one injection site, creating it on
// first use from (Seed, fnv64(name)).
func (in *Injector) site(name string) *rand.Rand {
	if r, ok := in.sites[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(in.plan.Seed ^ int64(h.Sum64())))
	in.sites[name] = r
	return r
}

// hit draws one decision from a site's stream. Rate 0 short-circuits
// without consuming a draw, so disabled classes leave streams untouched.
func (in *Injector) hit(site string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return in.site(site).Float64() < rate
}

// mark emits a zero-length span in the faults family so injections show up
// in the trace timeline next to the operation they perturbed — and, when
// the sink's flight recorder is armed, dumps a blackbox artifact naming
// the trace the fault landed in.
func (in *Injector) mark(p *sim.Proc, name string) {
	sp := in.tel.Start(p, name)
	sp.End(p)
	in.tel.TriggerFlight(p, name)
}

// NVMeFault implements nvme.FaultInjector: whether this submission fails
// with a media error, and any extra latency to charge before service.
func (in *Injector) NVMeFault(p *sim.Proc, write bool) (fail bool, delay sim.Time) {
	op, rate := "read", in.plan.NVMeReadErrRate
	if write {
		op, rate = "write", in.plan.NVMeWriteErrRate
	}
	if in.hit("nvme."+op+".err", rate) {
		fail = true
		in.telNVMeErr.Add(1)
		in.mark(p, "faults.nvme.media_error")
	}
	if in.hit("nvme."+op+".slow", in.plan.NVMeSlowRate) {
		delay = in.plan.NVMeSlowBy
		in.telNVMeSlow.Add(1)
		in.mark(p, "faults.nvme.latency_spike")
	}
	return fail, delay
}

// LinkFault implements pcie.FaultInjector: a rate divisor (>= 1) and a
// stall to apply to one leg of a stream crossing the named link.
func (in *Injector) LinkFault(p *sim.Proc, link string) (slowdown int64, stall sim.Time) {
	slowdown = 1
	if in.hit("link."+link+".slow", in.plan.LinkSlowRate) {
		slowdown = in.plan.LinkSlowdown
		in.telLinkSlow.Add(1)
		in.mark(p, "faults.link.degrade")
	}
	if in.hit("link."+link+".flap", in.plan.LinkFlapRate) {
		stall = in.plan.LinkFlapStall
		in.telLinkFlap.Add(1)
		in.mark(p, "faults.link.flap")
	}
	return slowdown, stall
}

// RingSendDrop implements transport.FaultInjector for the enqueue side:
// true means the ring silently discards this message.
func (in *Injector) RingSendDrop(p *sim.Proc) bool {
	if !in.hit("ring.send", in.plan.RingDropRate) {
		return false
	}
	in.telRingDrop.Add(1)
	in.mark(p, "faults.ring.drop")
	return true
}

// RingRecvStall implements transport.FaultInjector for the dequeue side:
// extra time to charge before this dequeue attempt.
func (in *Injector) RingRecvStall(p *sim.Proc) sim.Time {
	if !in.hit("ring.recv", in.plan.RingStallRate) {
		return 0
	}
	in.telRingStall.Add(1)
	in.mark(p, "faults.ring.stall")
	return in.plan.RingStall
}
