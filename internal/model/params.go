// Package model is the single home of every calibration constant in the
// Solros hardware model. Each value is annotated with its provenance in the
// paper (figure or section); experiments depend on the *relationships*
// between these numbers, not their absolute values.
package model

import "solros/internal/sim"

// --- PCIe fabric (paper §6 setup, Figure 4) ------------------------------
//
// The testbed attaches four Xeon Phi co-processors over PCIe Gen2 x16 and
// one Intel 750 NVMe SSD. From §6: "The maximum bandwidth from Xeon Phi to
// host is 6.5GB/sec and the bandwidth in the other direction is 6.0GB/sec."
const (
	// LinkBWPhiToHost is the peak Phi->host PCIe bandwidth (§6).
	LinkBWPhiToHost = 6_500_000_000 // bytes/sec
	// LinkBWHostToPhi is the peak host->Phi PCIe bandwidth (§6).
	LinkBWHostToPhi = 6_000_000_000
	// LinkBWNVMe is the PCIe x4 link of the NVMe SSD; above the device's
	// own service rate so the flash backend is the bottleneck.
	LinkBWNVMe = 3_200_000_000
	// QPIRelayBW caps peer-to-peer transfers that cross a NUMA boundary:
	// "the maximum throughput is capped at 300MB/sec because a processor
	// relays PCIe packets to another processor across a QPI interconnect"
	// (Figure 1a).
	QPIRelayBW = 300_000_000
	// CacheLine is the PCIe transaction granularity for load/store
	// access to a system-mapped window (§4.2.1).
	CacheLine = 64
)

// Load/store (memcpy) access to a mapped PCIe window: a fixed first-access
// latency plus a per-cacheline streaming cost (write-combining lets
// subsequent lines post faster than the first round trip). Calibrated so
// that (a) a 64 B access costs 1.6 us on the host and 2.9 us on the Phi
// (the paper's 2.9x / 12.6x memcpy-vs-DMA ratios at 64 B, §4.2.1), and
// (b) the host's memcpy/DMA crossover lands at the paper's 1 KB adaptive
// threshold (§4.2.4).
const (
	MemcpyBaseHost = 1380 * sim.Nanosecond
	MemcpyLineHost = 220 * sim.Nanosecond
	MemcpyBasePhi  = 2550 * sim.Nanosecond
	MemcpyLinePhi  = 350 * sim.Nanosecond
)

// DMA engine characteristics (§4.2.1, Figure 4a). A DMA transfer pays a
// channel-setup latency and then streams at link rate. Host-initiated DMA
// is 2.3x faster than Phi-initiated; we model that as the Phi's DMA engine
// sustaining a lower rate. 64 B memcpy is 2.9x (host) and 12.6x (Phi)
// faster than 64 B DMA, fixing the setup latencies.
const (
	DMASetupHost = 4640 * sim.Nanosecond  // 2.9 * 1.6us
	DMASetupPhi  = 36540 * sim.Nanosecond // 12.6 * 2.9us
	// DMARateFactorPhi scales link bandwidth for Phi-initiated DMA
	// (2.3x slower than host-initiated, Figure 4a).
	DMARateFactorPhiNum = 10
	DMARateFactorPhiDen = 23
)

// Adaptive copy thresholds (§4.2.4): "we use a different threshold for a
// host and a Xeon Phi: 1 KB from a host and 16 KB from Xeon Phi because of
// the longer initialization of the DMA channel."
const (
	AdaptiveThresholdHost = 1 << 10  // 1 KB
	AdaptiveThresholdPhi  = 16 << 10 // 16 KB
)

// --- CPU (paper §2, §6, Figure 13) ---------------------------------------
//
// Host: 2x Xeon E5-2670 v3, 24 cores/socket, fast out-of-order cores.
// Phi: 61 in-order cores / 244 hardware threads, individually slow.
const (
	HostSockets        = 2
	HostCoresPerSocket = 24
	PhiCores           = 61
	PhiHWThreads       = 244
	NumPhis            = 4 // §6: "We use four Xeon Phi co-processors"
)

// Relative cost of running branchy systems code (I/O stacks) on each core
// type. Figure 13(a): the thin Solros FS stub on the Phi spends 5x less
// time than the full file system on the Phi; the Phi runs systems code
// roughly an order of magnitude slower per thread than a host core.
const (
	// SyscallBaseCost is the fixed cost of a system-call-shaped entry on
	// a fast host core.
	SyscallBaseCost = 500 * sim.Nanosecond
	// PhiSystemsSlowdown multiplies the cost of control-flow divergent
	// systems code (FS, TCP) when it runs on a Phi core.
	PhiSystemsSlowdown = 12
	// PhiComputeSlowdown multiplies the per-thread cost of data-parallel
	// application compute on a Phi core. Phi threads are slow but there
	// are 244 of them, so aggregate Phi compute exceeds the host's.
	PhiComputeSlowdown = 6
)

// --- NVMe SSD (paper §6: Intel 750, Figures 1, 11, 12) --------------------
const (
	// NVMeReadBW and NVMeWriteBW are the device service rates: "The
	// maximum performance of the SSD is 2.4GB/sec and 1.2GB/sec for
	// sequential reads and writes" (§6).
	NVMeReadBW  = 2_400_000_000
	NVMeWriteBW = 1_200_000_000
	// NVMeCmdLatency is the per-command flash access latency; an Intel
	// 750 does ~1M IOPS at queue depth, i.e. ~10us pipelined; we charge
	// a 10us access latency per command before streaming.
	NVMeCmdLatency = 10 * sim.Microsecond
	// NVMeDoorbellCost is one MMIO write to the doorbell register.
	NVMeDoorbellCost = 400 * sim.Nanosecond
	// NVMeInterruptCost is the host-side cost of taking one interrupt
	// (§5: coalescing reduces "the number of interrupts raised by
	// ringing the doorbell").
	NVMeInterruptCost = 4 * sim.Microsecond
	// NVMeMaxTransfer is the largest single NVMe command payload; larger
	// I/O fragments into multiple commands (MDTS = 128 KB, typical).
	NVMeMaxTransfer = 128 << 10
)

// --- Network (paper §6, Figures 1b, 14-16) --------------------------------
const (
	// NICBandwidth: "connected to the server through a 100 Gbps
	// Ethernet" (§6).
	NICBandwidth = 12_500_000_000 // 100 Gbps in bytes/sec
	// WireLatency is one direction of the client<->server wire.
	WireLatency = 5 * sim.Microsecond
	// TCPSegmentCost is the per-segment protocol processing cost
	// (header parsing, checksum, reassembly bookkeeping) on a fast host
	// core; multiply by PhiSystemsSlowdown on a Phi core. IX/Arrakis
	// report ~1-2 us per small packet through a full kernel stack.
	TCPSegmentCost = 1200 * sim.Nanosecond
	// TCPPerByteCost is the per-byte stream processing cost (copies,
	// checksum) on a fast host core, ~3 GB/s effective touch rate.
	TCPPerByteCost = 330 // picoseconds per byte; see CoreCharge
	// MSS is the maximum segment payload we model (jumbo-frame-less).
	MSS = 1460
)

// DMAChainBytes is how much traffic one DMA descriptor chain covers: the
// host driver batches scattered pages into chained descriptors, paying one
// channel setup per chain.
const DMAChainBytes = 64 << 10

// Local (same-domain) memory copy rates: a host core streams copies at
// DRAM speed; a Phi core's in-order pipeline sustains far less.
const (
	LocalCopyRateHost = 10_000_000_000 // bytes/sec
	LocalCopyRatePhi  = 2_000_000_000
)

// --- Transport service (§4.2, §5) -----------------------------------------
const (
	// RingDefaultSlots is the default number of ring-buffer elements.
	RingDefaultSlots = 1024
	// RingInboundBytes: "the inbound ring buffer is large enough (e.g.,
	// 128 MB) to backlog incoming data" (§4.4.1).
	RingInboundBytes = 128 << 20
	// CombineBatch is the maximum operations one combiner services
	// before handing off (§4.2.3).
	CombineBatch = 64
	// AtomicLocalCost is one uncontended atomic RMW on local memory.
	AtomicLocalCost = 30 * sim.Nanosecond
	// CachelineBounceCost is the penalty for a contended cache line
	// migrating between cores on one chip.
	CachelineBounceCost = 150 * sim.Nanosecond
)

// --- Stock Xeon Phi baselines (§6: "Xeon Phi with virtio" and NFS) --------
const (
	// VirtioKickCost is the host-side handling of one virtblk request
	// (vring parsing, SCIF doorbell).
	VirtioKickCost = 5 * sim.Microsecond
	// PhiInterruptCost is the co-processor side of taking a virtio or
	// veth completion interrupt on a slow in-order core.
	PhiInterruptCost = 12 * sim.Microsecond
	// VethBandwidth caps the MPSS virtual-ethernet (TCP over SCIF) that
	// NFS rides on: a single memcpy-based channel. NFS lands below even
	// virtio in the paper's Figure 11/12 matrices.
	VethBandwidth = 180_000_000 // bytes/sec
	// VethLatency is the per-message latency of the virtual ethernet.
	VethLatency = 30 * sim.Microsecond
	// NFSPerCallCost is the client-side NFS/SUNRPC processing per call
	// on a host core (scaled by PhiSystemsSlowdown on the Phi).
	NFSPerCallCost = 3 * sim.Microsecond
)

// --- File system service (§4.3, §5) ---------------------------------------
const (
	// FSBlockSize is the solrosfs block size.
	FSBlockSize = 4096
	// FSStubCost is the data-plane stub's cost per FS call on a Phi
	// core: marshal an RPC, post to the ring (Figure 13a shows the stub
	// at ~1/5 the cost of a full FS *on the Phi*).
	FSStubCost = 6 * sim.Microsecond
	// FSFullCostPhi is a full-fledged FS call (VFS + ext4-like layers)
	// on a Phi core: 5x the stub (Figure 13a).
	FSFullCostPhi = 30 * sim.Microsecond
	// FSProxyCost is the host-side proxy's cost per FS call (fast core,
	// includes underlying FS work).
	FSProxyCost = 2 * sim.Microsecond
	// BufferCacheBytes is the host-side shared buffer cache capacity.
	BufferCacheBytes = 1 << 30
	// VirtioRequestCap fragments virtio block requests (virtblk ring
	// descriptors cover at most 128 KB per request in the stock mic
	// driver; the interrupt-per-request cost dominates).
	VirtioRequestCap = 64 << 10
	// NFSTransferCap is the NFS rsize/wsize: 64 KB per RPC (Linux
	// default over TCP).
	NFSTransferCap = 64 << 10
)

// --- Control-plane sharding (§6.3 scale-out) -------------------------------
//
// With core.Config.ProxyShards set, proxy request service splits into a
// serialized slice held under the owning shard's table lock and a parallel
// remainder any executor may overlap. Lock holds are sized like fine-grained
// kernel locks: a few hundred ns of map/list manipulation under a spinlock.
// The connection-admission hold is the full accept-path bookkeeping, which is
// what caps an unsharded control plane at a few hundred thousand accepts/sec.
const (
	// ProxyShardLockHold is the serialized slice of one FS RPC under its
	// shard's fid/pending-fill table lock.
	ProxyShardLockHold = 600 * sim.Nanosecond
	// ProxyFidLockHold is the extra global fid-table lock hold paid per
	// fid-touching RPC when ProxyShards is on but ShardFids is off (the
	// ablation that shows sharding the tables matters, not just the loops).
	ProxyFidLockHold = 400 * sim.Nanosecond
	// ProxyShardWorkCost is the parallel remainder of FSProxyCost once the
	// serialized slice is charged against the shard lock.
	ProxyShardWorkCost = FSProxyCost - ProxyShardLockHold
	// ProxyAcceptCost is the serialized per-connection admission work under
	// a TCP shard's lock: socket hand-off, conn-table insert, accept-frame
	// build.
	ProxyAcceptCost = 2 * sim.Microsecond
)

// PhiDMARate reports the effective DMA streaming rate for a Phi-initiated
// transfer given the link's host-initiated rate.
func PhiDMARate(linkRate int64) int64 {
	return linkRate * DMARateFactorPhiNum / DMARateFactorPhiDen
}
