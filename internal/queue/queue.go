// Package queue implements the paper's Figure 8 baseline: the Michael &
// Scott two-lock concurrent queue ("the most widely implemented queue
// algorithm", §6.1.1), parameterized by spinlock so it can run with either
// the ticket or the MCS lock.
package queue

import (
	"sync/atomic"

	"solros/internal/spinlock"
)

// node.next is atomic because the algorithm's only unlocked interaction is
// the enqueuer's link-in racing with the dequeuer's read of head.next when
// the queue has one node: the two-lock algorithm is correct only given an
// atomic next pointer.
type node struct {
	value []byte
	next  atomic.Pointer[node]
}

// TwoLock is a concurrent FIFO queue of byte-slice elements with separate
// head and tail locks, allowing one enqueuer and one dequeuer to proceed
// in parallel.
type TwoLock struct {
	head, tail   *node
	hLock, tLock spinlock.Locker
}

// NewTwoLock returns a queue using the given lock constructor for its head
// and tail locks.
func NewTwoLock(newLock func() spinlock.Locker) *TwoLock {
	dummy := &node{}
	return &TwoLock{head: dummy, tail: dummy, hLock: newLock(), tLock: newLock()}
}

// NewTwoLockTicket returns a two-lock queue with ticket spinlocks.
func NewTwoLockTicket() *TwoLock {
	return NewTwoLock(func() spinlock.Locker { return new(spinlock.Ticket) })
}

// NewTwoLockMCS returns a two-lock queue with MCS queue spinlocks.
func NewTwoLockMCS() *TwoLock {
	return NewTwoLock(spinlock.NewMCSLocker)
}

// Enqueue appends a copy of v.
func (q *TwoLock) Enqueue(v []byte) {
	n := &node{value: append([]byte(nil), v...)}
	q.tLock.Lock()
	q.tail.next.Store(n)
	q.tail = n
	q.tLock.Unlock()
}

// Dequeue removes and returns the oldest element, or nil and false if the
// queue is empty.
func (q *TwoLock) Dequeue() ([]byte, bool) {
	q.hLock.Lock()
	first := q.head.next.Load()
	if first == nil {
		q.hLock.Unlock()
		return nil, false
	}
	v := first.value
	first.value = nil
	q.head = first
	q.hLock.Unlock()
	return v, true
}
