package queue

import (
	"encoding/binary"
	"sync"
	"testing"
)

func TestFIFOSingleThread(t *testing.T) {
	for name, q := range map[string]*TwoLock{
		"ticket": NewTwoLockTicket(),
		"mcs":    NewTwoLockMCS(),
	} {
		for i := 0; i < 100; i++ {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(i))
			q.Enqueue(b[:])
		}
		for i := 0; i < 100; i++ {
			v, ok := q.Dequeue()
			if !ok {
				t.Fatalf("%s: empty at %d", name, i)
			}
			if got := binary.LittleEndian.Uint64(v); got != uint64(i) {
				t.Fatalf("%s: got %d, want %d", name, got, i)
			}
		}
		if _, ok := q.Dequeue(); ok {
			t.Fatalf("%s: dequeue on empty queue succeeded", name)
		}
	}
}

func TestEnqueueCopiesValue(t *testing.T) {
	q := NewTwoLockTicket()
	v := []byte{1, 2, 3}
	q.Enqueue(v)
	v[0] = 99
	got, _ := q.Dequeue()
	if got[0] != 1 {
		t.Fatal("Enqueue must copy; caller mutation leaked into queue")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := NewTwoLockMCS()
	const producers, perProducer = 4, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				var b [16]byte
				binary.LittleEndian.PutUint64(b[:8], uint64(p))
				binary.LittleEndian.PutUint64(b[8:], uint64(i))
				q.Enqueue(b[:])
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[[2]uint64]bool)
	lastPerProducer := make([]int64, producers)
	for i := range lastPerProducer {
		lastPerProducer[i] = -1
	}
	var cwg sync.WaitGroup
	total := 0
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				mu.Lock()
				if total == producers*perProducer {
					mu.Unlock()
					return
				}
				mu.Unlock()
				v, ok := q.Dequeue()
				if !ok {
					continue
				}
				p := binary.LittleEndian.Uint64(v[:8])
				i := binary.LittleEndian.Uint64(v[8:])
				mu.Lock()
				key := [2]uint64{p, i}
				if seen[key] {
					t.Errorf("duplicate element %v", key)
				}
				seen[key] = true
				total++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if total != producers*perProducer {
		t.Fatalf("consumed %d, want %d", total, producers*perProducer)
	}
}
