package workload

import (
	"fmt"
	"math/rand"
)

// YCSB-style request generation for the serving experiments: Zipfian key
// popularity, standard A–F-ish operation mixes, open-loop Poisson
// arrivals, and multi-tenant traffic classes. Everything is a pure
// function of its seed so a serving run replays byte-identically.

// OpKind enumerates the YCSB core operations.
type OpKind uint8

// The operation kinds of the YCSB core workloads. ReadModifyWrite is a
// read followed by an update of the same key (workload F).
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpReadModifyWrite:
		return "rmw"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Mix is an operation mix: fractions summing to 1. The zero mix is
// invalid; use MixFor or build one explicitly.
type Mix struct {
	Read, Update, Insert, Scan, RMW float64
}

// MixFor returns the standard YCSB core mix for a workload class:
//
//	A  update-heavy   50/50 read/update
//	B  read-mostly    95/5 read/update
//	C  read-only      100 read
//	D  read-latest    95/5 read/insert
//	E  short-ranges   95/5 scan/insert
//	F  read-modify-write  50/50 read/rmw
func MixFor(class byte) Mix {
	switch class {
	case 'A', 'a':
		return Mix{Read: 0.5, Update: 0.5}
	case 'B', 'b':
		return Mix{Read: 0.95, Update: 0.05}
	case 'C', 'c':
		return Mix{Read: 1}
	case 'D', 'd':
		return Mix{Read: 0.95, Insert: 0.05}
	case 'E', 'e':
		return Mix{Scan: 0.95, Insert: 0.05}
	case 'F', 'f':
		return Mix{Read: 0.5, RMW: 0.5}
	}
	panic(fmt.Sprintf("workload: unknown YCSB class %q", class))
}

// pick draws an op kind from the mix with one uniform variate.
func (m Mix) pick(u float64) OpKind {
	u -= m.Read
	if u < 0 {
		return OpRead
	}
	u -= m.Update
	if u < 0 {
		return OpUpdate
	}
	u -= m.Insert
	if u < 0 {
		return OpInsert
	}
	u -= m.Scan
	if u < 0 {
		return OpScan
	}
	return OpReadModifyWrite
}

// Op is one generated request.
type Op struct {
	Kind OpKind
	// Tenant indexes the generator's tenant table (0 for single-tenant
	// generators).
	Tenant int
	// Key is the target key index inside the tenant's keyspace. Inserts
	// extend the keyspace: their Key is the previously-largest index + 1.
	Key int
	// ScanLen is the range length for OpScan (0 otherwise).
	ScanLen int
}

// Tenant is one traffic class of a multi-tenant serving workload: its own
// mix, keyspace, and share of the offered load.
type Tenant struct {
	// Name labels the class in results ("frontend", "batch", ...).
	Name string
	// Mix is the class's operation mix.
	Mix Mix
	// Keys is the initial keyspace size (key indices 0..Keys-1).
	Keys int
	// Share is the class's fraction of total offered load; shares are
	// normalized over the tenant table, so they need not sum to 1.
	Share float64
}

// ZipfS and ZipfV are the generator's skew parameters for
// math/rand.Zipf: s ≈ 1.1 gives YCSB-like skew where a few keys absorb
// most of the traffic while the tail still gets hits.
const (
	ZipfS = 1.1
	ZipfV = 1.0
)

// Generator produces a deterministic YCSB-style op stream. One rand
// stream drives tenant choice, op choice, key choice, and scan lengths,
// so the whole stream is a pure function of (seed, tenant table).
type Generator struct {
	r       *rand.Rand
	tenants []Tenant
	zipf    []*rand.Zipf
	nkeys   []int
	shares  []float64 // cumulative, normalized
	maxScan int
}

// NewGenerator builds a single-tenant generator with the given mix over
// keys initial keys.
func NewGenerator(seed int64, mix Mix, keys int) *Generator {
	return NewMultiGenerator(seed, []Tenant{{Name: "default", Mix: mix, Keys: keys, Share: 1}})
}

// NewMultiGenerator builds a generator over a tenant table. Each tenant
// gets its own Zipfian popularity curve over its own keyspace; ops are
// attributed to tenants by normalized Share.
func NewMultiGenerator(seed int64, tenants []Tenant) *Generator {
	if len(tenants) == 0 {
		panic("workload: no tenants")
	}
	g := &Generator{
		r:       rand.New(rand.NewSource(seed)),
		tenants: tenants,
		maxScan: 16,
	}
	var total float64
	for _, t := range tenants {
		if t.Keys < 1 {
			panic("workload: tenant with empty keyspace")
		}
		if t.Share < 0 {
			panic("workload: negative tenant share")
		}
		total += t.Share
	}
	if total <= 0 {
		panic("workload: zero total tenant share")
	}
	cum := 0.0
	for _, t := range tenants {
		cum += t.Share / total
		g.shares = append(g.shares, cum)
		g.zipf = append(g.zipf, rand.NewZipf(g.r, ZipfS, ZipfV, uint64(t.Keys-1)))
		g.nkeys = append(g.nkeys, t.Keys)
	}
	return g
}

// Keys reports tenant t's current keyspace size (grows with inserts).
func (g *Generator) Keys(t int) int { return g.nkeys[t] }

// Tenants reports the tenant table.
func (g *Generator) Tenants() []Tenant { return g.tenants }

// Next draws the next op.
func (g *Generator) Next() Op {
	t := 0
	if len(g.tenants) > 1 {
		u := g.r.Float64()
		for t < len(g.shares)-1 && u >= g.shares[t] {
			t++
		}
	}
	op := Op{Tenant: t, Kind: g.tenants[t].Mix.pick(g.r.Float64())}
	switch op.Kind {
	case OpInsert:
		op.Key = g.nkeys[t]
		g.nkeys[t]++
	default:
		// Zipf rank 0 is the hottest key; spread ranks over the keyspace
		// deterministically so hot keys are not all clustered at index 0
		// (which would put them on one shard under modular hashing).
		rank := int(g.zipf[t].Uint64())
		op.Key = keyScramble(rank, g.nkeys[t])
		if op.Kind == OpScan {
			op.ScanLen = 1 + g.r.Intn(g.maxScan)
		}
	}
	return op
}

// Ops draws the next n ops.
func (g *Generator) Ops(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// keyScramble maps a popularity rank to a key index with a fixed affine
// permutation, so the Zipf head spreads across the keyspace (and so
// across shards) instead of concentrating on low indices.
func keyScramble(rank, keys int) int {
	if keys <= 1 {
		return 0
	}
	// 2654435761 is Knuth's multiplicative hash constant; the modulus
	// keeps the map total (not a bijection, but collision-free enough
	// for popularity spreading and fully deterministic).
	return int((uint64(rank) * 2654435761) % uint64(keys))
}

// KeyName renders tenant t's key index the way the serving workloads
// store it: "t<tenant>:user<index>".
func KeyName(tenant, key int) string {
	return fmt.Sprintf("t%d:user%06d", tenant, key)
}

// Arrivals returns n inter-arrival gaps in nanoseconds for an open-loop
// Poisson process at ratePerSec requests per second, deterministic in
// seed. Cumulative sums of the gaps give the absolute arrival times; the
// caller advances the sim clock to each arrival regardless of how far
// behind service is — that unconditional schedule is what makes the
// workload open-loop.
func Arrivals(seed int64, ratePerSec float64, n int) []int64 {
	if ratePerSec <= 0 {
		panic("workload: non-positive arrival rate")
	}
	r := rand.New(rand.NewSource(seed))
	mean := 1e9 / ratePerSec
	out := make([]int64, n)
	for i := range out {
		gap := int64(r.ExpFloat64() * mean)
		if gap < 1 {
			gap = 1 // strictly increasing arrival times
		}
		out[i] = gap
	}
	return out
}
