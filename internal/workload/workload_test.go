package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestOffsetsDeterministicAlignedInRange(t *testing.T) {
	a := Offsets(1, 1<<20, 4096, 500)
	b := Offsets(1, 1<<20, 4096, 500)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different offsets")
		}
		if a[i]%4096 != 0 || a[i] < 0 || a[i] >= 1<<20 {
			t.Fatalf("offset %d unaligned or out of range", a[i])
		}
	}
	c := Offsets(2, 1<<20, 4096, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestCorpusSizeAndDeterminism(t *testing.T) {
	a := Corpus(3, 10000)
	if len(a) != 10000 {
		t.Fatalf("len = %d", len(a))
	}
	if !bytes.Equal(a, Corpus(3, 10000)) {
		t.Fatal("corpus not deterministic")
	}
	// Must contain separators so tokenization works.
	if !bytes.ContainsAny(a, " \n") {
		t.Fatal("corpus has no separators")
	}
}

func TestFeaturesAndQuery(t *testing.T) {
	db := Features(5, 100)
	if len(db) != 100*FeatureDim {
		t.Fatalf("db len = %d", len(db))
	}
	q := Query(db, 37)
	if len(q) != FeatureDim {
		t.Fatalf("query len = %d", len(q))
	}
	// The perturbed query must stay closest to its source record.
	src := db[37*FeatureDim : 38*FeatureDim]
	d := l1(q, src)
	for i := 0; i < 100; i++ {
		if i == 37 {
			continue
		}
		if l1(q, db[i*FeatureDim:(i+1)*FeatureDim]) <= d {
			t.Fatalf("record %d at least as close as the source", i)
		}
	}
}

func l1(a, b []byte) int {
	d := 0
	for i := range a {
		x := int(a[i]) - int(b[i])
		if x < 0 {
			x = -x
		}
		d += x
	}
	return d
}

func TestU32RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool { return DecodeU32(EncodeU32(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
