package workload

import (
	"math"
	"testing"
)

// TestZipfGoldenSample pins the generator's key stream: same seed, same
// bytes, forever. If this golden changes, every serving experiment's
// digest changes with it — that is a deliberate tripwire.
func TestZipfGoldenSample(t *testing.T) {
	g := NewGenerator(7, MixFor('C'), 1000)
	got := make([]int, 16)
	for i := range got {
		got[i] = g.Next().Key
	}
	want := zipfGolden
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zipf sample diverged at %d: got %v want %v", i, got, want)
		}
	}
}

func TestGeneratorDeterminismAcrossSeeds(t *testing.T) {
	a := NewGenerator(11, MixFor('A'), 500).Ops(2000)
	b := NewGenerator(11, MixFor('A'), 500).Ops(2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewGenerator(12, MixFor('A'), 500).Ops(2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical op streams")
	}
}

func TestZipfSkewAndCoverage(t *testing.T) {
	g := NewGenerator(3, MixFor('C'), 1000)
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Skew: the hottest key must absorb far more than its uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/100 { // uniform share would be n/1000
		t.Fatalf("hottest key got %d/%d hits; no Zipfian skew", max, n)
	}
	// Coverage: the tail must still be reachable.
	if len(counts) < 100 {
		t.Fatalf("only %d distinct keys of 1000 touched", len(counts))
	}
}

// TestMixConformance draws 10k ops per class and checks the realized
// ratios against the nominal mix within 2 percentage points.
func TestMixConformance(t *testing.T) {
	const n = 10000
	for _, class := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		mix := MixFor(class)
		g := NewGenerator(int64(class), mix, 2000)
		var counts [5]int
		for i := 0; i < n; i++ {
			counts[g.Next().Kind]++
		}
		check := func(kind OpKind, want float64) {
			got := float64(counts[kind]) / n
			if math.Abs(got-want) > 0.02 {
				t.Errorf("class %c: %v ratio %.4f, want %.2f±0.02", class, kind, got, want)
			}
		}
		check(OpRead, mix.Read)
		check(OpUpdate, mix.Update)
		check(OpInsert, mix.Insert)
		check(OpScan, mix.Scan)
		check(OpReadModifyWrite, mix.RMW)
	}
}

func TestInsertsGrowKeyspace(t *testing.T) {
	g := NewGenerator(5, MixFor('D'), 100)
	inserts := 0
	for i := 0; i < 2000; i++ {
		op := g.Next()
		if op.Kind == OpInsert {
			if op.Key != 100+inserts {
				t.Fatalf("insert %d got key %d, want %d", inserts, op.Key, 100+inserts)
			}
			inserts++
		} else if op.Key < 0 || op.Key >= g.Keys(0) {
			t.Fatalf("key %d outside keyspace [0,%d)", op.Key, g.Keys(0))
		}
	}
	if inserts == 0 {
		t.Fatal("class D produced no inserts in 2000 ops")
	}
	if g.Keys(0) != 100+inserts {
		t.Fatalf("keyspace %d after %d inserts from 100", g.Keys(0), inserts)
	}
}

func TestMultiTenantShares(t *testing.T) {
	g := NewMultiGenerator(9, []Tenant{
		{Name: "frontend", Mix: MixFor('B'), Keys: 400, Share: 3},
		{Name: "batch", Mix: MixFor('A'), Keys: 100, Share: 1},
	})
	const n = 10000
	var perTenant [2]int
	for i := 0; i < n; i++ {
		op := g.Next()
		perTenant[op.Tenant]++
		if op.Kind != OpInsert && (op.Key < 0 || op.Key >= g.Keys(op.Tenant)) {
			t.Fatalf("tenant %d key %d outside keyspace", op.Tenant, op.Key)
		}
	}
	got := float64(perTenant[0]) / n
	if math.Abs(got-0.75) > 0.02 {
		t.Fatalf("tenant 0 share %.4f, want 0.75±0.02", got)
	}
}

// TestArrivalRateAccuracy checks the open-loop arrival schedule against
// the nominal rate on the (virtual) clock: cumulative time for n arrivals
// at rate λ must be within 5% of n/λ, and every gap must be positive.
func TestArrivalRateAccuracy(t *testing.T) {
	for _, rate := range []float64{1000, 50000, 1e6} {
		const n = 20000
		gaps := Arrivals(21, rate, n)
		var total int64
		for _, g := range gaps {
			if g <= 0 {
				t.Fatalf("non-positive gap %d", g)
			}
			total += g
		}
		wantNs := float64(n) / rate * 1e9
		if math.Abs(float64(total)-wantNs) > 0.05*wantNs {
			t.Fatalf("rate %.0f: %d arrivals span %d ns, want %.0f±5%%", rate, n, total, wantNs)
		}
	}
	// Determinism.
	a := Arrivals(4, 1e5, 100)
	b := Arrivals(4, 1e5, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrival schedule not deterministic")
		}
	}
}

// zipfGolden is the pinned head of NewGenerator(7, MixFor('C'), 1000)'s
// key stream.
var zipfGolden = [16]int{100, 0, 420, 918, 283, 786, 0, 999, 0, 577, 811, 19, 522, 0, 220, 157}

func TestKeyName(t *testing.T) {
	if got := KeyName(1, 42); got != "t1:user000042" {
		t.Fatalf("KeyName = %q", got)
	}
}
