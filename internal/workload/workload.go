// Package workload generates the deterministic synthetic inputs the
// benchmarks and applications consume: fio-style random-offset streams, a
// text corpus for the indexing application, and feature vectors for the
// image-search application. Everything is seeded so experiment runs are
// reproducible.
package workload

import (
	"encoding/binary"
	"math/rand"
)

// Offsets returns count block-aligned offsets drawn uniformly from a file
// of fileSize bytes with the given block size, deterministic in seed.
func Offsets(seed int64, fileSize, blockSize int64, count int) []int64 {
	if fileSize < blockSize {
		panic("workload: file smaller than block")
	}
	r := rand.New(rand.NewSource(seed))
	blocks := fileSize / blockSize
	out := make([]int64, count)
	for i := range out {
		out[i] = r.Int63n(blocks) * blockSize
	}
	return out
}

// words is a small vocabulary; corpus text mixes these with Zipf-ish
// repetition so the inverted index has realistic skew.
var words = []string{
	"data", "centric", "operating", "system", "architecture", "heterogeneous",
	"computing", "coprocessor", "kernel", "transport", "ring", "buffer",
	"peer", "storage", "network", "socket", "latency", "throughput",
	"combining", "delegation", "control", "plane", "proxy", "stub", "xeon",
	"phi", "nvme", "pcie", "numa", "dma", "interrupt", "doorbell", "extent",
	"inode", "packet", "segment", "balance", "shard", "index", "search",
}

// Corpus generates approximately size bytes of whitespace-separated text,
// deterministic in seed.
func Corpus(seed int64, size int) []byte {
	r := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(r, 1.3, 1.0, uint64(len(words)-1))
	out := make([]byte, 0, size+16)
	for len(out) < size {
		w := words[zipf.Uint64()]
		out = append(out, w...)
		if r.Intn(12) == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:size]
}

// FeatureDim is the image descriptor dimensionality (a SIFT-like 128-d
// vector quantized to bytes).
const FeatureDim = 128

// Features generates n FeatureDim-byte image descriptors, deterministic in
// seed; the layout is n contiguous records.
func Features(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n*FeatureDim)
	r.Read(out)
	return out
}

// Query derives the i-th query vector from a database by perturbing a
// record, so searches have a well-defined nearest neighbour.
func Query(db []byte, i int) []byte {
	n := len(db) / FeatureDim
	rec := i % n
	q := append([]byte(nil), db[rec*FeatureDim:(rec+1)*FeatureDim]...)
	r := rand.New(rand.NewSource(int64(i)))
	for k := 0; k < 8; k++ {
		j := r.Intn(FeatureDim)
		q[j] ^= byte(1 << uint(r.Intn(3)))
	}
	return q
}

// EncodeU32 / DecodeU32 are tiny helpers for length-prefixed request
// framing in network workloads.
func EncodeU32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// DecodeU32 reads a little-endian uint32.
func DecodeU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
