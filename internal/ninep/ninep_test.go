package ninep

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &Msg{
		Type: Tread, Tag: 7, Fid: 42, Flags: OBuffer,
		Off: 1 << 40, Count: 4096, Addr: 0xDEADBEE0, Size: 99, Mode: 2,
		Name: "/a/b/c", Err: "", Data: []byte{1, 2, 3},
	}
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDecodeShort(t *testing.T) {
	m := &Msg{Type: Tstat, Name: "/x"}
	enc := m.Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := Decode(enc[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func TestErrorWrapping(t *testing.T) {
	m := &Msg{Type: Rerror, Err: "file does not exist"}
	if err := m.Error(); err == nil || err.Error() != "file does not exist" {
		t.Fatalf("Error() = %v", err)
	}
	ok := &Msg{Type: Ropen}
	if err := ok.Error(); err != nil {
		t.Fatalf("non-error message produced error %v", err)
	}
}

func TestTypeStrings(t *testing.T) {
	if Tread.String() != "Tread" || Rerror.String() != "Rerror" {
		t.Fatal("type names wrong")
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Fatal("unknown type formatting wrong")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(tag uint16, fid, flags uint32, off, count, addr int64, name string, data []byte) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		in := &Msg{
			Type: Twrite, Tag: tag, Fid: fid, Flags: flags,
			Off: off, Count: count, Addr: addr, Name: name, Data: data,
		}
		out, err := Decode(in.Encode())
		if err != nil {
			return false
		}
		if len(data) == 0 {
			// Decode normalizes empty data to nil.
			in = &Msg{Type: in.Type, Tag: in.Tag, Fid: in.Fid, Flags: in.Flags,
				Off: in.Off, Count: in.Count, Addr: in.Addr, Name: in.Name}
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
