// Package ninep defines the file-system RPC protocol between the
// data-plane stub and the control-plane proxy. It is modelled on the 9P
// protocol the paper extends (§5): every file-system call maps 1:1 to a
// T-message/R-message pair, and — the Solros extension — Tread and Twrite
// carry the *physical address* of co-processor memory instead of data, so
// the proxy can arrange zero-copy transfers between the disk and the
// co-processor.
//
// Messages encode to real bytes (little-endian, length-prefixed strings)
// because they travel through the transport ring's master memory.
package ninep

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType enumerates the protocol's messages.
type MsgType uint8

// T-messages are requests (stub -> proxy); R-messages are responses.
const (
	Topen MsgType = iota + 1
	Ropen
	Tcreate
	Rcreate
	Tread // extended: carries co-processor physical address
	Rread
	Twrite // extended: carries co-processor physical address
	Rwrite
	Tstat
	Rstat
	Tunlink
	Runlink
	Tmkdir
	Rmkdir
	Treaddir
	Rreaddir
	Ttrunc
	Rtrunc
	Tsync
	Rsync
	Tclose
	Rclose
	Trename
	Rrename
	Tlink
	Rlink
	Rerror
	// Treadahead is a Solros extension: an advisory hint that
	// [Off, Off+Count) will be read soon. The proxy warms the shared
	// buffer cache in the background and replies immediately; errors
	// during the fill are dropped, never reported.
	Treadahead
	Rreadahead
)

var typeNames = map[MsgType]string{
	Topen: "Topen", Ropen: "Ropen", Tcreate: "Tcreate", Rcreate: "Rcreate",
	Tread: "Tread", Rread: "Rread", Twrite: "Twrite", Rwrite: "Rwrite",
	Tstat: "Tstat", Rstat: "Rstat", Tunlink: "Tunlink", Runlink: "Runlink",
	Tmkdir: "Tmkdir", Rmkdir: "Rmkdir", Treaddir: "Treaddir", Rreaddir: "Rreaddir",
	Ttrunc: "Ttrunc", Rtrunc: "Rtrunc", Tsync: "Tsync", Rsync: "Rsync",
	Tclose: "Tclose", Rclose: "Rclose", Trename: "Trename", Rrename: "Rrename",
	Tlink: "Tlink", Rlink: "Rlink",
	Rerror:     "Rerror",
	Treadahead: "Treadahead", Rreadahead: "Rreadahead",
}

func (t MsgType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Open flags.
const (
	// OBuffer forces buffered (host-staged) I/O for the file, the
	// paper's O_BUFFER extension (§4.3.2).
	OBuffer uint32 = 1 << 0
	// OCreate creates the file if missing.
	OCreate uint32 = 1 << 1
)

// Msg is a protocol message. One struct covers all types; unused fields
// encode as zero. Addr is the Solros extension: the physical offset in the
// requesting co-processor's exported memory for zero-copy Tread/Twrite.
type Msg struct {
	Type  MsgType
	Tag   uint16
	Fid   uint32
	Flags uint32
	Off   int64
	Count int64
	Addr  int64
	Size  int64  // Rstat / Ropen result
	Mode  uint16 // Rstat result
	Name  string // path for Topen/Tcreate/...
	Err   string // Rerror
	Data  []byte // inline payload (buffered-mode fallback, Rreaddir)

	// Trace/Span carry the causal trace context across the wire as an
	// optional 16-byte trailer, present only when Trace is non-zero —
	// untraced messages encode byte-identically to the pre-tracing
	// format, so tracing off leaves every transfer size (and therefore
	// every virtual-time charge) unchanged. The proxy echoes both
	// fields into its response so the reply joins the request's tree.
	Trace uint64
	Span  uint64
}

const fixedHdr = 1 + 1 + 2 + 4 + 4 + 8 + 8 + 8 + 8 + 2 // + name/err/data prefixes

// EncodedSize reports the exact encoded length of m, for sizing scratch.
func (m *Msg) EncodedSize() int {
	n := fixedHdr + 8 + len(m.Name) + len(m.Err) + len(m.Data)
	if m.Trace != 0 {
		n += 16
	}
	return n
}

// Encode serializes the message into a fresh buffer.
func (m *Msg) Encode() []byte {
	return m.AppendTo(make([]byte, 0, m.EncodedSize()))
}

// AppendTo serializes the message onto b and returns the extended slice —
// the zero-alloc encoder of the delegated hot path: callers keep a
// grow-once scratch and pass scratch[:0], so steady-state encodes never
// touch the heap.
func (m *Msg) AppendTo(b []byte) []byte {
	if len(m.Name) > 0xFFFF || len(m.Err) > 0xFFFF {
		panic("ninep: string field too long")
	}
	b = append(b, byte(m.Type), 0)
	b = binary.LittleEndian.AppendUint16(b, m.Tag)
	b = binary.LittleEndian.AppendUint32(b, m.Fid)
	b = binary.LittleEndian.AppendUint32(b, m.Flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Off))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Count))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Addr))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Size))
	b = binary.LittleEndian.AppendUint16(b, m.Mode)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Name)))
	b = append(b, m.Name...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Err)))
	b = append(b, m.Err...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Data)))
	b = append(b, m.Data...)
	if m.Trace != 0 {
		b = binary.LittleEndian.AppendUint64(b, m.Trace)
		b = binary.LittleEndian.AppendUint64(b, m.Span)
	}
	return b
}

// ErrShortMessage reports a truncated or corrupt encoding.
var ErrShortMessage = errors.New("ninep: short or corrupt message")

// Decode parses a message encoded by Encode into a fresh Msg.
func Decode(b []byte) (*Msg, error) {
	m := &Msg{}
	if err := DecodeInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// PeekTag reads the tag of an encoded message without decoding it, so a
// dispatcher can route raw bytes to the call record that owns the tag (and
// decode straight into storage the record owns).
func PeekTag(b []byte) (uint16, bool) {
	if len(b) < 4 {
		return 0, false
	}
	return binary.LittleEndian.Uint16(b[2:]), true
}

// Reset clears every field for reuse, keeping Data's backing array so a
// later DecodeInto (or inline payload build) can reuse it.
func (m *Msg) Reset() {
	data := m.Data
	*m = Msg{}
	if cap(data) > 0 {
		m.Data = data[:0]
	}
}

// DecodeInto parses a message encoded by Encode into m, overwriting every
// field. The payload is copied into m's existing Data backing array when it
// has capacity (growing it once otherwise), never aliased to b — so m stays
// valid after b's buffer is recycled, and a long-lived Msg amortizes its
// payload storage across decodes. This is the zero-alloc decoder of the
// delegated hot path.
func DecodeInto(m *Msg, b []byte) error {
	if len(b) < fixedHdr {
		return ErrShortMessage
	}
	data := m.Data
	*m = Msg{
		Type:  MsgType(b[0]),
		Tag:   binary.LittleEndian.Uint16(b[2:]),
		Fid:   binary.LittleEndian.Uint32(b[4:]),
		Flags: binary.LittleEndian.Uint32(b[8:]),
		Off:   int64(binary.LittleEndian.Uint64(b[12:])),
		Count: int64(binary.LittleEndian.Uint64(b[20:])),
		Addr:  int64(binary.LittleEndian.Uint64(b[28:])),
		Size:  int64(binary.LittleEndian.Uint64(b[36:])),
		Mode:  binary.LittleEndian.Uint16(b[44:]),
	}
	p := 46
	take16 := func() (int, bool) {
		if len(b) < p+2 {
			return 0, false
		}
		n := int(binary.LittleEndian.Uint16(b[p:]))
		p += 2
		return n, true
	}
	n, ok := take16()
	if !ok || len(b) < p+n {
		return ErrShortMessage
	}
	m.Name = string(b[p : p+n])
	p += n
	n, ok = take16()
	if !ok || len(b) < p+n {
		return ErrShortMessage
	}
	m.Err = string(b[p : p+n])
	p += n
	if len(b) < p+4 {
		return ErrShortMessage
	}
	dn := int(binary.LittleEndian.Uint32(b[p:]))
	p += 4
	if len(b) < p+dn {
		return ErrShortMessage
	}
	if dn > 0 {
		m.Data = append(data[:0], b[p:p+dn]...)
	} else if cap(data) > 0 {
		m.Data = data[:0] // keep the amortized backing across decodes
	}
	p += dn
	if len(b) >= p+16 {
		m.Trace = binary.LittleEndian.Uint64(b[p:])
		m.Span = binary.LittleEndian.Uint64(b[p+8:])
	}
	return nil
}

// Error wraps an Rerror into a Go error.
func (m *Msg) Error() error {
	if m.Type == Rerror {
		return errors.New(m.Err)
	}
	return nil
}
