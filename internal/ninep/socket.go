package ninep

import (
	"encoding/binary"
	"errors"
)

// Socket-service RPC messages (§4.4.1: "we defined 10 RPC messages, each
// of which corresponds to a network system call, and two messages for
// event notification"). They reuse the Msg encoding: Fid carries the
// socket id, Off carries the port, Name carries the remote host name.
const (
	Tlisten MsgType = iota + 64
	Rlisten
	Tconnect
	Rconnect
	Tsockclose
	Rsockclose
	Tsetbalance
	Rsetbalance
)

func init() {
	typeNames[Tlisten] = "Tlisten"
	typeNames[Rlisten] = "Rlisten"
	typeNames[Tconnect] = "Tconnect"
	typeNames[Rconnect] = "Rconnect"
	typeNames[Tsockclose] = "Tsockclose"
	typeNames[Rsockclose] = "Rsockclose"
	typeNames[Tsetbalance] = "Tsetbalance"
	typeNames[Rsetbalance] = "Rsetbalance"
}

// Frame kinds for the event/data rings (§4.4.2): the inbound ring carries
// accept and data-arrival events; the outbound ring carries sends and
// closes.
const (
	FrameData byte = iota + 1
	FrameAccept
	FrameEOF
	FrameClose
	// FrameListenClosed tells the data plane its shared listeners were
	// torn down; blocked Accepts fail.
	FrameListenClosed
)

// frameHdr is kind + connID.
const frameHdr = 1 + 8

// FrameHdrLen is the ring-frame header length, exported for callers that
// build headers into their own scratch for vectored (writev-style) sends.
const FrameHdrLen = frameHdr

// EncodeFrame packs a ring frame into a fresh buffer.
func EncodeFrame(kind byte, connID uint64, payload []byte) []byte {
	return AppendFrame(make([]byte, 0, frameHdr+len(payload)), kind, connID, payload)
}

// AppendFrame packs a ring frame onto b and returns the extended slice;
// with a grow-once scratch the steady-state encode is allocation-free.
func AppendFrame(b []byte, kind byte, connID uint64, payload []byte) []byte {
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint64(b, connID)
	return append(b, payload...)
}

// PutFrameHeader writes just the frame header into b (len >= FrameHdrLen),
// for writev-style two-slice sends that keep header and payload separate
// instead of joining them in a staging buffer.
func PutFrameHeader(b []byte, kind byte, connID uint64) {
	b[0] = kind
	binary.LittleEndian.PutUint64(b[1:], connID)
}

// ErrBadFrame reports a corrupt ring frame.
var ErrBadFrame = errors.New("ninep: bad ring frame")

// DecodeFrame unpacks a ring frame; payload aliases b.
func DecodeFrame(b []byte) (kind byte, connID uint64, payload []byte, err error) {
	if len(b) < frameHdr {
		return 0, 0, nil, ErrBadFrame
	}
	return b[0], binary.LittleEndian.Uint64(b[1:]), b[frameHdr:], nil
}
