package ninep

import "testing"

var benchMsg = &Msg{
	Type: Tread, Tag: 42, Fid: 7, Flags: OBuffer,
	Off: 1 << 30, Count: 1 << 20, Addr: 0x10000,
	Name: "/some/path/to/a/file",
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = benchMsg.Encode()
	}
}

func BenchmarkDecode(b *testing.B) {
	enc := benchMsg.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		f := EncodeFrame(FrameData, 99, payload)
		if _, _, _, err := DecodeFrame(f); err != nil {
			b.Fatal(err)
		}
	}
}
