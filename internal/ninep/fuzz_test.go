package ninep

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the wire decoder: it must never
// panic, and any buffer it accepts must survive a re-encode/re-decode
// round trip unchanged (the decoder and encoder agree on the format).
func FuzzDecode(f *testing.F) {
	seeds := []*Msg{
		{Type: Topen, Tag: 1, Fid: 2, Flags: OBuffer, Name: "/etc/motd"},
		{Type: Tread, Tag: 7, Fid: 3, Off: 4096, Count: 1 << 20, Addr: 0x8000},
		{Type: Rerror, Tag: 7, Err: "solrosfs: file does not exist"},
		{Type: Rreaddir, Tag: 9, Data: []byte{5, 'h', 'e', 'l', 'l', 'o'}},
		{Type: Trename, Tag: 3, Name: "/old\x00/new"},
		{Type: Rstat, Tag: 4, Size: 1 << 40, Mode: 0o755},
	}
	for _, m := range seeds {
		f.Add(m.Encode())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if m.Type != again.Type || m.Tag != again.Tag || m.Fid != again.Fid ||
			m.Flags != again.Flags || m.Off != again.Off || m.Count != again.Count ||
			m.Addr != again.Addr || m.Size != again.Size || m.Mode != again.Mode ||
			m.Name != again.Name || m.Err != again.Err || !bytes.Equal(m.Data, again.Data) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", again, m)
		}
	})
}

// FuzzEncodeRoundTrip drives the codec from the field side: any message
// whose string fields fit the 16-bit length prefixes must encode and
// decode back to itself exactly.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add(byte(Topen), uint16(1), uint32(2), uint32(3), int64(4), int64(5), "/a", "", []byte(nil))
	f.Add(byte(Rerror), uint16(0xffff), uint32(0), uint32(0), int64(-1), int64(1<<62), "", "boom", []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, typ byte, tag uint16, fid, flags uint32, off, count int64, name, errStr string, data []byte) {
		if len(name) > 0xFFFF || len(errStr) > 0xFFFF {
			t.Skip()
		}
		m := &Msg{
			Type: MsgType(typ), Tag: tag, Fid: fid, Flags: flags,
			Off: off, Count: count, Name: name, Err: errStr, Data: data,
		}
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("decode of encoded message failed: %v", err)
		}
		if got.Type != m.Type || got.Tag != m.Tag || got.Fid != m.Fid ||
			got.Flags != m.Flags || got.Off != m.Off || got.Count != m.Count ||
			got.Name != m.Name || got.Err != m.Err || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
		}
	})
}
