package ninep

import "testing"

// TestTraceTrailerRoundTrip pins the trace-context wire format: a message
// with a trace gains exactly 16 trailer bytes which decode back to the
// same (Trace, Span); a message without one encodes byte-identically to
// the pre-tracing format — the property that keeps figures unchanged when
// tracing is off.
func TestTraceTrailerRoundTrip(t *testing.T) {
	base := &Msg{Type: Tread, Tag: 7, Fid: 3, Off: 4096, Count: 65536, Addr: 1 << 20}
	plain := base.Encode()

	traced := *base
	traced.Trace = 0xdeadbeefcafef00d
	traced.Span = 42
	wire := traced.Encode()
	if len(wire) != len(plain)+16 {
		t.Fatalf("traced frame is %d bytes, want %d+16", len(wire), len(plain))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != traced.Trace || got.Span != traced.Span {
		t.Errorf("decoded trace %#x span %d, want %#x span %d",
			got.Trace, got.Span, traced.Trace, traced.Span)
	}
	if got.Type != base.Type || got.Tag != base.Tag || got.Fid != base.Fid ||
		got.Off != base.Off || got.Count != base.Count || got.Addr != base.Addr {
		t.Errorf("trailer corrupted the fixed fields: %+v", got)
	}

	// Untraced: no trailer on the wire, zero context after decode.
	got, err = Decode(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != 0 || got.Span != 0 {
		t.Errorf("untraced frame decoded trace %#x span %d", got.Trace, got.Span)
	}

	// Trace 0 means "untraced" even with a stray Span set: no trailer, so
	// a re-encode cannot invent a partial context.
	stray := *base
	stray.Span = 99
	if len(stray.Encode()) != len(plain) {
		t.Error("Span without Trace emitted a trailer")
	}

	// Trailer survives data payloads: the 16 bytes ride after Data.
	payload := *base
	payload.Type = Rread
	payload.Data = []byte("hello, solros")
	payload.Trace = 1
	payload.Span = 2
	got, err = Decode(payload.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "hello, solros" || got.Trace != 1 || got.Span != 2 {
		t.Errorf("payload+trailer round trip broken: data=%q trace=%d span=%d",
			got.Data, got.Trace, got.Span)
	}
}
