package ninep

import (
	"bytes"
	"testing"
)

// TestAppendToMatchesEncode pins the zero-alloc encoder to the original
// wire format, byte for byte.
func TestAppendToMatchesEncode(t *testing.T) {
	msgs := []Msg{
		{Type: Tread, Tag: 7, Fid: 3, Off: 4096, Count: 1 << 20, Addr: 1 << 30},
		{Type: Topen, Tag: 1, Fid: 9, Flags: OBuffer, Name: "/data/file"},
		{Type: Rerror, Tag: 2, Err: "no such file"},
		{Type: Rreaddir, Tag: 3, Data: []byte{1, 'a', 2, 'b', 'c'}},
		{Type: Tread, Tag: 4, Off: 1, Count: 2, Trace: 0xdead, Span: 0xbeef},
	}
	var scratch []byte
	for _, m := range msgs {
		want := m.Encode()
		scratch = m.AppendTo(scratch[:0])
		if !bytes.Equal(scratch, want) {
			t.Fatalf("%v: AppendTo != Encode\n got %x\nwant %x", m.Type, scratch, want)
		}
		if len(want) != m.EncodedSize() {
			t.Fatalf("%v: EncodedSize %d != len %d", m.Type, m.EncodedSize(), len(want))
		}
	}
}

// TestDecodeIntoRoundTrip checks the reusable decoder against the
// allocating one across message shapes, including Data reuse.
func TestDecodeIntoRoundTrip(t *testing.T) {
	msgs := []Msg{
		{Type: Tread, Tag: 7, Fid: 3, Off: 4096, Count: 1 << 20, Addr: 1 << 30},
		{Type: Rreaddir, Tag: 3, Data: []byte("xyzzy")},
		{Type: Rread, Tag: 9, Count: 512},
		{Type: Rreaddir, Tag: 4, Data: bytes.Repeat([]byte{0xAB}, 300)},
		{Type: Topen, Tag: 5, Name: "/a", Flags: OCreate},
		{Type: Tread, Tag: 6, Trace: 1, Span: 2},
	}
	var reused Msg
	for _, m := range msgs {
		raw := m.Encode()
		want, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(&reused, raw); err != nil {
			t.Fatal(err)
		}
		if reused.Type != want.Type || reused.Tag != want.Tag || reused.Fid != want.Fid ||
			reused.Flags != want.Flags || reused.Off != want.Off || reused.Count != want.Count ||
			reused.Addr != want.Addr || reused.Size != want.Size || reused.Mode != want.Mode ||
			reused.Name != want.Name || reused.Err != want.Err ||
			reused.Trace != want.Trace || reused.Span != want.Span {
			t.Fatalf("DecodeInto mismatch: got %+v want %+v", reused, *want)
		}
		if !bytes.Equal(reused.Data, want.Data) {
			t.Fatalf("Data mismatch: got %x want %x", reused.Data, want.Data)
		}
	}
	if err := DecodeInto(&reused, []byte{1, 2}); err != ErrShortMessage {
		t.Fatalf("short decode: %v", err)
	}
}

func TestDecodeIntoNeverAliases(t *testing.T) {
	m := Msg{Type: Rreaddir, Tag: 1, Data: []byte("payload")}
	raw := m.Encode()
	var out Msg
	if err := DecodeInto(&out, raw); err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		raw[i] = 0xFF // recycle the receive buffer
	}
	if string(out.Data) != "payload" {
		t.Fatalf("Data aliased the recycled buffer: %q", out.Data)
	}
}

func TestPeekTag(t *testing.T) {
	m := Msg{Type: Tread, Tag: 0xBEEF}
	tag, ok := PeekTag(m.Encode())
	if !ok || tag != 0xBEEF {
		t.Fatalf("PeekTag = %d, %v", tag, ok)
	}
	if _, ok := PeekTag([]byte{1, 2, 3}); ok {
		t.Fatal("PeekTag accepted a short buffer")
	}
}

func TestResetKeepsDataBacking(t *testing.T) {
	m := Msg{Type: Rreaddir, Tag: 9, Name: "x", Data: make([]byte, 64, 128)}
	backing := &m.Data[:1][0]
	m.Reset()
	if m.Type != 0 || m.Tag != 0 || m.Name != "" || len(m.Data) != 0 {
		t.Fatalf("Reset left fields: %+v", m)
	}
	if cap(m.Data) != 128 || &m.Data[:1][0] != backing {
		t.Fatal("Reset dropped the Data backing array")
	}
}

func TestAppendFrameMatchesEncodeFrame(t *testing.T) {
	payload := []byte("hello")
	want := EncodeFrame(FrameData, 42, payload)
	got := AppendFrame(nil, FrameData, 42, payload)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendFrame %x != EncodeFrame %x", got, want)
	}
	hdr := make([]byte, FrameHdrLen)
	PutFrameHeader(hdr, FrameData, 42)
	if !bytes.Equal(hdr, want[:FrameHdrLen]) {
		t.Fatalf("PutFrameHeader %x != %x", hdr, want[:FrameHdrLen])
	}
}

// TestEncodeDecodeAllocFree is the committed regression gate for the ninep
// half of the zero-alloc hot path: a steady-state encode/decode round trip
// of a header-only message (the shape of every Tread/Rread on the wire)
// must not touch the heap, and a payload-carrying response must amortize
// to zero once its Data backing has grown.
func TestEncodeDecodeAllocFree(t *testing.T) {
	req := Msg{Type: Tread, Tag: 5, Fid: 1, Off: 1 << 20, Count: 256 << 10, Addr: 4096}
	var enc []byte
	var dec Msg
	allocs := testing.AllocsPerRun(1000, func() {
		enc = req.AppendTo(enc[:0])
		if err := DecodeInto(&dec, enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("header-only round trip: %v allocs/op, want 0", allocs)
	}

	resp := Msg{Type: Rreaddir, Tag: 6, Data: bytes.Repeat([]byte{7}, 1024)}
	enc = resp.AppendTo(enc[:0]) // warm the scratch and dec.Data
	if err := DecodeInto(&dec, enc); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		enc = resp.AppendTo(enc[:0])
		if err := DecodeInto(&dec, enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("payload round trip: %v allocs/op, want 0 after warmup", allocs)
	}

	frame := EncodeFrame(FrameData, 9, []byte("data"))
	var fb []byte
	allocs = testing.AllocsPerRun(1000, func() {
		fb = AppendFrame(fb[:0], FrameData, 9, frame[FrameHdrLen:])
	})
	if allocs != 0 {
		t.Fatalf("frame append: %v allocs/op, want 0", allocs)
	}
}
