package core

import (
	"encoding/json"
	"os"
	"testing"

	"solros/internal/faults"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// TestEndToEndTracingThroughMachine runs a traced delegated read through a
// full machine and pins the tentpole's acceptance property: the request is
// one causal tree spanning stub and proxy procs, and the critical-path
// stage durations sum exactly to its end-to-end latency.
func TestEndToEndTracingThroughMachine(t *testing.T) {
	sink := telemetry.New(telemetry.Options{})
	m := NewMachine(Config{Tracing: true, Telemetry: sink})
	const n = 256 << 10
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/traced", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(n)
		if _, err := c.Write(p, fd, 0, buf, n); err != nil {
			t.Error(err)
			return
		}
		if err := c.Sync(p); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Read(p, fd, 0, buf, n); err != nil {
			t.Error(err)
		}
	})
	traces := sink.Traces()
	if len(traces) == 0 {
		t.Fatal("traced machine retained no traces")
	}
	var widest *telemetry.PathReport
	for _, tr := range traces {
		if rp := sink.CriticalPath(tr); rp != nil && (widest == nil || rp.Total > widest.Total) {
			widest = rp
		}
	}
	if widest == nil {
		t.Fatal("no critical path computable")
	}
	var sum sim.Time
	crossProc := false
	for _, sd := range widest.Stages {
		sum += sd.Dur
	}
	for i := range widest.Spans {
		if widest.Spans[i].Proc != widest.Root.Proc {
			crossProc = true
		}
	}
	if sum != widest.Total {
		t.Errorf("stages sum to %v, end-to-end is %v", sum, widest.Total)
	}
	if !crossProc {
		t.Error("trace never crossed procs: proxy-side spans did not join the tree")
	}
}

// TestNVMeFaultDumpsFlightRecorder pins the acceptance criterion that an
// injected NVMe media error produces a flight-recorder blackbox naming the
// faulted trace.
func TestNVMeFaultDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	sink := telemetry.New(telemetry.Options{})
	m := NewMachine(Config{
		Tracing:        true,
		FlightRecorder: dir,
		Telemetry:      sink,
		Faults:         &faults.Plan{Seed: 1}, // arms degraded-mode retries
	})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/f", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(64 << 10)
		if _, err := c.Write(p, fd, 0, buf, 64<<10); err != nil {
			t.Error(err)
			return
		}
		m.SSD.InjectErrors(1)
		if _, err := c.Read(p, fd, 0, buf, 64<<10); err != nil {
			t.Errorf("degraded mode surfaced the injected error: %v", err)
		}
	})
	path := sink.LastFlightDump()
	if path == "" {
		t.Fatal("injected NVMe fault wrote no flight-recorder dump")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Reason       string           `json:"reason"`
		FaultedTrace string           `json:"faulted_trace"`
		Spans        []map[string]any `json:"spans"`
	}
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if dump.Reason != "nvme-media-error" {
		t.Errorf("reason = %q, want nvme-media-error", dump.Reason)
	}
	if dump.FaultedTrace == "" {
		t.Error("dump does not name the faulted trace")
	}
	if len(dump.Spans) == 0 {
		t.Error("dump carries no spans")
	}
}
