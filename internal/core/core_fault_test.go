package core

import (
	"testing"

	"solros/internal/faults"
	"solros/internal/fs"
	"solros/internal/ninep"
	"solros/internal/sim"
)

// TestDegradedModeRidesOutMediaErrors is the counterpart of
// TestMediaErrorPropagatesToApplication: with a fault plan installed the
// proxy retries transient media errors (and falls back to the buffered
// path), so the application never sees them.
func TestDegradedModeRidesOutMediaErrors(t *testing.T) {
	m := NewMachine(Config{Phis: 1, Faults: &faults.Plan{Seed: 1}})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/f", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(64 << 10)
		if _, err := c.Write(p, fd, 0, buf, 64<<10); err != nil {
			t.Error(err)
			return
		}
		m.SSD.InjectErrors(2)
		if _, err := c.Read(p, fd, 0, buf, 64<<10); err != nil {
			t.Errorf("degraded mode surfaced a transient media error: %v", err)
		}
		retries, _, _ := m.FSProxy.RecoveryStats()
		if retries == 0 {
			t.Error("no proxy retries recorded for the injected errors")
		}
		if err := c.Sync(p); err != nil {
			t.Error(err)
		}
	})
	if rep := fs.Check(m.SSD.Image()); !rep.OK() {
		t.Fatalf("fsck after degraded-mode run: %v", rep.Problems)
	}
}

// TestChannelCrashRecovery crashes phi0's channel mid-workload per the
// fault plan and verifies that its I/O completes via reconnect, that the
// sibling co-processor never notices, and that the proxy reattached the
// channel exactly once per crash.
func TestChannelCrashRecovery(t *testing.T) {
	plan := &faults.Plan{
		Seed:          3,
		CrashTimes:    []sim.Time{300 * sim.Microsecond, 900 * sim.Microsecond},
		CrashDowntime: 100 * sim.Microsecond,
	}
	m := NewMachine(Config{Phis: 2, Faults: plan})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		Parallel(p, 2, "worker", func(i int, wp *sim.Proc) {
			c := m.Phis[i].FS
			fd, err := c.Open(wp, fileName(i), ninep.OCreate)
			if err != nil {
				t.Errorf("phi%d open: %v", i, err)
				return
			}
			b := c.AllocBuffer(128 << 10)
			for k := 0; k < 12; k++ {
				off := int64(k) * (128 << 10)
				if _, err := c.Write(wp, fd, off, b, 128<<10); err != nil {
					t.Errorf("phi%d write %d: %v", i, k, err)
					return
				}
				if _, err := c.Read(wp, fd, off, b, 128<<10); err != nil {
					t.Errorf("phi%d read %d: %v", i, k, err)
					return
				}
			}
			if err := c.Close(wp, fd); err != nil {
				t.Errorf("phi%d close: %v", i, err)
			}
		})
		_, _, reattaches := m.FSProxy.RecoveryStats()
		if reattaches != 2 {
			t.Errorf("reattaches = %d, want 2 (one per crash)", reattaches)
		}
	})
	if rep := fs.Check(m.SSD.Image()); !rep.OK() {
		t.Fatalf("fsck after crash/recovery run: %v", rep.Problems)
	}
}

// TestFaultRunsAreDeterministic extends the machine determinism guarantee
// to faulty runs: two identical fault plans over the same workload must
// end at the same virtual time.
func TestFaultRunsAreDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := NewMachine(Config{
			Phis: 2,
			Faults: &faults.Plan{
				Seed:            5,
				NVMeReadErrRate: 0.02, NVMeWriteErrRate: 0.02, NVMeSlowRate: 0.1,
				LinkSlowRate: 0.05, RingStallRate: 0.1, RingDropRate: 0.02,
			},
			RPCDeadline: 2 * sim.Millisecond,
			RPCRetries:  6,
		})
		var end sim.Time
		m.MustRun(func(p *sim.Proc, m *Machine) {
			Parallel(p, 4, "worker", func(i int, wp *sim.Proc) {
				phi := m.Phis[i%2]
				fd, err := phi.FS.Open(wp, fileName(i%2), ninep.OCreate)
				if err != nil {
					t.Error(err)
					return
				}
				b := phi.FS.AllocBuffer(256 << 10)
				for k := 0; k < 4; k++ {
					phi.FS.Write(wp, fd, int64(k)*(256<<10), b, 256<<10)
					phi.FS.Read(wp, fd, int64(k)*(256<<10), b, 256<<10)
				}
			})
			end = p.Now()
		})
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical fault runs diverged: %v vs %v", a, b)
	}
}
