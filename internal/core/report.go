package core

import (
	"fmt"
	"strings"
)

// Report renders a human-readable status digest of the machine: data-path
// decisions, cache effectiveness, device counters, and per-co-processor
// ring traffic. Examples print it after a run; operators of a real Solros
// deployment would scrape the same counters.
func (m *Machine) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "solros machine: %d co-processor(s), disk %d MB, cache %d MB\n",
		len(m.Phis), m.cfg.DiskBytes>>20, m.cfg.CacheBytes>>20)

	if m.FSProxy != nil {
		p2p, buffered, hits := m.FSProxy.PathStats()
		fmt.Fprintf(&b, "fs proxy: p2p=%d buffered=%d cache-hits=%d prefetches=%d\n",
			p2p, buffered, hits, m.FSProxy.Prefetches())
		ch, cm, ce := m.FSProxy.Cache.Stats()
		fmt.Fprintf(&b, "buffer cache: %d/%d pages, hits=%d misses=%d evictions=%d\n",
			m.FSProxy.Cache.Len(), m.FSProxy.Cache.Capacity(), ch, cm, ce)
	}
	st := m.SSD.Stats()
	fmt.Fprintf(&b, "nvme: %d commands, %d doorbells, %d interrupts, read %d MB, written %d MB",
		st.Commands, st.Doorbells, st.Interrupts, st.ReadBytes>>20, st.WriteBytes>>20)
	if st.MediaErrors > 0 {
		fmt.Fprintf(&b, ", MEDIA ERRORS: %d", st.MediaErrors)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "pcie: %d transactions\n", m.Fabric.Transactions())

	for i, phi := range m.Phis {
		sent, recv, bytes := phi.Conn.RingStats()
		fmt.Fprintf(&b, "phi%d rpc rings: %d sent / %d received (%d KB)\n",
			i, sent, recv, bytes>>10)
	}
	if m.TCPProxy != nil {
		fmt.Fprintf(&b, "tcp proxy active conns: %v\n", m.TCPProxy.ActiveConns())
	}
	return b.String()
}
