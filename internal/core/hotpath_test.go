package core

import (
	"bytes"
	"runtime"
	"testing"

	"solros/internal/ninep"
	"solros/internal/sim"
)

// TestDelegatedReadAllocBudget is the committed end-to-end regression gate
// for ISSUE 7: with Config.HotPath armed, a steady-state delegated read
// RPC — stub encode, request ring, proxy decode/handle (cache hit),
// reply ring, stub dispatch and wait — must cost at most 2 heap
// allocations, measured across the whole process with runtime.MemStats
// inside one sim run (every proc of the machine runs interleaved in this
// window, so the count covers the full round trip, not just the caller).
func TestDelegatedReadAllocBudget(t *testing.T) {
	m := NewMachine(Config{Phis: 1, HotPath: true})
	var perOp float64
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/hot", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(8192)
		payload := bytes.Repeat([]byte{0xA5}, 8192)
		copy(buf.Data, payload)
		if _, err := c.Write(p, fd, 0, buf, 8192); err != nil {
			t.Error(err)
			return
		}
		rbuf := c.AllocBuffer(8192)
		// Warm every lazy path: buffered first read fills the cache (all
		// later reads take PathCacheHit), pools fill, maps settle.
		for i := 0; i < 64; i++ {
			if _, err := c.Read(p, fd, 0, rbuf, 8192); err != nil {
				t.Error(err)
				return
			}
		}
		const iters = 500
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			c.Read(p, fd, 0, rbuf, 8192)
		}
		runtime.ReadMemStats(&after)
		perOp = float64(after.Mallocs-before.Mallocs) / iters
		if !bytes.Equal(rbuf.Data[:8192], payload) {
			t.Error("payload corrupted on the hot path")
		}
		c.Close(p, fd)
	})
	if perOp > 2 {
		t.Fatalf("delegated read round-trip: %.3f allocs/RPC, budget is 2", perOp)
	}
	t.Logf("delegated read round-trip: %.3f allocs/RPC", perOp)
}

// TestHotPathEndToEnd checks data integrity and timing neutrality: the
// zero-alloc machinery is heap-only, so the same workload must produce
// byte-identical results and the identical virtual-time profile with
// HotPath on and off.
func TestHotPathEndToEnd(t *testing.T) {
	run := func(hot bool) sim.Time {
		m := NewMachine(Config{Phis: 1, HotPath: hot})
		m.MustRun(func(p *sim.Proc, m *Machine) {
			c := m.Phis[0].FS
			fd, err := c.Open(p, "/f", ninep.OCreate)
			if err != nil {
				t.Error(err)
				return
			}
			buf := c.AllocBuffer(1 << 20)
			for i := range buf.Data {
				buf.Data[i] = byte(i * 7)
			}
			if n, err := c.Write(p, fd, 0, buf, 1<<20); err != nil || n != 1<<20 {
				t.Errorf("write n=%d err=%v", n, err)
				return
			}
			rbuf := c.AllocBuffer(1 << 20)
			if n, err := c.Read(p, fd, 0, rbuf, 1<<20); err != nil || n != 1<<20 {
				t.Errorf("read n=%d err=%v", n, err)
				return
			}
			if !bytes.Equal(rbuf.Data, buf.Data) {
				t.Error("payload corrupted")
			}
			c.Close(p, fd)
		})
		return m.Engine.Now()
	}
	off, on := run(false), run(true)
	if off != on {
		t.Fatalf("HotPath moved virtual time: off=%v on=%v", off, on)
	}
}

// TestCoalesceDoorbellEndToEnd checks the coalesced-reply path end to end
// under concurrency: many readers over a batch-draining proxy with
// CoalesceDoorbell set still get correct data.
func TestCoalesceDoorbellEndToEnd(t *testing.T) {
	m := NewMachine(Config{Phis: 1, BatchRecv: true, CoalesceDoorbell: true, HotPath: true})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/shared", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(64 << 10)
		for i := range buf.Data {
			buf.Data[i] = byte(i)
		}
		if _, err := c.Write(p, fd, 0, buf, 64<<10); err != nil {
			t.Error(err)
			return
		}
		Parallel(p, 8, "reader", func(i int, wp *sim.Proc) {
			rbuf := c.AllocBuffer(8 << 10)
			for k := 0; k < 16; k++ {
				off := int64((i*16 + k) % 8 * (8 << 10))
				n, err := c.Read(wp, fd, off, rbuf, 8<<10)
				if err != nil || n != 8<<10 {
					t.Errorf("reader %d: n=%d err=%v", i, n, err)
					return
				}
				for j := 0; j < 8<<10; j++ {
					if rbuf.Data[j] != byte(off+int64(j)) {
						t.Errorf("reader %d: byte %d corrupt", i, j)
						return
					}
				}
			}
		})
		c.Close(p, fd)
	})
}
