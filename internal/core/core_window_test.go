package core

import (
	"path/filepath"
	"strings"
	"testing"

	"solros/internal/faults"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// windowWorkload writes an 8MB buffered file and reads it back in 256KB
// chunks through the co-processor's delegated path — enough requests to
// fill several 100µs windows.
func windowWorkload(t *testing.T) func(p *sim.Proc, m *Machine) {
	return func(p *sim.Proc, m *Machine) {
		const fileBytes, chunk = 8 << 20, 256 << 10
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/win", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(chunk)
		for off := int64(0); off < fileBytes; off += chunk {
			if _, err := c.Write(p, fd, off, buf, chunk); err != nil {
				t.Error(err)
				return
			}
		}
		if err := c.Sync(p); err != nil {
			t.Error(err)
			return
		}
		for off := int64(0); off < fileBytes; off += chunk {
			if _, err := c.Read(p, fd, off, buf, chunk); err != nil {
				t.Error(err)
				return
			}
		}
	}
}

// Two identical runs with windows and tracing armed must produce
// byte-identical per-window OpenMetrics dumps: the window feed is
// passive, so it inherits the sim's determinism wholesale.
func TestWindowDumpsDeterministic(t *testing.T) {
	run := func() string {
		sink := telemetry.New(telemetry.Options{})
		m := NewMachine(Config{
			Telemetry: sink,
			Tracing:   true,
			Windows:   100 * sim.Microsecond,
			SchedSeed: 7,
		})
		m.MustRun(windowWorkload(t))
		var b strings.Builder
		if err := sink.WriteWindows(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := run(), run()
	if a == "" || !strings.Contains(a, "solros_window_stage_busy_seconds") {
		t.Fatalf("run produced no windowed stage data:\n%.2000s", a)
	}
	if a != b {
		t.Error("identical runs produced different window dumps")
	}
}

// A single serialized client cannot keep any stage busy for more than a
// window's span, and the rollup's utilization must respect that bound.
// Queue accounting must agree with Little's law: the proxy's in-flight
// wait is positive and no larger than the whole per-request latency.
func TestWindowRollupSelfConsistent(t *testing.T) {
	const every = 100 * sim.Microsecond
	sink := telemetry.New(telemetry.Options{})
	m := NewMachine(Config{
		Telemetry: sink,
		Tracing:   true,
		Windows:   every,
	})
	m.MustRun(windowWorkload(t))
	sink.SealWindows(m.Engine.Now())

	wins := sink.CompletedWindows()
	if len(wins) < 3 {
		t.Fatalf("run completed %d windows, want >= 3", len(wins))
	}
	var reqP99 sim.Time
	sawNVMe := false
	for _, wi := range wins {
		r := sink.WindowRollup(wi)
		for _, st := range r.Stages {
			if st.Busy > every {
				t.Errorf("window %d stage %s busy %v exceeds window span %v",
					wi, st.Stage, st.Busy, every)
			}
			if st.Util < 0 || st.Util > 1.0001 {
				t.Errorf("window %d stage %s util %.3f out of range", wi, st.Stage, st.Util)
			}
			if st.Stage == "request" && st.P99 > reqP99 {
				reqP99 = st.P99
			}
			if st.Stage == "nvme" && st.Ops > 0 {
				sawNVMe = true
			}
		}
		for _, q := range r.Queues {
			if q.MeanOcc < 0 {
				t.Errorf("window %d queue %s negative occupancy %v", wi, q.Queue, q.MeanOcc)
			}
			if q.Queue == "controlplane.fsproxy.inflight" && q.Arrivals > 0 {
				if q.Wait <= 0 {
					t.Errorf("window %d inflight wait %v, want > 0", wi, q.Wait)
				}
				// One serialized client: occupancy never exceeds 1, so the
				// window's occupancy integral is at most its span and
				// Little's W = area/arrivals is bounded by it too.
				if q.Wait > every {
					t.Errorf("window %d inflight wait %v exceeds window span %v",
						wi, q.Wait, every)
				}
			}
		}
	}
	if !sawNVMe {
		t.Error("no window recorded nvme stage ops")
	}
	if reqP99 == 0 {
		t.Error("no window recorded request-stage latency")
	}
}

// An injected NVMe latency-spike storm pushing the read tail past a tight
// objective must leave a flight-recorder blackbox naming the objective —
// the watchdog's whole point: a regression leaves a replayable artifact.
func TestSLOBreachThroughMachine(t *testing.T) {
	dir := t.TempDir()
	sink := telemetry.New(telemetry.Options{})
	m := NewMachine(Config{
		Telemetry:      sink,
		Tracing:        true,
		Windows:        100 * sim.Microsecond,
		FlightRecorder: dir,
		Faults: &faults.Plan{
			Seed:         42,
			NVMeSlowRate: 1, // every submission eats a 150µs spike
		},
		SLO: []telemetry.Objective{{
			Metric:     "dataplane.rpc.Tread",
			Percentile: 99,
			Target:     50 * sim.Microsecond,
			Budget:     0.10,
		}},
	})
	// The spike storm itself dumps the recorder on every injected fault;
	// widen the dump budget so the SLO breach isn't crowded out of it (and
	// shrink the span ring so thousands of dumps stay cheap to serialize).
	sink.ArmFlightRecorder(dir, 8, 4096)
	m.MustRun(windowWorkload(t))
	sink.SealWindows(m.Engine.Now())

	vs := sink.SLOViolations()
	if len(vs) == 0 {
		t.Fatal("slowed NVMe never breached the read SLO")
	}
	if vs[0].Objective != "dataplane.rpc.Tread.p99" {
		t.Errorf("violation names %q", vs[0].Objective)
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*-slo-*tread*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) == 0 {
		t.Fatal("breach left no flight-recorder blackbox naming the objective")
	}
}

// With none of the new knobs set, the machine must not grow a windowed
// rollup surface: the figures' byte-identical guarantee rests on this.
func TestWindowsOffByDefault(t *testing.T) {
	sink := telemetry.New(telemetry.Options{})
	m := NewMachine(Config{Telemetry: sink})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/off", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			t.Fatal(err)
		}
		buf := c.AllocBuffer(64 << 10)
		if _, err := c.Write(p, fd, 0, buf, 64<<10); err != nil {
			t.Fatal(err)
		}
	})
	if sink.WindowsEnabled() || len(sink.CompletedWindows()) != 0 {
		t.Error("windows armed without Config.Windows")
	}
	if len(sink.SLOViolations()) != 0 || len(sink.Objectives()) != 0 {
		t.Error("SLO watchdog armed without Config.SLO")
	}
}
