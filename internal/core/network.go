package core

import (
	"solros/internal/controlplane"
	"solros/internal/cpu"
	"solros/internal/dataplane"
	"solros/internal/netstack"
	"solros/internal/sim"
	"solros/internal/transport"
)

// Networking assembly: the host NIC and stack, an external client machine,
// the control-plane TCP proxy, and per-co-processor network stubs.

// EnableNetwork must be called before Run. It attaches the network service
// to every co-processor and creates an external client machine named
// "client" on the same 100 GbE network (§6's client box).
func (m *Machine) EnableNetwork() {
	if m.Net != nil {
		return
	}
	m.Net = netstack.NewNetwork(m.Fabric)
	m.HostStack = m.Net.NewStack("solros-host", cpu.Host, nil)
	m.ClientStack = m.Net.NewStack("client", cpu.Host, nil)
	m.TCPProxy = controlplane.NewTCPProxy(m.Fabric, m.HostStack)
	m.TCPProxy.Shards = m.cfg.ProxyShards
	for _, phi := range m.Phis {
		rpcConn, reqPort, respPort := dataplane.NewConn(m.Fabric, phi.Dev, m.cfg.RingOptions)
		stubOut, stubIn, proxyOut, proxyIn := dataplane.NewNetRings(m.Fabric, phi.Dev, ringOptionsForNet(m.cfg.RingOptions))
		phi.Net = dataplane.NewNetClient(rpcConn, stubOut, stubIn)
		phi.netConn = rpcConn
		m.TCPProxy.AttachNet(phi.Dev, reqPort, respPort, proxyOut, proxyIn)
	}
}

// bootNetwork starts the network service procs; called from boot when
// networking is enabled.
func (m *Machine) bootNetwork(p *sim.Proc) {
	if m.Net == nil {
		return
	}
	for _, phi := range m.Phis {
		phi.Net.Start(p)
	}
	m.TCPProxy.Start(p)
}

// shutdownNetwork tears the network service down so its procs drain.
func (m *Machine) shutdownNetwork(p *sim.Proc) {
	if m.Net == nil {
		return
	}
	m.TCPProxy.Stop(p)
	for _, phi := range m.Phis {
		phi.Net.CloseRings(p)
		phi.netConn.Close(p)
	}
}

// ringOptionsForNet returns the larger inbound/outbound ring sizing used
// by the network service.
func ringOptionsForNet(base transport.Options) transport.Options {
	if base.CapBytes < 8<<20 {
		base.CapBytes = 8 << 20
	}
	return base
}
