package core

import (
	"bytes"
	"testing"

	"solros/internal/ninep"
	"solros/internal/sim"
)

// Correctness of the pipelined delegated-I/O path (ISSUE 2): with
// windowed chunk RPCs, batched ring dequeue, and overlapped proxy fills
// all on, reads and writes must still move exactly the right bytes.

// pipelineConfig turns every pipelining mechanism on with a small chunk
// size so even modest transfers exercise multi-chunk windows.
func pipelineConfig() Config {
	return Config{
		Pipeline:           true,
		BatchRecv:          true,
		Overlap:            true,
		PipelineWindow:     4,
		PipelineChunkBytes: 64 << 10,
		ProxyWorkers:       8,
	}
}

// pattern fills n deterministic bytes from a tiny LCG, seeded so distinct
// regions are distinguishable.
func pattern(seed uint32, n int64) []byte {
	out := make([]byte, n)
	x := seed
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

func TestPipelinedWriteReadByteForByte(t *testing.T) {
	// Odd length: several chunks plus an unaligned tail.
	const n = 3<<20 + 1234
	want := pattern(7, n)
	m := NewMachine(pipelineConfig())
	m.MustRun(func(p *sim.Proc, m *Machine) {
		phi := m.Phis[0]
		fd, err := phi.FS.Open(p, "/pipe", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			t.Error(err)
			return
		}
		wbuf := phi.FS.AllocBuffer(n)
		copy(wbuf.Data, want)
		if wn, err := phi.FS.Write(p, fd, 0, wbuf, n); err != nil || wn != n {
			t.Errorf("pipelined write: n=%d err=%v, want %d nil", wn, err, int64(n))
			return
		}
		// Read the whole file back through the pipelined path...
		rbuf := phi.FS.AllocBuffer(n)
		if rn, err := phi.FS.Read(p, fd, 0, rbuf, n); err != nil || rn != n {
			t.Errorf("pipelined read: n=%d err=%v, want %d nil", rn, err, int64(n))
			return
		}
		if !bytes.Equal(rbuf.Data[:n], want) {
			t.Error("pipelined read bytes differ from written pattern")
		}
		// ...and an unaligned interior slice.
		const off, sn = 12345, 1<<20 + 7
		sbuf := phi.FS.AllocBuffer(sn)
		if rn, err := phi.FS.Read(p, fd, off, sbuf, sn); err != nil || rn != sn {
			t.Errorf("interior read: n=%d err=%v, want %d nil", rn, err, int64(sn))
			return
		}
		if !bytes.Equal(sbuf.Data[:sn], want[off:off+sn]) {
			t.Error("interior pipelined read bytes differ")
		}
		// The sync path must agree byte for byte with the pipelined one.
		phi.FS.Pipeline = false
		cbuf := phi.FS.AllocBuffer(n)
		if rn, err := phi.FS.Read(p, fd, 0, cbuf, n); err != nil || rn != n {
			t.Errorf("sync reference read: n=%d err=%v", rn, err)
			return
		}
		phi.FS.Pipeline = true
		if !bytes.Equal(cbuf.Data[:n], rbuf.Data[:n]) {
			t.Error("sync and pipelined reads disagree")
		}
		if err := phi.FS.Close(p, fd); err != nil {
			t.Error(err)
		}
	})
}

func TestPipelinedReadClampsAtEOF(t *testing.T) {
	const size = 1 << 20 // file size
	const tail = 128 << 10
	want := pattern(11, size)
	m := NewMachine(pipelineConfig())
	m.MustRun(func(p *sim.Proc, m *Machine) {
		phi := m.Phis[0]
		fd, err := phi.FS.Open(p, "/eof", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			t.Error(err)
			return
		}
		wbuf := phi.FS.AllocBuffer(size)
		copy(wbuf.Data, want)
		if _, err := phi.FS.Write(p, fd, 0, wbuf, size); err != nil {
			t.Error(err)
			return
		}
		// Ask for a full window past the end: only the tail comes back.
		const ask = 1 << 20
		rbuf := phi.FS.AllocBuffer(ask)
		rn, err := phi.FS.Read(p, fd, size-tail, rbuf, ask)
		if err != nil {
			t.Error(err)
			return
		}
		if rn != tail {
			t.Errorf("read past EOF returned %d bytes, want %d", rn, int64(tail))
			return
		}
		if !bytes.Equal(rbuf.Data[:tail], want[size-tail:]) {
			t.Error("EOF-clamped read bytes differ")
		}
	})
}

// TestPipelinedSequentialSweepWithReadahead walks the file front to back in
// window-sized steps, the access pattern that triggers Treadahead hints, and
// checks every step byte for byte (readahead-claimed pages must be waited
// on, never served empty).
func TestPipelinedSequentialSweepWithReadahead(t *testing.T) {
	const size = 4 << 20
	const step = 256 << 10
	want := pattern(23, size)
	m := NewMachine(pipelineConfig())
	m.MustRun(func(p *sim.Proc, m *Machine) {
		phi := m.Phis[0]
		fd, err := phi.FS.Open(p, "/sweep", ninep.OCreate|ninep.OBuffer)
		if err != nil {
			t.Error(err)
			return
		}
		wbuf := phi.FS.AllocBuffer(size)
		copy(wbuf.Data, want)
		if _, err := phi.FS.Write(p, fd, 0, wbuf, size); err != nil {
			t.Error(err)
			return
		}
		rbuf := phi.FS.AllocBuffer(step)
		for off := int64(0); off < size; off += step {
			rn, err := phi.FS.Read(p, fd, off, rbuf, step)
			if err != nil || rn != step {
				t.Errorf("sweep read at %d: n=%d err=%v", off, rn, err)
				return
			}
			if !bytes.Equal(rbuf.Data[:step], want[off:off+step]) {
				t.Errorf("sweep read at %d differs", off)
				return
			}
		}
		if err := phi.FS.Close(p, fd); err != nil {
			t.Error(err)
		}
	})
}

// TestPipelineOptionsDeterministic reruns an identical pipelined workload
// and demands the same virtual end time: windowing, batching, and overlap
// must not introduce scheduling nondeterminism.
func TestPipelineOptionsDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := NewMachine(pipelineConfig())
		m.MustRun(func(p *sim.Proc, m *Machine) {
			phi := m.Phis[0]
			fd, err := phi.FS.Open(p, "/det", ninep.OCreate|ninep.OBuffer)
			if err != nil {
				t.Error(err)
				return
			}
			buf := phi.FS.AllocBuffer(2 << 20)
			if _, err := phi.FS.Write(p, fd, 0, buf, 2<<20); err != nil {
				t.Error(err)
				return
			}
			Parallel(p, 4, "reader", func(i int, wp *sim.Proc) {
				rbuf := phi.FS.AllocBuffer(512 << 10)
				for off := int64(0); off < 2<<20; off += 512 << 10 {
					if _, err := phi.FS.Read(wp, fd, off, rbuf, 512<<10); err != nil {
						t.Error(err)
						return
					}
				}
			})
		})
		return m.Engine.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical pipelined runs ended at %v and %v", a, b)
	}
}
