package core

import (
	"bytes"
	"strings"
	"testing"

	"solros/internal/fs"
	"solros/internal/ninep"
	"solros/internal/sim"
)

func TestEndToEndCreateWriteRead(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		phi := m.Phis[0]
		fd, err := phi.FS.Open(p, "/hello", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		buf := phi.FS.AllocBuffer(8192)
		payload := bytes.Repeat([]byte("solros"), 1000)
		copy(buf.Data, payload)
		n, err := phi.FS.Write(p, fd, 0, buf, int64(len(payload)))
		if err != nil || n != int64(len(payload)) {
			t.Errorf("write n=%d err=%v", n, err)
			return
		}
		// Read into a second buffer and compare.
		rbuf := phi.FS.AllocBuffer(8192)
		n, err = phi.FS.Read(p, fd, 0, rbuf, int64(len(payload)))
		if err != nil || n != int64(len(payload)) {
			t.Errorf("read n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(rbuf.Data[:n], payload) {
			t.Error("payload corrupted through the full Solros stack")
		}
		if err := phi.FS.Close(p, fd); err != nil {
			t.Error(err)
		}
	})
}

func TestEndToEndMetadataOps(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		if err := c.Mkdir(p, "/data"); err != nil {
			t.Error(err)
			return
		}
		fd, err := c.Open(p, "/data/f1", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(4096)
		c.Write(p, fd, 0, buf, 100)
		size, mode, err := c.Stat(p, "/data/f1")
		if err != nil || size != 100 || mode != fs.ModeFile {
			t.Errorf("stat size=%d mode=%d err=%v", size, mode, err)
		}
		names, err := c.ReadDir(p, "/data")
		if err != nil || len(names) != 1 || names[0] != "f1" {
			t.Errorf("readdir = %v err=%v", names, err)
		}
		if err := c.Truncate(p, fd, 10); err != nil {
			t.Error(err)
		}
		size, _, _ = c.Stat(p, "/data/f1")
		if size != 10 {
			t.Errorf("size after truncate = %d", size)
		}
		if err := c.Unlink(p, "/data/f1"); err != nil {
			t.Error(err)
		}
		if _, _, err := c.Stat(p, "/data/f1"); err == nil {
			t.Error("stat after unlink succeeded")
		}
		if err := c.Sync(p); err != nil {
			t.Error(err)
		}
	})
}

func TestErrorsPropagateOverRPC(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		if _, err := c.Open(p, "/missing", 0); err == nil {
			t.Error("open of missing file succeeded over RPC")
		}
		if err := c.Unlink(p, "/also-missing"); err == nil {
			t.Error("unlink of missing file succeeded over RPC")
		}
	})
}

func TestP2PUsedOnSameSocketBufferedAcrossNUMA(t *testing.T) {
	// Phis 0,1 on socket 0 (same as SSD) use P2P; phis on socket 1 fall
	// back to buffered mode (§4.3.2, Figure 1a).
	m := NewMachine(Config{Phis: 4})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		seed, err := m.Phis[0].FS.Open(p, "/shared", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		buf := m.Phis[0].FS.AllocBuffer(1 << 20)
		m.Phis[0].FS.Write(p, seed, 0, buf, 1<<20)

		p2p0, buf0, _ := m.FSProxy.PathStats()
		// Same-socket read.
		fd, _ := m.Phis[1].FS.Open(p, "/shared", 0)
		rb := m.Phis[1].FS.AllocBuffer(1 << 20)
		if _, err := m.Phis[1].FS.Read(p, fd, 0, rb, 1<<20); err != nil {
			t.Error(err)
			return
		}
		p2p1, buf1, _ := m.FSProxy.PathStats()
		if p2p1 <= p2p0 {
			t.Errorf("same-socket read did not use P2P (p2p %d->%d, buffered %d->%d)", p2p0, p2p1, buf0, buf1)
		}
		// Cross-socket read.
		fd3, _ := m.Phis[3].FS.Open(p, "/shared", 0)
		rb3 := m.Phis[3].FS.AllocBuffer(1 << 20)
		if _, err := m.Phis[3].FS.Read(p, fd3, 0, rb3, 1<<20); err != nil {
			t.Error(err)
			return
		}
		_, buf2, _ := m.FSProxy.PathStats()
		if buf2 <= buf1 {
			t.Errorf("cross-NUMA read did not use buffered path (buffered %d->%d)", buf1, buf2)
		}
	})
}

func TestOBufferForcesBufferedPath(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, _ := c.Open(p, "/f", ninep.OCreate|ninep.OBuffer)
		buf := c.AllocBuffer(64 << 10)
		c.Write(p, fd, 0, buf, 64<<10)
		c.Read(p, fd, 0, buf, 64<<10)
		p2p, buffered, hits := m.FSProxy.PathStats()
		if p2p != 0 {
			t.Errorf("O_BUFFER file used P2P %d times (buffered=%d hits=%d)", p2p, buffered, hits)
		}
	})
}

func TestSharedCacheServesSecondPhi(t *testing.T) {
	// A file read by one co-processor in buffered mode should hit the
	// shared cache when another co-processor reads it.
	m := NewMachine(Config{Phis: 2})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c0, c1 := m.Phis[0].FS, m.Phis[1].FS
		fd, _ := c0.Open(p, "/shared", ninep.OCreate|ninep.OBuffer)
		buf := c0.AllocBuffer(256 << 10)
		c0.Write(p, fd, 0, buf, 256<<10)
		c0.Read(p, fd, 0, buf, 256<<10) // populates cache
		_, _, hits0 := m.FSProxy.PathStats()
		fd1, _ := c1.Open(p, "/shared", 0)
		rb := c1.AllocBuffer(256 << 10)
		if _, err := c1.Read(p, fd1, 0, rb, 256<<10); err != nil {
			t.Error(err)
			return
		}
		_, _, hits1 := m.FSProxy.PathStats()
		if hits1 <= hits0 {
			t.Errorf("second phi's read missed the shared cache (hits %d->%d)", hits0, hits1)
		}
	})
}

func TestConcurrentPhiWorkers(t *testing.T) {
	m := NewMachine(Config{Phis: 2, DiskBytes: 128 << 20, PhiMemBytes: 128 << 20})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		// Seed a file per phi.
		for i, phi := range m.Phis {
			fd, err := phi.FS.Open(p, fileName(i), ninep.OCreate)
			if err != nil {
				t.Error(err)
				return
			}
			b := phi.FS.AllocBuffer(4 << 20)
			phi.FS.Write(p, fd, 0, b, 4<<20)
			phi.FS.Close(p, fd)
		}
		// 8 workers per phi read random-ish offsets concurrently.
		for pi, phi := range m.Phis {
			pi, phi := pi, phi
			Parallel(p, 8, "reader", func(i int, wp *sim.Proc) {
				fd, err := phi.FS.Open(wp, fileName(pi), 0)
				if err != nil {
					t.Error(err)
					return
				}
				b := phi.FS.AllocBuffer(64 << 10)
				for k := 0; k < 10; k++ {
					off := int64((i*131 + k*4099) % 60 << 10)
					if _, err := phi.FS.Read(wp, fd, off, b, 64<<10); err != nil {
						t.Error(err)
						return
					}
				}
			})
		}
	})
}

func fileName(i int) string {
	return []string{"/a", "/b", "/c", "/d"}[i]
}

func TestCoalescingAblationSlower(t *testing.T) {
	// With coalescing off, a fragmented large read costs extra doorbell
	// rings and interrupts, so it must be slower.
	elapsed := func(coalesceOff bool) sim.Time {
		m := NewMachine(Config{Phis: 1, CoalesceOff: coalesceOff, DiskBytes: 128 << 20, PhiMemBytes: 128 << 20})
		var dt sim.Time
		m.MustRun(func(p *sim.Proc, m *Machine) {
			c := m.Phis[0].FS
			fd, _ := c.Open(p, "/big", ninep.OCreate)
			b := c.AllocBuffer(8 << 20)
			c.Write(p, fd, 0, b, 8<<20)
			start := p.Now()
			for i := 0; i < 4; i++ {
				c.Read(p, fd, int64(i)*(2<<20), b, 2<<20)
			}
			dt = p.Now() - start
		})
		return dt
	}
	fast := elapsed(false)
	slow := elapsed(true)
	if fast >= slow {
		t.Fatalf("coalesced reads (%v) should be faster than per-command interrupts (%v)", fast, slow)
	}
}

func TestAutoPrefetchKicksInForPopularFiles(t *testing.T) {
	// After two different co-processors read the same file, the proxy
	// prefetches it; a third reader's requests hit the cache.
	m := NewMachine(Config{Phis: 4, CacheBytes: 32 << 20})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		f, err := m.FS.Create(p, "/hot")
		if err != nil {
			t.Error(err)
			return
		}
		f.Truncate(p, 4<<20)
		read := func(i int) {
			fd, err := m.Phis[i].FS.Open(p, "/hot", 0)
			if err != nil {
				t.Error(err)
				return
			}
			b := m.Phis[i].FS.AllocBuffer(1 << 20)
			m.Phis[i].FS.Read(p, fd, 0, b, 1<<20)
		}
		read(0)
		read(1) // second distinct phi -> prefetch triggers
		// Give the background prefetch time to finish.
		p.Advance(50 * sim.Millisecond)
		if m.FSProxy.Prefetches() == 0 {
			t.Error("no prefetch happened for a file read by two co-processors")
		}
		_, _, hits0 := m.FSProxy.PathStats()
		read(2)
		_, _, hits1 := m.FSProxy.PathStats()
		if hits1 <= hits0 {
			t.Errorf("third reader missed the prefetched cache (hits %d->%d)", hits0, hits1)
		}
	})
}

func TestAutoPrefetchSkipsHugeFiles(t *testing.T) {
	// Files larger than half the cache must not be prefetched.
	m := NewMachine(Config{Phis: 2, CacheBytes: 4 << 20, DiskBytes: 96 << 20})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		f, _ := m.FS.Create(p, "/huge")
		f.Truncate(p, 16<<20)
		for i := 0; i < 2; i++ {
			fd, _ := m.Phis[i].FS.Open(p, "/huge", 0)
			b := m.Phis[i].FS.AllocBuffer(1 << 20)
			m.Phis[i].FS.Read(p, fd, 0, b, 1<<20)
		}
		p.Advance(50 * sim.Millisecond)
		if m.FSProxy.Prefetches() != 0 {
			t.Error("prefetched a file larger than half the cache")
		}
	})
}

func TestMediaErrorPropagatesToApplication(t *testing.T) {
	// An injected NVMe media error must surface as an RPC error at the
	// co-processor application, and the machine must keep working for
	// subsequent I/O.
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/f", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(64 << 10)
		if _, err := c.Write(p, fd, 0, buf, 64<<10); err != nil {
			t.Error(err)
			return
		}
		m.SSD.InjectErrors(1)
		if _, err := c.Read(p, fd, 0, buf, 64<<10); err == nil {
			t.Error("read during injected media error succeeded")
		}
		// The fault is gone; the stack must have recovered.
		if _, err := c.Read(p, fd, 0, buf, 64<<10); err != nil {
			t.Errorf("read after fault cleared: %v", err)
		}
		if m.SSD.Stats().MediaErrors != 1 {
			t.Errorf("media errors = %d, want 1", m.SSD.Stats().MediaErrors)
		}
		if err := c.Sync(p); err != nil {
			t.Error(err)
		}
	})
	// Metadata must still be consistent after the failed I/O.
	if rep := fs.Check(m.SSD.Image()); !rep.OK() {
		t.Fatalf("fsck after injected fault: %v", rep.Problems)
	}
}

func TestRenameOverRPC(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, _ := c.Open(p, "/before", ninep.OCreate)
		buf := c.AllocBuffer(4096)
		c.Write(p, fd, 0, buf, 64)
		if err := c.Rename(p, "/before", "/after"); err != nil {
			t.Error(err)
			return
		}
		if _, _, err := c.Stat(p, "/before"); err == nil {
			t.Error("old path still stats")
		}
		size, _, err := c.Stat(p, "/after")
		if err != nil || size != 64 {
			t.Errorf("new path: size=%d err=%v", size, err)
		}
		if err := c.Rename(p, "/nope", "/x"); err == nil {
			t.Error("rename of missing file succeeded over RPC")
		}
	})
}

func TestMachineRunsAreDeterministic(t *testing.T) {
	// Two identical machines running the same workload must end at the
	// same virtual time, byte for byte — the property that makes every
	// benchmark in this repository reproducible.
	run := func() sim.Time {
		m := NewMachine(Config{Phis: 2})
		var end sim.Time
		m.MustRun(func(p *sim.Proc, m *Machine) {
			Parallel(p, 6, "worker", func(i int, wp *sim.Proc) {
				phi := m.Phis[i%2]
				fd, err := phi.FS.Open(wp, fileName(i%2), ninep.OCreate)
				if err != nil {
					t.Error(err)
					return
				}
				b := phi.FS.AllocBuffer(256 << 10)
				for k := 0; k < 5; k++ {
					phi.FS.Write(wp, fd, int64(k)*(256<<10), b, 256<<10)
					phi.FS.Read(wp, fd, int64(k)*(256<<10), b, 256<<10)
				}
			})
			end = p.Now()
		})
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical runs diverged: %v vs %v", a, b)
	}
}

func TestLinkOverRPC(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, _ := c.Open(p, "/file", ninep.OCreate)
		buf := c.AllocBuffer(4096)
		c.Write(p, fd, 0, buf, 128)
		if err := c.Link(p, "/file", "/linked"); err != nil {
			t.Error(err)
			return
		}
		size, _, err := c.Stat(p, "/linked")
		if err != nil || size != 128 {
			t.Errorf("linked stat size=%d err=%v", size, err)
		}
		if err := c.Unlink(p, "/file"); err != nil {
			t.Error(err)
		}
		if _, _, err := c.Stat(p, "/linked"); err != nil {
			t.Error("link broken after original unlinked")
		}
	})
}

func TestReportContainsCounters(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, _ := c.Open(p, "/r", ninep.OCreate)
		b := c.AllocBuffer(4096)
		c.Write(p, fd, 0, b, 4096)
		rep := m.Report()
		for _, want := range []string{"fs proxy:", "buffer cache:", "nvme:", "pcie:", "phi0 rpc rings:"} {
			if !strings.Contains(rep, want) {
				t.Errorf("report missing %q:\n%s", want, rep)
			}
		}
	})
}

func TestDataSurvivesMachineReboot(t *testing.T) {
	// Write through the full stack, sync, "power off", boot a second
	// machine on the same disk image, and read the data back.
	payload := bytes.Repeat([]byte("durable"), 1000)
	m1 := NewMachine(Config{Phis: 1, DiskBytes: 32 << 20})
	m1.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		if err := c.Mkdir(p, "/persist"); err != nil {
			t.Error(err)
			return
		}
		fd, err := c.Open(p, "/persist/me", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		buf := c.AllocBuffer(8192)
		copy(buf.Data, payload)
		c.Write(p, fd, 0, buf, int64(len(payload)))
		if err := c.Sync(p); err != nil {
			t.Error(err)
		}
	})
	// The image must already be fsck-clean at "power off".
	if rep := fs.Check(m1.SSD.Image()); !rep.OK() {
		t.Fatalf("fsck at shutdown: %v", rep.Problems)
	}
	m2 := NewMachine(Config{Phis: 1, DiskBytes: 32 << 20, SkipMkfs: true})
	img1 := m1.SSD.Image()
	img2 := m2.SSD.Image()
	copy(img2.Slice(0, img2.Size()), img1.Slice(0, img1.Size()))
	m2.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, err := c.Open(p, "/persist/me", 0)
		if err != nil {
			t.Error("file lost across reboot:", err)
			return
		}
		buf := c.AllocBuffer(8192)
		n, err := c.Read(p, fd, 0, buf, int64(len(payload)))
		if err != nil || int(n) != len(payload) || !bytes.Equal(buf.Data[:n], payload) {
			t.Errorf("reboot read n=%d err=%v", n, err)
		}
	})
}

func TestCrossNUMAWriteIntegrity(t *testing.T) {
	// A socket-1 co-processor's writes go through the buffered path
	// (pull to host staging, then disk); the bytes must round-trip.
	m := NewMachine(Config{Phis: 4})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		phi := m.Phis[3] // socket 1
		fd, err := phi.FS.Open(p, "/xnuma", ninep.OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		payload := bytes.Repeat([]byte{0xE7}, 300<<10)
		buf := phi.FS.AllocBuffer(int64(len(payload)))
		copy(buf.Data, payload)
		if _, err := phi.FS.Write(p, fd, 0, buf, int64(len(payload))); err != nil {
			t.Error(err)
			return
		}
		_, buffered, _ := m.FSProxy.PathStats()
		if buffered == 0 {
			t.Error("cross-NUMA write did not take the buffered path")
		}
		// Read back from a socket-0 co-processor (P2P path).
		fd0, _ := m.Phis[0].FS.Open(p, "/xnuma", 0)
		rb := m.Phis[0].FS.AllocBuffer(int64(len(payload)))
		n, err := m.Phis[0].FS.Read(p, fd0, 0, rb, int64(len(payload)))
		if err != nil || int(n) != len(payload) || !bytes.Equal(rb.Data[:n], payload) {
			t.Errorf("cross-NUMA written data corrupted: n=%d err=%v", n, err)
		}
	})
}

func TestUnalignedWriteThroughRPC(t *testing.T) {
	// Unaligned offsets force the proxy's staged read-modify-write; the
	// surrounding bytes must survive.
	m := NewMachine(Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *Machine) {
		c := m.Phis[0].FS
		fd, _ := c.Open(p, "/unaligned", ninep.OCreate)
		base := bytes.Repeat([]byte{'A'}, 12<<10)
		buf := c.AllocBuffer(16 << 10)
		copy(buf.Data, base)
		c.Write(p, fd, 0, buf, int64(len(base)))
		// Overwrite 1000 bytes spanning a block boundary at offset 3596.
		patch := bytes.Repeat([]byte{'Z'}, 1000)
		pb := c.AllocBuffer(1024)
		copy(pb.Data, patch)
		if _, err := c.Write(p, fd, 3596, pb, 1000); err != nil {
			t.Error(err)
			return
		}
		rb := c.AllocBuffer(16 << 10)
		n, _ := c.Read(p, fd, 0, rb, int64(len(base)))
		want := append([]byte{}, base...)
		copy(want[3596:], patch)
		if int(n) != len(base) || !bytes.Equal(rb.Data[:n], want) {
			t.Error("unaligned RPC write corrupted surrounding data")
		}
	})
}
