package core

import (
	"bytes"
	"fmt"
	"testing"

	"solros/internal/controlplane"
	"solros/internal/netstack"
	"solros/internal/sim"
)

func TestNetworkEchoThroughSolros(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.EnableNetwork()
	m.MustRun(func(p *sim.Proc, m *Machine) {
		phi := m.Phis[0]
		if err := phi.Net.Listen(p, 7000); err != nil {
			t.Error(err)
			return
		}
		done := sim.NewWaitGroup("echo")
		done.Add(2)
		// Echo server on the co-processor.
		p.Spawn("phi-server", func(sp *sim.Proc) {
			defer sp.DoneWG(done)
			sock, err := phi.Net.Accept(sp, 7000)
			if err != nil {
				t.Error(err)
				return
			}
			msg, err := sock.RecvFull(sp, 11)
			if err != nil {
				t.Error(err)
				return
			}
			sock.Send(sp, msg)
			sock.Close(sp)
		})
		// External client.
		p.Spawn("client", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(50 * sim.Microsecond)
			conn, err := m.ClientStack.Dial(cp, m.HostStack, 7000)
			if err != nil {
				t.Error(err)
				return
			}
			side := conn.Side(m.ClientStack)
			side.Send(cp, []byte("hello solros"[:11]))
			echo, err := side.RecvFull(cp, 11)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(echo, []byte("hello solro")) {
				t.Errorf("echo = %q", echo)
			}
			side.Close(cp)
		})
		p.WaitWG(done)
	})
}

func TestPhiInitiatedConnect(t *testing.T) {
	m := NewMachine(Config{Phis: 1})
	m.EnableNetwork()
	m.MustRun(func(p *sim.Proc, m *Machine) {
		done := sim.NewWaitGroup("connect")
		done.Add(2)
		// Server on the external client machine.
		p.Spawn("ext-server", func(sp *sim.Proc) {
			defer sp.DoneWG(done)
			l, err := m.ClientStack.Listen(9000)
			if err != nil {
				t.Error(err)
				return
			}
			c, ok := l.Accept(sp)
			if !ok {
				return
			}
			side := c.Side(m.ClientStack)
			data, _ := side.RecvFull(sp, 5)
			if string(data) != "outgo" {
				t.Errorf("server got %q", data)
			}
			side.Send(sp, []byte("ack!!"))
		})
		// Co-processor dials out through the proxy.
		p.Spawn("phi-client", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(20 * sim.Microsecond)
			sock, err := m.Phis[0].Net.Connect(cp, "client", 9000)
			if err != nil {
				t.Error(err)
				return
			}
			sock.Send(cp, []byte("outgo"))
			ack, err := sock.RecvFull(cp, 5)
			if err != nil || string(ack) != "ack!!" {
				t.Errorf("ack = %q err=%v", ack, err)
			}
			sock.Close(cp)
		})
		p.WaitWG(done)
	})
}

func TestSharedListeningSocketBalances(t *testing.T) {
	// Four co-processors listen on one port; 16 client connections must
	// be spread round-robin, 4 each (§4.4.3).
	m := NewMachine(Config{Phis: 4})
	m.EnableNetwork()
	const conns = 16
	served := make([]int, 4)
	m.MustRun(func(p *sim.Proc, m *Machine) {
		done := sim.NewWaitGroup("lb")
		for i, phi := range m.Phis {
			if err := phi.Net.Listen(p, 8080); err != nil {
				t.Error(err)
				return
			}
			i, phi := i, phi
			done.Add(1)
			p.Spawn(fmt.Sprintf("server-%d", i), func(sp *sim.Proc) {
				// Under round robin every phi serves exactly its
				// share; a balancer bug shows up as a deadlock
				// (some server never gets its connections).
				defer sp.DoneWG(done)
				for k := 0; k < conns/4; k++ {
					sock, err := phi.Net.Accept(sp, 8080)
					if err != nil {
						return
					}
					req, err := sock.RecvFull(sp, 4)
					if err != nil || len(req) < 4 {
						return
					}
					sock.Send(sp, []byte("resp"))
					served[i]++
					sock.Close(sp)
				}
			})
		}
		done.Add(1)
		p.Spawn("clients", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			for k := 0; k < conns; k++ {
				conn, err := m.ClientStack.Dial(cp, m.HostStack, 8080)
				if err != nil {
					t.Error(err)
					return
				}
				side := conn.Side(m.ClientStack)
				side.Send(cp, []byte("ping"))
				side.RecvFull(cp, 4)
				side.Close(cp)
			}
		})
		p.WaitWG(done)
	})
	for i, n := range served {
		if n != conns/4 {
			t.Fatalf("phi%d served %d connections, want %d (round robin); all=%v", i, n, conns/4, served)
		}
	}
}

func TestBulkDataPhiToClient(t *testing.T) {
	// A co-processor streams 4 MB to the external client through the
	// outbound ring and host proxy; bytes must arrive intact.
	m := NewMachine(Config{Phis: 1})
	m.EnableNetwork()
	const total = 4 << 20
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	m.MustRun(func(p *sim.Proc, m *Machine) {
		done := sim.NewWaitGroup("bulk")
		done.Add(2)
		p.Spawn("ext-server", func(sp *sim.Proc) {
			defer sp.DoneWG(done)
			l, _ := m.ClientStack.Listen(9100)
			c, ok := l.Accept(sp)
			if !ok {
				return
			}
			got, err := c.Side(m.ClientStack).RecvFull(sp, total)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, payload) {
				t.Error("bulk payload corrupted through proxy path")
			}
		})
		p.Spawn("phi-sender", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(20 * sim.Microsecond)
			sock, err := m.Phis[0].Net.Connect(cp, "client", 9100)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := sock.Send(cp, payload); err != nil {
				t.Error(err)
			}
			sock.Close(cp)
		})
		p.WaitWG(done)
	})
}

func TestContentBasedBalancingShardsByKey(t *testing.T) {
	// With a content-based rule, connections carrying the same key must
	// land on the same co-processor regardless of arrival order
	// (§4.4.3's key/value-store forwarding example).
	m := NewMachine(Config{Phis: 4})
	m.EnableNetwork()
	keyToPhi := map[byte]int{}
	m.MustRun(func(p *sim.Proc, m *Machine) {
		m.TCPProxy.Balance = &controlplane.ContentBalancer{
			Key: func(first []byte) uint32 { return uint32(first[0]) },
		}
		done := sim.NewWaitGroup("cb")
		for i, phi := range m.Phis {
			i, phi := i, phi
			if err := phi.Net.Listen(p, 8081); err != nil {
				t.Error(err)
				return
			}
			done.Add(1)
			p.Spawn(fmt.Sprintf("server-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				for {
					sock, err := phi.Net.Accept(sp, 8081)
					if err != nil {
						return
					}
					req, err := sock.RecvFull(sp, 8)
					if err != nil || len(req) != 8 {
						return
					}
					if prev, seen := keyToPhi[req[0]]; seen && prev != i {
						t.Errorf("key %d served by phi%d and phi%d", req[0], prev, i)
					}
					keyToPhi[req[0]] = i
					sock.Send(sp, []byte("ok"))
					sock.Close(sp)
				}
			})
		}
		done.Add(1)
		p.Spawn("clients", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			// 6 keys, 3 connections each, interleaved.
			for r := 0; r < 3; r++ {
				for key := byte(0); key < 6; key++ {
					conn, err := m.ClientStack.Dial(cp, m.HostStack, 8081)
					if err != nil {
						t.Error(err)
						return
					}
					side := conn.Side(m.ClientStack)
					req := make([]byte, 8)
					req[0] = key
					side.Send(cp, req)
					side.RecvFull(cp, 2)
					side.Close(cp)
				}
			}
			m.TCPProxy.Stop(cp)
		})
		p.WaitWG(done)
	})
	if len(keyToPhi) != 6 {
		t.Fatalf("saw %d keys, want 6", len(keyToPhi))
	}
}

func TestPollerMultiplexesSockets(t *testing.T) {
	// One server proc serves many connections through a Poller instead
	// of a proc per socket — the event-dispatcher architecture's payoff.
	m := NewMachine(Config{Phis: 1})
	m.EnableNetwork()
	const conns = 6
	served := 0
	m.MustRun(func(p *sim.Proc, m *Machine) {
		phi := m.Phis[0]
		if err := phi.Net.Listen(p, 8200); err != nil {
			t.Error(err)
			return
		}
		done := sim.NewWaitGroup("poller")
		done.Add(2)
		p.Spawn("poll-server", func(sp *sim.Proc) {
			defer sp.DoneWG(done)
			poller := phi.Net.NewPoller()
			// Accept all connections first, watching each.
			for c := 0; c < conns; c++ {
				sock, err := phi.Net.Accept(sp, 8200)
				if err != nil {
					return
				}
				poller.Watch(sock)
			}
			// Serve one request per connection, in readiness order.
			for served < conns {
				ready := poller.Wait(sp)
				if ready == nil {
					return
				}
				for _, sock := range ready {
					req, err := sock.Recv(sp, 64)
					if err != nil || len(req) == 0 {
						poller.Unwatch(sock)
						continue
					}
					sock.Send(sp, []byte("pong"))
					served++
					poller.Unwatch(sock)
				}
			}
		})
		p.Spawn("clients", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			sides := make([]*netstack.Side, conns)
			for c := 0; c < conns; c++ {
				conn, err := m.ClientStack.Dial(cp, m.HostStack, 8200)
				if err != nil {
					t.Error(err)
					return
				}
				sides[c] = conn.Side(m.ClientStack)
			}
			// Send in reverse order to exercise readiness ordering.
			for c := conns - 1; c >= 0; c-- {
				sides[c].Send(cp, []byte("ping"))
				cp.Advance(20 * sim.Microsecond)
			}
			for c := 0; c < conns; c++ {
				resp, err := sides[c].RecvFull(cp, 4)
				if err != nil || string(resp) != "pong" {
					t.Errorf("conn %d: resp=%q err=%v", c, resp, err)
				}
				sides[c].Close(cp)
			}
		})
		p.WaitWG(done)
	})
	if served != conns {
		t.Fatalf("served %d, want %d", served, conns)
	}
}

func TestEventDispatcherNotABottleneckAt61Connections(t *testing.T) {
	// §4.4.2: "A potential problem is that the single-thread event
	// dispatcher can be a bottleneck. However, we have not observed
	// such cases even in the most demanding workload (i.e., 64-byte
	// ping pong) with the largest number of hardware threads." Run 61
	// concurrent ping-pong connections through one dispatcher and
	// check per-connection latency stays within a small factor of the
	// 16-connection case.
	perConnRTT := func(conns int) sim.Time {
		m := NewMachine(Config{Phis: 1})
		m.EnableNetwork()
		var total sim.Time
		var n int
		m.MustRun(func(p *sim.Proc, m *Machine) {
			phi := m.Phis[0]
			phi.Net.Listen(p, 8300)
			done := sim.NewWaitGroup("pp")
			done.Add(2 * conns)
			for c := 0; c < conns; c++ {
				p.Spawn("srv", func(sp *sim.Proc) {
					defer sp.DoneWG(done)
					sock, err := phi.Net.Accept(sp, 8300)
					if err != nil {
						return
					}
					for r := 0; r < 10; r++ {
						msg, err := sock.RecvFull(sp, 64)
						if err != nil || len(msg) != 64 {
							return
						}
						sock.Send(sp, msg)
					}
				})
				p.Spawn("cli", func(cp *sim.Proc) {
					defer cp.DoneWG(done)
					cp.Advance(100 * sim.Microsecond)
					conn, err := m.ClientStack.Dial(cp, m.HostStack, 8300)
					if err != nil {
						return
					}
					side := conn.Side(m.ClientStack)
					msg := make([]byte, 64)
					for r := 0; r < 10; r++ {
						start := cp.Now()
						side.Send(cp, msg)
						side.RecvFull(cp, 64)
						total += cp.Now() - start
						n++
					}
					side.Close(cp)
				})
			}
			p.WaitWG(done)
		})
		return total / sim.Time(n)
	}
	small := perConnRTT(16)
	big := perConnRTT(61)
	if big > 4*small {
		t.Fatalf("dispatcher bottleneck: mean RTT %v at 61 conns vs %v at 16", big, small)
	}
	t.Logf("mean 64B RTT: 16 conns %v, 61 conns %v", small, big)
}

func TestDetachNetShardsToSiblings(t *testing.T) {
	// Graceful degradation on a co-processor crash: DetachNet drops the
	// victim from the shared listener, so every later connection shards to
	// the surviving sibling and the victim's pending Accept wakes with an
	// error instead of blocking forever.
	m := NewMachine(Config{Phis: 2})
	m.EnableNetwork()
	const conns = 6
	served := 0
	victimWoke := false
	m.MustRun(func(p *sim.Proc, m *Machine) {
		for _, phi := range m.Phis {
			if err := phi.Net.Listen(p, 8300); err != nil {
				t.Error(err)
				return
			}
		}
		done := sim.NewWaitGroup("detach")
		done.Add(3)
		p.Spawn("victim-server", func(sp *sim.Proc) {
			defer sp.DoneWG(done)
			if _, err := m.Phis[1].Net.Accept(sp, 8300); err != nil {
				victimWoke = true
			}
		})
		p.Spawn("survivor-server", func(sp *sim.Proc) {
			defer sp.DoneWG(done)
			for k := 0; k < conns; k++ {
				sock, err := m.Phis[0].Net.Accept(sp, 8300)
				if err != nil {
					return
				}
				req, err := sock.RecvFull(sp, 4)
				if err != nil || len(req) != 4 {
					return
				}
				sock.Send(sp, []byte("resp"))
				served++
				sock.Close(sp)
			}
		})
		p.Spawn("clients", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(50 * sim.Microsecond)
			m.TCPProxy.DetachNet(cp, m.Phis[1].Dev)
			for k := 0; k < conns; k++ {
				conn, err := m.ClientStack.Dial(cp, m.HostStack, 8300)
				if err != nil {
					t.Error(err)
					return
				}
				side := conn.Side(m.ClientStack)
				side.Send(cp, []byte("ping"))
				side.RecvFull(cp, 4)
				side.Close(cp)
			}
		})
		p.WaitWG(done)
	})
	if served != conns {
		t.Fatalf("survivor served %d connections, want all %d", served, conns)
	}
	if !victimWoke {
		t.Fatal("detached co-processor's pending Accept never woke with an error")
	}
	if n := m.TCPProxy.Detaches(); n != 1 {
		t.Fatalf("Detaches() = %d, want 1", n)
	}
}
