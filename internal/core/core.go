// Package core assembles a Solros machine: the PCIe fabric with its NUMA
// topology, Xeon Phi co-processors, the NVMe SSD with a solrosfs file
// system, the control-plane proxies on the host, and data-plane stubs on
// every co-processor. It is the top-level API examples and benchmarks
// program against.
package core

import (
	"fmt"

	"solros/internal/block"
	"solros/internal/controlplane"
	"solros/internal/cpu"
	"solros/internal/dataplane"
	"solros/internal/faults"
	"solros/internal/fs"
	"solros/internal/model"
	"solros/internal/netstack"
	"solros/internal/nvme"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/telemetry/analyze"
	"solros/internal/transport"
)

// Config sizes a machine. Zero values take the defaults noted per field.
// The paper's testbed is 2 sockets x 24 cores, 4 Xeon Phis (2 per
// socket), and one NVMe SSD on socket 0 (§6).
type Config struct {
	// Phis is the co-processor count (default 1). Phis are striped
	// across sockets: the first half on socket 0, the rest on socket 1,
	// as in the paper's testbed.
	Phis int
	// PhiMemBytes is each co-processor's on-card memory (default 64 MB).
	PhiMemBytes int64
	// HostRAMBytes is host DRAM backing rings, cache, and staging
	// (default 256 MB).
	HostRAMBytes int64
	// DiskBytes is the NVMe capacity (default 64 MB).
	DiskBytes int64
	// CacheBytes is the shared host buffer cache (default 16 MB).
	CacheBytes int64
	// ProxyWorkers is the number of proxy procs per co-processor
	// channel (default 4). With ProxyShards set it is the executor count
	// per shard instead.
	ProxyWorkers int
	// ProxyShards partitions the control plane (§6.3 scale-out): FSProxy
	// request service and TCPProxy connection admission split into this
	// many NUMA-aligned shards, each with its own serve loop, lock,
	// pending-fill map, and accept queue. Zero (the default) keeps the
	// seed's per-channel serve loops and global tables — every figure is
	// byte-identical. Shard counts above the co-processor count clamp.
	ProxyShards int
	// ShardFids gives each proxy shard a private fid table. With
	// ProxyShards set but ShardFids off, fid-touching RPCs serialize on
	// one global fid-table lock — the ablation that shows why sharding
	// the data structures matters, not just the serve loops.
	ShardFids bool
	// CoalesceOff disables the optimized IO-vector NVMe driver
	// (ablation; §5).
	CoalesceOff bool
	// ForceP2P disables the proxy's cross-NUMA buffered fallback
	// (ablation for Figure 1a's cross-NUMA series).
	ForceP2P bool
	// DisableCache bypasses the shared buffer cache (ablation).
	DisableCache bool
	// Pipeline makes data-plane FS stubs split large reads/writes into a
	// sliding window of in-flight chunk RPCs with sequential readahead
	// (default off; ablation for the pipeline bench).
	Pipeline bool
	// PipelineWindow bounds in-flight chunk RPCs per call (default 4).
	PipelineWindow int
	// PipelineChunkBytes sets the pipelined chunk size (default 256 KB).
	PipelineChunkBytes int64
	// BatchRecv drains RPC rings in combiner-amortized batches: the
	// proxy's serve loops and the data-plane dispatchers use RecvBatch
	// instead of Recv (default off).
	BatchRecv bool
	// HotPath arms the zero-alloc delegated RPC path on every data-plane
	// connection: pooled call records, pooled receive buffers with
	// recycling, and tag-peek routing that skips decoding stale replies.
	// Purely heap-side — virtual time and every figure are unchanged —
	// but responses returned by Call/Wait are only valid until the
	// connection's next CallAsync (default off).
	HotPath bool
	// CoalesceDoorbell lets a proxy serve worker publish the replies of
	// one drained request batch through a single combiner pass — one
	// lazy-control flush / doorbell pair for k replies instead of k. Only
	// effective with BatchRecv; behavior-visible (reply timing shifts
	// earlier), so figures require it off (default off).
	CoalesceDoorbell bool
	// Overlap double-buffers the proxy's buffered reads so NVMe fills
	// proceed under PCIe streaming (default off).
	Overlap bool
	// RingOptions overrides transport ring parameters.
	RingOptions transport.Options
	// LinkGenScale multiplies co-processor PCIe link bandwidth (1 =
	// the paper's Gen2 x16; 2 ~ Gen3; 4 ~ Gen4) for interconnect
	// sensitivity studies.
	LinkGenScale int
	// SkipMkfs leaves the disk unformatted so an existing image can be
	// installed (reboot/recovery scenarios); copy it into SSD.Image()
	// before Run.
	SkipMkfs bool
	// Faults installs a deterministic fault-injection plan (see
	// internal/faults) and arms degraded-mode recovery: proxy-side
	// transient-I/O retries, p2p->buffered fallbacks, and channel
	// crash/reattach per the plan's crash schedule. Nil (the default)
	// injects nothing and leaves every figure untouched.
	Faults *faults.Plan
	// RPCDeadline arms per-RPC deadlines on data-plane connections: a
	// call silent past the deadline is resent under the same tag with
	// exponential backoff. Zero waits forever (default).
	RPCDeadline sim.Time
	// RPCRetries bounds same-tag resends per RPC (default 0). Ring
	// message drops from the fault plan are only armed when this is
	// positive — without resends a dropped RPC would wedge the caller.
	RPCRetries int
	// Telemetry receives spans and metrics from every subsystem; nil
	// falls back to telemetry.Default (also usually nil — telemetry off).
	Telemetry *telemetry.Sink
	// Tracing arms end-to-end causal tracing: every data-plane RPC root
	// gets a deterministic trace ID carried inside the ninep frame, so a
	// delegated I/O is one causal tree across stub, rings, proxy, cache,
	// and NVMe. The 16-byte trace trailer changes wire sizes, and so
	// timing — keep it off (the default) when reproducing figures. When
	// set with a nil Telemetry sink, a private sink is created so spans
	// have somewhere to land.
	Tracing bool
	// FlightRecorder, when non-empty, arms the always-on bounded flight
	// recorder: the sink keeps the last N spans in a ring and dumps a
	// replayable JSON blackbox into this directory when a fault fires,
	// an oracle records a violation, or the sim deadlocks. Recording
	// never touches virtual time, so figures are unchanged.
	FlightRecorder string
	// Windows arms continuous observability: the run is cut into
	// fixed-length windows of the sim clock and every stage and queue is
	// rolled up per window (throughput, p50/p99, utilization, Little's-law
	// occupancy). Purely passive — no sampler proc, no virtual-time
	// perturbation — so figures are unchanged. Zero (the default) is off.
	// When set with a nil Telemetry sink, a private sink is created.
	Windows sim.Time
	// SLO arms the tail-latency watchdog on the windowed rollups:
	// objectives are evaluated with multi-window burn rates, breaches
	// record telemetry SLOViolations and trigger the flight recorder. A
	// non-empty SLO with Windows zero defaults Windows to 1ms.
	SLO []telemetry.Objective
	// MetricsAddr, when non-empty, serves the sink over HTTP (OpenMetrics
	// text format at /metrics, windowed rollups at /metrics/windows) for
	// wall-clock observation of long runs.
	MetricsAddr string
	// Analyze arms the trace-analytics engine (internal/telemetry/analyze):
	// completed causal trees are folded into a bounded index keyed by
	// tenant and shard, with differential p99-vs-p50 blame reports, a
	// hot-shard detector feeding the SLO watchdog, and per-bucket
	// OpenMetrics exemplars. Implies Tracing (which changes wire sizes —
	// keep off when reproducing figures); the analysis itself is passive
	// and adds no virtual time on top of tracing. Default off.
	Analyze bool
	// AnalyzeRoots filters which root span names enter the trace index
	// (empty = all roots). Bench drivers set {"workload.request"} so
	// preload and connection-binding traffic does not dilute the index.
	AnalyzeRoots []string
	// AnalyzeTraces bounds the trace index ring (default 4096).
	AnalyzeTraces int
	// SchedSeed arms the sim kernel's seeded tie-break policy: procs
	// runnable at the same virtual timestamp are ordered by a per-push
	// PRNG stream instead of spawn order, so each seed explores a
	// different interleaving and replays byte-identically. Zero (the
	// default) keeps the historical deterministic order untouched.
	SchedSeed int64
	// SchedBudget bounds how many random tie-break draws the seeded
	// policy makes before reverting to deterministic order (0 =
	// unlimited); the explorer's shrinker uses it to minimize failures.
	SchedBudget int64
	// Oracles are machine-wide invariant checkers polled at every
	// scheduling decision (see Oracle). The first violation is recorded
	// on the machine (Machine.Violation) and checking stops. Empty by
	// default — zero cost for every figure.
	Oracles []Oracle
	// OracleEvery polls the oracles every N dispatches (default 1, i.e.
	// at every scheduling decision).
	OracleEvery int
	// KVCompact arms online log compaction in the KV store shards
	// (internal/apps/kvstore). Default off: serving runs pay no
	// maintenance stalls unless the experiment asks for them.
	KVCompact bool
	// KVCompactFrac is the dead-byte fraction of a shard's log that
	// triggers a compaction when KVCompact is armed (default 0.5).
	KVCompactFrac float64
	// KVCompactEvery is how many appends pass between compaction checks
	// (default 64).
	KVCompactEvery int
}

// Oracle is a machine-wide invariant checker for schedule exploration. The
// engine polls each registered oracle at dispatch points; Check returns a
// non-nil error to report a violation. Checks run between proc executions,
// so they observe a consistent (serialized) machine state, and they must
// not mutate it or advance virtual time. Check must tolerate a machine
// that has not booted yet (FSProxy and FS are nil until boot).
type Oracle interface {
	Name() string
	Check(m *Machine) error
}

// Violation records the first invariant failure an oracle detected.
type Violation struct {
	// Oracle is the reporting oracle's name.
	Oracle string
	// Err is the invariant violation.
	Err error
	// At is the virtual time of the scheduling decision that exposed it.
	At sim.Time
	// Dispatch is the dispatch ordinal (Engine.Dispatches) at detection.
	Dispatch int64
}

// DefaultTracing and DefaultFlightRecorder are process-wide fallbacks for
// the corresponding Config fields, applied in fill() when the field is
// zero. They exist so CLI flags (solros-bench -trace-requests, -flightrec)
// can arm observability on every machine an experiment builds without
// threading knobs through each figure's plumbing — mirroring how
// telemetry.Default backstops Config.Telemetry.
var (
	DefaultTracing        bool
	DefaultFlightRecorder string
	DefaultWindows        sim.Time
	DefaultSLO            []telemetry.Objective
	DefaultMetricsAddr    string
)

func (c *Config) fill() {
	if !c.Tracing {
		c.Tracing = DefaultTracing
	}
	if c.FlightRecorder == "" {
		c.FlightRecorder = DefaultFlightRecorder
	}
	if c.Windows == 0 {
		c.Windows = DefaultWindows
	}
	if len(c.SLO) == 0 {
		c.SLO = DefaultSLO
	}
	if c.MetricsAddr == "" {
		c.MetricsAddr = DefaultMetricsAddr
	}
	if len(c.SLO) > 0 && c.Windows <= 0 {
		c.Windows = sim.Millisecond // burn rates need windows to burn over
	}
	if c.Analyze && !c.Tracing {
		c.Tracing = true // the index is built from causal trees
	}
	if c.Phis == 0 {
		c.Phis = 1
	}
	if c.PhiMemBytes == 0 {
		c.PhiMemBytes = 64 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 16 << 20
	}
	if c.HostRAMBytes == 0 {
		c.HostRAMBytes = 256 << 20
		// Fleet-scale topologies: every co-processor's network inbound
		// ring masters in host DRAM (>= 8 MB each) and staging grows with
		// channel count, so the default that fits the paper's 4-phi
		// testbed would exhaust the bump allocator at dozens of phis.
		// Only the zero-value default grows — explicit sizes are honored.
		// Memory capacity has no virtual-time cost, so this cannot move
		// any figure.
		if need := int64(c.Phis)*(16<<20) + c.CacheBytes + (128 << 20); need > c.HostRAMBytes {
			c.HostRAMBytes = need
		}
	}
	if c.DiskBytes == 0 {
		c.DiskBytes = 64 << 20
	}
	if c.ProxyWorkers == 0 {
		c.ProxyWorkers = 4
	}
	if c.RingOptions.CapBytes == 0 {
		c.RingOptions.CapBytes = 4 << 20
	}
	if c.LinkGenScale == 0 {
		c.LinkGenScale = 1
	}
}

// Phi is one co-processor with its data-plane OS.
type Phi struct {
	Dev  *pcie.Device
	Conn *dataplane.Conn
	FS   *dataplane.FSClient
	Net  *dataplane.NetClient
	Pool *cpu.Pool

	proxyReq, proxyResp *transport.Port
	netConn             *dataplane.Conn
}

// Machine is an assembled Solros system.
type Machine struct {
	Engine  *sim.Engine
	Fabric  *pcie.Fabric
	SSD     *nvme.Device
	FS      *fs.FS
	FSProxy *controlplane.FSProxy
	Phis    []*Phi
	Host    *cpu.Pool

	// Networking (nil unless EnableNetwork was called).
	Net         *netstack.Network
	HostStack   *netstack.Stack
	ClientStack *netstack.Stack
	TCPProxy    *controlplane.TCPProxy

	cfg       Config
	inj       *faults.Injector
	tel       *telemetry.Sink
	analyzer  *analyze.Analyzer
	booted    bool
	stopped   bool
	violation *Violation
}

// Config reports the machine's (filled) configuration, so layered
// subsystems built on top of a machine — the KV store's shards, for
// example — can inherit its knobs without re-threading them.
func (m *Machine) Config() Config { return m.cfg }

// Telemetry reports the sink this machine's subsystems emit into (nil when
// telemetry is off). When Config.Tracing or Config.FlightRecorder armed a
// private sink, this is how callers reach it for reports.
func (m *Machine) Telemetry() *telemetry.Sink { return m.tel }

// Analyzer reports the machine's trace-analytics engine (nil unless
// Config.Analyze armed it) — the handle for blame reports and rollups
// after a run.
func (m *Machine) Analyzer() *analyze.Analyzer { return m.analyzer }

// Violation reports the first oracle violation of the run, or nil.
func (m *Machine) Violation() *Violation { return m.violation }

// Injector exposes the machine's fault injector (nil when Config.Faults
// is nil), mainly so tests and benches can read the compiled plan.
func (m *Machine) Injector() *faults.Injector { return m.inj }

// NewMachine builds and formats a machine; the file system is mkfs'ed but
// not yet mounted (that happens in Run's boot phase, under timing).
func NewMachine(cfg Config) *Machine {
	cfg.fill()
	fab := pcie.New(cfg.HostRAMBytes)
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.Default
	}
	if tel == nil && (cfg.Tracing || cfg.FlightRecorder != "" || cfg.Windows > 0) {
		// Tracing, the flight recorder, and windowed rollups need a sink to
		// land in; create a private one rather than silently dropping the
		// request.
		tel = telemetry.New(telemetry.Options{})
	}
	if tel != nil && cfg.FlightRecorder != "" {
		tel.ArmFlightRecorder(cfg.FlightRecorder, 0, 0)
	}
	if tel != nil && cfg.Windows > 0 {
		// Windows before objectives: the watchdog sizes its per-metric
		// window retention off the armed window length.
		tel.EnableWindows(cfg.Windows)
		if len(cfg.SLO) > 0 {
			tel.SetObjectives(cfg.SLO)
		}
	}
	if tel != nil && cfg.MetricsAddr != "" {
		if _, err := telemetry.ServeMetrics(cfg.MetricsAddr, tel); err != nil {
			panic("core: metrics addr: " + err.Error())
		}
	}
	var az *analyze.Analyzer
	if tel != nil && cfg.Analyze {
		az = analyze.New(analyze.Options{
			Capacity: cfg.AnalyzeTraces,
			Roots:    cfg.AnalyzeRoots,
		})
		tel.SetSpanObserver(az.OnSpan)
		tel.SetHotspotSource(az.Hotspot)
		tel.EnableExemplars()
	}
	// Wire telemetry before any device or ring exists so every subsystem
	// picks the sink up from the fabric as it is constructed.
	fab.SetTelemetry(tel)
	m := &Machine{
		Engine:   sim.NewEngine(),
		Fabric:   fab,
		Host:     cpu.HostPool(),
		cfg:      cfg,
		tel:      tel,
		analyzer: az,
	}
	if cfg.SchedSeed != 0 {
		m.Engine.SetSchedSeed(cfg.SchedSeed)
		m.Engine.SetSchedBudget(cfg.SchedBudget)
	}
	var telTracer sim.Tracer
	if tel != nil {
		telTracer = tel.SchedTracer()
	}
	if len(cfg.Oracles) > 0 {
		every := int64(cfg.OracleEvery)
		if every < 1 {
			every = 1
		}
		var polls int64
		m.Engine.SetTracer(func(ev sim.Event) {
			if telTracer != nil {
				telTracer(ev)
			}
			// Oracles observe the machine between proc executions, where
			// state is consistent. After the first violation, stop: later
			// checks would only report knock-on damage.
			if ev.Kind != sim.EvDispatch || m.violation != nil {
				return
			}
			polls++
			if polls%every != 0 {
				return
			}
			for _, o := range cfg.Oracles {
				if err := o.Check(m); err != nil {
					m.violation = &Violation{
						Oracle:   o.Name(),
						Err:      err,
						At:       ev.Time,
						Dispatch: m.Engine.Dispatches(),
					}
					// The tracer runs between proc executions, so there is
					// no current proc; the recorder falls back to the
					// newest ringed trace.
					tel.TriggerFlight(nil, "oracle-"+o.Name())
					return
				}
			}
		})
	} else if telTracer != nil {
		m.Engine.SetTracer(telTracer)
	}
	if cfg.Faults != nil {
		m.inj = faults.NewInjector(cfg.Faults, tel)
		fab.SetInjector(m.inj)
	}
	m.SSD = nvme.New(fab, "nvme0", 0, cfg.DiskBytes)
	if m.inj != nil {
		m.SSD.SetInjector(m.inj)
	}
	if !cfg.SkipMkfs {
		if err := fs.Mkfs(m.SSD.Image(), 0); err != nil {
			panic("core: mkfs: " + err.Error())
		}
	}
	for i := 0; i < cfg.Phis; i++ {
		socket := 0
		if cfg.Phis > 1 && i >= (cfg.Phis+1)/2 {
			socket = 1
		}
		scale := int64(cfg.LinkGenScale)
		dev := fab.AddDevice(fmt.Sprintf("phi%d", i), socket, cfg.PhiMemBytes,
			scale*model.LinkBWPhiToHost, scale*model.LinkBWHostToPhi)
		conn, reqPort, respPort := dataplane.NewConn(fab, dev, cfg.RingOptions)
		conn.Tracing = cfg.Tracing
		conn.BatchRecv = cfg.BatchRecv
		conn.HotPath = cfg.HotPath
		conn.Deadline = cfg.RPCDeadline
		conn.Retries = cfg.RPCRetries
		conn.Reconnect = m.inj != nil
		m.armRings(reqPort, respPort)
		fsc := dataplane.NewFSClient(conn)
		fsc.Pipeline = cfg.Pipeline
		fsc.Window = cfg.PipelineWindow
		fsc.ChunkBytes = cfg.PipelineChunkBytes
		m.Phis = append(m.Phis, &Phi{
			Dev:       dev,
			Conn:      conn,
			FS:        fsc,
			Pool:      cpu.PhiPool(),
			proxyReq:  reqPort,
			proxyResp: respPort,
		})
	}
	return m
}

// armRings installs the fault injector on an RPC ring pair. Message drops
// are only enabled when RPC resends can recover them; dequeue stalls are
// harmless latency and always armed with the injector.
func (m *Machine) armRings(req, resp *transport.Port) {
	if m.inj == nil {
		return
	}
	lossy := m.cfg.RPCRetries > 0
	req.Ring().SetInjector(m.inj, lossy)
	resp.Ring().SetInjector(m.inj, lossy)
}

// boot mounts the file system and starts the control-plane proxy and
// data-plane dispatchers, all under timing.
func (m *Machine) boot(p *sim.Proc) {
	if m.booted {
		return
	}
	m.booted = true
	// Degraded-mode boot: mount reads go through the same NVMe the fault
	// injector targets, so ride out transient media errors like the data
	// path does (FSProxy.RetryIO below) instead of dying on one.
	tries := 1
	if m.inj != nil {
		tries = 4
	}
	var fsys *fs.FS
	var err error
	for i := 0; i < tries; i++ {
		fsys, err = fs.Mount(p, m.Fabric, block.NVMe{Dev: m.SSD})
		if err == nil {
			break
		}
	}
	if err != nil {
		panic("core: mount: " + err.Error())
	}
	m.FS = fsys
	m.FSProxy = controlplane.NewFSProxy(m.Fabric, fsys, m.SSD, m.cfg.CacheBytes)
	m.FSProxy.Coalesce = !m.cfg.CoalesceOff
	m.FSProxy.ForceP2P = m.cfg.ForceP2P
	m.FSProxy.DisableCache = m.cfg.DisableCache
	m.FSProxy.BatchRecv = m.cfg.BatchRecv
	m.FSProxy.CoalesceDoorbell = m.cfg.CoalesceDoorbell
	m.FSProxy.Overlap = m.cfg.Overlap
	m.FSProxy.Shards = m.cfg.ProxyShards
	m.FSProxy.ShardFids = m.cfg.ShardFids
	for _, phi := range m.Phis {
		m.FSProxy.Attach(phi.Dev, phi.proxyReq, phi.proxyResp)
		phi.Conn.Start(p)
	}
	if m.inj != nil {
		// Degraded mode: ride out transient media errors and failed p2p
		// DMAs instead of surfacing them to applications.
		m.FSProxy.RetryIO = 3
	}
	m.FSProxy.Start(p, m.cfg.ProxyWorkers)
	m.bootNetwork(p)
	m.startCrashSchedule(p)
}

// startCrashSchedule spawns the proc that executes the fault plan's
// channel-crash timeline: at each CrashTime it severs the victim
// co-processor's RPC channel, waits out the downtime, and brings the
// channel back with fresh rings. A machine already shut down stops the
// schedule.
func (m *Machine) startCrashSchedule(p *sim.Proc) {
	if m.inj == nil {
		return
	}
	plan := m.inj.Plan()
	if len(plan.CrashTimes) == 0 {
		return
	}
	victim := plan.CrashPhi
	if victim < 0 || victim >= len(m.Phis) {
		victim = 0
	}
	p.Spawn("faults-crash-schedule", func(cp *sim.Proc) {
		for _, t := range plan.CrashTimes {
			if t > cp.Now() {
				cp.AdvanceTo(t)
			}
			if m.stopped {
				return
			}
			m.CrashChannel(cp, victim)
			cp.Advance(plan.CrashDowntime)
			if m.stopped {
				return
			}
			m.RecoverChannel(cp, victim)
		}
	})
}

// CrashChannel severs co-processor i's FS RPC channel as a fault: rings
// close, in-flight calls fail, the dispatcher exits. Reconnectable via
// RecoverChannel.
func (m *Machine) CrashChannel(p *sim.Proc, i int) {
	m.Phis[i].Conn.Crash(p)
}

// RecoverChannel rebuilds co-processor i's crashed FS channel: fresh
// rings (re-armed with the injector), a new dispatcher, and a proxy
// reattach on the same channel index so open fids survive the outage.
// Sibling co-processors are untouched throughout.
func (m *Machine) RecoverChannel(p *sim.Proc, i int) {
	phi := m.Phis[i]
	req, resp := phi.Conn.Reset(p)
	if req == nil {
		return // closed for good; nothing to recover
	}
	m.armRings(req, resp)
	phi.proxyReq, phi.proxyResp = req, resp
	m.FSProxy.Reattach(p, i, req, resp)
}

// shutdown closes every RPC connection so service procs drain and exit.
func (m *Machine) shutdown(p *sim.Proc) {
	m.stopped = true // parks the crash schedule's next firing
	m.shutdownNetwork(p)
	for _, phi := range m.Phis {
		phi.Conn.Close(p)
	}
}

// Run boots the machine, executes main, then shuts it down; it returns
// when the virtual-time simulation has fully drained. main must not
// return before the workload procs it spawned have finished (use
// Parallel).
func (m *Machine) Run(main func(p *sim.Proc, m *Machine)) error {
	m.Engine.Spawn("main", 0, func(p *sim.Proc) {
		m.boot(p)
		main(p, m)
		m.shutdown(p)
	})
	err := m.Engine.Run()
	if err != nil {
		// A deadlocked sim is exactly what the flight recorder is for:
		// dump the last spans so the wedge is diagnosable post-mortem.
		m.tel.TriggerFlight(nil, "sim-deadlock")
	} else {
		// Seal the windowed rollups at the engine's final virtual time so
		// the trailing window reports complete and the SLO watchdog gets
		// its final evaluation.
		m.tel.SealWindows(m.Engine.Now())
	}
	return err
}

// MustRun is Run but panics on simulation deadlock.
func (m *Machine) MustRun(main func(p *sim.Proc, m *Machine)) {
	if err := m.Run(main); err != nil {
		panic(err)
	}
}

// Parallel spawns n workload procs and blocks until all complete. worker
// receives its index and a dedicated Proc; by convention it pins itself
// to hardware thread i of whatever pool it targets.
func Parallel(p *sim.Proc, n int, name string, worker func(i int, wp *sim.Proc)) {
	wg := sim.NewWaitGroup(name)
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.Spawn(fmt.Sprintf("%s-%d", name, i), func(wp *sim.Proc) {
			worker(i, wp)
			wp.DoneWG(wg)
		})
	}
	p.WaitWG(wg)
}

// PhiCount reports the configured number of co-processors.
func (m *Machine) PhiCount() int { return len(m.Phis) }

// DefaultPhiThreads reports the paper's per-Phi core count, for sizing
// workloads.
func DefaultPhiThreads() int { return model.PhiCores }
