// Package pcie models the machine's interconnect: PCIe links from each
// device to its root complex, the QPI socket interconnect, system-mapped
// PCIe windows (§4.1), and the two data-transfer mechanisms the paper
// characterizes in §4.2.1 — per-cacheline load/store transactions and DMA.
//
// Real bytes move between real buffers; the fabric charges virtual time and
// counts PCIe transactions so experiments can report both throughput and
// transaction counts.
package pcie

import (
	"fmt"

	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// Memory is a physically addressed byte region owned by the host or by a
// device (its on-card RAM).
type Memory struct {
	buf []byte
	// Dev is nil for host RAM.
	Dev         *Device
	allocCursor int64
}

// NewMemory returns a standalone memory region not attached to any fabric
// or device: a disk image, a test buffer.
func NewMemory(n int64) *Memory { return &Memory{buf: make([]byte, n)} }

// Slice exposes [off, off+n) of the region. It panics on out-of-range
// access, the moral equivalent of a machine check.
func (m *Memory) Slice(off, n int64) []byte {
	return m.buf[off : off+n : off+n]
}

// Size reports the region's capacity in bytes.
func (m *Memory) Size() int64 { return int64(len(m.buf)) }

// Device is a PCIe endpoint: a co-processor, SSD, or NIC.
type Device struct {
	Name   string
	Socket int
	// Mem is the device's exported on-card memory (BAR), mapped into
	// the host physical address space as a PCIe window (§4.1).
	Mem *Memory
	// linkUp carries device->host traffic, linkDown host->device.
	linkUp, linkDown *sim.Resource
	fabric           *Fabric
}

// FaultInjector is the fabric's hook into a fault plan (consumer-side
// interface; implemented by internal/faults). LinkFault is consulted once
// per stream leg: slowdown >= 1 divides the link's effective rate for that
// leg (degraded link) and stall delays its completion (link flap).
type FaultInjector interface {
	LinkFault(p *sim.Proc, link string) (slowdown int64, stall sim.Time)
}

// Fabric is the whole interconnect of one machine.
type Fabric struct {
	// HostRAM is host DRAM.
	HostRAM *Memory
	// qpiRelay throttles peer-to-peer transfers that cross sockets:
	// one processor must relay PCIe packets over QPI (Figure 1a).
	qpiRelay *sim.Resource
	devices  []*Device
	txns     int64
	// inj, when set, perturbs stream legs (plan-driven faults).
	inj FaultInjector

	// telemetry (nil handles when disabled; every update is a no-op)
	tel     *telemetry.Sink
	telTxns *telemetry.Counter
	linkTel map[*sim.Resource]linkTel
}

// linkTel is the per-link accounting pair: one transaction counter and one
// byte counter per PCIe link / QPI relay.
type linkTel struct {
	txns, bytes *telemetry.Counter
}

// New creates an empty fabric with hostRAMBytes of host DRAM.
func New(hostRAMBytes int64) *Fabric {
	return &Fabric{
		HostRAM:  &Memory{buf: make([]byte, hostRAMBytes)},
		qpiRelay: sim.NewResource("qpi-relay", model.QPIRelayBW, 2*sim.Microsecond),
	}
}

// SetTelemetry installs a telemetry sink on the fabric. Devices attached
// before or after the call get per-link transaction/byte counters, and
// components built on top of the fabric (rings, proxies, the NVMe driver,
// the cache) pick the sink up through Telemetry(), so this is the single
// wiring point for a whole machine.
func (f *Fabric) SetTelemetry(s *telemetry.Sink) {
	f.tel = s
	if s == nil {
		f.telTxns = nil
		f.linkTel = nil
		return
	}
	f.telTxns = s.Counter("pcie.txns")
	f.linkTel = make(map[*sim.Resource]linkTel)
	f.registerLink(f.qpiRelay)
	for _, d := range f.devices {
		f.registerLink(d.linkUp)
		f.registerLink(d.linkDown)
	}
}

// Telemetry reports the fabric's sink (nil when telemetry is off).
func (f *Fabric) Telemetry() *telemetry.Sink { return f.tel }

// SetInjector installs a plan-driven fault injector on every link; nil
// (the default) disables injection.
func (f *Fabric) SetInjector(inj FaultInjector) { f.inj = inj }

// legFault asks the injector how this stream leg is perturbed: the byte
// count inflated by any rate degradation, plus a stall to add to the leg's
// completion. A no-op without an injector.
func (f *Fabric) legFault(p *sim.Proc, r *sim.Resource, n int64) (int64, sim.Time) {
	if f.inj == nil {
		return n, 0
	}
	slowdown, stall := f.inj.LinkFault(p, r.Name)
	if slowdown > 1 {
		n *= slowdown
	}
	return n, stall
}

func (f *Fabric) registerLink(r *sim.Resource) {
	f.linkTel[r] = linkTel{
		txns:  f.tel.Counter("pcie.link." + r.Name + ".txns"),
		bytes: f.tel.Counter("pcie.link." + r.Name + ".bytes"),
	}
}

// countLink attributes one transfer of n bytes to a link.
func (f *Fabric) countLink(r *sim.Resource, n int64) {
	if lt, ok := f.linkTel[r]; ok {
		lt.txns.Add(1)
		lt.bytes.Add(n)
	}
}

// AddDevice attaches a device with memBytes of on-card memory to the given
// socket. upBW/downBW are the link rates in bytes/sec for device->host and
// host->device directions.
func (f *Fabric) AddDevice(name string, socket int, memBytes, upBW, downBW int64) *Device {
	d := &Device{
		Name:     name,
		Socket:   socket,
		linkUp:   sim.NewResource(name+"-up", upBW, 500*sim.Nanosecond),
		linkDown: sim.NewResource(name+"-down", downBW, 500*sim.Nanosecond),
		fabric:   f,
	}
	d.Mem = &Memory{buf: make([]byte, memBytes), Dev: d}
	f.devices = append(f.devices, d)
	if f.tel != nil {
		f.registerLink(d.linkUp)
		f.registerLink(d.linkDown)
	}
	return d
}

// AddPhi attaches a Xeon Phi co-processor with the paper's link rates.
func (f *Fabric) AddPhi(name string, socket int, memBytes int64) *Device {
	return f.AddDevice(name, socket, memBytes, model.LinkBWPhiToHost, model.LinkBWHostToPhi)
}

// Devices lists attached devices in attach order.
func (f *Fabric) Devices() []*Device { return f.devices }

// Transactions reports the cumulative PCIe transaction count (load/store
// cachelines + doorbells + control-variable accesses + DMA descriptors).
func (f *Fabric) Transactions() int64 { return f.txns }

// CountTxn records n raw PCIe transactions without charging time; used by
// callers that account the latency themselves.
func (f *Fabric) CountTxn(n int64) {
	f.txns += n
	f.telTxns.Add(n)
}

// CrossNUMA reports whether a transfer between the two endpoints crosses
// the socket interconnect. A nil device means host RAM (assumed reachable
// from either socket at full rate; NUMA placement of host buffers is below
// the model's resolution).
func CrossNUMA(a, b *Device) bool {
	return a != nil && b != nil && a.Socket != b.Socket
}

// Loc addresses bytes in host RAM (Dev == nil) or device memory.
type Loc struct {
	Dev *Device
	Off int64
}

func (l Loc) mem(f *Fabric) *Memory {
	if l.Dev == nil {
		return f.HostRAM
	}
	return l.Dev.Mem
}

// Mem resolves a Loc to its backing memory region on this fabric.
func (f *Fabric) Mem(l Loc) *Memory { return l.mem(f) }

func (l Loc) String() string {
	if l.Dev == nil {
		return fmt.Sprintf("host+%#x", l.Off)
	}
	return fmt.Sprintf("%s+%#x", l.Dev.Name, l.Off)
}

// Txn charges the Proc one raw PCIe round-trip transaction (doorbell write,
// remote head/tail access) initiated by a core of the given kind.
func (f *Fabric) Txn(p *sim.Proc, initiator cpu.Kind) {
	f.txns++
	f.telTxns.Add(1)
	p.Advance(TxnLatency(initiator))
}

// TxnLatency reports the cost of one raw single-cacheline transaction
// (doorbell, control-variable access) for the initiator.
func TxnLatency(initiator cpu.Kind) sim.Time {
	if initiator == cpu.Phi {
		return model.MemcpyBasePhi + model.MemcpyLinePhi
	}
	return model.MemcpyBaseHost + model.MemcpyLineHost
}

// Memcpy moves n bytes between src and dst with CPU load/store
// instructions issued by a core of kind initiator. Each cacheline is one
// PCIe transaction (§4.2.1): low latency for small data, poor bandwidth
// for large data. Purely local copies (both endpoints in the same memory
// domain as the initiator) are not modelled here; Memcpy is specifically
// the system-mapped-window path.
func (f *Fabric) Memcpy(p *sim.Proc, initiator cpu.Kind, src, dst Loc, n int64) {
	sp := f.tel.Start(p, "pcie.memcpy")
	sp.TagInt("bytes", n)
	lines := (n + model.CacheLine - 1) / model.CacheLine
	f.txns += lines
	f.telTxns.Add(lines)
	copy(dst.mem(f).Slice(dst.Off, n), src.mem(f).Slice(src.Off, n))
	p.Advance(MemcpyTime(initiator, n))
	sp.End(p)
}

// MemcpyTime predicts the virtual-time cost of a Memcpy without doing it:
// a first-access latency plus a per-cacheline streaming cost.
func MemcpyTime(initiator cpu.Kind, n int64) sim.Time {
	lines := (n + model.CacheLine - 1) / model.CacheLine
	if initiator == cpu.Phi {
		return model.MemcpyBasePhi + sim.Time(lines)*model.MemcpyLinePhi
	}
	return model.MemcpyBaseHost + sim.Time(lines)*model.MemcpyLineHost
}

// DMA moves n bytes between src and dst using a DMA engine set up by a
// core of kind initiator: high setup latency, then streaming at link rate
// (scaled down for Phi-initiated transfers, Figure 4a). At least one
// endpoint must be a device; the transfer reserves every link on the path
// and completes when the slowest finishes.
func (f *Fabric) DMA(p *sim.Proc, initiator cpu.Kind, src, dst Loc, n int64) {
	sp := f.tel.Start(p, "pcie.dma")
	sp.TagInt("bytes", n)
	setup := model.DMASetupHost
	if initiator == cpu.Phi {
		setup = model.DMASetupPhi
	}
	f.txns++ // descriptor write
	f.telTxns.Add(1)
	p.Advance(setup)
	f.stream(p, initiator, src, dst, n)
	sp.End(p)
}

// DeviceDMA moves n bytes using a device's own bus-mastering engine (e.g.
// the NVMe SSD's DMA pulling from or pushing to co-processor memory in a
// peer-to-peer transfer, §4.3.2). Setup is already part of the device's
// command processing, so only streaming is charged.
func (f *Fabric) DeviceDMA(p *sim.Proc, src, dst Loc, n int64) {
	sp := f.tel.Start(p, "pcie.device-dma")
	sp.TagInt("bytes", n)
	f.stream(p, cpu.Host, src, dst, n)
	sp.End(p)
}

// DMATime predicts the cost of an uncontended DMA on the path from src to
// dst (ignoring queueing at the links).
func (f *Fabric) DMATime(initiator cpu.Kind, src, dst Loc, n int64) sim.Time {
	setup := model.DMASetupHost
	if initiator == cpu.Phi {
		setup = model.DMASetupPhi
	}
	var worst sim.Time
	for _, r := range f.path(src.Dev, dst.Dev) {
		if r == nil {
			break
		}
		rate := f.effectiveRate(r, initiator)
		d := r.Latency + sim.Time(n*int64(sim.Second)/rate)
		if d > worst {
			worst = d
		}
	}
	return setup + worst
}

// StreamAsync reserves every link between the two endpoints for n bytes
// without advancing the Proc, returning the latest completion time. Device
// engines (NVMe, NIC) use it to overlap link reservation with their own
// service resources.
func (f *Fabric) StreamAsync(p *sim.Proc, srcDev, dstDev *Device, n int64) sim.Time {
	var latest sim.Time
	for _, r := range f.path(srcDev, dstDev) {
		if r == nil {
			break
		}
		f.countLink(r, n)
		sn, stall := f.legFault(p, r, n)
		if done := p.UseAsync(r, sn) + stall; done > latest {
			latest = done
		}
	}
	return latest
}

// stream reserves each path link for n bytes and advances the Proc to the
// latest completion, modelling pipelined store-and-forward flow.
func (f *Fabric) stream(p *sim.Proc, initiator cpu.Kind, src, dst Loc, n int64) {
	copy(dst.mem(f).Slice(dst.Off, n), src.mem(f).Slice(src.Off, n))
	var latest sim.Time
	for _, r := range f.path(src.Dev, dst.Dev) {
		if r == nil {
			break
		}
		rate := f.effectiveRate(r, initiator)
		// Temporarily apply the initiator scaling by inflating the
		// byte count on this reservation.
		scaled := n * r.Rate / rate
		f.countLink(r, n)
		scaled, stall := f.legFault(p, r, scaled)
		done := p.UseAsync(r, scaled) + stall
		if done > latest {
			latest = done
		}
	}
	p.AdvanceTo(latest)
}

// effectiveRate scales a link's rate for Phi-initiated DMA (2.3x slower,
// Figure 4a). The QPI relay is not further scaled; it is already the
// bottleneck.
func (f *Fabric) effectiveRate(r *sim.Resource, initiator cpu.Kind) int64 {
	if initiator == cpu.Phi && r != f.qpiRelay {
		return model.PhiDMARate(r.Rate)
	}
	return r.Rate
}

// path returns the shared resources a transfer between the two endpoints
// crosses. Directionality: we pick each device's link by whether data
// flows out of (up) or into (down) it.
// path collects the fabric links a transfer crosses (at most three) into
// a fixed-size array so the per-transfer hot path never heap-allocates a
// link vector; callers range over the returned prefix.
func (f *Fabric) path(srcDev, dstDev *Device) [3]*sim.Resource {
	var rs [3]*sim.Resource
	n := 0
	if srcDev != nil {
		rs[n] = srcDev.linkUp
		n++
	}
	if dstDev != nil {
		rs[n] = dstDev.linkDown
		n++
	}
	if CrossNUMA(srcDev, dstDev) {
		rs[n] = f.qpiRelay
	}
	return rs
}

// PathBandwidth reports the bottleneck streaming rate between endpoints
// for a host-initiated transfer, in bytes/sec.
func (f *Fabric) PathBandwidth(srcDev, dstDev *Device) int64 {
	var min int64
	for _, r := range f.path(srcDev, dstDev) {
		if r == nil {
			break
		}
		if min == 0 || r.Rate < min {
			min = r.Rate
		}
	}
	return min
}

// ResetLinks clears queueing state and accounting on every link; used
// between benchmark iterations that reuse a topology.
func (f *Fabric) ResetLinks() {
	for _, d := range f.devices {
		d.linkUp.Reset()
		d.linkDown.Reset()
	}
	f.qpiRelay.Reset()
	f.txns = 0
}
