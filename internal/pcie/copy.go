package pcie

import (
	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/sim"
)

// Mech selects a data-transfer mechanism across the PCIe fabric.
type Mech int

const (
	// Adaptive (the zero value, hence the default everywhere) picks
	// Memcpy below the initiator's threshold and DMA above it (§4.2.4:
	// 1 KB on the host, 16 KB on the Phi).
	Adaptive Mech = iota
	// Memcpy uses CPU load/store through a system-mapped window: one
	// PCIe transaction per cacheline.
	Memcpy
	// DMA programs a DMA engine: setup latency then streaming.
	DMA
)

func (m Mech) String() string {
	switch m {
	case Memcpy:
		return "memcpy"
	case DMA:
		return "dma"
	default:
		return "adaptive"
	}
}

// Resolve maps Adaptive to a concrete mechanism for an initiator and size.
func (m Mech) Resolve(initiator cpu.Kind, n int64) Mech {
	if m != Adaptive {
		return m
	}
	threshold := int64(model.AdaptiveThresholdHost)
	if initiator == cpu.Phi {
		threshold = model.AdaptiveThresholdPhi
	}
	if n <= threshold {
		return Memcpy
	}
	return DMA
}

// CopyIn moves len(buf) bytes from a local buffer on `at` (nil = host)
// into remote fabric memory at dst, initiated by a core of kind k on `at`.
func (f *Fabric) CopyIn(p *sim.Proc, at *Device, k cpu.Kind, dst Loc, buf []byte, mech Mech) {
	n := int64(len(buf))
	copy(dst.mem(f).Slice(dst.Off, n), buf)
	f.charge(p, at, k, dst.Dev, n, mech, true)
}

// CopyOut moves n bytes from remote fabric memory at src into a local
// buffer on `at`, initiated by a core of kind k on `at`.
func (f *Fabric) CopyOut(p *sim.Proc, at *Device, k cpu.Kind, src Loc, buf []byte, mech Mech) {
	n := int64(len(buf))
	copy(buf, src.mem(f).Slice(src.Off, n))
	f.charge(p, at, k, src.Dev, n, mech, false)
}

// CopyInVec moves hdr then payload contiguously into remote fabric memory
// at dst — a writev-style two-slice send. The fabric cost is ONE transfer
// of the combined size, exactly what a pre-joined buffer would pay; what
// the caller saves is the heap staging buffer that used to join them.
func (f *Fabric) CopyInVec(p *sim.Proc, at *Device, k cpu.Kind, dst Loc, hdr, payload []byte, mech Mech) {
	n := int64(len(hdr) + len(payload))
	s := dst.mem(f).Slice(dst.Off, n)
	copy(s, hdr)
	copy(s[len(hdr):], payload)
	f.charge(p, at, k, dst.Dev, n, mech, true)
}

// ChargeOut accounts the fabric cost of reading n bytes at src without
// moving them into a local buffer — the receive half of a borrowed-view
// dequeue, where the consumer decodes the master-memory slice in place.
// Time-identical to CopyOut of the same size; only heap traffic differs.
func (f *Fabric) ChargeOut(p *sim.Proc, at *Device, k cpu.Kind, src Loc, n int64, mech Mech) {
	f.charge(p, at, k, src.Dev, n, mech, false)
}

// LocalCopy charges a same-domain memory copy on a core of kind k and
// moves the bytes. No PCIe traffic is involved.
func LocalCopy(p *sim.Proc, k cpu.Kind, dst, src []byte) {
	n := int64(len(src))
	copy(dst, src)
	rate := int64(model.LocalCopyRateHost)
	if k == cpu.Phi {
		rate = model.LocalCopyRatePhi
	}
	p.Advance(sim.Time(n * int64(sim.Second) / rate))
}

// charge accounts the fabric cost of moving n bytes between device `a`
// (where the initiating core lives) and device `b` (where the remote
// memory lives); either may be nil for the host.
func (f *Fabric) charge(p *sim.Proc, a *Device, k cpu.Kind, b *Device, n int64, mech Mech, toRemote bool) {
	if a == b {
		// Same memory domain: local copy, no PCIe.
		rate := int64(model.LocalCopyRateHost)
		if k == cpu.Phi {
			rate = model.LocalCopyRatePhi
		}
		p.Advance(sim.Time(n * int64(sim.Second) / rate))
		return
	}
	resolved := mech.Resolve(k, n)
	sp := f.tel.Start(p, "pcie.copy")
	sp.Tag("mech", resolved.String())
	sp.TagInt("bytes", n)
	switch resolved {
	case Memcpy:
		lines := (n + model.CacheLine - 1) / model.CacheLine
		f.txns += lines
		f.telTxns.Add(lines)
		p.Advance(MemcpyTime(k, n))
	default: // DMA
		setup := model.DMASetupHost
		if k == cpu.Phi {
			setup = model.DMASetupPhi
		}
		f.txns++
		f.telTxns.Add(1)
		p.Advance(setup)
		srcDev, dstDev := a, b
		if !toRemote {
			srcDev, dstDev = b, a
		}
		f.streamCharge(p, k, srcDev, dstDev, n)
	}
	sp.End(p)
}

// streamCharge reserves path links without moving bytes (the caller
// already moved them).
func (f *Fabric) streamCharge(p *sim.Proc, initiator cpu.Kind, srcDev, dstDev *Device, n int64) {
	var latest sim.Time
	for _, r := range f.path(srcDev, dstDev) {
		if r == nil {
			break
		}
		rate := f.effectiveRate(r, initiator)
		scaled := n * r.Rate / rate
		done := p.UseAsync(r, scaled)
		if done > latest {
			latest = done
		}
	}
	p.AdvanceTo(latest)
}

// CopyCost predicts the uncontended cost of moving n bytes between a core
// on device a (kind k) and memory on device b.
func (f *Fabric) CopyCost(a *Device, k cpu.Kind, b *Device, n int64, mech Mech) sim.Time {
	if a == b {
		rate := int64(model.LocalCopyRateHost)
		if k == cpu.Phi {
			rate = model.LocalCopyRatePhi
		}
		return sim.Time(n * int64(sim.Second) / rate)
	}
	switch mech.Resolve(k, n) {
	case Memcpy:
		return MemcpyTime(k, n)
	default:
		setup := model.DMASetupHost
		if k == cpu.Phi {
			setup = model.DMASetupPhi
		}
		var worst sim.Time
		for _, r := range f.path(a, b) {
			if r == nil {
				break
			}
			rate := f.effectiveRate(r, k)
			d := r.Latency + sim.Time(n*int64(sim.Second)/rate)
			if d > worst {
				worst = d
			}
		}
		return setup + worst
	}
}

// Alloc reserves n bytes (8-aligned) of the memory region and returns its
// offset; a trivial bump allocator for carving device BARs and host RAM
// into ring buffers, queues, and staging areas.
func (m *Memory) Alloc(n int64) int64 {
	n = (n + 7) &^ 7
	if m.allocCursor+n > int64(len(m.buf)) {
		panic("pcie: out of memory in " + m.name())
	}
	off := m.allocCursor
	m.allocCursor += n
	return off
}

func (m *Memory) name() string {
	if m.Dev == nil {
		return "host RAM"
	}
	return m.Dev.Name
}
