package pcie

import (
	"bytes"
	"testing"
	"testing/quick"

	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/sim"
)

func testFabric() (*Fabric, *Device, *Device, *Device) {
	f := New(1 << 20)
	phi0 := f.AddPhi("phi0", 0, 1<<20)
	phi2 := f.AddPhi("phi2", 1, 1<<20)
	ssd := f.AddDevice("nvme", 0, 1<<20, model.LinkBWNVMe, model.LinkBWNVMe)
	return f, phi0, phi2, ssd
}

func TestMemcpyMovesBytes(t *testing.T) {
	f, phi0, _, _ := testFabric()
	copy(f.HostRAM.Slice(0, 4), []byte("abcd"))
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		f.Memcpy(p, cpu.Host, Loc{nil, 0}, Loc{phi0, 128}, 4)
	})
	e.MustRun()
	if got := phi0.Mem.Slice(128, 4); !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("device memory = %q, want abcd", got)
	}
}

func TestMemcpyChargesPerCacheline(t *testing.T) {
	f, phi0, _, _ := testFabric()
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		f.Memcpy(p, cpu.Host, Loc{nil, 0}, Loc{phi0, 0}, 65) // 2 cachelines
		if want := model.MemcpyBaseHost + 2*model.MemcpyLineHost; p.Now() != want {
			t.Errorf("cost = %v, want %v", p.Now(), want)
		}
	})
	e.MustRun()
	if f.Transactions() != 2 {
		t.Fatalf("txns = %d, want 2", f.Transactions())
	}
}

func TestPhiMemcpySlowerThanHost(t *testing.T) {
	if MemcpyTime(cpu.Phi, 4096) <= MemcpyTime(cpu.Host, 4096) {
		t.Fatal("Phi-initiated memcpy should be slower than host-initiated")
	}
}

func TestSmallTransferMemcpyBeatsDMA(t *testing.T) {
	// Paper §4.2.1: for 64 B, memcpy is 2.9x (host) and 12.6x (Phi)
	// faster than DMA.
	f, phi0, _, _ := testFabric()
	for _, k := range []cpu.Kind{cpu.Host, cpu.Phi} {
		mc := MemcpyTime(k, 64)
		dma := f.DMATime(k, Loc{nil, 0}, Loc{phi0, 0}, 64)
		if mc >= dma {
			t.Errorf("%v: 64B memcpy (%v) should beat DMA (%v)", k, mc, dma)
		}
	}
}

func TestLargeTransferDMABeatsMemcpy(t *testing.T) {
	// Paper §4.2.1: for 8 MB, DMA is 150x (host) and 116x (Phi) faster.
	f, phi0, _, _ := testFabric()
	const n = 8 << 20
	for _, k := range []cpu.Kind{cpu.Host, cpu.Phi} {
		mc := MemcpyTime(k, n)
		dma := f.DMATime(k, Loc{nil, 0}, Loc{phi0, 0}, n)
		ratio := float64(mc) / float64(dma)
		// The paper reports 150x/116x; our linear model compresses the
		// gap (see EXPERIMENTS.md) but the ordering must be decisive.
		if ratio < 10 {
			t.Errorf("%v: 8MB memcpy/DMA ratio = %.1f, want >= 10", k, ratio)
		}
	}
}

func TestHostInitiatedDMAFasterThanPhi(t *testing.T) {
	// Paper Figure 4a: host-initiated DMA is ~2.3x faster.
	f, phi0, _, _ := testFabric()
	const n = 4 << 20
	host := f.DMATime(cpu.Host, Loc{phi0, 0}, Loc{nil, 0}, n)
	phi := f.DMATime(cpu.Phi, Loc{phi0, 0}, Loc{nil, 0}, n)
	ratio := float64(phi) / float64(host)
	if ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("phi/host DMA time ratio = %.2f, want ~2.3", ratio)
	}
}

func TestCrossNUMA(t *testing.T) {
	_, phi0, phi2, ssd := testFabric()
	if CrossNUMA(phi0, ssd) {
		t.Error("phi0 and nvme share socket 0")
	}
	if !CrossNUMA(phi2, ssd) {
		t.Error("phi2 (socket 1) to nvme (socket 0) should cross NUMA")
	}
	if CrossNUMA(nil, phi2) || CrossNUMA(phi0, nil) {
		t.Error("host RAM endpoint never counts as cross-NUMA")
	}
}

func TestCrossNUMAP2PCapped(t *testing.T) {
	// Figure 1a: P2P across a NUMA boundary is capped at ~300 MB/s.
	f, phi0, phi2, ssd := testFabric()
	same := f.PathBandwidth(ssd, phi0)
	cross := f.PathBandwidth(ssd, phi2)
	if cross != model.QPIRelayBW {
		t.Fatalf("cross-NUMA bandwidth = %d, want %d", cross, model.QPIRelayBW)
	}
	if same <= cross {
		t.Fatalf("same-socket P2P (%d) should exceed cross-NUMA (%d)", same, cross)
	}
}

func TestDeviceDMAP2PMovesBytes(t *testing.T) {
	f, phi0, _, ssd := testFabric()
	copy(ssd.Mem.Slice(0, 8), []byte("p2pdata!"))
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		f.DeviceDMA(p, Loc{ssd, 0}, Loc{phi0, 64}, 8)
	})
	e.MustRun()
	if got := phi0.Mem.Slice(64, 8); !bytes.Equal(got, []byte("p2pdata!")) {
		t.Fatalf("P2P copy = %q", got)
	}
}

func TestCrossNUMADMASlowerEndToEnd(t *testing.T) {
	f, phi0, phi2, ssd := testFabric()
	const n = 1 << 20
	var sameT, crossT sim.Time
	e := sim.NewEngine()
	e.Spawn("same", 0, func(p *sim.Proc) {
		f.DeviceDMA(p, Loc{ssd, 0}, Loc{phi0, 0}, n)
		sameT = p.Now()
	})
	e.MustRun()
	f.ResetLinks()
	e = sim.NewEngine()
	e.Spawn("cross", 0, func(p *sim.Proc) {
		f.DeviceDMA(p, Loc{ssd, 0}, Loc{phi2, 0}, n)
		crossT = p.Now()
	})
	e.MustRun()
	if crossT < 5*sameT {
		t.Fatalf("cross-NUMA 1MB DMA (%v) should be much slower than same-socket (%v)", crossT, sameT)
	}
}

func TestTxnAccounting(t *testing.T) {
	f, _, _, _ := testFabric()
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		f.Txn(p, cpu.Host)
		f.Txn(p, cpu.Phi)
	})
	e.MustRun()
	if f.Transactions() != 2 {
		t.Fatalf("txns = %d, want 2", f.Transactions())
	}
	f.ResetLinks()
	if f.Transactions() != 0 {
		t.Fatal("ResetLinks should clear the transaction counter")
	}
}

func TestLocString(t *testing.T) {
	f, phi0, _, _ := testFabric()
	_ = f
	if s := (Loc{nil, 16}).String(); s != "host+0x10" {
		t.Errorf("host loc = %q", s)
	}
	if s := (Loc{phi0, 0}).String(); s != "phi0+0x0" {
		t.Errorf("dev loc = %q", s)
	}
}

// Property: DMA time is monotone in size and always includes setup.
func TestDMATimeMonotoneProperty(t *testing.T) {
	f, phi0, _, _ := testFabric()
	fn := func(a, b uint32) bool {
		na, nb := int64(a%(8<<20))+1, int64(b%(8<<20))+1
		if na > nb {
			na, nb = nb, na
		}
		ta := f.DMATime(cpu.Host, Loc{nil, 0}, Loc{phi0, 0}, na)
		tb := f.DMATime(cpu.Host, Loc{nil, 0}, Loc{phi0, 0}, nb)
		return ta <= tb && ta >= model.DMASetupHost
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: memcpy moves arbitrary payloads intact in either direction.
func TestMemcpyRoundTripProperty(t *testing.T) {
	f, phi0, _, _ := testFabric()
	fn := func(data []byte) bool {
		if len(data) == 0 || len(data) > 32<<10 {
			return true
		}
		n := int64(len(data))
		copy(f.HostRAM.Slice(0, n), data)
		e := sim.NewEngine()
		e.Spawn("p", 0, func(p *sim.Proc) {
			f.Memcpy(p, cpu.Host, Loc{nil, 0}, Loc{phi0, 0}, n)
			f.Memcpy(p, cpu.Phi, Loc{phi0, 0}, Loc{nil, 1 << 18}, n)
		})
		e.MustRun()
		return bytes.Equal(f.HostRAM.Slice(1<<18, n), data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
