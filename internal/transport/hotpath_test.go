package transport

import (
	"bytes"
	"runtime"
	"testing"

	"solros/internal/cpu"
	"solros/internal/sim"
)

// TestSendVecMatchesSend pins the vectored send to the joined send: same
// bytes on the wire, same virtual time.
func TestSendVecMatchesSend(t *testing.T) {
	hdr := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	payload := bytes.Repeat([]byte{0xCD}, 777)
	joined := append(append([]byte(nil), hdr...), payload...)

	run := func(send func(pt *Port, p *sim.Proc)) ([]byte, sim.Time) {
		f, phi := newFabric()
		ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64})
		sender := ring.Port(nil, cpu.Host)
		receiver := ring.Port(phi, cpu.Phi)
		var got []byte
		var at sim.Time
		e := sim.NewEngine()
		e.Spawn("sender", 0, func(p *sim.Proc) { send(sender, p) })
		e.Spawn("receiver", 0, func(p *sim.Proc) {
			got, _ = receiver.Recv(p)
			at = p.Now()
		})
		e.MustRun()
		return got, at
	}

	wantMsg, wantAt := run(func(pt *Port, p *sim.Proc) { pt.Send(p, joined) })
	gotMsg, gotAt := run(func(pt *Port, p *sim.Proc) { pt.SendVec(p, hdr, payload) })
	if !bytes.Equal(gotMsg, wantMsg) {
		t.Fatalf("SendVec wire bytes differ from Send")
	}
	if gotAt != wantAt {
		t.Fatalf("SendVec completion time %v != Send %v", gotAt, wantAt)
	}
}

// TestSendBatchOrderAndInvariants drains a batched enqueue stream through
// the ring oracle: order preserved, Check clean throughout, quiesce exact.
func TestSendBatchOrderAndInvariants(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 8192, Slots: 16})
	sender := ring.Port(nil, cpu.Host)
	receiver := ring.Port(phi, cpu.Phi)

	const n = 100
	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = bytes.Repeat([]byte{byte(i)}, 64+i)
	}
	var got [][]byte
	e := sim.NewEngine()
	e.Spawn("sender", 0, func(p *sim.Proc) {
		// Far more than one pass and more than fits: exercises the
		// partial-pass + spaceCond wait loop.
		sender.SendBatch(p, batch)
	})
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		for len(got) < n {
			msg, ok := receiver.Recv(p)
			if !ok {
				break
			}
			got = append(got, msg)
			if err := ring.Check(); err != nil {
				t.Errorf("mid-drain: %v", err)
			}
		}
	})
	e.MustRun()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, msg := range got {
		if !bytes.Equal(msg, batch[i]) {
			t.Fatalf("message %d out of order or corrupt", i)
		}
	}
	if err := ring.Check(); err != nil {
		t.Fatal(err)
	}
	if sent, received, _ := ring.Stats(); sent != n || received != n {
		t.Fatalf("stats sent=%d received=%d", sent, received)
	}
}

// TestSendBatchCoalescesDoorbells shows the point of the API: in Eager
// mode every TrySend pays its own head/tail transaction pair, while one
// batched pass pays one pair for k messages — so the batch must finish
// strictly earlier in virtual time.
func TestSendBatchCoalescesDoorbells(t *testing.T) {
	const k = 8
	run := func(batched bool) sim.Time {
		f, phi := newFabric()
		ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64, Update: Eager})
		sender := ring.Port(nil, cpu.Host) // shadow side: txns are remote
		msgs := make([][]byte, k)
		for i := range msgs {
			msgs[i] = make([]byte, 64)
		}
		var at sim.Time
		e := sim.NewEngine()
		e.Spawn("sender", 0, func(p *sim.Proc) {
			if batched {
				sender.SendBatch(p, msgs)
			} else {
				for _, m := range msgs {
					sender.Send(p, m)
				}
			}
			at = p.Now()
		})
		e.MustRun()
		return at
	}
	seq, bat := run(false), run(true)
	if bat >= seq {
		t.Fatalf("batched enqueue (%v) not cheaper than sequential (%v)", bat, seq)
	}
}

// TestRecvBatchIntoReusesBacking checks the caller-owned destination path
// never reallocates the vector when the scratch has capacity.
func TestRecvBatchIntoReusesBacking(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64})
	sender := ring.Port(phi, cpu.Phi)
	receiver := ring.Port(nil, cpu.Host)

	scratch := make([][]byte, 0, 8)
	e := sim.NewEngine()
	e.Spawn("sender", 0, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			sender.Send(p, []byte{byte(i)})
		}
	})
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		got := 0
		for got < 8 {
			msgs, ok := receiver.RecvBatchInto(p, 8, scratch[:0])
			if !ok {
				break
			}
			if cap(msgs) != cap(scratch) {
				t.Errorf("destination reallocated: cap %d -> %d", cap(scratch), cap(msgs))
			}
			for _, m := range msgs {
				if m[0] != byte(got) {
					t.Errorf("out of order: got %d want %d", m[0], got)
				}
				got++
			}
		}
	})
	e.MustRun()
}

// TestPooledRecvRecycles checks that an enabled pool feeds recycled
// buffers back to the Recv family and that payloads survive recycling of
// the previous buffer.
func TestPooledRecvRecycles(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64})
	sender := ring.Port(phi, cpu.Phi)
	receiver := ring.Port(nil, cpu.Host)
	receiver.EnablePool()

	const n = 50
	e := sim.NewEngine()
	e.Spawn("sender", 0, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			sender.Send(p, bytes.Repeat([]byte{byte(i)}, 512))
		}
	})
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		var prev []byte
		for i := 0; i < n; i++ {
			msg, ok := receiver.Recv(p)
			if !ok {
				t.Error("ring closed early")
				return
			}
			if msg[0] != byte(i) || msg[511] != byte(i) {
				t.Errorf("message %d corrupt after recycle", i)
			}
			receiver.Recycle(prev) // nil first time: must be a no-op
			prev = msg
		}
	})
	e.MustRun()
	gets, news := receiver.PoolStats()
	if gets != n {
		t.Fatalf("pool gets = %d, want %d", gets, n)
	}
	// First Get allocates; with one buffer always in flight the second
	// does too; everything after that recycles.
	if news > 2 {
		t.Fatalf("pool allocated %d times, want <= 2", news)
	}
}

// TestViewReceive checks borrowed-view dequeue: correct bytes in place,
// space withheld until Release, oracle clean throughout, and virtual time
// identical to a copying TryRecv.
func TestViewReceive(t *testing.T) {
	f, phi := newFabric()
	// One-slot-sized ring: while a view is held, a second send must block.
	ring := NewRing(f, phi, Options{CapBytes: 1024, Slots: 2})
	sender := ring.Port(phi, cpu.Phi)
	receiver := ring.Port(nil, cpu.Host)

	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		sender.Send(p, bytes.Repeat([]byte{0xEE}, 1000))
		v, ok := receiver.RecvView(p)
		if !ok {
			t.Error("RecvView failed")
			return
		}
		if len(v.Data) != 1000 || v.Data[0] != 0xEE || v.Data[999] != 0xEE {
			t.Errorf("view bytes wrong: len=%d", len(v.Data))
		}
		if err := ring.Check(); err != nil {
			t.Errorf("view held: %v", err)
		}
		// Bytes are not reclaimable until Release: the ring is full.
		if err := sender.TrySend(p, make([]byte, 1000)); err != ErrWouldBlock {
			t.Errorf("TrySend with view held = %v, want ErrWouldBlock", err)
		}
		v.Release(p)
		v.Release(p) // second Release of a zeroed view: no-op
		if err := sender.TrySend(p, make([]byte, 1000)); err != nil {
			t.Errorf("TrySend after Release = %v", err)
		}
		if _, err := receiver.TryRecv(p); err != nil {
			t.Errorf("TryRecv after Release = %v", err)
		}
		if err := ring.Check(); err != nil {
			t.Error(err)
		}
	})
	e.MustRun()
}

// TestViewTimeMatchesRecv pins the view dequeue to the copying dequeue in
// virtual time: reading in place still pays the full fabric charge.
func TestViewTimeMatchesRecv(t *testing.T) {
	run := func(view bool) sim.Time {
		f, phi := newFabric()
		ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 16})
		sender := ring.Port(phi, cpu.Phi)
		receiver := ring.Port(nil, cpu.Host)
		var at sim.Time
		e := sim.NewEngine()
		e.Spawn("main", 0, func(p *sim.Proc) {
			sender.Send(p, make([]byte, 8192))
			if view {
				v, _ := receiver.RecvView(p)
				v.Release(p)
			} else {
				receiver.Recv(p)
			}
			at = p.Now()
		})
		e.MustRun()
		return at
	}
	copied, viewed := run(false), run(true)
	if copied != viewed {
		t.Fatalf("view dequeue time %v != copy dequeue time %v", viewed, copied)
	}
}

// TestTransportAllocFree is the committed regression gate for the
// transport half of the zero-alloc hot path: with a pooled receive port
// and recycling consumer, a steady-state send -> recv -> recycle cycle
// must not touch the heap. Measured with runtime.MemStats inside the sim
// run (testing.AllocsPerRun cannot re-enter a finished engine).
func TestTransportAllocFree(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64})
	sender := ring.Port(nil, cpu.Host)
	receiver := ring.Port(phi, cpu.Phi)
	receiver.EnablePool()

	msg := make([]byte, 2048)
	var perOp float64
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		for i := 0; i < 64; i++ { // warm the pool and every lazy path
			sender.Send(p, msg)
			b, _ := receiver.Recv(p)
			receiver.Recycle(b)
		}
		const iters = 2000
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			sender.Send(p, msg)
			b, _ := receiver.Recv(p)
			receiver.Recycle(b)
		}
		runtime.ReadMemStats(&after)
		perOp = float64(after.Mallocs-before.Mallocs) / iters
	})
	e.MustRun()
	if perOp != 0 {
		t.Fatalf("steady-state send->recv: %v allocs/op, want 0", perOp)
	}
}
