package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"solros/internal/cpu"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// Property: for any mix of message sizes, update mode, copy mechanism,
// and master placement, every payload arrives exactly once, in order,
// intact.
func TestDeliveryProperty(t *testing.T) {
	type cfg struct {
		Seed      int64
		MasterPhi bool
		Eager     bool
		Mech      uint8
		N         uint8
	}
	f := func(c cfg) bool {
		n := int(c.N)%40 + 1
		rnd := rand.New(rand.NewSource(c.Seed))
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = make([]byte, rnd.Intn(4096)+1)
			rnd.Read(msgs[i])
		}
		fab := pcie.New(128 << 20)
		phi := fab.AddPhi("phi0", 0, 64<<20)
		opt := Options{
			CapBytes: 64 << 10,
			Slots:    32,
			Copy:     pcie.Mech(int(c.Mech) % 3),
		}
		if c.Eager {
			opt.Update = Eager
		}
		var master *pcie.Device
		if c.MasterPhi {
			master = phi
		}
		ring := NewRing(fab, master, opt)
		sp := ring.Port(phi, cpu.Phi)
		rp := ring.Port(nil, cpu.Host)
		ok := true
		e := sim.NewEngine()
		e.Spawn("sender", 0, func(p *sim.Proc) {
			for _, m := range msgs {
				sp.Send(p, m)
			}
		})
		e.Spawn("receiver", 0, func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				got, alive := rp.Recv(p)
				if !alive || !bytes.Equal(got, msgs[i]) {
					ok = false
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		sent, recv, _ := ring.Stats()
		return ok && sent == int64(n) && recv == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property under explored schedules: for every ring geometry and update
// mode, any interleaving the seeded tie-break policy produces of N
// concurrent senders against one batch-dequeuing receiver delivers every
// message exactly once (zero loss, zero duplication) in per-sender FIFO
// order, across many ring wraparounds, with the ring's structural
// invariants (Ring.Check) holding at every receive step.
func TestExploredScheduleDeliveryProperty(t *testing.T) {
	cases := []struct {
		name     string
		slots    int
		capBytes int64
		senders  int
		perSend  int
		batch    int
		eager    bool
		master   bool // master index lives on the co-processor
	}{
		{name: "tiny-wrap", slots: 2, capBytes: 1 << 10, senders: 2, perSend: 24, batch: 1},
		{name: "batched", slots: 8, capBytes: 4 << 10, senders: 3, perSend: 20, batch: 4},
		{name: "eager-updates", slots: 4, capBytes: 2 << 10, senders: 2, perSend: 16, batch: 3, eager: true},
		{name: "master-on-phi", slots: 8, capBytes: 4 << 10, senders: 4, perSend: 12, batch: 8, master: true},
		{name: "byte-bound", slots: 64, capBytes: 1 << 10, senders: 3, perSend: 16, batch: 2},
	}
	const seedsPerCase = 12
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < seedsPerCase; seed++ {
				runDeliveryUnderSeed(t, tc.slots, tc.capBytes, tc.senders, tc.perSend, tc.batch, tc.eager, tc.master, seed)
				if t.Failed() {
					t.Fatalf("failing schedule: seed=%d", seed)
				}
			}
		})
	}
}

func runDeliveryUnderSeed(t *testing.T, slots int, capBytes int64, senders, perSend, batch int, eager, masterPhi bool, seed int64) {
	t.Helper()
	fab := pcie.New(128 << 20)
	phi := fab.AddPhi("phi0", 0, 64<<20)
	opt := Options{CapBytes: capBytes, Slots: slots}
	if eager {
		opt.Update = Eager
	}
	var master *pcie.Device
	if masterPhi {
		master = phi
	}
	ring := NewRing(fab, master, opt)
	rp := ring.Port(nil, cpu.Host)

	total := senders * perSend
	// Message payload: [sender, seq, len pattern...] — enough to detect
	// loss, duplication, reordering, and payload corruption.
	encode := func(sender, seq int) []byte {
		rnd := rand.New(rand.NewSource(seed<<16 ^ int64(sender)<<8 ^ int64(seq)))
		msg := make([]byte, rnd.Intn(200)+2)
		msg[0] = byte(sender)
		msg[1] = byte(seq)
		for i := 2; i < len(msg); i++ {
			msg[i] = byte(rnd.Intn(256))
		}
		return msg
	}

	e := sim.NewEngine()
	e.SetSchedSeed(seed)
	for s := 0; s < senders; s++ {
		sp := ring.Port(phi, cpu.Phi)
		e.Spawn(fmt.Sprintf("sender-%d", s), 0, func(p *sim.Proc) {
			for seq := 0; seq < perSend; seq++ {
				sp.Send(p, encode(s, seq))
			}
		})
	}
	nextSeq := make([]int, senders)
	got := 0
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		for got < total {
			msgs, alive := rp.RecvBatch(p, batch)
			if !alive {
				t.Errorf("seed %d: ring closed after %d/%d messages", seed, got, total)
				return
			}
			if err := ring.Check(); err != nil {
				t.Errorf("seed %d: ring invariant violated mid-run: %v", seed, err)
				return
			}
			for _, m := range msgs {
				sender, seq := int(m[0]), int(m[1])
				if sender >= senders || seq != nextSeq[sender] {
					t.Errorf("seed %d: sender %d delivered seq %d, want %d (loss/dup/reorder)",
						seed, sender, seq, nextSeq[sender])
					return
				}
				if want := encode(sender, seq); !bytes.Equal(m, want) {
					t.Errorf("seed %d: sender %d seq %d payload corrupted", seed, sender, seq)
					return
				}
				nextSeq[sender]++
				got++
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Errorf("seed %d: %v", seed, err)
		return
	}
	if got != total {
		t.Errorf("seed %d: delivered %d, want %d", seed, got, total)
	}
	if sent, recv, _ := ring.Stats(); sent != int64(total) || recv != int64(total) {
		t.Errorf("seed %d: stats sent=%d recv=%d, want %d", seed, sent, recv, total)
	}
	if err := ring.Check(); err != nil {
		t.Errorf("seed %d: ring invariant violated at quiesce: %v", seed, err)
	}
}

func BenchmarkRingSend64B(b *testing.B) {
	fab := pcie.New(128 << 20)
	phi := fab.AddPhi("phi0", 0, 64<<20)
	ring := NewRing(fab, phi, Options{CapBytes: 4 << 20, Slots: 4096})
	sp := ring.Port(phi, cpu.Phi)
	rp := ring.Port(nil, cpu.Host)
	msg := make([]byte, 64)
	b.ResetTimer()
	e := sim.NewEngine()
	e.Spawn("sender", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sp.Send(p, msg)
		}
	})
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, ok := rp.Recv(p); !ok {
				return
			}
		}
	})
	e.MustRun()
}
