package transport

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"solros/internal/cpu"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// Property: for any mix of message sizes, update mode, copy mechanism,
// and master placement, every payload arrives exactly once, in order,
// intact.
func TestDeliveryProperty(t *testing.T) {
	type cfg struct {
		Seed      int64
		MasterPhi bool
		Eager     bool
		Mech      uint8
		N         uint8
	}
	f := func(c cfg) bool {
		n := int(c.N)%40 + 1
		rnd := rand.New(rand.NewSource(c.Seed))
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = make([]byte, rnd.Intn(4096)+1)
			rnd.Read(msgs[i])
		}
		fab := pcie.New(128 << 20)
		phi := fab.AddPhi("phi0", 0, 64<<20)
		opt := Options{
			CapBytes: 64 << 10,
			Slots:    32,
			Copy:     pcie.Mech(int(c.Mech) % 3),
		}
		if c.Eager {
			opt.Update = Eager
		}
		var master *pcie.Device
		if c.MasterPhi {
			master = phi
		}
		ring := NewRing(fab, master, opt)
		sp := ring.Port(phi, cpu.Phi)
		rp := ring.Port(nil, cpu.Host)
		ok := true
		e := sim.NewEngine()
		e.Spawn("sender", 0, func(p *sim.Proc) {
			for _, m := range msgs {
				sp.Send(p, m)
			}
		})
		e.Spawn("receiver", 0, func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				got, alive := rp.Recv(p)
				if !alive || !bytes.Equal(got, msgs[i]) {
					ok = false
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		sent, recv, _ := ring.Stats()
		return ok && sent == int64(n) && recv == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRingSend64B(b *testing.B) {
	fab := pcie.New(128 << 20)
	phi := fab.AddPhi("phi0", 0, 64<<20)
	ring := NewRing(fab, phi, Options{CapBytes: 4 << 20, Slots: 4096})
	sp := ring.Port(phi, cpu.Phi)
	rp := ring.Port(nil, cpu.Host)
	msg := make([]byte, 64)
	b.ResetTimer()
	e := sim.NewEngine()
	e.Spawn("sender", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sp.Send(p, msg)
		}
	})
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, ok := rp.Recv(p); !ok {
				return
			}
		}
	})
	e.MustRun()
}
