package transport

import (
	"bytes"
	"fmt"
	"testing"

	"solros/internal/cpu"
	"solros/internal/pcie"
	"solros/internal/sim"
)

func newFabric() (*pcie.Fabric, *pcie.Device) {
	f := pcie.New(256 << 20)
	phi := f.AddPhi("phi0", 0, 256<<20)
	return f, phi
}

func TestRoundTripIntegrity(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64})
	sender := ring.Port(phi, cpu.Phi)
	receiver := ring.Port(nil, cpu.Host)

	var got [][]byte
	e := sim.NewEngine()
	e.Spawn("phi-sender", 0, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 100+i)
			sender.Send(p, msg)
		}
	})
	e.Spawn("host-receiver", 0, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			msg, _ := receiver.Recv(p)
			got = append(got, msg)
		}
	})
	e.MustRun()
	if len(got) != 20 {
		t.Fatalf("received %d messages, want 20", len(got))
	}
	for i, msg := range got {
		want := bytes.Repeat([]byte{byte(i)}, 100+i)
		if !bytes.Equal(msg, want) {
			t.Fatalf("message %d corrupted: got %d bytes, first=%d", i, len(msg), msg[0])
		}
	}
}

func TestFlowControlBlocksSender(t *testing.T) {
	f, phi := newFabric()
	// Tiny ring: sender must block until receiver drains.
	ring := NewRing(f, phi, Options{CapBytes: 4096, Slots: 4})
	sender := ring.Port(phi, cpu.Phi)
	receiver := ring.Port(nil, cpu.Host)

	const n = 50
	sent, received := 0, 0
	e := sim.NewEngine()
	e.Spawn("sender", 0, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			sender.Send(p, make([]byte, 1024))
			sent++
		}
	})
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Advance(50 * sim.Microsecond) // slow consumer
			if _, ok := receiver.Recv(p); ok {
				received++
			}
		}
	})
	e.MustRun()
	if sent != n || received != n {
		t.Fatalf("sent=%d received=%d, want %d", sent, received, n)
	}
}

func TestTryRecvEmptyWouldBlock(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{})
	port := ring.Port(nil, cpu.Host)
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		if _, err := port.TryRecv(p); err != ErrWouldBlock {
			t.Errorf("err = %v, want ErrWouldBlock", err)
		}
	})
	e.MustRun()
}

func TestTrySendFullWouldBlock(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1024, Slots: 2})
	port := ring.Port(phi, cpu.Phi)
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		for i := 0; ; i++ {
			if err := port.TrySend(p, make([]byte, 256)); err != nil {
				if err != ErrWouldBlock {
					t.Errorf("err = %v, want ErrWouldBlock", err)
				}
				if i == 0 {
					t.Error("ring rejected first message")
				}
				return
			}
			if i > 10 {
				t.Error("ring never filled")
				return
			}
		}
	})
	e.MustRun()
}

// pairThroughput measures messages/sec for a one-way stream of msgSize
// payloads with the given options, master at the Phi (sender side) when
// phiSends, else master at host.
func pairThroughput(t *testing.T, phiSends bool, msgSize int, count int, opt Options) float64 {
	t.Helper()
	f, phi := newFabric()
	opt.CapBytes = 1 << 20
	if int64(4*msgSize) > opt.CapBytes {
		opt.CapBytes = int64(4 * msgSize)
	}
	opt.Slots = 512
	var master *pcie.Device
	if phiSends {
		master = phi // master at sender (§4.2.2 example)
	}
	ring := NewRing(f, master, opt)
	var sp, rp *Port
	if phiSends {
		sp, rp = ring.Port(phi, cpu.Phi), ring.Port(nil, cpu.Host)
	} else {
		sp, rp = ring.Port(nil, cpu.Host), ring.Port(phi, cpu.Phi)
	}
	e := sim.NewEngine()
	e.Spawn("sender", 0, func(p *sim.Proc) {
		msg := make([]byte, msgSize)
		for i := 0; i < count; i++ {
			sp.Send(p, msg)
		}
	})
	var end sim.Time
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			if _, ok := rp.Recv(p); !ok {
				t.Error("ring closed unexpectedly")
				return
			}
		}
		end = p.Now()
	})
	e.MustRun()
	return float64(count) / end.Seconds()
}

func TestLazyBeatsEagerBothDirections(t *testing.T) {
	// Figure 9: lazy control-variable replication improves throughput in
	// both directions, dramatically when the fast host does the remote
	// polling (Phi->Host), modestly the other way.
	for _, phiSends := range []bool{true, false} {
		lazy := pairThroughput(t, phiSends, 64, 2000, Options{Update: Lazy})
		eager := pairThroughput(t, phiSends, 64, 2000, Options{Update: Eager})
		name := "host->phi"
		if phiSends {
			name = "phi->host"
		}
		if lazy <= eager {
			t.Errorf("%s: lazy (%.0f ops/s) should beat eager (%.0f ops/s)", name, lazy, eager)
		}
		t.Logf("%s: lazy=%.0f eager=%.0f ops/s (%.2fx)", name, lazy, eager, lazy/eager)
	}
}

func TestAdaptiveCopyNearBestOfBoth(t *testing.T) {
	// Figure 10: memcpy wins small, DMA wins large, adaptive tracks the
	// winner at both extremes.
	for _, size := range []int{512, 4 << 20} {
		mem := pairThroughput(t, true, size, 50, Options{Copy: pcie.Memcpy})
		dma := pairThroughput(t, true, size, 50, Options{Copy: pcie.DMA})
		ad := pairThroughput(t, true, size, 50, Options{Copy: pcie.Adaptive})
		best := mem
		if dma > best {
			best = dma
		}
		if ad < best*0.9 {
			t.Errorf("size %d: adaptive %.0f ops/s below best fixed %.0f", size, ad, best)
		}
	}
	// Crossover direction checks.
	memS := pairThroughput(t, true, 512, 200, Options{Copy: pcie.Memcpy})
	dmaS := pairThroughput(t, true, 512, 200, Options{Copy: pcie.DMA})
	if memS <= dmaS {
		t.Errorf("512B: memcpy (%.0f) should beat DMA (%.0f)", memS, dmaS)
	}
	memL := pairThroughput(t, true, 4<<20, 20, Options{Copy: pcie.Memcpy})
	dmaL := pairThroughput(t, true, 4<<20, 20, Options{Copy: pcie.DMA})
	if dmaL <= memL {
		t.Errorf("4MB: DMA (%.0f) should beat memcpy (%.0f)", dmaL, memL)
	}
}

func TestWrapAroundManyMessages(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 8192, Slots: 8})
	sp := ring.Port(phi, cpu.Phi)
	rp := ring.Port(nil, cpu.Host)
	const n = 500
	e := sim.NewEngine()
	e.Spawn("s", 0, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			size := 64 + (i*37)%1900
			msg := bytes.Repeat([]byte{byte(i % 251)}, size)
			sp.Send(p, msg)
		}
	})
	e.Spawn("r", 0, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			msg, _ := rp.Recv(p)
			size := 64 + (i*37)%1900
			if len(msg) != size {
				t.Fatalf("msg %d: len=%d want %d", i, len(msg), size)
			}
			for _, b := range msg {
				if b != byte(i%251) {
					t.Fatalf("msg %d corrupted", i)
				}
			}
		}
	})
	e.MustRun()
	sent, recv, _ := ring.Stats()
	if sent != n || recv != n {
		t.Fatalf("stats sent=%d recv=%d want %d", sent, recv, n)
	}
}

func TestConcurrentSendersFIFOPerMessage(t *testing.T) {
	// Multiple Phi threads send; a host dispatcher receives everything.
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1 << 18, Slots: 256})
	rp := ring.Port(nil, cpu.Host)
	const senders, per = 8, 100
	e := sim.NewEngine()
	for s := 0; s < senders; s++ {
		s := s
		sp := ring.Port(phi, cpu.Phi)
		e.Spawn(fmt.Sprintf("sender%d", s), 0, func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				msg := []byte{byte(s), byte(i)}
				sp.Send(p, msg)
			}
		})
	}
	seen := map[[2]byte]bool{}
	e.Spawn("recv", 0, func(p *sim.Proc) {
		for i := 0; i < senders*per; i++ {
			m, _ := rp.Recv(p)
			key := [2]byte{m[0], m[1]}
			if seen[key] {
				t.Fatalf("duplicate message %v", key)
			}
			seen[key] = true
		}
	})
	e.MustRun()
	if len(seen) != senders*per {
		t.Fatalf("received %d unique messages, want %d", len(seen), senders*per)
	}
}

func TestMasterPlacementMatters(t *testing.T) {
	// §4.2.2: placing the master at the co-processor lets the slow Phi
	// operate on local memory while the fast host crosses the bus. For a
	// Phi->host stream, master-at-Phi should beat master-at-host.
	const n, size = 1000, 64
	run := func(master bool) float64 {
		f, phi := newFabric()
		var m *pcie.Device
		if master {
			m = phi
		}
		ring := NewRing(f, m, Options{CapBytes: 1 << 20, Slots: 512})
		sp := ring.Port(phi, cpu.Phi)
		rp := ring.Port(nil, cpu.Host)
		var end sim.Time
		e := sim.NewEngine()
		e.Spawn("s", 0, func(p *sim.Proc) {
			msg := make([]byte, size)
			for i := 0; i < n; i++ {
				sp.Send(p, msg)
			}
		})
		e.Spawn("r", 0, func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				rp.Recv(p)
			}
			end = p.Now()
		})
		e.MustRun()
		return float64(n) / end.Seconds()
	}
	atPhi := run(true)
	atHost := run(false)
	if atPhi <= atHost {
		t.Errorf("master at Phi (%.0f ops/s) should beat master at host (%.0f ops/s) for phi->host stream", atPhi, atHost)
	}
}

func TestTryRecvBatchOrderAndPartial(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64, Batch: 8})
	sender := ring.Port(phi, cpu.Phi)
	receiver := ring.Port(nil, cpu.Host)
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		if _, err := receiver.TryRecvBatch(p, 0); err != ErrWouldBlock {
			t.Errorf("empty ring: err = %v, want ErrWouldBlock", err)
		}
		// Fewer ready than Batch: drain all five in one call, in FIFO order.
		for i := 0; i < 5; i++ {
			sender.Send(p, []byte{byte(i)})
		}
		msgs, err := receiver.TryRecvBatch(p, 0)
		if err != nil || len(msgs) != 5 {
			t.Fatalf("partial batch: got %d msgs err=%v, want 5 nil", len(msgs), err)
		}
		for i, m := range msgs {
			if len(m) != 1 || m[0] != byte(i) {
				t.Fatalf("msg %d = %v, out of order", i, m)
			}
		}
		// max caps the drain; the remainder stays queued for the next call.
		for i := 0; i < 6; i++ {
			sender.Send(p, []byte{byte(10 + i)})
		}
		msgs, err = receiver.TryRecvBatch(p, 4)
		if err != nil || len(msgs) != 4 || msgs[0][0] != 10 || msgs[3][0] != 13 {
			t.Fatalf("capped batch: got %d msgs err=%v first/last=%v", len(msgs), err, msgs)
		}
		msgs, err = receiver.TryRecvBatch(p, 4)
		if err != nil || len(msgs) != 2 || msgs[0][0] != 14 || msgs[1][0] != 15 {
			t.Fatalf("remainder: got %d msgs err=%v", len(msgs), err)
		}
	})
	e.MustRun()
}

func TestRecvBatchDrainsAfterClose(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64, Batch: 8})
	sender := ring.Port(phi, cpu.Phi)
	receiver := ring.Port(nil, cpu.Host)
	e := sim.NewEngine()
	e.Spawn("p", 0, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			sender.Send(p, []byte{byte(i)})
		}
		sender.Close(p)
		msgs, ok := receiver.RecvBatch(p, 0)
		if !ok || len(msgs) != 3 {
			t.Fatalf("after close: got %d msgs ok=%v, want queued 3 true", len(msgs), ok)
		}
		if msgs, ok = receiver.RecvBatch(p, 0); ok {
			t.Fatalf("drained closed ring returned ok with %d msgs", len(msgs))
		}
	})
	e.MustRun()
}

func TestRecvBatchBlocksUntilData(t *testing.T) {
	f, phi := newFabric()
	ring := NewRing(f, phi, Options{CapBytes: 1 << 16, Slots: 64, Batch: 8})
	sender := ring.Port(phi, cpu.Phi)
	receiver := ring.Port(nil, cpu.Host)
	var arrived sim.Time
	e := sim.NewEngine()
	e.Spawn("sender", 0, func(p *sim.Proc) {
		p.Advance(100 * sim.Microsecond)
		sender.Send(p, []byte{42})
	})
	e.Spawn("receiver", 0, func(p *sim.Proc) {
		msgs, ok := receiver.RecvBatch(p, 0)
		if !ok || len(msgs) != 1 || msgs[0][0] != 42 {
			t.Errorf("got %v ok=%v, want [[42]] true", msgs, ok)
		}
		arrived = p.Now()
	})
	e.MustRun()
	if arrived < 100*sim.Microsecond {
		t.Fatalf("receiver returned at %v, before the send at 100us", arrived)
	}
}
