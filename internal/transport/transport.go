// Package transport implements the Solros transport service (§4.2): a
// master/shadow ring buffer over the PCIe fabric. The master ring allocates
// real storage in one endpoint's memory; the shadow endpoint reaches it
// through the system-mapped PCIe window, paying fabric costs for every
// control-variable access and data copy.
//
// Three of the paper's design decisions are switchable so their effect can
// be measured (Figures 9 and 10):
//
//   - control-variable replication: Lazy (replicate head/tail, flush once
//     per combine batch) vs Eager (single copy in master memory, every
//     shadow-side operation crosses PCIe);
//   - copy mechanism: Memcpy, DMA, or Adaptive (size-dependent);
//   - master placement: at either endpoint.
//
// The ring runs inside the sim virtual-time kernel; real payload bytes move
// through the master memory region.
package transport

import (
	"errors"
	"fmt"

	"solros/internal/bufpool"
	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// ErrWouldBlock mirrors EWOULDBLOCK from the paper's API: the ring is full
// (enqueue) or has no ready element (dequeue).
var ErrWouldBlock = errors.New("transport: operation would block")

// ErrClosed is returned by TrySend once the ring has been closed.
var ErrClosed = errors.New("transport: ring closed")

// FaultInjector is the ring's hook into a fault plan (consumer-side
// interface; implemented by internal/faults). RingSendDrop is consulted on
// every send to a lossy-marked ring — true silently discards the message,
// so only an end-to-end retry recovers it. RingRecvStall is consulted on
// every dequeue attempt and returns extra latency to charge.
type FaultInjector interface {
	RingSendDrop(p *sim.Proc) bool
	RingRecvStall(p *sim.Proc) sim.Time
}

// UpdateMode selects how the ring's head/tail control variables are kept
// coherent across the PCIe bus (§4.2.4).
type UpdateMode int

const (
	// Lazy replicates control variables on both sides; the replica is
	// refreshed only when the ring appears full/empty and flushed once
	// per combining batch.
	Lazy UpdateMode = iota
	// Eager keeps a single copy in master memory; every shadow-side
	// operation issues PCIe transactions to read and update them.
	Eager
)

func (m UpdateMode) String() string {
	if m == Lazy {
		return "lazy"
	}
	return "eager"
}

// Options configures a Ring.
type Options struct {
	// CapBytes is the payload capacity. Default 1 MB.
	CapBytes int64
	// Slots bounds the element count. Default model.RingDefaultSlots.
	Slots int
	// Update selects control-variable handling. Default Lazy.
	Update UpdateMode
	// Copy selects the data-copy mechanism. Default Adaptive.
	Copy pcie.Mech
	// Batch is the combining batch size. Default model.CombineBatch.
	Batch int
	// BugReadyBeforeCopy is a TEST-ONLY hook that reintroduces the
	// ordering bug the three-phase protocol exists to prevent: the sender
	// publishes an element's ready flag before the payload copy completes,
	// so a receiver (or the ring oracle) can observe a ready slot whose
	// bytes are still in flight. Used to prove the explorer catches it.
	BugReadyBeforeCopy bool
}

func (o *Options) fill() {
	if o.CapBytes == 0 {
		o.CapBytes = 1 << 20
	}
	if o.Slots == 0 {
		o.Slots = model.RingDefaultSlots
	}
	if o.Batch == 0 {
		o.Batch = model.CombineBatch
	}
}

// entry is one element's metadata. All access is serialized by the sim
// kernel; costs for remote visibility are charged explicitly.
type entry struct {
	size  int
	off   int64
	alloc int64
	state uint32 // slotFree..slotDone, same lifecycle as package ringbuf
	// copied records that the payload copy into master memory finished;
	// the ring invariant "ready implies copied" is what makes the
	// published flag safe to act on (§4.1's decoupled publish).
	copied bool
}

const (
	entFree uint32 = iota
	entReserved
	entReady
	entTaken
	entDone
)

// side tracks the per-endpoint combining and replication state.
type side struct {
	lock       *sim.Lock
	opsInBatch int
}

// Ring is a master/shadow ring buffer over PCIe.
type Ring struct {
	fabric *pcie.Fabric
	// masterDev is where the storage lives; nil means host RAM.
	masterDev *pcie.Device
	base      int64 // offset of the payload region in master memory
	capBytes  int64
	opt       Options

	entries  []entry
	nslots   uint64
	tailSlot uint64
	headSlot uint64
	freeSlot uint64
	tailByte int64
	freeByte int64

	enq side
	deq side

	spaceCond *sim.Cond
	dataCond  *sim.Cond

	closed bool

	// inj, when set, perturbs ring operations; lossy additionally arms
	// message drops (only meaningful under an end-to-end retry story).
	inj   FaultInjector
	lossy bool

	// stats
	sent, received int64
	sentBytes      int64

	// inflightSend/inflightRecv count copy phases in progress outside the
	// combiner locks; the ring is quiescent for oracle purposes only when
	// both are zero and neither combiner is held.
	inflightSend int
	inflightRecv int

	// last* remember the cursors seen by the previous Check call so the
	// oracle can assert monotonicity across observations.
	lastFree, lastHead, lastTail uint64

	// telemetry handles (nil-safe no-ops when the fabric has no sink)
	tel          *telemetry.Sink
	telSent      *telemetry.Counter
	telReceived  *telemetry.Counter
	telSentBytes *telemetry.Counter
	telSendBlock *telemetry.Counter
	telRecvBlock *telemetry.Counter
	telCombine   *telemetry.Hist
	telBatchOut  *telemetry.Hist
	telOccupancy *telemetry.Gauge
	telQueue     *telemetry.Queue
}

// NewRing allocates a ring whose master storage lives on masterDev (nil =
// host RAM) of the given fabric.
func NewRing(f *pcie.Fabric, masterDev *pcie.Device, opt Options) *Ring {
	opt.fill()
	mem := f.HostRAM
	if masterDev != nil {
		mem = masterDev.Mem
	}
	r := &Ring{
		fabric:    f,
		masterDev: masterDev,
		base:      mem.Alloc(opt.CapBytes),
		capBytes:  opt.CapBytes,
		opt:       opt,
		entries:   make([]entry, opt.Slots),
		nslots:    uint64(opt.Slots),
		spaceCond: sim.NewCond("ring-space"),
		dataCond:  sim.NewCond("ring-data"),
	}
	r.enq.lock = sim.NewLock("ring-enq")
	r.deq.lock = sim.NewLock("ring-deq")
	if tel := f.Telemetry(); tel != nil {
		r.tel = tel
		r.telSent = tel.Counter("transport.sent")
		r.telReceived = tel.Counter("transport.received")
		r.telSentBytes = tel.Counter("transport.sent_bytes")
		r.telSendBlock = tel.Counter("transport.send_wouldblock")
		r.telRecvBlock = tel.Counter("transport.recv_wouldblock")
		r.telCombine = tel.HistogramN("transport.combine_batch")
		r.telBatchOut = tel.HistogramN("transport.recv_batch_size")
		r.telOccupancy = tel.Gauge("transport.ring_occupancy")
		r.telQueue = tel.Queue("transport.ring")
	}
	return r
}

// Port is one endpoint's handle on the ring: the device the accessing code
// runs on (nil = host) and its core kind determine every fabric charge.
type Port struct {
	ring *Ring
	dev  *pcie.Device
	kind cpu.Kind

	// pool, when enabled, recycles receive buffers through a per-port
	// free list: the Recv family checks buffers out and the consumer
	// checks them back in with Recycle once decoded. A buffer that is
	// never recycled is ordinary garbage — pooling changes allocation
	// rates, never correctness — so multiple serve workers sharing one
	// port need no coordination beyond the sim kernel's serialization.
	pool *bufpool.Pool
}

// Port returns an endpoint handle for code running on dev (nil = host)
// with the given core kind.
func (r *Ring) Port(dev *pcie.Device, kind cpu.Kind) *Port {
	return &Port{ring: r, dev: dev, kind: kind}
}

// Ring returns the port's underlying ring.
func (pt *Port) Ring() *Ring { return pt.ring }

// EnablePool turns on receive-buffer pooling for this port.
func (pt *Port) EnablePool() {
	if pt.pool == nil {
		pt.pool = new(bufpool.Pool)
	}
}

// Recycle returns a buffer handed out by this port's Recv family to the
// pool; a no-op when pooling is off (or for a nil buffer), so consumers
// can call it unconditionally.
func (pt *Port) Recycle(buf []byte) {
	if pt.pool != nil {
		pt.pool.Put(buf)
	}
}

// PoolStats reports the receive pool's checkout count and how many
// checkouts had to allocate; zeros when pooling is off.
func (pt *Port) PoolStats() (gets, news int64) {
	if pt.pool == nil {
		return 0, 0
	}
	return pt.pool.Stats()
}

// getBuf checks a length-n receive buffer out of the pool, or allocates
// one when pooling is off.
func (pt *Port) getBuf(n int) []byte {
	if pt.pool != nil {
		return pt.pool.Get(n)
	}
	return make([]byte, n)
}

// mem returns the memory region holding the ring's master storage.
func (r *Ring) mem() *pcie.Memory {
	if r.masterDev != nil {
		return r.masterDev.Mem
	}
	return r.fabric.HostRAM
}

// SetInjector installs a plan-driven fault injector. lossy additionally
// arms send drops; set it only for rings whose callers retry end to end
// (RPC request/response rings under deadlines), or messages vanish for
// good. nil disables injection.
func (r *Ring) SetInjector(inj FaultInjector, lossy bool) {
	r.inj = inj
	r.lossy = lossy && inj != nil
}

// recvStall charges any injected dequeue stall.
func (r *Ring) recvStall(p *sim.Proc) {
	if r.inj == nil {
		return
	}
	if d := r.inj.RingRecvStall(p); d > 0 {
		p.Advance(d)
	}
}

// isMaster reports whether this port accesses the ring's storage locally.
func (pt *Port) isMaster() bool { return pt.dev == pt.ring.masterDev }

// remoteTxn charges one PCIe transaction if the port is the shadow side;
// master-side control accesses are local and free.
func (pt *Port) remoteTxn(p *sim.Proc) {
	if !pt.isMaster() {
		pt.ring.fabric.Txn(p, pt.kind)
	}
}

// combineEnter models taking a slot in the combining queue: one local
// atomic swap plus, if contended, a cache-line bounce.
func combineEnter(p *sim.Proc, s *side) {
	p.Advance(model.AtomicLocalCost)
	if s.lock.Held() {
		p.Advance(model.CachelineBounceCost)
	}
	p.Acquire(s.lock)
	s.opsInBatch++
}

// combineExit releases the combiner slot, flushing replicated control
// variables once per batch in Lazy mode (1 PCIe txn when remote).
func (pt *Port) combineExit(p *sim.Proc, s *side, batch int) {
	if pt.ring.opt.Update == Lazy && s.opsInBatch >= batch {
		pt.ring.telCombine.ObserveAt(p, sim.Time(s.opsInBatch))
		s.opsInBatch = 0
		pt.remoteTxn(p) // push original value to the remote replica
	}
	p.Release(s.lock)
}

// TrySend enqueues msg without blocking; ErrWouldBlock when the ring is
// full. The sequence models the paper's three-phase API: reserve under the
// combiner, copy outside it, publish.
func (pt *Port) TrySend(p *sim.Proc, msg []byte) error {
	return pt.trySendVec(p, msg, nil)
}

// TrySendVec enqueues the concatenation of hdr and payload as ONE message
// without joining them first — the writev of the zero-alloc hot path. The
// two slices gather-copy straight into the reserved ring slot, charged as
// a single transfer of the combined size, so the cost (and the receiver's
// view) is byte-identical to TrySend(hdr+payload) minus the staging
// buffer.
func (pt *Port) TrySendVec(p *sim.Proc, hdr, payload []byte) error {
	return pt.trySendVec(p, hdr, payload)
}

// SendVec blocks until the two-slice message is enqueued; same close and
// panic semantics as Send.
func (pt *Port) SendVec(p *sim.Proc, hdr, payload []byte) {
	for {
		err := pt.trySendVec(p, hdr, payload)
		if err == nil || err == ErrClosed {
			return
		}
		if err != ErrWouldBlock {
			panic("transport: " + err.Error())
		}
		if pt.ring.closed {
			return
		}
		p.Wait(pt.ring.spaceCond)
	}
}

func (pt *Port) trySendVec(p *sim.Proc, msg, payload []byte) error {
	r := pt.ring
	if r.closed {
		return ErrClosed
	}
	size := len(msg) + len(payload)
	need := (int64(size) + 7) &^ 7
	if need > r.capBytes {
		return errors.New("transport: message larger than ring")
	}
	if r.lossy && r.inj.RingSendDrop(p) {
		// The message vanishes without being enqueued; the sender sees a
		// successful send, so only an end-to-end retry recovers it.
		return nil
	}
	sp := r.tel.Start(p, "transport.send")
	sp.TagInt("bytes", int64(size))
	cs := r.tel.Start(p, "transport.combine")
	combineEnter(p, &r.enq)
	if r.opt.Update == Eager {
		// Read head and update tail across the bus every time.
		pt.remoteTxn(p)
		pt.remoteTxn(p)
	}
	ent, ok := r.reserve(size, need)
	if !ok {
		// Ring looks full: Lazy mode refreshes the head replica from
		// the remote original and retries once (§4.2.4).
		if r.opt.Update == Lazy {
			pt.remoteTxn(p)
			r.reclaim()
			ent, ok = r.reserve(size, need)
		}
		if !ok {
			pt.combineExit(p, &r.enq, r.opt.Batch)
			cs.End(p)
			r.telSendBlock.Add(1)
			sp.Tag("result", "wouldblock")
			sp.End(p)
			return ErrWouldBlock
		}
	}
	pt.combineExit(p, &r.enq, r.opt.Batch)
	cs.End(p)

	// Copy payload into master memory (outside the combiner, so copies
	// from concurrent senders overlap).
	r.inflightSend++
	loc := pcie.Loc{Dev: r.masterDev, Off: r.base + ent.off}
	if r.opt.BugReadyBeforeCopy {
		// Deliberately wrong order (see Options.BugReadyBeforeCopy).
		ent.state = entReady
		pt.copyIn(p, loc, msg, payload)
		ent.copied = true
	} else {
		pt.copyIn(p, loc, msg, payload)
		// Publish: mark ready. Remote publication rides on the copy's last
		// transaction (write-combined header), so no extra charge.
		ent.copied = true
		ent.state = entReady
	}
	r.inflightSend--
	r.sent++
	r.sentBytes += int64(size)
	r.telSent.Add(1)
	r.telSentBytes.Add(int64(size))
	r.telOccupancy.Set(int64(r.Len()))
	r.telQueue.Arrive(p)
	sp.End(p)
	p.Signal(r.dataCond)
	return nil
}

// copyIn moves one message (optionally gathered from two slices) into
// master memory at loc.
func (pt *Port) copyIn(p *sim.Proc, loc pcie.Loc, msg, payload []byte) {
	r := pt.ring
	if payload == nil {
		r.fabric.CopyIn(p, pt.dev, pt.kind, loc, msg, r.opt.Copy)
		return
	}
	r.fabric.CopyInVec(p, pt.dev, pt.kind, loc, msg, payload, r.opt.Copy)
}

// Send blocks until msg is enqueued. Messages sent to a closed ring are
// silently dropped (the peer is being torn down). Send panics on
// non-retryable errors (message larger than the ring), which indicate a
// mis-sized channel.
func (pt *Port) Send(p *sim.Proc, msg []byte) {
	for {
		err := pt.TrySend(p, msg)
		if err == nil || err == ErrClosed {
			return
		}
		if err != ErrWouldBlock {
			panic("transport: " + err.Error())
		}
		if pt.ring.closed {
			return
		}
		p.Wait(pt.ring.spaceCond)
	}
}

// TryRecv dequeues the oldest ready element without blocking, returning
// its payload; ErrWouldBlock if none is ready.
func (pt *Port) TryRecv(p *sim.Proc) ([]byte, error) {
	r := pt.ring
	r.recvStall(p)
	sp := r.tel.Start(p, "transport.recv")
	cs := r.tel.Start(p, "transport.combine")
	combineEnter(p, &r.deq)
	if r.opt.Update == Eager {
		pt.remoteTxn(p)
		pt.remoteTxn(p)
	}
	ent, ok := r.take()
	if !ok && r.opt.Update == Lazy {
		// Refresh the tail replica and retry (poll across the bus).
		pt.remoteTxn(p)
		ent, ok = r.take()
	}
	pt.combineExit(p, &r.deq, r.opt.Batch)
	cs.End(p)
	if !ok {
		r.telRecvBlock.Add(1)
		sp.Tag("result", "wouldblock")
		sp.End(p)
		return nil, ErrWouldBlock
	}

	r.inflightRecv++
	buf := pt.getBuf(ent.size)
	loc := pcie.Loc{Dev: r.masterDev, Off: r.base + ent.off}
	r.fabric.CopyOut(p, pt.dev, pt.kind, loc, buf, r.opt.Copy)
	r.inflightRecv--

	ent.state = entDone
	r.received++
	r.telReceived.Add(1)
	r.telOccupancy.Set(int64(r.Len()))
	r.telQueue.Depart(p)
	sp.TagInt("bytes", int64(ent.size))
	sp.End(p)
	p.Signal(r.spaceCond)
	return buf, nil
}

// TryRecvBatch dequeues up to max ready elements (capped at Options.Batch;
// max <= 0 means a full batch) in arrival order, under ONE combiner
// acquisition and — in Lazy mode — at most one control-variable refresh
// and one deferred flush. TryRecv pays those costs per element; draining k
// elements here amortizes them k ways, which is the dequeue-side analogue
// of the paper's combining argument (§4.2). Returns ErrWouldBlock when
// nothing is ready.
func (pt *Port) TryRecvBatch(p *sim.Proc, max int) ([][]byte, error) {
	return pt.TryRecvBatchInto(p, max, nil)
}

// batchPass bounds how many elements one combining pass handles with
// stack-side bookkeeping; larger drains fall back to a heap vector.
const batchPass = 64

// TryRecvBatchInto is TryRecvBatch with a caller-owned destination: the
// dequeued payloads are appended to dst (reusing its backing array), so a
// serve loop that keeps a per-worker scratch [][]byte drains whole batches
// without allocating the vector. On ErrWouldBlock dst is returned
// unchanged.
func (pt *Port) TryRecvBatchInto(p *sim.Proc, max int, dst [][]byte) ([][]byte, error) {
	r := pt.ring
	if max <= 0 || max > r.opt.Batch {
		max = r.opt.Batch
	}
	r.recvStall(p)
	sp := r.tel.Start(p, "transport.recv_batch")
	cs := r.tel.Start(p, "transport.combine")
	combineEnter(p, &r.deq)
	if r.opt.Update == Eager {
		pt.remoteTxn(p)
		pt.remoteTxn(p)
	}
	var entsArr [batchPass]*entry
	ents := entsArr[:0]
	if max > batchPass {
		ents = make([]*entry, 0, max)
	}
	for len(ents) < max {
		ent, ok := r.take()
		if !ok {
			if len(ents) == 0 && r.opt.Update == Lazy {
				// Refresh the tail replica once and retry (poll across
				// the bus) — never again mid-batch: whatever became
				// visible is what this batch drains.
				pt.remoteTxn(p)
				if ent, ok = r.take(); ok {
					ents = append(ents, ent)
					continue
				}
			}
			break
		}
		ents = append(ents, ent)
	}
	// The drain counts as len(ents) combining ops that shared one pass;
	// credit the extras so Lazy keeps its flush-once-per-Batch cadence.
	if len(ents) > 1 {
		r.deq.opsInBatch += len(ents) - 1
	}
	pt.combineExit(p, &r.deq, r.opt.Batch)
	cs.End(p)
	if len(ents) == 0 {
		r.telRecvBlock.Add(1)
		sp.Tag("result", "wouldblock")
		sp.End(p)
		return dst, ErrWouldBlock
	}

	r.inflightRecv++
	msgs := dst
	var payload int64
	for _, ent := range ents {
		buf := pt.getBuf(ent.size)
		loc := pcie.Loc{Dev: r.masterDev, Off: r.base + ent.off}
		r.fabric.CopyOut(p, pt.dev, pt.kind, loc, buf, r.opt.Copy)
		ent.state = entDone
		payload += int64(ent.size)
		msgs = append(msgs, buf)
	}
	r.inflightRecv--
	n := int64(len(ents))
	r.received += n
	r.telReceived.Add(n)
	r.telBatchOut.ObserveAt(p, sim.Time(n))
	r.telOccupancy.Set(int64(r.Len()))
	r.telQueue.DepartN(p, n)
	sp.TagInt("count", n)
	sp.TagInt("bytes", payload)
	sp.End(p)
	p.Broadcast(r.spaceCond)
	return msgs, nil
}

// RecvBatch blocks until at least one element is available, then drains up
// to max ready elements (see TryRecvBatch); ok is false once the ring is
// closed and drained. Elements enqueued before Close remain receivable.
func (pt *Port) RecvBatch(p *sim.Proc, max int) ([][]byte, bool) {
	for {
		msgs, err := pt.TryRecvBatch(p, max)
		if err == nil {
			return msgs, true
		}
		if pt.ring.closed {
			return nil, false
		}
		p.Wait(pt.ring.dataCond)
	}
}

// RecvBatchInto is RecvBatch with a caller-owned destination slice (see
// TryRecvBatchInto); blocks until at least one element is appended, ok is
// false once the ring is closed and drained.
func (pt *Port) RecvBatchInto(p *sim.Proc, max int, dst [][]byte) ([][]byte, bool) {
	for {
		msgs, err := pt.TryRecvBatchInto(p, max, dst)
		if err == nil {
			return msgs, true
		}
		if pt.ring.closed {
			return dst, false
		}
		p.Wait(pt.ring.dataCond)
	}
}

// SendBatch enqueues every message in msgs in order, blocking for space as
// needed. Up to batchPass messages are reserved under ONE combiner
// acquisition with one Lazy flush (or one Eager head/tail transaction
// pair) and ONE receiver wakeup — k replies cost one doorbell instead of
// k, the enqueue-side analogue of TryRecvBatch's combining amortization.
// Messages sent to a closed ring are silently dropped, like Send; an
// oversized message panics, like Send.
func (pt *Port) SendBatch(p *sim.Proc, msgs [][]byte) {
	if pt.ring.lossy {
		// Fault-armed rings keep the per-message path so injected drop
		// decisions land exactly as they would under Send.
		for _, m := range msgs {
			pt.Send(p, m)
		}
		return
	}
	for len(msgs) > 0 {
		n := pt.trySendBatch(p, msgs)
		msgs = msgs[n:]
		if len(msgs) == 0 || pt.ring.closed {
			return
		}
		if n == 0 {
			p.Wait(pt.ring.spaceCond)
		}
	}
}

// trySendBatch enqueues a prefix of msgs under one combining pass and
// returns how many messages it consumed (0 = ring full, caller waits).
func (pt *Port) trySendBatch(p *sim.Proc, msgs [][]byte) int {
	r := pt.ring
	if r.closed {
		return len(msgs)
	}
	if len(msgs) > batchPass {
		msgs = msgs[:batchPass]
	}
	for _, m := range msgs {
		if (int64(len(m))+7)&^7 > r.capBytes {
			panic("transport: message larger than ring")
		}
	}
	sp := r.tel.Start(p, "transport.send_batch")
	cs := r.tel.Start(p, "transport.combine")
	combineEnter(p, &r.enq)
	if r.opt.Update == Eager {
		// One head-read/tail-update pair covers the whole pass: the
		// coalesced doorbell this API exists for.
		pt.remoteTxn(p)
		pt.remoteTxn(p)
	}
	var ents [batchPass]*entry
	k := 0
	for _, m := range msgs {
		need := (int64(len(m)) + 7) &^ 7
		ent, ok := r.reserve(len(m), need)
		if !ok && k == 0 && r.opt.Update == Lazy {
			// Ring looks full at the start of the pass: refresh the head
			// replica once and retry, as TrySend does.
			pt.remoteTxn(p)
			r.reclaim()
			ent, ok = r.reserve(len(m), need)
		}
		if !ok {
			break
		}
		ents[k] = ent
		k++
	}
	// k reservations shared one combining pass; credit the extras so Lazy
	// keeps its flush-once-per-Batch cadence.
	if k > 1 {
		r.enq.opsInBatch += k - 1
	}
	pt.combineExit(p, &r.enq, r.opt.Batch)
	cs.End(p)
	if k == 0 {
		r.telSendBlock.Add(1)
		sp.Tag("result", "wouldblock")
		sp.End(p)
		return 0
	}

	// Copy payloads into master memory outside the combiner, publishing
	// each element as its copy lands (receivers may start draining the
	// early ones while later copies are still in flight).
	r.inflightSend++
	var payload int64
	for i := 0; i < k; i++ {
		ent, m := ents[i], msgs[i]
		loc := pcie.Loc{Dev: r.masterDev, Off: r.base + ent.off}
		r.fabric.CopyIn(p, pt.dev, pt.kind, loc, m, r.opt.Copy)
		ent.copied = true
		ent.state = entReady
		payload += int64(len(m))
	}
	r.inflightSend--
	r.sent += int64(k)
	r.sentBytes += payload
	r.telSent.Add(int64(k))
	r.telSentBytes.Add(payload)
	r.telOccupancy.Set(int64(r.Len()))
	r.telQueue.ArriveN(p, int64(k))
	sp.TagInt("count", int64(k))
	sp.TagInt("bytes", payload)
	sp.End(p)
	p.Broadcast(r.dataCond)
	return k
}

// View is a borrowed slice of ring master memory: a dequeued element's
// payload read in place, with no copy-out buffer and no allocation. Data
// stays valid until Release, which retires the element so the ring can
// reclaim its bytes. The fabric charge is identical to TryRecv — the
// receiver still reads every byte across the bus — only heap traffic
// differs.
type View struct {
	Data []byte
	ent  *entry
	pt   *Port
}

// Release retires the viewed element, making its slot reclaimable and
// waking one blocked sender. Releasing a zero View is a no-op; a double
// Release panics.
func (v *View) Release(p *sim.Proc) {
	if v.ent == nil {
		return
	}
	if v.ent.state != entTaken {
		panic("transport: View released twice")
	}
	v.ent.state = entDone
	p.Signal(v.pt.ring.spaceCond)
	v.ent = nil
	v.Data = nil
}

// TryRecvView dequeues the oldest ready element as a borrowed view of
// master memory instead of copying it out; ErrWouldBlock if none is
// ready. The element's bytes are not reclaimable until the view is
// Released, so holding many views narrows the ring.
func (pt *Port) TryRecvView(p *sim.Proc) (View, error) {
	r := pt.ring
	r.recvStall(p)
	sp := r.tel.Start(p, "transport.recv")
	cs := r.tel.Start(p, "transport.combine")
	combineEnter(p, &r.deq)
	if r.opt.Update == Eager {
		pt.remoteTxn(p)
		pt.remoteTxn(p)
	}
	ent, ok := r.take()
	if !ok && r.opt.Update == Lazy {
		pt.remoteTxn(p)
		ent, ok = r.take()
	}
	pt.combineExit(p, &r.deq, r.opt.Batch)
	cs.End(p)
	if !ok {
		r.telRecvBlock.Add(1)
		sp.Tag("result", "wouldblock")
		sp.End(p)
		return View{}, ErrWouldBlock
	}

	// Charge reading the payload across the fabric without moving it into
	// a local buffer; the consumer decodes the master slice in place.
	r.inflightRecv++
	loc := pcie.Loc{Dev: r.masterDev, Off: r.base + ent.off}
	r.fabric.ChargeOut(p, pt.dev, pt.kind, loc, int64(ent.size), r.opt.Copy)
	r.inflightRecv--

	r.received++
	r.telReceived.Add(1)
	r.telOccupancy.Set(int64(r.Len()))
	r.telQueue.Depart(p)
	sp.TagInt("bytes", int64(ent.size))
	sp.End(p)
	return View{Data: r.mem().Slice(r.base+ent.off, int64(ent.size)), ent: ent, pt: pt}, nil
}

// RecvView blocks until an element is available and returns it as a
// borrowed view; ok is false once the ring is closed and drained.
func (pt *Port) RecvView(p *sim.Proc) (View, bool) {
	for {
		v, err := pt.TryRecvView(p)
		if err == nil {
			return v, true
		}
		if pt.ring.closed {
			return View{}, false
		}
		p.Wait(pt.ring.dataCond)
	}
}

// Recv blocks until an element is available and returns its payload; ok is
// false once the ring is closed and drained.
func (pt *Port) Recv(p *sim.Proc) ([]byte, bool) {
	for {
		msg, err := pt.TryRecv(p)
		if err == nil {
			return msg, true
		}
		if pt.ring.closed {
			return nil, false
		}
		p.Wait(pt.ring.dataCond)
	}
}

// Close marks the ring closed and wakes all blocked receivers and senders.
// Pending elements remain receivable.
func (pt *Port) Close(p *sim.Proc) {
	pt.ring.closed = true
	p.Broadcast(pt.ring.dataCond)
	p.Broadcast(pt.ring.spaceCond)
}

// Closed reports whether the ring has been closed.
func (r *Ring) Closed() bool { return r.closed }

// reserve allocates an element; caller holds the enqueue combiner.
func (r *Ring) reserve(size int, need int64) (*entry, bool) {
	if r.tailSlot-r.freeSlot == r.nslots {
		r.reclaim()
		if r.tailSlot-r.freeSlot == r.nslots {
			return nil, false
		}
	}
	pos := r.tailByte % r.capBytes
	waste := int64(0)
	if pos+need > r.capBytes {
		waste = r.capBytes - pos
		pos = 0
	}
	if r.tailByte+waste+need-r.freeByte > r.capBytes {
		r.reclaim()
		pos = r.tailByte % r.capBytes
		waste = 0
		if pos+need > r.capBytes {
			waste = r.capBytes - pos
			pos = 0
		}
		if r.tailByte+waste+need-r.freeByte > r.capBytes {
			return nil, false
		}
	}
	ent := &r.entries[r.tailSlot%r.nslots]
	*ent = entry{size: size, off: pos, alloc: waste + need, state: entReserved}
	r.tailByte += waste + need
	r.tailSlot++
	return ent, true
}

// take claims the head element if ready; caller holds the dequeue combiner.
func (r *Ring) take() (*entry, bool) {
	if r.headSlot == r.tailSlot {
		return nil, false
	}
	ent := &r.entries[r.headSlot%r.nslots]
	if ent.state != entReady {
		return nil, false
	}
	ent.state = entTaken
	r.headSlot++
	return ent, true
}

// reclaim advances the free boundary over contiguous done elements.
func (r *Ring) reclaim() {
	for r.freeSlot < r.headSlot {
		ent := &r.entries[r.freeSlot%r.nslots]
		if ent.state != entDone {
			return
		}
		ent.state = entFree
		r.freeByte += ent.alloc
		r.freeSlot++
	}
}

// Stats reports messages sent/received and payload bytes sent.
func (r *Ring) Stats() (sent, received, sentBytes int64) {
	return r.sent, r.received, r.sentBytes
}

// Cursors reports the ring's slot cursors (free <= head <= tail), for
// oracles and diagnostics.
func (r *Ring) Cursors() (free, head, tail uint64) {
	return r.freeSlot, r.headSlot, r.tailSlot
}

// Check validates the ring's structural invariants. It is safe to call at
// any scheduling point (the sim kernel serializes access) and is the
// transport half of the exploration oracle layer:
//
//   - cursor ordering: free <= head <= tail, at most nslots live;
//   - cursor monotonicity across successive Check calls;
//   - byte accounting: 0 <= tailByte-freeByte <= capBytes;
//   - element lifecycle: every slot in [head,tail) is reserved or ready,
//     every slot in [free,head) is taken or done;
//   - no ready-before-copy visibility: a ready slot's payload copy has
//     completed;
//   - master/shadow agreement at quiesce: when neither combiner is held
//     and no copy is in flight, sent == received + Len().
func (r *Ring) Check() error {
	free, head, tail := r.freeSlot, r.headSlot, r.tailSlot
	if free > head || head > tail {
		return fmt.Errorf("transport: cursor order violated: free=%d head=%d tail=%d", free, head, tail)
	}
	if tail-free > r.nslots {
		return fmt.Errorf("transport: %d live slots exceed capacity %d", tail-free, r.nslots)
	}
	if free < r.lastFree || head < r.lastHead || tail < r.lastTail {
		return fmt.Errorf("transport: cursor moved backwards: free %d->%d head %d->%d tail %d->%d",
			r.lastFree, free, r.lastHead, head, r.lastTail, tail)
	}
	r.lastFree, r.lastHead, r.lastTail = free, head, tail
	if used := r.tailByte - r.freeByte; used < 0 || used > r.capBytes {
		return fmt.Errorf("transport: byte accounting broken: tailByte=%d freeByte=%d cap=%d",
			r.tailByte, r.freeByte, r.capBytes)
	}
	for s := head; s < tail; s++ {
		ent := &r.entries[s%r.nslots]
		if ent.state == entReady && !ent.copied {
			return fmt.Errorf("transport: slot %d published ready before copy completed", s)
		}
		if ent.state != entReserved && ent.state != entReady {
			return fmt.Errorf("transport: undequeued slot %d in state %d", s, ent.state)
		}
	}
	for s := free; s < head; s++ {
		ent := &r.entries[s%r.nslots]
		if ent.state != entTaken && ent.state != entDone {
			return fmt.Errorf("transport: dequeued slot %d in state %d", s, ent.state)
		}
	}
	if !r.enq.lock.Held() && !r.deq.lock.Held() && r.inflightSend == 0 && r.inflightRecv == 0 {
		if r.sent != r.received+int64(r.Len()) {
			return fmt.Errorf("transport: master/shadow disagree at quiesce: sent=%d received=%d len=%d",
				r.sent, r.received, r.Len())
		}
	}
	return nil
}

// Len reports elements enqueued but not yet dequeued.
func (r *Ring) Len() int { return int(r.tailSlot - r.headSlot) }
