// Package netstack is a from-scratch reliable stream (TCP-like) stack over
// a simulated 100 GbE network (§6). It provides listen/accept/dial
// sockets, MSS segmentation, flow-control windows, and per-segment
// protocol-processing costs that depend on where the stack runs — the
// heart of the paper's network argument is that the same stack costs ~12x
// more per segment on a lean Phi core than on a host core.
//
// A Stack may be "bridged": its traffic additionally crosses a PCIe link
// to reach the NIC (the stock Xeon Phi runs its TCP endpoint behind such a
// bridge, §6: "we configured a bridge in our server so our client machine
// can directly access a Xeon Phi").
package netstack

import (
	"errors"
	"fmt"

	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// ErrClosed is returned on operations against a closed connection.
var ErrClosed = errors.New("netstack: connection closed")

// ErrRefused is returned by Dial when nothing listens on the port.
var ErrRefused = errors.New("netstack: connection refused")

// Window is the per-connection flow-control window.
const Window = 256 << 10

// Network is the switched fabric all stacks share.
type Network struct {
	fabric *pcie.Fabric
	stacks []*Stack
}

// NewNetwork creates an empty network on the given PCIe fabric (used only
// to charge bridged stacks' PCIe crossings).
func NewNetwork(f *pcie.Fabric) *Network {
	return &Network{fabric: f}
}

// Lookup finds an attached stack by name, or nil.
func (n *Network) Lookup(name string) *Stack {
	for _, s := range n.stacks {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Stack is one endpoint's protocol stack instance.
type Stack struct {
	Name string
	// Kind is the core class executing the stack (host vs Phi).
	Kind cpu.Kind
	// Bridge, when non-nil, is the PCIe device behind which this stack
	// lives; every segment also crosses that device's link.
	Bridge *pcie.Device

	// Serialized marks a stack whose protocol processing funnels
	// through one lock (the stock kernel stack's softirq/socket-lock
	// bottleneck the paper calls out: I/O stacks "maintain a
	// system-wide shared state that becomes a scalability bottleneck").
	Serialized bool

	net       *Network
	ingress   *sim.Resource
	egress    *sim.Resource
	softirq   *sim.Lock
	listeners map[int]*Listener
}

// NewStack attaches a stack to the network. bridge may be nil.
func (n *Network) NewStack(name string, kind cpu.Kind, bridge *pcie.Device) *Stack {
	s := &Stack{
		Name:      name,
		Kind:      kind,
		Bridge:    bridge,
		net:       n,
		ingress:   sim.NewResource(name+"-rx", model.NICBandwidth, 0),
		egress:    sim.NewResource(name+"-tx", model.NICBandwidth, 0),
		softirq:   sim.NewLock(name + "-softirq"),
		listeners: make(map[int]*Listener),
	}
	n.stacks = append(n.stacks, s)
	return s
}

// segment is one in-flight protocol segment.
type segment struct {
	data    []byte
	readyAt sim.Time
	fin     bool
}

// endpoint is one side of a connection.
type endpoint struct {
	stack    *Stack
	conn     *Conn
	recvq    []segment
	buffered int
	cond     *sim.Cond
	peer     *endpoint
	closed   bool
}

// Conn is an established stream connection.
type Conn struct {
	a, b *endpoint
	id   int64
}

var connIDs int64

// Listener accepts inbound connections on a port.
type Listener struct {
	stack   *Stack
	port    int
	backlog []*Conn
	cond    *sim.Cond
	closed  bool
}

// LookupPeer finds another stack on this stack's network by name.
func (s *Stack) LookupPeer(name string) *Stack { return s.net.Lookup(name) }

// Listen binds a listener to the port.
func (s *Stack) Listen(port int) (*Listener, error) {
	if _, busy := s.listeners[port]; busy {
		return nil, fmt.Errorf("netstack: port %d in use on %s", port, s.Name)
	}
	l := &Listener{stack: s, port: port, cond: sim.NewCond(fmt.Sprintf("listen-%s:%d", s.Name, port))}
	s.listeners[port] = l
	return l, nil
}

// Accept blocks for the next inbound connection; ok is false after Close.
func (l *Listener) Accept(p *sim.Proc) (*Conn, bool) {
	for len(l.backlog) == 0 {
		if l.closed {
			return nil, false
		}
		p.Wait(l.cond)
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, true
}

// Pending reports queued, not-yet-accepted connections.
func (l *Listener) Pending() int { return len(l.backlog) }

// Close stops the listener and wakes blocked Accepts.
func (l *Listener) Close(p *sim.Proc) {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.stack.listeners, l.port)
	p.Broadcast(l.cond)
}

// Dial opens a connection from s to dst:port, paying a handshake round
// trip. The returned Conn's local side is s.
func (s *Stack) Dial(p *sim.Proc, dst *Stack, port int) (*Conn, error) {
	l, ok := dst.listeners[port]
	if !ok || l.closed {
		return nil, ErrRefused
	}
	connIDs++
	c := &Conn{id: connIDs}
	c.a = &endpoint{stack: s, conn: c, cond: sim.NewCond(fmt.Sprintf("conn%d-a", c.id))}
	c.b = &endpoint{stack: dst, conn: c, cond: sim.NewCond(fmt.Sprintf("conn%d-b", c.id))}
	c.a.peer = c.b
	c.b.peer = c.a
	// SYN / SYN-ACK: one round trip plus stack costs on both ends.
	s.chargeSegment(p, 0)
	dst.chargeSegment(p, 0)
	p.Advance(2 * model.WireLatency)
	l.backlog = append(l.backlog, c)
	p.Signal(l.cond)
	return c, nil
}

// Side returns the connection endpoint handle for the given stack.
func (c *Conn) Side(s *Stack) *Side {
	switch s {
	case c.a.stack:
		return &Side{ep: c.a}
	case c.b.stack:
		return &Side{ep: c.b}
	}
	panic("netstack: stack not party to connection")
}

// ID returns a unique identifier for the connection.
func (c *Conn) ID() int64 { return c.id }

// Side is one stack's handle on a connection.
type Side struct {
	ep *endpoint
}

// chargeSegment charges the stack's CPU cost for one segment of n payload
// bytes, scaled by the core class the stack runs on.
func (s *Stack) chargeSegment(p *sim.Proc, n int) {
	slow := s.Kind.SystemsSlowdown()
	c := model.TCPSegmentCost * sim.Time(slow)
	c += sim.Time(int64(n) * model.TCPPerByteCost * slow / 1000)
	if s.Serialized {
		p.Acquire(s.softirq)
		p.Advance(c)
		p.Release(s.softirq)
		return
	}
	p.Advance(c)
}

// Send writes data to the connection, segmenting at MSS and blocking on
// the receiver's flow-control window.
func (sd *Side) Send(p *sim.Proc, data []byte) (int, error) {
	ep := sd.ep
	if ep.closed || ep.peer.closed {
		return 0, ErrClosed
	}
	sent := 0
	for sent < len(data) {
		n := len(data) - sent
		if n > model.MSS {
			n = model.MSS
		}
		for ep.peer.buffered+n > Window {
			if ep.peer.closed {
				return sent, ErrClosed
			}
			p.Wait(ep.peer.cond) // window update
		}
		ep.stack.chargeSegment(p, n)
		readyAt := sd.transmit(p, int64(n))
		seg := segment{data: append([]byte(nil), data[sent:sent+n]...), readyAt: readyAt}
		ep.peer.recvq = append(ep.peer.recvq, seg)
		ep.peer.buffered += n
		p.Signal(ep.peer.cond)
		sent += n
	}
	return sent, nil
}

// transmit reserves the wire (sender egress, receiver ingress, bridge
// links on either side) and returns the arrival time.
func (sd *Side) transmit(p *sim.Proc, n int64) sim.Time {
	ep := sd.ep
	latest := p.UseAsync(ep.stack.egress, n)
	if t := p.UseAsync(ep.peer.stack.ingress, n); t > latest {
		latest = t
	}
	fab := ep.stack.net.fabric
	if d := ep.stack.Bridge; d != nil && fab != nil {
		if t := fab.StreamAsync(p, d, nil, n); t > latest {
			latest = t
		}
	}
	if d := ep.peer.stack.Bridge; d != nil && fab != nil {
		if t := fab.StreamAsync(p, nil, d, n); t > latest {
			latest = t
		}
	}
	return latest + model.WireLatency
}

// Recv reads up to max bytes, blocking until data or FIN arrives. It
// returns 0, nil at end of stream.
func (sd *Side) Recv(p *sim.Proc, max int) ([]byte, error) {
	ep := sd.ep
	for {
		if len(ep.recvq) > 0 {
			seg := ep.recvq[0]
			if seg.fin {
				return nil, nil
			}
			p.AdvanceTo(seg.readyAt)
			ep.stack.chargeSegment(p, len(seg.data))
			n := len(seg.data)
			if n > max {
				// Partial consume: split the segment.
				n = max
				ep.recvq[0].data = seg.data[n:]
				seg.data = seg.data[:n]
			} else {
				ep.recvq = ep.recvq[1:]
			}
			ep.buffered -= n
			p.Signal(ep.cond) // window update for sender
			return seg.data, nil
		}
		if ep.closed {
			return nil, ErrClosed
		}
		p.Wait(ep.cond)
	}
}

// RecvFull reads exactly n bytes (or fewer at end of stream).
func (sd *Side) RecvFull(p *sim.Proc, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		chunk, err := sd.Recv(p, n-len(out))
		if err != nil {
			return out, err
		}
		if len(chunk) == 0 {
			return out, nil
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// Close sends FIN and marks this side closed; the peer's Recv drains
// buffered data, then observes end of stream.
func (sd *Side) Close(p *sim.Proc) {
	ep := sd.ep
	if ep.closed {
		return
	}
	ep.closed = true
	ep.peer.recvq = append(ep.peer.recvq, segment{fin: true, readyAt: p.Now() + model.WireLatency})
	p.Broadcast(ep.peer.cond)
	p.Broadcast(ep.cond)
}

// Buffered reports bytes queued for this side to receive.
func (sd *Side) Buffered() int { return sd.ep.buffered }
