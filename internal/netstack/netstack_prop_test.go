package netstack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"solros/internal/cpu"
	"solros/internal/pcie"
	"solros/internal/sim"
)

// Property: for any sequence of write sizes (far exceeding MSS and the
// flow-control window), the receiver reassembles exactly the sent byte
// stream, regardless of which side is bridged or serialized.
func TestStreamReassemblyProperty(t *testing.T) {
	type cfg struct {
		Seed       int64
		Bridged    bool
		Serialized bool
		Writes     uint8
	}
	f := func(c cfg) bool {
		writes := int(c.Writes)%12 + 1
		rnd := rand.New(rand.NewSource(c.Seed))
		var want []byte
		chunks := make([][]byte, writes)
		for i := range chunks {
			chunks[i] = make([]byte, rnd.Intn(8000)+1)
			rnd.Read(chunks[i])
			want = append(want, chunks[i]...)
		}
		fab := pcie.New(64 << 20)
		var bridge *pcie.Device
		if c.Bridged {
			bridge = fab.AddPhi("phi0", 0, 1<<20)
		}
		n := NewNetwork(fab)
		client := n.NewStack("client", cpu.Host, nil)
		server := n.NewStack("server", cpu.Phi, bridge)
		server.Serialized = c.Serialized
		var got []byte
		e := sim.NewEngine()
		e.Spawn("server", 0, func(p *sim.Proc) {
			l, _ := server.Listen(80)
			conn, ok := l.Accept(p)
			if !ok {
				return
			}
			got, _ = conn.Side(server).RecvFull(p, len(want))
		})
		e.Spawn("client", 0, func(p *sim.Proc) {
			p.Advance(sim.Microsecond)
			conn, err := client.Dial(p, server, 80)
			if err != nil {
				return
			}
			s := conn.Side(client)
			for _, ch := range chunks {
				if _, err := s.Send(p, ch); err != nil {
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
