package netstack

import (
	"bytes"
	"testing"

	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/pcie"
	"solros/internal/sim"
)

func twoStacks() (*Network, *Stack, *Stack) {
	fab := pcie.New(1 << 20)
	n := NewNetwork(fab)
	client := n.NewStack("client", cpu.Host, nil)
	server := n.NewStack("server", cpu.Host, nil)
	return n, client, server
}

func TestDialSendRecv(t *testing.T) {
	_, client, server := twoStacks()
	var got []byte
	e := sim.NewEngine()
	e.Spawn("server", 0, func(p *sim.Proc) {
		l, err := server.Listen(80)
		if err != nil {
			t.Error(err)
			return
		}
		c, ok := l.Accept(p)
		if !ok {
			t.Error("accept failed")
			return
		}
		side := c.Side(server)
		got, _ = side.RecvFull(p, 11)
	})
	e.Spawn("client", 0, func(p *sim.Proc) {
		p.Advance(10 * sim.Microsecond) // let the server listen first
		c, err := client.Dial(p, server, 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.Side(client).Send(p, []byte("hello world"))
	})
	e.MustRun()
	if !bytes.Equal(got, []byte("hello world")) {
		t.Fatalf("got %q", got)
	}
}

func TestDialRefused(t *testing.T) {
	_, client, server := twoStacks()
	e := sim.NewEngine()
	e.Spawn("client", 0, func(p *sim.Proc) {
		if _, err := client.Dial(p, server, 9999); err != ErrRefused {
			t.Errorf("err = %v, want ErrRefused", err)
		}
	})
	e.MustRun()
}

func TestLargeTransferSegmentedAndIntact(t *testing.T) {
	_, client, server := twoStacks()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got []byte
	e := sim.NewEngine()
	e.Spawn("server", 0, func(p *sim.Proc) {
		l, _ := server.Listen(80)
		c, _ := l.Accept(p)
		got, _ = c.Side(server).RecvFull(p, len(payload))
	})
	e.Spawn("client", 0, func(p *sim.Proc) {
		p.Advance(sim.Microsecond)
		c, err := client.Dial(p, server, 80)
		if err != nil {
			t.Error(err)
			return
		}
		n, err := c.Side(client).Send(p, payload)
		if err != nil || n != len(payload) {
			t.Errorf("send n=%d err=%v", n, err)
		}
	})
	e.MustRun()
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in flight")
	}
}

func TestFlowControlBoundsBuffering(t *testing.T) {
	// A fast sender against a never-reading receiver must block at the
	// window, not buffer unboundedly.
	_, client, server := twoStacks()
	e := sim.NewEngine()
	var conn *Conn
	e.Spawn("server", 0, func(p *sim.Proc) {
		l, _ := server.Listen(80)
		conn, _ = l.Accept(p)
		// Never read; just give the sender time to fill the window.
		p.Advance(100 * sim.Millisecond)
		if b := conn.Side(server).Buffered(); b > Window {
			t.Errorf("buffered %d exceeds window %d", b, Window)
		}
		// Drain so the sender finishes.
		for total := 0; total < 1<<20; {
			data, err := conn.Side(server).Recv(p, 1<<20)
			if err != nil || len(data) == 0 {
				break
			}
			total += len(data)
		}
	})
	e.Spawn("client", 0, func(p *sim.Proc) {
		p.Advance(sim.Microsecond)
		c, _ := client.Dial(p, server, 80)
		c.Side(client).Send(p, make([]byte, 1<<20))
	})
	e.MustRun()
}

func TestCloseDeliversEOF(t *testing.T) {
	_, client, server := twoStacks()
	e := sim.NewEngine()
	e.Spawn("server", 0, func(p *sim.Proc) {
		l, _ := server.Listen(80)
		c, _ := l.Accept(p)
		data, err := c.Side(server).RecvFull(p, 100)
		if err != nil {
			t.Error(err)
		}
		if len(data) != 3 {
			t.Errorf("got %d bytes before EOF, want 3", len(data))
		}
	})
	e.Spawn("client", 0, func(p *sim.Proc) {
		p.Advance(sim.Microsecond)
		c, _ := client.Dial(p, server, 80)
		c.Side(client).Send(p, []byte("eof"))
		c.Side(client).Close(p)
	})
	e.MustRun()
}

// pingPong measures mean round-trip latency for 64 B messages between a
// client and a server whose stack runs on the given core kind, optionally
// behind a PCIe bridge.
func pingPong(t *testing.T, kind cpu.Kind, bridged bool, rounds int) sim.Time {
	t.Helper()
	fab := pcie.New(64 << 20)
	var bridge *pcie.Device
	if bridged {
		bridge = fab.AddPhi("phi0", 0, 1<<20)
	}
	n := NewNetwork(fab)
	client := n.NewStack("client", cpu.Host, nil)
	server := n.NewStack("server", kind, bridge)
	var total sim.Time
	e := sim.NewEngine()
	e.Spawn("server", 0, func(p *sim.Proc) {
		l, _ := server.Listen(80)
		c, _ := l.Accept(p)
		s := c.Side(server)
		for i := 0; i < rounds; i++ {
			msg, err := s.RecvFull(p, 64)
			if err != nil || len(msg) != 64 {
				return
			}
			s.Send(p, msg)
		}
	})
	e.Spawn("client", 0, func(p *sim.Proc) {
		p.Advance(sim.Microsecond)
		c, _ := client.Dial(p, server, 80)
		s := c.Side(client)
		msg := make([]byte, 64)
		for i := 0; i < rounds; i++ {
			start := p.Now()
			s.Send(p, msg)
			s.RecvFull(p, 64)
			total += p.Now() - start
		}
		s.Close(p)
	})
	e.MustRun()
	return total / sim.Time(rounds)
}

func TestPhiStackMuchSlowerThanHost(t *testing.T) {
	// Figure 1b: 64 B ping-pong against a stock Phi endpoint has ~7x the
	// latency of a host endpoint.
	host := pingPong(t, cpu.Host, false, 50)
	phi := pingPong(t, cpu.Phi, true, 50)
	ratio := float64(phi) / float64(host)
	if ratio < 2 {
		t.Fatalf("phi/host latency ratio = %.1f, want >> 1 (paper: ~7x at p99)", ratio)
	}
	t.Logf("64B RTT: host=%v phi=%v (%.1fx)", host, phi, ratio)
}

func hostThroughput(t *testing.T, flows int, perFlow int) float64 {
	t.Helper()
	_, client, server := twoStacks()
	var end sim.Time
	e := sim.NewEngine()
	for fl := 0; fl < flows; fl++ {
		fl := fl
		port := 80 + fl
		e.Spawn("server", 0, func(p *sim.Proc) {
			l, _ := server.Listen(port)
			c, _ := l.Accept(p)
			c.Side(server).RecvFull(p, perFlow)
			if p.Now() > end {
				end = p.Now()
			}
		})
		e.Spawn("client", 0, func(p *sim.Proc) {
			p.Advance(sim.Microsecond)
			c, err := client.Dial(p, server, port)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 1<<20)
			for sent := 0; sent < perFlow; sent += len(buf) {
				c.Side(client).Send(p, buf)
			}
		})
	}
	e.MustRun()
	return float64(flows*perFlow) * 8 / end.Seconds() / 1e9
}

func TestSingleFlowHostThroughputRealistic(t *testing.T) {
	// One flow through one core: a kernel TCP stack sustains a handful
	// of Gb/s per core, nowhere near the 100 Gb/s wire.
	gbps := hostThroughput(t, 1, 32<<20)
	if gbps < 4 || gbps > 101 {
		t.Fatalf("single-flow host throughput = %.1f Gb/s, want 4..101", gbps)
	}
}

func TestMultiFlowAggregateScales(t *testing.T) {
	one := hostThroughput(t, 1, 16<<20)
	four := hostThroughput(t, 4, 16<<20)
	if four < 2.5*one {
		t.Fatalf("4 flows = %.1f Gb/s, want >= 2.5x one flow (%.1f)", four, one)
	}
}

func TestPortInUse(t *testing.T) {
	_, _, server := twoStacks()
	if _, err := server.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Listen(80); err == nil {
		t.Fatal("double listen on one port succeeded")
	}
}

func TestListenerCloseWakesAccept(t *testing.T) {
	_, _, server := twoStacks()
	e := sim.NewEngine()
	l, _ := server.Listen(80)
	e.Spawn("acceptor", 0, func(p *sim.Proc) {
		if _, ok := l.Accept(p); ok {
			t.Error("accept returned a conn after close")
		}
	})
	e.Spawn("closer", 10, func(p *sim.Proc) { l.Close(p) })
	e.MustRun()
}

func TestSegmentCostScalesWithKind(t *testing.T) {
	fab := pcie.New(1 << 20)
	n := NewNetwork(fab)
	h := n.NewStack("h", cpu.Host, nil)
	ph := n.NewStack("p", cpu.Phi, nil)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		start := p.Now()
		h.chargeSegment(p, model.MSS)
		hostCost := p.Now() - start
		start = p.Now()
		ph.chargeSegment(p, model.MSS)
		phiCost := p.Now() - start
		if phiCost <= hostCost*5 {
			t.Errorf("phi segment cost %v not >> host %v", phiCost, hostCost)
		}
	})
	e.MustRun()
}

func TestHalfCloseDrainsBufferedData(t *testing.T) {
	// Data sent before Close must still be readable by the peer; only
	// then does EOF appear.
	_, client, server := twoStacks()
	e := sim.NewEngine()
	e.Spawn("server", 0, func(p *sim.Proc) {
		l, _ := server.Listen(80)
		c, _ := l.Accept(p)
		s := c.Side(server)
		p.Advance(10 * sim.Millisecond) // let sender close first
		got, err := s.RecvFull(p, 1<<20)
		if err != nil {
			t.Error(err)
		}
		if len(got) != 100000 {
			t.Errorf("got %d bytes before EOF, want 100000", len(got))
		}
	})
	e.Spawn("client", 0, func(p *sim.Proc) {
		p.Advance(sim.Microsecond)
		c, _ := client.Dial(p, server, 80)
		s := c.Side(client)
		s.Send(p, make([]byte, 100000))
		s.Close(p)
	})
	e.MustRun()
}

func TestSerializedStackQueuesUnderLoad(t *testing.T) {
	// The same ping-pong load has a fatter tail against a serialized
	// stack than a parallel one: the paper's shared-state bottleneck.
	run := func(serialized bool) sim.Time {
		fab := pcie.New(16 << 20)
		n := NewNetwork(fab)
		client := n.NewStack("client", cpu.Host, nil)
		server := n.NewStack("server", cpu.Phi, nil)
		server.Serialized = serialized
		var worst sim.Time
		e := sim.NewEngine()
		for c := 0; c < 8; c++ {
			port := 80 + c
			e.Spawn("server", 0, func(p *sim.Proc) {
				l, _ := server.Listen(port)
				conn, _ := l.Accept(p)
				s := conn.Side(server)
				for r := 0; r < 20; r++ {
					msg, err := s.RecvFull(p, 64)
					if err != nil || len(msg) != 64 {
						return
					}
					s.Send(p, msg)
				}
			})
			e.Spawn("client", 0, func(p *sim.Proc) {
				p.Advance(sim.Microsecond)
				conn, err := client.Dial(p, server, port)
				if err != nil {
					t.Error(err)
					return
				}
				s := conn.Side(client)
				msg := make([]byte, 64)
				for r := 0; r < 20; r++ {
					start := p.Now()
					s.Send(p, msg)
					s.RecvFull(p, 64)
					if rtt := p.Now() - start; rtt > worst {
						worst = rtt
					}
				}
			})
		}
		e.MustRun()
		return worst
	}
	serial, parallel := run(true), run(false)
	if serial <= parallel {
		t.Fatalf("serialized stack worst RTT (%v) should exceed parallel (%v)", serial, parallel)
	}
}
