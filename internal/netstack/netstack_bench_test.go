package netstack

import (
	"testing"

	"solros/internal/sim"
)

func BenchmarkPingPong64B(b *testing.B) {
	_, client, server := twoStacks()
	e := sim.NewEngine()
	e.Spawn("server", 0, func(p *sim.Proc) {
		l, _ := server.Listen(80)
		c, _ := l.Accept(p)
		s := c.Side(server)
		for i := 0; i < b.N; i++ {
			msg, err := s.RecvFull(p, 64)
			if err != nil || len(msg) != 64 {
				return
			}
			s.Send(p, msg)
		}
	})
	e.Spawn("client", 0, func(p *sim.Proc) {
		p.Advance(sim.Microsecond)
		c, _ := client.Dial(p, server, 80)
		s := c.Side(client)
		msg := make([]byte, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Send(p, msg)
			s.RecvFull(p, 64)
		}
	})
	e.MustRun()
}

func BenchmarkBulkSend1MB(b *testing.B) {
	_, client, server := twoStacks()
	e := sim.NewEngine()
	total := b.N
	e.Spawn("server", 0, func(p *sim.Proc) {
		l, _ := server.Listen(80)
		c, _ := l.Accept(p)
		s := c.Side(server)
		for i := 0; i < total; i++ {
			if got, err := s.RecvFull(p, 1<<20); err != nil || len(got) != 1<<20 {
				return
			}
		}
	})
	e.Spawn("client", 0, func(p *sim.Proc) {
		p.Advance(sim.Microsecond)
		c, _ := client.Dial(p, server, 80)
		s := c.Side(client)
		buf := make([]byte, 1<<20)
		b.ResetTimer()
		for i := 0; i < total; i++ {
			s.Send(p, buf)
		}
	})
	e.MustRun()
	b.SetBytes(1 << 20)
}
