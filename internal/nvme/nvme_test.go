package nvme

import (
	"bytes"
	"testing"
	"testing/quick"

	"solros/internal/model"
	"solros/internal/pcie"
	"solros/internal/sim"
)

func setup() (*pcie.Fabric, *Device, *pcie.Device, *pcie.Device) {
	f := pcie.New(64 << 20)
	ssd := New(f, "nvme0", 0, 64<<20)
	phi0 := f.AddPhi("phi0", 0, 64<<20)
	phi2 := f.AddPhi("phi2", 1, 64<<20)
	return f, ssd, phi0, phi2
}

func TestReadWriteRoundTripHostMemory(t *testing.T) {
	f, ssd, _, _ := setup()
	want := bytes.Repeat([]byte("solros!!"), 512) // 4 KB
	copy(f.HostRAM.Slice(0, 4096), want)
	e := sim.NewEngine()
	e.Spawn("io", 0, func(p *sim.Proc) {
		if err := ssd.WriteAt(p, 8192, 4096, pcie.Loc{Off: 0}, true); err != nil {
			t.Error(err)
		}
		if err := ssd.ReadAt(p, 8192, 4096, pcie.Loc{Off: 1 << 20}, true); err != nil {
			t.Error(err)
		}
	})
	e.MustRun()
	if !bytes.Equal(f.HostRAM.Slice(1<<20, 4096), want) {
		t.Fatal("data corrupted through write/read cycle")
	}
}

func TestP2PReadToCoProcessorMemory(t *testing.T) {
	_, ssd, phi0, _ := setup()
	want := bytes.Repeat([]byte{0xAB}, 4096)
	copy(ssd.Image().Slice(0, 4096), want)
	e := sim.NewEngine()
	e.Spawn("io", 0, func(p *sim.Proc) {
		if err := ssd.ReadAt(p, 0, 4096, pcie.Loc{Dev: phi0, Off: 4096}, true); err != nil {
			t.Error(err)
		}
	})
	e.MustRun()
	if !bytes.Equal(phi0.Mem.Slice(4096, 4096), want) {
		t.Fatal("P2P read did not land in co-processor memory")
	}
}

func TestCoalescingReducesDoorbellsAndInterrupts(t *testing.T) {
	// A 1 MB read fragments into 8 x 128 KB commands. Coalesced: 1
	// doorbell + 1 interrupt; stock: 8 + 8.
	_, ssd, _, _ := setup()
	e := sim.NewEngine()
	e.Spawn("io", 0, func(p *sim.Proc) {
		if err := ssd.ReadAt(p, 0, 1<<20, pcie.Loc{Off: 0}, true); err != nil {
			t.Error(err)
		}
	})
	e.MustRun()
	st := ssd.Stats()
	if st.Doorbells != 1 || st.Interrupts != 1 || st.Commands != 8 {
		t.Fatalf("coalesced: doorbells=%d interrupts=%d commands=%d, want 1/1/8",
			st.Doorbells, st.Interrupts, st.Commands)
	}
	ssd.ResetStats()
	e = sim.NewEngine()
	e.Spawn("io", 0, func(p *sim.Proc) {
		if err := ssd.ReadAt(p, 0, 1<<20, pcie.Loc{Off: 0}, false); err != nil {
			t.Error(err)
		}
	})
	e.MustRun()
	st = ssd.Stats()
	if st.Doorbells != 8 || st.Interrupts != 8 {
		t.Fatalf("stock: doorbells=%d interrupts=%d, want 8/8", st.Doorbells, st.Interrupts)
	}
}

func TestCoalescingIsFaster(t *testing.T) {
	timeFor := func(coalesce bool) sim.Time {
		_, ssd, _, _ := setup()
		var end sim.Time
		e := sim.NewEngine()
		e.Spawn("io", 0, func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				if err := ssd.ReadAt(p, int64(i)<<20, 1<<20, pcie.Loc{Off: 0}, coalesce); err != nil {
					t.Error(err)
				}
			}
			end = p.Now()
		})
		e.MustRun()
		return end
	}
	fast, slow := timeFor(true), timeFor(false)
	if fast >= slow {
		t.Fatalf("coalesced (%v) should beat per-command doorbells (%v)", fast, slow)
	}
}

func TestReadThroughputApproachesDeviceLimit(t *testing.T) {
	// Large sequential read from many queued commands should sustain
	// close to 2.4 GB/s.
	_, ssd, _, _ := setup()
	const total = 32 << 20
	var end sim.Time
	e := sim.NewEngine()
	e.Spawn("io", 0, func(p *sim.Proc) {
		if err := ssd.ReadAt(p, 0, total, pcie.Loc{Off: 0}, true); err != nil {
			t.Error(err)
		}
		end = p.Now()
	})
	e.MustRun()
	gbs := float64(total) / end.Seconds() / 1e9
	if gbs < 2.0 || gbs > 2.5 {
		t.Fatalf("read throughput = %.2f GB/s, want ~2.4", gbs)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	_, ssd, _, _ := setup()
	var readEnd, writeEnd sim.Time
	e := sim.NewEngine()
	e.Spawn("rd", 0, func(p *sim.Proc) {
		_ = ssd.ReadAt(p, 0, 8<<20, pcie.Loc{Off: 0}, true)
		readEnd = p.Now()
	})
	e.MustRun()
	ssd.ResetStats()
	e = sim.NewEngine()
	e.Spawn("wr", 0, func(p *sim.Proc) {
		_ = ssd.WriteAt(p, 0, 8<<20, pcie.Loc{Off: 0}, true)
		writeEnd = p.Now()
	})
	e.MustRun()
	ratio := float64(writeEnd) / float64(readEnd)
	if ratio < 1.5 {
		t.Fatalf("write/read time ratio = %.2f, want ~2 (1.2 vs 2.4 GB/s)", ratio)
	}
}

func TestCrossNUMAP2PReadCapped(t *testing.T) {
	// Figure 1a: P2P into a cross-socket co-processor is capped at
	// ~300 MB/s by the QPI relay.
	_, ssd, _, phi2 := setup()
	const total = 8 << 20
	var end sim.Time
	e := sim.NewEngine()
	e.Spawn("io", 0, func(p *sim.Proc) {
		_ = ssd.ReadAt(p, 0, total, pcie.Loc{Dev: phi2, Off: 0}, true)
		end = p.Now()
	})
	e.MustRun()
	mbs := float64(total) / end.Seconds() / 1e6
	if mbs > 320 {
		t.Fatalf("cross-NUMA P2P = %.0f MB/s, want <= ~300", mbs)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	_, ssd, _, _ := setup()
	e := sim.NewEngine()
	e.Spawn("io", 0, func(p *sim.Proc) {
		if err := ssd.ReadAt(p, ssd.Capacity(), 4096, pcie.Loc{Off: 0}, true); err == nil {
			t.Error("read past device end succeeded")
		}
		if err := ssd.Submit(p, []Command{{Op: OpRead, LBA: -1, Bytes: 512, Target: pcie.Loc{}}}, true); err == nil {
			t.Error("negative LBA accepted")
		}
	})
	e.MustRun()
}

func TestSplitProperty(t *testing.T) {
	// Property: splitting preserves total bytes, keeps fragments within
	// MDTS, and fragments are contiguous in both LBA and target offset.
	f := func(lba uint16, size uint32) bool {
		c := Command{Op: OpRead, LBA: int64(lba), Bytes: int64(size % (4 << 20)), Target: pcie.Loc{Off: 8192}}
		frags := Split([]Command{c})
		var total int64
		wantLBA, wantOff := c.LBA, c.Target.Off
		for _, fr := range frags {
			if fr.Bytes <= 0 || fr.Bytes > model.NVMeMaxTransfer {
				return false
			}
			if fr.LBA != wantLBA || fr.Target.Off != wantOff {
				return false
			}
			total += fr.Bytes
			wantLBA += fr.Bytes / SectorSize
			wantOff += fr.Bytes
		}
		return total == c.Bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSubmittersShareDevice(t *testing.T) {
	// Two procs each read 4 MB; the device serializes, so the makespan
	// is about the sum, and both complete.
	_, ssd, _, _ := setup()
	var ends []sim.Time
	e := sim.NewEngine()
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("io", 0, func(p *sim.Proc) {
			_ = ssd.ReadAt(p, int64(i)*(4<<20), 4<<20, pcie.Loc{Off: int64(i) * (4 << 20)}, true)
			ends = append(ends, p.Now())
		})
	}
	e.MustRun()
	if len(ends) != 2 {
		t.Fatal("not all submitters completed")
	}
	total := float64(8<<20) / 2.4e9 // seconds at device rate
	last := ends[1]
	if ends[0] > last {
		last = ends[0]
	}
	if last.Seconds() < total*0.9 {
		t.Fatalf("makespan %.3fms implausibly fast for shared device (floor %.3fms)",
			last.Seconds()*1e3, total*1e3)
	}
}
