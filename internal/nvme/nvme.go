// Package nvme models the paper's storage device (an Intel 750 NVMe SSD)
// and the Solros-optimized driver of §5: IO-vector commands that coalesce
// every NVMe command belonging to one file-system call into a single
// doorbell ring and a single completion interrupt, and peer-to-peer DMA
// whose targets may be co-processor memory reached through system-mapped
// PCIe windows (§4.3.2).
//
// The device's flash address space is its PCIe memory region, so disk
// contents are real bytes: reads and writes move data between the flash
// image and the target memory while charging the flash backend, the PCIe
// links on the path, and doorbell/interrupt costs.
package nvme

import (
	"errors"
	"fmt"

	"solros/internal/model"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// SectorSize is the device's logical block size.
const SectorSize = 512

// ErrMedia is the injected unrecoverable-media-error completion status.
var ErrMedia = errors.New("nvme: media error")

// Op distinguishes reads from writes.
type Op int

const (
	// OpRead transfers flash -> target memory.
	OpRead Op = iota
	// OpWrite transfers target memory -> flash.
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// FaultInjector is the device's hook into a fault plan (consumer-side
// interface; implemented by internal/faults). NVMeFault is consulted once
// per Submit: fail completes the vector with ErrMedia before any byte
// moves, and delay is charged ahead of service (a latency spike).
type FaultInjector interface {
	NVMeFault(p *sim.Proc, write bool) (fail bool, delay sim.Time)
}

// Command is one NVMe command: Bytes of data at sector LBA, transferred
// from/to Target (host RAM or a co-processor's system-mapped memory).
type Command struct {
	Op     Op
	LBA    int64 // sector index
	Bytes  int64
	Target pcie.Loc
}

// Device is a simulated NVMe SSD.
type Device struct {
	// PCIeDev is the SSD's endpoint on the fabric; its memory region is
	// the flash image.
	PCIeDev *pcie.Device
	fabric  *pcie.Fabric
	// flashRead/flashWrite are the device's internal service rates
	// (§6: 2.4 GB/s read, 1.2 GB/s write).
	flashRead  *sim.Resource
	flashWrite *sim.Resource

	// failNext makes the next N commands complete with a media error
	// (fault injection for resilience tests).
	failNext int
	// inj, when set, is consulted on every Submit (plan-driven faults).
	inj FaultInjector

	// stats
	doorbells  int64
	interrupts int64
	commands   int64
	readBytes  int64
	writeBytes int64
	mediaErrs  int64

	tel           *telemetry.Sink
	telDoorbells  *telemetry.Counter
	telInterrupts *telemetry.Counter
	telCommands   *telemetry.Counter
	telReadBytes  *telemetry.Counter
	telWriteBytes *telemetry.Counter
	telMediaErrs  *telemetry.Counter
	telQueue      *telemetry.Queue
}

// New attaches an SSD with the given capacity to the fabric at socket.
func New(f *pcie.Fabric, name string, socket int, capacity int64) *Device {
	d := &Device{
		PCIeDev:    f.AddDevice(name, socket, capacity, model.LinkBWNVMe, model.LinkBWNVMe),
		fabric:     f,
		flashRead:  sim.NewResource(name+"-flash-rd", model.NVMeReadBW, model.NVMeCmdLatency),
		flashWrite: sim.NewResource(name+"-flash-wr", model.NVMeWriteBW, model.NVMeCmdLatency),
	}
	if tel := f.Telemetry(); tel != nil {
		d.tel = tel
		d.telDoorbells = tel.Counter("nvme.doorbells")
		d.telInterrupts = tel.Counter("nvme.interrupts")
		d.telCommands = tel.Counter("nvme.commands")
		d.telReadBytes = tel.Counter("nvme.read_bytes")
		d.telWriteBytes = tel.Counter("nvme.write_bytes")
		d.telMediaErrs = tel.Counter("nvme.media_errors")
		d.telQueue = tel.Queue("nvme.queue")
	}
	return d
}

// Capacity reports the device size in bytes.
func (d *Device) Capacity() int64 { return d.PCIeDev.Mem.Size() }

// Image exposes the raw flash contents for mkfs/fsck-style tooling that
// operates outside the timing model.
func (d *Device) Image() *pcie.Memory { return d.PCIeDev.Mem }

// Split fragments commands so none exceeds the device's maximum transfer
// size (MDTS); one file-system call on a fragmented file becomes several
// NVMe commands, which is exactly what the IO-vector interface coalesces.
func Split(cmds []Command) []Command {
	var out []Command
	for _, c := range cmds {
		for c.Bytes > model.NVMeMaxTransfer {
			head := c
			head.Bytes = model.NVMeMaxTransfer
			out = append(out, head)
			c.LBA += model.NVMeMaxTransfer / SectorSize
			c.Target.Off += model.NVMeMaxTransfer
			c.Bytes -= model.NVMeMaxTransfer
		}
		if c.Bytes > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Submit executes an IO vector on behalf of the calling (host driver)
// Proc and blocks until completion. With coalesce=true — the Solros
// optimized driver — the whole vector costs one doorbell ring and one
// interrupt; otherwise each command pays its own (the stock driver).
// Commands larger than MDTS are split automatically.
func (d *Device) Submit(p *sim.Proc, cmds []Command, coalesce bool) error {
	cmds = Split(cmds)
	if len(cmds) == 0 {
		return nil
	}
	for i := range cmds {
		if err := d.check(&cmds[i]); err != nil {
			return err
		}
	}
	sp := d.tel.Start(p, "nvme.submit")
	sp.Tag("op", cmds[0].Op.String())
	sp.TagInt("cmds", int64(len(cmds)))
	// Queue-depth accounting: the vector occupies the submission queue
	// from here until Submit returns on every path below.
	d.telQueue.ArriveN(p, int64(len(cmds)))
	defer d.telQueue.DepartN(p, int64(len(cmds)))
	injFail := false
	if d.inj != nil {
		fail, delay := d.inj.NVMeFault(p, cmds[0].Op == OpWrite)
		injFail = fail
		if delay > 0 {
			p.Advance(delay)
		}
	}
	if d.failNext > 0 || injFail {
		if d.failNext > 0 {
			d.failNext--
			if !injFail {
				// Plan-driven faults already dumped from the injector's
				// mark; InjectErrors-driven ones trigger here.
				d.tel.TriggerFlight(p, "nvme-media-error")
			}
		}
		d.mediaErrs++
		d.doorbells++
		d.interrupts++
		d.telMediaErrs.Add(1)
		d.telDoorbells.Add(1)
		d.telInterrupts.Add(1)
		// The command still costs a doorbell, the flash access, and an
		// interrupt before the error status comes back.
		p.Advance(model.NVMeDoorbellCost + model.NVMeCmdLatency + model.NVMeInterruptCost)
		sp.Tag("result", "media-error")
		sp.End(p)
		return ErrMedia
	}
	ring := func() {
		d.doorbells++
		d.telDoorbells.Add(1)
		d.fabric.CountTxn(1)
		p.Advance(model.NVMeDoorbellCost)
	}
	interrupt := func() {
		d.interrupts++
		d.telInterrupts.Add(1)
		p.Advance(model.NVMeInterruptCost)
	}
	// transfer wraps the data movement in a span so the trace shows the
	// DMA window between doorbell and interrupt; peer-to-peer targets (a
	// co-processor's memory) are labelled distinctly from host DMA.
	transfer := func(body func()) {
		name := "pcie.dma"
		for i := range cmds {
			if cmds[i].Target.Dev != nil {
				name = "pcie.p2p"
				break
			}
		}
		tsp := d.tel.Start(p, name)
		var bytes int64
		for i := range cmds {
			bytes += cmds[i].Bytes
		}
		tsp.TagInt("bytes", bytes)
		body()
		tsp.End(p)
	}
	if coalesce {
		ring()
		transfer(func() {
			var latest sim.Time
			for i := range cmds {
				if done := d.issue(p, &cmds[i]); done > latest {
					latest = done
				}
			}
			p.AdvanceTo(latest)
		})
		interrupt()
		sp.End(p)
		return nil
	}
	transfer(func() {
		for i := range cmds {
			ring()
			p.AdvanceTo(d.issue(p, &cmds[i]))
			interrupt()
		}
	})
	sp.End(p)
	return nil
}

// issue runs one command: reserve the flash backend and the PCIe path in
// parallel (the device pipelines NAND access with its DMA engine), move
// the real bytes, and return the completion time. The caller's clock is
// not advanced, so queued commands overlap.
func (d *Device) issue(p *sim.Proc, c *Command) sim.Time {
	off := c.LBA * SectorSize
	var srcDev, dstDev *pcie.Device
	var res *sim.Resource
	if c.Op == OpRead {
		copy(d.fabric.Mem(c.Target).Slice(c.Target.Off, c.Bytes), d.PCIeDev.Mem.Slice(off, c.Bytes))
		srcDev, dstDev = d.PCIeDev, c.Target.Dev
		res = d.flashRead
		d.readBytes += c.Bytes
		d.telReadBytes.Add(c.Bytes)
	} else {
		copy(d.PCIeDev.Mem.Slice(off, c.Bytes), d.fabric.Mem(c.Target).Slice(c.Target.Off, c.Bytes))
		srcDev, dstDev = c.Target.Dev, d.PCIeDev
		res = d.flashWrite
		d.writeBytes += c.Bytes
		d.telWriteBytes.Add(c.Bytes)
	}
	d.commands++
	d.telCommands.Add(1)
	linkDone := d.fabric.StreamAsync(p, srcDev, dstDev, c.Bytes)
	flashDone := p.UseAsyncPipelined(res, c.Bytes)
	if linkDone > flashDone {
		return linkDone
	}
	return flashDone
}

func (d *Device) check(c *Command) error {
	off := c.LBA * SectorSize
	if c.LBA < 0 || c.Bytes < 0 || off+c.Bytes > d.Capacity() {
		return fmt.Errorf("nvme: command out of range: lba=%d bytes=%d cap=%d", c.LBA, c.Bytes, d.Capacity())
	}
	return nil
}

// ReadAt synchronously reads n bytes at byte offset off into a target
// location, as a single (possibly split) coalesced vector. Convenience
// for callers that address bytes rather than sectors; off must be
// sector-aligned.
func (d *Device) ReadAt(p *sim.Proc, off, n int64, target pcie.Loc, coalesce bool) error {
	return d.Submit(p, []Command{{Op: OpRead, LBA: off / SectorSize, Bytes: n, Target: target}}, coalesce)
}

// WriteAt synchronously writes n bytes from target to byte offset off.
func (d *Device) WriteAt(p *sim.Proc, off, n int64, target pcie.Loc, coalesce bool) error {
	return d.Submit(p, []Command{{Op: OpWrite, LBA: off / SectorSize, Bytes: n, Target: target}}, coalesce)
}

// InjectErrors makes the next n Submit calls fail with ErrMedia.
func (d *Device) InjectErrors(n int) { d.failNext = n }

// SetInjector installs a plan-driven fault injector; nil disables it.
func (d *Device) SetInjector(inj FaultInjector) { d.inj = inj }

// Stats reports doorbell rings, interrupts, commands, and bytes moved.
type Stats struct {
	Doorbells, Interrupts, Commands int64
	ReadBytes, WriteBytes           int64
	MediaErrors                     int64
}

// Stats returns a snapshot of the device's counters.
func (d *Device) Stats() Stats {
	return Stats{
		Doorbells:   d.doorbells,
		Interrupts:  d.interrupts,
		Commands:    d.commands,
		ReadBytes:   d.readBytes,
		WriteBytes:  d.writeBytes,
		MediaErrors: d.mediaErrs,
	}
}

// ResetStats clears counters and flash queueing state between benchmark
// iterations.
func (d *Device) ResetStats() {
	d.doorbells, d.interrupts, d.commands = 0, 0, 0
	d.readBytes, d.writeBytes = 0, 0
	d.flashRead.Reset()
	d.flashWrite.Reset()
}

// FlashBusy reports the cumulative busy time of the flash backend (read
// plus write service), for latency breakdowns.
func (d *Device) FlashBusy() sim.Time {
	_, _, rd := d.flashRead.Stats()
	_, _, wr := d.flashWrite.Stats()
	return rd + wr
}

// InterruptCostFor reports the host CPU time the stock (non-coalescing)
// driver spends on interrupts for an n-byte transfer, for latency
// breakdowns.
func InterruptCostFor(n int64, coalesce bool) sim.Time {
	if coalesce {
		return model.NVMeInterruptCost
	}
	cmds := (n + model.NVMeMaxTransfer - 1) / model.NVMeMaxTransfer
	return sim.Time(cmds) * model.NVMeInterruptCost
}
