package nvme

import (
	"testing"

	"solros/internal/pcie"
	"solros/internal/sim"
)

func benchIO(b *testing.B, size int64, coalesce bool) {
	fab := pcie.New(64 << 20)
	ssd := New(fab, "n", 0, 64<<20)
	e := sim.NewEngine()
	e.Spawn("io", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			off := int64(i) % 64 * (1 << 20)
			if err := ssd.ReadAt(p, off, size, pcie.Loc{Off: 0}, coalesce); err != nil {
				b.Error(err)
				return
			}
		}
	})
	e.MustRun()
	b.SetBytes(size)
}

func BenchmarkRead4KCoalesced(b *testing.B)   { benchIO(b, 4096, true) }
func BenchmarkRead1MBCoalesced(b *testing.B)  { benchIO(b, 1<<20, true) }
func BenchmarkRead1MBPerCommand(b *testing.B) { benchIO(b, 1<<20, false) }
