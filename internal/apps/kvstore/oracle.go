package kvstore

import (
	"solros/internal/core"
	"solros/internal/sim"
)

// CoherenceOracle is the log/index coherence invariant for schedule
// exploration: at every dispatch point it runs each tracked shard's
// cheap Check (index ↔ sorted-list agreement, record bounds, and the
// live + dead == logged byte identity). The deep on-disk check,
// VerifyAll, is for quiesce points — it issues delegated reads, which an
// Oracle.Check must never do.
type CoherenceOracle struct {
	shards []*Shard
}

// Track registers a shard with the oracle (shards are built after the
// oracle when the workload wires Config.Oracles before boot, so
// registration is late-bound).
func (o *CoherenceOracle) Track(s *Shard) { o.shards = append(o.shards, s) }

// Name implements core.Oracle.
func (o *CoherenceOracle) Name() string { return "kv-coherence" }

// Check implements core.Oracle.
func (o *CoherenceOracle) Check(m *core.Machine) error {
	for _, s := range o.shards {
		if err := s.Check(); err != nil {
			return err
		}
	}
	return nil
}

// VerifyAll replays every tracked shard's log and compares it against
// the live index — the deep end-of-run check. Call it only when the
// shards are quiesced (servers drained, no in-flight ops).
func (o *CoherenceOracle) VerifyAll(p *sim.Proc) error {
	for _, s := range o.shards {
		if err := s.VerifyLog(p); err != nil {
			return err
		}
	}
	return nil
}
