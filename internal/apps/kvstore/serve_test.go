package kvstore

import (
	"fmt"
	"strings"
	"testing"

	"solros/internal/core"
	"solros/internal/sim"
	"solros/internal/workload"
)

const testPort = 6379

// TestServeEndToEnd drives the full delegated serving stack: external
// clients dial through the TCP proxy, the content balancer routes each
// connection to the shard owning its first request's key, and every
// op persists through the delegated FS path. The model map is the truth
// the store must match; the run ends with a deep log verification.
func TestServeEndToEnd(t *testing.T) {
	m := core.NewMachine(core.Config{Phis: 2})
	m.EnableNetwork()
	m.MustRun(func(p *sim.Proc, m *core.Machine) {
		m.TCPProxy.Balance = Balancer()
		oracle := &CoherenceOracle{}
		servers := make([]*Server, len(m.Phis))
		done := sim.NewWaitGroup("kv-serve")
		for i, phi := range m.Phis {
			if err := phi.Net.Listen(p, testPort); err != nil {
				t.Fatalf("listen shard %d: %v", i, err)
			}
			s := NewShard(m, i, Options{})
			if err := s.Open(p); err != nil {
				t.Fatalf("open shard %d: %v", i, err)
			}
			oracle.Track(s)
			servers[i] = NewServer(s, phi.Net, testPort)
			done.Add(1)
			sv := servers[i]
			p.Spawn(fmt.Sprintf("kv-server-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(done)
				if err := sv.Run(sp); err != nil {
					t.Errorf("server: %v", err)
				}
			})
		}

		done.Add(1)
		p.Spawn("client", func(cp *sim.Proc) {
			defer cp.DoneWG(done)
			cp.Advance(100 * sim.Microsecond)
			model := map[string]string{}

			// One pooled connection per shard, bound by its first key.
			clients := map[int]*Client{}
			clientFor := func(key string) *Client {
				shard := OwnerShard(key, len(m.Phis))
				if c, ok := clients[shard]; ok {
					return c
				}
				conn, err := m.ClientStack.Dial(cp, m.HostStack, testPort)
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				c := NewClient(conn.Side(m.ClientStack))
				// The first request routes the connection; send a GET for
				// the key so the balancer binds it to the right shard.
				c.Get(cp, key)
				clients[shard] = c
				return c
			}

			long := "bucket/" + strings.Repeat("object-name-", 30) // ≈360 bytes
			keys := []string{"a:1", "a:2", "b:7", long}
			for round := 0; round < 3; round++ {
				for _, k := range keys {
					v := fmt.Sprintf("%s=round%d", k, round)
					if err := clientFor(k).Put(cp, k, []byte(v)); err != nil {
						t.Fatalf("put %q: %v", k, err)
					}
					model[k] = v
				}
			}
			if found, err := clientFor("a:2").Delete(cp, "a:2"); err != nil || !found {
				t.Fatalf("delete a:2: found=%v err=%v", found, err)
			}
			delete(model, "a:2")

			for _, k := range keys {
				val, found, err := clientFor(k).Get(cp, k)
				if err != nil {
					t.Fatalf("get %q: %v", k, err)
				}
				want, ok := model[k]
				if found != ok || (found && string(val) != want) {
					t.Fatalf("get %q = %q,%v; model %q,%v", k, val, found, want, ok)
				}
			}

			// SCAN stays within the connection's shard: every returned key
			// must be live in the model and owned by that shard.
			shard := OwnerShard("a:1", len(m.Phis))
			kvs, err := clients[shard].Scan(cp, "a:", 10)
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			for _, kv := range kvs {
				if OwnerShard(kv.Key, len(m.Phis)) != shard {
					t.Fatalf("scan leaked key %q from another shard", kv.Key)
				}
				if model[kv.Key] != string(kv.Val) {
					t.Fatalf("scan %q = %q, model %q", kv.Key, kv.Val, model[kv.Key])
				}
			}

			// Quiesce: close client conns, stop the proxy so the listeners
			// close and the servers drain.
			for _, c := range clients {
				if side, ok := c.s.(interface{ Close(*sim.Proc) }); ok {
					side.Close(cp)
				}
			}
			m.TCPProxy.Stop(cp)
		})
		p.WaitWG(done)

		var served int64
		for _, sv := range servers {
			served += sv.Served()
		}
		if served == 0 {
			t.Fatal("servers completed no requests")
		}
		if err := oracle.Check(m); err != nil {
			t.Fatalf("coherence: %v", err)
		}
		if err := oracle.VerifyAll(p); err != nil {
			t.Fatalf("deep verification: %v", err)
		}
	})
}

// TestServeYCSBMixDeterminism replays a seeded YCSB class-A stream twice
// through two full machines and expects identical stats — the property
// the fig-serve digest rests on.
func TestServeYCSBMixDeterminism(t *testing.T) {
	run := func() []Stats {
		var out []Stats
		m := core.NewMachine(core.Config{Phis: 2})
		m.EnableNetwork()
		m.MustRun(func(p *sim.Proc, m *core.Machine) {
			m.TCPProxy.Balance = Balancer()
			shards := make([]*Shard, len(m.Phis))
			done := sim.NewWaitGroup("kv")
			for i, phi := range m.Phis {
				if err := phi.Net.Listen(p, testPort); err != nil {
					t.Fatalf("listen: %v", err)
				}
				shards[i] = NewShard(m, i, Options{})
				if err := shards[i].Open(p); err != nil {
					t.Fatalf("open: %v", err)
				}
				sv := NewServer(shards[i], phi.Net, testPort)
				done.Add(1)
				p.Spawn(fmt.Sprintf("kv-server-%d", i), func(sp *sim.Proc) {
					defer sp.DoneWG(done)
					sv.Run(sp)
				})
			}
			done.Add(1)
			p.Spawn("driver", func(cp *sim.Proc) {
				defer cp.DoneWG(done)
				cp.Advance(100 * sim.Microsecond)
				g := workload.NewGenerator(42, workload.MixFor('A'), 64)
				clients := map[int]*Client{}
				for _, op := range g.Ops(200) {
					key := workload.KeyName(0, op.Key)
					shard := OwnerShard(key, len(m.Phis))
					c, ok := clients[shard]
					if !ok {
						conn, err := m.ClientStack.Dial(cp, m.HostStack, testPort)
						if err != nil {
							t.Fatalf("dial: %v", err)
						}
						c = NewClient(conn.Side(m.ClientStack))
						c.Get(cp, key)
						clients[shard] = c
					}
					switch op.Kind {
					case workload.OpRead:
						c.Get(cp, key)
					default:
						c.Put(cp, key, []byte(key))
					}
				}
				for _, c := range clients {
					if side, ok := c.s.(interface{ Close(*sim.Proc) }); ok {
						side.Close(cp)
					}
				}
				m.TCPProxy.Stop(cp)
			})
			p.WaitWG(done)
			for _, s := range shards {
				out = append(out, s.Stats())
			}
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d stats diverged across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
