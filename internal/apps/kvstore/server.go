package kvstore

import (
	"encoding/binary"
	"fmt"

	"solros/internal/dataplane"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// Server drives one shard's request loop on its co-processor: an
// acceptor proc feeds the event-dispatcher-backed Poller, and the serve
// loop parses one request at a time per ready connection — the same
// run-to-completion shape as the other Solros data-plane services, so
// the shard's single-proc ownership contract holds by construction.
type Server struct {
	Shard *Shard
	nc    *dataplane.NetClient
	port  int

	// Tenants maps the tenant index parsed from a key's "t<i>:" prefix to
	// a display name for span tags (nil = tag the raw prefix). Set by the
	// bench when tenant attribution is wanted; requests whose keys carry
	// no tenant prefix are simply untagged.
	Tenants []string

	served     int64
	acceptDone bool
}

// NewServer wires a shard to its co-processor's network stub. The caller
// must have called Listen on the port already (the bench does it for all
// phis before starting traffic, so no connection races the listeners).
func NewServer(shard *Shard, nc *dataplane.NetClient, port int) *Server {
	return &Server{Shard: shard, nc: nc, port: port}
}

// Served reports how many requests the server has completed.
func (sv *Server) Served() int64 { return sv.served }

// Run accepts and serves connections until the listener closes (proxy
// Stop/DetachNet) and all accepted connections drain.
func (sv *Server) Run(p *sim.Proc) error {
	poller := sv.nc.NewPoller()
	p.Spawn(fmt.Sprintf("kv-accept-%d", sv.Shard.ID), func(ap *sim.Proc) {
		for {
			sock, err := sv.nc.Accept(ap, sv.port)
			if err != nil {
				sv.acceptDone = true
				return
			}
			poller.Watch(sock)
		}
	})
	for {
		ready := poller.Wait(p)
		if ready == nil {
			if sv.acceptDone {
				return nil
			}
			p.Advance(10 * sim.Microsecond)
			continue
		}
		for _, sock := range ready {
			ok, err := sv.serveOne(p, sock)
			if err != nil {
				return err
			}
			if ok {
				sv.served++
			} else {
				poller.Unwatch(sock)
				sock.Close(p)
			}
		}
	}
}

// serveOne parses and serves a single request from sock. ok=false means
// the connection is finished (peer closed or sent garbage); a non-nil
// error is a shard-side storage failure and aborts the server.
func (sv *Server) serveOne(p *sim.Proc, sock *dataplane.Socket) (ok bool, err error) {
	hdr, err := sock.RecvFull(p, ReqHdrLen)
	if err != nil || len(hdr) < ReqHdrLen {
		return false, nil
	}
	op := hdr[0]
	keyLen := decodeUint16(hdr[1:3])
	var ctx telemetry.TraceCtx
	if op&OpTraced != 0 {
		op &^= OpTraced
		raw, rerr := sock.RecvFull(p, TraceCtxLen)
		if rerr != nil {
			return false, nil
		}
		ctx.Trace = binary.LittleEndian.Uint64(raw)
		ctx.Span = binary.LittleEndian.Uint64(raw[8:])
	}
	key, err := sock.RecvFull(p, keyLen)
	if err != nil {
		return false, nil
	}
	s := sv.Shard
	// One span per request so the causal tracer attributes the delegated
	// FS round-trips under it (free when telemetry is off: nil sink). A
	// wire trace context joins the caller's causal tree, and the span
	// carries the attribution dimensions the trace analyzer indexes by.
	span := s.tel.StartCtx(p, opSpanName(op), ctx)
	if span != nil {
		span.TagInt("shard", int64(s.ID))
		if tn := sv.tenantOf(key); tn != "" {
			span.Tag("tenant", tn)
		}
	}
	defer span.End(p)
	switch op {
	case OpGet:
		val, found, gerr := s.Get(p, string(key))
		if gerr != nil {
			return false, gerr
		}
		if !found {
			return send(p, sock, []byte{StatusNotFound})
		}
		resp := make([]byte, 0, 5+len(val))
		resp = append(resp, StatusOK)
		resp = binary.LittleEndian.AppendUint32(resp, uint32(len(val)))
		return send(p, sock, append(resp, val...))

	case OpPut:
		vl, rerr := sock.RecvFull(p, 4)
		if rerr != nil {
			return false, nil
		}
		vlen := decodeUint32(vl)
		if vlen > MaxValLen {
			return sendErr(p, sock, "value exceeds protocol limit")
		}
		val, rerr := sock.RecvFull(p, vlen)
		if rerr != nil {
			return false, nil
		}
		if perr := s.Put(p, string(key), val); perr != nil {
			if perr == ErrTooLarge {
				return sendErr(p, sock, perr.Error())
			}
			return false, perr
		}
		return send(p, sock, []byte{StatusOK})

	case OpDelete:
		found, derr := s.Delete(p, string(key))
		if derr != nil {
			return false, derr
		}
		if !found {
			return send(p, sock, []byte{StatusNotFound})
		}
		return send(p, sock, []byte{StatusOK})

	case OpScan:
		lim, rerr := sock.RecvFull(p, 2)
		if rerr != nil {
			return false, nil
		}
		// Collect matches first: the scan reuses the shard scratch per
		// entry, and the count header precedes the entries on the wire.
		var body []byte
		var count uint32
		serr := s.Scan(p, string(key), decodeUint16(lim), func(k string, v []byte) bool {
			body = binary.LittleEndian.AppendUint16(body, uint16(len(k)))
			body = append(body, k...)
			body = binary.LittleEndian.AppendUint32(body, uint32(len(v)))
			body = append(body, v...)
			count++
			return true
		})
		if serr != nil {
			return false, serr
		}
		resp := make([]byte, 0, 5+len(body))
		resp = append(resp, StatusOK)
		resp = binary.LittleEndian.AppendUint32(resp, count)
		return send(p, sock, append(resp, body...))
	}
	return sendErr(p, sock, fmt.Sprintf("unknown op %q", op))
}

// tenantOf parses the workload key convention "t<i>:..." into a tenant
// tag: the Tenants table's name for index i when present, else the raw
// "t<i>" prefix. Empty for keys outside the convention.
func (sv *Server) tenantOf(key []byte) string {
	if len(key) < 2 || key[0] != 't' {
		return ""
	}
	idx, n := 0, 0
	for n+1 < len(key) && key[n+1] >= '0' && key[n+1] <= '9' {
		idx = idx*10 + int(key[n+1]-'0')
		n++
	}
	if n == 0 || n+1 >= len(key) || key[n+1] != ':' {
		return ""
	}
	if idx < len(sv.Tenants) {
		return sv.Tenants[idx]
	}
	return string(key[:n+1])
}

// opSpanName avoids a per-request string concat on the hot path.
func opSpanName(op byte) string {
	switch op {
	case OpGet:
		return "apps.kvstore.serve.get"
	case OpPut:
		return "apps.kvstore.serve.put"
	case OpDelete:
		return "apps.kvstore.serve.delete"
	case OpScan:
		return "apps.kvstore.serve.scan"
	}
	return "apps.kvstore.serve.unknown"
}

func send(p *sim.Proc, sock *dataplane.Socket, b []byte) (bool, error) {
	_, err := sock.Send(p, b)
	return err == nil, nil // a send failure just ends the connection
}

func sendErr(p *sim.Proc, sock *dataplane.Socket, msg string) (bool, error) {
	resp := append([]byte{StatusError}, binary.LittleEndian.AppendUint16(nil, uint16(len(msg)))...)
	return send(p, sock, append(resp, msg...))
}
