package kvstore

import (
	"errors"
	"fmt"

	"solros/internal/sim"
	"solros/internal/telemetry"
)

// ErrRemote wraps a StatusError message from the server.
var ErrRemote = errors.New("kvstore: server error")

// Client speaks the KV wire protocol over any Stream — a netstack.Side
// for external clients coming through the TCP proxy, or a
// dataplane.Socket for co-processor-local callers. Content routing binds
// a connection to the shard owning its first request's key, so callers
// pool one client per shard (OwnerShard tells them which).
type Client struct {
	s   Stream
	req []byte // reused encode scratch
	tel *telemetry.Sink
}

// NewClient wraps an established stream.
func NewClient(s Stream) *Client { return &Client{s: s} }

// EnableTracing makes every request embed the caller's current trace
// context (tel.Current at call time) in the wire header, so the server's
// serve span — and the delegated I/O under it — joins the caller's
// causal tree. A nil sink (or no open traced span) leaves the wire
// untraced, byte-identical to a client without tracing.
func (c *Client) EnableTracing(tel *telemetry.Sink) { c.tel = tel }

// ctx resolves the trace context to embed in the next request.
func (c *Client) ctx(p *sim.Proc) telemetry.TraceCtx {
	return c.tel.Current(p)
}

// Get fetches key. found=false means the key does not exist.
func (c *Client) Get(p *sim.Proc, key string) (val []byte, found bool, err error) {
	c.req = AppendGetCtx(c.req[:0], key, c.ctx(p))
	if _, err = c.s.Send(p, c.req); err != nil {
		return nil, false, err
	}
	status, err := c.status(p)
	if err != nil || status == StatusNotFound {
		return nil, false, err
	}
	vl, err := c.s.RecvFull(p, 4)
	if err != nil {
		return nil, false, err
	}
	val, err = c.s.RecvFull(p, decodeUint32(vl))
	return val, err == nil, err
}

// Put stores val under key.
func (c *Client) Put(p *sim.Proc, key string, val []byte) error {
	c.req = AppendPutCtx(c.req[:0], key, val, c.ctx(p))
	if _, err := c.s.Send(p, c.req); err != nil {
		return err
	}
	_, err := c.status(p)
	return err
}

// Delete removes key; found=false means it did not exist.
func (c *Client) Delete(p *sim.Proc, key string) (found bool, err error) {
	c.req = AppendDeleteCtx(c.req[:0], key, c.ctx(p))
	if _, err = c.s.Send(p, c.req); err != nil {
		return false, err
	}
	status, err := c.status(p)
	return err == nil && status == StatusOK, err
}

// Scan returns up to limit entries whose keys carry prefix, in key order
// within the connection's shard.
func (c *Client) Scan(p *sim.Proc, prefix string, limit int) ([]KV, error) {
	c.req = AppendScanCtx(c.req[:0], prefix, limit, c.ctx(p))
	if _, err := c.s.Send(p, c.req); err != nil {
		return nil, err
	}
	if _, err := c.status(p); err != nil {
		return nil, err
	}
	cnt, err := c.s.RecvFull(p, 4)
	if err != nil {
		return nil, err
	}
	out := make([]KV, 0, decodeUint32(cnt))
	for i := 0; i < decodeUint32(cnt); i++ {
		kl, err := c.s.RecvFull(p, 2)
		if err != nil {
			return out, err
		}
		key, err := c.s.RecvFull(p, decodeUint16(kl))
		if err != nil {
			return out, err
		}
		vl, err := c.s.RecvFull(p, 4)
		if err != nil {
			return out, err
		}
		val, err := c.s.RecvFull(p, decodeUint32(vl))
		if err != nil {
			return out, err
		}
		out = append(out, KV{Key: string(key), Val: append([]byte(nil), val...)})
	}
	return out, nil
}

// status reads the one-byte response status, absorbing error payloads.
func (c *Client) status(p *sim.Proc) (byte, error) {
	st, err := c.s.RecvFull(p, 1)
	if err != nil {
		return 0, err
	}
	switch st[0] {
	case StatusOK, StatusNotFound:
		return st[0], nil
	case StatusError:
		ml, err := c.s.RecvFull(p, 2)
		if err != nil {
			return StatusError, err
		}
		msg, err := c.s.RecvFull(p, decodeUint16(ml))
		if err != nil {
			return StatusError, err
		}
		return StatusError, fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	return st[0], fmt.Errorf("kvstore: bad status byte %d", st[0])
}
