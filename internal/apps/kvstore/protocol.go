// Package kvstore is the request-serving application of the reproduction
// (ROADMAP item 3): a sharded key-value/object store served through the
// delegated FS + TCP paths. Each co-processor owns one shard — the
// control plane's content balancer routes every connection by the key in
// its first request (§4.4.3) — and persists its data in an append-only
// log on solrosfs with an in-memory index and periodic compaction, so
// GETs of hot keys become delegated buffered reads (the shared cache's
// natural victim under Zipfian skew) and PUTs become delegated appends.
package kvstore

import (
	"encoding/binary"
	"errors"

	"solros/internal/controlplane"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// Wire protocol (all integers little-endian):
//
//	request:  op(1) keyLen(2) key
//	          op 'P' appends valLen(4) val
//	          op 'S' appends limit(2)           — key is the scan prefix
//	response: status(1)
//	          GET ok       appends valLen(4) val
//	          SCAN ok      appends count(4) then count × (keyLen(2) key valLen(4) val)
//	          any error    appends msgLen(2) msg
//
// Key lengths are a full uint16 — the old examples/kvstore protocol's
// single-byte keyLen silently truncated keys past 255 bytes; this format
// replaces it everywhere (the example now runs on this package).

// Op bytes.
const (
	OpGet    = byte('G')
	OpPut    = byte('P')
	OpDelete = byte('D')
	OpScan   = byte('S')

	// OpTraced flags a request carrying a trace context: the header is
	// followed by TraceCtxLen bytes (trace ID, parent span ID; both
	// little-endian uint64) before the key, and the server joins the
	// sender's causal tree instead of opening a detached span. Op bytes
	// are all < 0x80, so the flag is unambiguous.
	OpTraced = byte(0x80)

	// TraceCtxLen is the wire size of an embedded trace context.
	TraceCtxLen = 16
)

// Status bytes.
const (
	StatusOK       = byte(0)
	StatusNotFound = byte(1)
	StatusError    = byte(2)
)

// Limits. MaxValLen is bounded by the shard's I/O scratch buffer; this is
// the protocol-level cap.
const (
	MaxKeyLen  = 1<<16 - 1
	MaxValLen  = 1 << 20
	MaxScanLen = 1 << 10

	// ReqHdrLen is the fixed request prefix: op + keyLen.
	ReqHdrLen = 3
)

// ErrTooLarge reports a key or value over the protocol limits.
var ErrTooLarge = errors.New("kvstore: key or value exceeds protocol limit")

// AppendGet encodes a GET request.
func AppendGet(dst []byte, key string) []byte {
	return AppendGetCtx(dst, key, telemetry.TraceCtx{})
}

// AppendGetCtx encodes a GET carrying ctx (zero ctx = untraced wire).
func AppendGetCtx(dst []byte, key string, ctx telemetry.TraceCtx) []byte {
	return appendHdr(dst, OpGet, key, ctx)
}

// AppendPut encodes a PUT request.
func AppendPut(dst []byte, key string, val []byte) []byte {
	return AppendPutCtx(dst, key, val, telemetry.TraceCtx{})
}

// AppendPutCtx encodes a PUT carrying ctx.
func AppendPutCtx(dst []byte, key string, val []byte, ctx telemetry.TraceCtx) []byte {
	dst = appendHdr(dst, OpPut, key, ctx)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(val)))
	return append(dst, val...)
}

// AppendDelete encodes a DELETE request.
func AppendDelete(dst []byte, key string) []byte {
	return AppendDeleteCtx(dst, key, telemetry.TraceCtx{})
}

// AppendDeleteCtx encodes a DELETE carrying ctx.
func AppendDeleteCtx(dst []byte, key string, ctx telemetry.TraceCtx) []byte {
	return appendHdr(dst, OpDelete, key, ctx)
}

// AppendScan encodes a SCAN request: up to limit entries with keys ≥
// prefix that carry it as a prefix, in key order.
func AppendScan(dst []byte, prefix string, limit int) []byte {
	return AppendScanCtx(dst, prefix, limit, telemetry.TraceCtx{})
}

// AppendScanCtx encodes a SCAN carrying ctx.
func AppendScanCtx(dst []byte, prefix string, limit int, ctx telemetry.TraceCtx) []byte {
	dst = appendHdr(dst, OpScan, prefix, ctx)
	return binary.LittleEndian.AppendUint16(dst, uint16(limit))
}

func appendHdr(dst []byte, op byte, key string, ctx telemetry.TraceCtx) []byte {
	if len(key) > MaxKeyLen {
		panic("kvstore: key exceeds uint16 length prefix")
	}
	if ctx.Traced() {
		dst = append(dst, op|OpTraced)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
		dst = binary.LittleEndian.AppendUint64(dst, ctx.Trace)
		dst = binary.LittleEndian.AppendUint64(dst, ctx.Span)
		return append(dst, key...)
	}
	dst = append(dst, op)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	return append(dst, key...)
}

// BalanceKey is the content-balancer key extractor for this protocol: it
// hashes the key of a connection's first request, so the connection lands
// on the shard that owns the key. Incomplete first frames (shorter than
// the header, or truncated mid-key) hash what is present after the
// header — the balancer's modular placement still gives them a valid,
// deterministic member; a well-formed client's first request always
// arrives whole, so in practice every connection reaches its key's owner.
func BalanceKey(first []byte) uint32 {
	if len(first) < ReqHdrLen {
		return 0
	}
	kl := int(binary.LittleEndian.Uint16(first[1:3]))
	// A traced request interposes the 16-byte trace context between the
	// header and the key; skipping it keeps placement identical to the
	// untraced wire, so tracing never moves a connection to another shard.
	start := ReqHdrLen
	if first[0]&OpTraced != 0 {
		start += TraceCtxLen
	}
	end := start + kl
	if end > len(first) {
		end = len(first)
	}
	if start > len(first) {
		start = len(first)
	}
	return controlplane.FNV1a(first[start:end])
}

// OwnerShard reports which of n shards owns key — the same placement the
// content balancer computes from a request's first bytes.
func OwnerShard(key string, n int) int {
	return int(controlplane.FNV1a([]byte(key))) % n
}

// Balancer returns the control-plane balancer routing connections by this
// protocol's keys.
func Balancer() *controlplane.ContentBalancer {
	return &controlplane.ContentBalancer{Key: BalanceKey}
}

// KV is one decoded key/value pair of a scan response.
type KV struct {
	Key string
	Val []byte
}

// Stream is the byte-stream surface the client and server loops need;
// netstack.Side (external clients) and dataplane.Socket (co-processor
// side) both provide it.
type Stream interface {
	Send(p *sim.Proc, data []byte) (int, error)
	RecvFull(p *sim.Proc, n int) ([]byte, error)
}

// decodeUint16 and decodeUint32 are tiny helpers shared by the parsers.
func decodeUint16(b []byte) int { return int(binary.LittleEndian.Uint16(b)) }
func decodeUint32(b []byte) int { return int(binary.LittleEndian.Uint32(b)) }
