package kvstore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"solros/internal/core"
	"solros/internal/sim"
)

// withShard runs fn against a fresh single-phi machine and an opened
// shard configured by opts.
func withShard(t *testing.T, opts Options, fn func(p *sim.Proc, s *Shard)) {
	t.Helper()
	m := core.NewMachine(core.Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *core.Machine) {
		s := NewShard(m, 0, opts)
		if err := s.Open(p); err != nil {
			t.Fatalf("open: %v", err)
		}
		fn(p, s)
	})
}

func mustPut(t *testing.T, p *sim.Proc, s *Shard, key, val string) {
	t.Helper()
	if err := s.Put(p, key, []byte(val)); err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
}

func mustGet(t *testing.T, p *sim.Proc, s *Shard, key, want string) {
	t.Helper()
	got, found, err := s.Get(p, key)
	if err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	if !found {
		t.Fatalf("get %q: not found, want %q", key, want)
	}
	if string(got) != want {
		t.Fatalf("get %q = %q, want %q", key, got, want)
	}
}

func checkCoherent(t *testing.T, p *sim.Proc, s *Shard) {
	t.Helper()
	if err := s.Check(); err != nil {
		t.Fatalf("coherence check: %v", err)
	}
	if err := s.VerifyLog(p); err != nil {
		t.Fatalf("log verification: %v", err)
	}
}

func TestPutGetDelete(t *testing.T) {
	withShard(t, Options{}, func(p *sim.Proc, s *Shard) {
		mustPut(t, p, s, "alpha", "one")
		mustPut(t, p, s, "beta", "two")
		mustGet(t, p, s, "alpha", "one")
		mustGet(t, p, s, "beta", "two")

		if _, found, _ := s.Get(p, "gamma"); found {
			t.Fatal("get of absent key reported found")
		}
		found, err := s.Delete(p, "alpha")
		if err != nil || !found {
			t.Fatalf("delete alpha: found=%v err=%v", found, err)
		}
		if _, found, _ := s.Get(p, "alpha"); found {
			t.Fatal("deleted key still readable")
		}
		if found, _ := s.Delete(p, "alpha"); found {
			t.Fatal("double delete reported found")
		}
		mustGet(t, p, s, "beta", "two")
		checkCoherent(t, p, s)

		st := s.Stats()
		if st.Keys != 1 || st.Gets != 5 || st.Puts != 2 || st.Deletes != 2 || st.Misses != 3 {
			t.Fatalf("stats: %+v", st)
		}
	})
}

func TestOverwriteAccounting(t *testing.T) {
	withShard(t, Options{}, func(p *sim.Proc, s *Shard) {
		mustPut(t, p, s, "k", "short")
		mustPut(t, p, s, "k", "a longer replacement value")
		mustGet(t, p, s, "k", "a longer replacement value")
		st := s.Stats()
		wantDead := int64(recHdrLen + 1 + len("short"))
		if st.DeadBytes != wantDead {
			t.Fatalf("dead bytes %d after overwrite, want %d", st.DeadBytes, wantDead)
		}
		if st.LiveBytes+st.DeadBytes != st.LogBytes {
			t.Fatalf("accounting identity broken: %+v", st)
		}
		checkCoherent(t, p, s)
	})
}

// TestLongKeys pins the reason the protocol moved to uint16 key lengths:
// keys past the old single-byte limit round-trip intact.
func TestLongKeys(t *testing.T) {
	withShard(t, Options{}, func(p *sim.Proc, s *Shard) {
		long := strings.Repeat("k", 300)
		mustPut(t, p, s, long, "long-key-value")
		mustGet(t, p, s, long, "long-key-value")
		checkCoherent(t, p, s)
	})
}

func TestScanPrefixOrderAndLimit(t *testing.T) {
	withShard(t, Options{}, func(p *sim.Proc, s *Shard) {
		for _, k := range []string{"b:2", "a:3", "b:1", "a:1", "c:1", "a:2"} {
			mustPut(t, p, s, k, "v-"+k)
		}
		var got []string
		err := s.Scan(p, "a:", 0, func(k string, v []byte) bool {
			if string(v) != "v-"+k {
				t.Errorf("scan %q carries value %q", k, v)
			}
			got = append(got, k)
			return true
		})
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if want := []string{"a:1", "a:2", "a:3"}; fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("scan a: = %v, want %v", got, want)
		}
		got = got[:0]
		s.Scan(p, "", 2, func(k string, v []byte) bool { got = append(got, k); return true })
		if want := []string{"a:1", "a:2"}; fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("limited scan = %v, want %v", got, want)
		}
	})
}

func TestCompaction(t *testing.T) {
	withShard(t, Options{Compact: true, CompactEvery: 1, CompactFrac: 0.3}, func(p *sim.Proc, s *Shard) {
		val := strings.Repeat("v", 100)
		for round := 0; round < 6; round++ {
			for k := 0; k < 8; k++ {
				mustPut(t, p, s, fmt.Sprintf("key-%d", k), fmt.Sprintf("%s-%d", val, round))
			}
		}
		st := s.Stats()
		if st.Compactions == 0 {
			t.Fatalf("no compaction after 6 rounds of overwrites: %+v", st)
		}
		if st.LogBytes >= 6*8*100 {
			t.Fatalf("log grew to %d bytes; compaction did not reclaim", st.LogBytes)
		}
		for k := 0; k < 8; k++ {
			mustGet(t, p, s, fmt.Sprintf("key-%d", k), val+"-5")
		}
		checkCoherent(t, p, s)
	})
}

func TestCompactionOffByDefault(t *testing.T) {
	withShard(t, Options{CompactEvery: 1, CompactFrac: 0.01}, func(p *sim.Proc, s *Shard) {
		for round := 0; round < 4; round++ {
			mustPut(t, p, s, "k", fmt.Sprintf("round-%d", round))
		}
		if st := s.Stats(); st.Compactions != 0 {
			t.Fatalf("compaction ran %d times with the knob off", st.Compactions)
		}
	})
}

// TestRecovery closes a shard and reopens its log under a new shard with
// a deliberately tiny I/O buffer, so records straddle the chunked replay.
func TestRecovery(t *testing.T) {
	m := core.NewMachine(core.Config{Phis: 1})
	m.MustRun(func(p *sim.Proc, m *core.Machine) {
		s := NewShard(m, 0, Options{})
		if err := s.Open(p); err != nil {
			t.Fatalf("open: %v", err)
		}
		long := strings.Repeat("L", 280)
		mustPut(t, p, s, "keep-1", "v1")
		mustPut(t, p, s, "drop", "dead")
		mustPut(t, p, s, long, strings.Repeat("x", 500))
		mustPut(t, p, s, "keep-2", "v2")
		mustPut(t, p, s, "keep-1", "v1-final")
		if _, err := s.Delete(p, "drop"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		want := s.Stats()
		if err := s.Close(p); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Tiny buffer: 64-byte replay chunks versus ~800-byte records, so
		// every record straddles chunk boundaries. (64 bytes is too small
		// to serve the long value, so this shard only checks accounting.)
		r := NewShard(m, 0, Options{BufBytes: 64})
		if err := r.Open(p); err != nil {
			t.Fatalf("reopen (chunked): %v", err)
		}
		st := r.Stats()
		if st.Keys != want.Keys || st.LiveBytes != want.LiveBytes || st.DeadBytes != want.DeadBytes || st.LogBytes != want.LogBytes {
			t.Fatalf("chunked recovery accounting %+v, want %+v", st, want)
		}
		if err := r.Check(); err != nil {
			t.Fatalf("recovered shard incoherent: %v", err)
		}
		if err := r.Close(p); err != nil {
			t.Fatalf("close chunked: %v", err)
		}

		// Full-size reopen serves reads.
		r2 := NewShard(m, 0, Options{})
		if err := r2.Open(p); err != nil {
			t.Fatalf("reopen: %v", err)
		}
		mustGet(t, p, r2, "keep-1", "v1-final")
		mustGet(t, p, r2, "keep-2", "v2")
		if _, found, _ := r2.Get(p, "drop"); found {
			t.Fatal("tombstoned key resurrected by recovery")
		}
		got, found, err := r2.Get(p, long)
		if err != nil || !found {
			t.Fatalf("long key lost in recovery: found=%v err=%v", found, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte("x"), 500)) {
			t.Fatalf("long key value corrupted: %d bytes", len(got))
		}
		checkCoherent(t, p, r2)
	})
}

// TestConfigKnobsInherited checks that shard options mirror the machine's
// serve knobs and that NewShard's defaults land.
func TestConfigKnobsInherited(t *testing.T) {
	m := core.NewMachine(core.Config{Phis: 1, KVCompact: true, KVCompactFrac: 0.25, KVCompactEvery: 7})
	s := NewShard(m, 0, Options{})
	if !s.opts.Compact || s.opts.CompactFrac != 0.25 || s.opts.CompactEvery != 7 {
		t.Fatalf("options did not inherit machine knobs: %+v", s.opts)
	}
	d := NewShard(core.NewMachine(core.Config{Phis: 1}), 0, Options{})
	if d.opts.Compact || d.opts.CompactFrac != 0.5 || d.opts.CompactEvery != 64 || d.opts.Path != "/kv-shard-0.log" {
		t.Fatalf("defaults wrong: %+v", d.opts)
	}
}

func TestOwnerShardMatchesBalanceKey(t *testing.T) {
	for _, key := range []string{"a", "user123", strings.Repeat("z", 400), ""} {
		first := AppendGet(nil, key)
		for _, n := range []int{1, 2, 3, 5} {
			if got, want := int(BalanceKey(first))%n, OwnerShard(key, n); got != want {
				t.Fatalf("key %q over %d shards: balancer picks %d, OwnerShard says %d", key, n, got, want)
			}
		}
	}
}

func TestEncodersRoundTripLimits(t *testing.T) {
	if AppendGet(nil, "k")[0] != OpGet {
		t.Fatal("AppendGet op byte")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized key did not panic the encoder")
		}
	}()
	AppendGet(nil, strings.Repeat("k", MaxKeyLen+1))
}
