package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"solros/internal/core"
	"solros/internal/cpu"
	"solros/internal/dataplane"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// On-log record format (all integers little-endian):
//
//	keyLen(2) valLen(4) key val
//
// valLen == tombstone marks a delete; tombstone records carry no value
// bytes. The log is append-only: a key's latest record wins, so replaying
// the log front to back rebuilds the index exactly (Recover), and the
// ratio of dead to total bytes drives compaction.
const (
	recHdrLen = 6
	tombstone = uint32(0xFFFFFFFF)
)

// Options sizes one shard.
type Options struct {
	// Path is the shard's log file (default "/kv-shard-<id>.log").
	Path string
	// Compact arms online log compaction (default off — mirrored from
	// core.Config.KVCompact by NewShard).
	Compact bool
	// CompactFrac is the dead-byte fraction of the log that triggers a
	// compaction (default 0.5).
	CompactFrac float64
	// CompactEvery is how many appends pass between compaction checks
	// (default 64).
	CompactEvery int
	// BufBytes sizes the shard's I/O scratch in co-processor memory; one
	// record (header + key + value) must fit (default 128 KB).
	BufBytes int64
	// OpCompute is the per-request index/service compute charged to the
	// shard's core (default 2 µs).
	OpCompute sim.Time
}

func (o *Options) fill(id int, cfg core.Config) {
	if o.Path == "" {
		o.Path = fmt.Sprintf("/kv-shard-%d.log", id)
	}
	if cfg.KVCompact {
		o.Compact = true
	}
	if o.CompactFrac == 0 {
		o.CompactFrac = cfg.KVCompactFrac
	}
	if o.CompactFrac == 0 {
		o.CompactFrac = 0.5
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = cfg.KVCompactEvery
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 64
	}
	if o.BufBytes == 0 {
		o.BufBytes = 128 << 10
	}
	if o.OpCompute == 0 {
		o.OpCompute = 2 * sim.Microsecond
	}
}

// entry locates a live value in the log.
type entry struct {
	off  int64 // offset of the record (header) in the log
	vlen int32
	klen int32
}

func (e entry) recLen() int64 { return recHdrLen + int64(e.klen) + int64(e.vlen) }
func (e entry) valOff() int64 { return e.off + recHdrLen + int64(e.klen) }

// Stats is a shard's served-operation and storage accounting.
type Stats struct {
	Gets, Puts, Deletes, Scans int64
	Misses                     int64
	Compactions                int64
	LogBytes, LiveBytes        int64
	DeadBytes                  int64
	Keys                       int
}

// Shard is one co-processor's slice of the store: an in-memory index over
// an append-only log on solrosfs, accessed through the delegated FS stub
// so every GET is a (cacheable) delegated read and every PUT a delegated
// append. A shard is single-proc: one serving proc owns all mutations
// (the store mirrors a run-to-completion event loop, like the paper's
// per-co-processor services), so there is no lock; the coherence oracle
// only reads.
type Shard struct {
	ID   int
	opts Options

	fs    *dataplane.FSClient
	core  *cpu.Core
	fd    dataplane.Fd
	buf   dataplane.Buffer
	stage dataplane.Buffer // compaction/verification scratch

	idx    map[string]entry
	sorted []string // live keys in order, for deterministic scans

	logOff    int64 // append offset == log size
	liveBytes int64 // sum of live record lengths
	deadBytes int64 // logOff - liveBytes (overwritten, deleted, tombstones)
	appends   int   // since the last compaction check
	stats     Stats

	// compacting marks the window where the log is being rewritten and
	// the in-memory accounting intentionally disagrees with the old file;
	// the coherence oracle skips deep checks inside it.
	compacting bool
	opened     bool

	tel     *telemetry.Sink
	latGet  *telemetry.Hist
	latPut  *telemetry.Hist
	latScan *telemetry.Hist
}

// NewShard builds shard i of machine m. Options zero-values inherit the
// machine's serve knobs (core.Config.KVCompact*) and then the package
// defaults; the shard is not usable until Open.
func NewShard(m *core.Machine, i int, opts Options) *Shard {
	opts.fill(i, m.Config())
	phi := m.Phis[i]
	s := &Shard{
		ID:   i,
		opts: opts,
		fs:   phi.FS,
		core: phi.Pool.Core(0),
		idx:  make(map[string]entry),
		tel:  m.Telemetry(),
	}
	s.latGet = s.tel.Histogram("apps.kvstore.get")
	s.latPut = s.tel.Histogram("apps.kvstore.put")
	s.latScan = s.tel.Histogram("apps.kvstore.scan")
	return s
}

// Open creates (or opens) the shard's log and rebuilds the index from any
// existing records — the recovery path a proxy Reattach composes with:
// the fid survives in the proxy's namespace, and a shard restarted from
// the log alone reaches the exact pre-crash index.
func (s *Shard) Open(p *sim.Proc) error {
	fd, err := s.fs.Open(p, s.opts.Path, ninep.OCreate|ninep.OBuffer)
	if err != nil {
		return err
	}
	s.fd = fd
	if s.buf.Data == nil {
		s.buf = s.fs.AllocBuffer(s.opts.BufBytes)
		s.stage = s.fs.AllocBuffer(s.opts.BufBytes)
	}
	s.opened = true
	size, _, err := s.fs.Stat(p, s.opts.Path)
	if err != nil {
		return err
	}
	if size > 0 {
		return s.recover(p, size)
	}
	return nil
}

// Close releases the shard's log descriptor.
func (s *Shard) Close(p *sim.Proc) error {
	if !s.opened {
		return nil
	}
	s.opened = false
	return s.fs.Close(p, s.fd)
}

// Get reads key's value through the delegated read path into the shard
// scratch; the returned slice is valid until the next shard operation.
func (s *Shard) Get(p *sim.Proc, key string) ([]byte, bool, error) {
	s.core.Compute(p, s.opts.OpCompute)
	s.stats.Gets++
	e, ok := s.idx[key]
	if !ok {
		s.stats.Misses++
		return nil, false, nil
	}
	start := p.Now()
	if _, err := s.fs.Read(p, s.fd, e.valOff(), s.buf, int64(e.vlen)); err != nil {
		return nil, false, err
	}
	s.latGet.ObserveAt(p, p.Now()-start)
	return s.buf.Data[:e.vlen], true, nil
}

// Put appends a record for key and repoints the index. The append goes
// out before the index mutates, so the log is never behind the index.
func (s *Shard) Put(p *sim.Proc, key string, val []byte) error {
	s.core.Compute(p, s.opts.OpCompute)
	if len(key) > MaxKeyLen || len(val) > MaxValLen {
		return ErrTooLarge
	}
	rec := int64(recHdrLen + len(key) + len(val))
	if rec > int64(len(s.buf.Data)) {
		return ErrTooLarge
	}
	start := p.Now()
	off := s.logOff
	s.encodeRecord(key, uint32(len(val)), val)
	if _, err := s.fs.Write(p, s.fd, off, s.buf, rec); err != nil {
		return err
	}
	// Commit point: mutate index and accounting together, with no yields
	// in between, so every dispatch sees a coherent store.
	old, existed := s.idx[key]
	s.idx[key] = entry{off: off, vlen: int32(len(val)), klen: int32(len(key))}
	s.logOff = off + rec
	s.liveBytes += rec
	if existed {
		s.liveBytes -= old.recLen()
		s.deadBytes += old.recLen()
	} else {
		s.insertSorted(key)
	}
	s.stats.Puts++
	s.latPut.ObserveAt(p, p.Now()-start)
	s.appends++
	return s.maybeCompact(p)
}

// Delete appends a tombstone and drops key from the index; it reports
// whether the key existed.
func (s *Shard) Delete(p *sim.Proc, key string) (bool, error) {
	s.core.Compute(p, s.opts.OpCompute)
	old, existed := s.idx[key]
	if !existed {
		s.stats.Deletes++
		s.stats.Misses++
		return false, nil
	}
	rec := int64(recHdrLen + len(key))
	off := s.logOff
	s.encodeRecord(key, tombstone, nil)
	if _, err := s.fs.Write(p, s.fd, off, s.buf, rec); err != nil {
		return false, err
	}
	delete(s.idx, key)
	s.removeSorted(key)
	s.logOff = off + rec
	s.liveBytes -= old.recLen()
	s.deadBytes += old.recLen() + rec // old record and the tombstone itself
	s.stats.Deletes++
	s.appends++
	return true, s.maybeCompact(p)
}

// Scan streams up to limit live entries whose key carries prefix, in key
// order, to fn; fn's val slice is only valid during the call. fn
// returning false stops the scan early.
func (s *Shard) Scan(p *sim.Proc, prefix string, limit int, fn func(key string, val []byte) bool) error {
	s.core.Compute(p, s.opts.OpCompute)
	s.stats.Scans++
	if limit <= 0 || limit > MaxScanLen {
		limit = MaxScanLen
	}
	start := p.Now()
	i := sort.SearchStrings(s.sorted, prefix)
	for n := 0; i < len(s.sorted) && n < limit; i++ {
		key := s.sorted[i]
		if len(key) < len(prefix) || key[:len(prefix)] != prefix {
			break
		}
		e := s.idx[key]
		if _, err := s.fs.Read(p, s.fd, e.valOff(), s.buf, int64(e.vlen)); err != nil {
			return err
		}
		n++
		if !fn(key, s.buf.Data[:e.vlen]) {
			break
		}
	}
	s.latScan.ObserveAt(p, p.Now()-start)
	return nil
}

// encodeRecord stages one record at the start of the shard scratch.
func (s *Shard) encodeRecord(key string, vlen uint32, val []byte) {
	b := s.buf.Data
	binary.LittleEndian.PutUint16(b[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(b[2:6], vlen)
	copy(b[recHdrLen:], key)
	copy(b[recHdrLen+len(key):], val)
}

func (s *Shard) insertSorted(key string) {
	i := sort.SearchStrings(s.sorted, key)
	s.sorted = append(s.sorted, "")
	copy(s.sorted[i+1:], s.sorted[i:])
	s.sorted[i] = key
}

func (s *Shard) removeSorted(key string) {
	i := sort.SearchStrings(s.sorted, key)
	if i < len(s.sorted) && s.sorted[i] == key {
		s.sorted = append(s.sorted[:i], s.sorted[i+1:]...)
	}
}

// maybeCompact runs a compaction when the knob is armed, the check period
// elapsed, and dead bytes crossed the configured fraction of the log.
func (s *Shard) maybeCompact(p *sim.Proc) error {
	if !s.opts.Compact || s.appends < s.opts.CompactEvery {
		return nil
	}
	s.appends = 0
	if s.logOff == 0 || float64(s.deadBytes)/float64(s.logOff) < s.opts.CompactFrac {
		return nil
	}
	return s.Compact(p)
}

// Compact rewrites the live records into a fresh log (in key order —
// deterministic, and it leaves scans sequential on disk), swaps it in
// place of the old one, and repoints the index. The shard is unavailable
// for the duration: the serving proc runs the compaction inline, exactly
// like a single-threaded store stalling on maintenance — the serve
// experiment's tail latencies show it, which is the point of making
// compaction a policy under contention.
func (s *Shard) Compact(p *sim.Proc) error {
	s.compacting = true
	defer func() { s.compacting = false }()
	tmp := s.opts.Path + ".compact"
	tfd, err := s.fs.Open(p, tmp, ninep.OCreate|ninep.OBuffer)
	if err != nil {
		return err
	}
	newIdx := make(map[string]entry, len(s.idx))
	var newOff int64
	// Records are staged through the dedicated stage scratch: s.buf holds
	// the value just read, and records are sized against a full buffer.
	stage := s.stage
	for _, key := range s.sorted {
		e := s.idx[key]
		if _, err := s.fs.Read(p, s.fd, e.valOff(), s.buf, int64(e.vlen)); err != nil {
			return err
		}
		rec := int64(recHdrLen + len(key) + int(e.vlen))
		b := stage.Data
		binary.LittleEndian.PutUint16(b[0:2], uint16(len(key)))
		binary.LittleEndian.PutUint32(b[2:6], uint32(e.vlen))
		copy(b[recHdrLen:], key)
		copy(b[recHdrLen+len(key):], s.buf.Data[:e.vlen])
		if _, err := s.fs.Write(p, tfd, newOff, stage, rec); err != nil {
			return err
		}
		newIdx[key] = entry{off: newOff, vlen: e.vlen, klen: int32(len(key))}
		newOff += rec
	}
	if err := s.fs.Close(p, tfd); err != nil {
		return err
	}
	if err := s.fs.Close(p, s.fd); err != nil {
		return err
	}
	if err := s.fs.Unlink(p, s.opts.Path); err != nil {
		return err
	}
	if err := s.fs.Rename(p, tmp, s.opts.Path); err != nil {
		return err
	}
	fd, err := s.fs.Open(p, s.opts.Path, ninep.OBuffer)
	if err != nil {
		return err
	}
	// Commit point: swap everything at once.
	s.fd = fd
	s.idx = newIdx
	s.logOff = newOff
	s.liveBytes = newOff
	s.deadBytes = 0
	s.stats.Compactions++
	return nil
}

// recover rebuilds the index by replaying the log front to back in
// scratch-sized chunks (records may straddle chunk boundaries).
func (s *Shard) recover(p *sim.Proc, size int64) error {
	s.compacting = true // accounting is inconsistent until replay finishes
	defer func() { s.compacting = false }()
	var carry []byte
	var off int64
	var recStart int64
	for off < size || len(carry) > 0 {
		if off < size {
			n := size - off
			if n > int64(len(s.buf.Data)) {
				n = int64(len(s.buf.Data))
			}
			if _, err := s.fs.Read(p, s.fd, off, s.buf, n); err != nil {
				return err
			}
			carry = append(carry, s.buf.Data[:n]...)
			off += n
		}
		consumed := 0
		for {
			rest := carry[consumed:]
			if len(rest) < recHdrLen {
				break
			}
			klen := decodeUint16(rest[0:2])
			vlen32 := binary.LittleEndian.Uint32(rest[2:6])
			vlen := 0
			if vlen32 != tombstone {
				vlen = int(vlen32)
			}
			rec := recHdrLen + klen + vlen
			if len(rest) < rec {
				break
			}
			key := string(rest[recHdrLen : recHdrLen+klen])
			e := entry{off: recStart, klen: int32(klen)}
			if vlen32 == tombstone {
				if old, ok := s.idx[key]; ok {
					s.liveBytes -= old.recLen()
					s.deadBytes += old.recLen()
				}
				s.deadBytes += int64(rec)
				delete(s.idx, key)
			} else {
				e.vlen = int32(vlen)
				if old, ok := s.idx[key]; ok {
					s.liveBytes -= old.recLen()
					s.deadBytes += old.recLen()
				}
				s.idx[key] = e
				s.liveBytes += int64(rec)
			}
			recStart += int64(rec)
			consumed += rec
		}
		if consumed == 0 && off >= size {
			return fmt.Errorf("kvstore: shard %d: trailing garbage at log offset %d", s.ID, recStart)
		}
		carry = carry[consumed:]
	}
	s.logOff = size
	s.sorted = s.sorted[:0]
	for key := range s.idx {
		s.sorted = append(s.sorted, key)
	}
	sort.Strings(s.sorted)
	return nil
}

// Stats snapshots the shard's counters.
func (s *Shard) Stats() Stats {
	st := s.stats
	st.LogBytes = s.logOff
	st.LiveBytes = s.liveBytes
	st.DeadBytes = s.deadBytes
	st.Keys = len(s.idx)
	return st
}

// Check is the cheap log/index coherence invariant the explore oracle
// polls at every scheduling decision: index and sorted agree, every entry
// lies inside the log, and the byte accounting identity live + dead ==
// logged holds. It must not block or advance virtual time, so it never
// touches the file system. Mid-compaction and mid-recovery states are
// skipped — the store is mid-swap by design there.
func (s *Shard) Check() error {
	if s.compacting {
		return nil
	}
	if len(s.idx) != len(s.sorted) {
		return fmt.Errorf("kvstore: shard %d: index has %d keys, sorted list %d", s.ID, len(s.idx), len(s.sorted))
	}
	for i, key := range s.sorted {
		if i > 0 && s.sorted[i-1] >= key {
			return fmt.Errorf("kvstore: shard %d: sorted list out of order at %d (%q >= %q)", s.ID, i, s.sorted[i-1], key)
		}
		e, ok := s.idx[key]
		if !ok {
			return fmt.Errorf("kvstore: shard %d: sorted key %q missing from index", s.ID, key)
		}
		if int(e.klen) != len(key) {
			return fmt.Errorf("kvstore: shard %d: key %q indexed with klen %d", s.ID, key, e.klen)
		}
		if e.off < 0 || e.off+e.recLen() > s.logOff {
			return fmt.Errorf("kvstore: shard %d: key %q record [%d,%d) outside log [0,%d)", s.ID, key, e.off, e.off+e.recLen(), s.logOff)
		}
	}
	if s.liveBytes+s.deadBytes != s.logOff {
		return fmt.Errorf("kvstore: shard %d: live %d + dead %d != logged %d", s.ID, s.liveBytes, s.deadBytes, s.logOff)
	}
	return nil
}

// VerifyLog is the deep coherence check workloads run at quiesce points:
// it replays the on-disk log into a fresh index and compares it to the
// live one entry by entry. Unlike Check it issues delegated reads, so it
// must run from a proc that owns the shard (no concurrent server).
func (s *Shard) VerifyLog(p *sim.Proc) error {
	replay := &Shard{
		ID:   s.ID,
		opts: s.opts,
		fs:   s.fs,
		core: s.core,
		fd:   s.fd,
		buf:  s.stage, // quiesced: the compaction scratch is free
		idx:  make(map[string]entry),
	}
	if err := replay.recover(p, s.logOff); err != nil {
		return err
	}
	if len(replay.idx) != len(s.idx) {
		return fmt.Errorf("kvstore: shard %d: log replays to %d keys, index has %d", s.ID, len(replay.idx), len(s.idx))
	}
	for key, want := range s.idx {
		got, ok := replay.idx[key]
		if !ok {
			return fmt.Errorf("kvstore: shard %d: key %q in index but not in log replay", s.ID, key)
		}
		if got != want {
			return fmt.Errorf("kvstore: shard %d: key %q replays to %+v, index holds %+v", s.ID, key, got, want)
		}
	}
	if replay.liveBytes != s.liveBytes || replay.deadBytes != s.deadBytes {
		return fmt.Errorf("kvstore: shard %d: replay accounting live=%d dead=%d, index holds live=%d dead=%d",
			s.ID, replay.liveBytes, replay.deadBytes, s.liveBytes, s.deadBytes)
	}
	return nil
}
