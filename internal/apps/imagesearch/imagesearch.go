// Package imagesearch is the paper's second realistic application (§6.2):
// a similarity-search server. A database of image descriptors lives on the
// file system; queries arrive over the network; each query linearly scans
// the database for the nearest neighbour (L1 distance over byte vectors).
// The scan is real computation over real bytes, additionally charged to
// the executing core class — this is the data-parallel workload where the
// Phi's many lean cores shine, so Solros's win comes from the I/O and
// network path (the paper reports 2x, not 19x).
package imagesearch

import (
	"solros/internal/cpu"
	"solros/internal/sim"
	"solros/internal/workload"
)

// PerByteCompute is the distance-computation cost per database byte on a
// fast host core; Phi cores pay the compute slowdown but parallelize.
const PerByteCompute = 1 // nanosecond per byte (SIMD-friendly inner loop)

// DB is an in-memory descriptor database (loaded from the file system by
// the harness).
type DB struct {
	Vectors []byte // n contiguous FeatureDim-byte records
}

// Len reports the number of descriptors.
func (db *DB) Len() int { return len(db.Vectors) / workload.FeatureDim }

// Search scans records [lo, hi) for the nearest neighbour of q and
// returns its index and distance, charging compute to the core.
func (db *DB) Search(p *sim.Proc, core *cpu.Core, q []byte, lo, hi int) (best int, bestDist int) {
	if len(q) != workload.FeatureDim {
		panic("imagesearch: bad query dimension")
	}
	best, bestDist = -1, 1<<31-1
	for i := lo; i < hi; i++ {
		rec := db.Vectors[i*workload.FeatureDim : (i+1)*workload.FeatureDim]
		d := 0
		for k := 0; k < workload.FeatureDim; k++ {
			diff := int(rec[k]) - int(q[k])
			if diff < 0 {
				diff = -diff
			}
			d += diff
			if d >= bestDist {
				break
			}
		}
		if d < bestDist {
			bestDist = d
			best = i
		}
	}
	core.Compute(p, sim.Time(int64(hi-lo)*workload.FeatureDim*PerByteCompute))
	return best, bestDist
}

// SearchParallel fans a query across n workers on a pool and reduces the
// best match; workers run as child procs of p.
func (db *DB) SearchParallel(p *sim.Proc, pool *cpu.Pool, workers int, q []byte) (int, int) {
	if workers < 1 {
		workers = 1
	}
	n := db.Len()
	type result struct{ idx, dist int }
	results := make([]result, workers)
	wg := sim.NewWaitGroup("search")
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		lo := n * w / workers
		hi := n * (w + 1) / workers
		p.Spawn("searcher", func(wp *sim.Proc) {
			idx, dist := db.Search(wp, pool.Core(w), q, lo, hi)
			results[w] = result{idx, dist}
			wp.DoneWG(wg)
		})
	}
	p.WaitWG(wg)
	best, bestDist := -1, 1<<31-1
	for _, r := range results {
		if r.idx >= 0 && r.dist < bestDist {
			best, bestDist = r.idx, r.dist
		}
	}
	return best, bestDist
}
