package imagesearch

import (
	"testing"

	"solros/internal/cpu"
	"solros/internal/sim"
	"solros/internal/workload"
)

func TestFindsPerturbedRecord(t *testing.T) {
	db := &DB{Vectors: workload.Features(1, 500)}
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			q := workload.Query(db.Vectors, i*37)
			best, dist := db.Search(p, &cpu.Core{Kind: cpu.Host}, q, 0, db.Len())
			if best != (i*37)%db.Len() {
				t.Errorf("query %d matched record %d (dist %d), want %d", i, best, dist, (i*37)%db.Len())
			}
		}
	})
	e.MustRun()
}

func TestParallelMatchesSerial(t *testing.T) {
	db := &DB{Vectors: workload.Features(2, 1000)}
	pool := cpu.PhiPool()
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		q := workload.Query(db.Vectors, 123)
		serialIdx, serialDist := db.Search(p, pool.Core(0), q, 0, db.Len())
		parIdx, parDist := db.SearchParallel(p, pool, 16, q)
		if parIdx != serialIdx || parDist != serialDist {
			t.Errorf("parallel (%d,%d) != serial (%d,%d)", parIdx, parDist, serialIdx, serialDist)
		}
	})
	e.MustRun()
}

func TestParallelSpeedsUpWallClock(t *testing.T) {
	db := &DB{Vectors: workload.Features(3, 4000)}
	pool := cpu.PhiPool()
	q := workload.Query(db.Vectors, 5)
	elapsed := func(workers int) sim.Time {
		var dt sim.Time
		e := sim.NewEngine()
		e.Spawn("t", 0, func(p *sim.Proc) {
			start := p.Now()
			db.SearchParallel(p, pool, workers, q)
			dt = p.Now() - start
		})
		e.MustRun()
		return dt
	}
	one, many := elapsed(1), elapsed(32)
	if many*4 >= one {
		t.Fatalf("32 workers (%v) should be >4x faster than 1 (%v)", many, one)
	}
}

func TestPhiAggregateBeatsHostSerial(t *testing.T) {
	// The Phi's 61 slow cores should out-scan a single host core — the
	// reason image search belongs on the co-processor at all.
	db := &DB{Vectors: workload.Features(4, 4000)}
	q := workload.Query(db.Vectors, 9)
	hostTime := func() sim.Time {
		var dt sim.Time
		e := sim.NewEngine()
		e.Spawn("t", 0, func(p *sim.Proc) {
			start := p.Now()
			db.Search(p, &cpu.Core{Kind: cpu.Host}, q, 0, db.Len())
			dt = p.Now() - start
		})
		e.MustRun()
		return dt
	}()
	phiTime := func() sim.Time {
		var dt sim.Time
		e := sim.NewEngine()
		e.Spawn("t", 0, func(p *sim.Proc) {
			start := p.Now()
			db.SearchParallel(p, cpu.PhiPool(), 61, q)
			dt = p.Now() - start
		})
		e.MustRun()
		return dt
	}()
	if phiTime >= hostTime {
		t.Fatalf("61 phi cores (%v) should beat 1 host core (%v)", phiTime, hostTime)
	}
}
