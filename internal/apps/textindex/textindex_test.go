package textindex

import (
	"testing"

	"solros/internal/cpu"
	"solros/internal/sim"
	"solros/internal/workload"
)

func runIndexed(t *testing.T, content []byte) *Index {
	t.Helper()
	ix := NewIndex()
	core := &cpu.Core{Kind: cpu.Host}
	e := sim.NewEngine()
	e.Spawn("t", 0, func(p *sim.Proc) {
		ix.AddDocument(p, core, 0, content)
	})
	e.MustRun()
	return ix
}

func TestTokenizesAndPosts(t *testing.T) {
	ix := runIndexed(t, []byte("solros data plane data"))
	if got := len(ix.Lookup("data")); got != 2 {
		t.Fatalf("postings for 'data' = %d, want 2", got)
	}
	if got := len(ix.Lookup("solros")); got != 1 {
		t.Fatalf("postings for 'solros' = %d, want 1", got)
	}
	if ix.Lookup("solros")[0].Off != 0 {
		t.Fatal("wrong offset for first token")
	}
	if ix.Terms() != 3 {
		t.Fatalf("terms = %d, want 3", ix.Terms())
	}
}

func TestHandlesSeparatorsAndEmpty(t *testing.T) {
	ix := runIndexed(t, []byte("  \n\t a  b\n"))
	if ix.Terms() != 2 {
		t.Fatalf("terms = %d, want 2", ix.Terms())
	}
	ix2 := runIndexed(t, nil)
	if ix2.Terms() != 0 {
		t.Fatal("empty doc produced terms")
	}
}

func TestMergeCombinesShards(t *testing.T) {
	a := runIndexed(t, []byte("x y"))
	b := runIndexed(t, []byte("y z"))
	a.Merge(b)
	if len(a.Lookup("y")) != 2 || a.Docs != 2 {
		t.Fatalf("merge wrong: y=%d docs=%d", len(a.Lookup("y")), a.Docs)
	}
}

func TestComputeChargedByCoreKind(t *testing.T) {
	content := workload.Corpus(1, 1<<20)
	cost := func(kind cpu.Kind) sim.Time {
		var dt sim.Time
		e := sim.NewEngine()
		e.Spawn("t", 0, func(p *sim.Proc) {
			ix := NewIndex()
			start := p.Now()
			ix.AddDocument(p, &cpu.Core{Kind: kind}, 0, content)
			dt = p.Now() - start
		})
		e.MustRun()
		return dt
	}
	h, ph := cost(cpu.Host), cost(cpu.Phi)
	if ph <= h {
		t.Fatalf("phi per-thread compute (%v) should exceed host (%v)", ph, h)
	}
}

func TestCorpusIndexingFindsZipfSkew(t *testing.T) {
	ix := runIndexed(t, workload.Corpus(7, 1<<18))
	// The most common term should dominate.
	max, total := 0, 0
	for _, posts := range ix.Postings {
		if len(posts) > max {
			max = len(posts)
		}
		total += len(posts)
	}
	if max*3 < total/ix.Terms()*10 {
		t.Fatalf("no skew: max=%d mean=%d", max, total/ix.Terms())
	}
}
