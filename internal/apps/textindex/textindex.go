// Package textindex is the paper's first realistic application (§6.2): an
// I/O-intensive text indexer that scans files from the file system and
// builds an inverted index. Tokenization is real code over real bytes; the
// per-byte compute is additionally charged to the core class running it,
// so the experiment captures both the I/O path (where Solros wins big)
// and the compute side (where the Phi's 61 cores compensate for their
// per-thread slowness).
package textindex

import (
	"solros/internal/cpu"
	"solros/internal/sim"
)

// PerByteCompute is the tokenize+insert cost per input byte on a fast
// host core; Phi cores pay the compute slowdown. Indexing is I/O-bound in
// the paper's setup: with all 61 cores scanning, aggregate Phi compute
// bandwidth (61 / (2ns * 6) ~ 5 GB/s) exceeds the SSD.
const PerByteCompute = 2 // nanoseconds per byte

// Index is an inverted index: term -> postings (document id, position).
type Index struct {
	Postings map[string][]Posting
	Docs     int
	Bytes    int64
}

// Posting locates one term occurrence.
type Posting struct {
	Doc int32
	Off int32
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{Postings: make(map[string][]Posting)}
}

// AddDocument tokenizes content (whitespace-separated) and inserts
// postings, charging compute to the given core.
func (ix *Index) AddDocument(p *sim.Proc, core *cpu.Core, doc int32, content []byte) {
	start := 0
	inTok := false
	for i := 0; i <= len(content); i++ {
		isSep := i == len(content) || content[i] == ' ' || content[i] == '\n' || content[i] == '\t'
		if !inTok && !isSep {
			start = i
			inTok = true
		} else if inTok && isSep {
			term := string(content[start:i])
			ix.Postings[term] = append(ix.Postings[term], Posting{Doc: doc, Off: int32(start)})
			inTok = false
		}
	}
	ix.Docs++
	ix.Bytes += int64(len(content))
	core.Compute(p, sim.Time(int64(len(content))*PerByteCompute))
}

// Merge folds other into ix (used to combine per-worker shards).
func (ix *Index) Merge(other *Index) {
	for term, posts := range other.Postings {
		ix.Postings[term] = append(ix.Postings[term], posts...)
	}
	ix.Docs += other.Docs
	ix.Bytes += other.Bytes
}

// Lookup returns the postings for a term.
func (ix *Index) Lookup(term string) []Posting { return ix.Postings[term] }

// Terms reports the number of distinct terms.
func (ix *Index) Terms() int { return len(ix.Postings) }
