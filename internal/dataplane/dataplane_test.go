package dataplane

import (
	"testing"

	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/transport"
)

// echoProxy runs a trivial control-plane loop that answers every request
// with an R-message of the given type.
func echoProxy(p *sim.Proc, req, resp *transport.Port) {
	p.Spawn("echo-proxy", func(wp *sim.Proc) {
		for {
			raw, ok := req.Recv(wp)
			if !ok {
				return
			}
			m, err := ninep.Decode(raw)
			if err != nil {
				panic(err)
			}
			out := &ninep.Msg{Type: ninep.Ropen, Tag: m.Tag, Size: int64(m.Fid)}
			resp.Send(wp, out.Encode())
		}
	})
}

func TestCallRoundTripAndTagMatching(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{CapBytes: 1 << 20})
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		echoProxy(p, reqPort, respPort)
		// Concurrent callers: responses must route back by tag.
		wg := sim.NewWaitGroup("callers")
		wg.Add(8)
		for i := 0; i < 8; i++ {
			fid := uint32(i + 100)
			p.Spawn("caller", func(cp *sim.Proc) {
				defer cp.DoneWG(wg)
				resp, err := conn.Call(cp, &ninep.Msg{Type: ninep.Topen, Fid: fid})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Size != int64(fid) {
					t.Errorf("caller %d got response for fid %d", fid, resp.Size)
				}
			})
		}
		p.WaitWG(wg)
		conn.Close(p)
	})
	e.MustRun()
}

func TestCallAfterCloseFails(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{})
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		// A proxy that never answers; the pending call must fail once
		// the connection closes.
		p.Spawn("mute-proxy", func(wp *sim.Proc) {
			for {
				if _, ok := reqPort.Recv(wp); !ok {
					return
				}
			}
		})
		_ = respPort
		p.Spawn("closer", func(cp *sim.Proc) {
			cp.Advance(100 * sim.Microsecond)
			conn.Close(cp)
		})
		if _, err := conn.Call(p, &ninep.Msg{Type: ninep.Tstat, Name: "/x"}); err == nil {
			t.Error("call survived connection close")
		}
	})
	e.MustRun()
}

func TestAllocBufferDistinct(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, _, _ := NewConn(fab, phi, transport.Options{})
	c := NewFSClient(conn)
	a := c.AllocBuffer(4096)
	b := c.AllocBuffer(4096)
	if a.Addr == b.Addr {
		t.Fatal("buffers share memory")
	}
	a.Data[0] = 1
	if b.Data[0] == 1 && a.Addr+4096 > b.Addr {
		t.Fatal("buffer regions overlap")
	}
}

func TestNetRingPlacement(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	stubOut, stubIn, proxyOut, proxyIn := NewNetRings(fab, phi, transport.Options{})
	// §4.4.1: outbound master at the co-processor, inbound at the host.
	if stubOut.Ring() == stubIn.Ring() {
		t.Fatal("rings must be distinct")
	}
	if stubOut.Ring() != proxyOut.Ring() || stubIn.Ring() != proxyIn.Ring() {
		t.Fatal("stub and proxy ports must share rings")
	}
}

func TestCallAsyncWindowRoutesByTag(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{CapBytes: 1 << 20})
	conn.BatchRecv = true
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		echoProxy(p, reqPort, respPort)
		// One proc issues a whole window of async calls before reaping any;
		// each response must still land on its own Pending.
		const window = 8
		var pds [window]*Pending
		for i := range pds {
			pds[i] = conn.CallAsync(p, &ninep.Msg{Type: ninep.Topen, Fid: uint32(200 + i)})
		}
		for i, pd := range pds {
			resp, err := conn.Wait(p, pd)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Size != int64(200+i) {
				t.Errorf("pending %d reaped response for fid %d", i, resp.Size)
			}
		}
		conn.Close(p)
	})
	e.MustRun()
}

// TestTagWraparoundSkipsBusyTags is the regression test for the uint16 tag
// counter: wrapping past 65535 must skip tag 0 and any tag still in flight
// instead of handing out a duplicate.
func TestTagWraparoundSkipsBusyTags(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{CapBytes: 1 << 20})
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		echoProxy(p, reqPort, respPort)
		// White-box: park the counter at the top of the space with two
		// busy tags in its path.
		conn.nextTag = 65534
		conn.pending[65535] = &call{cond: sim.NewCond("busy-hi")}
		conn.pending[1] = &call{cond: sim.NewCond("busy-lo")}
		if tag := conn.allocTag(); tag != 2 {
			t.Errorf("allocTag = %d, want 2 (skip busy 65535, reserved 0, busy 1)", tag)
		}
		delete(conn.pending, 65535)
		delete(conn.pending, 1)
		// End to end: real calls across the wrap still route correctly.
		conn.nextTag = 65530
		wg := sim.NewWaitGroup("wrap-callers")
		wg.Add(16)
		for i := 0; i < 16; i++ {
			fid := uint32(i + 300)
			p.Spawn("wrap-caller", func(cp *sim.Proc) {
				defer cp.DoneWG(wg)
				resp, err := conn.Call(cp, &ninep.Msg{Type: ninep.Topen, Fid: fid})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Size != int64(fid) {
					t.Errorf("caller %d got response for fid %d", fid, resp.Size)
				}
			})
		}
		p.WaitWG(wg)
		if conn.nextTag < 1 || conn.nextTag > 20 {
			t.Errorf("nextTag = %d after 16 calls from 65530, expected wrap into low tags", conn.nextTag)
		}
		conn.Close(p)
	})
	e.MustRun()
}
