package dataplane

import (
	"errors"
	"fmt"

	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/transport"
)

// NetClient is the data-plane network stub (§4.4.1): socket calls become
// RPCs on the connection; stream data travels on a dedicated outbound ring
// (master at the co-processor, pulled by host DMA) and an inbound ring
// (master at the host, pulled by co-processor DMA). A single event
// dispatcher proc demultiplexes inbound events to per-socket queues
// (§4.4.2).
type NetClient struct {
	conn     *Conn
	outbound *transport.Port
	inbound  *transport.Port
	sockets  map[uint64]*Socket
	accepts  map[int]*acceptQueue
	started  bool
}

// RPC exposes the stub's control-RPC connection, for tag-window audits
// (Conn.CheckTags) after churn and detach scenarios.
func (nc *NetClient) RPC() *Conn { return nc.conn }

// Socket is a data-plane connection endpoint.
type Socket struct {
	ID     uint64
	nc     *NetClient
	recvq  [][]byte
	cond   *sim.Cond
	eof    bool
	closed bool
	poller *Poller
}

type acceptQueue struct {
	ready  []*Socket
	cond   *sim.Cond
	closed bool
}

// ErrSocketClosed is returned on operations against a closed socket.
var ErrSocketClosed = errors.New("dataplane: socket closed")

// NewNetClient builds the stub. The data rings must be created with
// NewNetRings so their masters sit on the right sides.
func NewNetClient(conn *Conn, outbound, inbound *transport.Port) *NetClient {
	return &NetClient{
		conn:     conn,
		outbound: outbound,
		inbound:  inbound,
		sockets:  make(map[uint64]*Socket),
		accepts:  make(map[int]*acceptQueue),
	}
}

// NewNetRings builds the paper's ring placement (§4.4.1): outbound master
// at the co-processor (host DMA pulls outgoing data), inbound master at
// the host (co-processor DMA pulls incoming data). It returns the stub's
// ports followed by the proxy's ports (outbound, inbound).
func NewNetRings(f *pcie.Fabric, phi *pcie.Device, opt transport.Options) (stubOut, stubIn, proxyOut, proxyIn *transport.Port) {
	outRing := transport.NewRing(f, phi, opt)
	inRing := transport.NewRing(f, nil, opt)
	return outRing.Port(phi, cpuPhiKind), inRing.Port(phi, cpuPhiKind),
		outRing.Port(nil, cpuHostKind), inRing.Port(nil, cpuHostKind)
}

// Start launches the RPC dispatcher (if not already running) and the
// network event dispatcher.
func (nc *NetClient) Start(p *sim.Proc) {
	if nc.started {
		return
	}
	nc.started = true
	nc.conn.Start(p)
	nc.inbound.EnablePool()
	p.Spawn(nc.conn.Phi.Name+"-net-dispatcher", func(dp *sim.Proc) {
		for {
			raw, ok := nc.inbound.Recv(dp)
			if !ok {
				for _, s := range nc.sockets {
					s.eof = true
					dp.Broadcast(s.cond)
					if s.poller != nil {
						s.poller.notify(dp)
					}
				}
				for _, q := range nc.accepts {
					dp.Broadcast(q.cond)
				}
				return
			}
			kind, id, payload, err := ninep.DecodeFrame(raw)
			if err != nil {
				panic("dataplane: " + err.Error())
			}
			switch kind {
			case ninep.FrameAccept:
				s := nc.newSocket(id)
				port := int(payload[0]) | int(payload[1])<<8
				if q := nc.accepts[port]; q != nil {
					q.ready = append(q.ready, s)
					dp.Signal(q.cond)
				}
				// No listener on this port anymore: drop the event.
			case ninep.FrameData:
				// payload aliases raw, which goes back to the pool below;
				// the socket queue takes its own copy.
				if s := nc.sockets[id]; s != nil {
					s.recvq = append(s.recvq, append([]byte(nil), payload...))
					dp.Signal(s.cond)
					if s.poller != nil {
						s.poller.notify(dp)
					}
				}
			case ninep.FrameEOF:
				if s := nc.sockets[id]; s != nil {
					s.eof = true
					dp.Broadcast(s.cond)
					if s.poller != nil {
						s.poller.notify(dp)
					}
				}
			case ninep.FrameListenClosed:
				for _, q := range nc.accepts {
					q.closed = true
					dp.Broadcast(q.cond)
				}
			}
			nc.inbound.Recycle(raw)
		}
	})
}

func (nc *NetClient) newSocket(id uint64) *Socket {
	s := &Socket{ID: id, nc: nc, cond: sim.NewCond(fmt.Sprintf("sock-%d", id))}
	nc.sockets[id] = s
	return s
}

// Listen joins this co-processor to the shared listening socket on port
// (§4.4.3): multiple co-processors may listen on the same port and the
// control plane shards connections across them.
func (nc *NetClient) Listen(p *sim.Proc, port int) error {
	if _, dup := nc.accepts[port]; dup {
		return fmt.Errorf("dataplane: already listening on %d", port)
	}
	if _, err := nc.conn.Call(p, &ninep.Msg{Type: ninep.Tlisten, Off: int64(port)}); err != nil {
		return err
	}
	nc.accepts[port] = &acceptQueue{cond: sim.NewCond(fmt.Sprintf("accept-%d", port))}
	return nil
}

// Accept blocks for the next connection sharded to this co-processor.
func (nc *NetClient) Accept(p *sim.Proc, port int) (*Socket, error) {
	q, ok := nc.accepts[port]
	if !ok {
		return nil, fmt.Errorf("dataplane: not listening on %d", port)
	}
	for len(q.ready) == 0 {
		if q.closed || nc.inbound.Ring().Closed() {
			return nil, ErrSocketClosed
		}
		p.Wait(q.cond)
	}
	s := q.ready[0]
	q.ready = q.ready[1:]
	return s, nil
}

// Connect dials a remote host by name through the control plane.
func (nc *NetClient) Connect(p *sim.Proc, host string, port int) (*Socket, error) {
	resp, err := nc.conn.Call(p, &ninep.Msg{Type: ninep.Tconnect, Name: host, Off: int64(port)})
	if err != nil {
		return nil, err
	}
	return nc.newSocket(uint64(resp.Addr)), nil
}

// Send writes data on the socket via the outbound ring.
func (s *Socket) Send(p *sim.Proc, data []byte) (int, error) {
	if s.closed {
		return 0, ErrSocketClosed
	}
	const chunk = 60 << 10
	var hdr [ninep.FrameHdrLen]byte
	ninep.PutFrameHeader(hdr[:], ninep.FrameData, s.ID)
	sent := 0
	for sent < len(data) {
		n := len(data) - sent
		if n > chunk {
			n = chunk
		}
		// The ring copies header+payload contiguously during the send, so
		// no per-chunk staging frame is ever built.
		s.nc.outbound.SendVec(p, hdr[:], data[sent:sent+n])
		sent += n
	}
	return sent, nil
}

// Recv returns the next chunk of inbound data (up to max bytes), blocking
// until data or EOF; it returns nil, nil at end of stream.
func (s *Socket) Recv(p *sim.Proc, max int) ([]byte, error) {
	for {
		if len(s.recvq) > 0 {
			data := s.recvq[0]
			if len(data) > max {
				s.recvq[0] = data[max:]
				return data[:max], nil
			}
			s.recvq = s.recvq[1:]
			return data, nil
		}
		if s.eof {
			return nil, nil
		}
		if s.closed {
			return nil, ErrSocketClosed
		}
		p.Wait(s.cond)
	}
}

// RecvFull reads exactly n bytes (fewer at end of stream).
func (s *Socket) RecvFull(p *sim.Proc, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		chunk, err := s.Recv(p, n-len(out))
		if err != nil {
			return out, err
		}
		if len(chunk) == 0 {
			return out, nil
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// Close tears the connection down. The close travels on the outbound
// ring, not the RPC channel, so it stays ordered behind any data frames
// still queued for this socket.
func (s *Socket) Close(p *sim.Proc) error {
	if s.closed {
		return nil
	}
	s.closed = true
	delete(s.nc.sockets, s.ID)
	s.nc.outbound.Send(p, ninep.EncodeFrame(ninep.FrameClose, s.ID, nil))
	return nil
}

// CloseRings shuts the data rings down (machine teardown).
func (nc *NetClient) CloseRings(p *sim.Proc) {
	nc.outbound.Close(p)
	nc.inbound.Close(p)
}
