// Package dataplane implements the co-processor side of Solros: a lean
// RPC stub per OS service (§4.3.1, §4.4.1) plus the event dispatcher that
// demultiplexes inbound completions (§4.4.2). There is deliberately no
// file system or network protocol code here — that is the whole point of
// the architecture.
package dataplane

import (
	"fmt"

	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/transport"
)

// Core-kind aliases used across the package's ring construction.
const (
	cpuPhiKind  = cpu.Phi
	cpuHostKind = cpu.Host
)

// Conn is a request/response RPC connection from one co-processor to the
// control plane: a pair of transport rings (both masters in co-processor
// memory, §4.3.1) and a single dispatcher proc that routes responses to
// waiting callers by tag.
type Conn struct {
	Phi  *pcie.Device
	req  *transport.Port // stub -> proxy
	resp *transport.Port // proxy -> stub

	// BatchRecv makes the dispatcher drain the response ring with
	// RecvBatch, amortizing combiner and PCIe costs across completions
	// arriving close together (pipelined chunk reads). Set before Start.
	BatchRecv bool

	nextTag uint16
	pending map[uint16]*call
	started bool

	tel         *telemetry.Sink
	telCalls    *telemetry.Counter
	telInflight *telemetry.Gauge
}

type call struct {
	resp *ninep.Msg
	cond *sim.Cond
}

// Pending is a handle to an RPC issued with CallAsync; redeem it with
// Wait. Handles are single-use and must each be waited exactly once, or
// the tag leaks.
type Pending struct {
	tag   uint16
	typ   ninep.MsgType
	begin sim.Time
	pc    *call
}

// NewConn builds the ring pair for a co-processor on the fabric. Both
// master rings live in co-processor memory so the stub's operations are
// local and the fast host crosses the bus (§4.3.1). It returns the stub's
// connection and the proxy-side ports.
func NewConn(f *pcie.Fabric, phi *pcie.Device, opt transport.Options) (*Conn, *transport.Port, *transport.Port) {
	reqRing := transport.NewRing(f, phi, opt)
	respRing := transport.NewRing(f, phi, opt)
	c := &Conn{
		Phi:     phi,
		req:     reqRing.Port(phi, cpu.Phi),
		resp:    respRing.Port(phi, cpu.Phi),
		pending: make(map[uint16]*call),
	}
	if tel := f.Telemetry(); tel != nil {
		c.tel = tel
		c.telCalls = tel.Counter("dataplane.calls")
		c.telInflight = tel.Gauge("dataplane.inflight_window")
	}
	return c, reqRing.Port(nil, cpu.Host), respRing.Port(nil, cpu.Host)
}

// Start launches the connection's dispatcher proc, which runs until the
// response ring is closed.
func (c *Conn) Start(p *sim.Proc) {
	if c.started {
		return
	}
	c.started = true
	p.Spawn(c.Phi.Name+"-dispatcher", func(dp *sim.Proc) {
		single := make([][]byte, 1)
		for {
			var raws [][]byte
			if c.BatchRecv {
				batch, ok := c.resp.RecvBatch(dp, 0)
				if !ok {
					c.failPending(dp)
					return
				}
				raws = batch
			} else {
				raw, ok := c.resp.Recv(dp)
				if !ok {
					c.failPending(dp)
					return
				}
				single[0] = raw
				raws = single
			}
			for _, raw := range raws {
				m, err := ninep.Decode(raw)
				if err != nil {
					panic("dataplane: corrupt response: " + err.Error())
				}
				pc, ok := c.pending[m.Tag]
				if !ok {
					panic(fmt.Sprintf("dataplane: response for unknown tag %d", m.Tag))
				}
				pc.resp = m
				dp.Signal(pc.cond)
			}
		}
	})
}

// failPending wakes every waiter with an error response at teardown.
// Responses that already arrived are kept so completed-but-unreaped async
// calls still return their real result.
func (c *Conn) failPending(dp *sim.Proc) {
	for tag, pc := range c.pending {
		if pc.resp == nil {
			pc.resp = &ninep.Msg{Type: ninep.Rerror, Tag: tag, Err: "connection closed"}
		}
		dp.Broadcast(pc.cond)
	}
}

// allocTag hands out the next request tag, skipping tags still held by
// in-flight calls: nextTag is a uint16, so after 65k calls a naive
// increment would collide with a pending tag and panic the dispatcher.
// Tag 0 stays reserved (the first tag ever issued is 1).
func (c *Conn) allocTag() uint16 {
	if len(c.pending) >= (1<<16)-1 {
		panic("dataplane: all 65535 tags in flight")
	}
	for {
		c.nextTag++
		if c.nextTag == 0 {
			continue
		}
		if _, busy := c.pending[c.nextTag]; !busy {
			return c.nextTag
		}
	}
}

// CallAsync sends m and returns a Pending handle without waiting for the
// response; redeem it with Wait. The stub cost charged here is the same
// per-syscall data-plane contribution Call pays (Figure 13a) — pipelining
// overlaps the remote legs, not the local marshal.
func (c *Conn) CallAsync(p *sim.Proc, m *ninep.Msg) *Pending {
	if !c.started {
		panic("dataplane: Call before Start")
	}
	begin := p.Now()
	p.Advance(model.FSStubCost)
	tag := c.allocTag()
	m.Tag = tag
	pc := &call{cond: sim.NewCond(fmt.Sprintf("rpc-tag-%d", tag))}
	c.pending[tag] = pc
	c.telInflight.Set(int64(len(c.pending)))
	c.req.Send(p, m.Encode())
	return &Pending{tag: tag, typ: m.Type, begin: begin, pc: pc}
}

// Wait blocks until pd's response arrives, releases its tag, and returns
// the response (or its Rerror as a Go error).
func (c *Conn) Wait(p *sim.Proc, pd *Pending) (*ninep.Msg, error) {
	for pd.pc.resp == nil {
		p.Wait(pd.pc.cond)
	}
	delete(c.pending, pd.tag)
	c.telInflight.Set(int64(len(c.pending)))
	c.telCalls.Add(1)
	c.tel.Histogram("dataplane.rpc." + pd.typ.String()).Observe(p.Now() - pd.begin)
	if err := pd.pc.resp.Error(); err != nil {
		return nil, err
	}
	return pd.pc.resp, nil
}

// Call sends m and blocks until its response arrives. The stub cost
// charged here is the whole data-plane OS contribution per syscall
// (Figure 13a): marshal, ring operation, demultiplex.
func (c *Conn) Call(p *sim.Proc, m *ninep.Msg) (*ninep.Msg, error) {
	sp := c.tel.Start(p, "dataplane.call")
	sp.Tag("type", m.Type.String())
	pd := c.CallAsync(p, m)
	resp, err := c.Wait(p, pd)
	sp.End(p)
	return resp, err
}

// RingStats reports request-ring messages sent, response-ring messages
// received, and request payload bytes, for machine status reports.
func (c *Conn) RingStats() (sent, received, sentBytes int64) {
	reqSent, _, reqBytes := c.req.Ring().Stats()
	_, respRecv, _ := c.resp.Ring().Stats()
	return reqSent, respRecv, reqBytes
}

// Close shuts down both rings; in-flight calls fail with "connection
// closed" and the dispatcher exits.
func (c *Conn) Close(p *sim.Proc) {
	c.req.Close(p)
	c.resp.Close(p)
}
