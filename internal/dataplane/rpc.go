// Package dataplane implements the co-processor side of Solros: a lean
// RPC stub per OS service (§4.3.1, §4.4.1) plus the event dispatcher that
// demultiplexes inbound completions (§4.4.2). There is deliberately no
// file system or network protocol code here — that is the whole point of
// the architecture.
package dataplane

import (
	"fmt"

	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/transport"
)

// Core-kind aliases used across the package's ring construction.
const (
	cpuPhiKind  = cpu.Phi
	cpuHostKind = cpu.Host
)

// errConnClosed is the Rerror text for calls severed by Close or a crash;
// Call treats it as retryable when Reconnect is set.
const errConnClosed = "connection closed"

// maxReconnects bounds how many channel incarnations one Call will chase
// before giving up and surfacing the error.
const maxReconnects = 8

// Conn is a request/response RPC connection from one co-processor to the
// control plane: a pair of transport rings (both masters in co-processor
// memory, §4.3.1) and a single dispatcher proc that routes responses to
// waiting callers by tag.
type Conn struct {
	Phi    *pcie.Device
	fabric *pcie.Fabric
	opt    transport.Options
	req    *transport.Port // stub -> proxy
	resp   *transport.Port // proxy -> stub

	// BatchRecv makes the dispatcher drain the response ring with
	// RecvBatch, amortizing combiner and PCIe costs across completions
	// arriving close together (pipelined chunk reads). Set before Start.
	BatchRecv bool

	// Deadline arms per-RPC deadlines: a Wait that sees no response
	// within Deadline resends the same encoded request under the same
	// tag and doubles the timeout, up to Retries resends, then fails
	// with a timeout error. Zero (the default) waits forever, the
	// paper's behavior. Requests must be idempotent to replay, which
	// every 9P-style message here is: reads, writes, and opens name
	// absolute offsets and paths.
	Deadline sim.Time
	// Retries bounds same-tag resends per call (default 0).
	Retries int
	// Reconnect makes Call transparently reissue a request that failed
	// with "connection closed" once the channel has been Reset —
	// crash/recovery mode. Close always wins: a closed connection stays
	// closed.
	Reconnect bool

	// Tracing arms causal request tracing: every RPC roots (or joins) a
	// deterministic trace whose context rides inside the ninep frame, so
	// proxy-side work joins the same tree, and resends/replays link to
	// the original attempt. Off by default — tracing appends a trailer
	// to every frame, which changes transfer sizes and therefore
	// virtual-time charges, so the reproduced figures need it off.
	Tracing bool

	// HotPath arms the zero-alloc delegated fast path: call records are
	// pooled and reused (encode scratch, response storage, wait cond and
	// Pending handle all live in the record), the dispatcher routes raw
	// bytes by PeekTag and decodes straight into the owning record, and
	// receive buffers recycle through the response port's pool. The cost
	// is a lifetime contract: the *ninep.Msg returned by Wait/Call is
	// valid only until the connection's next CallAsync — callers must
	// consume the response before issuing the next request. Off by
	// default (every response is then a private allocation, the seed
	// behavior). Purely heap-visible: virtual time is identical either
	// way. Set before Start.
	HotPath bool

	// freeCalls is the call-record free list used when HotPath is set; a
	// record returns here at Wait time and its storage is reused by a
	// later CallAsync.
	freeCalls []*call

	nextTag uint16
	pending map[uint16]*call
	// stale holds tags retired while responses were still outstanding
	// (timed-out calls, reaped calls with unanswered resends). The
	// dispatcher silently drains that many late responses per tag, and
	// allocTag refuses to reissue the tag until then.
	stale   map[uint16]int
	started bool
	// dead: the dispatcher exited — no response will ever arrive, so
	// waits must fail rather than park. Cleared by Reset.
	dead bool
	// down: Crash severed the rings; cleared by Reset.
	down bool
	// shut: Close was called; permanent.
	shut bool
	// resetCond wakes reconnecting callers after a Reset (or Close).
	resetCond *sim.Cond

	// traceBase salts this connection's trace IDs so two co-processors
	// issuing at the same virtual instant get distinct traces; traceSeq
	// distinguishes same-instant requests from one connection. Both are
	// functions of sim state only — never wall clock — so trace IDs are
	// identical across runs of the same schedule.
	traceBase uint64
	traceSeq  uint64

	tel           *telemetry.Sink
	telCalls      *telemetry.Counter
	telInflight   *telemetry.Gauge
	telRetries    *telemetry.Counter
	telTimeouts   *telemetry.Counter
	telDupDrops   *telemetry.Counter
	telStaleDrops *telemetry.Counter
	telReconnects *telemetry.Counter
}

type call struct {
	resp *ninep.Msg
	cond *sim.Cond
	// raw is the encoded request, kept for same-tag replay. Pooled
	// records reuse its backing array across calls (AppendTo scratch).
	raw []byte
	// sent counts transmissions, got counts responses the dispatcher saw
	// (including duplicates); their difference at reap time is how many
	// late responses the stale table must absorb.
	sent, got int
	// msg is the decoded-response storage on the hot path: the
	// dispatcher DecodeIntos it and resp points at it, so a pooled
	// record amortizes its payload backing across calls.
	msg ninep.Msg
	// pend is the call's Pending handle, embedded so CallAsync returns
	// it without a per-call allocation.
	pend Pending
}

// Pending is a handle to an RPC issued with CallAsync; redeem it with
// Wait. Handles are single-use and must each be waited exactly once, or
// the tag leaks.
type Pending struct {
	tag   uint16
	typ   ninep.MsgType
	begin sim.Time
	pc    *call
	// ctx is the trace context embedded in the request (zero when
	// tracing is off); Wait's spans and resend markers attach to it.
	ctx telemetry.TraceCtx
}

// NewConn builds the ring pair for a co-processor on the fabric. Both
// master rings live in co-processor memory so the stub's operations are
// local and the fast host crosses the bus (§4.3.1). It returns the stub's
// connection and the proxy-side ports.
func NewConn(f *pcie.Fabric, phi *pcie.Device, opt transport.Options) (*Conn, *transport.Port, *transport.Port) {
	reqRing := transport.NewRing(f, phi, opt)
	respRing := transport.NewRing(f, phi, opt)
	c := &Conn{
		Phi:       phi,
		fabric:    f,
		opt:       opt,
		req:       reqRing.Port(phi, cpu.Phi),
		resp:      respRing.Port(phi, cpu.Phi),
		pending:   make(map[uint16]*call),
		stale:     make(map[uint16]int),
		resetCond: sim.NewCond(phi.Name + "-reset"),
		traceBase: fnv64(phi.Name),
	}
	if tel := f.Telemetry(); tel != nil {
		c.tel = tel
		c.telCalls = tel.Counter("dataplane.calls")
		c.telInflight = tel.Gauge("dataplane.inflight_window")
		c.telRetries = tel.Counter("dataplane.retries")
		c.telTimeouts = tel.Counter("dataplane.timeouts")
		c.telDupDrops = tel.Counter("dataplane.dup_responses_dropped")
		c.telStaleDrops = tel.Counter("dataplane.stale_responses_dropped")
		c.telReconnects = tel.Counter("dataplane.reconnects")
	}
	return c, reqRing.Port(nil, cpu.Host), respRing.Port(nil, cpu.Host)
}

// fnv64 is FNV-1a over s, salting trace IDs per connection.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over the
// (time, conn, seq) tuple so trace IDs look random but are pure
// functions of sim state.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newTraceID mints a deterministic trace ID from the current virtual
// time, the connection's salt, and a per-connection sequence number.
func (c *Conn) newTraceID(p *sim.Proc) uint64 {
	c.traceSeq++
	id := mix64(uint64(p.Now()) ^ c.traceBase ^ (c.traceSeq * 0x9e3779b97f4a7c15))
	if id == 0 {
		id = 1
	}
	return id
}

// startSpan opens an instrumentation span that also roots a fresh trace
// when Tracing is armed and p has no traced span open — the entry points
// of the stub API (Call, the pipelined FS paths) use it so every
// application request becomes exactly one causal tree.
func (c *Conn) startSpan(p *sim.Proc, name string) *telemetry.Span {
	if c.Tracing && c.tel != nil && !c.tel.Current(p).Traced() {
		return c.tel.StartCtx(p, name, telemetry.TraceCtx{Trace: c.newTraceID(p)})
	}
	return c.tel.Start(p, name)
}

// Start launches the connection's dispatcher proc, which runs until the
// response ring is closed.
func (c *Conn) Start(p *sim.Proc) {
	if c.started {
		return
	}
	c.started = true
	if c.HotPath {
		c.resp.EnablePool()
	}
	c.spawnDispatcher(p)
}

// allocCall checks a call record out of the free list (HotPath) or
// allocates a fresh one. Reused records keep their cond, their encode
// scratch, and their response payload backing.
func (c *Conn) allocCall() *call {
	if n := len(c.freeCalls); c.HotPath && n > 0 {
		pc := c.freeCalls[n-1]
		c.freeCalls[n-1] = nil
		c.freeCalls = c.freeCalls[:n-1]
		pc.resp = nil
		pc.sent, pc.got = 0, 0
		pc.msg.Reset()
		return pc
	}
	return &call{cond: sim.NewCond("rpc-call")}
}

// releaseCall returns a retired record to the free list. Only called
// after retire (the tag no longer maps to the record) and only on the hot
// path, where the Wait lifetime contract makes reuse safe.
func (c *Conn) releaseCall(pc *call) {
	if !c.HotPath {
		return
	}
	c.freeCalls = append(c.freeCalls, pc)
}

// spawnDispatcher starts a dispatcher bound to the current response ring.
// A dispatcher outlived by a Reset (its ring replaced under it) exits
// without touching the connection's state.
func (c *Conn) spawnDispatcher(p *sim.Proc) {
	resp := c.resp
	p.Spawn(c.Phi.Name+"-dispatcher", func(dp *sim.Proc) {
		defer func() {
			if resp != c.resp {
				return // superseded by Reset; the new incarnation owns state
			}
			c.dead = true
			c.failPending(dp)
		}()
		single := make([][]byte, 1)
		scratch := make([][]byte, 0, 64)
		for {
			var raws [][]byte
			if c.BatchRecv {
				batch, ok := resp.RecvBatchInto(dp, 0, scratch[:0])
				if !ok {
					return
				}
				scratch = batch // keep the grown backing for the next drain
				raws = batch
			} else {
				raw, ok := resp.Recv(dp)
				if !ok {
					return
				}
				single[0] = raw
				raws = single
			}
			for _, raw := range raws {
				// Route by tag without decoding: dropped (stale, dup)
				// responses never pay a decode, and matched ones decode
				// straight into storage their call record owns.
				tag, ok := ninep.PeekTag(raw)
				if !ok {
					panic("dataplane: corrupt response: " + ninep.ErrShortMessage.Error())
				}
				pc, ok := c.pending[tag]
				if !ok {
					if n := c.stale[tag]; n > 0 {
						// A late response to a retired call (timed out,
						// or reaped off an earlier transmission).
						if n == 1 {
							delete(c.stale, tag)
						} else {
							c.stale[tag] = n - 1
						}
						c.telStaleDrops.Add(1)
						resp.Recycle(raw)
						continue
					}
					panic(fmt.Sprintf("dataplane: response for unknown tag %d", tag))
				}
				pc.got++
				if pc.resp != nil {
					// Duplicate from a resend whose original also made
					// it; first answer wins.
					c.telDupDrops.Add(1)
					resp.Recycle(raw)
					continue
				}
				if c.HotPath {
					if err := ninep.DecodeInto(&pc.msg, raw); err != nil {
						panic("dataplane: corrupt response: " + err.Error())
					}
					pc.resp = &pc.msg
				} else {
					m, err := ninep.Decode(raw)
					if err != nil {
						panic("dataplane: corrupt response: " + err.Error())
					}
					pc.resp = m
				}
				// DecodeInto/Decode copied the payload, so the receive
				// buffer can go back to the port's pool right away.
				resp.Recycle(raw)
				if pc.resp.Trace != 0 {
					// Zero-length completion marker on the dispatcher
					// proc: when the reply reached the stub side,
					// within the request's causal tree.
					cs := c.tel.StartCtx(dp, "dataplane.rpc.complete",
						telemetry.TraceCtx{Trace: pc.resp.Trace, Span: pc.resp.Span})
					cs.Tag("type", pc.resp.Type.String())
					cs.End(dp)
				}
				dp.Signal(pc.cond)
			}
		}
	})
}

// failPending wakes every waiter with an error response at teardown.
// Responses that already arrived are kept so completed-but-unreaped async
// calls still return their real result.
func (c *Conn) failPending(dp *sim.Proc) {
	for tag, pc := range c.pending {
		if pc.resp == nil {
			pc.resp = &ninep.Msg{Type: ninep.Rerror, Tag: tag, Err: errConnClosed}
		}
		dp.Broadcast(pc.cond)
	}
}

// allocTag hands out the next request tag, skipping tags still held by
// in-flight calls or owed late responses: nextTag is a uint16, so after
// 65k calls a naive increment would collide with a pending tag and panic
// the dispatcher. Tag 0 stays reserved (the first tag ever issued is 1).
func (c *Conn) allocTag() uint16 {
	if len(c.pending)+len(c.stale) >= (1<<16)-1 {
		panic("dataplane: all 65535 tags in flight")
	}
	for {
		c.nextTag++
		if c.nextTag == 0 {
			continue
		}
		if _, busy := c.pending[c.nextTag]; busy {
			continue
		}
		if _, owed := c.stale[c.nextTag]; owed {
			continue
		}
		return c.nextTag
	}
}

// CallAsync sends m and returns a Pending handle without waiting for the
// response; redeem it with Wait. The stub cost charged here is the same
// per-syscall data-plane contribution Call pays (Figure 13a) — pipelining
// overlaps the remote legs, not the local marshal.
func (c *Conn) CallAsync(p *sim.Proc, m *ninep.Msg) *Pending {
	if !c.started {
		panic("dataplane: Call before Start")
	}
	begin := p.Now()
	p.Advance(model.FSStubCost)
	tag := c.allocTag()
	m.Tag = tag
	var issue *telemetry.Span
	var ctx telemetry.TraceCtx
	if c.Tracing && c.tel != nil {
		// The issue span is the wire-visible attempt: its context is
		// embedded in the frame, so the proxy's serve span and this
		// call's wait span both become its children — also across
		// same-tag resends, which reuse the identical encoded bytes.
		issue = c.startSpan(p, "dataplane.rpc.issue")
		issue.Tag("type", m.Type.String())
		issue.TagInt("tag", int64(tag))
		ctx = issue.Ctx()
		m.Trace, m.Span = ctx.Trace, ctx.Span
	}
	pc := c.allocCall()
	c.pending[tag] = pc
	c.telInflight.Set(int64(len(c.pending)))
	pc.pend = Pending{tag: tag, typ: m.Type, begin: begin, pc: pc, ctx: ctx}
	if c.dead || c.down || c.shut {
		// No dispatcher will ever answer; fail the call in place instead
		// of sending into a closed ring and parking forever.
		pc.resp = &ninep.Msg{Type: ninep.Rerror, Tag: tag, Err: errConnClosed}
		issue.End(p)
		return &pc.pend
	}
	pc.raw = m.AppendTo(pc.raw[:0])
	pc.sent = 1
	c.req.Send(p, pc.raw)
	issue.End(p)
	return &pc.pend
}

// Wait blocks until pd's response arrives, releases its tag, and returns
// the response (or its Rerror as a Go error). With a Deadline armed, a
// silent window triggers a same-tag resend with exponentially growing
// timeouts; Retries exhausted fails the call and retires its tag to the
// stale table. A connection whose dispatcher has exited (Close, crash)
// fails the wait immediately instead of parking forever.
func (c *Conn) Wait(p *sim.Proc, pd *Pending) (*ninep.Msg, error) {
	var wait *telemetry.Span
	if pd.ctx.Traced() {
		// Child of the issue span, like the proxy's serve span — the
		// critical-path sweep carves it into ring_wait/reply_wait
		// around the matching serve window.
		wait = c.tel.StartCtx(p, "dataplane.rpc.wait", pd.ctx)
		defer wait.End(p)
	}
	pc := pd.pc
	timeout := c.Deadline
	resends := 0
	for pc.resp == nil {
		if c.dead || c.down || c.shut {
			pc.resp = &ninep.Msg{Type: ninep.Rerror, Tag: pd.tag, Err: errConnClosed}
			break
		}
		if timeout <= 0 {
			p.Wait(pc.cond)
			continue
		}
		if !p.WaitTimeout(pc.cond, timeout) {
			continue // woken by the dispatcher; re-check
		}
		if resends >= c.Retries {
			c.telTimeouts.Add(1)
			c.retire(pd)
			if wait != nil {
				wait.Tag("result", "timeout")
				wait.TagInt("attempts", int64(resends+1))
			}
			err := fmt.Errorf("dataplane: %s tag %d timed out after %d attempts",
				pd.typ, pd.tag, resends+1)
			// Late responses drain via the stale table by tag, never
			// through the record, so it can be reused immediately.
			c.releaseCall(pc)
			return nil, err
		}
		// Idempotent same-tag replay: resend the identical encoded
		// request and double the window (exponential backoff).
		resends++
		timeout <<= 1
		c.telRetries.Add(1)
		pc.sent++
		if pd.ctx.Traced() {
			// Zero-length marker linking the replay to the original
			// attempt: same trace, same parent issue span.
			rs := c.tel.StartCtx(p, "dataplane.rpc.resend", pd.ctx)
			rs.TagInt("attempt", int64(resends))
			rs.TagInt("tag", int64(pd.tag))
			rs.End(p)
		}
		c.req.Send(p, pc.raw)
	}
	c.retire(pd)
	c.telCalls.Add(1)
	if c.tel != nil {
		// Guarded so the histogram-name concatenations stay off the
		// telemetry-disabled hot path entirely.
		c.tel.Histogram("dataplane.rpc."+pd.typ.String()).ObserveAt(p, p.Now()-pd.begin)
		if c.tel.WindowsEnabled() && c.Phi != nil {
			// Per-channel latency series — the per-channel SLO surface. Gated
			// on windows so the cumulative text report keeps its seed shape
			// when the continuous-observability knobs are off.
			c.tel.Histogram("dataplane.rpc."+pd.typ.String()+"."+c.Phi.Name).ObserveAt(p, p.Now()-pd.begin)
		}
	}
	// The record goes back to the free list here; on the hot path the
	// returned response (stored in the record) stays valid until the
	// connection's next CallAsync reuses it.
	c.releaseCall(pc)
	if err := pc.resp.Error(); err != nil {
		return nil, err
	}
	return pc.resp, nil
}

// retire releases pd's tag. If transmissions outnumber the responses seen
// so far, the difference is parked in the stale table so the dispatcher
// can recognize (and drop) the stragglers instead of panicking.
func (c *Conn) retire(pd *Pending) {
	if _, ok := c.pending[pd.tag]; !ok {
		return // already retired
	}
	delete(c.pending, pd.tag)
	if outstanding := pd.pc.sent - pd.pc.got; outstanding > 0 {
		c.stale[pd.tag] += outstanding
	}
	c.telInflight.Set(int64(len(c.pending)))
}

// Call sends m and blocks until its response arrives. The stub cost
// charged here is the whole data-plane OS contribution per syscall
// (Figure 13a): marshal, ring operation, demultiplex. With Reconnect set,
// a call severed by a channel crash waits for the Reset and reissues
// itself on the fresh rings.
func (c *Conn) Call(p *sim.Proc, m *ninep.Msg) (*ninep.Msg, error) {
	sp := c.startSpan(p, "dataplane.call")
	sp.Tag("type", m.Type.String())
	defer sp.End(p)
	for attempt := 0; ; attempt++ {
		pd := c.CallAsync(p, m)
		resp, err := c.Wait(p, pd)
		if err != nil && err.Error() == errConnClosed &&
			c.Reconnect && attempt < maxReconnects && c.awaitReset(p) {
			c.telReconnects.Add(1)
			continue
		}
		return resp, err
	}
}

// awaitReset parks until the channel is serviceable again; false means the
// connection was closed for good.
func (c *Conn) awaitReset(p *sim.Proc) bool {
	for (c.down || c.dead) && !c.shut {
		p.Wait(c.resetCond)
	}
	return !c.shut
}

// Rings exposes the connection's request and response rings, for oracles
// and diagnostics.
func (c *Conn) Rings() (req, resp *transport.Ring) {
	return c.req.Ring(), c.resp.Ring()
}

// CheckTags validates the connection's tag-window invariants, the
// dataplane half of the exploration oracle layer:
//
//   - no tag is simultaneously pending and stale (a live call's responses
//     would be dropped as stragglers, or a straggler matched to it);
//   - each stale entry owes at most Retries+1 responses (one per
//     transmission of the retired call);
//   - the combined window stays below the 16-bit tag space, so allocTag
//     can always find a free tag.
func (c *Conn) CheckTags() error {
	for tag := range c.pending {
		if n, owed := c.stale[tag]; owed {
			return fmt.Errorf("dataplane: tag %d live in pending and owes %d stale responses", tag, n)
		}
	}
	maxOwed := c.Retries + 1
	for tag, n := range c.stale {
		if n <= 0 {
			return fmt.Errorf("dataplane: stale tag %d owes %d responses (must be positive)", tag, n)
		}
		if n > maxOwed {
			return fmt.Errorf("dataplane: stale tag %d owes %d responses, max %d transmissions", tag, n, maxOwed)
		}
	}
	if window := len(c.pending) + len(c.stale); window >= (1<<16)-1 {
		return fmt.Errorf("dataplane: tag window %d fills the 16-bit tag space", window)
	}
	return nil
}

// RingStats reports request-ring messages sent, response-ring messages
// received, and request payload bytes, for machine status reports.
func (c *Conn) RingStats() (sent, received, sentBytes int64) {
	reqSent, _, reqBytes := c.req.Ring().Stats()
	_, respRecv, _ := c.resp.Ring().Stats()
	return reqSent, respRecv, reqBytes
}

// Close shuts down both rings; in-flight calls fail with "connection
// closed" and the dispatcher exits. Close is permanent: it defeats
// Reconnect and refuses later Resets.
func (c *Conn) Close(p *sim.Proc) {
	c.shut = true
	c.req.Close(p)
	c.resp.Close(p)
	p.Broadcast(c.resetCond)
}

// Crash severs the channel as a fault: both rings close, pending tags will
// fail, and the dispatcher drains and exits — but unlike Close the
// connection can be Reset. Idempotent while down.
func (c *Conn) Crash(p *sim.Proc) {
	if c.shut || c.down {
		return
	}
	c.down = true
	c.req.Close(p)
	c.resp.Close(p)
}

// Reset rebuilds a crashed connection: anything still pending fails with
// "connection closed", a fresh ring pair is allocated in co-processor
// memory, a new dispatcher starts, and reconnect waiters wake. It returns
// the proxy-side ports of the new rings (nil after Close). Tags owed late
// responses on the dead rings are forgiven — those responses can never
// arrive.
func (c *Conn) Reset(p *sim.Proc) (reqPort, respPort *transport.Port) {
	if c.shut {
		return nil, nil
	}
	c.failPending(p)
	reqRing := transport.NewRing(c.fabric, c.Phi, c.opt)
	respRing := transport.NewRing(c.fabric, c.Phi, c.opt)
	c.req = reqRing.Port(c.Phi, cpu.Phi)
	c.resp = respRing.Port(c.Phi, cpu.Phi)
	c.stale = make(map[uint16]int)
	c.dead = false
	c.down = false
	if c.started {
		c.spawnDispatcher(p)
	}
	p.Broadcast(c.resetCond)
	return reqRing.Port(nil, cpu.Host), respRing.Port(nil, cpu.Host)
}
