// Package dataplane implements the co-processor side of Solros: a lean
// RPC stub per OS service (§4.3.1, §4.4.1) plus the event dispatcher that
// demultiplexes inbound completions (§4.4.2). There is deliberately no
// file system or network protocol code here — that is the whole point of
// the architecture.
package dataplane

import (
	"fmt"

	"solros/internal/cpu"
	"solros/internal/model"
	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/transport"
)

// Core-kind aliases used across the package's ring construction.
const (
	cpuPhiKind  = cpu.Phi
	cpuHostKind = cpu.Host
)

// Conn is a request/response RPC connection from one co-processor to the
// control plane: a pair of transport rings (both masters in co-processor
// memory, §4.3.1) and a single dispatcher proc that routes responses to
// waiting callers by tag.
type Conn struct {
	Phi  *pcie.Device
	req  *transport.Port // stub -> proxy
	resp *transport.Port // proxy -> stub

	nextTag uint16
	pending map[uint16]*call
	started bool

	tel      *telemetry.Sink
	telCalls *telemetry.Counter
}

type call struct {
	resp *ninep.Msg
	cond *sim.Cond
}

// NewConn builds the ring pair for a co-processor on the fabric. Both
// master rings live in co-processor memory so the stub's operations are
// local and the fast host crosses the bus (§4.3.1). It returns the stub's
// connection and the proxy-side ports.
func NewConn(f *pcie.Fabric, phi *pcie.Device, opt transport.Options) (*Conn, *transport.Port, *transport.Port) {
	reqRing := transport.NewRing(f, phi, opt)
	respRing := transport.NewRing(f, phi, opt)
	c := &Conn{
		Phi:     phi,
		req:     reqRing.Port(phi, cpu.Phi),
		resp:    respRing.Port(phi, cpu.Phi),
		pending: make(map[uint16]*call),
	}
	if tel := f.Telemetry(); tel != nil {
		c.tel = tel
		c.telCalls = tel.Counter("dataplane.calls")
	}
	return c, reqRing.Port(nil, cpu.Host), respRing.Port(nil, cpu.Host)
}

// Start launches the connection's dispatcher proc, which runs until the
// response ring is closed.
func (c *Conn) Start(p *sim.Proc) {
	if c.started {
		return
	}
	c.started = true
	p.Spawn(c.Phi.Name+"-dispatcher", func(dp *sim.Proc) {
		for {
			raw, ok := c.resp.Recv(dp)
			if !ok {
				// Wake every waiter with an error response.
				for tag, pc := range c.pending {
					pc.resp = &ninep.Msg{Type: ninep.Rerror, Tag: tag, Err: "connection closed"}
					dp.Broadcast(pc.cond)
				}
				return
			}
			m, err := ninep.Decode(raw)
			if err != nil {
				panic("dataplane: corrupt response: " + err.Error())
			}
			pc, ok := c.pending[m.Tag]
			if !ok {
				panic(fmt.Sprintf("dataplane: response for unknown tag %d", m.Tag))
			}
			pc.resp = m
			dp.Signal(pc.cond)
		}
	})
}

// Call sends m and blocks until its response arrives. The stub cost
// charged here is the whole data-plane OS contribution per syscall
// (Figure 13a): marshal, ring operation, demultiplex.
func (c *Conn) Call(p *sim.Proc, m *ninep.Msg) (*ninep.Msg, error) {
	if !c.started {
		panic("dataplane: Call before Start")
	}
	sp := c.tel.Start(p, "dataplane.call")
	sp.Tag("type", m.Type.String())
	begin := p.Now()
	p.Advance(model.FSStubCost)
	c.nextTag++
	m.Tag = c.nextTag
	pc := &call{cond: sim.NewCond(fmt.Sprintf("rpc-tag-%d", m.Tag))}
	c.pending[m.Tag] = pc
	c.req.Send(p, m.Encode())
	for pc.resp == nil {
		p.Wait(pc.cond)
	}
	delete(c.pending, m.Tag)
	c.telCalls.Add(1)
	c.tel.Histogram("dataplane.rpc." + m.Type.String()).Observe(p.Now() - begin)
	sp.End(p)
	if err := pc.resp.Error(); err != nil {
		return nil, err
	}
	return pc.resp, nil
}

// RingStats reports request-ring messages sent, response-ring messages
// received, and request payload bytes, for machine status reports.
func (c *Conn) RingStats() (sent, received, sentBytes int64) {
	reqSent, _, reqBytes := c.req.Ring().Stats()
	_, respRecv, _ := c.resp.Ring().Stats()
	return reqSent, respRecv, reqBytes
}

// Close shuts down both rings; in-flight calls fail with "connection
// closed" and the dispatcher exits.
func (c *Conn) Close(p *sim.Proc) {
	c.req.Close(p)
	c.resp.Close(p)
}
