package dataplane

import (
	"testing"

	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/transport"
)

// traceEchoProxy answers requests after dropping the first drop of them,
// echoing the request's trace context into the reply exactly like the real
// FS proxy does — the minimal peer for exercising trace propagation across
// RPC loss and resend.
func traceEchoProxy(p *sim.Proc, req, resp *transport.Port, drop int) {
	p.Spawn("trace-proxy", func(wp *sim.Proc) {
		for {
			raw, ok := req.Recv(wp)
			if !ok {
				return
			}
			if drop > 0 {
				drop--
				continue
			}
			m, err := ninep.Decode(raw)
			if err != nil {
				panic(err)
			}
			r := &ninep.Msg{Type: ninep.Ropen, Tag: m.Tag, Size: int64(m.Fid)}
			r.Trace, r.Span = m.Trace, m.Span
			resp.Send(wp, r.Encode())
		}
	})
}

func spansByName(s *telemetry.Sink) map[string][]telemetry.Span {
	out := map[string][]telemetry.Span{}
	for _, sp := range s.Spans() {
		out[sp.Name] = append(out[sp.Name], sp)
	}
	return out
}

// TestTracePropagationAcrossResend pins satellite 3's first half: a Tread
// whose first transmission is lost and recovered by a deadline resend must
// yield ONE trace — root call span, issue span, wait span, a resend marker
// linked to the same issue attempt, and a completion marker carrying the
// context echoed by the peer.
func TestTracePropagationAcrossResend(t *testing.T) {
	sink := telemetry.New(telemetry.Options{})
	fab := pcie.New(64 << 20)
	fab.SetTelemetry(sink)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{})
	conn.Deadline = 50 * sim.Microsecond
	conn.Retries = 3
	conn.Tracing = true
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		traceEchoProxy(p, reqPort, respPort, 1)
		resp, err := conn.Call(p, &ninep.Msg{Type: ninep.Topen, Fid: 42})
		if err != nil {
			t.Fatalf("resent call failed: %v", err)
		}
		if resp.Size != 42 {
			t.Fatalf("resent call answered wrong: size=%d", resp.Size)
		}
		conn.Close(p)
	})
	e.MustRun()

	traces := sink.Traces()
	if len(traces) != 1 {
		t.Fatalf("retry produced %d traces (%v), want exactly 1", len(traces), traces)
	}
	tr := traces[0]
	for _, sp := range sink.Spans() {
		if sp.Trace != 0 && sp.Trace != tr {
			t.Errorf("span %s on foreign trace %#x", sp.Name, sp.Trace)
		}
	}
	byName := spansByName(sink)
	for _, name := range []string{"dataplane.call", "dataplane.rpc.issue",
		"dataplane.rpc.wait", "dataplane.rpc.resend", "dataplane.rpc.complete"} {
		if len(byName[name]) != 1 {
			t.Fatalf("%s: %d spans, want 1", name, len(byName[name]))
		}
	}
	root := byName["dataplane.call"][0]
	issue := byName["dataplane.rpc.issue"][0]
	if issue.Parent != root.ID {
		t.Errorf("issue.Parent = %d, want root %d", issue.Parent, root.ID)
	}
	// Wait, the resend marker, and the completion all hang off the issue
	// span: the attempts are linked to the original, not detached trees.
	for _, name := range []string{"dataplane.rpc.wait", "dataplane.rpc.resend", "dataplane.rpc.complete"} {
		if sp := byName[name][0]; sp.Parent != issue.ID {
			t.Errorf("%s.Parent = %d, want issue %d", name, sp.Parent, issue.ID)
		}
	}
	rs := byName["dataplane.rpc.resend"][0]
	var attempt int64
	for _, tag := range rs.Tags {
		if tag.Key == "attempt" {
			attempt = tag.Int
		}
	}
	if attempt != 1 {
		t.Errorf("resend attempt = %d, want 1", attempt)
	}
}

// TestTraceContinuityAcrossReconnect pins satellite 3's second half: a
// call severed by a channel crash and transparently reissued after Reset
// stays ONE trace, with one issue span per attempt, both children of the
// same root call span.
func TestTraceContinuityAcrossReconnect(t *testing.T) {
	sink := telemetry.New(telemetry.Options{})
	fab := pcie.New(64 << 20)
	fab.SetTelemetry(sink)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, _ := NewConn(fab, phi, transport.Options{})
	conn.Reconnect = true
	conn.Tracing = true
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		// First incarnation swallows the request, then the channel crashes;
		// the reissued attempt on the fresh rings gets a real answer.
		p.Spawn("mute-proxy", func(wp *sim.Proc) {
			for {
				if _, ok := reqPort.Recv(wp); !ok {
					return
				}
			}
		})
		p.Spawn("crasher", func(cp *sim.Proc) {
			cp.Advance(30 * sim.Microsecond)
			conn.Crash(cp)
			cp.Advance(30 * sim.Microsecond)
			req2, resp2 := conn.Reset(cp)
			if req2 == nil {
				t.Error("Reset returned nil ports")
				return
			}
			traceEchoProxy(cp, req2, resp2, 0)
		})
		resp, err := conn.Call(p, &ninep.Msg{Type: ninep.Topen, Fid: 7})
		if err != nil {
			t.Fatalf("call across crash/reset failed: %v", err)
		}
		if resp.Size != 7 {
			t.Fatalf("reissued call answered wrong: size=%d", resp.Size)
		}
		conn.Close(p)
	})
	e.MustRun()

	traces := sink.Traces()
	if len(traces) != 1 {
		t.Fatalf("reconnect produced %d traces (%v), want exactly 1", len(traces), traces)
	}
	byName := spansByName(sink)
	if len(byName["dataplane.call"]) != 1 {
		t.Fatalf("%d root call spans, want 1", len(byName["dataplane.call"]))
	}
	root := byName["dataplane.call"][0]
	issues := byName["dataplane.rpc.issue"]
	if len(issues) != 2 {
		t.Fatalf("%d issue spans across reconnect, want 2 (one per attempt)", len(issues))
	}
	for i, issue := range issues {
		if issue.Trace != root.Trace || issue.Parent != root.ID {
			t.Errorf("attempt %d: trace %#x parent %d, want trace %#x parent %d",
				i, issue.Trace, issue.Parent, root.Trace, root.ID)
		}
	}
}

// TestTracingOffNoTraceBytes pins the default-off contract at the RPC
// layer: with Tracing unset (but a sink installed), requests carry no
// trace context — same wire bytes as the seed — and no trace is retained.
func TestTracingOffNoTraceBytes(t *testing.T) {
	sink := telemetry.New(telemetry.Options{})
	fab := pcie.New(64 << 20)
	fab.SetTelemetry(sink)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{})
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		p.Spawn("checking-proxy", func(wp *sim.Proc) {
			for {
				raw, ok := reqPort.Recv(wp)
				if !ok {
					return
				}
				m, err := ninep.Decode(raw)
				if err != nil {
					panic(err)
				}
				if m.Trace != 0 || m.Span != 0 {
					t.Errorf("untraced request carries trace %#x span %d", m.Trace, m.Span)
				}
				if got, want := len(raw), len((&ninep.Msg{Type: m.Type, Tag: m.Tag, Fid: m.Fid}).Encode()); got != want {
					t.Errorf("untraced frame is %d bytes, seed encoding is %d", got, want)
				}
				respPort.Send(wp, (&ninep.Msg{Type: ninep.Ropen, Tag: m.Tag}).Encode())
			}
		})
		if _, err := conn.Call(p, &ninep.Msg{Type: ninep.Topen, Fid: 9}); err != nil {
			t.Errorf("call failed: %v", err)
		}
		conn.Close(p)
	})
	e.MustRun()
	if traces := sink.Traces(); len(traces) != 0 {
		t.Errorf("tracing off retained traces: %v", traces)
	}
}
