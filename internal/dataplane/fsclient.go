package dataplane

import (
	"fmt"

	"solros/internal/ninep"
	"solros/internal/sim"
)

// FSClient is the data-plane file-system stub: it "transforms a file
// system call from an application to a corresponding RPC, as there exists
// a one-to-one mapping between an RPC and a file system call" (§4.3.1).
// Read and write buffers live in co-processor memory; the RPC carries
// their physical addresses so the control plane can arrange zero-copy
// transfers between the disk and this memory.
type FSClient struct {
	conn *Conn
	fids map[uint32]*fidState
	next uint32

	// Pipeline splits reads and writes larger than ChunkBytes into a
	// sliding window of Window in-flight chunk RPCs and posts a
	// readahead hint after sequential reads, overlapping the proxy's
	// storage leg with the transport leg. Default off: one blocking RPC
	// per call, exactly the paper's 1:1 mapping.
	Pipeline bool
	// Window bounds the in-flight chunk RPCs (default 4).
	Window int
	// ChunkBytes is the pipelined chunk size (default 256 KB).
	ChunkBytes int64
}

type fidState struct {
	path  string
	flags uint32
	size  int64

	seqEnd int64    // end offset of the previous read, for sequential detection
	ra     *Pending // outstanding readahead hint, reaped before the next one
}

const (
	defaultWindow     = 4
	defaultChunkBytes = 256 << 10
	// chunkAlign keeps interior chunk boundaries on fs.BlockSize (4 KB)
	// boundaries so concurrent chunk writes never read-modify-write the
	// same disk block from two proxy workers.
	chunkAlign = 4096
)

func (c *FSClient) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return defaultWindow
}

func (c *FSClient) chunkBytes() int64 {
	if c.ChunkBytes > 0 {
		return c.ChunkBytes
	}
	return defaultChunkBytes
}

// chunkSize returns the next chunk's length at pos with remain bytes left:
// at most ChunkBytes, trimmed so the chunk's end lands on a chunkAlign
// boundary whenever another chunk will follow.
func (c *FSClient) chunkSize(pos, remain int64) int64 {
	sz := c.chunkBytes()
	if sz >= remain {
		return remain
	}
	if cut := (pos + sz) % chunkAlign; cut != 0 && sz > cut {
		sz -= cut
	}
	return sz
}

// Fd is a data-plane file descriptor.
type Fd uint32

// NewFSClient wraps an RPC connection in the file-system stub API.
func NewFSClient(conn *Conn) *FSClient {
	return &FSClient{conn: conn, fids: make(map[uint32]*fidState)}
}

// Buffer is an application I/O buffer in co-processor memory: the stub's
// equivalent of a pinned user page. Data points into the device's exported
// memory region; Addr is the physical address carried in RPCs.
type Buffer struct {
	Addr int64
	Data []byte
}

// AllocBuffer carves an n-byte I/O buffer out of co-processor memory.
func (c *FSClient) AllocBuffer(n int64) Buffer {
	off := c.conn.Phi.Mem.Alloc(n)
	return Buffer{Addr: off, Data: c.conn.Phi.Mem.Slice(off, n)}
}

// Open opens (or with ninep.OCreate creates) path, returning a descriptor.
func (c *FSClient) Open(p *sim.Proc, path string, flags uint32) (Fd, error) {
	typ := ninep.Topen
	if flags&ninep.OCreate != 0 {
		typ = ninep.Tcreate
	}
	c.next++
	fid := c.next
	resp, err := c.conn.Call(p, &ninep.Msg{Type: typ, Fid: fid, Name: path, Flags: flags})
	if err != nil {
		return 0, err
	}
	c.fids[fid] = &fidState{path: path, flags: flags, size: resp.Size}
	return Fd(fid), nil
}

// Close releases a descriptor, reaping any outstanding readahead hint
// first so its tag cannot leak.
func (c *FSClient) Close(p *sim.Proc, fd Fd) error {
	st, ok := c.fids[uint32(fd)]
	if !ok {
		return fmt.Errorf("dataplane: bad fd %d", fd)
	}
	if st.ra != nil {
		c.conn.Wait(p, st.ra)
		st.ra = nil
	}
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tclose, Fid: uint32(fd)})
	delete(c.fids, uint32(fd))
	return err
}

// Read reads n bytes at off into buf (co-processor memory), returning the
// bytes read. The RPC carries buf's physical address; data lands in buf by
// device DMA without staging through this stub. With Pipeline set, reads
// larger than one chunk go out as a sliding window of chunk RPCs.
func (c *FSClient) Read(p *sim.Proc, fd Fd, off int64, buf Buffer, n int64) (int64, error) {
	if n > int64(len(buf.Data)) {
		return 0, fmt.Errorf("dataplane: read %d into %d-byte buffer", n, len(buf.Data))
	}
	if c.Pipeline && n > c.chunkBytes() {
		return c.readPipelined(p, fd, off, buf, n)
	}
	c.maybeReadahead(p, fd, off, n)
	resp, err := c.conn.Call(p, &ninep.Msg{
		Type: ninep.Tread, Fid: uint32(fd), Off: off, Count: n, Addr: buf.Addr,
	})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// readPipelined streams one large read as a window of chunk RPCs. Chunks
// land directly at their final buffer offsets, so completion order does
// not matter for data placement; counts are summed in issue order and stop
// at the first short chunk (EOF — every later chunk is past the end).
func (c *FSClient) readPipelined(p *sim.Proc, fd Fd, off int64, buf Buffer, n int64) (int64, error) {
	sp := c.conn.startSpan(p, "dataplane.fs.read_pipelined")
	sp.TagInt("bytes", n)
	defer sp.End(p)
	c.maybeReadahead(p, fd, off, n)
	type chunk struct {
		pd       *Pending
		off, len int64 // relative to the read's start
	}
	var (
		window   = c.window()
		q        []chunk
		issued   int64
		total    int64
		firstErr error
		short    bool
	)
	for {
		for firstErr == nil && !short && issued < n && len(q) < window {
			sz := c.chunkSize(off+issued, n-issued)
			pd := c.conn.CallAsync(p, &ninep.Msg{
				Type: ninep.Tread, Fid: uint32(fd), Off: off + issued, Count: sz, Addr: buf.Addr + issued,
			})
			q = append(q, chunk{pd: pd, off: issued, len: sz})
			issued += sz
		}
		if len(q) == 0 {
			break
		}
		head := q[0]
		q = q[1:]
		resp, err := c.conn.Wait(p, head.pd)
		switch {
		case err != nil:
			if firstErr == nil {
				firstErr = err
			}
		case firstErr == nil && total == head.off:
			total += resp.Count
			if resp.Count < head.len {
				short = true
			}
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return total, nil
}

// Write writes the first n bytes of buf at off. The caller must have
// placed the payload in buf.Data beforehand (it is the application's own
// memory). With Pipeline set, large writes go out as a window of chunk
// RPCs whose interior boundaries are block-aligned (see chunkSize).
func (c *FSClient) Write(p *sim.Proc, fd Fd, off int64, buf Buffer, n int64) (int64, error) {
	if n > int64(len(buf.Data)) {
		return 0, fmt.Errorf("dataplane: write %d from %d-byte buffer", n, len(buf.Data))
	}
	if c.Pipeline && n > c.chunkBytes() {
		return c.writePipelined(p, fd, off, buf, n)
	}
	resp, err := c.conn.Call(p, &ninep.Msg{
		Type: ninep.Twrite, Fid: uint32(fd), Off: off, Count: n, Addr: buf.Addr,
	})
	if err != nil {
		return 0, err
	}
	if st := c.fids[uint32(fd)]; st != nil && off+resp.Count > st.size {
		st.size = off + resp.Count
	}
	return resp.Count, nil
}

// writePipelined is readPipelined's mirror for writes.
func (c *FSClient) writePipelined(p *sim.Proc, fd Fd, off int64, buf Buffer, n int64) (int64, error) {
	sp := c.conn.startSpan(p, "dataplane.fs.write_pipelined")
	sp.TagInt("bytes", n)
	defer sp.End(p)
	type chunk struct {
		pd       *Pending
		off, len int64
	}
	var (
		window   = c.window()
		q        []chunk
		issued   int64
		total    int64
		firstErr error
		short    bool
	)
	for {
		for firstErr == nil && !short && issued < n && len(q) < window {
			sz := c.chunkSize(off+issued, n-issued)
			pd := c.conn.CallAsync(p, &ninep.Msg{
				Type: ninep.Twrite, Fid: uint32(fd), Off: off + issued, Count: sz, Addr: buf.Addr + issued,
			})
			q = append(q, chunk{pd: pd, off: issued, len: sz})
			issued += sz
		}
		if len(q) == 0 {
			break
		}
		head := q[0]
		q = q[1:]
		resp, err := c.conn.Wait(p, head.pd)
		switch {
		case err != nil:
			if firstErr == nil {
				firstErr = err
			}
		case firstErr == nil && total == head.off:
			total += resp.Count
			if resp.Count < head.len {
				short = true
			}
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	if st := c.fids[uint32(fd)]; st != nil && off+total > st.size {
		st.size = off + total
	}
	return total, nil
}

// maybeReadahead posts a Treadahead hint covering the window after a
// sequential read, so the proxy's cache fill for the *next* request runs
// while this one's data is still streaming over PCIe. The hint is
// advisory and fire-and-forget; the previous hint's (immediate) reply is
// reaped here to keep at most one outstanding.
func (c *FSClient) maybeReadahead(p *sim.Proc, fd Fd, off, n int64) {
	if !c.Pipeline {
		return
	}
	st := c.fids[uint32(fd)]
	if st == nil {
		return
	}
	sequential := off == st.seqEnd
	st.seqEnd = off + n
	if !sequential || n == 0 {
		return
	}
	if st.ra != nil {
		c.conn.Wait(p, st.ra) // hint replies immediately; errors are advisory
		st.ra = nil
	}
	raOff := off + n
	if st.size > 0 && raOff >= st.size {
		return
	}
	raN := int64(c.window()) * c.chunkBytes()
	st.ra = c.conn.CallAsync(p, &ninep.Msg{Type: ninep.Treadahead, Fid: uint32(fd), Off: raOff, Count: raN})
}

// Stat returns file metadata.
func (c *FSClient) Stat(p *sim.Proc, path string) (size int64, mode uint16, err error) {
	resp, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tstat, Name: path})
	if err != nil {
		return 0, 0, err
	}
	return resp.Size, resp.Mode, nil
}

// Unlink removes a file or empty directory.
func (c *FSClient) Unlink(p *sim.Proc, path string) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tunlink, Name: path})
	return err
}

// Mkdir creates a directory.
func (c *FSClient) Mkdir(p *sim.Proc, path string) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tmkdir, Name: path})
	return err
}

// ReadDir lists a directory. Entries travel inline in the response.
func (c *FSClient) ReadDir(p *sim.Proc, path string) ([]string, error) {
	resp, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Treaddir, Name: path})
	if err != nil {
		return nil, err
	}
	var names []string
	data := resp.Data
	for len(data) > 0 {
		n := int(data[0])
		if len(data) < 1+n {
			return nil, fmt.Errorf("dataplane: corrupt readdir payload")
		}
		names = append(names, string(data[1:1+n]))
		data = data[1+n:]
	}
	return names, nil
}

// Rename moves a file or directory.
func (c *FSClient) Rename(p *sim.Proc, oldPath, newPath string) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Trename, Name: oldPath + "\x00" + newPath})
	return err
}

// Link creates a hard link to an existing file.
func (c *FSClient) Link(p *sim.Proc, oldPath, newPath string) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tlink, Name: oldPath + "\x00" + newPath})
	return err
}

// Truncate resizes a file.
func (c *FSClient) Truncate(p *sim.Proc, fd Fd, size int64) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Ttrunc, Fid: uint32(fd), Size: size})
	return err
}

// Sync asks the control plane to flush file-system metadata.
func (c *FSClient) Sync(p *sim.Proc) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tsync})
	return err
}
