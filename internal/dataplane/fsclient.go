package dataplane

import (
	"fmt"

	"solros/internal/ninep"
	"solros/internal/sim"
)

// FSClient is the data-plane file-system stub: it "transforms a file
// system call from an application to a corresponding RPC, as there exists
// a one-to-one mapping between an RPC and a file system call" (§4.3.1).
// Read and write buffers live in co-processor memory; the RPC carries
// their physical addresses so the control plane can arrange zero-copy
// transfers between the disk and this memory.
type FSClient struct {
	conn *Conn
	fids map[uint32]*fidState
	next uint32
}

type fidState struct {
	path  string
	flags uint32
	size  int64
}

// Fd is a data-plane file descriptor.
type Fd uint32

// NewFSClient wraps an RPC connection in the file-system stub API.
func NewFSClient(conn *Conn) *FSClient {
	return &FSClient{conn: conn, fids: make(map[uint32]*fidState)}
}

// Buffer is an application I/O buffer in co-processor memory: the stub's
// equivalent of a pinned user page. Data points into the device's exported
// memory region; Addr is the physical address carried in RPCs.
type Buffer struct {
	Addr int64
	Data []byte
}

// AllocBuffer carves an n-byte I/O buffer out of co-processor memory.
func (c *FSClient) AllocBuffer(n int64) Buffer {
	off := c.conn.Phi.Mem.Alloc(n)
	return Buffer{Addr: off, Data: c.conn.Phi.Mem.Slice(off, n)}
}

// Open opens (or with ninep.OCreate creates) path, returning a descriptor.
func (c *FSClient) Open(p *sim.Proc, path string, flags uint32) (Fd, error) {
	typ := ninep.Topen
	if flags&ninep.OCreate != 0 {
		typ = ninep.Tcreate
	}
	c.next++
	fid := c.next
	resp, err := c.conn.Call(p, &ninep.Msg{Type: typ, Fid: fid, Name: path, Flags: flags})
	if err != nil {
		return 0, err
	}
	c.fids[fid] = &fidState{path: path, flags: flags, size: resp.Size}
	return Fd(fid), nil
}

// Close releases a descriptor.
func (c *FSClient) Close(p *sim.Proc, fd Fd) error {
	if _, ok := c.fids[uint32(fd)]; !ok {
		return fmt.Errorf("dataplane: bad fd %d", fd)
	}
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tclose, Fid: uint32(fd)})
	delete(c.fids, uint32(fd))
	return err
}

// Read reads n bytes at off into buf (co-processor memory), returning the
// bytes read. The RPC carries buf's physical address; data lands in buf by
// device DMA without staging through this stub.
func (c *FSClient) Read(p *sim.Proc, fd Fd, off int64, buf Buffer, n int64) (int64, error) {
	if n > int64(len(buf.Data)) {
		return 0, fmt.Errorf("dataplane: read %d into %d-byte buffer", n, len(buf.Data))
	}
	resp, err := c.conn.Call(p, &ninep.Msg{
		Type: ninep.Tread, Fid: uint32(fd), Off: off, Count: n, Addr: buf.Addr,
	})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Write writes the first n bytes of buf at off. The caller must have
// placed the payload in buf.Data beforehand (it is the application's own
// memory).
func (c *FSClient) Write(p *sim.Proc, fd Fd, off int64, buf Buffer, n int64) (int64, error) {
	if n > int64(len(buf.Data)) {
		return 0, fmt.Errorf("dataplane: write %d from %d-byte buffer", n, len(buf.Data))
	}
	resp, err := c.conn.Call(p, &ninep.Msg{
		Type: ninep.Twrite, Fid: uint32(fd), Off: off, Count: n, Addr: buf.Addr,
	})
	if err != nil {
		return 0, err
	}
	if st := c.fids[uint32(fd)]; st != nil && off+resp.Count > st.size {
		st.size = off + resp.Count
	}
	return resp.Count, nil
}

// Stat returns file metadata.
func (c *FSClient) Stat(p *sim.Proc, path string) (size int64, mode uint16, err error) {
	resp, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tstat, Name: path})
	if err != nil {
		return 0, 0, err
	}
	return resp.Size, resp.Mode, nil
}

// Unlink removes a file or empty directory.
func (c *FSClient) Unlink(p *sim.Proc, path string) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tunlink, Name: path})
	return err
}

// Mkdir creates a directory.
func (c *FSClient) Mkdir(p *sim.Proc, path string) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tmkdir, Name: path})
	return err
}

// ReadDir lists a directory. Entries travel inline in the response.
func (c *FSClient) ReadDir(p *sim.Proc, path string) ([]string, error) {
	resp, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Treaddir, Name: path})
	if err != nil {
		return nil, err
	}
	var names []string
	data := resp.Data
	for len(data) > 0 {
		n := int(data[0])
		if len(data) < 1+n {
			return nil, fmt.Errorf("dataplane: corrupt readdir payload")
		}
		names = append(names, string(data[1:1+n]))
		data = data[1+n:]
	}
	return names, nil
}

// Rename moves a file or directory.
func (c *FSClient) Rename(p *sim.Proc, oldPath, newPath string) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Trename, Name: oldPath + "\x00" + newPath})
	return err
}

// Link creates a hard link to an existing file.
func (c *FSClient) Link(p *sim.Proc, oldPath, newPath string) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tlink, Name: oldPath + "\x00" + newPath})
	return err
}

// Truncate resizes a file.
func (c *FSClient) Truncate(p *sim.Proc, fd Fd, size int64) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Ttrunc, Fid: uint32(fd), Size: size})
	return err
}

// Sync asks the control plane to flush file-system metadata.
func (c *FSClient) Sync(p *sim.Proc) error {
	_, err := c.conn.Call(p, &ninep.Msg{Type: ninep.Tsync})
	return err
}
