package dataplane

import (
	"solros/internal/sim"
)

// Poller is the data plane's readiness-multiplexing API (epoll-like),
// built directly on the event dispatcher of §4.4.2: the dispatcher already
// demultiplexes inbound ring events to per-socket queues, so readiness is
// a local property and a server thread can wait on many sockets at once
// without spinning on each.
type Poller struct {
	nc      *NetClient
	watched map[uint64]*Socket
	// order holds the watch set in Watch order. ready() must walk a
	// slice, not the map: map iteration order is randomized per run, and
	// with several sockets readable at once the serve order — and so
	// every downstream latency — would differ between identical seeds.
	order []*Socket
	cond  *sim.Cond
}

// NewPoller returns an empty poller on this network stub.
func (nc *NetClient) NewPoller() *Poller {
	return &Poller{
		nc:      nc,
		watched: make(map[uint64]*Socket),
		cond:    sim.NewCond("poller"),
	}
}

// Watch adds a socket to the poll set.
func (pl *Poller) Watch(s *Socket) {
	if _, ok := pl.watched[s.ID]; !ok {
		pl.order = append(pl.order, s)
	}
	pl.watched[s.ID] = s
	if s.poller != nil && s.poller != pl {
		panic("dataplane: socket watched by two pollers")
	}
	s.poller = pl
}

// Unwatch removes a socket from the poll set.
func (pl *Poller) Unwatch(s *Socket) {
	if _, ok := pl.watched[s.ID]; ok {
		for i, w := range pl.order {
			if w == s {
				pl.order = append(pl.order[:i], pl.order[i+1:]...)
				break
			}
		}
	}
	delete(pl.watched, s.ID)
	s.poller = nil
}

// ready collects watched sockets with data or EOF pending, in watch
// order (deterministic).
func (pl *Poller) ready() []*Socket {
	var out []*Socket
	for _, s := range pl.order {
		if len(s.recvq) > 0 || s.eof {
			out = append(out, s)
		}
	}
	return out
}

// Wait blocks until at least one watched socket is readable (has data or
// EOF) and returns all currently readable ones. It returns nil if the
// poll set is empty or the stub is shutting down.
func (pl *Poller) Wait(p *sim.Proc) []*Socket {
	for {
		if len(pl.watched) == 0 {
			return nil
		}
		if rs := pl.ready(); len(rs) > 0 {
			return rs
		}
		if pl.nc.inbound.Ring().Closed() {
			return nil
		}
		p.Wait(pl.cond)
	}
}

// notify is called by the dispatcher when a watched socket becomes
// readable.
func (pl *Poller) notify(p *sim.Proc) {
	p.Broadcast(pl.cond)
}
