package dataplane

import (
	"strings"
	"testing"

	"solros/internal/ninep"
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/transport"
)

// TestWaitAfterCloseErrors is the regression for the original hang: a
// Pending redeemed after the connection closed (dispatcher gone) must fail
// immediately, and an async call issued after close must fail too rather
// than park forever on a response that cannot arrive.
func TestWaitAfterCloseErrors(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{})
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		p.Spawn("mute-proxy", func(wp *sim.Proc) {
			for {
				if _, ok := reqPort.Recv(wp); !ok {
					return
				}
			}
		})
		_ = respPort
		pd := conn.CallAsync(p, &ninep.Msg{Type: ninep.Tstat, Name: "/x"})
		conn.Close(p)
		p.Advance(10 * sim.Microsecond)
		if _, err := conn.Wait(p, pd); err == nil {
			t.Error("Wait on a pre-close pending survived the close")
		}
		// Issued entirely after close: the dispatcher is dead, so the
		// call must be stillborn, not parked.
		late := conn.CallAsync(p, &ninep.Msg{Type: ninep.Tstat, Name: "/y"})
		if _, err := conn.Wait(p, late); err == nil {
			t.Error("Wait on a post-close call did not error")
		}
	})
	e.MustRun()
}

// lossyProxy answers requests like echoProxy but swallows the first drop
// requests without replying — the RPC-level view of a ring message loss.
func lossyProxy(p *sim.Proc, req, resp *transport.Port, drop int) {
	p.Spawn("lossy-proxy", func(wp *sim.Proc) {
		for {
			raw, ok := req.Recv(wp)
			if !ok {
				return
			}
			if drop > 0 {
				drop--
				continue
			}
			m, err := ninep.Decode(raw)
			if err != nil {
				panic(err)
			}
			resp.Send(wp, (&ninep.Msg{Type: ninep.Ropen, Tag: m.Tag, Size: int64(m.Fid)}).Encode())
		}
	})
}

func TestDeadlineResendRecoversLostRequest(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{})
	conn.Deadline = 50 * sim.Microsecond
	conn.Retries = 3
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		lossyProxy(p, reqPort, respPort, 1)
		start := p.Now()
		resp, err := conn.Call(p, &ninep.Msg{Type: ninep.Topen, Fid: 42})
		if err != nil {
			t.Errorf("call lost once did not recover: %v", err)
		} else if resp.Size != 42 {
			t.Errorf("resent call answered wrong: size=%d", resp.Size)
		}
		if p.Now()-start < conn.Deadline {
			t.Error("call completed before the deadline could have fired")
		}
		conn.Close(p)
	})
	e.MustRun()
}

func TestDeadlineExhaustionTimesOutAndDrainsStaleResponses(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{})
	conn.Deadline = 20 * sim.Microsecond
	conn.Retries = 2
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		// Hoard every request; answer them all only after the caller has
		// given up, so the dispatcher must drain them as stale.
		var held [][]byte
		hoard := sim.NewCond("hoard")
		release := false
		p.Spawn("hoarding-proxy", func(wp *sim.Proc) {
			for {
				raw, ok := reqPort.Recv(wp)
				if !ok {
					return
				}
				held = append(held, raw)
			}
		})
		p.Spawn("late-replier", func(wp *sim.Proc) {
			for !release {
				wp.Wait(hoard)
			}
			for _, raw := range held {
				m, err := ninep.Decode(raw)
				if err != nil {
					panic(err)
				}
				respPort.Send(wp, (&ninep.Msg{Type: ninep.Ropen, Tag: m.Tag}).Encode())
			}
		})
		_, err := conn.Call(p, &ninep.Msg{Type: ninep.Topen, Fid: 7})
		if err == nil {
			t.Error("call with a mute proxy did not time out")
		} else if !strings.Contains(err.Error(), "timed out") {
			t.Errorf("wrong timeout error: %v", err)
		}
		// All 3 transmissions (original + 2 resends) now get answered
		// late; the dispatcher must drop them without panicking.
		release = true
		p.Broadcast(hoard)
		p.Advance(100 * sim.Microsecond)
		// The retired tag must be reusable only after its stale
		// responses drained; either way a fresh call still works once a
		// healthy proxy answers.
		if len(held) != 3 {
			t.Errorf("proxy saw %d transmissions, want 3", len(held))
		}
		conn.Close(p)
	})
	e.MustRun()
}

func TestCrashResetReconnect(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, respPort := NewConn(fab, phi, transport.Options{})
	conn.Reconnect = true
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		echoProxy(p, reqPort, respPort)
		p.Spawn("crasher", func(cp *sim.Proc) {
			cp.Advance(55 * sim.Microsecond)
			conn.Crash(cp)
			cp.Advance(100 * sim.Microsecond)
			req2, resp2 := conn.Reset(cp)
			if req2 == nil {
				t.Error("Reset of a crashed (not closed) conn returned nil ports")
				return
			}
			echoProxy(cp, req2, resp2)
		})
		// Calls straddle the outage: every one must complete — the ones
		// severed by the crash via transparent reconnect.
		for i := 0; i < 20; i++ {
			resp, err := conn.Call(p, &ninep.Msg{Type: ninep.Topen, Fid: uint32(i)})
			if err != nil {
				t.Errorf("call %d failed across crash/reset: %v", i, err)
				return
			}
			if resp.Size != int64(i) {
				t.Errorf("call %d misrouted: got %d", i, resp.Size)
			}
			p.Advance(10 * sim.Microsecond)
		}
		conn.Close(p)
	})
	e.MustRun()
}

func TestCloseDefeatsReconnect(t *testing.T) {
	fab := pcie.New(64 << 20)
	phi := fab.AddPhi("phi0", 0, 16<<20)
	conn, reqPort, _ := NewConn(fab, phi, transport.Options{})
	conn.Reconnect = true
	e := sim.NewEngine()
	e.Spawn("main", 0, func(p *sim.Proc) {
		conn.Start(p)
		p.Spawn("mute-proxy", func(wp *sim.Proc) {
			for {
				if _, ok := reqPort.Recv(wp); !ok {
					return
				}
			}
		})
		p.Spawn("closer", func(cp *sim.Proc) {
			cp.Advance(30 * sim.Microsecond)
			conn.Close(cp)
		})
		// Reconnect must not loop forever on a permanent close.
		if _, err := conn.Call(p, &ninep.Msg{Type: ninep.Tstat, Name: "/x"}); err == nil {
			t.Error("call survived permanent close despite Reconnect")
		}
		if req, resp := conn.Reset(p); req != nil || resp != nil {
			t.Error("Reset resurrected a closed connection")
		}
	})
	e.MustRun()
}
