package ringbuf

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
)

func TestEnqueueDequeueRoundTrip(t *testing.T) {
	r := New(4096, 64, 8)
	e, err := r.Enqueue(5)
	if err != nil {
		t.Fatal(err)
	}
	e.CopyIn([]byte("hello"))
	e.SetReady()
	d, err := r.Dequeue()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, d.Size())
	d.CopyOut(out)
	d.SetDone()
	if !bytes.Equal(out, []byte("hello")) {
		t.Fatalf("got %q, want hello", out)
	}
}

func TestDequeueEmptyWouldBlock(t *testing.T) {
	r := New(4096, 64, 8)
	if _, err := r.Dequeue(); err != ErrWouldBlock {
		t.Fatalf("err = %v, want ErrWouldBlock", err)
	}
}

func TestEnqueueFullWouldBlock(t *testing.T) {
	r := New(256, 4, 8)
	var elems []*Elem
	for {
		e, err := r.Enqueue(64)
		if err == ErrWouldBlock {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		e.SetReady()
		elems = append(elems, e)
		if len(elems) > 100 {
			t.Fatal("ring never filled")
		}
	}
	if len(elems) == 0 {
		t.Fatal("could not enqueue even one element")
	}
}

func TestSlotExhaustionIndependentOfBytes(t *testing.T) {
	// Plenty of bytes, only 2 slots.
	r := New(1<<20, 2, 8)
	a, _ := r.Enqueue(8)
	b, _ := r.Enqueue(8)
	if _, err := r.Enqueue(8); err != ErrWouldBlock {
		t.Fatalf("3rd enqueue err = %v, want ErrWouldBlock", err)
	}
	a.SetReady()
	b.SetReady()
}

func TestSpaceReclaimedAfterSetDone(t *testing.T) {
	r := New(256, 8, 8)
	fill := func() int {
		n := 0
		for {
			e, err := r.Enqueue(56)
			if err != nil {
				return n
			}
			e.SetReady()
			n++
		}
	}
	n1 := fill()
	if n1 == 0 {
		t.Fatal("empty ring rejected enqueue")
	}
	// Drain everything.
	for i := 0; i < n1; i++ {
		d, err := r.Dequeue()
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		d.SetDone()
	}
	n2 := fill()
	if n2 != n1 {
		t.Fatalf("after drain could enqueue %d, want %d (space not reclaimed)", n2, n1)
	}
}

func TestUnpublishedElementBlocksDequeue(t *testing.T) {
	r := New(4096, 16, 8)
	e, _ := r.Enqueue(8) // reserved, never set ready
	e2, _ := r.Enqueue(8)
	e2.SetReady()
	// FIFO: the unready head must block dequeue even though e2 is ready.
	if _, err := r.Dequeue(); err != ErrWouldBlock {
		t.Fatalf("dequeue past unready head: err = %v, want ErrWouldBlock", err)
	}
	e.SetReady()
	d, err := r.Dequeue()
	if err != nil {
		t.Fatal(err)
	}
	d.SetDone()
}

func TestWrapAroundPreservesData(t *testing.T) {
	r := New(128, 64, 8)
	// Repeatedly push/pop elements whose sizes force wrapping.
	for i := 0; i < 200; i++ {
		size := 24 + (i%3)*16
		e, err := r.Enqueue(size)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		payload := bytes.Repeat([]byte{byte(i)}, size)
		e.CopyIn(payload)
		e.SetReady()
		d, err := r.Dequeue()
		if err != nil {
			t.Fatalf("iter %d dequeue: %v", i, err)
		}
		if !bytes.Equal(d.Bytes(), payload) {
			t.Fatalf("iter %d: payload corrupted across wrap", i)
		}
		d.SetDone()
	}
}

func TestTooLarge(t *testing.T) {
	r := New(128, 8, 8)
	if _, err := r.Enqueue(1 << 20); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if _, err := r.Enqueue(-1); err != ErrTooLarge {
		t.Fatalf("negative size err = %v, want ErrTooLarge", err)
	}
}

func TestSetReadyTwicePanics(t *testing.T) {
	r := New(4096, 8, 8)
	e, _ := r.Enqueue(8)
	e.SetReady()
	defer func() {
		if recover() == nil {
			t.Fatal("double SetReady did not panic")
		}
	}()
	e.SetReady()
}

func TestConcurrentProducersConsumers(t *testing.T) {
	r := New(1<<16, 256, 16)
	const producers, perProducer, consumers = 4, 2000, 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for {
					e, err := r.Enqueue(16)
					if err == ErrWouldBlock {
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					var b [16]byte
					binary.LittleEndian.PutUint64(b[:8], uint64(p))
					binary.LittleEndian.PutUint64(b[8:], uint64(i))
					e.CopyIn(b[:])
					e.SetReady()
					break
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[[2]uint64]bool)
	total := 0
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				mu.Lock()
				done := total == producers*perProducer
				mu.Unlock()
				if done {
					return
				}
				d, err := r.Dequeue()
				if err == ErrWouldBlock {
					continue
				}
				var b [16]byte
				d.CopyOut(b[:])
				d.SetDone()
				key := [2]uint64{
					binary.LittleEndian.Uint64(b[:8]),
					binary.LittleEndian.Uint64(b[8:]),
				}
				mu.Lock()
				if seen[key] {
					t.Errorf("duplicate %v", key)
				}
				seen[key] = true
				total++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if total != producers*perProducer {
		t.Fatalf("consumed %d, want %d", total, producers*perProducer)
	}
}

// Property: any sequence of enqueue sizes round-trips intact in FIFO order
// through a single-threaded producer/consumer pair.
func TestFIFORoundTripProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		r := New(512, 16, 4)
		var want, got [][]byte
		pending := 0
		for i, sz := range sizes {
			size := int(sz) % 64
			e, err := r.Enqueue(size)
			if err == ErrWouldBlock {
				// Drain one and retry once.
				d, derr := r.Dequeue()
				if derr != nil {
					continue
				}
				got = append(got, append([]byte(nil), d.Bytes()...))
				d.SetDone()
				pending--
				e, err = r.Enqueue(size)
				if err != nil {
					continue
				}
			} else if err != nil {
				return false
			}
			payload := bytes.Repeat([]byte{byte(i)}, size)
			e.CopyIn(payload)
			e.SetReady()
			want = append(want, payload)
			pending++
		}
		for pending > 0 {
			d, err := r.Dequeue()
			if err != nil {
				return false
			}
			got = append(got, append([]byte(nil), d.Bytes()...))
			d.SetDone()
			pending--
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
