// Package ringbuf implements the Solros transport ring buffer (§4.2) as a
// real concurrent data structure: a fixed-capacity circular byte buffer
// with variable-size elements, concurrent producers and consumers,
// non-blocking semantics (ErrWouldBlock when full/empty), and a
// combining-based design that batches operations from concurrent threads
// through a single combiner to minimize contention on the ring's control
// variables.
//
// The API mirrors Figure 5 of the paper: enqueue/dequeue reserve or locate
// an element and return a buffer pointer; the data copy happens outside
// the (combined) critical path; SetReady/SetDone publish the transition.
package ringbuf

import (
	"errors"
	"sync/atomic"
)

// ErrWouldBlock is returned when the ring is full (enqueue) or empty
// (dequeue), mirroring the paper's EWOULDBLOCK: "its users (e.g., file
// system and network stack) can decide to retry or not."
var ErrWouldBlock = errors.New("ringbuf: operation would block")

// ErrTooLarge is returned when an element cannot possibly fit.
var ErrTooLarge = errors.New("ringbuf: element larger than ring capacity")

// Slot lifecycle states.
const (
	slotFree     uint32 = iota // never used or reclaimed
	slotReserved               // enqueue returned, producer copying in
	slotReady                  // producer published, awaiting dequeue
	slotTaken                  // dequeue returned, consumer copying out
	slotDone                   // consumer released, awaiting reclaim
)

type slot struct {
	state atomic.Uint32
	size  int32
	// off is the payload's byte offset in the data ring.
	off int64
	// alloc is the total bytes this slot consumed from the allocation
	// cursor, including any wasted run at the end of the ring when the
	// payload would have wrapped.
	alloc int64
	_     [3]uint64 // pad against false sharing
}

// Elem is a reserved or dequeued element: a window into the ring's storage
// plus the handle needed to publish or release it.
type Elem struct {
	r *Ring
	s *slot
}

// Bytes exposes the element's payload storage inside the ring.
func (e *Elem) Bytes() []byte {
	return e.r.data[e.s.off : e.s.off+int64(e.s.size)]
}

// Size reports the element's payload size.
func (e *Elem) Size() int { return int(e.s.size) }

// CopyIn copies data into the element (rb_copy_to_rb_buf).
func (e *Elem) CopyIn(data []byte) { copy(e.Bytes(), data) }

// CopyOut copies the element's payload into dst (rb_copy_from_rb_buf).
func (e *Elem) CopyOut(dst []byte) { copy(dst, e.Bytes()) }

// SetReady publishes a reserved element for dequeueing (rb_set_ready).
func (e *Elem) SetReady() {
	if !e.s.state.CompareAndSwap(slotReserved, slotReady) {
		panic("ringbuf: SetReady on element not in reserved state")
	}
}

// SetDone releases a dequeued element's storage for reuse (rb_set_done).
func (e *Elem) SetDone() {
	if !e.s.state.CompareAndSwap(slotTaken, slotDone) {
		panic("ringbuf: SetDone on element not in taken state")
	}
}

// Ring is the combining ring buffer.
type Ring struct {
	data     []byte
	capBytes int64
	slots    []slot
	nslots   uint64

	// Allocation/consumption cursors. tailSlot and tailByte are owned
	// by the enqueue combiner; headSlot by the dequeue combiner;
	// freeSlot/freeByte by the enqueue combiner (reclaim). The atomics
	// are the cross-combiner publication points.
	tailSlot atomic.Uint64
	headSlot atomic.Uint64
	freeSlot uint64
	tailByte int64
	freeByte int64

	enq *combiner
	deq *combiner
}

// New creates a ring with the given data capacity in bytes and maximum
// element count. batch bounds how many operations one combiner serves
// before handing off (the paper's "certain number of operations").
func New(capBytes int64, nslots int, batch int) *Ring {
	if capBytes <= 0 || nslots <= 0 || batch <= 0 {
		panic("ringbuf: capacity, slots, and batch must be positive")
	}
	capBytes = (capBytes + 7) &^ 7
	r := &Ring{
		data:     make([]byte, capBytes),
		capBytes: capBytes,
		slots:    make([]slot, nslots),
		nslots:   uint64(nslots),
	}
	r.enq = newCombiner(r.applyEnqueue, batch)
	r.deq = newCombiner(r.applyDequeue, batch)
	return r
}

// Enqueue reserves an element of the given payload size (rb_enqueue). The
// caller fills it via CopyIn/Bytes and must then call SetReady. Returns
// ErrWouldBlock when the ring lacks space.
func (r *Ring) Enqueue(size int) (*Elem, error) {
	if size < 0 || (int64(size)+7)&^7 > r.capBytes {
		return nil, ErrTooLarge
	}
	o := &op{size: size}
	r.enq.do(o)
	return o.elem, o.err
}

// Dequeue claims the oldest ready element (rb_dequeue). The caller drains
// it via CopyOut/Bytes and must then call SetDone. Returns ErrWouldBlock
// when no element is ready.
func (r *Ring) Dequeue() (*Elem, error) {
	o := &op{}
	r.deq.do(o)
	return o.elem, o.err
}

// applyEnqueue runs under the enqueue combiner.
func (r *Ring) applyEnqueue(o *op) {
	need := (int64(o.size) + 7) &^ 7
	ts := r.tailSlot.Load()
	if ts-r.freeSlot == r.nslots {
		r.reclaim()
		if ts-r.freeSlot == r.nslots {
			o.err = ErrWouldBlock
			return
		}
	}
	pos := r.tailByte % r.capBytes
	waste := int64(0)
	if pos+need > r.capBytes {
		waste = r.capBytes - pos
		pos = 0
	}
	if r.tailByte+waste+need-r.freeByte > r.capBytes {
		r.reclaim()
		pos = r.tailByte % r.capBytes
		waste = 0
		if pos+need > r.capBytes {
			waste = r.capBytes - pos
			pos = 0
		}
		if r.tailByte+waste+need-r.freeByte > r.capBytes {
			o.err = ErrWouldBlock
			return
		}
	}
	s := &r.slots[ts%r.nslots]
	s.size = int32(o.size)
	s.off = pos
	s.alloc = waste + need
	s.state.Store(slotReserved)
	r.tailByte += waste + need
	r.tailSlot.Store(ts + 1)
	o.elem = &Elem{r: r, s: s}
}

// applyDequeue runs under the dequeue combiner. Delivery is strictly in
// enqueue order: a reserved-but-not-ready element at the head blocks
// dequeueing, preserving FIFO semantics across the decoupled copy phase.
func (r *Ring) applyDequeue(o *op) {
	hs := r.headSlot.Load()
	if hs == r.tailSlot.Load() {
		o.err = ErrWouldBlock
		return
	}
	s := &r.slots[hs%r.nslots]
	if !s.state.CompareAndSwap(slotReady, slotTaken) {
		o.err = ErrWouldBlock
		return
	}
	r.headSlot.Store(hs + 1)
	o.elem = &Elem{r: r, s: s}
}

// reclaim advances the free boundary over contiguous done slots; runs
// under the enqueue combiner.
func (r *Ring) reclaim() {
	head := r.headSlot.Load()
	for r.freeSlot < head {
		s := &r.slots[r.freeSlot%r.nslots]
		if !s.state.CompareAndSwap(slotDone, slotFree) {
			return
		}
		r.freeByte += s.alloc
		r.freeSlot++
	}
}

// Len reports the number of elements enqueued but not yet dequeued
// (including reserved-but-unpublished ones). Racy by nature; for tests
// and monitoring.
func (r *Ring) Len() int {
	return int(r.tailSlot.Load() - r.headSlot.Load())
}

// Cap reports the ring's data capacity in bytes.
func (r *Ring) Cap() int64 { return r.capBytes }
