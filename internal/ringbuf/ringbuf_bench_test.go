package ringbuf

import (
	"sync"
	"testing"
)

func BenchmarkEnqueueDequeuePair64B(b *testing.B) {
	r := New(1<<20, 4096, 64)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := r.Enqueue(64)
		if err != nil {
			b.Fatal(err)
		}
		e.CopyIn(payload)
		e.SetReady()
		d, err := r.Dequeue()
		if err != nil {
			b.Fatal(err)
		}
		d.SetDone()
	}
}

func BenchmarkEnqueueDequeuePairParallel(b *testing.B) {
	r := New(1<<22, 8192, 64)
	payload := make([]byte, 64)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			e, err := r.Enqueue(64)
			if err != nil {
				continue
			}
			e.CopyIn(payload)
			e.SetReady()
			if d, err := r.Dequeue(); err == nil {
				d.SetDone()
			}
		}
	})
}

func BenchmarkCombinerContention(b *testing.B) {
	r := New(1<<22, 8192, 64)
	var wg sync.WaitGroup
	b.ResetTimer()
	const workers = 8
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e, err := r.Enqueue(16)
				if err != nil {
					continue
				}
				e.SetReady()
				if d, err := r.Dequeue(); err == nil {
					d.SetDone()
				}
			}
		}()
	}
	wg.Wait()
}
