package ringbuf

import (
	"runtime"
	"sync/atomic"
)

// op is one enqueue or dequeue request handed to a combiner.
type op struct {
	// request
	size int
	// response
	elem *Elem
	err  error
}

// ccNode is a node in the combining request queue. The design follows the
// paper's description (§4.2.3): "rb_enqueue (or rb_dequeue) first adds a
// request node to the corresponding request queue, which is similar to the
// lock operation of an MCS queue lock. If the current thread is at the
// head of the request queue, it takes the role of a combiner thread and
// processes a certain number of operations." Concretely this is the
// CC-Synch combining construction, which needs exactly the two atomic
// primitives the paper requires: atomic_swap and compare_and_swap.
type ccNode struct {
	req       *op
	next      atomic.Pointer[ccNode]
	wait      atomic.Bool
	completed bool
	_         [4]uint64 // pad to keep hot nodes off shared cache lines
}

// combiner serializes operations on one end of the ring. apply executes a
// single operation while holding the (implicit) combiner role.
type combiner struct {
	tail  atomic.Pointer[ccNode]
	apply func(*op)
	batch int
}

func newCombiner(apply func(*op), batch int) *combiner {
	c := &combiner{apply: apply, batch: batch}
	dummy := &ccNode{} // wait=false: first arrival combines immediately
	c.tail.Store(dummy)
	return c
}

// do submits o and blocks until it has been applied, either by a combiner
// thread or by the caller itself after inheriting the combiner role.
func (c *combiner) do(o *op) {
	fresh := &ccNode{}
	fresh.wait.Store(true)
	cur := c.tail.Swap(fresh)
	cur.req = o
	cur.next.Store(fresh)

	for spins := 0; cur.wait.Load(); spins++ {
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
	if cur.completed {
		return
	}

	// We are the combiner: serve our own request and then successors,
	// up to the batch limit, then hand the combiner role onwards.
	tmp := cur
	for served := 0; ; served++ {
		c.apply(tmp.req)
		tmp.completed = true
		next := tmp.next.Load()
		if next == nil {
			// tmp is the tail dummy: impossible here because we
			// only apply nodes that carry requests, and a request
			// node always has next set by its owner.
			panic("ringbuf: combiner reached request node without successor")
		}
		tmp.wait.Store(false)
		if next.next.Load() == nil || served+1 >= c.batch {
			// next is the queue's dummy (no request yet) or we
			// exhausted the batch: pass the combiner role.
			next.wait.Store(false)
			return
		}
		tmp = next
	}
}
