package cache

import (
	"testing"

	"solros/internal/pcie"
)

func newCache(pages int) *Cache {
	fab := pcie.New(int64(pages+8) * PageSize)
	return New(fab, int64(pages)*PageSize)
}

func TestMissThenHit(t *testing.T) {
	c := newCache(4)
	if _, ok := c.Lookup(1, 0); ok {
		t.Fatal("hit on empty cache")
	}
	loc := c.Insert(1, 0)
	got, ok := c.Lookup(1, 0)
	if !ok || got != loc {
		t.Fatalf("lookup after insert: ok=%v", ok)
	}
	h, m, _ := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats hits=%d misses=%d", h, m)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newCache(2)
	c.Insert(1, 0)
	c.Insert(1, 1)
	c.Lookup(1, 0) // promote block 0
	c.Insert(1, 2) // must evict block 1
	if _, ok := c.Lookup(1, 1); ok {
		t.Fatal("LRU victim still cached")
	}
	if _, ok := c.Lookup(1, 0); !ok {
		t.Fatal("recently used page evicted")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestInsertExistingReturnsSameFrame(t *testing.T) {
	c := newCache(4)
	a := c.Insert(3, 7)
	b := c.Insert(3, 7)
	if a != b {
		t.Fatal("re-insert moved the page to a different frame")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(8)
	for blk := int64(0); blk < 4; blk++ {
		c.Insert(9, blk)
	}
	c.Insert(10, 0)
	c.Invalidate(9)
	if c.Len() != 1 {
		t.Fatalf("len after invalidate = %d, want 1", c.Len())
	}
	if _, ok := c.Lookup(10, 0); !ok {
		t.Fatal("unrelated inode's page dropped")
	}
	// Frames must be reusable.
	for blk := int64(0); blk < 7; blk++ {
		c.Insert(11, blk)
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8", c.Len())
	}
}

func TestInvalidateRange(t *testing.T) {
	c := newCache(8)
	for blk := int64(0); blk < 6; blk++ {
		c.Insert(5, blk)
	}
	c.InvalidateRange(5, 1*PageSize, 2*PageSize) // blocks 1,2
	for blk := int64(0); blk < 6; blk++ {
		_, ok := c.Lookup(5, blk)
		want := blk != 1 && blk != 2
		if ok != want {
			t.Fatalf("block %d cached=%v want %v", blk, ok, want)
		}
	}
}

func TestDistinctInodesDistinctPages(t *testing.T) {
	c := newCache(4)
	a := c.Insert(1, 0)
	b := c.Insert(2, 0)
	if a == b {
		t.Fatal("different inodes share a frame")
	}
}
