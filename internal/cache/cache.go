// Package cache implements the control-plane OS's shared host-side buffer
// cache (§4.3.2): an LRU page cache in host RAM, shared by all data-plane
// OSes, used by the file-system proxy's buffered mode and its prefetching
// of files accessed by multiple co-processors.
package cache

import (
	"container/list"

	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// PageSize matches the file-system block size.
const PageSize = 4096

// key identifies a cached page: an inode and a file block index.
type key struct {
	Ino uint32
	Blk int64
}

type page struct {
	k   key
	loc pcie.Loc
	elt *list.Element
}

// Cache is a fixed-capacity LRU page cache backed by host RAM.
type Cache struct {
	pages    map[key]*page
	lru      *list.List // front = most recent
	freeLocs []pcie.Loc
	capacity int

	hits, misses, evictions int64

	tel                              *telemetry.Sink
	telHits, telMisses, telEvictions *telemetry.Counter
	telResident                      *telemetry.Gauge
}

// New carves capacityBytes of page frames out of host RAM.
func New(fab *pcie.Fabric, capacityBytes int64) *Cache {
	n := int(capacityBytes / PageSize)
	if n < 1 {
		n = 1
	}
	c := &Cache{
		pages:    make(map[key]*page, n),
		lru:      list.New(),
		capacity: n,
	}
	if tel := fab.Telemetry(); tel != nil {
		c.tel = tel
		c.telHits = tel.Counter("cache.hits")
		c.telMisses = tel.Counter("cache.misses")
		c.telEvictions = tel.Counter("cache.evictions")
		c.telResident = tel.Gauge("cache.resident_pages")
	}
	base := fab.HostRAM.Alloc(int64(n) * PageSize)
	for i := 0; i < n; i++ {
		c.freeLocs = append(c.freeLocs, pcie.Loc{Off: base + int64(i)*PageSize})
	}
	return c
}

// Lookup returns the page frame holding (ino, blk) if cached, promoting it
// to most-recently-used.
func (c *Cache) Lookup(ino uint32, blk int64) (pcie.Loc, bool) {
	pg, ok := c.pages[key{ino, blk}]
	if !ok {
		c.misses++
		c.telMisses.Add(1)
		return pcie.Loc{}, false
	}
	c.hits++
	c.telHits.Add(1)
	c.lru.MoveToFront(pg.elt)
	return pg.loc, true
}

// Insert returns a frame for (ino, blk), evicting the LRU page if needed.
// The caller fills the frame (e.g. by DMA from the SSD). If the page is
// already cached its existing frame is returned.
func (c *Cache) Insert(ino uint32, blk int64) pcie.Loc {
	return c.InsertAt(nil, ino, blk)
}

// InsertAt is Insert with a sim proc for span attribution: an eviction
// emits a zero-length "cache.evict" span on p (inheriting the request's
// trace context, if any) so cold-cache pressure shows up in the causal
// timeline of the request that forced the victim out.
func (c *Cache) InsertAt(p *sim.Proc, ino uint32, blk int64) pcie.Loc {
	k := key{ino, blk}
	if pg, ok := c.pages[k]; ok {
		c.lru.MoveToFront(pg.elt)
		return pg.loc
	}
	var loc pcie.Loc
	if len(c.freeLocs) > 0 {
		loc = c.freeLocs[len(c.freeLocs)-1]
		c.freeLocs = c.freeLocs[:len(c.freeLocs)-1]
	} else {
		victim := c.lru.Back().Value.(*page)
		c.lru.Remove(victim.elt)
		delete(c.pages, victim.k)
		c.evictions++
		c.telEvictions.Add(1)
		if p != nil && c.tel != nil {
			sp := c.tel.Start(p, "cache.evict")
			sp.TagInt("ino", int64(victim.k.Ino))
			sp.TagInt("blk", victim.k.Blk)
			sp.End(p)
		}
		loc = victim.loc
	}
	pg := &page{k: k, loc: loc}
	pg.elt = c.lru.PushFront(pg)
	c.pages[k] = pg
	c.telResident.Set(int64(len(c.pages)))
	return loc
}

// Invalidate drops every cached page of the inode (unlink, truncate,
// uncached write).
func (c *Cache) Invalidate(ino uint32) {
	for k, pg := range c.pages {
		if k.Ino == ino {
			c.lru.Remove(pg.elt)
			delete(c.pages, k)
			c.freeLocs = append(c.freeLocs, pg.loc)
		}
	}
	c.telResident.Set(int64(len(c.pages)))
}

// InvalidateRange drops cached pages overlapping [off, off+n) of the inode.
func (c *Cache) InvalidateRange(ino uint32, off, n int64) {
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for blk := first; blk <= last; blk++ {
		if pg, ok := c.pages[key{ino, blk}]; ok {
			c.lru.Remove(pg.elt)
			delete(c.pages, key{ino, blk})
			c.freeLocs = append(c.freeLocs, pg.loc)
		}
	}
	c.telResident.Set(int64(len(c.pages)))
}

// ForEach visits every resident page in deterministic LRU order (most
// recent first) without touching recency or stats. Oracles use it to audit
// frame contents against backing storage.
func (c *Cache) ForEach(fn func(ino uint32, blk int64, loc pcie.Loc) bool) {
	for elt := c.lru.Front(); elt != nil; elt = elt.Next() {
		pg := elt.Value.(*page)
		if !fn(pg.k.Ino, pg.k.Blk, pg.loc) {
			return
		}
	}
}

// Stats reports hits, misses, and evictions.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// Len reports the number of resident pages.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity reports the page-frame count.
func (c *Cache) Capacity() int { return c.capacity }
