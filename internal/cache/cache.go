// Package cache implements the control-plane OS's shared host-side buffer
// cache (§4.3.2): an LRU page cache in host RAM, shared by all data-plane
// OSes, used by the file-system proxy's buffered mode and its prefetching
// of files accessed by multiple co-processors.
package cache

import (
	"solros/internal/pcie"
	"solros/internal/sim"
	"solros/internal/telemetry"
)

// PageSize matches the file-system block size.
const PageSize = 4096

// key identifies a cached page: an inode and a file block index.
type key struct {
	Ino uint32
	Blk int64
}

// page is an intrusive LRU node: the recency links live in the record
// itself, so list maintenance never allocates, and retired records are
// recycled through a free list. Steady-state insert-with-eviction reuses
// the victim's record and touches the heap not at all.
type page struct {
	k          key
	loc        pcie.Loc
	prev, next *page
}

// Cache is a fixed-capacity LRU page cache backed by host RAM.
type Cache struct {
	pages      map[key]*page
	head, tail *page // head = most recent, tail = LRU victim
	freeLocs   []pcie.Loc
	freePages  *page // recycled page records, chained through next
	capacity   int

	hits, misses, evictions int64

	tel                              *telemetry.Sink
	telHits, telMisses, telEvictions *telemetry.Counter
	telResident                      *telemetry.Gauge
}

// New carves capacityBytes of page frames out of host RAM.
func New(fab *pcie.Fabric, capacityBytes int64) *Cache {
	n := int(capacityBytes / PageSize)
	if n < 1 {
		n = 1
	}
	c := &Cache{
		pages:    make(map[key]*page, n),
		capacity: n,
	}
	if tel := fab.Telemetry(); tel != nil {
		c.tel = tel
		c.telHits = tel.Counter("cache.hits")
		c.telMisses = tel.Counter("cache.misses")
		c.telEvictions = tel.Counter("cache.evictions")
		c.telResident = tel.Gauge("cache.resident_pages")
	}
	base := fab.HostRAM.Alloc(int64(n) * PageSize)
	for i := 0; i < n; i++ {
		c.freeLocs = append(c.freeLocs, pcie.Loc{Off: base + int64(i)*PageSize})
	}
	return c
}

func (c *Cache) pushFront(pg *page) {
	pg.prev = nil
	pg.next = c.head
	if c.head != nil {
		c.head.prev = pg
	}
	c.head = pg
	if c.tail == nil {
		c.tail = pg
	}
}

func (c *Cache) unlink(pg *page) {
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		c.head = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		c.tail = pg.prev
	}
	pg.prev, pg.next = nil, nil
}

func (c *Cache) moveToFront(pg *page) {
	if c.head == pg {
		return
	}
	c.unlink(pg)
	c.pushFront(pg)
}

func (c *Cache) allocPage() *page {
	if pg := c.freePages; pg != nil {
		c.freePages = pg.next
		pg.next = nil
		return pg
	}
	return &page{}
}

func (c *Cache) retirePage(pg *page) {
	pg.k = key{}
	pg.loc = pcie.Loc{}
	pg.prev = nil
	pg.next = c.freePages
	c.freePages = pg
}

// Lookup returns the page frame holding (ino, blk) if cached, promoting it
// to most-recently-used.
func (c *Cache) Lookup(ino uint32, blk int64) (pcie.Loc, bool) {
	pg, ok := c.pages[key{ino, blk}]
	if !ok {
		c.misses++
		c.telMisses.Add(1)
		return pcie.Loc{}, false
	}
	c.hits++
	c.telHits.Add(1)
	c.moveToFront(pg)
	return pg.loc, true
}

// Insert returns a frame for (ino, blk), evicting the LRU page if needed.
// The caller fills the frame (e.g. by DMA from the SSD). If the page is
// already cached its existing frame is returned.
func (c *Cache) Insert(ino uint32, blk int64) pcie.Loc {
	return c.InsertAt(nil, ino, blk)
}

// InsertAt is Insert with a sim proc for span attribution: an eviction
// emits a zero-length "cache.evict" span on p (inheriting the request's
// trace context, if any) so cold-cache pressure shows up in the causal
// timeline of the request that forced the victim out.
func (c *Cache) InsertAt(p *sim.Proc, ino uint32, blk int64) pcie.Loc {
	k := key{ino, blk}
	if pg, ok := c.pages[k]; ok {
		c.moveToFront(pg)
		return pg.loc
	}
	var loc pcie.Loc
	var pg *page
	if len(c.freeLocs) > 0 {
		loc = c.freeLocs[len(c.freeLocs)-1]
		c.freeLocs = c.freeLocs[:len(c.freeLocs)-1]
		pg = c.allocPage()
	} else {
		victim := c.tail
		c.unlink(victim)
		delete(c.pages, victim.k)
		c.evictions++
		c.telEvictions.Add(1)
		if p != nil && c.tel != nil {
			sp := c.tel.Start(p, "cache.evict")
			sp.TagInt("ino", int64(victim.k.Ino))
			sp.TagInt("blk", victim.k.Blk)
			sp.End(p)
		}
		loc = victim.loc
		pg = victim // reuse the victim's record in place
	}
	pg.k = k
	pg.loc = loc
	c.pushFront(pg)
	c.pages[k] = pg
	c.telResident.Set(int64(len(c.pages)))
	return loc
}

// Invalidate drops every cached page of the inode (unlink, truncate,
// uncached write).
func (c *Cache) Invalidate(ino uint32) {
	for k, pg := range c.pages {
		if k.Ino == ino {
			c.unlink(pg)
			delete(c.pages, k)
			c.freeLocs = append(c.freeLocs, pg.loc)
			c.retirePage(pg)
		}
	}
	c.telResident.Set(int64(len(c.pages)))
}

// InvalidateRange drops cached pages overlapping [off, off+n) of the inode.
func (c *Cache) InvalidateRange(ino uint32, off, n int64) {
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for blk := first; blk <= last; blk++ {
		if pg, ok := c.pages[key{ino, blk}]; ok {
			c.unlink(pg)
			delete(c.pages, key{ino, blk})
			c.freeLocs = append(c.freeLocs, pg.loc)
			c.retirePage(pg)
		}
	}
	c.telResident.Set(int64(len(c.pages)))
}

// ForEach visits every resident page in deterministic LRU order (most
// recent first) without touching recency or stats. Oracles use it to audit
// frame contents against backing storage.
func (c *Cache) ForEach(fn func(ino uint32, blk int64, loc pcie.Loc) bool) {
	for pg := c.head; pg != nil; pg = pg.next {
		if !fn(pg.k.Ino, pg.k.Blk, pg.loc) {
			return
		}
	}
}

// Stats reports hits, misses, and evictions.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// Len reports the number of resident pages.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity reports the page-frame count.
func (c *Cache) Capacity() int { return c.capacity }
