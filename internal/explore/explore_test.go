package explore

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestExplorerCatchesRingBug is the harness's acceptance test: a
// deliberately reintroduced ordering bug — rings publishing `ready` before
// the payload copy completes (transport.Options.BugReadyBeforeCopy) — must
// be caught by the seed sweep within 200 seeds, shrunk to a minimal
// failing schedule prefix, and packaged as a replay artifact that
// reproduces the identical trace digest.
func TestExplorerCatchesRingBug(t *testing.T) {
	w := WithRingBug(transportWorkload())
	var failing Result
	caught := false
	for seed := int64(1); seed <= 200; seed++ {
		if res := RunSeed(w, seed, 0); res.Failed() {
			failing, caught = res, true
			break
		}
	}
	if !caught {
		t.Fatal("ready-before-copy bug not caught within 200 seeds")
	}
	if failing.Violation == nil {
		t.Fatalf("bug surfaced as a workload error, not an oracle violation: %s", failing.String())
	}
	if failing.Violation.Oracle != "ring" {
		t.Fatalf("caught by oracle %q, want %q: %v", failing.Violation.Oracle, "ring", failing.Violation.Err)
	}
	if !strings.Contains(failing.Violation.Err.Error(), "ready before copy") {
		t.Fatalf("violation does not name the ordering bug: %v", failing.Violation.Err)
	}

	shrunk := Shrink(w, failing)
	if !shrunk.Failed() {
		t.Fatal("shrink returned a passing result")
	}
	if shrunk.Budget < 1 || shrunk.Budget > failing.Draws {
		t.Fatalf("shrunk budget %d outside [1, %d]", shrunk.Budget, failing.Draws)
	}

	// The artifact's (workload, seed, budget) triple must replay the
	// failure byte-identically: same digest, same oracle.
	a := MakeArtifact(shrunk)
	replay := RunSeed(w, a.Seed, a.Budget)
	if !replay.Failed() {
		t.Fatalf("replay of seed=%d budget=%d did not fail", a.Seed, a.Budget)
	}
	if replay.Digest != shrunk.Digest {
		t.Fatalf("replay digest %016x != artifact digest %016x", replay.Digest, shrunk.Digest)
	}
	if replay.Violation == nil || replay.Violation.Oracle != shrunk.Violation.Oracle {
		t.Fatalf("replay violation %+v does not match artifact oracle %q", replay.Violation, a.Oracle)
	}
	if !strings.Contains(a.Replay, "-replay") {
		t.Fatalf("artifact replay command malformed: %q", a.Replay)
	}
}

// TestCleanWorkloadsUpholdInvariants sweeps every catalogue workload —
// including the fault-injecting chaos scenario — over a batch of seeds and
// requires zero oracle violations and zero workload errors. The full
// 200-seed sweep runs in CI via `solros-bench explore`.
func TestCleanWorkloadsUpholdInvariants(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	arts := Explore(Options{Seeds: seeds, Workloads: Workloads(), Log: t.Logf})
	for _, a := range arts {
		t.Errorf("%s seed %d: oracle=%s violation=%s error=%s (replay: %s)",
			a.Workload, a.Seed, a.Oracle, a.Violation, a.Error, a.Replay)
	}
}

// TestRunSeedIsDeterministic pins the replay contract: the same
// (workload, seed, budget) triple reproduces the same trace digest, draw
// count, and dispatch count, and different seeds explore different
// schedules.
func TestRunSeedIsDeterministic(t *testing.T) {
	w := quickWorkload()
	a := RunSeed(w, 7, 0)
	b := RunSeed(w, 7, 0)
	if a.Failed() || b.Failed() {
		t.Fatalf("clean workload failed: %s / %s", a.String(), b.String())
	}
	if a.Digest != b.Digest || a.Draws != b.Draws || a.Dispatches != b.Dispatches {
		t.Fatalf("seed 7 not reproducible: %s vs %s", a.String(), b.String())
	}
	c := RunSeed(w, 8, 0)
	if c.Digest == a.Digest {
		t.Fatalf("seeds 7 and 8 produced the same trace digest %016x", a.Digest)
	}
}

// TestArtifactRoundTrip checks the on-disk artifact is valid JSON carrying
// every replay ingredient.
func TestArtifactRoundTrip(t *testing.T) {
	r := Result{Workload: "transport+ringbug", Seed: 42, Budget: 3, Digest: 0xdeadbeefcafef00d}
	r.Err = "boom"
	a := MakeArtifact(r)
	dir := t.TempDir()
	path, err := WriteArtifact(a, dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back != a {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, a)
	}
	if back.TraceDigest != "deadbeefcafef00d" {
		t.Fatalf("trace digest = %q", back.TraceDigest)
	}
}
