package explore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"solros/internal/apps/kvstore"
	"solros/internal/controlplane"
	"solros/internal/core"
	"solros/internal/dataplane"
	"solros/internal/faults"
	"solros/internal/fs"
	"solros/internal/netstack"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/workload"
)

// A Workload is one reproducible machine scenario the explorer sweeps
// seeds over. Run receives a base Config carrying the explorer's settings
// (SchedSeed, SchedBudget, Oracles, OracleEvery), fills in the scenario's
// own sizing and features, executes it, and returns the machine for
// inspection. The returned error covers both engine failures (deadlock)
// and workload-level failures (an RPC that should have succeeded).
type Workload struct {
	Name string
	Desc string
	Run  func(base core.Config) (*core.Machine, error)
}

// Workloads returns the explorer's scenario catalogue. "quick" is the CI
// smoke scenario; All() is the default sweep set.
func Workloads() []Workload {
	return []Workload{quickWorkload(), transportWorkload(), fsWorkload(), chaosWorkload(), kvWorkload(), scaleWorkload()}
}

// All returns the default sweep set (everything except the smoke scenario).
func All() []Workload {
	return []Workload{transportWorkload(), fsWorkload(), chaosWorkload(), kvWorkload(), scaleWorkload()}
}

// Lookup resolves a workload by name.
func Lookup(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// small keeps per-run allocations tiny: hundreds of machines are built per
// sweep, and the fsck oracle copies the whole disk image per snapshot.
func small(base core.Config) core.Config {
	base.PhiMemBytes = 4 << 20
	base.HostRAMBytes = 16 << 20
	base.DiskBytes = 2 << 20
	base.CacheBytes = 256 << 10
	base.RingOptions.CapBytes = 64 << 10
	return base
}

// runBody executes body on a machine built from cfg, converting workload
// panics-by-convention into errors so a failing seed is reported, not a
// crashed process.
func runBody(cfg core.Config, body func(p *sim.Proc, m *core.Machine) error) (*core.Machine, error) {
	m := core.NewMachine(cfg)
	var bodyErr error
	engErr := m.Run(func(p *sim.Proc, mm *core.Machine) {
		bodyErr = body(p, mm)
	})
	if engErr != nil {
		return m, engErr
	}
	return m, bodyErr
}

// quickWorkload is the CI smoke scenario: two co-processors hammer small
// RPCs over deliberately tiny rings (forcing wraparound and wouldblock
// paths), share one read-mostly file (exercising the popularity prefetch
// and the pendingFill claim protocol), and Sync so the fsck oracle sees
// quiescent points. Small enough for hundreds of seeds in seconds.
func quickWorkload() Workload {
	return Workload{
		Name: "quick",
		Desc: "smoke: 2 phis, tiny rings, shared read-mostly file",
		Run: func(base core.Config) (*core.Machine, error) {
			cfg := small(base)
			cfg.Phis = 2
			cfg.RingOptions.CapBytes = 8 << 10
			cfg.RingOptions.Slots = 8
			return runBody(cfg, func(p *sim.Proc, m *core.Machine) error {
				data := workload.Corpus(7, 32<<10)
				if err := writeFile(p, m.Phis[0].FS, "/shared", data); err != nil {
					return err
				}
				if err := m.Phis[0].FS.Sync(p); err != nil {
					return err
				}
				var errs [2]error
				core.Parallel(p, 2, "quick-reader", func(i int, wp *sim.Proc) {
					fsc := m.Phis[i].FS
					for round := 0; round < 3 && errs[i] == nil; round++ {
						errs[i] = readAndVerify(wp, fsc, "/shared", ninep.OBuffer, data)
					}
				})
				for _, err := range errs {
					if err != nil {
						return err
					}
				}
				return nil
			})
		},
	}
}

// transportWorkload stresses the ring protocol: three workers per
// co-processor issue back-to-back small RPCs through rings sized to wrap
// every few messages, with combiner-amortized batch dequeue on, so
// reserve/copy/publish and batched take/reclaim interleave across workers
// at every explored schedule.
func transportWorkload() Workload {
	return Workload{
		Name: "transport",
		Desc: "ring stress: tiny wrapped rings, batched dequeue, 3 workers/phi",
		Run: func(base core.Config) (*core.Machine, error) {
			cfg := small(base)
			cfg.Phis = 2
			cfg.BatchRecv = true
			cfg.RingOptions.CapBytes = 4 << 10
			cfg.RingOptions.Slots = 4
			return runBody(cfg, func(p *sim.Proc, m *core.Machine) error {
				var errs [6]error
				core.Parallel(p, 6, "ring-worker", func(i int, wp *sim.Proc) {
					fsc := m.Phis[i%2].FS
					path := fmt.Sprintf("/t%d", i)
					data := workload.Corpus(int64(i), 6<<10)
					if err := writeFile(wp, fsc, path, data); err != nil {
						errs[i] = err
						return
					}
					for round := 0; round < 2; round++ {
						if _, _, err := fsc.Stat(wp, path); err != nil {
							errs[i] = err
							return
						}
						if err := readAndVerify(wp, fsc, path, 0, data); err != nil {
							errs[i] = err
							return
						}
					}
				})
				for _, err := range errs {
					if err != nil {
						return err
					}
				}
				return nil
			})
		},
	}
}

// fsWorkload stresses the file system and proxy cache: per-worker files
// go through create/write/read/link/rename/unlink cycles on the buffered
// path with interleaved Syncs, so the crash-point fsck oracle sees both
// mid-write and quiescent snapshots and the cache oracle audits every
// fill against the flash.
func fsWorkload() Workload {
	return Workload{
		Name: "fs",
		Desc: "fs stress: create/write/read/link/rename/unlink + Sync, buffered path",
		Run: func(base core.Config) (*core.Machine, error) {
			cfg := small(base)
			cfg.Phis = 1
			return runBody(cfg, func(p *sim.Proc, m *core.Machine) error {
				fsc := m.Phis[0].FS
				var errs [3]error
				core.Parallel(p, 3, "fs-worker", func(i int, wp *sim.Proc) {
					errs[i] = fsWorkerBody(wp, fsc, i)
				})
				for _, err := range errs {
					if err != nil {
						return err
					}
				}
				return fsc.Sync(p)
			})
		},
	}
}

func fsWorkerBody(p *sim.Proc, fsc *dataplane.FSClient, i int) error {
	path := fmt.Sprintf("/f%d", i)
	linked := fmt.Sprintf("/l%d", i)
	renamed := fmt.Sprintf("/r%d", i)
	data := workload.Corpus(int64(100+i), 24<<10)
	for round := 0; round < 2; round++ {
		if err := writeFile(p, fsc, path, data); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := readAndVerify(p, fsc, path, ninep.OBuffer, data); err != nil {
			return fmt.Errorf("verify %s: %w", path, err)
		}
		if err := fsc.Link(p, path, linked); err != nil {
			return fmt.Errorf("link %s: %w", linked, err)
		}
		if round == 0 {
			if err := fsc.Sync(p); err != nil {
				return err
			}
		}
		if err := fsc.Rename(p, path, renamed); err != nil {
			return fmt.Errorf("rename %s: %w", renamed, err)
		}
		if err := readAndVerify(p, fsc, linked, ninep.OBuffer, data); err != nil {
			return fmt.Errorf("verify link %s: %w", linked, err)
		}
		if err := fsc.Unlink(p, renamed); err != nil {
			return fmt.Errorf("unlink %s: %w", renamed, err)
		}
		if err := fsc.Unlink(p, linked); err != nil {
			return fmt.Errorf("unlink %s: %w", linked, err)
		}
		if err := fsc.Sync(p); err != nil {
			return err
		}
	}
	return nil
}

// chaosWorkload layers the fault injector over the fs scenario: transient
// NVMe errors, ring drops and stalls, and one mid-run channel crash, with
// RPC deadlines and same-tag retries armed — so the oracles watch the
// recovery machinery (stale-tag drains, reattach, degraded-mode retries)
// under explored schedules, not just the happy path. The fault plan's seed
// is the exploration seed, so fault points vary with the schedule.
func chaosWorkload() Workload {
	return Workload{
		Name: "chaos",
		Desc: "fault injection: nvme errors, ring drops, channel crash, under seeds",
		Run: func(base core.Config) (*core.Machine, error) {
			cfg := small(base)
			cfg.Phis = 1
			cfg.Faults = &faults.Plan{
				Seed:             base.SchedSeed,
				NVMeReadErrRate:  0.02,
				NVMeWriteErrRate: 0.02,
				RingDropRate:     0.02,
				RingStallRate:    0.05,
				CrashTimes:       []sim.Time{400 * sim.Microsecond},
				CrashDowntime:    100 * sim.Microsecond,
			}
			cfg.RPCDeadline = 2 * sim.Millisecond
			cfg.RPCRetries = 8
			return runBody(cfg, func(p *sim.Proc, m *core.Machine) error {
				fsc := m.Phis[0].FS
				data := workload.Corpus(11, 32<<10)
				if err := writeFile(p, fsc, "/chaos", data); err != nil {
					return fmt.Errorf("write /chaos: %w", err)
				}
				if err := fsc.Sync(p); err != nil {
					return fmt.Errorf("sync: %w", err)
				}
				if err := readAndVerify(p, fsc, "/chaos", ninep.OBuffer, data); err != nil {
					return fmt.Errorf("verify /chaos: %w", err)
				}
				// Unlink is not idempotent: with RingDropRate armed the
				// RPC layer may retry an unlink whose first execution
				// succeeded but whose response was dropped, and the retry
				// legitimately reports NOENT. That ambiguity is inherent
				// to at-least-once delivery, not a bug.
				if err := fsc.Unlink(p, "/chaos"); err != nil && err.Error() != fs.ErrNotExist.Error() {
					return err
				}
				return fsc.Sync(p)
			})
		},
	}
}

// kvPort is the KV scenario's listen port (per-machine, so any value works).
const kvPort = 7200

// kvWorkload drives the sharded KV store through the full network path:
// content-routed connections to per-phi servers, a mixed op stream
// (put/get/delete/scan, compaction armed aggressively) verified against a
// model map, with the log/index coherence oracle polled at every
// scheduling decision and the deep log-replay check at quiesce. The op
// mix is derived from the exploration seed, so the sweep varies the
// request pattern along with the schedule.
func kvWorkload() Workload {
	return Workload{
		Name: "kv",
		Desc: "kv store: content-routed shards, mixed ops vs model map, coherence oracle",
		Run: func(base core.Config) (*core.Machine, error) {
			cfg := small(base)
			// The network service sizes its rings up to 8 MB each
			// regardless of RingOptions, so this scenario cannot run on
			// small()'s 4 MB phi memory: re-grow just enough for the net
			// rings plus the shard's log buffers.
			cfg.PhiMemBytes = 16 << 20
			cfg.HostRAMBytes = 64 << 20
			cfg.Phis = 2
			cfg.KVCompact = true
			cfg.KVCompactEvery = 8
			cfg.KVCompactFrac = 0.3
			oracle := &kvstore.CoherenceOracle{}
			cfg.Oracles = append(cfg.Oracles, oracle)
			// EnableNetwork must precede Run, so this scenario cannot use
			// runBody (which builds the machine itself).
			m := core.NewMachine(cfg)
			m.EnableNetwork()
			var bodyErr error
			engErr := m.Run(func(p *sim.Proc, mm *core.Machine) {
				bodyErr = kvBody(p, mm, oracle, base.SchedSeed)
			})
			if engErr != nil {
				return m, engErr
			}
			return m, bodyErr
		},
	}
}

func kvBody(p *sim.Proc, m *core.Machine, oracle *kvstore.CoherenceOracle, seed int64) error {
	m.TCPProxy.Balance = kvstore.Balancer()
	phis := len(m.Phis)
	serversDone := sim.NewWaitGroup("kv-servers")
	srvErrs := make([]error, phis)
	for i, phi := range m.Phis {
		if err := phi.Net.Listen(p, kvPort); err != nil {
			return err
		}
		shard := kvstore.NewShard(m, i, kvstore.Options{})
		if err := shard.Open(p); err != nil {
			return err
		}
		oracle.Track(shard)
		sv := kvstore.NewServer(shard, phi.Net, kvPort)
		i := i
		serversDone.Add(1)
		p.Spawn(fmt.Sprintf("kv-srv-%d", i), func(sp *sim.Proc) {
			defer sp.DoneWG(serversDone)
			srvErrs[i] = sv.Run(sp)
		})
	}

	// One pooled connection per shard, bound lazily by its first request's
	// key (content routing pins the connection to that key's owner).
	clients := make([]*kvstore.Client, phis)
	sides := make([]*netstack.Side, phis)
	clientFor := func(key string) (*kvstore.Client, error) {
		sh := kvstore.OwnerShard(key, phis)
		if clients[sh] == nil {
			conn, err := m.ClientStack.Dial(p, m.HostStack, kvPort)
			if err != nil {
				return nil, err
			}
			sides[sh] = conn.Side(m.ClientStack)
			clients[sh] = kvstore.NewClient(sides[sh])
			// Bind the fresh connection to its shard now: content routing
			// pins on the first request's key, and a SCAN's prefix would
			// hash to an arbitrary member otherwise.
			if _, _, err := clients[sh].Get(p, key); err != nil {
				return nil, err
			}
		}
		return clients[sh], nil
	}

	// 16 short keys plus one past the old single-byte length limit.
	names := make([]string, 16)
	for k := range names {
		names[k] = fmt.Sprintf("k:%02d", k)
	}
	names = append(names, "k:big/"+strings.Repeat("x", 300))

	model := make(map[string]string)
	rng := rand.New(rand.NewSource(seed ^ 0x6b76)) // "kv"
	opErr := func(i int, op string, err error) error {
		return fmt.Errorf("explore kv: op %d %s: %w", i, op, err)
	}
	for i := 0; i < 80; i++ {
		key := names[rng.Intn(len(names))]
		cl, err := clientFor(key)
		if err != nil {
			return opErr(i, "dial", err)
		}
		switch d := rng.Intn(10); {
		case d < 5: // put
			val := fmt.Sprintf("v%03d-%.8s-%s", i, key, workload.Corpus(int64(i), 48))
			if err := cl.Put(p, key, []byte(val)); err != nil {
				return opErr(i, "put", err)
			}
			model[key] = val
		case d < 8: // get
			got, found, err := cl.Get(p, key)
			if err != nil {
				return opErr(i, "get", err)
			}
			want, ok := model[key]
			if found != ok || (ok && string(got) != want) {
				return fmt.Errorf("explore kv: op %d get %s: got (%q,%v), want (%q,%v)",
					i, key, got, found, want, ok)
			}
		case d < 9: // delete
			found, err := cl.Delete(p, key)
			if err != nil {
				return opErr(i, "delete", err)
			}
			if _, ok := model[key]; found != ok {
				return fmt.Errorf("explore kv: op %d delete %s: found=%v, want %v", i, key, found, ok)
			}
			delete(model, key)
		default: // scan this shard for the short-key prefix
			kvs, err := cl.Scan(p, "k:0", 8)
			if err != nil {
				return opErr(i, "scan", err)
			}
			sh := kvstore.OwnerShard(key, phis)
			var want []string
			for k := range model {
				if strings.HasPrefix(k, "k:0") && kvstore.OwnerShard(k, phis) == sh {
					want = append(want, k)
				}
			}
			sort.Strings(want)
			if len(want) > 8 {
				want = want[:8]
			}
			if len(kvs) != len(want) {
				return fmt.Errorf("explore kv: op %d scan: %d entries, want %d", i, len(kvs), len(want))
			}
			for j, kv := range kvs {
				if kv.Key != want[j] || string(kv.Val) != model[kv.Key] {
					return fmt.Errorf("explore kv: op %d scan[%d]: (%q,%q), want (%q,%q)",
						i, j, kv.Key, kv.Val, want[j], model[want[j]])
				}
			}
		}
	}

	// Quiesce: close pooled connections, stop the proxy, drain servers,
	// then replay every log against its live index.
	for _, side := range sides {
		if side != nil {
			side.Close(p)
		}
	}
	m.TCPProxy.Stop(p)
	p.WaitWG(serversDone)
	for i, err := range srvErrs {
		if err != nil {
			return fmt.Errorf("explore kv: server %d: %w", i, err)
		}
	}
	return oracle.VerifyAll(p)
}

// scalePort is the scale scenario's listen port (per-machine, any value).
const scalePort = 7250

// scaleWorkload drives the sharded control plane (§6.3 scale-out): four
// co-processors over two proxy shards with private fid tables, FS churn
// from every phi (per-phi files plus one shared file so pending fills
// cross shard boundaries), and content-routed connections through the
// shared listener. The shard-assignment oracle (ShardOracle, polled at
// every scheduling decision) audits fid ownership continuously; the body
// asserts the balancer's assignment is the deterministic function of the
// first payload byte, and the quiesce audit requires empty fid tables and
// clean tag windows.
func scaleWorkload() Workload {
	return Workload{
		Name: "scale",
		Desc: "sharded proxies: 4 phis over 2 shards, fid/fill ownership oracle, content routing",
		Run: func(base core.Config) (*core.Machine, error) {
			cfg := small(base)
			// Network rings are 8 MB each regardless of RingOptions (same
			// constraint as the kv scenario).
			cfg.PhiMemBytes = 16 << 20
			cfg.HostRAMBytes = 128 << 20
			cfg.Phis = 4
			cfg.ProxyShards = 2
			cfg.ShardFids = true
			m := core.NewMachine(cfg)
			m.EnableNetwork()
			var bodyErr error
			engErr := m.Run(func(p *sim.Proc, mm *core.Machine) {
				bodyErr = scaleBody(p, mm)
			})
			if engErr != nil {
				return m, engErr
			}
			return m, bodyErr
		},
	}
}

func scaleBody(p *sim.Proc, m *core.Machine) error {
	phis := len(m.Phis)
	m.TCPProxy.Balance = &controlplane.ContentBalancer{
		Key: func(first []byte) uint32 {
			if len(first) == 0 {
				return 0
			}
			return uint32(first[0])
		},
	}
	serversDone := sim.NewWaitGroup("scale-servers")
	for i, phi := range m.Phis {
		if err := phi.Net.Listen(p, scalePort); err != nil {
			return err
		}
		i, phi := i, phi
		serversDone.Add(1)
		p.Spawn(fmt.Sprintf("scale-srv-%d", i), func(sp *sim.Proc) {
			defer sp.DoneWG(serversDone)
			for {
				sock, err := phi.Net.Accept(sp, scalePort)
				if err != nil {
					return
				}
				for {
					req, err := sock.RecvFull(sp, 1)
					if err != nil || len(req) != 1 {
						break
					}
					sock.Send(sp, []byte{byte(i)})
				}
			}
		})
	}

	// FS churn on every phi: a private file each, plus rounds against one
	// shared file so both shards fill and read the same inode.
	shared := workload.Corpus(31, 16<<10)
	if err := writeFile(p, m.Phis[0].FS, "/shared", shared); err != nil {
		return err
	}
	fsErrs := make([]error, phis)
	netErrs := make([]error, phis)
	workDone := sim.NewWaitGroup("scale-work")
	for i := range m.Phis {
		i := i
		workDone.Add(1)
		p.Spawn(fmt.Sprintf("scale-wl-%d", i), func(wp *sim.Proc) {
			defer wp.DoneWG(workDone)
			fsc := m.Phis[i].FS
			data := workload.Corpus(int64(200+i), 12<<10)
			path := fmt.Sprintf("/sc%d", i)
			for round := 0; round < 2; round++ {
				if err := writeFile(wp, fsc, path, data); err != nil {
					fsErrs[i] = fmt.Errorf("write %s: %w", path, err)
					return
				}
				if err := readAndVerify(wp, fsc, path, ninep.OBuffer, data); err != nil {
					fsErrs[i] = fmt.Errorf("verify %s: %w", path, err)
					return
				}
				if err := readAndVerify(wp, fsc, "/shared", ninep.OBuffer, shared); err != nil {
					fsErrs[i] = fmt.Errorf("verify /shared: %w", err)
					return
				}
			}
		})
		workDone.Add(1)
		p.Spawn(fmt.Sprintf("scale-net-%d", i), func(cp *sim.Proc) {
			defer cp.DoneWG(workDone)
			// Balancer-assignment oracle: with the first-byte key and a
			// full member set, connection b must land on member b % phis —
			// a pure function of the payload, identical across seeds.
			for round := 0; round < 3; round++ {
				b := byte(i + round*phis)
				conn, err := m.ClientStack.Dial(cp, m.HostStack, scalePort)
				if err != nil {
					netErrs[i] = fmt.Errorf("dial: %w", err)
					return
				}
				side := conn.Side(m.ClientStack)
				side.Send(cp, []byte{b})
				resp, err := side.RecvFull(cp, 1)
				if err != nil || len(resp) != 1 {
					netErrs[i] = fmt.Errorf("echo %d: %v", b, err)
					return
				}
				if want := int(b) % phis; int(resp[0]) != want {
					netErrs[i] = fmt.Errorf("conn with first byte %d landed on member %d, want %d",
						b, resp[0], want)
					return
				}
				side.Close(cp)
			}
		})
	}
	p.WaitWG(workDone)
	for _, errs := range [][]error{fsErrs, netErrs} {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	// Quiesce: stop the proxy (drains servers), then audit shard state.
	m.TCPProxy.Stop(p)
	p.WaitWG(serversDone)
	if err := m.FSProxy.CheckShards(); err != nil {
		return fmt.Errorf("shard audit: %w", err)
	}
	if n := m.FSProxy.OpenFids(); n != 0 {
		return fmt.Errorf("fid leak: %d open fids at quiesce", n)
	}
	for i, phi := range m.Phis {
		if err := phi.Net.RPC().CheckTags(); err != nil {
			return fmt.Errorf("phi%d net tags: %w", i, err)
		}
	}
	return nil
}

// WithRingBug wraps a workload so every ring publishes `ready` before its
// payload copy completes — the ordering bug the three-phase protocol
// prevents. TEST-ONLY: it exists to prove the explorer detects and shrinks
// a reintroduced concurrency bug (see transport.Options.BugReadyBeforeCopy).
func WithRingBug(w Workload) Workload {
	inner := w.Run
	return Workload{
		Name: w.Name + "+ringbug",
		Desc: w.Desc + " (ready-before-copy bug armed)",
		Run: func(base core.Config) (*core.Machine, error) {
			base.RingOptions.BugReadyBeforeCopy = true
			return inner(base)
		},
	}
}

// writeFile creates path and writes data through the delegated-I/O stub in
// 4 KB chunks.
func writeFile(p *sim.Proc, fsc *dataplane.FSClient, path string, data []byte) error {
	fd, err := fsc.Open(p, path, ninep.OCreate)
	if err != nil {
		return err
	}
	chunk := int64(4 << 10)
	buf := fsc.AllocBuffer(chunk)
	for off := int64(0); off < int64(len(data)); off += chunk {
		n := min(chunk, int64(len(data))-off)
		copy(buf.Data, data[off:off+n])
		if _, err := fsc.Write(p, fd, off, buf, n); err != nil {
			return err
		}
	}
	return fsc.Close(p, fd)
}

// readAndVerify reads path back in 4 KB chunks and compares to want.
func readAndVerify(p *sim.Proc, fsc *dataplane.FSClient, path string, flags uint32, want []byte) error {
	fd, err := fsc.Open(p, path, flags)
	if err != nil {
		return err
	}
	chunk := int64(4 << 10)
	buf := fsc.AllocBuffer(chunk)
	for off := int64(0); off < int64(len(want)); off += chunk {
		n := min(chunk, int64(len(want))-off)
		for i := range buf.Data {
			buf.Data[i] = 0
		}
		if _, err := fsc.Read(p, fd, off, buf, n); err != nil {
			return err
		}
		for i := int64(0); i < n; i++ {
			if buf.Data[i] != want[off+i] {
				return fmt.Errorf("explore: %s diverges at offset %d: %#x != %#x",
					path, off+i, buf.Data[i], want[off+i])
			}
		}
	}
	return fsc.Close(p, fd)
}
