package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"solros/internal/core"
)

// Result summarizes one seeded run of one workload.
type Result struct {
	Workload string
	Seed     int64
	// Budget is the sched-draw bound the run used (0 = unlimited).
	Budget int64
	// Digest is the FNV trace digest of every scheduling decision.
	Digest uint64
	// Draws and Dispatches describe how much schedule the run explored.
	Draws      int64
	Dispatches int64
	// Violation is the first oracle violation, if any.
	Violation *core.Violation
	// Err is a non-oracle failure: engine deadlock or a workload error.
	Err string
}

// Failed reports whether the run violated an invariant or errored.
func (r *Result) Failed() bool { return r.Violation != nil || r.Err != "" }

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s seed=%d budget=%d digest=%016x draws=%d dispatches=%d",
		r.Workload, r.Seed, r.Budget, r.Digest, r.Draws, r.Dispatches)
	if r.Violation != nil {
		s += fmt.Sprintf(" VIOLATION[%s @%v #%d]: %v",
			r.Violation.Oracle, r.Violation.At, r.Violation.Dispatch, r.Violation.Err)
	}
	if r.Err != "" {
		s += " ERROR: " + r.Err
	}
	return s
}

// RunSeed executes one workload under one exploration seed (0 = the
// historical deterministic schedule) with the default oracles armed.
// budget bounds random tie-break draws (0 = unlimited). The same
// (workload, seed, budget) triple always reproduces the same Result —
// that is the replay contract.
func RunSeed(w Workload, seed, budget int64) Result {
	base := core.Config{
		SchedSeed:   seed,
		SchedBudget: budget,
		Oracles:     DefaultOracles(seed),
		OracleEvery: 1,
	}
	m, err := w.Run(base)
	res := Result{Workload: w.Name, Seed: seed, Budget: budget}
	if m != nil {
		res.Digest = m.Engine.TraceDigest()
		res.Draws = m.Engine.SchedDraws()
		res.Dispatches = m.Engine.Dispatches()
		res.Violation = m.Violation()
	}
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

// Shrink minimizes a failing seed to the shortest failing prefix: the
// smallest sched budget K such that only the first K tie-break draws are
// randomized (deterministic order after) and the failure still reproduces.
// Binary search over [1, draws of the unbounded failure]; failure is not
// guaranteed monotonic in K, so the candidate is re-verified and the
// unbounded budget is the fallback. Returns the verified minimal result.
func Shrink(w Workload, failing Result) Result {
	if !failing.Failed() || failing.Seed == 0 {
		return failing
	}
	lo, hi := int64(1), failing.Draws
	if failing.Budget > 0 && failing.Budget < hi {
		hi = failing.Budget
	}
	if hi < 1 {
		return failing
	}
	best := failing
	for lo < hi {
		mid := lo + (hi-lo)/2
		if res := RunSeed(w, failing.Seed, mid); res.Failed() {
			best, hi = res, mid
		} else {
			lo = mid + 1
		}
	}
	if best.Budget == 0 || !best.Failed() {
		// Verify the boundary the search converged on.
		if res := RunSeed(w, failing.Seed, lo); res.Failed() {
			return res
		}
		return failing
	}
	return best
}

// Artifact is the replayable failure record the explorer emits: everything
// needed to reproduce a violation with one command.
type Artifact struct {
	Workload    string `json:"workload"`
	Seed        int64  `json:"seed"`
	Budget      int64  `json:"budget"`
	TraceDigest string `json:"trace_digest"`
	Oracle      string `json:"oracle,omitempty"`
	Violation   string `json:"violation,omitempty"`
	At          string `json:"at,omitempty"`
	Dispatch    int64  `json:"dispatch,omitempty"`
	Error       string `json:"error,omitempty"`
	Replay      string `json:"replay"`
}

// MakeArtifact converts a failing Result into its replay artifact.
func MakeArtifact(r Result) Artifact {
	a := Artifact{
		Workload:    r.Workload,
		Seed:        r.Seed,
		Budget:      r.Budget,
		TraceDigest: fmt.Sprintf("%016x", r.Digest),
		Error:       r.Err,
		Replay: fmt.Sprintf("solros-bench explore -workload %s -replay %d -budget %d",
			r.Workload, r.Seed, r.Budget),
	}
	if r.Violation != nil {
		a.Oracle = r.Violation.Oracle
		a.Violation = r.Violation.Err.Error()
		a.At = r.Violation.At.String()
		a.Dispatch = r.Violation.Dispatch
	}
	return a
}

// WriteArtifact persists a to dir (created if needed) as
// explore-<workload>-seed<seed>.json and returns the path.
func WriteArtifact(a Artifact, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("explore-%s-seed%d.json", a.Workload, a.Seed))
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReplayBlackbox re-runs a failing result with the telemetry flight
// recorder armed, dumping into dir: the oracle-violation (or deadlock)
// trigger then writes a blackbox JSON of the last spans and counters next
// to the replay artifact, naming the trace the failure landed in. Tracing
// itself stays OFF — the per-RPC trace trailer changes wire sizes, and so
// timing, which could perturb the schedule enough to mask the very failure
// being reproduced; the flight recorder only observes, never changes
// bytes. Returns the dump path, or "" if the re-run did not trigger.
func ReplayBlackbox(w Workload, r Result, dir string) string {
	base := core.Config{
		SchedSeed:      r.Seed,
		SchedBudget:    r.Budget,
		Oracles:        DefaultOracles(r.Seed),
		OracleEvery:    1,
		FlightRecorder: dir,
	}
	m, _ := w.Run(base)
	if m == nil || m.Telemetry() == nil {
		return ""
	}
	return m.Telemetry().LastFlightDump()
}

// Options configures a sweep.
type Options struct {
	// Seeds is how many seeds to sweep per workload (1..Seeds).
	Seeds int
	// Workloads is the scenario set (default All()).
	Workloads []Workload
	// ArtifactDir receives replay artifacts for failing seeds ("" = skip).
	ArtifactDir string
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

// Explore sweeps seeds over the workloads, shrinking every failure to its
// shortest failing prefix and emitting a replay artifact. It returns one
// artifact per failing (workload, seed) pair; empty means every explored
// schedule upheld every invariant.
func Explore(opt Options) []Artifact {
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ws := opt.Workloads
	if len(ws) == 0 {
		ws = All()
	}
	var artifacts []Artifact
	for _, w := range ws {
		fails := 0
		for seed := int64(1); seed <= int64(opt.Seeds); seed++ {
			res := RunSeed(w, seed, 0)
			if !res.Failed() {
				continue
			}
			fails++
			logf("%s", res.String())
			shrunk := Shrink(w, res)
			logf("  shrunk to budget=%d (from %d draws)", shrunk.Budget, res.Draws)
			a := MakeArtifact(shrunk)
			if opt.ArtifactDir != "" {
				if path, err := WriteArtifact(a, opt.ArtifactDir); err == nil {
					logf("  artifact: %s", path)
				} else {
					logf("  artifact write failed: %v", err)
				}
				if path := ReplayBlackbox(w, shrunk, opt.ArtifactDir); path != "" {
					logf("  blackbox: %s", path)
				}
			}
			artifacts = append(artifacts, a)
		}
		logf("workload %-10s %d seeds, %d violations", w.Name, opt.Seeds, fails)
	}
	return artifacts
}
