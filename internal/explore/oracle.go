// Package explore implements the schedule-exploration harness: seeded
// interleaving search over Solros machines, machine-wide invariant oracles
// polled at every scheduling decision, crash-point fsck over mid-write
// disk snapshots, and replayable failure artifacts.
//
// The search space is the seeded tie-break policy of internal/sim: every
// seed is one deterministic interleaving of the same workload, so a
// violation found at seed S replays byte-identically from (workload, S,
// budget) alone — no trace files, no record/replay infrastructure.
package explore

import (
	"fmt"

	"solros/internal/core"
	"solros/internal/fs"
)

// splitmix64 mirrors the generator internal/sim and internal/faults use,
// so oracle sampling points are a pure function of the exploration seed.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RingOracle validates every data-plane RPC ring's structural invariants
// at each scheduling point: cursor ordering and monotonicity, element
// lifecycle, no ready-before-copy visibility, and master/shadow agreement
// at quiesce (see transport.Ring.Check).
type RingOracle struct{}

// Name implements core.Oracle.
func (RingOracle) Name() string { return "ring" }

// Check implements core.Oracle.
func (RingOracle) Check(m *core.Machine) error {
	for i, phi := range m.Phis {
		req, resp := phi.Conn.Rings()
		if err := req.Check(); err != nil {
			return fmt.Errorf("phi%d request ring: %w", i, err)
		}
		if err := resp.Check(); err != nil {
			return fmt.Errorf("phi%d response ring: %w", i, err)
		}
	}
	return nil
}

// TagOracle validates every connection's RPC tag window: no tag both live
// and stale, stale debts bounded by the retry policy, window below the
// 16-bit tag space (see dataplane.Conn.CheckTags).
type TagOracle struct{}

// Name implements core.Oracle.
func (TagOracle) Name() string { return "tags" }

// Check implements core.Oracle.
func (TagOracle) Check(m *core.Machine) error {
	for i, phi := range m.Phis {
		if err := phi.Conn.CheckTags(); err != nil {
			return fmt.Errorf("phi%d: %w", i, err)
		}
	}
	return nil
}

// CacheOracle audits resident buffer-cache frames against backing NVMe
// blocks (see controlplane.FSProxy.CheckCacheCoherence). Byte-comparing
// the whole cache is too dear for every dispatch, so the oracle samples:
// it runs once every Every polls (default 32).
type CacheOracle struct {
	Every int
	n     int
}

// Name implements core.Oracle.
func (o *CacheOracle) Name() string { return "cache" }

// Check implements core.Oracle.
func (o *CacheOracle) Check(m *core.Machine) error {
	if m.FSProxy == nil {
		return nil
	}
	every := o.Every
	if every < 1 {
		every = 32
	}
	o.n++
	if o.n%every != 0 {
		return nil
	}
	return m.FSProxy.CheckCacheCoherence()
}

// ShardOracle audits the sharded control plane's ownership invariants:
// every open fid lives in exactly the shard that owns its channel, every
// pending fill sits in the shard its page key hashes to, and the global
// tables stay empty while sharding is armed (see
// controlplane.FSProxy.CheckShards). Free on unsharded machines.
type ShardOracle struct{}

// Name implements core.Oracle.
func (ShardOracle) Name() string { return "shards" }

// Check implements core.Oracle.
func (ShardOracle) Check(m *core.Machine) error {
	if m.FSProxy == nil {
		return nil
	}
	return m.FSProxy.CheckShards()
}

// FsckOracle snapshots the raw NVMe image at scheduler-chosen points and
// runs the offline fsck on the copy — the crash-point check: would the
// file system recover if the machine lost power at this exact scheduling
// decision? Two regimes, per the write-back metadata design:
//
//   - metadata-quiescent (fs.MetaClean): the full fsck must be clean;
//   - mid-write: only Corrupt-class problems count (structural damage no
//     legal crash point can produce); Repairable findings are the normal
//     transient state between Syncs.
//
// Snapshot points are drawn from a splitmix64 stream seeded per run, so
// different exploration seeds probe different crash points; on average one
// dispatch in Period is snapshotted (default 256).
type FsckOracle struct {
	// Period is the mean dispatches between snapshots (default 256).
	Period uint64
	rng    uint64
	snap   []byte
}

// NewFsckOracle seeds the snapshot-point stream; use the exploration seed
// so crash points vary across seeds yet replay exactly.
func NewFsckOracle(seed int64) *FsckOracle {
	o := &FsckOracle{rng: uint64(seed) ^ 0xf5c50ac1e0ff5e7}
	splitmix64(&o.rng)
	return o
}

// Name implements core.Oracle.
func (o *FsckOracle) Name() string { return "fsck" }

// Check implements core.Oracle.
func (o *FsckOracle) Check(m *core.Machine) error {
	if m.FS == nil {
		return nil
	}
	period := o.Period
	if period == 0 {
		period = 256
	}
	if splitmix64(&o.rng)%period != 0 {
		return nil
	}
	img := m.SSD.Image()
	o.snap = append(o.snap[:0], img.Slice(0, img.Size())...)
	rep := fs.CheckBytes(o.snap)
	if m.FS.MetaClean() {
		if !rep.OK() {
			return fmt.Errorf("fsck of quiescent snapshot: %s (%d problems)", rep.Problems[0], len(rep.Problems))
		}
		return nil
	}
	if !rep.StructurallySound() {
		for i, k := range rep.Kinds {
			if k == fs.Corrupt {
				return fmt.Errorf("fsck of mid-write snapshot: structural damage: %s", rep.Problems[i])
			}
		}
	}
	return nil
}

// DefaultOracles builds one fresh instance of every oracle for a run with
// the given exploration seed. Fresh instances matter: CacheOracle and
// FsckOracle carry per-run sampling state.
func DefaultOracles(seed int64) []core.Oracle {
	return []core.Oracle{
		RingOracle{},
		TagOracle{},
		&CacheOracle{},
		ShardOracle{},
		NewFsckOracle(seed),
	}
}
