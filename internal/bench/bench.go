// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each FigXX function runs the corresponding experiment
// and returns rows of (series, x, value); cmd/solros-bench prints them and
// bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers come from the calibrated hardware model
// (internal/model); what must match the paper is the *shape*: who wins,
// by roughly what factor, and where the crossovers fall. EXPERIMENTS.md
// records paper-vs-measured for every experiment.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one data point of a figure: a named series, an x coordinate
// (kept as a label so block sizes and thread counts print naturally), and
// a value with its unit.
type Row struct {
	Fig    string
	Series string
	X      string
	Value  float64
	Unit   string
}

func row(fig, series, x string, v float64, unit string) Row {
	return Row{Fig: fig, Series: series, X: x, Value: v, Unit: unit}
}

// Format renders rows as an aligned table, grouped by series.
func Format(rows []Row) string {
	var b strings.Builder
	var lastSeries string
	for _, r := range rows {
		if r.Series != lastSeries {
			if lastSeries != "" {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "# %s — %s\n", r.Fig, r.Series)
			lastSeries = r.Series
		}
		fmt.Fprintf(&b, "%-10s %14.3f %s\n", r.X, r.Value, r.Unit)
	}
	return b.String()
}

// sizeLabel formats byte sizes the way the paper's axes do.
func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// gbs converts bytes over virtual seconds to GB/s.
func gbs(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e9
}

// mbs converts to MB/s.
func mbs(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e6
}

// Experiments maps experiment ids (figure/table names) to their runners,
// in the order the paper presents them.
var Experiments = []struct {
	ID   string
	Desc string
	Run  func() []Row
}{
	{"fig1a", "file random read throughput across architectures", Fig1a},
	{"fig1b", "TCP 64B latency CDF across architectures", Fig1b},
	{"fig4", "PCIe bandwidth: DMA vs load/store, host- vs Phi-initiated", Fig4},
	{"table1", "lines of code per module (this reproduction)", Table1},
	{"fig8", "ring buffer scalability: combining vs two-lock (real concurrency)", Fig8},
	{"fig9", "ring buffer over PCIe: lazy vs eager control variables", Fig9},
	{"fig10", "adaptive copy: memcpy vs DMA vs adaptive across sizes", Fig10},
	{"fig11", "NVMe random read throughput matrix", Fig11},
	{"fig12", "NVMe random write throughput matrix", Fig12},
	{"fig13", "latency breakdown: file system and network", Fig13},
	{"fig14", "TCP throughput vs message size", Fig14},
	{"fig15", "TCP 64B latency percentiles", Fig15},
	{"fig16", "shared listening socket scaling with co-processor count", Fig16},
	{"fig17", "application: text indexing", Fig17},
	{"fig18", "application: image search", Fig18},
	{"fig19", "control-plane OS scalability", Fig19},
	{"ablate", "ablations of Solros design decisions", Ablations},
	{"pipeline", "pipelined delegated I/O: sync vs windowed/batched/overlapped reads", Pipeline},
	{"hotpath", "zero-alloc delegated hot path: heap traffic with pooling off vs on", HotPath},
	{"chaos", "fault injection: recovery correctness and determinism per fault class", Chaos},
	{"traceov", "overhead of end-to-end causal tracing on the pipelined read", TraceOverhead},
	{"serve", "KV store under open-loop Zipfian YCSB load: tput and tail latency vs offered rate", Serve},
	{"scale", "control-plane scale-out: aggregate tput and p99 vs co-processor count, sharded vs unsharded proxies", Scale},
}

// Lookup finds an experiment by id.
func Lookup(id string) (func() []Row, string, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Run, e.Desc, true
		}
	}
	return nil, "", false
}

// IDs lists experiment ids in presentation order.
func IDs() []string {
	out := make([]string, 0, len(Experiments))
	for _, e := range Experiments {
		out = append(out, e.ID)
	}
	return out
}

// SeriesMax returns the max value per series, for shape assertions.
func SeriesMax(rows []Row) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rows {
		if r.Value > out[r.Series] {
			out[r.Series] = r.Value
		}
	}
	return out
}

// SortRows orders rows by (series, insertion) — stable display helper.
func SortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Series < rows[j].Series })
}
