package bench

import (
	"hash/fnv"

	"solros/internal/core"
	"solros/internal/faults"
	"solros/internal/ninep"
	"solros/internal/sim"
	"solros/internal/telemetry"
	"solros/internal/workload"
)

// Chaos experiment (ISSUE 3): run a write-then-verify workload under each
// fault class of internal/faults and check the recovery machinery end to
// end. Three properties per class:
//
//	identical      — the bytes read back match the fault-free run (1/0)
//	recovered      — the class's recovery/injection counter (must be > 0
//	                 for the faults to have been exercised at all)
//	deterministic  — a second run with the same seed reproduces the same
//	                 digest, duration, and counter value (1/0)
//
// Seed and Quick are set by cmd/solros-bench's -seed and -quick flags.
var (
	// Seed drives every chaos fault plan.
	Seed int64 = 42
	// Quick shrinks the workload (CI smoke) and raises fault rates so
	// every class still fires on the smaller op count.
	Quick bool
)

// Chaos measures recovery correctness per fault class.
func Chaos() []Row {
	fileBytes, chunk := int64(8<<20), int64(256<<10)
	boost := 1.0
	if Quick {
		fileBytes, chunk = 1<<20, 128<<10
		boost = 3.0
	}

	// Fault-free baseline: reference digest plus the workload's time
	// window, which anchors the crash schedule.
	base := chaosRun(nil, fileBytes, chunk, "")
	span := base.end - base.start
	crashes := []sim.Time{base.start + span/3, base.start + 2*span/3}
	if Quick {
		crashes = crashes[:1]
	}

	classes := []struct {
		name    string
		plan    faults.Plan
		counter string
	}{
		{"nvme-errors",
			faults.Plan{Seed: Seed, NVMeReadErrRate: 0.03 * boost, NVMeWriteErrRate: 0.03 * boost},
			"controlplane.fsproxy.io_retries"},
		{"nvme-slow",
			faults.Plan{Seed: Seed, NVMeSlowRate: 0.20 * boost},
			"faults.nvme.latency_spikes"},
		{"link-degrade",
			faults.Plan{Seed: Seed, LinkSlowRate: 0.10 * boost, LinkFlapRate: 0.05 * boost},
			"faults.link.degrades"},
		{"ring-faults",
			faults.Plan{Seed: Seed, RingDropRate: 0.05 * boost, RingStallRate: 0.10 * boost},
			"dataplane.retries"},
		{"channel-crash",
			faults.Plan{Seed: Seed, CrashTimes: crashes, CrashDowntime: 200 * sim.Microsecond},
			"controlplane.fsproxy.reattaches"},
		{"everything",
			faults.Plan{Seed: Seed,
				NVMeReadErrRate: 0.02 * boost, NVMeWriteErrRate: 0.02 * boost, NVMeSlowRate: 0.10 * boost,
				LinkSlowRate: 0.05 * boost, LinkFlapRate: 0.02 * boost,
				RingDropRate: 0.03 * boost, RingStallRate: 0.05 * boost,
				CrashTimes: crashes, CrashDowntime: 200 * sim.Microsecond},
			"controlplane.fsproxy.io_retries"},
	}

	var rows []Row
	for _, c := range classes {
		plan := c.plan
		r1 := chaosRun(&plan, fileBytes, chunk, c.counter)
		r2 := chaosRun(&plan, fileBytes, chunk, c.counter)
		identical := 0.0
		if r1.digest == base.digest {
			identical = 1
		}
		deterministic := 0.0
		if r1.digest == r2.digest && r1.end-r1.start == r2.end-r2.start && r1.counter == r2.counter {
			deterministic = 1
		}
		rows = append(rows,
			row("chaos", c.name, "identical", identical, "bool"),
			row("chaos", c.name, "recovered", float64(r1.counter), "events"),
			row("chaos", c.name, "deterministic", deterministic, "bool"),
		)
	}
	return rows
}

type chaosResult struct {
	digest     uint64
	start, end sim.Time
	counter    int64
}

// chaosRun writes a seeded corpus through co-processor 0's delegated-I/O
// stub, reads it back, and digests what came over the wire. plan == nil is
// the fault-free baseline. counter names the telemetry counter to report.
func chaosRun(plan *faults.Plan, fileBytes, chunk int64, counter string) chaosResult {
	tel := telemetry.New(telemetry.Options{MaxSpans: 1})
	cfg := core.Config{
		DiskBytes:   32 << 20,
		Telemetry:   tel,
		Faults:      plan,
		RPCDeadline: 2 * sim.Millisecond,
		RPCRetries:  8,
	}
	if plan == nil {
		cfg.RPCDeadline, cfg.RPCRetries = 0, 0
	}
	var res chaosResult
	m := core.NewMachine(cfg)
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		phi := mm.Phis[0]
		fd, err := phi.FS.Open(p, "/chaos", ninep.OCreate)
		if err != nil {
			panic(err)
		}
		buf := phi.FS.AllocBuffer(chunk)
		data := workload.Corpus(Seed, int(fileBytes))
		res.start = p.Now()
		for off := int64(0); off < fileBytes; off += chunk {
			copy(buf.Data, data[off:off+chunk])
			if _, err := phi.FS.Write(p, fd, off, buf, chunk); err != nil {
				panic("chaos: write: " + err.Error())
			}
		}
		h := fnv.New64a()
		for off := int64(0); off < fileBytes; off += chunk {
			for i := range buf.Data {
				buf.Data[i] = 0 // stale data must not mask a lost read
			}
			if _, err := phi.FS.Read(p, fd, off, buf, chunk); err != nil {
				panic("chaos: read: " + err.Error())
			}
			h.Write(buf.Data[:chunk])
		}
		res.digest = h.Sum64()
		res.end = p.Now()
		if err := phi.FS.Close(p, fd); err != nil {
			panic("chaos: close: " + err.Error())
		}
	})
	if counter != "" {
		res.counter = tel.Counter(counter).Value()
	}
	return res
}
