package bench

import (
	"bytes"
	"fmt"
	"sort"

	"solros/internal/apps/kvstore"
	"solros/internal/core"
	"solros/internal/sim"
	"solros/internal/workload"
)

// fig-serve: the KV store under an open-loop, Zipf-skewed, multi-tenant
// YCSB-style workload (ISSUE 8 / ROADMAP item 3). Requests arrive on a
// Poisson schedule at the offered rate regardless of how fast the store
// drains them, so observed latency includes queueing delay and the
// throughput/latency curve shows the classic knee at saturation. The
// shared buffer cache is the knob under test: GETs are delegated buffered
// reads, so with the cache on the Zipfian head is served from host DRAM
// and the knee sits far to the right of the no-cache series, where every
// read pays the NVMe round trip.

const (
	servePort          = 7400
	serveValBytes      = 256
	serveConnsPerShard = 4
)

// serveOp is one dispatched request waiting on a shard queue.
type serveOp struct {
	key     string
	write   bool
	arrival sim.Time
	idx     int
}

// serveResult is one offered-load run.
type serveResult struct {
	achievedKops float64
	p50, p99     sim.Time
	digest       uint32
}

// Serve produces the fig-serve table.
func Serve() []Row {
	loads, n := serveLoads()
	var rows []Row
	for _, sc := range []struct {
		name string
		cfg  core.Config
	}{
		{"cache", core.Config{Phis: 2}},
		{"no-cache", core.Config{Phis: 2, DisableCache: true}},
	} {
		var digest uint32 = 2166136261
		for _, load := range loads {
			r := serveRun(sc.cfg, load, n)
			x := fmt.Sprintf("%gk/s", load/1000)
			rows = append(rows,
				row("fig-serve", sc.name+" tput", x, r.achievedKops, "Kops/s"),
				row("fig-serve", sc.name+" p50", x, us(r.p50), "us"),
				row("fig-serve", sc.name+" p99", x, us(r.p99), "us"),
			)
			digest = digest*16777619 ^ r.digest
		}
		rows = append(rows, row("fig-serve", "digest", sc.name, float64(digest), "fnv32"))
	}
	return rows
}

// serveLoads picks the offered-load sweep (req/s) and ops per point.
func serveLoads() ([]float64, int) {
	if Quick {
		return []float64{20e3, 120e3}, 400
	}
	return []float64{10e3, 20e3, 40e3, 80e3, 160e3, 320e3}, 2000
}

func us(t sim.Time) float64 { return float64(t) / 1e3 }

// serveRun drives one machine at one offered load: preload, open-loop
// dispatch onto per-shard queues, pooled client connections per shard,
// latency measured from scheduled arrival to completion.
func serveRun(cfg core.Config, ratePerSec float64, n int) serveResult {
	m := core.NewMachine(cfg)
	m.EnableNetwork()
	phis := len(m.Phis)
	var res serveResult
	m.MustRun(func(p *sim.Proc, mm *core.Machine) {
		mm.TCPProxy.Balance = kvstore.Balancer()
		shards := make([]*kvstore.Shard, phis)
		servers := make([]*kvstore.Server, phis)
		serversDone := sim.NewWaitGroup("kv-servers")
		for i, phi := range mm.Phis {
			if err := phi.Net.Listen(p, servePort); err != nil {
				panic(err)
			}
			shards[i] = kvstore.NewShard(mm, i, kvstore.Options{})
			if err := shards[i].Open(p); err != nil {
				panic(err)
			}
			servers[i] = kvstore.NewServer(shards[i], phi.Net, servePort)
			serversDone.Add(1)
			sv := servers[i]
			p.Spawn(fmt.Sprintf("kv-server-%d", i), func(sp *sim.Proc) {
				defer sp.DoneWG(serversDone)
				if err := sv.Run(sp); err != nil {
					panic(err)
				}
			})
		}

		// Two traffic classes: a read-mostly frontend owning 3/4 of the
		// load and an update-heavy batch tenant owning the rest.
		tenants := []workload.Tenant{
			{Name: "frontend", Mix: workload.MixFor('B'), Keys: 512, Share: 3},
			{Name: "batch", Mix: workload.MixFor('A'), Keys: 128, Share: 1},
		}
		g := workload.NewMultiGenerator(Seed, tenants)

		// Preload every key through the delegated FS path, and remember
		// one key per shard so pooled connections can bind their routing.
		val := bytes.Repeat([]byte("v"), serveValBytes)
		bindKey := make([]string, phis)
		for t := range tenants {
			for k := 0; k < tenants[t].Keys; k++ {
				key := workload.KeyName(t, k)
				sh := kvstore.OwnerShard(key, phis)
				if err := shards[sh].Put(p, key, val); err != nil {
					panic(err)
				}
				if bindKey[sh] == "" {
					bindKey[sh] = key
				}
			}
		}

		ops := g.Ops(n)
		gaps := workload.Arrivals(Seed+1, ratePerSec, n)
		queues := make([][]serveOp, phis)
		conds := make([]*sim.Cond, phis)
		for i := range conds {
			conds[i] = sim.NewCond(fmt.Sprintf("kv-q-%d", i))
		}
		dispatchDone := false
		latencies := make([]sim.Time, n)
		var firstArrival, lastDone sim.Time

		// Open-loop dispatcher: arrivals advance on the Poisson schedule
		// no matter how far behind service is.
		p.Spawn("kv-dispatch", func(dp *sim.Proc) {
			t := dp.Now()
			for i, op := range ops {
				t += sim.Time(gaps[i])
				dp.AdvanceTo(t)
				key := workload.KeyName(op.Tenant, op.Key)
				sh := kvstore.OwnerShard(key, phis)
				queues[sh] = append(queues[sh], serveOp{
					key:     key,
					write:   op.Kind != workload.OpRead,
					arrival: t,
					idx:     i,
				})
				dp.Signal(conds[sh])
				if i == 0 {
					firstArrival = t
				}
			}
			dispatchDone = true
			for _, c := range conds {
				dp.Broadcast(c)
			}
		})

		// Pooled workers: serveConnsPerShard connections per shard, each
		// bound to its shard by the key in its first request.
		workersDone := sim.NewWaitGroup("kv-workers")
		for sh := 0; sh < phis; sh++ {
			sh := sh
			for w := 0; w < serveConnsPerShard; w++ {
				workersDone.Add(1)
				p.Spawn(fmt.Sprintf("kv-worker-%d-%d", sh, w), func(wp *sim.Proc) {
					defer wp.DoneWG(workersDone)
					conn, err := mm.ClientStack.Dial(wp, mm.HostStack, servePort)
					if err != nil {
						panic(err)
					}
					side := conn.Side(mm.ClientStack)
					cl := kvstore.NewClient(side)
					if _, _, err := cl.Get(wp, bindKey[sh]); err != nil {
						panic(err)
					}
					for {
						if len(queues[sh]) == 0 {
							if dispatchDone {
								break
							}
							wp.Wait(conds[sh])
							continue
						}
						op := queues[sh][0]
						queues[sh] = queues[sh][1:]
						if op.write {
							err = cl.Put(wp, op.key, val)
						} else {
							_, _, err = cl.Get(wp, op.key)
						}
						if err != nil {
							panic(err)
						}
						done := wp.Now()
						latencies[op.idx] = done - op.arrival
						if done > lastDone {
							lastDone = done
						}
					}
					side.Close(wp)
				})
			}
		}
		p.WaitWG(workersDone)
		mm.TCPProxy.Stop(p)
		p.WaitWG(serversDone)

		res = summarize(latencies, firstArrival, lastDone)
	})
	return res
}

// summarize folds per-op latencies into the run's result. The digest is
// an FNV-1a fold over every op's latency in op order — any change to
// scheduling, routing, or store behavior moves it, which is what the CI
// determinism smoke diffs.
func summarize(latencies []sim.Time, first, last sim.Time) serveResult {
	var r serveResult
	if len(latencies) == 0 || last <= first {
		return r
	}
	r.achievedKops = float64(len(latencies)) / (last - first).Seconds() / 1e3
	sorted := append([]sim.Time(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	r.p50 = sorted[len(sorted)/2]
	r.p99 = sorted[len(sorted)*99/100]
	h := uint32(2166136261)
	for _, l := range latencies {
		for shift := 0; shift < 64; shift += 8 {
			h = (h ^ uint32(uint64(l)>>shift&0xff)) * 16777619
		}
	}
	r.digest = h
	return r
}

// ServeSchema versions the BENCH_serve.json format (same point layout as
// the core document).
const ServeSchema = "solros-bench-serve/v1"

// ServeBenchmarks runs the gated serving points: throughput and p99 at a
// below-knee and an above-knee offered load with the cache on, plus the
// no-cache saturation throughput — the three numbers that move when the
// serving path, the cache, or the balancer regress.
func ServeBenchmarks() CoreBench {
	n := 2000
	if Quick {
		n = 400
	}
	cache := core.Config{Phis: 2}
	nocache := core.Config{Phis: 2, DisableCache: true}
	low := serveRun(cache, 40e3, n)
	high := serveRun(cache, 320e3, n)
	nc := serveRun(nocache, 320e3, n)
	return CoreBench{
		Schema: ServeSchema,
		Points: []CorePoint{
			{Name: "serve_tput_40k", Value: low.achievedKops, Unit: "Kops/s", HigherIsBetter: true},
			{Name: "serve_p99_40k", Value: us(low.p99), Unit: "us", HigherIsBetter: false},
			{Name: "serve_tput_sat", Value: high.achievedKops, Unit: "Kops/s", HigherIsBetter: true},
			{Name: "serve_p99_sat", Value: us(high.p99), Unit: "us", HigherIsBetter: false},
			{Name: "serve_tput_sat_nocache", Value: nc.achievedKops, Unit: "Kops/s", HigherIsBetter: true},
		},
	}
}
